//===- tests/ServiceConcurrencyTest.cpp - Multi-stream service ------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The service's central promise is determinism under concurrency: because
// each stream owns a private RegionMonitor and is pinned to one shard,
// running N streams through the threaded service must produce exactly the
// per-stream results of N independent sequential monitors. These tests
// replay identical seeded sample streams through both paths and compare.
// Run them under TSan via tools/run_sanitized_tests.sh.
//
//===----------------------------------------------------------------------===//

#include "service/MonitorService.h"

#include "sampling/Sampler.h"
#include "sim/Engine.h"
#include "sim/ProgramCodeMap.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace regmon;
using namespace regmon::service;

namespace {

/// One pre-recorded stream: the workload (kept alive for its CodeMap) and
/// its full interval sequence.
struct RecordedStream {
  std::string WorkloadName;
  std::unique_ptr<workloads::Workload> W;
  std::unique_ptr<sim::ProgramCodeMap> Map;
  std::vector<std::vector<Sample>> Intervals;
};

RecordedStream record(const std::string &Name, std::uint64_t Seed,
                      Cycles Period = 45'000) {
  RecordedStream S;
  S.WorkloadName = Name;
  S.W = std::make_unique<workloads::Workload>(workloads::make(Name));
  S.Map = std::make_unique<sim::ProgramCodeMap>(S.W->Prog);
  sim::Engine Engine(S.W->Prog, S.W->Script, Seed);
  sampling::Sampler Sampler(Engine, {Period, 2032});
  S.Intervals = Sampler.collectIntervals();
  return S;
}

/// The eight-stream mixed workload used throughout: different programs and
/// different seeds, so streams disagree on region sets and phase counts.
std::vector<RecordedStream> recordFleet() {
  const std::pair<const char *, std::uint64_t> Defs[] = {
      {"synthetic.steady", 1},   {"synthetic.periodic", 2},
      {"synthetic.bottleneck", 3}, {"synthetic.pollution", 4},
      {"synthetic.steady", 5},   {"synthetic.periodic", 6},
      {"synthetic.bottleneck", 7}, {"synthetic.pollution", 8},
  };
  std::vector<RecordedStream> Fleet;
  Fleet.reserve(std::size(Defs));
  for (const auto &[Name, Seed] : Defs)
    Fleet.push_back(record(Name, Seed));
  return Fleet;
}

/// Reference result of one stream run through a plain sequential monitor.
struct Reference {
  std::uint64_t Intervals = 0;
  std::uint64_t FormationTriggers = 0;
  std::uint64_t PhaseChanges = 0;
  std::uint64_t TotalSamples = 0;
  std::vector<std::pair<Addr, Addr>> RegionBounds;
  std::vector<std::uint64_t> PerRegionChanges;
};

Reference runSequential(const RecordedStream &S) {
  core::RegionMonitor Monitor(*S.Map);
  for (const std::vector<Sample> &Interval : S.Intervals)
    Monitor.observeInterval(Interval);
  Reference Ref;
  Ref.Intervals = Monitor.intervals();
  Ref.FormationTriggers = Monitor.formationTriggers();
  Ref.PhaseChanges = Monitor.totalPhaseChanges();
  Ref.TotalSamples = Monitor.totalSamples();
  for (const core::Region &R : Monitor.regions()) {
    Ref.RegionBounds.emplace_back(R.Start, R.End);
    Ref.PerRegionChanges.push_back(Monitor.stats(R.Id).PhaseChanges);
  }
  return Ref;
}

TEST(ServiceConcurrency, DifferentialDeterminismAgainstSequentialMonitors) {
  const std::vector<RecordedStream> Fleet = recordFleet();
  for (const RecordedStream &S : Fleet)
    ASSERT_GT(S.Intervals.size(), 5u)
        << S.WorkloadName << ": stream too short to be interesting";

  std::vector<Reference> Refs;
  Refs.reserve(Fleet.size());
  for (const RecordedStream &S : Fleet)
    Refs.push_back(runSequential(S));

  // Threaded run: 4 workers, one producer thread per stream, lossless
  // backpressure through deliberately tiny queues so producers block and
  // interleave constantly.
  MonitorService Service({/*Workers=*/4, /*QueueCapacity=*/4,
                          OverflowPolicy::Block, /*ValidateBatches=*/true,
                          {}});
  for (const RecordedStream &S : Fleet)
    Service.addStream(*S.Map);
  Service.start();

  std::barrier Start(static_cast<std::ptrdiff_t>(Fleet.size()));
  std::vector<std::thread> Producers;
  Producers.reserve(Fleet.size());
  for (StreamId Id = 0; Id < Fleet.size(); ++Id)
    Producers.emplace_back([&, Id] {
      Start.arrive_and_wait();
      for (const std::vector<Sample> &Interval : Fleet[Id].Intervals)
        ASSERT_TRUE(Service.submit({Id, Interval}));
    });
  for (std::thread &T : Producers)
    T.join();
  Service.stop();

  for (StreamId Id = 0; Id < Fleet.size(); ++Id) {
    SCOPED_TRACE("stream " + std::to_string(Id) + " (" +
                 Fleet[Id].WorkloadName + ")");
    const Reference &Ref = Refs[Id];
    const core::RegionMonitor &Monitor = Service.monitor(Id);
    EXPECT_EQ(Monitor.intervals(), Ref.Intervals);
    EXPECT_EQ(Monitor.formationTriggers(), Ref.FormationTriggers);
    EXPECT_EQ(Monitor.totalPhaseChanges(), Ref.PhaseChanges);
    EXPECT_EQ(Monitor.totalSamples(), Ref.TotalSamples);
    ASSERT_EQ(Monitor.regions().size(), Ref.RegionBounds.size());
    for (std::size_t R = 0; R < Ref.RegionBounds.size(); ++R) {
      EXPECT_EQ(Monitor.regions()[R].Start, Ref.RegionBounds[R].first);
      EXPECT_EQ(Monitor.regions()[R].End, Ref.RegionBounds[R].second);
      EXPECT_EQ(Monitor.stats(static_cast<core::RegionId>(R)).PhaseChanges,
                Ref.PerRegionChanges[R]);
    }
  }

  // The final snapshot agrees with the references in aggregate.
  const ServiceSnapshot Snap = Service.snapshot();
  std::uint64_t WantBatches = 0, WantChanges = 0;
  for (StreamId Id = 0; Id < Fleet.size(); ++Id) {
    WantBatches += Fleet[Id].Intervals.size();
    WantChanges += Refs[Id].PhaseChanges;
  }
  EXPECT_EQ(Snap.BatchesSubmitted, WantBatches);
  EXPECT_EQ(Snap.BatchesProcessed, WantBatches);
  EXPECT_EQ(Snap.IntervalsProcessed, WantBatches);
  EXPECT_EQ(Snap.PhaseChanges, WantChanges);
  EXPECT_EQ(Snap.BatchesDropped, 0u);
  EXPECT_EQ(Snap.QueueDepth, 0u);
  for (const StreamSnapshot &St : Snap.Streams) {
    EXPECT_EQ(St.Shard, Service.shardOf(St.Stream));
    EXPECT_LT(St.Shard, Service.config().Workers);
    EXPECT_EQ(St.BatchesProcessed, Fleet[St.Stream].Intervals.size());
  }
}

TEST(ServiceConcurrency, RepeatedThreadedRunsAreIdentical) {
  // Two threaded runs over the same recorded fleet agree with each other
  // (not just with the sequential reference) -- scheduler nondeterminism
  // must not leak into results.
  const std::vector<RecordedStream> Fleet = recordFleet();
  auto RunOnce = [&Fleet] {
    MonitorService Service({/*Workers=*/3, /*QueueCapacity=*/2,
                            OverflowPolicy::Block, /*ValidateBatches=*/true,
                          {}});
    for (const RecordedStream &S : Fleet)
      Service.addStream(*S.Map);
    Service.start();
    std::vector<std::thread> Producers;
    for (StreamId Id = 0; Id < Fleet.size(); ++Id)
      Producers.emplace_back([&, Id] {
        for (const std::vector<Sample> &Interval : Fleet[Id].Intervals)
          ASSERT_TRUE(Service.submit({Id, Interval}));
      });
    for (std::thread &T : Producers)
      T.join();
    Service.stop();
    std::vector<std::uint64_t> Result;
    for (StreamId Id = 0; Id < Fleet.size(); ++Id) {
      Result.push_back(Service.monitor(Id).totalPhaseChanges());
      Result.push_back(Service.monitor(Id).regions().size());
      Result.push_back(Service.monitor(Id).formationTriggers());
    }
    return Result;
  };
  EXPECT_EQ(RunOnce(), RunOnce());
}

TEST(ServiceConcurrency, SubmitBeforeStartIsBufferedAndDrained) {
  RecordedStream S = record("synthetic.steady", 11);
  ASSERT_GE(S.Intervals.size(), 3u);
  MonitorService Service({/*Workers=*/2, /*QueueCapacity=*/8,
                          OverflowPolicy::Block, /*ValidateBatches=*/true,
                          {}});
  const StreamId Id = Service.addStream(*S.Map);
  for (std::size_t I = 0; I < 3; ++I)
    EXPECT_TRUE(Service.submit({Id, S.Intervals[I]}));
  EXPECT_EQ(Service.snapshot().QueueDepth, 3u);
  Service.start();
  Service.stop();
  EXPECT_EQ(Service.monitor(Id).intervals(), 3u);
  EXPECT_EQ(Service.snapshot().BatchesProcessed, 3u);
}

TEST(ServiceConcurrency, SubmitAfterStopIsRejected) {
  RecordedStream S = record("synthetic.steady", 12);
  MonitorService Service({/*Workers=*/1, /*QueueCapacity=*/4,
                          OverflowPolicy::Block, /*ValidateBatches=*/true,
                          {}});
  const StreamId Id = Service.addStream(*S.Map);
  Service.start();
  Service.stop();
  EXPECT_FALSE(Service.submit({Id, S.Intervals.front()}));
  EXPECT_EQ(Service.snapshot().BatchesSubmitted, 0u);
}

// stop() is documented idempotent: the restart/recovery paths (and the
// destructor after an explicit stop) call it repeatedly, and a second
// call must neither deadlock on joined workers nor disturb results.
TEST(ServiceConcurrency, RepeatedStopIsIdempotent) {
  RecordedStream S = record("synthetic.steady", 15);
  ASSERT_GE(S.Intervals.size(), 3u);
  MonitorService Service({/*Workers=*/2, /*QueueCapacity=*/8,
                          OverflowPolicy::Block, /*ValidateBatches=*/true,
                          {}});
  const StreamId Id = Service.addStream(*S.Map);
  Service.start();
  for (std::size_t I = 0; I < 3; ++I)
    EXPECT_TRUE(Service.submit({Id, S.Intervals[I]}));
  Service.stop();
  const ServiceSnapshot First = Service.snapshot();
  EXPECT_EQ(First.BatchesProcessed, 3u);
  EXPECT_FALSE(Service.running());

  // Second and third stops: no-ops, from the caller's thread and from
  // another thread (the recovery CLI stops from a signal-ish path).
  Service.stop();
  std::thread([&Service] { Service.stop(); }).join();
  EXPECT_FALSE(Service.running());

  const ServiceSnapshot Again = Service.snapshot();
  EXPECT_EQ(Again.BatchesProcessed, First.BatchesProcessed);
  EXPECT_EQ(Again.IntervalsProcessed, First.IntervalsProcessed);
  EXPECT_EQ(Again.BatchesRejected, First.BatchesRejected);
  EXPECT_EQ(Service.monitor(Id).intervals(), 3u);

  // Submissions after any number of stops are still cleanly refused.
  EXPECT_FALSE(Service.submit({Id, S.Intervals.front()}));
  EXPECT_EQ(Service.snapshot().BatchesRejected, Again.BatchesRejected + 1);
}

TEST(ServiceConcurrency, StopWithoutStartIsSafeAndFinal) {
  RecordedStream S = record("synthetic.steady", 16);
  MonitorService Service({/*Workers=*/1, /*QueueCapacity=*/4,
                          OverflowPolicy::Block, /*ValidateBatches=*/true,
                          {}});
  const StreamId Id = Service.addStream(*S.Map);
  // Never started: stop() must not try to join never-spawned workers,
  // and repeating it stays a no-op.
  Service.stop();
  Service.stop();
  EXPECT_FALSE(Service.running());
  // The service is final after stop: batches are refused, not queued.
  EXPECT_FALSE(Service.submit({Id, S.Intervals.front()}));
  const ServiceSnapshot Snap = Service.snapshot();
  EXPECT_EQ(Snap.BatchesSubmitted, 0u);
  EXPECT_EQ(Snap.BatchesRejected, 1u);
}

TEST(ServiceConcurrency, EmptyBatchesCountAsProcessedNotObserved) {
  RecordedStream S = record("synthetic.steady", 13);
  MonitorService Service({/*Workers=*/1, /*QueueCapacity=*/8,
                          OverflowPolicy::Block, /*ValidateBatches=*/true,
                          {}});
  const StreamId Id = Service.addStream(*S.Map);
  EXPECT_TRUE(Service.submit({Id, {}}));
  EXPECT_TRUE(Service.submit({Id, S.Intervals.front()}));
  EXPECT_TRUE(Service.submit({Id, {}}));
  Service.start();
  Service.stop();
  const ServiceSnapshot Snap = Service.snapshot();
  EXPECT_EQ(Snap.BatchesProcessed, 3u);
  EXPECT_EQ(Snap.IntervalsProcessed, 1u);
  EXPECT_EQ(Service.monitor(Id).intervals(), 1u);
}

TEST(ServiceConcurrency, DropOldestAccountsEveryBatch) {
  // With no workers running yet, a capacity-1 drop-oldest queue keeps only
  // the newest batch: 16 submissions -> 15 deterministic drops.
  RecordedStream S = record("synthetic.steady", 14);
  ASSERT_GE(S.Intervals.size(), 16u);
  MonitorService Service({/*Workers=*/1, /*QueueCapacity=*/1,
                          OverflowPolicy::DropOldest, /*ValidateBatches=*/true,
                          {}});
  const StreamId Id = Service.addStream(*S.Map);
  for (std::size_t I = 0; I < 16; ++I)
    EXPECT_TRUE(Service.submit({Id, S.Intervals[I]}))
        << "drop-oldest submissions never fail while running";
  Service.start();
  Service.stop();
  const ServiceSnapshot Snap = Service.snapshot();
  EXPECT_EQ(Snap.BatchesSubmitted, 16u);
  EXPECT_EQ(Snap.BatchesProcessed, 1u);
  EXPECT_EQ(Snap.BatchesDropped, 15u);
  EXPECT_EQ(Snap.BatchesProcessed + Snap.BatchesDropped,
            Snap.BatchesSubmitted);
  EXPECT_EQ(Service.monitor(Id).intervals(), 1u);
}

TEST(ServiceConcurrency, ConcurrentSnapshotsAreSafeAndMonotonic) {
  // A reader thread hammering snapshot() while producers and workers run:
  // per-stream BatchesProcessed must be monotone and the aggregate
  // accounting invariant (processed + dropped <= submitted) must hold in
  // every observation. TSan guards the data-race side of this test.
  const RecordedStream S = record("synthetic.periodic", 15);
  MonitorService Service({/*Workers=*/2, /*QueueCapacity=*/4,
                          OverflowPolicy::Block, /*ValidateBatches=*/true,
                          {}});
  const StreamId Id = Service.addStream(*S.Map);
  Service.start();

  std::atomic<bool> Done{false};
  std::thread Reader([&] {
    std::uint64_t LastProcessed = 0;
    while (!Done.load(std::memory_order_acquire)) {
      const ServiceSnapshot Snap = Service.snapshot();
      ASSERT_EQ(Snap.Streams.size(), 1u);
      EXPECT_GE(Snap.Streams[0].BatchesProcessed, LastProcessed);
      LastProcessed = Snap.Streams[0].BatchesProcessed;
      EXPECT_LE(Snap.BatchesProcessed + Snap.BatchesDropped,
                Snap.BatchesSubmitted);
    }
  });
  for (const std::vector<Sample> &Interval : S.Intervals)
    ASSERT_TRUE(Service.submit({Id, Interval}));
  Service.stop();
  Done.store(true, std::memory_order_release);
  Reader.join();

  EXPECT_EQ(Service.snapshot().BatchesProcessed, S.Intervals.size());
}

TEST(ServiceConcurrency, ShardRoutingIsStableAndInRange) {
  const RecordedStream S = record("synthetic.steady", 16);
  MonitorService Service({/*Workers=*/4, /*QueueCapacity=*/4,
                          OverflowPolicy::Block, /*ValidateBatches=*/true,
                          {}});
  std::vector<std::size_t> Shards;
  for (StreamId Id = 0; Id < 16; ++Id) {
    Service.addStream(*S.Map);
    Shards.push_back(Service.shardOf(Id));
    EXPECT_LT(Shards.back(), 4u);
  }
  // Hash routing must not collapse onto a single shard for dense ids.
  std::vector<bool> Used(4, false);
  for (std::size_t Shard : Shards)
    Used[Shard] = true;
  EXPECT_GT(std::count(Used.begin(), Used.end(), true), 1);
  // Stable across queries.
  for (StreamId Id = 0; Id < 16; ++Id)
    EXPECT_EQ(Service.shardOf(Id), Shards[Id]);
}

} // namespace
