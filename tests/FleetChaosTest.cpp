//===- tests/FleetChaosTest.cpp - Faulted fleet replay determinism --------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Chaos suite for the fleet aggregation tree: a faulted run -- leaf
// crashes recovering through the persist checkpoint ladder, aggregator
// stalls, and every summary-transport fault -- is a pure function of
// (config, plan seed) and replays bit-identically, down to the encoded
// root state, every counter, and the byte-stable metrics export. Fault
// storms at certainty rates exercise each absorption mechanism in
// isolation: idempotent merges absorb duplicates, the delay queue bounds
// reorder lag to exactly one epoch, and the pull path rides through total
// message loss. Runs under TSan/ASan via the CI chaos shards.
//
//===----------------------------------------------------------------------===//

#include "fleet/Codec.h"
#include "fleet/FleetFaultPlan.h"
#include "fleet/FleetTree.h"

#include "obs/Export.h"
#include "obs/Instruments.h"
#include "obs/Metrics.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

using namespace regmon;
using namespace regmon::fleet;

namespace {

/// A fresh scratch directory under the gtest temp root, unique per call
/// and per process (parallel sanitizer sweeps share the temp root).
std::string scratchDir(const std::string &Tag) {
  static int Counter = 0;
  const std::string Dir = testing::TempDir() + "regmon_fleetchaos_" +
                          std::to_string(getpid()) + "_" + Tag +
                          std::to_string(Counter++);
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

/// The chaotic baseline config: every fault class on at once.
FleetFaultConfig chaosConfig() {
  FleetFaultConfig FC;
  FC.LeafCrashRate = 0.25;
  FC.LeafRestartEpochs = 2;
  FC.AggStallRate = 0.15;
  FC.Transport = {0.1, 0.1, 0.1, 0.1};
  FC.MaxStalenessEpochs = 4;
  return FC;
}

void expectIdenticalRuns(const FleetSim &A, const FleetSim &B) {
  ASSERT_EQ(Codec::encodeState(A.rootState()), Codec::encodeState(B.rootState()));
  const FleetView VA = A.view(), VB = B.view();
  EXPECT_EQ(VA.render(), VB.render());
  EXPECT_EQ(VA.LeavesPresent, VB.LeavesPresent);
  EXPECT_EQ(VA.LeavesExpired, VB.LeavesExpired);
  EXPECT_EQ(VA.MaxStaleness, VB.MaxStaleness);
  EXPECT_EQ(A.bytesSent(), B.bytesSent());

  const FleetTopology &Topo = A.topology();
  for (std::uint32_t L = 0; L < Topo.leaves(); ++L) {
    const LeafAgentStats &SA = A.leafStats(L), &SB = B.leafStats(L);
    EXPECT_EQ(SA.Crashes, SB.Crashes) << "leaf " << L;
    EXPECT_EQ(SA.Restores, SB.Restores) << "leaf " << L;
    EXPECT_EQ(SA.ColdRestores, SB.ColdRestores) << "leaf " << L;
    EXPECT_EQ(SA.EpochsDown, SB.EpochsDown) << "leaf " << L;
    EXPECT_EQ(SA.BatchesDiscarded, SB.BatchesDiscarded) << "leaf " << L;
    EXPECT_EQ(SA.SummariesEmitted, SB.SummariesEmitted) << "leaf " << L;
  }
  for (const FleetTopology::AggNode &N : Topo.aggs()) {
    const AggregatorStats &SA = A.aggStats(N.Id), &SB = B.aggStats(N.Id);
    EXPECT_EQ(SA.MessagesIngested, SB.MessagesIngested) << "agg " << N.Id;
    EXPECT_EQ(SA.DecodeFailures, SB.DecodeFailures) << "agg " << N.Id;
    EXPECT_EQ(SA.EpochsStalled, SB.EpochsStalled) << "agg " << N.Id;
    EXPECT_EQ(SA.ResyncAttempts, SB.ResyncAttempts) << "agg " << N.Id;
    EXPECT_EQ(SA.ResyncSuccesses, SB.ResyncSuccesses) << "agg " << N.Id;
  }
  const std::uint32_t NumLinks =
      Topo.leaves() + static_cast<std::uint32_t>(Topo.aggs().size());
  for (std::uint32_t I = 0; I < NumLinks; ++I) {
    const LinkStats &SA = A.linkStats(I), &SB = B.linkStats(I);
    EXPECT_EQ(SA.Sent, SB.Sent) << "link " << I;
    EXPECT_EQ(SA.Delivered, SB.Delivered) << "link " << I;
    EXPECT_EQ(SA.Faults.Dropped, SB.Faults.Dropped) << "link " << I;
    EXPECT_EQ(SA.Faults.Duplicated, SB.Faults.Duplicated) << "link " << I;
    EXPECT_EQ(SA.Faults.Reordered, SB.Faults.Reordered) << "link " << I;
    EXPECT_EQ(SA.Faults.Stale, SB.Faults.Stale) << "link " << I;
  }
}

TEST(FleetChaos, FaultedRunsReplayBitIdentical) {
  FleetSimConfig Cfg;
  Cfg.Leaves = 6;
  Cfg.Fanout = 2;
  Cfg.Seed = 31;
  Cfg.CheckpointEveryEpochs = 2;
  const FleetFaultConfig FC = chaosConfig();

  FleetSimConfig CfgA = Cfg, CfgB = Cfg;
  CfgA.PersistDir = scratchDir("replayA");
  CfgB.PersistDir = scratchDir("replayB");

  FleetSim A(CfgA, FleetFaultPlan(55, FC));
  FleetSim B(CfgB, FleetFaultPlan(55, FC));
  for (int E = 0; E < 10; ++E) {
    A.runEpoch();
    B.runEpoch();
  }
  expectIdenticalRuns(A, B);

  // The run was actually chaotic, and recovery came through the persist
  // ladder warm (journal replay, never a cold start).
  std::uint64_t Crashes = 0, Restores = 0, Cold = 0;
  for (std::uint32_t L = 0; L < A.topology().leaves(); ++L) {
    Crashes += A.leafStats(L).Crashes;
    Restores += A.leafStats(L).Restores;
    Cold += A.leafStats(L).ColdRestores;
  }
  EXPECT_GT(Crashes, 0u);
  EXPECT_GT(Restores, 0u);
  EXPECT_EQ(Cold, 0u);

  std::filesystem::remove_all(CfgA.PersistDir);
  std::filesystem::remove_all(CfgB.PersistDir);
}

TEST(FleetChaos, RunMatchesEpochByEpochStepping) {
  FleetSimConfig Cfg;
  Cfg.Leaves = 4;
  Cfg.Fanout = 2;
  Cfg.Seed = 13;
  const FleetFaultConfig FC = chaosConfig();

  FleetSim OneShot(Cfg, FleetFaultPlan(7, FC));
  OneShot.run(8);
  FleetSim Stepped(Cfg, FleetFaultPlan(7, FC));
  for (int E = 0; E < 8; ++E)
    Stepped.runEpoch();
  expectIdenticalRuns(OneShot, Stepped);
}

TEST(FleetChaos, MetricsExportIsByteStableAcrossReplays) {
  FleetSimConfig Cfg;
  Cfg.Leaves = 5;
  Cfg.Fanout = 3;
  Cfg.Seed = 17;
  const FleetFaultConfig FC = chaosConfig();

  auto exportOnce = [&] {
    FleetSim Sim(Cfg, FleetFaultPlan(99, FC));
    Sim.run(8);
    obs::MetricsRegistry Registry;
    const obs::FleetInstruments I =
        obs::makeFleetInstruments(Registry, stableFractionBounds(), "");
    publishFleetMetrics(Sim, I);
    return std::pair{obs::exportPrometheus(Registry),
                     obs::exportJson(Registry)};
  };
  const auto [PromA, JsonA] = exportOnce();
  const auto [PromB, JsonB] = exportOnce();
  EXPECT_EQ(PromA, PromB);
  EXPECT_EQ(JsonA, JsonB);
  EXPECT_NE(PromA.find("fleet_coverage_fraction"), std::string::npos);
}

TEST(FleetChaos, DuplicateStormIsAbsorbedByIdempotence) {
  // Every message delivered twice: the merged root state must be
  // bit-identical to the fault-free run's -- the semilattice absorbs
  // duplication outright.
  FleetSimConfig Cfg;
  Cfg.Leaves = 5;
  Cfg.Fanout = 2;
  Cfg.Seed = 23;
  FleetFaultConfig Dup;
  Dup.Transport.DuplicateRate = 1.0;

  FleetSim Clean(Cfg, FleetFaultPlan(3));
  FleetSim Storm(Cfg, FleetFaultPlan(3, Dup));
  Clean.run(6);
  Storm.run(6);
  EXPECT_EQ(Codec::encodeState(Storm.rootState()),
            Codec::encodeState(Clean.rootState()));

  // Every sending link really did deliver double.
  const FleetTopology &Topo = Storm.topology();
  const std::uint32_t NumLinks =
      Topo.leaves() + static_cast<std::uint32_t>(Topo.aggs().size());
  for (std::uint32_t I = 0; I < NumLinks; ++I) {
    const LinkStats &S = Storm.linkStats(I);
    EXPECT_EQ(S.Delivered, 2 * S.Sent) << "link " << I;
  }
}

TEST(FleetChaos, DropStormRecoversThroughPullPath) {
  // Total message loss on a single-level tree: the links deliver nothing,
  // and the root stays perfectly fresh anyway because every epoch's miss
  // triggers an immediate, successful pull-path re-sync.
  FleetSimConfig Cfg;
  Cfg.Leaves = 3;
  Cfg.Fanout = 4; // single aggregator == root
  Cfg.Seed = 29;
  FleetFaultConfig Drop;
  Drop.Transport.DropRate = 1.0;

  FleetSim Sim(Cfg, FleetFaultPlan(5, Drop));
  const std::uint64_t Epochs = 6;
  Sim.run(Epochs);

  const FleetView V = Sim.view();
  EXPECT_EQ(V.LeavesPresent, Cfg.Leaves);
  EXPECT_EQ(V.MaxStaleness, 0u);
  EXPECT_DOUBLE_EQ(V.coverage(), 1.0);

  const std::uint32_t Root = Sim.topology().root();
  EXPECT_EQ(Sim.aggStats(Root).ResyncAttempts,
            Epochs * std::uint64_t{Cfg.Leaves});
  EXPECT_EQ(Sim.aggStats(Root).ResyncSuccesses,
            Epochs * std::uint64_t{Cfg.Leaves});
  for (std::uint32_t L = 0; L < Cfg.Leaves; ++L) {
    EXPECT_EQ(Sim.linkStats(L).Sent, Epochs);
    EXPECT_EQ(Sim.linkStats(L).Delivered, 0u);
    EXPECT_EQ(Sim.linkStats(L).Faults.Dropped, Epochs);
  }
}

TEST(FleetChaos, ReorderStormLagsExactlyOneEpoch) {
  // Certain reorder holds every message one epoch and flushes it after
  // its successor: from the second epoch on, the root tracks each leaf
  // with a lag of exactly one epoch -- bounded, visible staleness.
  FleetSimConfig Cfg;
  Cfg.Leaves = 3;
  Cfg.Fanout = 4;
  Cfg.Seed = 37;
  FleetFaultConfig Reorder;
  Reorder.Transport.ReorderRate = 1.0;

  FleetSim Sim(Cfg, FleetFaultPlan(5, Reorder));
  const std::uint64_t Epochs = 6;
  Sim.run(Epochs);

  const FleetView V = Sim.view();
  EXPECT_EQ(V.LeavesPresent, Cfg.Leaves);
  EXPECT_EQ(V.MaxStaleness, 1u);
  for (const LeafSummary &S : Sim.rootState().entries())
    EXPECT_EQ(S.Epoch, Epochs - 1);
}

TEST(FleetChaos, StaleStormNeverDeliversAndPullPathCompensates) {
  // Certain stale replay: the link only ever re-sends its last delivered
  // payload, but nothing was ever delivered fresh, so the links carry
  // zero messages -- and the pull path still keeps coverage whole.
  FleetSimConfig Cfg;
  Cfg.Leaves = 3;
  Cfg.Fanout = 4;
  Cfg.Seed = 41;
  FleetFaultConfig Stale;
  Stale.Transport.StaleRate = 1.0;

  FleetSim Sim(Cfg, FleetFaultPlan(5, Stale));
  const std::uint64_t Epochs = 5;
  Sim.run(Epochs);

  const FleetView V = Sim.view();
  EXPECT_EQ(V.LeavesPresent, Cfg.Leaves);
  EXPECT_EQ(V.MaxStaleness, 0u);
  for (std::uint32_t L = 0; L < Cfg.Leaves; ++L) {
    EXPECT_EQ(Sim.linkStats(L).Delivered, 0u);
    EXPECT_EQ(Sim.linkStats(L).Faults.Stale, Epochs);
  }
}

TEST(FleetChaos, CrashScheduleIsAlwaysDrawnThroughDowntime) {
  // The always-drawn discipline, proven end to end: replaying the plan's
  // leaf injector through the crash/restart state machine *outside* the
  // sim predicts the sim's crash count exactly. If downtime skipped
  // draws, the two streams would diverge after the first crash.
  FleetSimConfig Cfg;
  Cfg.Leaves = 4;
  Cfg.Fanout = 2;
  Cfg.Seed = 43;
  FleetFaultConfig FC;
  FC.LeafCrashRate = 0.5;
  FC.LeafRestartEpochs = 2;

  const std::uint64_t Epochs = 12;
  FleetSim Sim(Cfg, FleetFaultPlan(61, FC));
  Sim.run(Epochs);

  const FleetFaultPlan Plan(61, FC);
  for (std::uint32_t L = 0; L < Cfg.Leaves; ++L) {
    NodeFaultInjector Injector = Plan.forLeaf(L);
    std::uint64_t Crashes = 0, DownUntil = 0;
    bool Down = false;
    for (std::uint64_t E = 1; E <= Epochs; ++E) {
      const bool Fires = Injector.nextFires();
      if (Down) {
        if (E >= DownUntil)
          Down = false;
      } else if (Fires) {
        ++Crashes;
        Down = true;
        DownUntil = E + FC.LeafRestartEpochs;
      }
    }
    EXPECT_EQ(Sim.leafStats(L).Crashes, Crashes) << "leaf " << L;
  }
}

TEST(FleetChaos, NodeInjectorsAreDecorrelatedByClassAndId) {
  FleetFaultConfig FC;
  FC.LeafCrashRate = 0.5;
  FC.AggStallRate = 0.5;
  const FleetFaultPlan Plan(71, FC);

  // Same derivation twice: identical schedule.
  NodeFaultInjector A1 = Plan.forLeaf(3);
  NodeFaultInjector A2 = Plan.forLeaf(3);
  for (int I = 0; I < 100; ++I)
    ASSERT_EQ(A1.nextFires(), A2.nextFires());

  // Leaf 3 and aggregator 3 share a numeric id but not a schedule.
  NodeFaultInjector Leaf = Plan.forLeaf(3);
  NodeFaultInjector Agg = Plan.forAggregator(3);
  bool Differ = false;
  for (int I = 0; I < 100 && !Differ; ++I)
    Differ = Leaf.nextFires() != Agg.nextFires();
  EXPECT_TRUE(Differ);

  // Distinct leaves differ too.
  NodeFaultInjector L0 = Plan.forLeaf(0);
  NodeFaultInjector L1 = Plan.forLeaf(1);
  Differ = false;
  for (int I = 0; I < 100 && !Differ; ++I)
    Differ = L0.nextFires() != L1.nextFires();
  EXPECT_TRUE(Differ);
}

} // namespace
