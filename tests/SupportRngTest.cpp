//===- tests/SupportRngTest.cpp - Deterministic PRNG ----------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

using namespace regmon;

namespace {

TEST(Rng, SameSeedSameStream) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    ASSERT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += A.next() == B.next() ? 1 : 0;
  EXPECT_LT(Same, 3);
}

TEST(Rng, ReseedReproducesStream) {
  Rng A(77);
  std::vector<std::uint64_t> First;
  for (int I = 0; I < 16; ++I)
    First.push_back(A.next());
  A.reseed(77);
  for (int I = 0; I < 16; ++I)
    ASSERT_EQ(A.next(), First[static_cast<std::size_t>(I)]);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng R(5);
  for (int I = 0; I < 10'000; ++I) {
    const double V = R.nextDouble();
    ASSERT_GE(V, 0.0);
    ASSERT_LT(V, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng R(6);
  for (const std::uint64_t Bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int I = 0; I < 1000; ++I)
      ASSERT_LT(R.nextBelow(Bound), Bound);
  }
}

TEST(Rng, NextBelowCoversSmallRange) {
  Rng R(8);
  std::set<std::uint64_t> Seen;
  for (int I = 0; I < 200; ++I)
    Seen.insert(R.nextBelow(5));
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng A(9);
  Rng B = A.fork();
  // The fork and the parent should not emit identical sequences.
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next() ? 1 : 0;
  EXPECT_LT(Same, 3);
}

TEST(Rng, PickWeightedHonorsZeroWeights) {
  Rng R(10);
  const std::array<double, 4> Weights = {0.0, 1.0, 0.0, 0.0};
  for (int I = 0; I < 100; ++I)
    ASSERT_EQ(R.pickWeighted(Weights), 1u);
}

TEST(Rng, PickWeightedSingleElement) {
  Rng R(11);
  const std::array<double, 1> Weights = {0.25};
  EXPECT_EQ(R.pickWeighted(Weights), 0u);
}

/// Property sweep: empirical pick frequencies track the weights within a
/// loose statistical tolerance.
class PickWeightedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PickWeightedTest, FrequenciesTrackWeights) {
  Rng R(GetParam());
  std::vector<double> Weights;
  const std::size_t N = 2 + R.nextBelow(6);
  double Total = 0;
  for (std::size_t I = 0; I < N; ++I) {
    Weights.push_back(1.0 + static_cast<double>(R.nextBelow(9)));
    Total += Weights.back();
  }
  std::vector<int> Counts(N, 0);
  constexpr int Draws = 40'000;
  for (int I = 0; I < Draws; ++I)
    ++Counts[R.pickWeighted(Weights)];
  for (std::size_t I = 0; I < N; ++I) {
    const double Expected = Weights[I] / Total;
    const double Observed =
        static_cast<double>(Counts[I]) / static_cast<double>(Draws);
    EXPECT_NEAR(Observed, Expected, 0.02)
        << "component " << I << " of " << N;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PickWeightedTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

TEST(Rng, UniformityOfNextBelow) {
  Rng R(30);
  constexpr std::uint64_t Buckets = 16;
  std::array<int, Buckets> Counts = {};
  constexpr int Draws = 64'000;
  for (int I = 0; I < Draws; ++I)
    ++Counts[R.nextBelow(Buckets)];
  for (const int C : Counts)
    EXPECT_NEAR(C, Draws / Buckets, Draws / Buckets * 0.15);
}

} // namespace
