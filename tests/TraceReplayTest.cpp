//===- tests/TraceReplayTest.cpp - Bit-identical replay tests -------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The flight recorder's end-to-end contract, over the scenario corpus in
// tests/TraceScenarios.h: every recorded incident -- fault storm,
// quarantine cycle, DropOldest overload, mid-trace checkpoint -- replays
// through a fresh worker-less service with *byte-identical* Prometheus
// and JSON exports; a recorder killed at seeded I/O budgets leaves a
// byte-prefix of the uninterrupted trace whose repaired prefix still
// replays cleanly; the committed corpus (tests/trace_corpus/) pins the
// wire bytes and export goldens against drift; and a replayed checkpoint
// leaves a durability directory a fresh service restores the incident's
// final state from, bit for bit. Threaded suite (recorded services run
// workers): exercised under TSan via tools/run_sanitized_tests.sh.
//
//===----------------------------------------------------------------------===//

#include "TraceScenarios.h"

#include "persist/Io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

using namespace regmon;
using namespace regmon::tracetest;

namespace {

std::string scratchPath(const std::string &Tag) {
  static int Counter = 0;
  return ::testing::TempDir() + "regmon_replay_" +
         std::to_string(::getpid()) + "_" + Tag + "_" +
         std::to_string(Counter++);
}

std::string scratchDir(const std::string &Tag) {
  const std::string Dir = scratchPath(Tag);
  std::filesystem::remove_all(Dir);
  EXPECT_TRUE(persist::ensureDir(Dir));
  return Dir;
}

std::string scratchTrace(const std::string &Tag) {
  const std::string Path = scratchPath(Tag) + ".bin";
  std::filesystem::remove(Path);
  return Path;
}

/// The snapshot fields the exports do not already pin byte-for-byte.
void expectSnapshotsMatch(const service::ServiceSnapshot &Rec,
                          const service::ServiceSnapshot &Rep) {
  EXPECT_EQ(Rec.BatchesSubmitted, Rep.BatchesSubmitted);
  EXPECT_EQ(Rec.BatchesProcessed, Rep.BatchesProcessed);
  EXPECT_EQ(Rec.BatchesDropped, Rep.BatchesDropped);
  EXPECT_EQ(Rec.BatchesRejected, Rep.BatchesRejected);
  EXPECT_EQ(Rec.BatchesPoisoned, Rep.BatchesPoisoned);
  EXPECT_EQ(Rec.BatchesQuarantined, Rep.BatchesQuarantined);
  EXPECT_EQ(Rec.IntervalsProcessed, Rep.IntervalsProcessed);
  EXPECT_EQ(Rec.PhaseChanges, Rep.PhaseChanges);
  EXPECT_EQ(Rec.TotalSamples, Rep.TotalSamples);
  EXPECT_EQ(Rec.UcrSamples, Rep.UcrSamples);
  ASSERT_EQ(Rec.Streams.size(), Rep.Streams.size());
  for (std::size_t I = 0; I < Rec.Streams.size(); ++I) {
    SCOPED_TRACE("stream " + std::to_string(I));
    EXPECT_EQ(Rec.Streams[I].Shard, Rep.Streams[I].Shard);
    EXPECT_EQ(Rec.Streams[I].Health, Rep.Streams[I].Health);
    EXPECT_EQ(Rec.Streams[I].TimesQuarantined, Rep.Streams[I].TimesQuarantined);
    EXPECT_EQ(Rec.Streams[I].Readmissions, Rep.Streams[I].Readmissions);
    EXPECT_EQ(Rec.Streams[I].PhaseChanges, Rep.Streams[I].PhaseChanges);
    EXPECT_EQ(Rec.Streams[I].ActiveRegions, Rep.Streams[I].ActiveRegions);
  }
}

// The tentpole: every scenario's replay exports the recorded run's bytes.
TEST(TraceReplay, EveryScenarioReplaysWithByteIdenticalExports) {
  for (const std::string &Name : scenarioNames()) {
    SCOPED_TRACE(Name);
    const std::string Trace = scratchTrace(Name);
    const bool Persisted = specFor(Name).MidRunCheckpoint;
    const std::string RecDir = Persisted ? scratchDir(Name + "_rec") : "";
    const std::string RepDir = Persisted ? scratchDir(Name + "_rep") : "";
    const RecordOutcome Rec = recordScenario(Name, Trace, RecDir);
    ASSERT_TRUE(Rec.Open.Ok);
    EXPECT_GT(Rec.Snap.BatchesSubmitted, 0U);

    const ReplayOutcome Rep = replayScenario(Name, Trace, RepDir);
    EXPECT_TRUE(Rep.File.Scan.intact());
    ASSERT_TRUE(Rep.File.Replay.Ok)
        << "diverged at seq " << Rep.File.Replay.DivergedSeq;
    EXPECT_EQ(Rec.Prom, Rep.Prom) << "Prometheus export diverged";
    EXPECT_EQ(Rec.Json, Rep.Json) << "JSON export diverged";
    expectSnapshotsMatch(Rec.Snap, Rep.Snap);
  }
}

// Each scenario must actually exercise its decision path -- otherwise the
// byte-identity above is vacuous.
TEST(TraceReplay, ScenariosExerciseTheirDecisionPaths) {
  // fault-storm: seeded faults must poison batches and churn health.
  {
    const std::string Trace = scratchTrace("storm");
    const RecordOutcome Rec = recordScenario("fault-storm", Trace);
    ASSERT_TRUE(Rec.Open.Ok);
    EXPECT_GT(Rec.Snap.BatchesPoisoned, 0U) << "fault plan poisoned nothing";
  }
  // quarantine-recovery: stream 0 walks one full quarantine cycle at the
  // default tuning (threshold 3, backoff 8, recovery 4) and ends Healthy.
  {
    const std::string Trace = scratchTrace("quar");
    const RecordOutcome Rec = recordScenario("quarantine-recovery", Trace);
    ASSERT_TRUE(Rec.Open.Ok);
    ASSERT_EQ(Rec.Snap.Streams.size(), 2U);
    const service::StreamSnapshot &S0 = Rec.Snap.Streams[0];
    EXPECT_EQ(S0.PoisonedBatches, 3U);
    EXPECT_EQ(S0.QuarantinedBatches, 8U);
    EXPECT_EQ(S0.TimesQuarantined, 1U);
    EXPECT_EQ(S0.Readmissions, 1U);
    EXPECT_EQ(S0.Health, service::StreamHealth::Healthy);
    EXPECT_EQ(Rec.Snap.Streams[1].PoisonedBatches, 0U);
  }
  // drop-oldest-overload: the stalled worker forces real evictions, each
  // captured as a drop record the replay re-applies.
  {
    const std::string Trace = scratchTrace("drop");
    const RecordOutcome Rec = recordScenario("drop-oldest-overload", Trace);
    ASSERT_TRUE(Rec.Open.Ok);
    EXPECT_GT(Rec.Snap.BatchesDropped, 0U) << "overload evicted nothing";
    const ReplayOutcome Rep = replayScenario("drop-oldest-overload", Trace);
    ASSERT_TRUE(Rep.File.Replay.Ok);
    EXPECT_EQ(Rep.File.Replay.DropsApplied, Rec.Snap.BatchesDropped);
    EXPECT_EQ(Rep.Snap.BatchesDropped, Rec.Snap.BatchesDropped);
  }
  // checkpoint-restore-mid-trace: the trace carries the committed marker.
  {
    const std::string Trace = scratchTrace("ckpt");
    const RecordOutcome Rec = recordScenario("checkpoint-restore-mid-trace",
                                             Trace, scratchDir("ckpt_rec"));
    ASSERT_TRUE(Rec.Open.Ok);
    const trace::ScanResult Scan = trace::scanTraceFile(Trace);
    ASSERT_TRUE(Scan.intact());
    std::size_t Markers = 0;
    for (const trace::TraceRecord &R : Scan.Records)
      if (R.Kind == trace::RecordKind::Checkpoint) {
        ++Markers;
        EXPECT_TRUE(R.Committed);
      }
    EXPECT_EQ(Markers, 1U);
  }
}

// A torn tail replays its valid prefix -- the crash-tolerance contract,
// not an error.
TEST(TraceReplay, TornTailReplaysTheValidPrefix) {
  const std::string Trace = scratchTrace("torn");
  const RecordOutcome Rec = recordScenario("quarantine-recovery", Trace);
  ASSERT_TRUE(Rec.Open.Ok);
  const auto Full = persist::readFileBytes(Trace);
  ASSERT_TRUE(Full.has_value());
  const trace::ScanResult FullScan = trace::scanTraceBytes(*Full);
  ASSERT_TRUE(FullScan.intact());
  ASSERT_GT(FullScan.Records.size(), 4U);

  // Tear mid-way through the last record.
  ASSERT_TRUE(persist::truncateFile(Trace, Full->size() - 5, nullptr));
  const ReplayOutcome Rep = replayScenario("quarantine-recovery", Trace);
  EXPECT_TRUE(Rep.File.Scan.TornTail);
  EXPECT_TRUE(Rep.File.Replay.Ok) << "a torn tail must not fail the prefix";
  EXPECT_EQ(Rep.File.Scan.Records.size(), FullScan.Records.size() - 1);
  EXPECT_LT(Rep.Snap.BatchesSubmitted, Rec.Snap.BatchesSubmitted + 1);
}

// Replaying under the wrong topology is a config mismatch, detected
// before any record is applied.
TEST(TraceReplay, WrongTopologyIsAConfigMismatch) {
  const std::string Trace = scratchTrace("mismatch");
  const RecordOutcome Rec = recordScenario("quarantine-recovery", Trace);
  ASSERT_TRUE(Rec.Open.Ok);

  ScenarioSpec Spec = specFor("quarantine-recovery");
  Spec.Cfg.Inline = true;
  Spec.Cfg.Workers = 3; // recorded with 1
  const std::vector<PreparedStream> Streams = prepare(Spec);
  service::MonitorService Service(Spec.Cfg);
  for (const PreparedStream &S : Streams)
    Service.addStream(*S.Map);
  const trace::FileReplay R = trace::replayTraceFile(Trace, Service);
  EXPECT_TRUE(R.Replay.ConfigMismatch);
  EXPECT_FALSE(R.Replay.Ok);
  EXPECT_EQ(R.Replay.BatchesApplied, 0U);
}

// Kill the recorder at seeded I/O budgets mid-incident: the torn file is
// a byte-prefix of the uninterrupted recording, trace-verify-style repair
// truncates it to the scanner's valid prefix, and the repaired prefix
// replays cleanly and deterministically (two replays, identical bytes).
TEST(TraceReplay, CrashKillSweepRepairedPrefixReplaysCleanly) {
  // Accounting recording: total recorder I/O units for this scenario.
  const std::string RefPath = scratchTrace("killref");
  std::uint64_t TotalUnits = 0;
  std::vector<std::uint8_t> RefBytes;
  {
    persist::CrashPoint Acct = persist::CrashPoint::unlimited();
    const RecordOutcome Rec =
        recordScenario("quarantine-recovery", RefPath, "", &Acct);
    ASSERT_TRUE(Rec.Open.Ok);
    TotalUnits = Acct.used();
    const auto Bytes = persist::readFileBytes(RefPath);
    ASSERT_TRUE(Bytes.has_value());
    RefBytes = *Bytes;
    ASSERT_TRUE(trace::scanTraceBytes(RefBytes).intact());
  }
  ASSERT_GT(TotalUnits, 100U);

  for (const std::uint64_t Budget :
       {TotalUnits / 4, TotalUnits / 2, (3 * TotalUnits) / 4,
        TotalUnits - 1}) {
    SCOPED_TRACE("crash budget " + std::to_string(Budget));
    const std::string Trace = scratchTrace("kill");
    persist::CrashPoint Crash(Budget);
    const RecordOutcome Rec =
        recordScenario("quarantine-recovery", Trace, "", &Crash);
    ASSERT_TRUE(Rec.Open.Ok) << "budget too small to even open";

    // The torn file is a byte-prefix of the uninterrupted recording (the
    // run is deterministic, the kill only shortens it).
    const auto Torn = persist::readFileBytes(Trace);
    ASSERT_TRUE(Torn.has_value());
    // A kill that only denied the final flush still lands every byte via
    // close; the torn file is then the whole reference, never more.
    ASSERT_LE(Torn->size(), RefBytes.size());
    EXPECT_TRUE(std::equal(Torn->begin(), Torn->end(), RefBytes.begin()))
        << "torn trace diverged from the reference byte stream";

    // Repair to the valid prefix (what `regmon-cli trace-verify --repair`
    // does), then replay it -- twice, asserting determinism.
    const trace::ScanResult Scan = trace::scanTraceBytes(*Torn);
    ASSERT_TRUE(Scan.repairable());
    ASSERT_GT(Scan.Records.size(), 0U);
    ASSERT_TRUE(persist::truncateFile(Trace, Scan.ValidBytes, nullptr));
    const ReplayOutcome Rep1 = replayScenario("quarantine-recovery", Trace);
    EXPECT_TRUE(Rep1.File.Scan.intact());
    ASSERT_TRUE(Rep1.File.Replay.Ok)
        << "diverged at seq " << Rep1.File.Replay.DivergedSeq;
    const ReplayOutcome Rep2 = replayScenario("quarantine-recovery", Trace);
    EXPECT_EQ(Rep1.Prom, Rep2.Prom);
    EXPECT_EQ(Rep1.Json, Rep2.Json);
  }
}

// The committed corpus pins the wire bytes and the export goldens: a
// fresh recording must reproduce the committed trace byte for byte, and
// replaying the committed trace must reproduce the committed exports.
TEST(TraceReplay, CommittedCorpusIsBytePinned) {
  const std::string CorpusDir = REGMON_TRACE_CORPUS_DIR;
  for (const std::string &Name : scenarioNames()) {
    SCOPED_TRACE(Name);
    const auto Committed = persist::readFileBytes(CorpusDir + "/" + Name +
                                                  ".bin");
    ASSERT_TRUE(Committed.has_value())
        << "missing corpus trace; regenerate with trace_corpus_gen";
    const bool Persisted = specFor(Name).MidRunCheckpoint;

    // Regenerate and byte-compare the trace.
    const std::string Fresh = scratchTrace(Name + "_regen");
    const RecordOutcome Rec = recordScenario(
        Name, Fresh, Persisted ? scratchDir(Name + "_regen_p") : "");
    ASSERT_TRUE(Rec.Open.Ok);
    const auto FreshBytes = persist::readFileBytes(Fresh);
    ASSERT_TRUE(FreshBytes.has_value());
    EXPECT_EQ(*FreshBytes, *Committed)
        << "recorded trace drifted from the committed corpus; if the "
           "change is intentional, regenerate tests/trace_corpus";

    // Replay the committed trace against the committed export goldens.
    const auto Prom = persist::readFileBytes(CorpusDir + "/" + Name +
                                             ".prom");
    const auto Json = persist::readFileBytes(CorpusDir + "/" + Name +
                                             ".json");
    ASSERT_TRUE(Prom.has_value() && Json.has_value());
    const ReplayOutcome Rep =
        replayScenario(Name, CorpusDir + "/" + Name + ".bin",
                       Persisted ? scratchDir(Name + "_replay_p") : "");
    ASSERT_TRUE(Rep.File.Replay.Ok)
        << "diverged at seq " << Rep.File.Replay.DivergedSeq;
    EXPECT_EQ(Rep.Prom, std::string(Prom->begin(), Prom->end()));
    EXPECT_EQ(Rep.Json, std::string(Json->begin(), Json->end()));
  }
}

// Replaying the checkpoint scenario with ApplyCheckpoints leaves a
// durability directory from which a *fresh* service restores the
// incident's final state bit-identically -- record -> replay -> restore,
// three processes, one state.
TEST(TraceReplay, ReplayedCheckpointRestoresBitIdenticalState) {
  const std::string Name = "checkpoint-restore-mid-trace";
  const std::string Trace = scratchTrace("contin");
  const std::string RecDir = scratchDir("contin_rec");
  const std::string RepDir = scratchDir("contin_rep");

  const RecordOutcome Rec = recordScenario(Name, Trace, RecDir);
  ASSERT_TRUE(Rec.Open.Ok);
  ASSERT_FALSE(Rec.FinalState.empty());

  const ReplayOutcome Rep = replayScenario(Name, Trace, RepDir);
  ASSERT_TRUE(Rep.File.Replay.Ok)
      << "diverged at seq " << Rep.File.Replay.DivergedSeq;
  EXPECT_EQ(Rep.File.Replay.CheckpointsSeen, 1U);
  EXPECT_EQ(Rep.File.Replay.CheckpointsApplied, 1U);
  EXPECT_EQ(Rep.FinalState, Rec.FinalState)
      << "replayed service state diverged from the recording";

  // A fresh service climbing the recovery ladder from the *replay's*
  // directory reconstructs the recorded incident's final state.
  ScenarioSpec Spec = specFor(Name);
  const std::vector<PreparedStream> Streams = prepare(Spec);
  persist::CheckpointManager Store(RepDir);
  service::MonitorService Service(Spec.Cfg);
  for (const PreparedStream &S : Streams)
    Service.addStream(*S.Map);
  Service.attachPersistence(Store);
  const service::RestoreOutcome Outcome = Service.restore();
  EXPECT_NE(Outcome, service::RestoreOutcome::ColdStart)
      << "replay left nothing durable";
  EXPECT_EQ(Service.encodeState(), Rec.FinalState)
      << "restored state diverged (" << service::toString(Outcome) << ")";
}

} // namespace
