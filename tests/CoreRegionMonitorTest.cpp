//===- tests/CoreRegionMonitorTest.cpp - Region monitor façade ------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/RegionMonitor.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

using namespace regmon;
using namespace regmon::core;

namespace {

/// A hand-written code oracle over three regionable loops plus a
/// non-regionable stretch.
class TestCodeMap final : public CodeMap {
public:
  std::optional<CodeRegionInfo> regionFor(Addr Pc) const override {
    if (Pc >= 0x1000 && Pc < 0x1100)
      return CodeRegionInfo{0x1000, 0x1100, "loopA"};
    if (Pc >= 0x2000 && Pc < 0x2080)
      return CodeRegionInfo{0x2000, 0x2080, "loopB"};
    if (Pc >= 0x2040 && Pc < 0x2060) // never reached: loopB is innermost
      return CodeRegionInfo{0x2040, 0x2060, "inner"};
    return std::nullopt; // 0x9000+ is non-regionable
  }
};

/// Builds one interval's buffer: Count samples at each listed PC.
std::vector<Sample> buffer(std::initializer_list<std::pair<Addr, int>> Spec) {
  std::vector<Sample> Out;
  for (const auto &[Pc, Count] : Spec)
    for (int I = 0; I < Count; ++I)
      Out.push_back(Sample{Pc, 0});
  return Out;
}

TEST(RegionMonitor, NoRegionsInitially) {
  TestCodeMap Map;
  RegionMonitor M(Map);
  EXPECT_TRUE(M.regions().empty());
  EXPECT_EQ(M.intervals(), 0u);
}

TEST(RegionMonitor, FirstIntervalIsAllUcrAndTriggersFormation) {
  TestCodeMap Map;
  RegionMonitor M(Map);
  M.observeInterval(buffer({{0x1004, 100}}));
  EXPECT_DOUBLE_EQ(M.lastUcrFraction(), 1.0)
      << "nothing was monitored when the samples arrived";
  EXPECT_EQ(M.formationTriggers(), 1u);
  ASSERT_EQ(M.regions().size(), 1u);
  EXPECT_EQ(M.regions()[0].Name, "loopA");
  EXPECT_EQ(M.regions()[0].Start, 0x1000u);
}

TEST(RegionMonitor, FormedRegionAbsorbsSubsequentSamples) {
  TestCodeMap Map;
  RegionMonitor M(Map);
  M.observeInterval(buffer({{0x1004, 100}}));
  M.observeInterval(buffer({{0x1004, 100}}));
  EXPECT_DOUBLE_EQ(M.lastUcrFraction(), 0.0);
  EXPECT_EQ(M.formationTriggers(), 1u) << "no second trigger";
  EXPECT_EQ(M.lastSampleCount(0), 100u);
}

TEST(RegionMonitor, UcrBelowThresholdDoesNotTrigger) {
  TestCodeMap Map;
  RegionMonitor M(Map);
  M.observeInterval(buffer({{0x1004, 100}})); // forms loopA
  // 20% of samples in unformed loopB code: below the 30% trigger.
  M.observeInterval(buffer({{0x1004, 80}, {0x2010, 20}}));
  EXPECT_DOUBLE_EQ(M.lastUcrFraction(), 0.2);
  EXPECT_EQ(M.regions().size(), 1u);
  // 40% pushes it over.
  M.observeInterval(buffer({{0x1004, 60}, {0x2010, 40}}));
  EXPECT_EQ(M.regions().size(), 2u);
  EXPECT_EQ(M.regions()[1].Name, "loopB");
}

TEST(RegionMonitor, NonRegionableSamplesNeverFormRegions) {
  TestCodeMap Map;
  RegionMonitor M(Map);
  for (int I = 0; I < 5; ++I)
    M.observeInterval(buffer({{0x9000, 100}}));
  EXPECT_TRUE(M.regions().empty());
  EXPECT_EQ(M.formationTriggers(), 5u)
      << "keeps triggering, like 254.gap in Fig. 7";
  EXPECT_DOUBLE_EQ(M.lastUcrFraction(), 1.0);
}

TEST(RegionMonitor, MinRegionSamplesFiltersColdCandidates) {
  TestCodeMap Map;
  RegionMonitorConfig Config;
  Config.MinRegionSamples = 50;
  RegionMonitor M(Map, Config);
  // 60% UCR, but split 40 + 20: only loopA passes the bar.
  M.observeInterval(buffer({{0x9000, 40}, {0x1004, 40}, {0x2010, 20}}));
  ASSERT_EQ(M.regions().size(), 0u) << "nothing passes the 50-sample bar";
  M.observeInterval(buffer({{0x1004, 60}, {0x2010, 40}}));
  ASSERT_EQ(M.regions().size(), 1u);
  EXPECT_EQ(M.regions()[0].Name, "loopA");
}

TEST(RegionMonitor, MaxRegionsCapsFormation) {
  TestCodeMap Map;
  RegionMonitorConfig Config;
  Config.MaxRegions = 1;
  RegionMonitor M(Map, Config);
  M.observeInterval(buffer({{0x1004, 50}, {0x2010, 50}}));
  EXPECT_EQ(M.regions().size(), 1u);
  EXPECT_EQ(M.regions()[0].Name, "loopA") << "hottest candidate wins";
}

TEST(RegionMonitor, LocalDetectionRunsPerRegion) {
  TestCodeMap Map;
  RegionMonitor M(Map);
  M.observeInterval(buffer({{0x1004, 100}})); // form
  // Three similar intervals stabilize the region.
  for (int I = 0; I < 3; ++I)
    M.observeInterval(buffer({{0x1004, 70}, {0x1020, 30}}));
  EXPECT_EQ(M.detector(0).state(), LocalPhaseState::Stable);
  // A bottleneck shift inside the loop destabilizes it.
  M.observeInterval(buffer({{0x1008, 70}, {0x1024, 30}}));
  EXPECT_EQ(M.detector(0).state(), LocalPhaseState::Unstable);
  EXPECT_EQ(M.stats(0).PhaseChanges, 2u);
}

TEST(RegionMonitor, EmptyIntervalFreezesRegionState) {
  TestCodeMap Map;
  RegionMonitor M(Map);
  M.observeInterval(buffer({{0x1004, 100}}));
  for (int I = 0; I < 3; ++I)
    M.observeInterval(buffer({{0x1004, 100}}));
  ASSERT_EQ(M.detector(0).state(), LocalPhaseState::Stable);
  const double RBefore = M.detector(0).lastR();
  // The region receives no samples for a while: state and r persist
  // ("the value of r returned is the same as during the last interval").
  for (int I = 0; I < 4; ++I)
    M.observeInterval(buffer({{0x9000, 100}}));
  EXPECT_EQ(M.detector(0).state(), LocalPhaseState::Stable);
  EXPECT_DOUBLE_EQ(M.detector(0).lastR(), RBefore);
  EXPECT_EQ(M.stats(0).ActiveIntervals, 3u);
  EXPECT_EQ(M.stats(0).LifetimeIntervals, 8u);
}

TEST(RegionMonitor, EventsFireInOrder) {
  TestCodeMap Map;
  RegionMonitor M(Map);
  std::vector<RegionEvent::Kind> Kinds;
  M.setEventHandler(
      [&](const RegionEvent &E) { Kinds.push_back(E.K); });
  M.observeInterval(buffer({{0x1004, 100}}));
  for (int I = 0; I < 3; ++I)
    M.observeInterval(buffer({{0x1004, 100}}));
  M.observeInterval(buffer({{0x1080, 100}})); // shifted bottleneck
  ASSERT_EQ(Kinds.size(), 3u);
  EXPECT_EQ(Kinds[0], RegionEvent::Kind::Formed);
  EXPECT_EQ(Kinds[1], RegionEvent::Kind::BecameStable);
  EXPECT_EQ(Kinds[2], RegionEvent::Kind::BecameUnstable);
}

TEST(RegionMonitor, PruningDropsColdRegions) {
  TestCodeMap Map;
  RegionMonitorConfig Config;
  Config.PruneColdRegions = true;
  Config.PruneAfterIdleIntervals = 3;
  RegionMonitor M(Map, Config);
  std::vector<RegionEvent::Kind> Kinds;
  M.setEventHandler(
      [&](const RegionEvent &E) { Kinds.push_back(E.K); });

  M.observeInterval(buffer({{0x1004, 100}})); // form loopA
  for (int I = 0; I < 4; ++I)
    M.observeInterval(buffer({{0x9000, 100}})); // loopA idle
  EXPECT_FALSE(M.isActive(0));
  EXPECT_TRUE(M.activeRegionIds().empty());
  EXPECT_EQ(Kinds.back(), RegionEvent::Kind::Pruned);
  // The region's code heats up again: it is re-formed under a new id.
  M.observeInterval(buffer({{0x1004, 100}}));
  ASSERT_EQ(M.regions().size(), 2u);
  EXPECT_TRUE(M.isActive(1));
}

TEST(RegionMonitor, OverlappingRegionsBothCredited) {
  /// Oracle with two overlapping formable regions; which one a PC resolves
  /// to depends on the address, but once both exist, samples in the
  /// overlap are credited to both (the paper's >buffer-size stacks).
  class OverlapMap final : public CodeMap {
  public:
    std::optional<CodeRegionInfo> regionFor(Addr Pc) const override {
      if (Pc >= 0x1000 && Pc < 0x1100)
        return CodeRegionInfo{0x1000, 0x1100, "outer"};
      if (Pc >= 0x1100 && Pc < 0x1200)
        return CodeRegionInfo{0x1080, 0x1200, "straddler"};
      return std::nullopt;
    }
  };
  OverlapMap Map;
  RegionMonitor M(Map);
  M.observeInterval(buffer({{0x1004, 50}, {0x1104, 50}}));
  ASSERT_EQ(M.regions().size(), 2u);
  // 0x1090 lies in both regions.
  M.observeInterval(buffer({{0x1090, 100}}));
  EXPECT_EQ(M.lastSampleCount(0), 100u);
  EXPECT_EQ(M.lastSampleCount(1), 100u);
  EXPECT_DOUBLE_EQ(M.lastUcrFraction(), 0.0);
}

TEST(RegionMonitor, TimelinesRecordPerInterval) {
  TestCodeMap Map;
  RegionMonitorConfig Config;
  Config.RecordTimelines = true;
  RegionMonitor M(Map, Config);
  M.observeInterval(buffer({{0x1004, 100}}));
  M.observeInterval(buffer({{0x1004, 60}, {0x9000, 40}}));
  M.observeInterval(buffer({{0x9000, 100}}));
  const auto Samples = M.sampleTimeline(0);
  ASSERT_EQ(Samples.size(), 3u);
  EXPECT_EQ(Samples[0], 0u) << "formed during interval 0";
  EXPECT_EQ(Samples[1], 60u);
  EXPECT_EQ(Samples[2], 0u);
  EXPECT_EQ(M.stateTimeline(0).size(), 3u);
  EXPECT_EQ(M.rTimeline(0).size(), 3u);
}

TEST(RegionMonitor, UcrHistoryMatchesIntervals) {
  TestCodeMap Map;
  RegionMonitor M(Map);
  M.observeInterval(buffer({{0x1004, 100}}));
  M.observeInterval(buffer({{0x1004, 50}, {0x9000, 50}}));
  ASSERT_EQ(M.ucrHistory().size(), 2u);
  EXPECT_DOUBLE_EQ(M.ucrHistory()[0], 1.0);
  EXPECT_DOUBLE_EQ(M.ucrHistory()[1], 0.5);
}

TEST(RegionMonitor, StatsAccumulate) {
  TestCodeMap Map;
  RegionMonitor M(Map);
  M.observeInterval(buffer({{0x1004, 100}}));
  for (int I = 0; I < 4; ++I)
    M.observeInterval(buffer({{0x1004, 80}, {0x9000, 20}}));
  const RegionStats &S = M.stats(0);
  EXPECT_EQ(S.TotalSamples, 320u);
  EXPECT_EQ(S.ActiveIntervals, 4u);
  EXPECT_EQ(S.LifetimeIntervals, 5u);
  EXPECT_EQ(S.StableIntervals, 2u) << "stable from the 3rd observation";
  EXPECT_DOUBLE_EQ(S.stableFraction(), 0.4);
}

TEST(RegionMonitor, MaxNewRegionsPerTrigger) {
  /// Oracle with many distinct hot loops at once.
  class ManyMap final : public CodeMap {
  public:
    std::optional<CodeRegionInfo> regionFor(Addr Pc) const override {
      const Addr Base = Pc & ~Addr(0xff);
      return CodeRegionInfo{Base, Base + 0x100, "L"};
    }
  };
  ManyMap Map;
  RegionMonitorConfig Config;
  Config.MaxNewRegionsPerTrigger = 2;
  Config.MinRegionSamples = 1;
  RegionMonitor M(Map, Config);
  M.observeInterval(buffer(
      {{0x1000, 30}, {0x2000, 25}, {0x3000, 20}, {0x4000, 25}}));
  EXPECT_EQ(M.regions().size(), 2u);
  // Hottest two candidates were taken.
  EXPECT_EQ(M.regions()[0].Start, 0x1000u);
  EXPECT_EQ(M.regions()[1].Start, 0x2000u);
}

} // namespace
