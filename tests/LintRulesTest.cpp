//===- tests/LintRulesTest.cpp - regmon-lint rules engine tests -----------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the regmon-lint rules engine over the fixture snippets in
/// tests/lint_fixtures/. Every rule gets at least one violating and one
/// conforming fixture, plus layer-gating, inline-suppression and
/// baseline round-trip coverage.
///
//===----------------------------------------------------------------------===//

#include "Baseline.h"
#include "CallGraph.h"
#include "Driver.h"
#include "Lint.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

namespace {

using namespace regmon::lint;

std::string readFixture(const std::string &Name) {
  std::string Path = std::string(REGMON_LINT_FIXTURE_DIR) + "/" + Name;
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "missing fixture: " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::vector<Diagnostic> lintFixture(const std::string &Name, Layer L) {
  FileContext FC = buildContext("fixture/" + Name, readFixture(Name), L);
  return runRules(FC);
}

int countRule(const std::vector<Diagnostic> &Diags, std::string_view Rule) {
  int N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Rule == Rule)
      ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// R1: nondeterminism
//===----------------------------------------------------------------------===//

TEST(NondeterminismRule, FlagsClocksAndLibcRand) {
  auto Diags = lintFixture("nondet_bad.cpp", Layer::Deterministic);
  // srand, rand, time(), steady_clock::now, random_device.
  EXPECT_EQ(countRule(Diags, "nondeterminism"), 5);
}

TEST(NondeterminismRule, AcceptsRngAndLookalikes) {
  auto Diags = lintFixture("nondet_good.cpp", Layer::Deterministic);
  EXPECT_EQ(countRule(Diags, "nondeterminism"), 0);
}

TEST(NondeterminismRule, BenchLayerMayUseClocks) {
  auto Diags = lintFixture("nondet_bad.cpp", Layer::Bench);
  EXPECT_EQ(countRule(Diags, "nondeterminism"), 0);
}

TEST(NondeterminismRule, RandomDeviceBannedOutsideSupportRng) {
  // Even the support layer may not draw entropy — only support/Rng may.
  auto Diags = lintFixture("nondet_bad.cpp", Layer::Support);
  EXPECT_EQ(countRule(Diags, "nondeterminism"), 1); // random_device only
  FileContext AsRng = buildContext(
      "src/support/Rng.cpp", readFixture("nondet_bad.cpp"), Layer::Support);
  EXPECT_EQ(countRule(runRules(AsRng), "nondeterminism"), 0);
}

//===----------------------------------------------------------------------===//
// R2a: concurrency
//===----------------------------------------------------------------------===//

TEST(ConcurrencyRule, FlagsPrimitivesOutsideService) {
  auto Diags = lintFixture("concurrency_bad.cpp", Layer::Deterministic);
  // <mutex>, <thread>, std::mutex, std::thread, std::lock_guard,
  // std::mutex again in the lock_guard's template argument.
  EXPECT_EQ(countRule(Diags, "concurrency"), 6);
}

TEST(ConcurrencyRule, AcceptsSequentialCode) {
  auto Diags = lintFixture("concurrency_good.cpp", Layer::Deterministic);
  EXPECT_EQ(countRule(Diags, "concurrency"), 0);
}

TEST(ConcurrencyRule, ServiceAndTestsAreExempt) {
  EXPECT_EQ(countRule(lintFixture("concurrency_bad.cpp", Layer::Service),
                      "concurrency"),
            0);
  EXPECT_EQ(countRule(lintFixture("concurrency_bad.cpp", Layer::Tests),
                      "concurrency"),
            0);
}

//===----------------------------------------------------------------------===//
// R2b: memory-order
//===----------------------------------------------------------------------===//

TEST(MemoryOrderRule, FlagsDefaultedOrdering) {
  auto Diags = lintFixture("memory_order_bad.cpp", Layer::Service);
  EXPECT_EQ(countRule(Diags, "memory-order"), 3); // fetch_add, store, load
}

TEST(MemoryOrderRule, AcceptsExplicitOrdering) {
  auto Diags = lintFixture("memory_order_good.cpp", Layer::Service);
  EXPECT_EQ(countRule(Diags, "memory-order"), 0);
}

//===----------------------------------------------------------------------===//
// R3: iteration-order
//===----------------------------------------------------------------------===//

TEST(IterationOrderRule, FlagsUnorderedIterationFeedingOutput) {
  auto Diags = lintFixture("iteration_bad.cpp", Layer::Deterministic);
  EXPECT_EQ(countRule(Diags, "iteration-order"), 2);
}

TEST(IterationOrderRule, AcceptsOrderedOrFoldingLoops) {
  auto Diags = lintFixture("iteration_good.cpp", Layer::Deterministic);
  EXPECT_EQ(countRule(Diags, "iteration-order"), 0);
}

//===----------------------------------------------------------------------===//
// R4a: header-hygiene
//===----------------------------------------------------------------------===//

TEST(HeaderHygieneRule, FlagsMissingGuardAndNamespaceLeak) {
  auto Diags = lintFixture("hygiene_bad.h", Layer::Support);
  EXPECT_EQ(countRule(Diags, "header-hygiene"), 2);
}

TEST(HeaderHygieneRule, AcceptsGuardedHeaders) {
  EXPECT_EQ(
      countRule(lintFixture("hygiene_good.h", Layer::Support),
                "header-hygiene"),
      0);
  EXPECT_EQ(
      countRule(lintFixture("hygiene_pragma.h", Layer::Support),
                "header-hygiene"),
      0);
}

TEST(HeaderHygieneRule, IgnoresNonHeaders) {
  // Same content, .cpp extension: rule does not apply.
  FileContext FC = buildContext("fixture/hygiene_bad.cpp",
                                readFixture("hygiene_bad.h"), Layer::Support);
  EXPECT_EQ(countRule(runRules(FC), "header-hygiene"), 0);
}

//===----------------------------------------------------------------------===//
// R4b: assert-side-effects
//===----------------------------------------------------------------------===//

TEST(AssertSideEffectsRule, FlagsMutationInsideAssert) {
  auto Diags = lintFixture("assert_bad.cpp", Layer::Deterministic);
  EXPECT_EQ(countRule(Diags, "assert-side-effects"), 2);
}

TEST(AssertSideEffectsRule, AcceptsPureAsserts) {
  auto Diags = lintFixture("assert_good.cpp", Layer::Deterministic);
  EXPECT_EQ(countRule(Diags, "assert-side-effects"), 0);
}

//===----------------------------------------------------------------------===//
// R5: swallowed-exception
//===----------------------------------------------------------------------===//

TEST(SwallowedExceptionRule, FlagsSilentCatchAll) {
  auto Diags = lintFixture("exception_bad.cpp", Layer::Deterministic);
  // empty body, state-patching body, bare return.
  EXPECT_EQ(countRule(Diags, "swallowed-exception"), 3);
  // The rule covers every src/ layer, the service included.
  EXPECT_EQ(countRule(lintFixture("exception_bad.cpp", Layer::Service),
                      "swallowed-exception"),
            3);
}

TEST(SwallowedExceptionRule, AcceptsHandledCatchAll) {
  auto Diags = lintFixture("exception_good.cpp", Layer::Deterministic);
  EXPECT_EQ(countRule(Diags, "swallowed-exception"), 0);
}

TEST(SwallowedExceptionRule, TestsToolsAndBenchExempt) {
  for (Layer L : {Layer::Tests, Layer::Tools, Layer::Bench})
    EXPECT_EQ(countRule(lintFixture("exception_bad.cpp", L),
                        "swallowed-exception"),
              0);
}

//===----------------------------------------------------------------------===//
// R6: persist-serialization
//===----------------------------------------------------------------------===//

std::vector<Diagnostic> lintAsPersist(const std::string &Name) {
  // Two-arg buildContext derives the layer from the path, exactly as the
  // driver would for a real src/persist file.
  FileContext FC = buildContext("src/persist/" + Name, readFixture(Name));
  return runRules(FC);
}

TEST(PersistSerializationRule, FlagsPlatformTypesAndUncheckedIo) {
  auto Diags = lintAsPersist("persist_bad.cpp");
  // size_t, long, unsigned fields; unchecked fwrite + fread.
  EXPECT_EQ(countRule(Diags, "persist-serialization"), 5);
}

TEST(PersistSerializationRule, AcceptsFixedWidthCheckedIo) {
  auto Diags = lintAsPersist("persist_good.cpp");
  EXPECT_EQ(countRule(Diags, "persist-serialization"), 0);
}

TEST(PersistSerializationRule, GatedToPersistPathOnly) {
  FileContext FC = buildContext("src/core/persist_bad.cpp",
                                readFixture("persist_bad.cpp"));
  EXPECT_EQ(countRule(runRules(FC), "persist-serialization"), 0);
}

// The flight recorder (src/trace) writes a wire format too, so the rule
// covers it with the same teeth -- and the path classifies into the
// Deterministic layer, so concurrency tokens are flagged alongside.
TEST(PersistSerializationRule, CoversTraceLayer) {
  FileContext FC = buildContext("src/trace/trace_bad.cpp",
                                readFixture("trace_bad.cpp"));
  auto Diags = runRules(FC);
  // size_t, long, unsigned fields; unchecked fwrite + fread.
  EXPECT_EQ(countRule(Diags, "persist-serialization"), 5);
  // src/trace is Deterministic: the <mutex> include, the mutex and the
  // lock_guard all trip the concurrency rule.
  EXPECT_GE(countRule(Diags, "concurrency"), 3);
}

TEST(PersistSerializationRule, AcceptsConformingTraceCode) {
  FileContext FC = buildContext("src/trace/trace_good.cpp",
                                readFixture("trace_good.cpp"));
  auto Diags = runRules(FC);
  EXPECT_EQ(countRule(Diags, "persist-serialization"), 0);
  EXPECT_EQ(countRule(Diags, "concurrency"), 0);
}

//===----------------------------------------------------------------------===//
// R7: obs-determinism
//===----------------------------------------------------------------------===//

TEST(ObsDeterminismRule, FlagsClocksAndUnorderedContainers) {
  auto Diags = lintFixture("obs_bad.cpp", Layer::Obs);
  // <unordered_map> include, std::unordered_map use, time(), clock now.
  EXPECT_EQ(countRule(Diags, "obs-determinism"), 4);
}

TEST(ObsDeterminismRule, AcceptsAtomicsMapsAndLogicalClocks) {
  auto Diags = lintFixture("obs_good.cpp", Layer::Obs);
  EXPECT_EQ(countRule(Diags, "obs-determinism"), 0);
  // Atomics are legal in this layer (unlike Support) -- the whole point
  // of the lock-free registry -- and the fixture orders them explicitly.
  EXPECT_EQ(countRule(Diags, "concurrency"), 0);
  EXPECT_EQ(countRule(Diags, "memory-order"), 0);
}

TEST(ObsDeterminismRule, GatedToObsLayerOnly) {
  for (Layer L : {Layer::Deterministic, Layer::Support, Layer::Service,
                  Layer::Tools, Layer::Bench, Layer::Tests})
    EXPECT_EQ(countRule(lintFixture("obs_bad.cpp", L), "obs-determinism"), 0);
}

//===----------------------------------------------------------------------===//
// R10: hotpath
//===----------------------------------------------------------------------===//

TEST(HotpathRule, FlagsAllocationGrowthAndIndirectCalls) {
  auto Diags = lintFixture("hotpath_bad.cpp", Layer::Deterministic);
  // new, malloc, make_unique, push_back, resize, ->compare(), ->reserve().
  EXPECT_EQ(countRule(Diags, "hotpath"), 7);
}

TEST(HotpathRule, AcceptsFlatKernelsAndUntaggedAllocation) {
  auto Diags = lintFixture("hotpath_good.cpp", Layer::Deterministic);
  EXPECT_EQ(countRule(Diags, "hotpath"), 0);
}

TEST(HotpathRule, SupportLayerIsAlsoScanned) {
  auto Diags = lintFixture("hotpath_bad.cpp", Layer::Support);
  EXPECT_EQ(countRule(Diags, "hotpath"), 7);
}

TEST(HotpathRule, GatedToHotLayersOnly) {
  for (Layer L : {Layer::Service, Layer::Obs, Layer::Tools, Layer::Bench,
                  Layer::Tests})
    EXPECT_EQ(countRule(lintFixture("hotpath_bad.cpp", L), "hotpath"), 0);
}

//===----------------------------------------------------------------------===//
// Inline suppressions
//===----------------------------------------------------------------------===//

TEST(Suppressions, AllowCommentSilencesNamedRuleOnly) {
  auto Diags = lintFixture("suppressed.cpp", Layer::Deterministic);
  // The include and DemoLock are allowed; UnsuppressedLock is not.
  EXPECT_EQ(countRule(Diags, "concurrency"), 1);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_NE(Diags[0].Snippet.find("UnsuppressedLock"), std::string::npos);
}

TEST(Suppressions, WildcardAllSilencesEveryRule) {
  FileContext FC = buildContext(
      "fixture/wildcard.cpp",
      "#include <mutex> // regmon-lint: allow(all)\n", Layer::Deterministic);
  EXPECT_TRUE(runRules(FC).empty());
}

//===----------------------------------------------------------------------===//
// Baseline round-trip
//===----------------------------------------------------------------------===//

TEST(Baseline, RoundTripSuppressesExactlyOnce) {
  auto Diags = lintFixture("concurrency_bad.cpp", Layer::Deterministic);
  ASSERT_FALSE(Diags.empty());
  std::string Text = Baseline::render(Diags);

  Baseline B = Baseline::parse(Text);
  EXPECT_TRUE(B.errors().empty());
  EXPECT_EQ(B.size(), Diags.size());
  EXPECT_EQ(B.apply(Diags), Diags.size());
  for (const Diagnostic &D : Diags)
    EXPECT_TRUE(D.Baselined);
  EXPECT_TRUE(B.unconsumed().empty());

  // A second identical violation is NOT covered by a single entry.
  auto Fresh = lintFixture("concurrency_bad.cpp", Layer::Deterministic);
  Baseline B2 = Baseline::parse(Text);
  B2.apply(Fresh);
  auto Again = lintFixture("concurrency_bad.cpp", Layer::Deterministic);
  EXPECT_EQ(B2.apply(Again), 0u);
}

TEST(Baseline, ReportsStaleAndMalformedEntries) {
  Baseline B = Baseline::parse("# comment\n"
                               "concurrency|src/x.cpp|std::mutex M;\n"
                               "not a valid entry\n");
  EXPECT_EQ(B.errors().size(), 1u);
  std::vector<Diagnostic> None;
  B.apply(None);
  EXPECT_EQ(B.unconsumed().size(), 1u);
}

//===----------------------------------------------------------------------===//
// Path classification and normalization
//===----------------------------------------------------------------------===//

TEST(Classify, LayerMatrixMatchesTree) {
  EXPECT_EQ(classifyPath("src/core/RegionMonitor.cpp"),
            Layer::Deterministic);
  EXPECT_EQ(classifyPath("src/sim/Engine.cpp"), Layer::Deterministic);
  EXPECT_EQ(classifyPath("src/gpd/CentroidPhaseDetector.h"),
            Layer::Deterministic);
  EXPECT_EQ(classifyPath("src/sampling/Sampler.cpp"), Layer::Deterministic);
  EXPECT_EQ(classifyPath("src/faults/FaultPlan.cpp"), Layer::Deterministic);
  EXPECT_EQ(classifyPath("src/trace/Recorder.cpp"), Layer::Deterministic);
  EXPECT_EQ(classifyPath("src/service/MonitorService.cpp"), Layer::Service);
  EXPECT_EQ(classifyPath("src/obs/Metrics.cpp"), Layer::Obs);
  EXPECT_EQ(classifyPath("src/support/Rng.cpp"), Layer::Support);
  EXPECT_EQ(classifyPath("src/rto/Harness.cpp"), Layer::Support);
  EXPECT_EQ(classifyPath("tools/regmon_cli.cpp"), Layer::Tools);
  EXPECT_EQ(classifyPath("bench/BenchSupport.cpp"), Layer::Bench);
  EXPECT_EQ(classifyPath("tests/CoreLpdTest.cpp"), Layer::Tests);
  EXPECT_EQ(classifyPath("examples/quickstart.cpp"), Layer::Other);
}

TEST(Normalize, CollapsesWhitespace) {
  EXPECT_EQ(normalizeLine("  std::mutex\t M;  "), "std::mutex M;");
  EXPECT_EQ(normalizeLine(""), "");
}

//===----------------------------------------------------------------------===//
// Lexer robustness: banned names inside comments/strings never match.
//===----------------------------------------------------------------------===//

TEST(Lexer, LiteralsAndCommentsAreOpaque) {
  FileContext FC = buildContext("src/core/x.cpp",
                                "// calls std::rand() and time(nullptr)\n"
                                "const char *Doc = \"std::rand()\";\n"
                                "/* steady_clock::now() */\n",
                                Layer::Deterministic);
  EXPECT_TRUE(runRules(FC).empty());
}

TEST(Lexer, PrefixedMultilineRawStringIsOpaque) {
  // u8R/uR/UR/LR prefixes must route to the raw-string scanner like plain
  // R; a violation *after* the literal is still caught, on its real line.
  FileContext FC = buildContext("src/core/x.cpp",
                                "const char *Doc = u8R\"(\n"
                                "  std::rand() and time(nullptr)\n"
                                ")\";\n"
                                "int Seed = std::rand();\n",
                                Layer::Deterministic);
  auto Diags = runRules(FC);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Rule, "nondeterminism");
  EXPECT_EQ(Diags[0].Line, 4);
}

TEST(Lexer, SplicedIdentifiersLexAsOneToken) {
  // A backslash-newline splice inside an identifier must not split it in
  // two -- `std::ra\<nl>nd()` is a std::rand() call.
  FileContext FC = buildContext("src/core/x.cpp",
                                "int X = std::ra\\\nnd();\n",
                                Layer::Deterministic);
  EXPECT_EQ(countRule(runRules(FC), "nondeterminism"), 1);
}

TEST(Lexer, SplicedLineCommentSwallowsContinuation) {
  // A line comment ending in `\` continues onto the next physical line;
  // that line is comment text, not code.
  FileContext FC = buildContext("src/core/x.cpp",
                                "// hidden \\\nstd::rand();\nint X = 0;\n",
                                Layer::Deterministic);
  EXPECT_TRUE(runRules(FC).empty());
}

//===----------------------------------------------------------------------===//
// R11-R13: call-graph purity rules
//===----------------------------------------------------------------------===//

std::vector<Diagnostic> lintGraphFixture(const std::string &Name, Layer L) {
  std::vector<FileContext> Files;
  Files.push_back(buildContext("fixture/" + Name, readFixture(Name), L));
  CallGraph G = CallGraph::build(Files);
  return runGraphRules(G, Files);
}

TEST(PurityGraph, TokenRuleMissesWhatTheGraphProves) {
  // Every seeded violation sits at least one call below the annotated
  // body, so the per-file hotpath scan stays clean -- only the graph pass
  // convicts (laundering + the three-hop allocation).
  auto TokenDiags = lintFixture("purity_bad.cpp", Layer::Deterministic);
  EXPECT_EQ(countRule(TokenDiags, "hotpath"), 0);
  auto Diags = lintGraphFixture("purity_bad.cpp", Layer::Deterministic);
  EXPECT_EQ(countRule(Diags, "purity-hot"), 2);
}

TEST(PurityGraph, IndirectCallLaunderingCaught) {
  auto Diags = lintGraphFixture("purity_bad.cpp", Layer::Deterministic);
  bool Found = false;
  for (const Diagnostic &D : Diags)
    if (D.Rule == "purity-hot" &&
        D.Message.find("hotLaundered -> launder") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(PurityGraph, ThreeHopAllocationChainReported) {
  auto Diags = lintGraphFixture("purity_bad.cpp", Layer::Deterministic);
  bool Found = false;
  for (const Diagnostic &D : Diags)
    if (D.Rule == "purity-hot" &&
        D.Message.find("hotDeepAlloc -> hopOne -> hopTwo -> hopThree") !=
            std::string::npos &&
        D.Message.find("operator new") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(PurityGraph, PureRootClockViolationCarriesChain) {
  auto Diags = lintGraphFixture("purity_bad.cpp", Layer::Deterministic);
  EXPECT_EQ(countRule(Diags, "purity"), 3);
  bool Found = false;
  for (const Diagnostic &D : Diags)
    if (D.Rule == "purity" &&
        D.Message.find("detectorDecide -> helperClock") !=
            std::string::npos &&
        D.Message.find("steady_clock") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(PurityGraph, PureMergeSmugglingClockThroughHelperCaught) {
  // A summary merge annotated REGMON_PURE whose tie-break helper reads a
  // wall clock: the merge body itself is token-clean, so only the graph
  // pass can prove replay instability.
  auto Diags = lintGraphFixture("purity_bad.cpp", Layer::Deterministic);
  bool Found = false;
  for (const Diagnostic &D : Diags)
    if (D.Rule == "purity" &&
        D.Message.find("mergeSummaries -> mergeTieBreak") !=
            std::string::npos &&
        D.Message.find("steady_clock") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(PurityGraph, ControllerDecisionSmugglingClockThroughHelperCaught) {
  // The adaptive-sampling shape: a REGMON_PURE controller decision whose
  // streak-expiry helper reads a wall clock. The decision body is
  // token-clean, so only the graph pass can prove the period schedule
  // would not replay -- the contract AdaptiveController::observe relies
  // on (DESIGN.md §16).
  auto Diags = lintGraphFixture("purity_bad.cpp", Layer::Deterministic);
  bool Found = false;
  for (const Diagnostic &D : Diags)
    if (D.Rule == "purity" &&
        D.Message.find("controllerDecide -> streakExpired") !=
            std::string::npos &&
        D.Message.find("steady_clock") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(PurityGraph, ConfinementFlagsSmuggledConcurrencyOnly) {
  auto Diags = lintGraphFixture("purity_bad.cpp", Layer::Deterministic);
  // guardedBump's own mutex (chain length 1) is the token `concurrency`
  // rule's territory; only the laundered reach through intervalEnd fires.
  EXPECT_EQ(countRule(Diags, "purity-confinement"), 1);
  for (const Diagnostic &D : Diags)
    if (D.Rule == "purity-confinement") {
      EXPECT_NE(D.Message.find("intervalEnd -> guardedBump"),
                std::string::npos);
    }
}

TEST(PurityGraph, DiagnosticsAnchorAtTheAnnotatedRoot) {
  auto Diags = lintGraphFixture("purity_bad.cpp", Layer::Deterministic);
  for (const Diagnostic &D : Diags) {
    if (D.Rule == "purity-confinement")
      continue; // anchored at the (unannotated) deterministic caller
    EXPECT_FALSE(D.Snippet.empty());
    EXPECT_NE(D.Snippet.find("REGMON_"), std::string::npos)
        << D.Rule << ": " << D.Snippet;
  }
}

TEST(PurityGraph, GoodFixtureAndAllowExemptionStayClean) {
  // hotExempted reaches an allocation, but the evidence line carries
  // `allow(purity-hot)`; pureAlloc allocates, which REGMON_PURE permits.
  auto Diags = lintGraphFixture("purity_good.cpp", Layer::Deterministic);
  EXPECT_TRUE(Diags.empty());
}

TEST(Driver, RunsOverFixtureTreeAndSortsDiagnostics) {
  DriverOptions Options;
  Options.Root = REGMON_LINT_FIXTURE_DIR;
  Options.Paths = {"."};
  Options.UseBaseline = false;
  RunResult R = runLint(Options);
  EXPECT_GT(R.FilesScanned, 10u);
  EXPECT_TRUE(R.Errors.empty());
  // Fixtures classify as Layer::Other (outside src/), so only the
  // layer-independent rules fire here; sorted by path then line.
  for (std::size_t I = 1; I < R.Diags.size(); ++I) {
    const Diagnostic &A = R.Diags[I - 1], &B = R.Diags[I];
    EXPECT_TRUE(A.Path < B.Path || (A.Path == B.Path && A.Line <= B.Line));
  }
}

TEST(Driver, BuildsCallGraphOverScannedFiles) {
  DriverOptions Options;
  Options.Root = REGMON_LINT_FIXTURE_DIR;
  Options.Paths = {"purity_bad.cpp"};
  Options.UseBaseline = false;
  RunResult R = runLint(Options);
  ASSERT_TRUE(R.Graph != nullptr);
  EXPECT_GT(R.Graph->nodes().size(), 5u);
  std::ostringstream Dot, Json;
  R.Graph->dumpDot(Dot);
  R.Graph->dumpJson(Json);
  EXPECT_NE(Dot.str().find("digraph"), std::string::npos);
  EXPECT_NE(Json.str().find("\"nodes\""), std::string::npos);
}

TEST(Driver, CheckBaselineTurnsStaleEntriesIntoErrors) {
  std::string Path = testing::TempDir() + "regmon_stale_baseline.txt";
  {
    std::ofstream Out(Path, std::ios::trunc);
    Out << "concurrency|no/such/file.cpp|std::mutex Gone;\n";
  }
  DriverOptions Options;
  Options.Root = REGMON_LINT_FIXTURE_DIR;
  Options.Paths = {"concurrency_good.cpp"};
  Options.BaselinePath = Path;
  RunResult R = runLint(Options);
  ASSERT_EQ(R.Stale.size(), 1u);
  EXPECT_TRUE(R.Errors.empty()); // default: stale is only a warning
  Options.CheckBaseline = true;
  RunResult Strict = runLint(Options);
  ASSERT_EQ(Strict.Stale.size(), 1u);
  EXPECT_FALSE(Strict.Errors.empty());
  EXPECT_EQ(exitCode(Strict), 2);
}

} // namespace
