//===- tests/MissMonitoringTest.cpp - DPI & self-monitoring ---------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the performance-characteristics extension: miss-event
/// sampling in the engine, per-region DPI / delinquent loads in the
/// monitor, the optional miss-histogram detection channel, and the
/// observational self-monitoring feedback loop (paper section 5).
///
//===----------------------------------------------------------------------===//

#include "core/RegionMonitor.h"
#include "rto/Harness.h"
#include "rto/TraceDeployments.h"
#include "sampling/Sampler.h"
#include "sim/Engine.h"
#include "sim/ProgramCodeMap.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace regmon;

namespace {

struct MissSetup {
  sim::Program Prog;
  sim::PhaseScript Script;
  sim::LoopId Hot = 0;

  MissSetup() {
    sim::ProgramBuilder B("miss-test");
    const auto Proc = B.addProcedure("f", 0x1000, 0x2000);
    Hot = B.addLoop(Proc, 0x1000, 0x1100); // 64 instructions
    const std::vector<std::pair<std::size_t, double>> Spots = {{8, 50.0}};
    const sim::ProfileId P = B.addHotSpotProfile(Hot, 1.0, Spots);
    const std::vector<std::pair<std::size_t, double>> Misses = {{8, 0.6}};
    B.setMissModel(Hot, P, /*Background=*/0.0, Misses);
    const sim::MixId M = Script.addMix({sim::MixComponent{Hot, P, 1.0}});
    Script.steady(M, 50'000'000);
    Prog = B.build();
  }
};

TEST(MissSampling, HotInstructionMissesAtItsModelRate) {
  MissSetup T;
  sim::Engine E(T.Prog, T.Script, 1);
  int HotSamples = 0, HotMisses = 0, ColdMisses = 0;
  for (int I = 0; I < 20'000; ++I) {
    const auto S = E.advanceAndSample(1'000);
    ASSERT_TRUE(S.has_value());
    if (S->Pc == 0x1000 + 8 * 4) {
      ++HotSamples;
      HotMisses += S->DCacheMiss ? 1 : 0;
    } else {
      ColdMisses += S->DCacheMiss ? 1 : 0;
    }
  }
  ASSERT_GT(HotSamples, 1000);
  EXPECT_NEAR(HotMisses / static_cast<double>(HotSamples), 0.6, 0.05);
  EXPECT_EQ(ColdMisses, 0) << "background miss rate is zero";
}

TEST(MissSampling, MissScaleReducesObservedMisses) {
  MissSetup T;
  sim::Engine E(T.Prog, T.Script, 2);
  E.setMissScale(T.Hot, 0.25);
  int HotSamples = 0, HotMisses = 0;
  for (int I = 0; I < 20'000; ++I) {
    const auto S = E.advanceAndSample(1'000);
    ASSERT_TRUE(S.has_value());
    if (S->Pc == 0x1000 + 8 * 4) {
      ++HotSamples;
      HotMisses += S->DCacheMiss ? 1 : 0;
    }
  }
  EXPECT_NEAR(HotMisses / static_cast<double>(HotSamples), 0.15, 0.03);
}

TEST(MissSampling, MissModelDoesNotPerturbPcStream) {
  // The PC sequence must be bit-identical with and without a miss model:
  // miss tagging draws from an independent generator.
  sim::ProgramBuilder B1("a"), B2("b");
  for (auto *B : {&B1, &B2}) {
    const auto Proc = B->addProcedure("f", 0x1000, 0x2000);
    const sim::LoopId L = B->addLoop(Proc, 0x1000, 0x1100);
    const std::vector<std::pair<std::size_t, double>> Spots = {{3, 20.0}};
    const sim::ProfileId P = B->addHotSpotProfile(L, 1.0, Spots);
    if (B == &B2) {
      const std::vector<std::pair<std::size_t, double>> Misses = {{3, 0.5}};
      B->setMissModel(L, P, 0.1, Misses);
    }
  }
  sim::PhaseScript S1, S2;
  S1.steady(S1.addMix({sim::MixComponent{0, 0, 1.0}}), 1'000'000);
  S2.steady(S2.addMix({sim::MixComponent{0, 0, 1.0}}), 1'000'000);
  const sim::Program P1 = B1.build(), P2 = B2.build();
  sim::Engine E1(P1, S1, 7), E2(P2, S2, 7);
  for (int I = 0; I < 500; ++I) {
    const auto A = E1.advanceAndSample(1'000);
    const auto B = E2.advanceAndSample(1'000);
    ASSERT_EQ(A.has_value(), B.has_value());
    if (A) {
      ASSERT_EQ(A->Pc, B->Pc);
    }
  }
}

TEST(MissSampling, ShiftedProfileShiftsMissModel) {
  sim::ProgramBuilder B("p");
  const auto Proc = B.addProcedure("f", 0, 0x100);
  const sim::LoopId L = B.addLoop(Proc, 0, 0x28); // 10 instructions
  const std::vector<std::pair<std::size_t, double>> Spots = {{2, 9.0}};
  const sim::ProfileId Base = B.addHotSpotProfile(L, 1.0, Spots);
  const std::vector<std::pair<std::size_t, double>> Misses = {{2, 0.8}};
  B.setMissModel(L, Base, 0.0, Misses);
  const sim::ProfileId Shifted = B.addShiftedProfile(L, Base, 1);
  const sim::Program P = B.build();
  EXPECT_DOUBLE_EQ(P.missRates(L, Shifted)[3], 0.8);
  EXPECT_DOUBLE_EQ(P.missRates(L, Shifted)[2], 0.0);
}

/// Drives one workload through a monitor and returns it for inspection.
struct MonitoredRun {
  workloads::Workload W;
  sim::ProgramCodeMap Map;
  core::RegionMonitor Monitor;

  explicit MonitoredRun(const std::string &Name,
                        core::RegionMonitorConfig Config = {})
      : W(workloads::make(Name)), Map(W.Prog), Monitor(Map, Config) {
    sim::Engine Engine(W.Prog, W.Script, 1);
    sampling::Sampler Sampler(Engine, {45'000, 2032});
    Sampler.run([&](std::span<const Sample> Buffer) {
      Monitor.observeInterval(Buffer);
    });
  }
};

TEST(RegionCharacteristics, MissFractionMatchesModel) {
  // synthetic.steady's loop A: hotspot bin 12 holds weight 31/(63+31)
  // of the loop's samples and misses at 0.45 + background 0.02.
  MonitoredRun Run("synthetic.steady");
  const auto Ids = Run.Monitor.activeRegionIds();
  ASSERT_EQ(Ids.size(), 2u);
  for (core::RegionId Id : Ids) {
    const core::Region &R = Run.Monitor.regions()[Id];
    const double Dpi = Run.Monitor.stats(Id).missFraction();
    if (R.Start == 0x10100) {
      // weight on bin 12: 31 of 78 total -> miss fraction ~ 0.02 +
      // (31/78)*0.45 ~ 0.198.
      EXPECT_NEAR(Dpi, 0.198, 0.02);
    } else {
      // loop C (32 instrs): bin 7 carries 25/56 of the weight and misses
      // at 0.32.
      EXPECT_NEAR(Dpi, (31 * 0.02 + 25 * 0.32) / 56.0, 0.02);
    }
  }
}

TEST(RegionCharacteristics, DelinquentLoadsRankByMisses) {
  MonitoredRun Run("synthetic.steady");
  for (core::RegionId Id : Run.Monitor.activeRegionIds()) {
    const core::Region &R = Run.Monitor.regions()[Id];
    const auto Loads = Run.Monitor.delinquentLoads(Id, 2);
    ASSERT_FALSE(Loads.empty());
    const Addr ExpectedTop =
        R.Start == 0x10100 ? R.Start + 12 * 4 : R.Start + 7 * 4;
    EXPECT_EQ(Loads[0].Pc, ExpectedTop)
        << "the modelled delinquent load must rank first";
    if (Loads.size() > 1) {
      EXPECT_GE(Loads[0].Misses, Loads[1].Misses);
    }
  }
}

TEST(RegionCharacteristics, RecentMissFractionTracksCurrentWindow) {
  // synthetic.pollution: miss pattern moves at 1/3 of the run but total
  // miss fraction stays similar; the windowed fraction stays positive
  // throughout and the cumulative top delinquent load reflects both bins.
  MonitoredRun Run("synthetic.pollution");
  const auto Ids = Run.Monitor.activeRegionIds();
  ASSERT_EQ(Ids.size(), 1u);
  EXPECT_GT(Run.Monitor.recentMissFraction(Ids[0]), 0.1);
  const auto Loads = Run.Monitor.delinquentLoads(Ids[0], 2);
  ASSERT_EQ(Loads.size(), 2u);
  // Both phase-1 (bin 12) and phase-2 (bin 30) delinquent loads appear.
  const Addr Base = Run.Monitor.regions()[Ids[0]].Start;
  EXPECT_TRUE((Loads[0].Pc == Base + 12 * 4 &&
               Loads[1].Pc == Base + 30 * 4) ||
              (Loads[0].Pc == Base + 30 * 4 &&
               Loads[1].Pc == Base + 12 * 4));
}

TEST(MissChannel, PollutionInvisibleToCycleDetectorVisibleToMissChannel) {
  core::RegionMonitorConfig Plain;
  MonitoredRun PlainRun("synthetic.pollution", Plain);
  const auto PlainIds = PlainRun.Monitor.activeRegionIds();
  ASSERT_EQ(PlainIds.size(), 1u);
  EXPECT_LE(PlainRun.Monitor.stats(PlainIds[0]).PhaseChanges, 1u)
      << "the cycle histogram never changes";

  core::RegionMonitorConfig WithMiss;
  WithMiss.TrackMissPhases = true;
  MonitoredRun MissRun("synthetic.pollution", WithMiss);
  const auto Ids = MissRun.Monitor.activeRegionIds();
  ASSERT_EQ(Ids.size(), 1u);
  EXPECT_GE(MissRun.Monitor.stats(Ids[0]).MissPhaseChanges, 2u)
      << "the miss histogram shift is a detectable local phase change";
}

TEST(MissChannel, EmitsMissPhaseChangeEvent) {
  workloads::Workload W = workloads::make("synthetic.pollution");
  sim::Engine Engine(W.Prog, W.Script, 1);
  sampling::Sampler Sampler(Engine, {45'000, 2032});
  sim::ProgramCodeMap Map(W.Prog);
  core::RegionMonitorConfig Config;
  Config.TrackMissPhases = true;
  core::RegionMonitor Monitor(Map, Config);
  int MissEvents = 0;
  Monitor.setEventHandler([&](const core::RegionEvent &E) {
    if (E.K == core::RegionEvent::Kind::MissPhaseChange)
      ++MissEvents;
  });
  Sampler.run([&](std::span<const Sample> Buffer) {
    Monitor.observeInterval(Buffer);
  });
  EXPECT_GE(MissEvents, 1);
}

TEST(TraceDeployments, DeploySetsMissScale) {
  workloads::Workload W = workloads::make("synthetic.steady");
  const rto::OptimizationModel Model(W.Opportunities);
  sim::Engine Eng(W.Prog, W.Script, 1);
  rto::TraceDeployments T(Eng, Model, 0, /*PrefetchMissCover=*/0.75);
  T.deploy(0);
  EXPECT_DOUBLE_EQ(Eng.missScale(0), 0.25);
  T.unpatch(0);
  EXPECT_DOUBLE_EQ(Eng.missScale(0), 1.0);
}

TEST(TraceDeployments, MismatchRestoresMissRate) {
  workloads::Workload W = workloads::make("synthetic.pollution");
  const rto::OptimizationModel Model(W.Opportunities);
  sim::Engine Eng(W.Prog, W.Script, 1);
  rto::TraceDeployments T(Eng, Model, 0);
  T.deploy(0);
  ASSERT_DOUBLE_EQ(Eng.missScale(0), 0.25);
  // Cross into phase 2 (profile changes at 2G work).
  ASSERT_TRUE(Eng.advanceAndSample(2'500'000'000).has_value());
  T.refresh();
  EXPECT_DOUBLE_EQ(Eng.missScale(0), 1.0)
      << "mismatched prefetches stop covering misses";
  EXPECT_LT(Eng.speedup(0), 1.0) << "and pollute";
}

rto::RtoResult runPollution(rto::SelfMonitorMode Mode,
                            bool TrackMissPhases = false) {
  const workloads::Workload W = workloads::make("synthetic.pollution");
  rto::RtoConfig Config;
  Config.Sampling.PeriodCycles = 45'000;
  Config.SelfMonitor = Mode;
  Config.Monitor.TrackMissPhases = TrackMissPhases;
  return rto::runLocal(W.Prog, W.Script, W.model(), 1, Config);
}

TEST(SelfMonitoring, WithoutFeedbackTheHarmfulTracePersists) {
  const workloads::Workload W = workloads::make("synthetic.pollution");
  rto::RtoConfig Config;
  Config.Sampling.PeriodCycles = 45'000;
  const rto::RtoResult Unopt =
      rto::runUnoptimized(W.Prog, W.Script, 1, Config);
  const rto::RtoResult Off = runPollution(rto::SelfMonitorMode::Off);
  // Phase 2 is twice as long as phase 1; the polluting trace costs more
  // than the phase-1 prefetching gain.
  EXPECT_GT(Off.TotalCycles, Unopt.TotalCycles);
  EXPECT_EQ(Off.SelfUndos, 0u);
}

TEST(SelfMonitoring, ObservationalFeedbackUndoesTheHarmfulTrace) {
  const rto::RtoResult Obs =
      runPollution(rto::SelfMonitorMode::Observational);
  EXPECT_GE(Obs.SelfUndos, 1u);
  const rto::RtoResult Off = runPollution(rto::SelfMonitorMode::Off);
  EXPECT_LT(Obs.TotalCycles, Off.TotalCycles);
}

TEST(SelfMonitoring, ObservationalApproachesGroundTruth) {
  const rto::RtoResult Obs =
      runPollution(rto::SelfMonitorMode::Observational);
  const rto::RtoResult Oracle =
      runPollution(rto::SelfMonitorMode::GroundTruth);
  // The honest monitor pays a detection delay but must land within 2% of
  // the oracle's cycle count.
  EXPECT_LT(static_cast<double>(Obs.TotalCycles),
            static_cast<double>(Oracle.TotalCycles) * 1.02);
}

TEST(SelfMonitoring, MissChannelDetectionAlsoRecovers) {
  const rto::RtoResult MissChannel =
      runPollution(rto::SelfMonitorMode::Off, /*TrackMissPhases=*/true);
  const rto::RtoResult Off = runPollution(rto::SelfMonitorMode::Off);
  EXPECT_LT(MissChannel.TotalCycles, Off.TotalCycles)
      << "the miss-histogram channel unpatches on the shift";
}

} // namespace
