//===- tests/SupportStatisticsTest.cpp - Statistics kernels ---------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace regmon;

namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0);
  EXPECT_DOUBLE_EQ(S.variance(), 0);
  EXPECT_DOUBLE_EQ(S.stddev(), 0);
}

TEST(RunningStats, SingleValue) {
  RunningStats S;
  S.add(42.5);
  EXPECT_EQ(S.count(), 1u);
  EXPECT_DOUBLE_EQ(S.mean(), 42.5);
  EXPECT_DOUBLE_EQ(S.variance(), 0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats S;
  for (double V : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(V);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_DOUBLE_EQ(S.stddev(), 2.0); // classic population-stddev example
}

TEST(RunningStats, ClearResets) {
  RunningStats S;
  S.add(1);
  S.add(2);
  S.clear();
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0);
}

TEST(RunningStats, MatchesTwoPassOnRandomData) {
  Rng Random(11);
  std::vector<double> Values;
  RunningStats S;
  for (int I = 0; I < 1000; ++I) {
    const double V = Random.nextDouble() * 1e6;
    Values.push_back(V);
    S.add(V);
  }
  double Mean = 0;
  for (double V : Values)
    Mean += V;
  Mean /= static_cast<double>(Values.size());
  double Var = 0;
  for (double V : Values)
    Var += (V - Mean) * (V - Mean);
  Var /= static_cast<double>(Values.size());
  EXPECT_NEAR(S.mean(), Mean, 1e-6);
  EXPECT_NEAR(S.variance(), Var, 1e-3);
}

TEST(WindowedStats, FillsToCapacityThenSlides) {
  WindowedStats W(3);
  W.add(1);
  W.add(2);
  EXPECT_FALSE(W.full());
  EXPECT_DOUBLE_EQ(W.mean(), 1.5);
  W.add(3);
  EXPECT_TRUE(W.full());
  EXPECT_DOUBLE_EQ(W.mean(), 2.0);
  W.add(10); // evicts 1
  EXPECT_DOUBLE_EQ(W.mean(), 5.0);
  EXPECT_EQ(W.count(), 3u);
}

TEST(WindowedStats, StddevOfConstantIsZero) {
  WindowedStats W(4);
  for (int I = 0; I < 10; ++I)
    W.add(7.0);
  EXPECT_DOUBLE_EQ(W.stddev(), 0.0);
}

TEST(WindowedStats, StddevResistsCancellation) {
  // Large base with tiny spread: the naive sum-of-squares shortcut loses
  // all precision here.
  WindowedStats W(4);
  const double Base = 1e12;
  for (double D : {0.0, 1.0, 2.0, 3.0})
    W.add(Base + D);
  EXPECT_NEAR(W.stddev(), std::sqrt(1.25), 1e-6);
}

TEST(WindowedStats, ClearEmptiesWindow) {
  WindowedStats W(3);
  W.add(5);
  W.add(6);
  W.clear();
  EXPECT_EQ(W.count(), 0u);
  EXPECT_DOUBLE_EQ(W.mean(), 0);
  W.add(9);
  EXPECT_DOUBLE_EQ(W.mean(), 9);
}

TEST(WindowedStats, SlidingMatchesBatchOnRandomData) {
  Rng Random(12);
  WindowedStats W(8);
  std::vector<double> All;
  for (int I = 0; I < 200; ++I) {
    const double V = Random.nextDouble() * 100;
    All.push_back(V);
    W.add(V);
    const std::size_t Lo = All.size() > 8 ? All.size() - 8 : 0;
    double Mean = 0;
    for (std::size_t J = Lo; J < All.size(); ++J)
      Mean += All[J];
    Mean /= static_cast<double>(All.size() - Lo);
    ASSERT_NEAR(W.mean(), Mean, 1e-9) << "at step " << I;
  }
}

TEST(WindowedStats, ResizeShrinkKeepsNewest) {
  WindowedStats W(4);
  for (double V : {1.0, 2.0, 3.0, 4.0, 5.0}) // window holds 2,3,4,5
    W.add(V);
  W.resize(2); // keeps 4, 5
  EXPECT_EQ(W.count(), 2u);
  EXPECT_DOUBLE_EQ(W.mean(), 4.5);
  W.add(7); // evicts 4
  EXPECT_DOUBLE_EQ(W.mean(), 6.0);
}

TEST(WindowedStats, ResizeGrowKeepsAll) {
  WindowedStats W(2);
  W.add(1);
  W.add(2);
  W.add(3); // window: 2, 3
  W.resize(4);
  EXPECT_EQ(W.count(), 2u);
  EXPECT_EQ(W.capacity(), 4u);
  W.add(4);
  W.add(5);
  EXPECT_DOUBLE_EQ(W.mean(), (2.0 + 3 + 4 + 5) / 4);
  W.add(6); // now evicts 2
  EXPECT_DOUBLE_EQ(W.mean(), (3.0 + 4 + 5 + 6) / 4);
}

TEST(WindowedStats, ResizeBeforeWrapIsChronological) {
  WindowedStats W(8);
  W.add(10);
  W.add(20);
  W.resize(1);
  EXPECT_DOUBLE_EQ(W.mean(), 20) << "the newest value survives";
}

TEST(Pearson, PerfectPositiveCorrelation) {
  const std::vector<double> X = {1, 2, 3, 4, 5};
  const std::vector<double> Y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(std::span<const double>(X),
                      std::span<const double>(Y)),
              1.0, 1e-12);
}

TEST(Pearson, PerfectNegativeCorrelation) {
  const std::vector<double> X = {1, 2, 3, 4, 5};
  const std::vector<double> Y = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(std::span<const double>(X),
                      std::span<const double>(Y)),
              -1.0, 1e-12);
}

TEST(Pearson, BothConstantIsOne) {
  const std::vector<std::uint32_t> X = {5, 5, 5};
  const std::vector<std::uint32_t> Y = {9, 9, 9};
  EXPECT_DOUBLE_EQ(pearson(std::span<const std::uint32_t>(X),
                           std::span<const std::uint32_t>(Y)),
                   1.0);
}

TEST(Pearson, OneConstantIsZero) {
  const std::vector<std::uint32_t> X = {5, 5, 5};
  const std::vector<std::uint32_t> Y = {1, 9, 4};
  EXPECT_DOUBLE_EQ(pearson(std::span<const std::uint32_t>(X),
                           std::span<const std::uint32_t>(Y)),
                   0.0);
}

// Regression: pearson used to assert on size mismatch and emptiness, so
// an NDEBUG build fed hostile inputs (a fuzzed checkpoint, a corrupted
// batch) straight into the accumulation and could return NaN -- which
// wedged the LPD state machine, since NaN fails every r >= rt and every
// r < rt comparison. The kernel must now total-map every input.
TEST(Pearson, EmptyAgainstEmptyIsOne) {
  const std::vector<double> None;
  EXPECT_DOUBLE_EQ(pearson(std::span<const double>(None),
                           std::span<const double>(None)),
                   1.0);
}

TEST(Pearson, MismatchedLengthsAreZero) {
  const std::vector<double> X = {1, 2, 3};
  const std::vector<double> Y = {1, 2};
  const std::vector<double> None;
  EXPECT_DOUBLE_EQ(pearson(std::span<const double>(X),
                           std::span<const double>(Y)),
                   0.0);
  EXPECT_DOUBLE_EQ(pearson(std::span<const double>(Y),
                           std::span<const double>(X)),
                   0.0);
  EXPECT_DOUBLE_EQ(pearson(std::span<const double>(X),
                           std::span<const double>(None)),
                   0.0);
}

TEST(Pearson, NeverNaNOnHostileInputs) {
  // Degenerate and extreme shapes, single elements, huge magnitudes that
  // overflow the cross-moments to infinity: the result must always be a
  // finite number in [-1, 1].
  const std::vector<std::vector<double>> Cases = {
      {},
      {0},
      {1e308},
      {-1e308, 1e308},
      {1e308, 1e308, -1e308},
      {0, 0, 0},
      {1, 2, 3},
  };
  for (const auto &X : Cases)
    for (const auto &Y : Cases) {
      const double R =
          pearson(std::span<const double>(X), std::span<const double>(Y));
      EXPECT_TRUE(std::isfinite(R)) << "pearson returned non-finite";
      EXPECT_GE(R, -1.0);
      EXPECT_LE(R, 1.0);
    }
}

TEST(Pearson, PaperShiftExample) {
  // Fig. 8: shifting the bottleneck by one instruction must push r far
  // below the rt = 0.8 threshold.
  std::vector<std::uint32_t> Original = {10, 12, 9,  350, 11,
                                         14, 95, 10, 13,  11};
  std::vector<std::uint32_t> Shifted(Original.size());
  for (std::size_t I = 0; I < Original.size(); ++I)
    Shifted[(I + 1) % Original.size()] = Original[I];
  const double R = pearson(std::span<const std::uint32_t>(Original),
                           std::span<const std::uint32_t>(Shifted));
  EXPECT_LT(R, 0.2);
}

/// Property sweep: for random histograms, r is within [-1, 1], symmetric,
/// exactly 1 against any positive scaling of itself, and insensitive to
/// adding a constant.
class PearsonPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PearsonPropertyTest, BoundsSymmetryScaleAndShiftInvariance) {
  Rng Random(GetParam());
  const std::size_t N = 4 + Random.nextBelow(60);
  std::vector<double> X(N), Y(N);
  for (std::size_t I = 0; I < N; ++I) {
    X[I] = static_cast<double>(Random.nextBelow(1000));
    Y[I] = static_cast<double>(Random.nextBelow(1000));
  }
  // Ensure both vary (degenerate handling is tested separately).
  X[0] += 1000;
  Y[N - 1] += 1000;

  const auto SX = std::span<const double>(X);
  const auto SY = std::span<const double>(Y);
  const double R = pearson(SX, SY);
  EXPECT_GE(R, -1.0 - 1e-12);
  EXPECT_LE(R, 1.0 + 1e-12);
  EXPECT_NEAR(pearson(SY, SX), R, 1e-12) << "not symmetric";

  // Scale invariance: r(X, 3.7 * X) == 1.
  std::vector<double> Scaled(N);
  for (std::size_t I = 0; I < N; ++I)
    Scaled[I] = X[I] * 3.7;
  EXPECT_NEAR(pearson(SX, std::span<const double>(Scaled)), 1.0, 1e-9);

  // Shift invariance: r(X, Y + c) == r(X, Y).
  std::vector<double> ShiftedY(N);
  for (std::size_t I = 0; I < N; ++I)
    ShiftedY[I] = Y[I] + 123.0;
  EXPECT_NEAR(pearson(SX, std::span<const double>(ShiftedY)), R, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PearsonPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 33));

TEST(Quantile, MedianOfOddCount) {
  const std::vector<double> V = {5, 1, 9};
  EXPECT_DOUBLE_EQ(median(V), 5);
}

TEST(Quantile, MedianOfEvenCountInterpolates) {
  const std::vector<double> V = {1, 2, 3, 10};
  EXPECT_DOUBLE_EQ(median(V), 2.5);
}

TEST(Quantile, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(median(std::span<const double>()), 0);
}

TEST(Quantile, ExtremesAreMinAndMax) {
  const std::vector<double> V = {3, 8, 1, 7};
  EXPECT_DOUBLE_EQ(quantile(V, 0.0), 1);
  EXPECT_DOUBLE_EQ(quantile(V, 1.0), 8);
}

TEST(Quantile, DoesNotMutateInput) {
  const std::vector<double> V = {3, 1, 2};
  const std::vector<double> Copy = V;
  (void)median(V);
  EXPECT_EQ(V, Copy);
}

} // namespace
