//===- tests/CoreAttributionTest.cpp - Sample attribution -----------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Attribution.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace regmon;
using namespace regmon::core;

namespace {

std::vector<RegionId> lookupSorted(const Attributor &A, Addr Pc) {
  std::vector<RegionId> Out;
  A.lookup(Pc, Out);
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// Both strategies behind one parameterized suite: every behavioural test
/// must hold for the list and the interval tree alike.
class AttributorTest : public ::testing::TestWithParam<AttributorKind> {
protected:
  std::unique_ptr<Attributor> A = makeAttributor(GetParam());
};

TEST_P(AttributorTest, EmptyMatchesNothing) {
  EXPECT_EQ(A->size(), 0u);
  EXPECT_TRUE(lookupSorted(*A, 0x1234).empty());
}

TEST_P(AttributorTest, HalfOpenBounds) {
  A->insert(1, 0x1000, 0x1100);
  EXPECT_EQ(lookupSorted(*A, 0x1000), std::vector<RegionId>{1});
  EXPECT_EQ(lookupSorted(*A, 0x10fc), std::vector<RegionId>{1});
  EXPECT_TRUE(lookupSorted(*A, 0x1100).empty());
  EXPECT_TRUE(lookupSorted(*A, 0xfff).empty());
}

TEST_P(AttributorTest, OverlapsReportAllRegions) {
  A->insert(1, 0x1000, 0x2000);
  A->insert(2, 0x1800, 0x2800); // straddles
  A->insert(3, 0x1900, 0x1a00); // nested in both
  EXPECT_EQ(lookupSorted(*A, 0x1980), (std::vector<RegionId>{1, 2, 3}));
  EXPECT_EQ(lookupSorted(*A, 0x1100), std::vector<RegionId>{1});
  EXPECT_EQ(lookupSorted(*A, 0x2400), std::vector<RegionId>{2});
}

TEST_P(AttributorTest, RemoveStopsMatching) {
  A->insert(1, 0x1000, 0x2000);
  A->insert(2, 0x1000, 0x2000);
  A->remove(1, 0x1000, 0x2000);
  EXPECT_EQ(A->size(), 1u);
  EXPECT_EQ(lookupSorted(*A, 0x1500), std::vector<RegionId>{2});
}

TEST_P(AttributorTest, LookupAppendsWithoutClearing) {
  A->insert(7, 0x100, 0x200);
  std::vector<RegionId> Out = {42};
  A->lookup(0x150, Out);
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0], 42u) << "existing contents preserved";
  EXPECT_EQ(Out[1], 7u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AttributorTest,
                         ::testing::Values(AttributorKind::List,
                                           AttributorKind::IntervalTree),
                         [](const auto &Info) {
                           return Info.param == AttributorKind::List
                                      ? "List"
                                      : "IntervalTree";
                         });

/// Property sweep: the two strategies agree on random region sets with
/// interleaved removals.
class AttributorEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AttributorEquivalenceTest, ListAndTreeAgree) {
  Rng Random(GetParam());
  ListAttributor List;
  IntervalTreeAttributor Tree;
  struct Entry {
    RegionId Id;
    Addr Start, End;
  };
  std::vector<Entry> Live;

  for (std::uint32_t Op = 0; Op < 300; ++Op) {
    if (!Live.empty() && Random.nextBelow(5) == 0) {
      const std::size_t Pick = Random.nextBelow(Live.size());
      const Entry E = Live[Pick];
      List.remove(E.Id, E.Start, E.End);
      Tree.remove(E.Id, E.Start, E.End);
      Live.erase(Live.begin() + static_cast<std::ptrdiff_t>(Pick));
    } else {
      const Addr Start = Random.nextBelow(10'000) * 4;
      const Addr End = Start + (1 + Random.nextBelow(256)) * 4;
      List.insert(Op, Start, End);
      Tree.insert(Op, Start, End);
      Live.push_back(Entry{Op, Start, End});
    }
    ASSERT_EQ(List.size(), Tree.size());
    for (int Probe = 0; Probe < 10; ++Probe) {
      const Addr Pc = Random.nextBelow(42'000);
      ASSERT_EQ(lookupSorted(List, Pc), lookupSorted(Tree, Pc))
          << "pc " << Pc << " op " << Op;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttributorEquivalenceTest,
                         ::testing::Range<std::uint64_t>(200, 210));

} // namespace
