//===- tests/SimPhaseScriptTest.cpp - Phase script timeline ---------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/PhaseScript.h"

#include <gtest/gtest.h>

using namespace regmon;
using namespace regmon::sim;

namespace {

Program makeTwoLoopProgram() {
  ProgramBuilder B("p");
  const auto Proc = B.addProcedure("f", 0, 0x1000);
  const LoopId A = B.addLoop(Proc, 0x0, 0x100);
  const LoopId C = B.addLoop(Proc, 0x200, 0x300);
  B.addHotSpotProfile(A, 1.0, {});
  B.addHotSpotProfile(C, 1.0, {});
  return B.build();
}

PhaseScript makeScript() {
  PhaseScript S;
  const MixId M0 = S.addMix({MixComponent{0, 0, 1.0}});
  const MixId M1 = S.addMix({MixComponent{1, 0, 1.0}});
  S.steady(M0, 1000);
  S.alternating(M0, M1, /*HalfPeriod=*/100, /*Duration=*/1000);
  return S;
}

TEST(PhaseScript, TotalWorkAccumulates) {
  const PhaseScript S = makeScript();
  EXPECT_DOUBLE_EQ(S.totalWork(), 2000);
  EXPECT_EQ(S.segments().size(), 2u);
  EXPECT_EQ(S.mixes().size(), 2u);
}

TEST(PhaseScript, LocateInSteadySegment) {
  const PhaseScript S = makeScript();
  const auto Loc = S.locate(250);
  EXPECT_EQ(Loc.ActiveMix, 0u);
  EXPECT_DOUBLE_EQ(Loc.ToBoundary, 750) << "distance to segment end";
}

TEST(PhaseScript, LocateAtSegmentStart) {
  const PhaseScript S = makeScript();
  const auto Loc = S.locate(0);
  EXPECT_EQ(Loc.ActiveMix, 0u);
  EXPECT_DOUBLE_EQ(Loc.ToBoundary, 1000);
}

TEST(PhaseScript, AlternationTogglesEveryHalfPeriod) {
  const PhaseScript S = makeScript();
  EXPECT_EQ(S.locate(1050).ActiveMix, 0u) << "first half-period runs A";
  EXPECT_EQ(S.locate(1150).ActiveMix, 1u) << "second runs B";
  EXPECT_EQ(S.locate(1250).ActiveMix, 0u) << "third runs A again";
  EXPECT_EQ(S.locate(1950).ActiveMix, 1u);
}

TEST(PhaseScript, AlternationBoundaryDistance) {
  const PhaseScript S = makeScript();
  EXPECT_DOUBLE_EQ(S.locate(1050).ToBoundary, 50) << "to the flip at 1100";
  EXPECT_DOUBLE_EQ(S.locate(1100).ToBoundary, 100)
      << "exactly at a flip: a full half-period remains";
}

TEST(PhaseScript, BoundaryClampedToSegmentEnd) {
  PhaseScript S;
  const MixId M0 = S.addMix({MixComponent{0, 0, 1.0}});
  const MixId M1 = S.addMix({MixComponent{1, 0, 1.0}});
  S.alternating(M0, M1, /*HalfPeriod=*/300, /*Duration=*/500);
  // At work 450 the flip would be at 600, but the segment ends at 500.
  EXPECT_DOUBLE_EQ(S.locate(450).ToBoundary, 50);
  EXPECT_EQ(S.locate(450).ActiveMix, 1u);
}

TEST(PhaseScript, ValidatesAgainstProgram) {
  const Program P = makeTwoLoopProgram();
  const PhaseScript Good = makeScript();
  EXPECT_TRUE(Good.validateAgainst(P));

  PhaseScript BadLoop;
  BadLoop.addMix({MixComponent{9, 0, 1.0}});
  BadLoop.steady(0, 10);
  EXPECT_FALSE(BadLoop.validateAgainst(P));

  PhaseScript BadProfile;
  BadProfile.addMix({MixComponent{0, 3, 1.0}});
  BadProfile.steady(0, 10);
  EXPECT_FALSE(BadProfile.validateAgainst(P));

  PhaseScript Empty;
  EXPECT_FALSE(Empty.validateAgainst(P)) << "no segments";
}

TEST(PhaseScript, MixTotalWeight) {
  Mix M;
  M.Components = {MixComponent{0, 0, 0.25}, MixComponent{1, 0, 0.75}};
  EXPECT_DOUBLE_EQ(M.totalWeight(), 1.0);
}

TEST(PhaseScript, LocateAcrossManySegments) {
  PhaseScript S;
  const MixId M0 = S.addMix({MixComponent{0, 0, 1.0}});
  const MixId M1 = S.addMix({MixComponent{1, 0, 1.0}});
  for (int I = 0; I < 50; ++I)
    S.steady(I % 2 ? M0 : M1, 10);
  EXPECT_EQ(S.locate(5).ActiveMix, M1);
  EXPECT_EQ(S.locate(15).ActiveMix, M0);
  EXPECT_EQ(S.locate(495).ActiveMix, M0);
  EXPECT_DOUBLE_EQ(S.locate(495).ToBoundary, 5);
}

} // namespace
