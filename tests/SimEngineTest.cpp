//===- tests/SimEngineTest.cpp - Execution engine -------------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Engine.h"

#include <gtest/gtest.h>

#include <map>

using namespace regmon;
using namespace regmon::sim;

namespace {

struct TestSetup {
  Program Prog;
  PhaseScript Script;

  TestSetup() {
    ProgramBuilder B("engine-test");
    const auto Proc = B.addProcedure("f", 0x1000, 0x3000);
    const LoopId A = B.addLoop(Proc, 0x1000, 0x1100); // 64 instrs
    const LoopId C = B.addLoop(Proc, 0x2000, 0x2100);
    B.addHotSpotProfile(A, 1.0, {});
    B.addHotSpotProfile(C, 1.0, {});
    const MixId Mixed =
        Script.addMix({MixComponent{A, 0, 0.75}, MixComponent{C, 0, 0.25}});
    const MixId OnlyC = Script.addMix({MixComponent{C, 0, 1.0}});
    Script.steady(Mixed, 1'000'000);
    Script.steady(OnlyC, 1'000'000);
    Prog = B.build();
  }
};

TEST(Engine, CyclesEqualWorkWithoutOptimizations) {
  TestSetup T;
  Engine E(T.Prog, T.Script, 1);
  while (E.advanceAndSample(10'000))
    ;
  E.finish();
  EXPECT_DOUBLE_EQ(E.work(), 2'000'000);
  EXPECT_EQ(E.cycles(), 2'000'000u);
  EXPECT_TRUE(E.done());
}

TEST(Engine, SamplesComeFromActiveMix) {
  TestSetup T;
  Engine E(T.Prog, T.Script, 2);
  // First segment: PCs from loop A or C only.
  for (int I = 0; I < 50; ++I) {
    const auto S = E.advanceAndSample(10'000);
    ASSERT_TRUE(S.has_value());
    const bool InA = S->Pc >= 0x1000 && S->Pc < 0x1100;
    const bool InC = S->Pc >= 0x2000 && S->Pc < 0x2100;
    EXPECT_TRUE(InA || InC) << std::hex << S->Pc;
  }
}

TEST(Engine, SecondSegmentUsesItsOwnMix) {
  TestSetup T;
  Engine E(T.Prog, T.Script, 3);
  // Jump into the second segment.
  ASSERT_TRUE(E.advanceAndSample(1'200'000).has_value());
  for (int I = 0; I < 30; ++I) {
    const auto S = E.advanceAndSample(10'000);
    ASSERT_TRUE(S.has_value());
    EXPECT_GE(S->Pc, 0x2000u);
    EXPECT_LT(S->Pc, 0x2100u);
  }
}

TEST(Engine, MixWeightsGovernSampleFrequencies) {
  TestSetup T;
  Engine E(T.Prog, T.Script, 4);
  std::map<bool, int> Counts; // key: sample in loop A
  for (int I = 0; I < 2000; ++I) {
    const auto S = E.advanceAndSample(400); // stay inside segment 1
    ASSERT_TRUE(S.has_value());
    ++Counts[S->Pc < 0x1100];
  }
  const double FracA = Counts[true] / 2000.0;
  EXPECT_NEAR(FracA, 0.75, 0.04);
}

TEST(Engine, SameSeedSameSampleStream) {
  TestSetup T;
  Engine E1(T.Prog, T.Script, 9), E2(T.Prog, T.Script, 9);
  for (int I = 0; I < 200; ++I) {
    const auto A = E1.advanceAndSample(5'000);
    const auto B = E2.advanceAndSample(5'000);
    ASSERT_EQ(A.has_value(), B.has_value());
    if (A) {
      ASSERT_EQ(A->Pc, B->Pc);
      ASSERT_EQ(A->Time, B->Time);
    }
  }
}

TEST(Engine, SampleTimestampsAdvanceByPeriod) {
  TestSetup T;
  Engine E(T.Prog, T.Script, 5);
  Cycles Prev = 0;
  for (int I = 0; I < 20; ++I) {
    const auto S = E.advanceAndSample(7'000);
    ASSERT_TRUE(S.has_value());
    EXPECT_EQ(S->Time - Prev, 7'000u);
    Prev = S->Time;
  }
}

TEST(Engine, SpeedupReducesCycles) {
  TestSetup T;
  Engine E(T.Prog, T.Script, 6);
  E.setSpeedup(0, 2.0); // loop A (75% of segment 1) runs twice as fast
  E.finish();
  // Segment 1: 0.75/2 + 0.25 = 0.625 cycles per work unit -> 625k cycles;
  // segment 2 unaffected: 1M cycles.
  EXPECT_NEAR(static_cast<double>(E.cycles()), 1'625'000, 2.0);
  EXPECT_DOUBLE_EQ(E.work(), 2'000'000) << "work is invariant";
}

TEST(Engine, SlowdownIncreasesCycles) {
  TestSetup T;
  Engine E(T.Prog, T.Script, 6);
  E.setSpeedup(1, 0.5); // loop C runs at half speed
  E.finish();
  // Segment 1: 0.75 + 0.25*2 = 1.25 -> 1.25M; segment 2: 2.0 -> 2M.
  EXPECT_NEAR(static_cast<double>(E.cycles()), 3'250'000, 2.0);
}

TEST(Engine, ClearSpeedupsRestoresBaseline) {
  TestSetup T;
  Engine E(T.Prog, T.Script, 7);
  E.setSpeedup(0, 4.0);
  E.clearSpeedups();
  EXPECT_DOUBLE_EQ(E.speedup(0), 1.0);
  E.finish();
  EXPECT_EQ(E.cycles(), 2'000'000u);
}

TEST(Engine, SpeedupAffectsSampleOdds) {
  // A sped-up loop occupies proportionally less wall time, so it should be
  // sampled less often (samples are cycle-weighted).
  TestSetup T;
  Engine E(T.Prog, T.Script, 8);
  E.setSpeedup(0, 3.0); // loop A: cycle share 0.25/(0.25+0.25) = 0.5
  int InA = 0;
  constexpr int N = 3000;
  for (int I = 0; I < N; ++I) {
    // 150 cycles/sample keeps all 3000 samples inside segment 1 (450K
    // cycles = 900K work at 0.5 cycles/work).
    const auto S = E.advanceAndSample(150);
    ASSERT_TRUE(S.has_value());
    InA += S->Pc < 0x1100 ? 1 : 0;
  }
  EXPECT_NEAR(InA / static_cast<double>(N), 0.5, 0.04);
}

TEST(Engine, EndsExactlyAtTotalWork) {
  TestSetup T;
  Engine E(T.Prog, T.Script, 10);
  while (E.advanceAndSample(123'456))
    ;
  EXPECT_TRUE(E.done());
  EXPECT_DOUBLE_EQ(E.work(), T.Script.totalWork());
}

TEST(Engine, AdvancePastEndReturnsNullopt) {
  TestSetup T;
  Engine E(T.Prog, T.Script, 11);
  EXPECT_FALSE(E.advanceAndSample(5'000'000).has_value());
  EXPECT_FALSE(E.advanceAndSample(1).has_value()) << "stays finished";
}

TEST(Engine, OverheadCyclesChargeWithoutWork) {
  TestSetup T;
  Engine E(T.Prog, T.Script, 12);
  E.addOverheadCycles(1234);
  E.finish();
  EXPECT_EQ(E.cycles(), 2'001'234u);
  EXPECT_DOUBLE_EQ(E.work(), 2'000'000);
}

TEST(Engine, ActiveMixComponentsTrackSegments) {
  TestSetup T;
  Engine E(T.Prog, T.Script, 13);
  ASSERT_EQ(E.activeMix().value(), 0u);
  EXPECT_EQ(E.activeMixComponents().size(), 2u);
  ASSERT_TRUE(E.advanceAndSample(1'500'000).has_value());
  ASSERT_EQ(E.activeMix().value(), 1u);
  EXPECT_EQ(E.activeMixComponents().size(), 1u);
  E.finish();
  EXPECT_FALSE(E.activeMix().has_value());
  EXPECT_TRUE(E.activeMixComponents().empty());
}

TEST(Engine, AlternatingSegmentSamplesRespectFlips) {
  ProgramBuilder B("alt");
  const auto Proc = B.addProcedure("f", 0x1000, 0x3000);
  const LoopId A = B.addLoop(Proc, 0x1000, 0x1100);
  const LoopId C = B.addLoop(Proc, 0x2000, 0x2100);
  B.addHotSpotProfile(A, 1.0, {});
  B.addHotSpotProfile(C, 1.0, {});
  PhaseScript S;
  const MixId MA = S.addMix({MixComponent{A, 0, 1.0}});
  const MixId MC = S.addMix({MixComponent{C, 0, 1.0}});
  S.alternating(MA, MC, /*HalfPeriod=*/1000, /*Duration=*/100'000);
  const Program P = B.build();
  Engine E(P, S, 14);

  // Sample every 250 cycles: work offset alternates blocks of 1000.
  for (int I = 0; I < 200; ++I) {
    const auto Sample = E.advanceAndSample(250);
    ASSERT_TRUE(Sample.has_value());
    const auto Block = static_cast<std::uint64_t>(E.work() / 1000.0);
    const bool ExpectA = Block % 2 == 0;
    if (ExpectA)
      EXPECT_LT(Sample->Pc, 0x1100u) << "work=" << E.work();
    else
      EXPECT_GE(Sample->Pc, 0x2000u) << "work=" << E.work();
  }
}

} // namespace
