//===- tests/ServiceRingBufferTest.cpp - Bounded MPSC queue ---------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/RingBuffer.h"

#include "service/MonitorService.h"
#include "sim/ProgramCodeMap.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <set>
#include <span>
#include <thread>
#include <utility>
#include <vector>

using namespace regmon::service;

namespace {

TEST(RingBuffer, CapacityOnePushPop) {
  RingBuffer<int> Q(1);
  EXPECT_EQ(Q.capacity(), 1u);
  EXPECT_EQ(Q.size(), 0u);
  EXPECT_TRUE(Q.push(42));
  EXPECT_EQ(Q.size(), 1u);
  int V = 0;
  EXPECT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 42);
  EXPECT_EQ(Q.size(), 0u);
}

TEST(RingBuffer, WraparoundPreservesFifo) {
  RingBuffer<int> Q(3);
  int V = 0;
  // Cycle the head index through the storage several times.
  for (int Round = 0; Round < 10; ++Round) {
    EXPECT_TRUE(Q.push(3 * Round));
    EXPECT_TRUE(Q.push(3 * Round + 1));
    ASSERT_TRUE(Q.pop(V));
    EXPECT_EQ(V, 3 * Round);
    EXPECT_TRUE(Q.push(3 * Round + 2));
    ASSERT_TRUE(Q.pop(V));
    EXPECT_EQ(V, 3 * Round + 1);
    ASSERT_TRUE(Q.pop(V));
    EXPECT_EQ(V, 3 * Round + 2);
  }
  EXPECT_EQ(Q.size(), 0u);
  EXPECT_EQ(Q.dropped(), 0u);
}

TEST(RingBuffer, TryPopOnEmptyReturnsFalse) {
  RingBuffer<int> Q(2);
  int V = 0;
  EXPECT_FALSE(Q.tryPop(V));
  EXPECT_TRUE(Q.push(7));
  EXPECT_TRUE(Q.tryPop(V));
  EXPECT_EQ(V, 7);
  EXPECT_FALSE(Q.tryPop(V));
}

TEST(RingBuffer, BlockPolicyWaitsForConsumer) {
  RingBuffer<int> Q(1);
  ASSERT_TRUE(Q.push(1));
  // The second push must block until the consumer frees the slot; the
  // consumer side runs in this thread, so pop before joining.
  std::thread Producer([&] { EXPECT_TRUE(Q.push(2)); });
  int V = 0;
  ASSERT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 1);
  ASSERT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 2);
  Producer.join();
  EXPECT_EQ(Q.dropped(), 0u);
}

TEST(RingBuffer, DropOldestEvictsAndCounts) {
  RingBuffer<int> Q(2, OverflowPolicy::DropOldest);
  for (int I = 0; I < 5; ++I)
    EXPECT_TRUE(Q.push(I)) << "drop-oldest never blocks or rejects";
  EXPECT_EQ(Q.size(), 2u);
  EXPECT_EQ(Q.dropped(), 3u);
  int V = 0;
  ASSERT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 3) << "the oldest survivors are the last two pushed";
  ASSERT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 4);
}

TEST(RingBuffer, CloseRejectsPushesButDrainsPops) {
  RingBuffer<int> Q(4);
  EXPECT_TRUE(Q.push(1));
  EXPECT_TRUE(Q.push(2));
  Q.close();
  EXPECT_TRUE(Q.closed());
  EXPECT_FALSE(Q.push(3)) << "pushes after close fail";
  int V = 0;
  EXPECT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 1);
  EXPECT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 2);
  EXPECT_FALSE(Q.pop(V)) << "closed and drained";
}

TEST(RingBuffer, CloseWakesBlockedProducer) {
  RingBuffer<int> Q(1);
  ASSERT_TRUE(Q.push(1));
  std::thread Producer([&] { EXPECT_FALSE(Q.push(2)); });
  Q.close();
  Producer.join();
  int V = 0;
  EXPECT_TRUE(Q.pop(V)) << "the pre-close element survives";
  EXPECT_EQ(V, 1);
}

TEST(RingBuffer, CloseWakesBlockedConsumer) {
  RingBuffer<int> Q(1);
  std::thread Consumer([&] {
    int V = 0;
    EXPECT_FALSE(Q.pop(V));
  });
  Q.close();
  Consumer.join();
}

TEST(RingBuffer, DropOldestPolicyAfterCloseRejects) {
  RingBuffer<int> Q(1, OverflowPolicy::DropOldest);
  ASSERT_TRUE(Q.push(1));
  Q.close();
  EXPECT_FALSE(Q.push(2));
  EXPECT_EQ(Q.dropped(), 0u) << "a rejected push is not a drop";
}

/// Multi-producer interleaving: all producers released simultaneously by
/// a std::barrier, pushing through a queue much smaller than the item
/// count. Every item must arrive exactly once and each producer's items
/// must arrive in that producer's push order.
TEST(RingBuffer, MultiProducerInterleavingKeepsPerProducerOrder) {
  constexpr std::uint32_t Producers = 4;
  constexpr std::uint32_t PerProducer = 250;
  RingBuffer<std::uint32_t> Q(8);

  std::barrier Start(Producers);
  std::vector<std::thread> Threads;
  Threads.reserve(Producers);
  for (std::uint32_t P = 0; P < Producers; ++P)
    Threads.emplace_back([&, P] {
      Start.arrive_and_wait();
      for (std::uint32_t I = 0; I < PerProducer; ++I)
        ASSERT_TRUE(Q.push(P << 16 | I));
    });

  std::vector<std::uint32_t> Received;
  Received.reserve(Producers * PerProducer);
  std::uint32_t V = 0;
  for (std::uint32_t N = 0; N < Producers * PerProducer; ++N) {
    ASSERT_TRUE(Q.pop(V));
    Received.push_back(V);
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Q.size(), 0u);
  EXPECT_EQ(Q.dropped(), 0u);

  // Per-producer subsequences are strictly increasing sequence numbers.
  std::vector<std::uint32_t> NextSeq(Producers, 0);
  for (std::uint32_t Item : Received) {
    const std::uint32_t P = Item >> 16, Seq = Item & 0xffff;
    ASSERT_LT(P, Producers);
    EXPECT_EQ(Seq, NextSeq[P]) << "producer " << P << " reordered";
    ++NextSeq[P];
  }
  for (std::uint32_t P = 0; P < Producers; ++P)
    EXPECT_EQ(NextSeq[P], PerProducer);
}

/// DropOldest at the capacity boundary with producers and a live
/// consumer racing: conservation (received + dropped == pushed) and
/// per-producer subsequence order must both survive concurrent eviction.
TEST(RingBuffer, ConcurrentDropOldestAtCapacityKeepsOrderAndConservation) {
  constexpr std::uint32_t Producers = 4;
  constexpr std::uint32_t PerProducer = 500;
  RingBuffer<std::uint32_t> Q(2, OverflowPolicy::DropOldest);

  std::barrier Start(Producers);
  std::vector<std::thread> Threads;
  for (std::uint32_t P = 0; P < Producers; ++P)
    Threads.emplace_back([&, P] {
      Start.arrive_and_wait();
      for (std::uint32_t I = 0; I < PerProducer; ++I)
        ASSERT_TRUE(Q.push(P << 16 | I));
    });

  // The consumer drains while producers storm the two-slot queue. It
  // cannot know how many items will survive eviction, so it pops until
  // the producers are done and the queue is empty.
  std::vector<std::uint32_t> Received;
  std::thread Consumer([&] {
    std::uint32_t V = 0;
    while (Received.size() + Q.dropped() < Producers * PerProducer) {
      if (Q.tryPop(V))
        Received.push_back(V);
    }
  });
  for (std::thread &T : Threads)
    T.join();
  Consumer.join();

  EXPECT_EQ(Received.size() + Q.dropped(), Producers * PerProducer);
  EXPECT_EQ(Q.size(), 0u);
  // Eviction drops from the front, so each producer's surviving items
  // still arrive in that producer's push order.
  std::vector<std::uint32_t> LastSeq(Producers, 0);
  std::vector<bool> Seen(Producers, false);
  for (std::uint32_t Item : Received) {
    const std::uint32_t P = Item >> 16, Seq = Item & 0xffff;
    ASSERT_LT(P, Producers);
    if (Seen[P]) {
      EXPECT_GT(Seq, LastSeq[P]) << "producer " << P << " reordered";
    }
    Seen[P] = true;
    LastSeq[P] = Seq;
  }
}

/// Same stress under DropOldest: no push ever blocks, and every submitted
/// item is either received or counted dropped.
TEST(RingBuffer, MultiProducerDropOldestConservesItems) {
  constexpr std::uint32_t Producers = 4;
  constexpr std::uint32_t PerProducer = 250;
  RingBuffer<std::uint32_t> Q(4, OverflowPolicy::DropOldest);

  std::barrier Start(Producers);
  std::vector<std::thread> Threads;
  for (std::uint32_t P = 0; P < Producers; ++P)
    Threads.emplace_back([&, P] {
      Start.arrive_and_wait();
      for (std::uint32_t I = 0; I < PerProducer; ++I)
        ASSERT_TRUE(Q.push(P << 16 | I));
    });
  for (std::thread &T : Threads)
    T.join();

  std::uint64_t Received = 0;
  std::uint32_t V = 0;
  while (Q.tryPop(V))
    ++Received;
  EXPECT_EQ(Received + Q.dropped(), Producers * PerProducer);
  EXPECT_LE(Received, Q.capacity());
}

/// The eviction out-param surrenders exactly the FIFO-oldest element and
/// stays untouched on non-evicting pushes, so a sentinel detects eviction.
TEST(RingBuffer, DropOldestEvictionOutParamReturnsTheFifoOldest) {
  RingBuffer<int> Q(2, OverflowPolicy::DropOldest);
  int Evicted = -1;
  EXPECT_TRUE(Q.push(0, &Evicted));
  EXPECT_TRUE(Q.push(1, &Evicted));
  EXPECT_EQ(Evicted, -1) << "no eviction, the sentinel must survive";
  for (int I = 2; I < 6; ++I) {
    EXPECT_TRUE(Q.push(I, &Evicted));
    EXPECT_EQ(Evicted, I - 2) << "eviction surrenders the FIFO-oldest";
  }
  EXPECT_EQ(Q.dropped(), 4u);
  int V = 0;
  ASSERT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 4) << "survivors are the newest capacity-many pushes";
  ASSERT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 5);
  EXPECT_EQ(Q.size(), 0u);
}

/// In-test flight-recorder tap. MonitorService serializes every call
/// under its recorder mutex, so plain members need no locking here.
class TapRecorder : public BatchRecorder {
public:
  void recordConfig(std::span<const std::uint8_t>) override { ++Configs; }
  std::uint64_t recordBatch(const SampleBatch &, RecordedFate Fate) override {
    const std::uint64_t Seq = ++LastSeq;
    if (Fate == RecordedFate::Admitted)
      Admitted.insert(Seq);
    return Seq;
  }
  void recordDrop(std::uint64_t EvictedSeq, std::uint64_t Shard) override {
    Drops.push_back({EvictedSeq, Shard});
  }
  void recordPushReject(std::uint64_t Seq) override {
    PushRejects.push_back(Seq);
  }
  void recordCheckpoint(std::uint64_t, bool) override { ++Checkpoints; }

  std::uint64_t LastSeq = 0;
  int Configs = 0;
  int Checkpoints = 0;
  std::set<std::uint64_t> Admitted;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> Drops;
  std::vector<std::uint64_t> PushRejects;
};

/// DropOldest under recording: every drop record must reference a batch
/// that was admitted (and therefore recorded) earlier, in FIFO eviction
/// order, and the drop record count must equal the snapshot's
/// BatchesDropped -- the invariants replay leans on to skip exactly the
/// evicted batches.
TEST(ServiceAccounting, DropOldestUnderRecordingReferencesAdmittedSeqs) {
  const regmon::workloads::Workload W =
      regmon::workloads::make("synthetic.steady");
  const regmon::sim::ProgramCodeMap Map(W.Prog);
  MonitorService Service({/*Workers=*/1, /*QueueCapacity=*/2,
                          OverflowPolicy::DropOldest,
                          /*ValidateBatches=*/true, {}});
  const StreamId Id = Service.addStream(Map);
  TapRecorder Tap;
  Service.attachRecorder(Tap);
  EXPECT_EQ(Tap.Configs, 1) << "attach captures the config fingerprint";

  // Stall the single worker on its first batch so the submit loop below
  // races nothing: once the queue drains to that one in-flight batch,
  // eviction order is a pure function of submit order.
  std::atomic<bool> StalledOnce{false};
  Service.setWorkerHook(
      [&Service, &StalledOnce](std::size_t, const SampleBatch &) {
        if (StalledOnce.exchange(true))
          return;
        while (!Service.stopRequested())
          std::this_thread::yield();
      });
  Service.start();
  const SampleBatch Batch{Id, {{0x1000, 10, false}}};
  ASSERT_TRUE(Service.submit(Batch));
  while (Service.snapshot().QueueDepth != 0)
    std::this_thread::yield();

  // Six more into a two-slot queue: the first two fill it, the next four
  // evict trace seqs 2..5 in FIFO order.
  for (int I = 0; I < 6; ++I)
    ASSERT_TRUE(Service.submit(Batch));
  Service.stop();

  const ServiceSnapshot Snap = Service.snapshot();
  EXPECT_EQ(Snap.BatchesSubmitted, 7u);
  EXPECT_EQ(Snap.BatchesDropped, 4u);
  EXPECT_EQ(Snap.BatchesProcessed + Snap.BatchesDropped,
            Snap.BatchesSubmitted);
  ASSERT_EQ(Tap.Drops.size(), Snap.BatchesDropped)
      << "one drop record per eviction";
  EXPECT_TRUE(Tap.PushRejects.empty());
  std::uint64_t PrevSeq = 0;
  for (const auto &[EvictedSeq, Shard] : Tap.Drops) {
    EXPECT_TRUE(Tap.Admitted.count(EvictedSeq))
        << "drop " << EvictedSeq << " must reference an admitted batch";
    EXPECT_LT(EvictedSeq, Tap.LastSeq)
        << "the evicted batch was recorded before its evictor";
    EXPECT_GT(EvictedSeq, PrevSeq) << "evictions leave the queue in FIFO";
    EXPECT_EQ(Shard, 0u);
    PrevSeq = EvictedSeq;
  }
  EXPECT_EQ(Tap.Drops.front().first, 2u)
      << "the stalled in-flight batch (seq 1) is never evicted";
}

/// The service-level face of a closed queue: batches submitted after stop
/// are discarded and surface as BatchesRejected, leaving the accounting
/// invariant (processed + dropped == submitted) intact.
TEST(ServiceAccounting, SubmitAfterStopCountsBatchesRejected) {
  const regmon::workloads::Workload W =
      regmon::workloads::make("synthetic.steady");
  const regmon::sim::ProgramCodeMap Map(W.Prog);
  MonitorService Service({/*Workers=*/1, /*QueueCapacity=*/8,
                          OverflowPolicy::Block, /*ValidateBatches=*/true,
                          {}});
  const StreamId Id = Service.addStream(Map);
  Service.start();
  const SampleBatch Batch{Id, {{0x1000, 10, false}}};
  ASSERT_TRUE(Service.submit(Batch));
  Service.stop();

  EXPECT_EQ(Service.snapshot().BatchesRejected, 0u);
  for (int I = 0; I < 5; ++I)
    EXPECT_FALSE(Service.submit(Batch));
  const ServiceSnapshot Snap = Service.snapshot();
  EXPECT_EQ(Snap.BatchesRejected, 5u);
  EXPECT_EQ(Snap.BatchesSubmitted, 1u)
      << "rejected batches are refused at the door, not submitted";
  EXPECT_EQ(Snap.BatchesProcessed + Snap.BatchesDropped,
            Snap.BatchesSubmitted);
  // Rejection says nothing about the collector: health is untouched.
  EXPECT_EQ(Snap.Streams[0].Health, StreamHealth::Healthy);
  EXPECT_EQ(Snap.Streams[0].PoisonedBatches, 0u);
}

} // namespace
