//===- tests/HotpathDifferentialTest.cpp - Naive vs incremental engines ---===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The hot-path optimization's correctness contract: the incremental
// similarity engine (running moments maintained as samples land, O(1)
// interval ends) is bit-identical to the naive O(bins) recompute it
// replaced. This suite proves it differentially:
//
//  * full-monitor lockstep over every registered workload and over
//    fault-injected streams -- identical phase-event sequences, UCR
//    values, per-region r bits, and stats at every interval;
//  * byte-identical Prometheus / JSON / trace exports from instrumented
//    runs of both engines;
//  * property/fuzz tests of the running moments themselves (random
//    add/reset sequences vs from-scratch recompute, degenerate-input
//    NaN-freedom, kernel-vs-reference equality);
//  * detector-level lockstep fuzz of observe vs observeMoments;
//  * a mid-stream checkpoint crossing engines: state written by the
//    incremental engine restores into a naive-engine monitor (and vice
//    versa) and continues bit-identically.
//
//===----------------------------------------------------------------------===//

#include "core/LocalPhaseDetector.h"
#include "core/RegionMonitor.h"
#include "core/Similarity.h"
#include "faults/FaultPlan.h"
#include "obs/Export.h"
#include "obs/Instruments.h"
#include "persist/Bytes.h"
#include "persist/StateCodec.h"
#include "sampling/Sampler.h"
#include "sim/Engine.h"
#include "sim/ProgramCodeMap.h"
#include "support/Histogram.h"
#include "support/HotpathKernels.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

using namespace regmon;

namespace {

/// Bit pattern of a double, for exact (not epsilon) comparison.
std::uint64_t bits(double V) { return std::bit_cast<std::uint64_t>(V); }

/// Records one workload stream's intervals (the persist tests' pattern).
struct RecordedStream {
  std::unique_ptr<workloads::Workload> W;
  std::unique_ptr<sim::ProgramCodeMap> Map;
  std::vector<std::vector<Sample>> Intervals;
};

RecordedStream record(const std::string &Name, std::uint64_t Seed,
                      std::size_t MaxIntervals = 0) {
  RecordedStream S;
  S.W = std::make_unique<workloads::Workload>(workloads::make(Name));
  S.Map = std::make_unique<sim::ProgramCodeMap>(S.W->Prog);
  sim::Engine Engine(S.W->Prog, S.W->Script, Seed);
  sampling::Sampler Sampler(Engine, {45'000, 2032});
  S.Intervals = Sampler.collectIntervals();
  if (MaxIntervals != 0 && S.Intervals.size() > MaxIntervals)
    S.Intervals.resize(MaxIntervals);
  return S;
}

core::RegionMonitorConfig engineConfig(core::SimilarityEngine Engine,
                                       core::SimilarityKind Kind =
                                           core::SimilarityKind::Pearson) {
  core::RegionMonitorConfig Cfg;
  Cfg.Similarity = {Kind, Engine};
  Cfg.TrackMissPhases = true; // cover the miss-channel incremental path
  return Cfg;
}

/// Every deployment-facing event, flattened for exact sequence equality.
using EventLog = std::vector<std::tuple<int, core::RegionId, std::uint64_t>>;

void captureEvents(core::RegionMonitor &M, EventLog &Log) {
  M.setEventHandler([&Log](const core::RegionEvent &E) {
    Log.emplace_back(static_cast<int>(E.K), E.Id, E.Interval);
  });
}

/// Drives \p Naive and \p Incr over \p Intervals in lockstep, asserting
/// the full observable state matches at every interval boundary.
void runLockstep(core::RegionMonitor &Naive, core::RegionMonitor &Incr,
                 const std::vector<std::vector<Sample>> &Intervals,
                 const std::string &Tag) {
  EventLog NaiveLog, IncrLog;
  captureEvents(Naive, NaiveLog);
  captureEvents(Incr, IncrLog);

  for (std::size_t I = 0; I < Intervals.size(); ++I) {
    Naive.observeInterval(Intervals[I]);
    Incr.observeInterval(Intervals[I]);

    ASSERT_EQ(NaiveLog, IncrLog) << Tag << " interval " << I;
    ASSERT_EQ(bits(Naive.lastUcrFraction()), bits(Incr.lastUcrFraction()))
        << Tag << " interval " << I;
    ASSERT_EQ(Naive.totalPhaseChanges(), Incr.totalPhaseChanges())
        << Tag << " interval " << I;
    ASSERT_EQ(Naive.formationTriggers(), Incr.formationTriggers())
        << Tag << " interval " << I;
    ASSERT_EQ(Naive.activeRegionCount(), Incr.activeRegionCount())
        << Tag << " interval " << I;

    ASSERT_EQ(Naive.regions().size(), Incr.regions().size())
        << Tag << " interval " << I;
    for (core::RegionId Id = 0; Id < Naive.regions().size(); ++Id) {
      const core::LocalPhaseDetector &Dn = Naive.detector(Id);
      const core::LocalPhaseDetector &Di = Incr.detector(Id);
      ASSERT_EQ(Dn.state(), Di.state())
          << Tag << " interval " << I << " region " << Id;
      ASSERT_EQ(bits(Dn.lastR()), bits(Di.lastR()))
          << Tag << " interval " << I << " region " << Id;
      ASSERT_EQ(Dn.phaseChanges(), Di.phaseChanges())
          << Tag << " interval " << I << " region " << Id;
      const core::LocalPhaseDetector &Mn = Naive.missDetector(Id);
      const core::LocalPhaseDetector &Mi = Incr.missDetector(Id);
      ASSERT_EQ(Mn.state(), Mi.state())
          << Tag << " interval " << I << " region " << Id << " (miss)";
      ASSERT_EQ(bits(Mn.lastR()), bits(Mi.lastR()))
          << Tag << " interval " << I << " region " << Id << " (miss)";
    }
  }

  // Terminal aggregates: UCR history bits and per-region stats.
  ASSERT_EQ(Naive.ucrHistory().size(), Incr.ucrHistory().size()) << Tag;
  for (std::size_t I = 0; I < Naive.ucrHistory().size(); ++I)
    EXPECT_EQ(bits(Naive.ucrHistory()[I]), bits(Incr.ucrHistory()[I]))
        << Tag << " ucr[" << I << "]";
  EXPECT_EQ(Naive.totalSamples(), Incr.totalSamples()) << Tag;
  EXPECT_EQ(Naive.outOfRegionSamples(), Incr.outOfRegionSamples()) << Tag;
  for (core::RegionId Id = 0; Id < Naive.regions().size(); ++Id) {
    const core::RegionStats &Sn = Naive.stats(Id);
    const core::RegionStats &Si = Incr.stats(Id);
    EXPECT_EQ(Sn.StableIntervals, Si.StableIntervals) << Tag << " " << Id;
    EXPECT_EQ(Sn.TotalSamples, Si.TotalSamples) << Tag << " " << Id;
    EXPECT_EQ(Sn.TotalMisses, Si.TotalMisses) << Tag << " " << Id;
    EXPECT_EQ(Sn.PhaseChanges, Si.PhaseChanges) << Tag << " " << Id;
    EXPECT_EQ(Sn.MissPhaseChanges, Si.MissPhaseChanges) << Tag << " " << Id;
  }
}

std::vector<std::uint8_t> encodeMonitor(const core::RegionMonitor &M) {
  persist::ByteWriter W;
  persist::StateCodec::encode(W, M);
  return W.take();
}

//===----------------------------------------------------------------------===//
// Full-monitor lockstep
//===----------------------------------------------------------------------===//

TEST(HotpathDifferential, EveryWorkloadLockstep) {
  for (const std::string &Name : workloads::allNames()) {
    SCOPED_TRACE(Name);
    const RecordedStream S = record(Name, /*Seed=*/11, /*MaxIntervals=*/30);
    core::RegionMonitor Naive(
        *S.Map, engineConfig(core::SimilarityEngine::Naive));
    core::RegionMonitor Incr(
        *S.Map, engineConfig(core::SimilarityEngine::Incremental));
    runLockstep(Naive, Incr, S.Intervals, Name);
  }
}

TEST(HotpathDifferential, CosineAndOverlapMetricsLockstep) {
  const RecordedStream S = record("synthetic.periodic", 5, 40);
  for (const core::SimilarityKind Kind :
       {core::SimilarityKind::Cosine, core::SimilarityKind::Overlap}) {
    core::RegionMonitor Naive(
        *S.Map, engineConfig(core::SimilarityEngine::Naive, Kind));
    core::RegionMonitor Incr(
        *S.Map, engineConfig(core::SimilarityEngine::Incremental, Kind));
    runLockstep(Naive, Incr, S.Intervals,
                Kind == core::SimilarityKind::Cosine ? "cosine" : "overlap");
  }
}

TEST(HotpathDifferential, FaultedStreamsLockstep) {
  faults::FaultConfig FC;
  FC.DropRate = 0.05;
  FC.DuplicateRate = 0.03;
  FC.CorruptRate = 0.04; // UCR noise: exercises rejected/out-of-region paths
  FC.PeriodJitterFrac = 0.2;
  FC.TruncateRate = 0.15;

  for (const std::uint64_t PlanSeed : {std::uint64_t{3}, std::uint64_t{99}}) {
    SCOPED_TRACE(PlanSeed);
    const RecordedStream S = record("synthetic.pollution", PlanSeed, 40);
    const faults::FaultPlan Plan(PlanSeed, FC);
    faults::StreamFaultInjector Injector = Plan.forStream(0);
    std::vector<std::vector<Sample>> Faulted;
    Faulted.reserve(S.Intervals.size());
    for (const std::vector<Sample> &Clean : S.Intervals)
      Faulted.push_back(Injector.apply(Clean));

    core::RegionMonitor Naive(
        *S.Map, engineConfig(core::SimilarityEngine::Naive));
    core::RegionMonitor Incr(
        *S.Map, engineConfig(core::SimilarityEngine::Incremental));
    runLockstep(Naive, Incr, Faulted, "faulted");
  }
}

//===----------------------------------------------------------------------===//
// Byte-identical observability exports
//===----------------------------------------------------------------------===//

TEST(HotpathDifferential, ExportsByteIdenticalAcrossEngines) {
  const RecordedStream S = record("181.mcf", 7, 40);

  auto RunInstrumented = [&](core::SimilarityEngine Engine) {
    obs::MetricsRegistry Registry;
    obs::EventTracer Tracer(4096);
    const obs::MonitorInstruments Instruments = obs::makeMonitorInstruments(
        Registry, &Tracer, /*Stream=*/0, obs::streamLabel(0));
    core::RegionMonitor Monitor(*S.Map, engineConfig(Engine));
    Monitor.attachObservability(&Instruments);
    for (const std::vector<Sample> &Interval : S.Intervals)
      Monitor.observeInterval(Interval);
    Monitor.attachObservability(nullptr);
    return std::tuple<std::string, std::string, std::string>{
        obs::exportPrometheus(Registry), obs::exportJson(Registry, &Tracer),
        obs::exportTraceText(Tracer)};
  };

  const auto [NaiveProm, NaiveJson, NaiveTrace] =
      RunInstrumented(core::SimilarityEngine::Naive);
  const auto [IncrProm, IncrJson, IncrTrace] =
      RunInstrumented(core::SimilarityEngine::Incremental);

  EXPECT_EQ(NaiveProm, IncrProm);
  EXPECT_EQ(NaiveJson, IncrJson);
  EXPECT_EQ(NaiveTrace, IncrTrace);
  // The exports must actually carry monitor data, or the equality above
  // proves nothing.
  EXPECT_NE(NaiveProm.find("monitor_intervals_total"), std::string::npos);
  EXPECT_NE(NaiveProm.find("monitor_similarity_compares_total"),
            std::string::npos);
  EXPECT_NE(NaiveProm.find("monitor_hotpath_kernel"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Moment properties (fuzz)
//===----------------------------------------------------------------------===//

/// From-scratch reference for the histogram's running sum of squares.
std::uint64_t sumSqReference(std::span<const std::uint32_t> Bins) {
  std::uint64_t S = 0;
  for (const std::uint32_t B : Bins)
    S += static_cast<std::uint64_t>(B) * B;
  return S;
}

TEST(HotpathMoments, RunningSumSqMatchesRecomputeUnderFuzz) {
  Rng Random(2026);
  for (int Round = 0; Round < 50; ++Round) {
    const std::size_t Instrs = 1 + Random.nextBelow(300);
    const Addr Start = 0x1000;
    InstrHistogram H(Start, Start + static_cast<Addr>(Instrs) * InstrBytes);
    const std::size_t Ops = 1 + Random.nextBelow(400);
    for (std::size_t Op = 0; Op < Ops; ++Op) {
      const std::uint64_t Dice = Random.nextBelow(100);
      if (Dice < 4) {
        H.reset();
      } else if (Dice < 10) {
        // Out-of-range PC: rejected, moments must not move.
        const std::uint64_t Before = H.sumOfSquares();
        EXPECT_FALSE(H.tryAddSample(
            Start + static_cast<Addr>(Instrs + Random.nextBelow(64)) *
                        InstrBytes));
        EXPECT_EQ(H.sumOfSquares(), Before);
      } else {
        H.addSample(Start +
                    static_cast<Addr>(Random.nextBelow(Instrs)) * InstrBytes);
      }
      ASSERT_EQ(H.sumOfSquares(), sumSqReference(H.bins()))
          << "round " << Round << " op " << Op;
      ASSERT_EQ(H.sumOfSquares(), recomputeMoments(H.bins(), H.bins()).Syy);
    }
  }
}

TEST(HotpathMoments, KernelMatchesScalarReferenceUnderFuzz) {
  // The (possibly multi-lane) recomputeMoments kernel vs a trivially
  // correct single-accumulator loop, across sizes that hit every tail
  // length and values that wrap 32-bit partial products.
  Rng Random(7);
  for (int Round = 0; Round < 200; ++Round) {
    const std::size_t N = Random.nextBelow(70);
    std::vector<std::uint32_t> X(N), Y(N);
    for (std::size_t I = 0; I < N; ++I) {
      X[I] = static_cast<std::uint32_t>(Random.next());
      Y[I] = static_cast<std::uint32_t>(Random.next());
    }
    HistMoments Ref;
    for (std::size_t I = 0; I < N; ++I) {
      Ref.SumX += X[I];
      Ref.SumY += Y[I];
      Ref.Sxx += static_cast<std::uint64_t>(X[I]) * X[I];
      Ref.Syy += static_cast<std::uint64_t>(Y[I]) * Y[I];
      Ref.Sxy += static_cast<std::uint64_t>(X[I]) * Y[I];
    }
    const HistMoments M = recomputeMoments(X, Y);
    EXPECT_EQ(M.SumX, Ref.SumX);
    EXPECT_EQ(M.SumY, Ref.SumY);
    EXPECT_EQ(M.Sxx, Ref.Sxx);
    EXPECT_EQ(M.Syy, Ref.Syy);
    EXPECT_EQ(M.Sxy, Ref.Sxy);

    std::uint64_t PcRef = 0;
    std::vector<Addr> Pcs(N);
    for (std::size_t I = 0; I < N; ++I) {
      Pcs[I] = Random.next();
      PcRef += Pcs[I];
    }
    EXPECT_EQ(pcSum(Pcs.data(), Pcs.size()), PcRef);
  }
}

TEST(HotpathMoments, PearsonFromMomentsMatchesNaivePearsonBitExactly) {
  Rng Random(13);
  for (int Round = 0; Round < 300; ++Round) {
    const std::size_t N = 1 + Random.nextBelow(128);
    std::vector<std::uint32_t> X(N), Y(N);
    for (std::size_t I = 0; I < N; ++I) {
      // Mix sparse histograms (mostly zero) with dense ones.
      X[I] = Random.nextBelow(4) == 0
                 ? static_cast<std::uint32_t>(Random.nextBelow(1000))
                 : 0;
      Y[I] = Random.nextBelow(4) == 0
                 ? static_cast<std::uint32_t>(Random.nextBelow(1000))
                 : 0;
    }
    const double Naive = pearson(std::span<const std::uint32_t>(X),
                                 std::span<const std::uint32_t>(Y));
    const double FromMoments = pearsonFromMoments(N, recomputeMoments(X, Y));
    EXPECT_EQ(bits(Naive), bits(FromMoments)) << "round " << Round;
    EXPECT_TRUE(std::isfinite(FromMoments));
    EXPECT_GE(FromMoments, -1.0);
    EXPECT_LE(FromMoments, 1.0);
  }
}

TEST(HotpathMoments, DegenerateInputsAreNaNFree) {
  // Empty comparison: the detector's "prev empty" convention is r = 1.
  EXPECT_EQ(pearsonFromMoments(0, HistMoments{}), 1.0);
  // Both constant (zero variance): identical behaviour, r = 1.
  {
    const std::vector<std::uint32_t> X{5, 5, 5}, Y{2, 2, 2};
    EXPECT_EQ(pearsonFromMoments(3, recomputeMoments(X, Y)), 1.0);
  }
  // One side constant: no correlation defined, r = 0.
  {
    const std::vector<std::uint32_t> X{5, 5, 5}, Y{1, 2, 3};
    EXPECT_EQ(pearsonFromMoments(3, recomputeMoments(X, Y)), 0.0);
    EXPECT_EQ(pearsonFromMoments(3, recomputeMoments(Y, X)), 0.0);
  }
  // Single-bucket histograms are always zero-variance: r = 1, never NaN.
  {
    const std::vector<std::uint32_t> X{7}, Y{9};
    EXPECT_EQ(pearsonFromMoments(1, recomputeMoments(X, Y)), 1.0);
  }
  // All-zero histograms.
  {
    const std::vector<std::uint32_t> Z(8, 0);
    EXPECT_EQ(pearsonFromMoments(8, recomputeMoments(Z, Z)), 1.0);
    EXPECT_TRUE(std::isfinite(cosineFromMoments(recomputeMoments(Z, Z))));
  }
  // Cosine degenerates: zero norm on either side.
  {
    const std::vector<std::uint32_t> Z(4, 0), V{1, 0, 2, 0};
    const double C0 = cosineFromMoments(recomputeMoments(Z, V));
    EXPECT_TRUE(std::isfinite(C0));
    const double C1 = cosineFromMoments(recomputeMoments(V, V));
    EXPECT_TRUE(std::isfinite(C1));
    EXPECT_LE(C1, 1.0);
  }
}

//===----------------------------------------------------------------------===//
// Detector-level lockstep (fuzz)
//===----------------------------------------------------------------------===//

TEST(HotpathDifferential, DetectorObserveMomentsLockstepFuzz) {
  const std::unique_ptr<core::SimilarityMetric> Metric =
      core::makeSimilarity(core::SimilarityKind::Pearson);
  Rng Random(41);
  for (int Round = 0; Round < 25; ++Round) {
    const std::size_t Instrs = 4 + Random.nextBelow(200);
    const Addr Start = 0x4000;
    core::LocalPhaseDetector Naive(Instrs, *Metric);
    core::LocalPhaseDetector Incr(Instrs, *Metric);
    InstrHistogram Curr(Start, Start + static_cast<Addr>(Instrs) * InstrBytes);

    for (int Interval = 0; Interval < 60; ++Interval) {
      Curr.reset();
      // A drifting hotspot: stretches of stability with occasional jumps,
      // so the fuzz visits every state-machine edge.
      const std::size_t Hot = (static_cast<std::size_t>(Interval) / 7 +
                               Random.nextBelow(2)) %
                              Instrs;
      const std::size_t Samples = Random.nextBelow(120);
      std::uint64_t Sxy = 0;
      const std::span<const std::uint32_t> Stable = Incr.stableSet();
      for (std::size_t K = 0; K < Samples; ++K) {
        const std::size_t Bin = Random.nextBelow(3) == 0
                                    ? Random.nextBelow(Instrs)
                                    : Hot;
        // Accumulate the cross moment exactly as the monitor does: read
        // the stable set at the landing bin *before* bumping the bin.
        Sxy += Stable[Bin];
        Curr.addSample(Start + static_cast<Addr>(Bin) * InstrBytes);
      }
      if (Curr.empty())
        continue; // empty intervals do not advance the machine

      Naive.observe(Curr.bins());
      Incr.observeMoments(Curr, Sxy);
      ASSERT_EQ(Naive.state(), Incr.state())
          << "round " << Round << " interval " << Interval;
      ASSERT_EQ(bits(Naive.lastR()), bits(Incr.lastR()))
          << "round " << Round << " interval " << Interval;
      ASSERT_EQ(Naive.phaseChanges(), Incr.phaseChanges());
      ASSERT_EQ(Naive.lastObservationComparedR(),
                Incr.lastObservationComparedR());
      const std::span<const std::uint32_t> Sn = Naive.stableSet();
      const std::span<const std::uint32_t> Si = Incr.stableSet();
      ASSERT_TRUE(std::equal(Sn.begin(), Sn.end(), Si.begin(), Si.end()));
    }
  }
}

//===----------------------------------------------------------------------===//
// Cross-engine checkpoint/restore
//===----------------------------------------------------------------------===//

TEST(HotpathDifferential, CheckpointCrossesEnginesMidStream) {
  const RecordedStream S = record("synthetic.periodic", 7, 0);
  ASSERT_GT(S.Intervals.size(), 8U);
  const std::size_t Half = S.Intervals.size() / 2;

  // The uninterrupted incremental run is the reference.
  core::RegionMonitor Reference(
      *S.Map, engineConfig(core::SimilarityEngine::Incremental));
  for (const std::vector<Sample> &Interval : S.Intervals)
    Reference.observeInterval(Interval);
  const std::vector<std::uint8_t> ReferenceBytes = encodeMonitor(Reference);
  ASSERT_FALSE(Reference.regions().empty()) << "stream formed no regions";

  // Run half on one engine, checkpoint mid-stream (running moments and
  // all), restore into a monitor configured with the *other* engine, and
  // finish there. Both crossings must land byte-identical to the
  // reference: the serialized state is engine-neutral.
  const auto CrossOver = [&](core::SimilarityEngine First,
                             core::SimilarityEngine Second) {
    core::RegionMonitor Source(*S.Map, engineConfig(First));
    for (std::size_t I = 0; I < Half; ++I)
      Source.observeInterval(S.Intervals[I]);
    const std::vector<std::uint8_t> Bytes = encodeMonitor(Source);

    core::RegionMonitor Restored(*S.Map, engineConfig(Second));
    persist::ByteReader R(Bytes);
    EXPECT_TRUE(persist::StateCodec::decode(R, Restored));
    for (std::size_t I = Half; I < S.Intervals.size(); ++I)
      Restored.observeInterval(S.Intervals[I]);
    return encodeMonitor(Restored);
  };

  EXPECT_EQ(CrossOver(core::SimilarityEngine::Incremental,
                      core::SimilarityEngine::Naive),
            ReferenceBytes);
  EXPECT_EQ(CrossOver(core::SimilarityEngine::Naive,
                      core::SimilarityEngine::Incremental),
            ReferenceBytes);
}

} // namespace
