// Fixture: every form of nondeterminism R1 bans in deterministic layers.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int sampleWeight() {
  std::srand(42);                      // violation: srand
  int Raw = std::rand() % 100;         // violation: rand
  return Raw;
}

long stampInterval() {
  long Now = std::time(nullptr);       // violation: time()
  auto Tick = std::chrono::steady_clock::now(); // violation: clock now
  (void)Tick;
  return Now;
}

unsigned seedFromEntropy() {
  std::random_device Dev;              // violation: random_device
  return Dev();
}
