// Fixture: header without an include guard and with a namespace leak (R4a).
#include <string>

using namespace std; // violation: using namespace in a header

inline string describe() { return "unguarded"; }
