// Fixture: conforming flight-recorder code. The test lints this with the
// path src/trace/trace_good.cpp and expects zero diagnostics: fixed-width
// wire fields, checked transfers, and no concurrency tokens (the service
// layer owns the recorder's serialization, journal-style).
#include <cstdint>
#include <cstdio>

namespace regmon::trace {

struct GoodTraceRecord {
  std::uint64_t Sequence = 0;
  std::uint32_t PayloadLen = 0;
  std::uint32_t Crc = 0;
  std::uint8_t Kind = 0;
};

inline bool appendGood(std::FILE *F, const GoodTraceRecord &R) {
  return std::fwrite(&R, sizeof(R), 1, F) == 1;
}

inline bool scanGood(std::FILE *F, GoodTraceRecord &R) {
  const auto Got = std::fread(&R, sizeof(R), 1, F);
  return Got == 1;
}

} // namespace regmon::trace
