// Fixture: plain sequential code plus look-alike names — clean for R2a.
#include <vector>

namespace sim {
struct thread {}; // a local type named thread is not std::thread
} // namespace sim

int countRegions(const std::vector<int> &Ids) {
  sim::thread T;
  (void)T;
  int N = 0;
  for (int Id : Ids)
    if (Id > 0)
      ++N;
  return N;
}
