// Fixture: atomic accesses with defaulted (implicit seq_cst) ordering (R2b).
#include <atomic>
#include <cstdint>

std::atomic<std::uint64_t> Processed{0};

void record(std::atomic<std::uint64_t> *Slot) {
  Processed.fetch_add(1);      // violation: no memory_order
  Slot->store(7);              // violation: no memory_order
}

std::uint64_t read() {
  return Processed.load();     // violation: no memory_order
}
