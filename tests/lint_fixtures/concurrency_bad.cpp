// Fixture: concurrency primitives outside src/service (R2a).
#include <mutex>   // violation: include
#include <thread>  // violation: include
#include <vector>

std::mutex CacheLock; // violation: std::mutex

void warmCaches() {
  std::vector<std::thread> Pool; // violation: std::thread
  std::lock_guard<std::mutex> G(CacheLock); // violations: lock_guard, mutex
}
