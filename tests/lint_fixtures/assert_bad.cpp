// Fixture: asserts whose expressions vanish under NDEBUG (R4b).
#include <cassert>

int consume(int *Cursor, int Limit) {
  assert(*Cursor++ < Limit);   // violation: increment inside assert
  int Mode = 0;
  assert((Mode = Limit) != 0); // violation: assignment inside assert
  return Mode;
}
