// Fixture: the obs idiom R7 accepts -- atomics for lock-free counters
// (legal in this layer, unlike Support), std::map for deterministic
// enumeration, and logical interval indices instead of any clock.
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

struct MetricRow {
  std::string Name;
  std::uint64_t Value = 0;
};

class Registry {
public:
  void add(const std::string &Name, std::uint64_t N) {
    Entries[Name].fetch_add(N, std::memory_order_relaxed);
  }

  // std::map order is the export order: deterministic by construction.
  std::vector<MetricRow> collect() const {
    std::vector<MetricRow> Out;
    for (const auto &[Name, Value] : Entries)
      Out.push_back(MetricRow{Name, Value.load(std::memory_order_relaxed)});
    return Out;
  }

private:
  std::map<std::string, std::atomic<std::uint64_t>> Entries;
};

// Identifiers resembling banned names must not trip R7.
struct Tracer {
  std::uint64_t time() const { return Interval; } // member named time: fine
  std::uint64_t Interval = 0;
};

std::uint64_t stamp(const Tracer &T) { return T.time(); }
