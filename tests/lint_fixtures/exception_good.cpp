// Fixture: catch handlers that rethrow, propagate or terminate — clean
// for R5.
#include <cstdlib>
#include <exception>

bool parse(int X);
void log(const std::exception &E);

bool tryParse(int X) {
  try {
    return parse(X);
  } catch (...) {
    return false; // propagates an error value
  }
}

void cleanupThenRethrow(int &Count) {
  try {
    parse(Count);
  } catch (...) {
    Count = 0;
    throw; // rethrown after cleanup
  }
}

void hardStop() {
  try {
    parse(0);
  } catch (...) {
    std::abort(); // fatal is honest
  }
}

void latch(std::exception_ptr &Err) {
  try {
    parse(1);
  } catch (...) {
    Err = std::current_exception(); // latched for the caller
  }
}

void typedHandlerIsFine() {
  try {
    parse(2);
  } catch (const std::exception &E) {
    log(E); // names the error it claims to understand
  }
}
