// Fixture: persist-serialization violations. The test lints this with the
// path src/persist/persist_bad.cpp, where the rule applies.
#include <cstddef>
#include <cstdio>

namespace regmon::persist {

struct BadRecord {
  std::size_t Length = 0; // platform-width field: wire layout varies
  long Offset = 0;        // same, via a bare keyword type
  unsigned Flags = 0;     // same
};

inline void writeBad(std::FILE *F, const BadRecord &R) {
  std::fwrite(&R, sizeof(R), 1, F); // transfer count dropped
}

inline void readBad(std::FILE *F, BadRecord &R) {
  if (F)
    fread(&R, sizeof(R), 1, F); // dropped in statement position after ')'
}

} // namespace regmon::persist
