// Fixture: every atomic access spells out its ordering — clean for R2b.
#include <atomic>
#include <cstdint>
#include <vector>

std::atomic<std::uint64_t> Processed{0};

void record(std::atomic<std::uint64_t> *Slot) {
  Processed.fetch_add(1, std::memory_order_relaxed);
  Slot->store(7, std::memory_order_release);
}

std::uint64_t read() {
  return Processed.load(std::memory_order_acquire);
}

// Non-atomic member calls that happen to be named like atomic ops are
// only flagged when order is missing; unqualified free calls never are.
std::vector<int> store(int X) { return std::vector<int>(1, X); }
void driver() { (void)store(3); }
