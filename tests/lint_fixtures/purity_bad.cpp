// Fixture: violations of the call-graph purity contracts that the
// per-file token rules cannot see. Every offending effect sits at least
// one call below the annotated root, so the `hotpath` token scan of the
// tagged bodies stays clean -- the graph pass has to prove the violation.
// Linted with a Layer::Deterministic override.

#include "support/Contracts.h"

#include <chrono>
#include <mutex>

namespace fixture {

struct Widget {
  int poke();
};

// 1. Indirect-call laundering: the REGMON_HOT body is token-clean; the
// helper one hop down dispatches through a pointer.
inline int launder(Widget *W) { return W->poke(); }

REGMON_HOT inline int hotLaundered(Widget *W) { return launder(W); }

// 2. Allocation three hops below a REGMON_HOT body.
inline int *hopThree() { return new int(3); }
inline int *hopTwo() { return hopThree(); }
inline int *hopOne() { return hopTwo(); }

REGMON_HOT inline int hotDeepAlloc() { return *hopOne(); }

// 3. A REGMON_PURE decision path reaching a wall clock through a helper.
inline long helperClock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

REGMON_PURE inline long detectorDecide(long Seed) {
  return Seed + helperClock();
}

// 4. Concurrency smuggled into the deterministic layer via a helper: the
// caller's own body never names a primitive.
inline void guardedBump(int &X) {
  std::mutex M;
  std::lock_guard<std::mutex> Lock(M);
  ++X;
}

inline void intervalEnd(int &X) { guardedBump(X); }

// 5. A REGMON_PURE summary merge that smuggles a clock: the merge body is
// token-clean arithmetic; the tie-break helper one hop down reads
// steady_clock, so two replays of the same merge can disagree.
inline long mergeTieBreak() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

REGMON_PURE inline long mergeSummaries(long A, long B) {
  if (A == B)
    return A + mergeTieBreak();
  return A > B ? A : B;
}

// 6. An adaptive-sampling controller decision that smuggles a wall clock
// through a "streak expiry" helper: the REGMON_PURE decision body is
// token-clean compares and increments, but the helper's clock read means
// replaying the same feedback could pick a different sampling period.
inline bool streakExpired(int Streak) {
  return Streak > std::chrono::steady_clock::now().time_since_epoch().count() % 4;
}

REGMON_PURE inline int controllerDecide(int Level, int Streak, bool Stable) {
  if (Stable && streakExpired(Streak))
    return Level + 1;
  return Stable ? Level : 0;
}

} // namespace fixture
