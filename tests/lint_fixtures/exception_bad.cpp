// Fixture: catch (...) handlers that swallow the exception (R5).
bool parse(int X);

int drainQueue(int N) {
  int Done = 0;
  for (int I = 0; I < N; ++I) {
    try {
      parse(I);
      ++Done;
    } catch (...) { // violation: empty catch-all
    }
  }
  return Done;
}

void resetState(int &Count) {
  try {
    Count = 7;
  } catch (...) { // violation: patches state, error never surfaces
    Count = 0;
  }
}

void bestEffort() {
  try {
    parse(0);
  } catch (...) { // violation: bare return propagates nothing
    return;
  }
}
