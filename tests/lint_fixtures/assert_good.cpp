// Fixture: side-effect-free asserts — clean for R4b.
#include <cassert>

int consume(const int *Cursor, int Limit) {
  assert(*Cursor < Limit);
  assert(Limit >= 0 && *Cursor != -1); // comparisons are not assignments
  return *Cursor;
}
