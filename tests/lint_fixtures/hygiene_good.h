// Fixture: guarded header with no namespace leak — clean for R4a.
#ifndef REGMON_TESTS_LINT_FIXTURES_HYGIENE_GOOD_H
#define REGMON_TESTS_LINT_FIXTURES_HYGIENE_GOOD_H

#include <string>

namespace regmon {
inline std::string describe() { return "guarded"; }
} // namespace regmon

#endif // REGMON_TESTS_LINT_FIXTURES_HYGIENE_GOOD_H
