// Fixture: the call-graph purity pass must stay quiet here. Linted with a
// Layer::Deterministic override.

#include "support/Contracts.h"

#include <vector>

namespace fixture {

// Clean transitive math under a REGMON_HOT root.
inline int combine(int A, int B) { return A * 31 + B; }

REGMON_HOT inline int hotClean(int A, int B) { return combine(A, B); }

// A known-benign allocation exempted at the evidence line: the root stays
// clean even though a reachable helper grows a buffer.
inline void growScratch(std::vector<int> &V) {
  V.push_back(0); // regmon-lint: allow(purity-hot)
}

REGMON_HOT inline void hotExempted(std::vector<int> &V) { growScratch(V); }

// REGMON_PURE roots may allocate: the contract bans clocks, I/O and
// global writes, not memory.
REGMON_PURE inline int *pureAlloc() { return new int(7); }

// A controller decision whose streak logic stays arithmetic all the way
// down: the clean counterpart of purity_bad.cpp's case 6.
inline bool streakComplete(int Streak, int Step) { return Streak >= Step; }

REGMON_PURE inline int controllerDecideClean(int Level, int Streak,
                                             bool Stable) {
  if (Stable && streakComplete(Streak, 2))
    return Level + 1;
  return Stable ? Level : 0;
}

} // namespace fixture
