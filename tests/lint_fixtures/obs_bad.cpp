// Fixture: everything R7 bans inside src/obs -- wall clocks and
// hash-ordered containers, both of which break byte-stable export.
#include <chrono>
#include <ctime>
#include <string>
#include <unordered_map> // violation: unordered header
#include <vector>

struct MetricRow {
  std::string Name;
  unsigned long long Value = 0;
};

// Hash iteration order would decide the exported byte sequence.
std::vector<MetricRow>
collectAll(const std::unordered_map<std::string, unsigned long long> &M) {
  // ^ violation: std::unordered_map
  std::vector<MetricRow> Out;
  for (const auto &[Name, Value] : M)
    Out.push_back(MetricRow{Name, Value});
  return Out;
}

long long exportTimestamp() {
  long long Stamp = std::time(nullptr); // violation: time()
  auto Tick = std::chrono::steady_clock::now(); // violation: clock now
  (void)Tick;
  return Stamp;
}
