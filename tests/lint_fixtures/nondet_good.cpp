// Fixture: deterministic randomness and explicit simulated time — clean.
#include "support/Rng.h"

int sampleWeight(regmon::Rng &Rng) {
  return static_cast<int>(Rng.nextBelow(100));
}

// Identifiers that merely resemble banned names must not trip R1.
struct Runtime {
  long time() const { return Ticks; } // member named time: fine
  long Ticks = 0;
};

long stampInterval(const Runtime &RT) {
  return RT.time(); // member call, not ::time()
}
