// Conforming code for the hotpath rule: flat tagged kernels, and
// untagged functions that may allocate freely.
#include <cstddef>
#include <cstdint>
#include <vector>

#define REGMON_HOT

// A tagged declaration without a body: nothing to scan.
REGMON_HOT std::uint64_t hotDeclared(const std::uint32_t *X, std::size_t N);

// A flat kernel: array indexing, arithmetic, and direct (`.`) member
// calls on values are all allowed.
REGMON_HOT std::uint64_t hotSum(const std::vector<std::uint32_t> &Bins) {
  std::uint64_t Sum = 0;
  for (std::size_t I = 0; I < Bins.size(); ++I)
    Sum += Bins[I];
  return Sum;
}

// Untagged functions may allocate: the rule scans only REGMON_HOT bodies.
std::vector<int> coldAllocates(std::vector<int> V) {
  V.push_back(1);
  V.resize(32);
  int *P = new int[8];
  delete[] P;
  return V;
}

// Identifier lookalikes outside any tagged body stay unflagged.
struct Resizer {
  void resize(int);
};
void coldIndirect(Resizer *R) { R->resize(3); }
