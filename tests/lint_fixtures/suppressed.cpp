// Fixture: inline suppressions silence exactly the named rule (R2a here).
#include <mutex> // regmon-lint: allow(concurrency)
#include <vector>

// regmon-lint: allow(concurrency)
std::mutex DemoLock; // suppressed by the comment on the previous line

std::mutex UnsuppressedLock; // still a violation: no allow() nearby
