// Violations of the hotpath rule: allocation, container growth, and
// indirect member calls inside REGMON_HOT-tagged function bodies.
#include <cstdlib>
#include <memory>
#include <vector>

#define REGMON_HOT

struct Metric {
  virtual double compare(int) = 0;
};

REGMON_HOT int hotAllocates(std::vector<int> &V, Metric *M) {
  int *P = new int[4];            // BAD: operator new
  void *Q = std::malloc(16);      // BAD: malloc
  auto U = std::make_unique<int>(); // BAD: make_unique
  V.push_back(1);                 // BAD: container growth
  V.resize(8);                    // BAD: container growth
  double R = M->compare(3);       // BAD: indirect member call
  std::free(Q);
  delete[] P;
  return static_cast<int>(R) + *U;
}

// A second tagged function: the scan must keep finding bodies after the
// first one ends.
REGMON_HOT void hotGrowsAgain(std::vector<int> *V) {
  V->reserve(64); // BAD: container growth through a pointer
}
