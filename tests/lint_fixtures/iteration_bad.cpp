// Fixture: unordered iteration feeding result-bearing output (R3).
#include <iostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

std::vector<int> collectCounts(
    const std::unordered_map<std::string, int> &Counts) {
  std::vector<int> Out;
  for (const auto &KV : Counts)  // violation: push_back in body
    Out.push_back(KV.second);
  return Out;
}

void dumpIds(const std::unordered_set<int> &Ids) {
  for (int Id : Ids)             // violation: stream output in body
    std::cout << Id << "\n";
}
