// Fixture: src/trace violations. The test lints this with the path
// src/trace/trace_bad.cpp, where the persist-serialization rule applies
// (the trace record encoding is a wire format) and the file sits in the
// Deterministic layer (no concurrency primitives).
#include <cstddef>
#include <cstdio>
#include <mutex>

namespace regmon::trace {

struct BadTraceRecord {
  std::size_t PayloadLen = 0; // platform-width field: wire layout varies
  long Sequence = 0;          // same, via a bare keyword type
  unsigned Kind = 0;          // same
};

inline void appendBad(std::FILE *F, const BadTraceRecord &R) {
  static std::mutex Mu; // concurrency token in the deterministic layer
  const std::lock_guard<std::mutex> Lock(Mu);
  std::fwrite(&R, sizeof(R), 1, F); // transfer count dropped
}

inline void scanBad(std::FILE *F, BadTraceRecord &R) {
  if (F)
    fread(&R, sizeof(R), 1, F); // dropped in statement position after ')'
}

} // namespace regmon::trace
