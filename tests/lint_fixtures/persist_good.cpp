// Fixture: conforming serialization code. The test lints this with the
// path src/persist/persist_good.cpp and expects zero diagnostics.
#include <cstdint>
#include <cstdio>

namespace regmon::persist {

struct GoodRecord {
  std::uint64_t Length = 0;
  std::int64_t Offset = 0;
  std::uint32_t Flags = 0;
};

inline bool writeGood(std::FILE *F, const GoodRecord &R) {
  return std::fwrite(&R, sizeof(R), 1, F) == 1;
}

inline bool readGood(std::FILE *F, GoodRecord &R) {
  const auto Got = std::fread(&R, sizeof(R), 1, F);
  if (Got != 1)
    return false;
  return true;
}

} // namespace regmon::persist
