// Fixture: order-safe iteration patterns — clean for R3.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

// Ordered container feeding output: fine.
std::vector<int> collectCounts(const std::map<std::string, int> &Counts) {
  std::vector<int> Out;
  for (const auto &KV : Counts)
    Out.push_back(KV.second);
  return Out;
}

// Unordered iteration is fine when the fold is order-insensitive.
int totalCount(const std::unordered_map<std::string, int> &Histogram) {
  int Sum = 0;
  for (const auto &KV : Histogram)
    Sum += KV.second;
  return Sum;
}
