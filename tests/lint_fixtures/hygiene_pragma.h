// Fixture: #pragma once also satisfies the guard requirement (R4a).
#pragma once

namespace regmon {
inline int answer() { return 42; }
} // namespace regmon
