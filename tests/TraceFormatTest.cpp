//===- tests/TraceFormatTest.cpp - Trace format totality tests ------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The flight-recorder format's trust-boundary tests: payload round-trips,
// then a scanner totality sweep -- every truncation length, a bit flip at
// every byte offset, hostile lengths and counts, version skew, unknown
// kinds -- asserting the scanner always lands on a precise diagnosis and
// the exact valid-prefix boundary, never undefined behaviour (run under
// ASan/UBSan via tools/run_sanitized_tests.sh). The recorder half gets a
// crash sweep at every byte budget: the torn file must be a byte-prefix
// of an uninterrupted reference, repair to its valid prefix, and accept
// appends again at the resumed sequence.
//
//===----------------------------------------------------------------------===//

#include "trace/Reader.h"
#include "trace/Recorder.h"

#include "persist/Io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <set>
#include <span>
#include <string>
#include <vector>

using namespace regmon;
using namespace regmon::trace;
using service::RecordedFate;

namespace {

std::string scratchFile(const std::string &Tag) {
  static int Counter = 0;
  const std::string Path = ::testing::TempDir() + "regmon_trace_" +
                           std::to_string(::getpid()) + "_" + Tag + "_" +
                           std::to_string(Counter++) + ".bin";
  std::filesystem::remove(Path);
  return Path;
}

std::vector<std::uint8_t> headerBytes() {
  persist::ByteWriter W;
  encodeTraceHeader(W);
  return W.take();
}

/// One well-formed record with the real CRC.
std::vector<std::uint8_t> record(std::uint64_t Seq, std::uint8_t Kind,
                                 std::span<const std::uint8_t> Payload) {
  persist::ByteWriter W;
  W.u64(Seq);
  W.u8(Kind);
  W.u32(static_cast<std::uint32_t>(Payload.size()));
  W.u32(traceRecordCrc(Seq, Kind, Payload));
  W.bytes(Payload);
  return W.take();
}

void append(std::vector<std::uint8_t> &Out,
            const std::vector<std::uint8_t> &More) {
  Out.insert(Out.end(), More.begin(), More.end());
}

service::SampleBatch smallBatch(std::uint32_t Stream) {
  service::SampleBatch B;
  B.Stream = Stream;
  B.Samples = {{0x400010, 100, false}, {0x400020, 200, true}};
  return B;
}

std::vector<std::uint8_t> batchPayload(const service::SampleBatch &B,
                                       RecordedFate Fate) {
  persist::ByteWriter W;
  encodeBatchRecordPayload(W, B, Fate);
  return W.take();
}

/// A deterministic four-record trace with known record boundaries:
/// Config, Batch, Drop, Checkpoint.
struct BuiltTrace {
  std::vector<std::uint8_t> Bytes;
  /// Valid-prefix byte lengths: header, then after each record.
  std::vector<std::uint64_t> Boundaries;
};

BuiltTrace buildTrace() {
  BuiltTrace T;
  T.Bytes = headerBytes();
  T.Boundaries.push_back(T.Bytes.size());
  const std::vector<std::uint8_t> Fp = {9, 8, 7, 6};
  for (const auto &Rec :
       {record(1, static_cast<std::uint8_t>(RecordKind::Config), Fp),
        record(2, static_cast<std::uint8_t>(RecordKind::Batch),
               batchPayload(smallBatch(0), RecordedFate::Admitted)),
        [] {
          persist::ByteWriter W;
          encodeDropPayload(W, /*EvictedSeq=*/2, /*Shard=*/0);
          return record(3, static_cast<std::uint8_t>(RecordKind::Drop),
                        W.take());
        }(),
        [] {
          persist::ByteWriter W;
          encodeCheckpointPayload(W, /*JournalSeq=*/1, /*Committed=*/true);
          return record(4, static_cast<std::uint8_t>(RecordKind::Checkpoint),
                        W.take());
        }()}) {
    append(T.Bytes, Rec);
    T.Boundaries.push_back(T.Bytes.size());
  }
  return T;
}

TEST(TraceFormat, KindNamesAreDistinct) {
  std::set<std::string> Names;
  for (RecordKind K : {RecordKind::Config, RecordKind::Batch, RecordKind::Drop,
                       RecordKind::PushReject, RecordKind::Checkpoint})
    Names.insert(toString(K));
  EXPECT_EQ(Names.size(), 5U);
}

TEST(TraceFormat, HeaderAloneIsAnIntactEmptyTrace) {
  const std::vector<std::uint8_t> H = headerBytes();
  ASSERT_EQ(H.size(), TraceHeaderBytes);
  const ScanResult S = scanTraceBytes(H);
  EXPECT_TRUE(S.intact());
  EXPECT_TRUE(S.Records.empty());
  EXPECT_EQ(S.ValidBytes, TraceHeaderBytes);
  EXPECT_EQ(S.LastSeq, 0U);
}

TEST(TraceFormat, PayloadRoundTrips) {
  // Batch: fate + stream + samples survive the wire.
  const service::SampleBatch In = smallBatch(7);
  const std::vector<std::uint8_t> P = batchPayload(In, RecordedFate::Refused);
  EXPECT_EQ(P.size(), 1 + 4 + 8 + In.Samples.size() * TraceSampleWireBytes);
  persist::ByteReader R(P);
  service::SampleBatch Out;
  RecordedFate Fate = RecordedFate::Admitted;
  ASSERT_TRUE(decodeBatchRecordPayload(R, Out, Fate));
  EXPECT_EQ(Fate, RecordedFate::Refused);
  EXPECT_EQ(Out.Stream, In.Stream);
  ASSERT_EQ(Out.Samples.size(), In.Samples.size());
  for (std::size_t I = 0; I < In.Samples.size(); ++I) {
    EXPECT_EQ(Out.Samples[I].Pc, In.Samples[I].Pc);
    EXPECT_EQ(Out.Samples[I].Time, In.Samples[I].Time);
    EXPECT_EQ(Out.Samples[I].DCacheMiss, In.Samples[I].DCacheMiss);
  }

  persist::ByteWriter W2;
  encodeDropPayload(W2, 42, 3);
  persist::ByteReader R2(W2.data());
  std::uint64_t Evicted = 0, Shard = 0;
  ASSERT_TRUE(decodeDropPayload(R2, Evicted, Shard));
  EXPECT_EQ(Evicted, 42U);
  EXPECT_EQ(Shard, 3U);

  persist::ByteWriter W3;
  encodePushRejectPayload(W3, 17);
  persist::ByteReader R3(W3.data());
  std::uint64_t Seq = 0;
  ASSERT_TRUE(decodePushRejectPayload(R3, Seq));
  EXPECT_EQ(Seq, 17U);

  persist::ByteWriter W4;
  encodeCheckpointPayload(W4, 9, false);
  persist::ByteReader R4(W4.data());
  std::uint64_t JSeq = 0;
  bool Committed = true;
  ASSERT_TRUE(decodeCheckpointPayload(R4, JSeq, Committed));
  EXPECT_EQ(JSeq, 9U);
  EXPECT_FALSE(Committed);
}

TEST(TraceFormat, DecodersRejectStructuralViolations) {
  // Out-of-range fate.
  {
    std::vector<std::uint8_t> P =
        batchPayload(smallBatch(0), RecordedFate::Admitted);
    P[0] = 9;
    persist::ByteReader R(P);
    service::SampleBatch B;
    RecordedFate F;
    EXPECT_FALSE(decodeBatchRecordPayload(R, B, F));
  }
  // Trailing bytes after an otherwise valid payload.
  {
    std::vector<std::uint8_t> P =
        batchPayload(smallBatch(0), RecordedFate::Admitted);
    P.push_back(0);
    persist::ByteReader R(P);
    service::SampleBatch B;
    RecordedFate F;
    EXPECT_FALSE(decodeBatchRecordPayload(R, B, F));
  }
  // Short payload (sample count promises more than the bytes hold).
  {
    std::vector<std::uint8_t> P =
        batchPayload(smallBatch(0), RecordedFate::Admitted);
    P.resize(P.size() - 1);
    persist::ByteReader R(P);
    service::SampleBatch B;
    RecordedFate F;
    EXPECT_FALSE(decodeBatchRecordPayload(R, B, F));
  }
  // Non-0/1 checkpoint bool.
  {
    persist::ByteWriter W;
    encodeCheckpointPayload(W, 1, true);
    std::vector<std::uint8_t> P = W.take();
    P.back() = 2;
    persist::ByteReader R(P);
    std::uint64_t S;
    bool C;
    EXPECT_FALSE(decodeCheckpointPayload(R, S, C));
  }
}

TEST(TraceFormat, ScannerDecodesRecorderOutput) {
  const std::string Path = scratchFile("roundtrip");
  TraceRecorder Rec;
  const TraceRecorder::OpenResult Open = Rec.open(Path);
  ASSERT_TRUE(Open.Ok);
  EXPECT_TRUE(Open.Created);
  EXPECT_EQ(Open.NextSeq, 1U);
  const std::vector<std::uint8_t> Fp = {1, 2, 3};
  Rec.recordConfig(Fp);
  EXPECT_EQ(Rec.recordBatch(smallBatch(5), RecordedFate::Admitted), 2U);
  Rec.recordDrop(/*EvictedSeq=*/2, /*Shard=*/1);
  Rec.recordPushReject(/*Seq=*/2);
  Rec.recordCheckpoint(/*JournalSeq=*/1, /*Committed=*/false);
  EXPECT_EQ(Rec.recordsWritten(), 5U);
  EXPECT_EQ(Rec.appendFailures(), 0U);
  ASSERT_TRUE(Rec.close());

  const ScanResult S = scanTraceFile(Path);
  EXPECT_TRUE(S.intact());
  ASSERT_EQ(S.Records.size(), 5U);
  EXPECT_EQ(S.LastSeq, 5U);
  EXPECT_EQ(S.Records[0].Kind, RecordKind::Config);
  EXPECT_EQ(S.Records[0].Config, Fp);
  EXPECT_EQ(S.Records[1].Kind, RecordKind::Batch);
  EXPECT_EQ(S.Records[1].Fate, RecordedFate::Admitted);
  EXPECT_EQ(S.Records[1].Batch.Stream, 5U);
  EXPECT_EQ(S.Records[1].Batch.TraceSeq, 2U);
  EXPECT_EQ(S.Records[2].Kind, RecordKind::Drop);
  EXPECT_EQ(S.Records[2].RefSeq, 2U);
  EXPECT_EQ(S.Records[2].Shard, 1U);
  EXPECT_EQ(S.Records[3].Kind, RecordKind::PushReject);
  EXPECT_EQ(S.Records[3].RefSeq, 2U);
  EXPECT_EQ(S.Records[4].Kind, RecordKind::Checkpoint);
  EXPECT_EQ(S.Records[4].RefSeq, 1U);
  EXPECT_FALSE(S.Records[4].Committed);

  // Reopen extends the intact file from the next sequence.
  TraceRecorder Again;
  const TraceRecorder::OpenResult Re = Again.open(Path);
  ASSERT_TRUE(Re.Ok);
  EXPECT_FALSE(Re.Created);
  EXPECT_FALSE(Re.Repaired);
  EXPECT_EQ(Re.NextSeq, 6U);
  ASSERT_TRUE(Again.close());
}

// Totality satellite: every truncation length lands exactly on the
// longest valid prefix, flagged HeaderTorn inside the file header and
// TornTail after it -- and both repair.
TEST(TraceFormat, TruncationSweepEveryLength) {
  const BuiltTrace T = buildTrace();
  for (std::size_t Len = 0; Len <= T.Bytes.size(); ++Len) {
    SCOPED_TRACE("truncated to " + std::to_string(Len));
    const ScanResult S = scanTraceBytes(
        std::span<const std::uint8_t>(T.Bytes.data(), Len));
    EXPECT_EQ(S.FileBytes, Len);
    const bool AtBoundary =
        std::find(T.Boundaries.begin(), T.Boundaries.end(), Len) !=
        T.Boundaries.end();
    if (Len == 0) {
      // An empty byte string is a never-opened trace: intact and empty.
      EXPECT_TRUE(S.intact());
      EXPECT_EQ(S.ValidBytes, 0U);
    } else if (Len < TraceHeaderBytes) {
      EXPECT_TRUE(S.HeaderTorn);
      EXPECT_EQ(S.ValidBytes, 0U);
    } else if (AtBoundary) {
      EXPECT_TRUE(S.intact());
      EXPECT_EQ(S.ValidBytes, Len);
    } else {
      EXPECT_TRUE(S.TornTail);
      // The valid prefix is the largest record boundary below Len.
      std::uint64_t Expect = 0;
      for (std::uint64_t B : T.Boundaries)
        if (B < Len)
          Expect = B;
      EXPECT_EQ(S.ValidBytes, Expect);
    }
    EXPECT_TRUE(S.repairable());
    // Record count matches the boundary the prefix reaches (boundary 0 is
    // the bare header).
    const std::size_t Prefix =
        std::count_if(T.Boundaries.begin(), T.Boundaries.end(),
                      [&](std::uint64_t B) { return B <= S.ValidBytes; });
    EXPECT_EQ(S.Records.size(), Prefix == 0 ? 0 : Prefix - 1);
  }
}

// Totality satellite: a bit flip at every byte offset is detected with a
// precise diagnosis -- header corruption inside the header, a torn tail
// at the containing record's boundary after it. Never intact, never UB.
TEST(TraceFormat, BitFlipSweepEveryOffset) {
  const BuiltTrace T = buildTrace();
  for (std::size_t Off = 0; Off < T.Bytes.size(); ++Off) {
    SCOPED_TRACE("bit flip at offset " + std::to_string(Off));
    std::vector<std::uint8_t> Mutated = T.Bytes;
    Mutated[Off] ^= static_cast<std::uint8_t>(1U << (Off % 8));
    const ScanResult S = scanTraceBytes(Mutated);
    EXPECT_FALSE(S.intact());
    if (Off < 4) {
      EXPECT_TRUE(S.HeaderCorrupt);
      EXPECT_FALSE(S.repairable());
    } else if (Off < TraceHeaderBytes) {
      EXPECT_TRUE(S.VersionSkew);
      EXPECT_FALSE(S.repairable());
    } else {
      // The CRC binds seq, kind, length and payload: whichever field the
      // flip hit, the containing record dies and everything before it
      // survives.
      EXPECT_TRUE(S.TornTail);
      std::uint64_t Expect = 0;
      for (std::uint64_t B : T.Boundaries)
        if (B <= Off)
          Expect = B;
      EXPECT_EQ(S.ValidBytes, Expect);
      EXPECT_TRUE(S.repairable());
    }
  }
}

TEST(TraceFormat, HostileRecordLengthIsATornTailNotAnAllocation) {
  std::vector<std::uint8_t> Bytes = headerBytes();
  persist::ByteWriter W;
  W.u64(1);
  W.u8(static_cast<std::uint8_t>(RecordKind::Batch));
  W.u32(0xFFFFFFFFU); // promises 4 GiB of payload
  W.u32(0xDEADBEEFU);
  append(Bytes, W.take());
  const ScanResult S = scanTraceBytes(Bytes);
  EXPECT_TRUE(S.TornTail);
  EXPECT_EQ(S.ValidBytes, TraceHeaderBytes);
  EXPECT_TRUE(S.repairable());
}

TEST(TraceFormat, HostileSampleCountWithValidCrcIsMalformedPayload) {
  // A forged-but-CRC-consistent batch payload claiming 2^61 samples: the
  // CRC passes, the structural decoder must still refuse.
  persist::ByteWriter P;
  P.u8(static_cast<std::uint8_t>(RecordedFate::Admitted));
  P.u32(0);
  P.u64(1ULL << 61);
  std::vector<std::uint8_t> Bytes = headerBytes();
  append(Bytes,
         record(1, static_cast<std::uint8_t>(RecordKind::Batch), P.data()));
  const ScanResult S = scanTraceBytes(Bytes);
  EXPECT_TRUE(S.MalformedPayload);
  EXPECT_EQ(S.ValidBytes, TraceHeaderBytes);
  EXPECT_TRUE(S.repairable());
}

TEST(TraceFormat, UnknownKindRefusesRepair) {
  std::vector<std::uint8_t> Bytes = headerBytes();
  const std::vector<std::uint8_t> P = {1, 2, 3};
  append(Bytes, record(1, /*Kind=*/9, P));
  const ScanResult S = scanTraceBytes(Bytes);
  EXPECT_TRUE(S.UnknownKind);
  EXPECT_FALSE(S.repairable()) << "repair would destroy a newer writer's data";
  EXPECT_EQ(S.ValidBytes, TraceHeaderBytes);

  // The recorder must refuse to open (and so to truncate) such a file.
  const std::string Path = scratchFile("unknownkind");
  persist::FileSink Sink(Path, /*Append=*/false, nullptr);
  ASSERT_TRUE(Sink.write(Bytes));
  ASSERT_TRUE(Sink.close());
  TraceRecorder Rec;
  EXPECT_FALSE(Rec.open(Path).Ok);
  const auto After = persist::readFileBytes(Path);
  ASSERT_TRUE(After.has_value());
  EXPECT_EQ(*After, Bytes) << "open modified a file it refused";
}

TEST(TraceFormat, VersionSkewRefusesRepair) {
  persist::ByteWriter W;
  W.u32(TraceMagic);
  W.u32(TraceVersion + 1);
  const ScanResult S = scanTraceBytes(W.data());
  EXPECT_TRUE(S.VersionSkew);
  EXPECT_FALSE(S.repairable());

  const std::string Path = scratchFile("skew");
  persist::FileSink Sink(Path, /*Append=*/false, nullptr);
  ASSERT_TRUE(Sink.write(W.data()));
  ASSERT_TRUE(Sink.close());
  TraceRecorder Rec;
  EXPECT_FALSE(Rec.open(Path).Ok);
}

TEST(TraceFormat, NonIncreasingSequenceEndsTheScan) {
  std::vector<std::uint8_t> Bytes = headerBytes();
  const std::vector<std::uint8_t> P = {5};
  append(Bytes, record(1, static_cast<std::uint8_t>(RecordKind::Config), P));
  const std::uint64_t Boundary = Bytes.size();
  append(Bytes, record(1, static_cast<std::uint8_t>(RecordKind::Config), P));
  const ScanResult S = scanTraceBytes(Bytes);
  EXPECT_TRUE(S.TornTail);
  EXPECT_EQ(S.ValidBytes, Boundary);
  EXPECT_EQ(S.Records.size(), 1U);
}

// The tentpole's recorder-side crash contract, swept at *every* byte
// budget: a kill mid-append leaves a byte-prefix of the uninterrupted
// reference file, the scanner finds the valid prefix, repair truncates to
// it, and a reopened recorder resumes at the right sequence.
TEST(TraceFormat, RecorderCrashBudgetSweepLeavesRepairablePrefix) {
  const auto drive = [](TraceRecorder &R) {
    const std::vector<std::uint8_t> Fp = {10, 20, 30, 40};
    R.recordConfig(Fp);
    for (std::uint32_t I = 0; I < 6; ++I) {
      service::SampleBatch B;
      B.Stream = I % 2;
      for (std::uint64_t J = 0; J < 3; ++J)
        B.Samples.push_back({0x400000 + 16 * I + J, 100 * I + J,
                             (I + J) % 2 == 1});
      R.recordBatch(B, I % 3 == 1 ? RecordedFate::Refused
                                  : RecordedFate::Admitted);
    }
    R.recordDrop(3, 0);
    R.recordPushReject(4);
    R.recordCheckpoint(5, true);
  };

  // Reference: the same decision sequence with no crash, accounting the
  // total I/O units (bytes + flushes) so the sweep covers every kill
  // point up to "never dies".
  const std::string RefPath = scratchFile("crashref");
  std::uint64_t TotalUnits = 0;
  {
    persist::CrashPoint Acct = persist::CrashPoint::unlimited();
    TraceRecorder R;
    ASSERT_TRUE(R.open(RefPath, &Acct).Ok);
    drive(R);
    EXPECT_EQ(R.appendFailures(), 0U);
    ASSERT_TRUE(R.close());
    TotalUnits = Acct.used();
  }
  const auto Ref = persist::readFileBytes(RefPath);
  ASSERT_TRUE(Ref.has_value());
  {
    const ScanResult S = scanTraceBytes(*Ref);
    ASSERT_TRUE(S.intact());
    ASSERT_EQ(S.LastSeq, 10U);
  }
  ASSERT_GE(TotalUnits, Ref->size());

  for (std::uint64_t Budget = 0; Budget <= TotalUnits + 1; ++Budget) {
    SCOPED_TRACE("crash budget " + std::to_string(Budget));
    const std::string Path = scratchFile("crash");
    persist::CrashPoint Crash(Budget);
    TraceRecorder R;
    const TraceRecorder::OpenResult Open = R.open(Path, &Crash);
    if (Open.Ok) {
      drive(R);
      (void)R.close();
      if (Budget > TotalUnits) {
        EXPECT_EQ(R.appendFailures(), 0U);
      }
    }
    // Whatever the kill left behind is a byte-prefix of the reference...
    const auto Torn = persist::readFileBytes(Path);
    const std::vector<std::uint8_t> TornBytes =
        Torn.has_value() ? *Torn : std::vector<std::uint8_t>{};
    ASSERT_LE(TornBytes.size(), Ref->size());
    EXPECT_TRUE(
        std::equal(TornBytes.begin(), TornBytes.end(), Ref->begin()))
        << "torn file diverged from the reference byte stream";
    // ...whose valid prefix the scanner finds and a reopen repairs.
    const ScanResult S = scanTraceBytes(TornBytes);
    EXPECT_TRUE(S.repairable());
    TraceRecorder Resumed;
    const TraceRecorder::OpenResult Re = Resumed.open(Path);
    ASSERT_TRUE(Re.Ok);
    // A kill inside the file header repairs to empty and rewrites the
    // header, so the resume point is never below TraceHeaderBytes.
    EXPECT_EQ(Re.ValidBytes,
              std::max<std::uint64_t>(S.ValidBytes, TraceHeaderBytes));
    EXPECT_EQ(Re.NextSeq, S.LastSeq + 1);
    EXPECT_EQ(Re.Repaired, TornBytes.size() > S.ValidBytes);
    // The repaired file extends cleanly: one more record, still intact.
    // (A checkpoint marker: the only kind with no cross-record reference,
    // so it is valid at any resume point including an empty prefix.)
    Resumed.recordCheckpoint(S.LastSeq, true);
    ASSERT_TRUE(Resumed.close());
    const ScanResult After = scanTraceFile(Path);
    EXPECT_TRUE(After.intact());
    EXPECT_EQ(After.LastSeq, S.LastSeq + 1);
    EXPECT_EQ(After.Records.size(), S.Records.size() + 1);
  }
}

} // namespace
