//===- tests/CoreSimilarityTest.cpp - Similarity metrics ------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Similarity.h"

#include "core/RegionMonitor.h"
#include "obs/Export.h"
#include "obs/Instruments.h"
#include "support/HotpathKernels.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <bit>
#include <vector>

using namespace regmon;
using namespace regmon::core;

namespace {

std::vector<std::uint32_t> randomHist(Rng &Random, std::size_t N) {
  std::vector<std::uint32_t> H(N);
  for (auto &V : H)
    V = static_cast<std::uint32_t>(Random.nextBelow(100));
  return H;
}

/// Contract tests every similarity metric must satisfy.
class SimilarityMetricTest : public ::testing::TestWithParam<SimilarityKind> {
protected:
  std::unique_ptr<SimilarityMetric> Metric = makeSimilarity(GetParam());
};

TEST_P(SimilarityMetricTest, IdenticalHistogramsScoreOne) {
  Rng Random(1);
  const auto H = randomHist(Random, 32);
  EXPECT_NEAR(Metric->compare(H, H), 1.0, 1e-9);
}

TEST_P(SimilarityMetricTest, ScaledHistogramScoresHigh) {
  // The defining requirement (paper section 3.2.1): more samples with the
  // same shape must NOT look like a phase change.
  std::vector<std::uint32_t> H = {4, 8, 120, 6, 40, 5, 9, 7};
  std::vector<std::uint32_t> Scaled(H.size());
  for (std::size_t I = 0; I < H.size(); ++I)
    Scaled[I] = H[I] * 3;
  EXPECT_GT(Metric->compare(H, Scaled), 0.95);
}

TEST_P(SimilarityMetricTest, DisjointHotspotsScoreLow) {
  const std::vector<std::uint32_t> A = {200, 0, 0, 0, 1, 2, 0, 1};
  const std::vector<std::uint32_t> B = {0, 1, 0, 2, 0, 0, 200, 1};
  EXPECT_LT(Metric->compare(A, B), 0.5);
}

TEST_P(SimilarityMetricTest, SymmetricInArguments) {
  Rng Random(2);
  const auto A = randomHist(Random, 24);
  const auto B = randomHist(Random, 24);
  EXPECT_NEAR(Metric->compare(A, B), Metric->compare(B, A), 1e-12);
}

TEST_P(SimilarityMetricTest, BothEmptyScoreOne) {
  const std::vector<std::uint32_t> Zero(16, 0);
  EXPECT_DOUBLE_EQ(Metric->compare(Zero, Zero), 1.0);
}

TEST_P(SimilarityMetricTest, BoundedByOne) {
  Rng Random(3);
  for (int I = 0; I < 50; ++I) {
    const auto A = randomHist(Random, 16);
    const auto B = randomHist(Random, 16);
    const double S = Metric->compare(A, B);
    EXPECT_LE(S, 1.0 + 1e-12);
    EXPECT_GE(S, -1.0 - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SimilarityMetricTest,
    ::testing::Values(SimilarityKind::Pearson, SimilarityKind::Cosine,
                      SimilarityKind::Overlap),
    [](const auto &Info) {
      switch (Info.param) {
      case SimilarityKind::Pearson:
        return "Pearson";
      case SimilarityKind::Cosine:
        return "Cosine";
      case SimilarityKind::Overlap:
        return "Overlap";
      }
      return "?";
    });

TEST(PearsonSimilarity, AntiCorrelationIsNegative) {
  // Only Pearson distinguishes anti-correlation; the paper treats it as a
  // behaviour change too (values near or below zero trigger).
  const std::vector<std::uint32_t> A = {10, 8, 6, 4, 2, 0};
  const std::vector<std::uint32_t> B = {0, 2, 4, 6, 8, 10};
  PearsonSimilarity P;
  EXPECT_NEAR(P.compare(A, B), -1.0, 1e-9);
}

TEST(OverlapSimilarity, IsNormalizedIntersection) {
  const std::vector<std::uint32_t> A = {10, 0};
  const std::vector<std::uint32_t> B = {5, 5};
  OverlapSimilarity O;
  EXPECT_DOUBLE_EQ(O.compare(A, B), 0.5);
}

TEST(OverlapSimilarity, ZeroAgainstNonZeroIsZero) {
  const std::vector<std::uint32_t> Zero(4, 0);
  const std::vector<std::uint32_t> B = {1, 2, 3, 4};
  OverlapSimilarity O;
  EXPECT_DOUBLE_EQ(O.compare(Zero, B), 0.0);
}

TEST(CosineSimilarity, OrthogonalVectorsScoreZero) {
  const std::vector<std::uint32_t> A = {1, 0, 0, 0};
  const std::vector<std::uint32_t> B = {0, 1, 0, 0};
  CosineSimilarity C;
  EXPECT_DOUBLE_EQ(C.compare(A, B), 0.0);
}

//===----------------------------------------------------------------------===//
// Property-based tests for the paper's metric: seeded-random histograms
// checking the algebraic identities Pearson's r must satisfy. Each
// property sweeps many random inputs, so a violation anywhere in the
// sampled space fails with the offending seed in the message.
//===----------------------------------------------------------------------===//

/// A random histogram guaranteed non-constant (variance > 0), so r is
/// never in the degenerate zero-variance regime unless a test wants it.
std::vector<std::uint32_t> randomVaryingHist(Rng &Random, std::size_t N) {
  std::vector<std::uint32_t> H = randomHist(Random, N);
  H[0] = 1;
  H[1] = 200; // two fixed unequal bins force nonzero variance
  return H;
}

class PearsonPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
protected:
  PearsonSimilarity P;
  Rng Random{GetParam()};
};

TEST_P(PearsonPropertyTest, RandomPairsStayInClosedUnitInterval) {
  for (int Trial = 0; Trial < 64; ++Trial) {
    const std::size_t N = 2 + Random.nextBelow(64);
    const auto A = randomHist(Random, N);
    const auto B = randomHist(Random, N);
    const double R = P.compare(A, B);
    ASSERT_GE(R, -1.0 - 1e-12) << "trial " << Trial << " size " << N;
    ASSERT_LE(R, 1.0 + 1e-12) << "trial " << Trial << " size " << N;
  }
}

TEST_P(PearsonPropertyTest, SymmetricUnderArgumentSwap) {
  for (int Trial = 0; Trial < 64; ++Trial) {
    const std::size_t N = 2 + Random.nextBelow(48);
    const auto A = randomHist(Random, N);
    const auto B = randomHist(Random, N);
    ASSERT_NEAR(P.compare(A, B), P.compare(B, A), 1e-12)
        << "trial " << Trial;
  }
}

TEST_P(PearsonPropertyTest, ScaleInvariantAgainstScaledSelf) {
  // r(a, k*a) == 1 for every k > 0: uniformly more samples of the same
  // shape is not a phase change (paper section 3.2.1).
  for (const std::uint32_t K : {2u, 3u, 7u, 25u}) {
    const std::size_t N = 4 + Random.nextBelow(32);
    const auto A = randomVaryingHist(Random, N);
    std::vector<std::uint32_t> Scaled(A.size());
    for (std::size_t I = 0; I < A.size(); ++I)
      Scaled[I] = A[I] * K;
    ASSERT_NEAR(P.compare(A, Scaled), 1.0, 1e-9) << "k = " << K;
  }
}

TEST_P(PearsonPropertyTest, MeanShiftInvariantAgainstOffsetSelf) {
  // r(a, a + c) == 1: Pearson subtracts the mean, so a uniform additive
  // offset (e.g. background sampling noise in every bin) is invisible.
  for (const std::uint32_t C : {1u, 10u, 1000u}) {
    const std::size_t N = 4 + Random.nextBelow(32);
    const auto A = randomVaryingHist(Random, N);
    std::vector<std::uint32_t> Shifted(A.size());
    for (std::size_t I = 0; I < A.size(); ++I)
      Shifted[I] = A[I] + C;
    ASSERT_NEAR(P.compare(A, Shifted), 1.0, 1e-9) << "c = " << C;
  }
}

TEST_P(PearsonPropertyTest, AffineNegationScoresMinusOne) {
  // b = M - a is a perfect anti-correlation: r must be exactly -1.
  const std::size_t N = 4 + Random.nextBelow(32);
  const auto A = randomVaryingHist(Random, N);
  constexpr std::uint32_t M = 1000;
  std::vector<std::uint32_t> B(A.size());
  for (std::size_t I = 0; I < A.size(); ++I)
    B[I] = M - A[I];
  ASSERT_NEAR(P.compare(A, B), -1.0, 1e-9);
}

TEST_P(PearsonPropertyTest, ConstantAgainstVaryingIsZero) {
  // Zero variance on one side: r is undefined mathematically; the
  // implementation defines it as 0 (a flat profile against a varying one
  // is a shape change).
  const std::size_t N = 4 + Random.nextBelow(32);
  const auto A = randomVaryingHist(Random, N);
  for (const std::uint32_t C : {0u, 5u, 100u}) {
    const std::vector<std::uint32_t> Flat(N, C);
    ASSERT_DOUBLE_EQ(P.compare(Flat, A), 0.0) << "constant " << C;
    ASSERT_DOUBLE_EQ(P.compare(A, Flat), 0.0) << "constant " << C;
  }
}

TEST_P(PearsonPropertyTest, ConstantAgainstConstantIsOne) {
  // Both sides degenerate: identical flat shapes, defined as r = 1 (no
  // behaviour change), including the all-zero histograms of an interval
  // in which a region drew no samples.
  const std::size_t N = 2 + Random.nextBelow(32);
  const std::uint32_t C1 = static_cast<std::uint32_t>(Random.nextBelow(50));
  const std::uint32_t C2 = static_cast<std::uint32_t>(Random.nextBelow(50));
  ASSERT_DOUBLE_EQ(
      P.compare(std::vector<std::uint32_t>(N, C1),
                std::vector<std::uint32_t>(N, C2)),
      1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PearsonPropertyTest,
                         ::testing::Range<std::uint64_t>(1000, 1008));

TEST(Similarity, FactoryNames) {
  EXPECT_STREQ(makeSimilarity(SimilarityKind::Pearson)->name(), "pearson");
  EXPECT_STREQ(makeSimilarity(SimilarityKind::Cosine)->name(), "cosine");
  EXPECT_STREQ(makeSimilarity(SimilarityKind::Overlap)->name(), "overlap");
}

// Regression: an out-of-enum kind (a fuzzed checkpoint, a version skew in
// a config file) used to make the factory return nullptr, which the
// monitor then dereferenced. The factory must fall back to Pearson -- the
// paper's metric -- and report the substitution through the out-param so
// callers can count it.
TEST(Similarity, HostileKindFallsBackToPearson) {
  bool UsedFallback = false;
  const std::unique_ptr<SimilarityMetric> Metric =
      makeSimilarity(static_cast<SimilarityKind>(0xEF), &UsedFallback);
  ASSERT_NE(Metric, nullptr);
  EXPECT_STREQ(Metric->name(), "pearson");
  EXPECT_TRUE(UsedFallback);
}

TEST(Similarity, ValidKindsDoNotReportFallback) {
  for (const SimilarityKind Kind :
       {SimilarityKind::Pearson, SimilarityKind::Cosine,
        SimilarityKind::Overlap}) {
    bool UsedFallback = true;
    ASSERT_NE(makeSimilarity(Kind, &UsedFallback), nullptr);
    EXPECT_FALSE(UsedFallback);
  }
}

TEST(Similarity, HostileKindWithoutOutParamStillConstructs) {
  const std::unique_ptr<SimilarityMetric> Metric =
      makeSimilarity(static_cast<SimilarityKind>(0xEF));
  ASSERT_NE(Metric, nullptr);
  EXPECT_STREQ(Metric->name(), "pearson");
}

//===----------------------------------------------------------------------===//
// Fallback counting through the metrics registry
//===----------------------------------------------------------------------===//

/// One fixed region, so monitors form the same region deterministically.
class OneLoopMap final : public core::CodeMap {
public:
  std::optional<core::CodeRegionInfo> regionFor(Addr Pc) const override {
    if (Pc >= 0x1000 && Pc < 0x1000 + 256 * InstrBytes)
      return core::CodeRegionInfo{0x1000, 0x1000 + 256 * InstrBytes, "loop"};
    return std::nullopt;
  }
};

std::vector<Sample> loopInterval(std::size_t Count) {
  std::vector<Sample> Samples;
  Samples.reserve(Count);
  for (std::size_t I = 0; I < Count; ++I)
    Samples.push_back(Sample{0x1000 + static_cast<Addr>(I % 256) * InstrBytes,
                             static_cast<Cycles>(100 * (I + 1))});
  return Samples;
}

TEST(Similarity, MonitorCountsFallbackOnceInRegistryAndTracesIt) {
  // The monitor-level contract behind makeSimilarity's out-param: an
  // out-of-enum kind must surface as exactly one SimilarityFallbacks
  // count and one trace event per attach, regardless of the configured
  // engine (the fallback metric is Pearson, which supports moments, so
  // both engines remain available).
  OneLoopMap Map;
  for (const SimilarityEngine Engine :
       {SimilarityEngine::Incremental, SimilarityEngine::Naive}) {
    core::RegionMonitorConfig Config;
    Config.Similarity = {static_cast<SimilarityKind>(0xEF), Engine};
    core::RegionMonitor M(Map, Config);
    EXPECT_TRUE(M.similarityFellBack());

    obs::MetricsRegistry Registry;
    obs::EventTracer Tracer;
    const obs::MonitorInstruments Obs =
        obs::makeMonitorInstruments(Registry, &Tracer, 0, "");
    M.attachObservability(&Obs);
    EXPECT_EQ(Obs.SimilarityFallbacks->value(), 1u);
    EXPECT_NE(obs::exportTraceText(Tracer).find("kind=similarity-fallback"),
              std::string::npos);
    // The kernel-selection gauge is published on attach and is a
    // configure-time constant: engine choice must not leak into it.
    EXPECT_EQ(Obs.HotpathKernel->value(), double(hotpathKernelId()));

    // The substituted Pearson metric still detects phases, and the
    // interval-end compares are counted identically for both engines.
    for (int I = 0; I < 8; ++I)
      M.observeInterval(loopInterval(256));
    EXPECT_EQ(M.regions().size(), 1u);
    EXPECT_GT(Obs.SimilarityCompares->value(), 0u);
    EXPECT_EQ(Obs.SimilarityFallbacks->value(), 1u) << "counted once only";
  }
}

TEST(Similarity, HostileEngineValueSelectsNaiveAndStaysIdentical) {
  // An out-of-enum *engine* value (the same version-skew scenario as the
  // kind) must select the naive path -- never an uninitialized fast-path
  // state -- and remain bit-identical to an explicit naive monitor.
  OneLoopMap Map;
  core::RegionMonitorConfig Hostile;
  Hostile.Similarity = {SimilarityKind::Pearson,
                        static_cast<SimilarityEngine>(0x7F)};
  core::RegionMonitorConfig Naive;
  Naive.Similarity = {SimilarityKind::Pearson, SimilarityEngine::Naive};

  core::RegionMonitor A(Map, Hostile);
  core::RegionMonitor B(Map, Naive);
  for (int I = 0; I < 8; ++I) {
    const std::vector<Sample> Interval = loopInterval(200 + I % 3);
    A.observeInterval(Interval);
    B.observeInterval(Interval);
  }
  ASSERT_EQ(A.regions().size(), 1u);
  ASSERT_EQ(B.regions().size(), 1u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(A.detector(0).lastR()),
            std::bit_cast<std::uint64_t>(B.detector(0).lastR()));
  EXPECT_EQ(A.totalPhaseChanges(), B.totalPhaseChanges());
}

} // namespace
