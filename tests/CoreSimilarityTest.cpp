//===- tests/CoreSimilarityTest.cpp - Similarity metrics ------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Similarity.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <vector>

using namespace regmon;
using namespace regmon::core;

namespace {

std::vector<std::uint32_t> randomHist(Rng &Random, std::size_t N) {
  std::vector<std::uint32_t> H(N);
  for (auto &V : H)
    V = static_cast<std::uint32_t>(Random.nextBelow(100));
  return H;
}

/// Contract tests every similarity metric must satisfy.
class SimilarityMetricTest : public ::testing::TestWithParam<SimilarityKind> {
protected:
  std::unique_ptr<SimilarityMetric> Metric = makeSimilarity(GetParam());
};

TEST_P(SimilarityMetricTest, IdenticalHistogramsScoreOne) {
  Rng Random(1);
  const auto H = randomHist(Random, 32);
  EXPECT_NEAR(Metric->compare(H, H), 1.0, 1e-9);
}

TEST_P(SimilarityMetricTest, ScaledHistogramScoresHigh) {
  // The defining requirement (paper section 3.2.1): more samples with the
  // same shape must NOT look like a phase change.
  std::vector<std::uint32_t> H = {4, 8, 120, 6, 40, 5, 9, 7};
  std::vector<std::uint32_t> Scaled(H.size());
  for (std::size_t I = 0; I < H.size(); ++I)
    Scaled[I] = H[I] * 3;
  EXPECT_GT(Metric->compare(H, Scaled), 0.95);
}

TEST_P(SimilarityMetricTest, DisjointHotspotsScoreLow) {
  const std::vector<std::uint32_t> A = {200, 0, 0, 0, 1, 2, 0, 1};
  const std::vector<std::uint32_t> B = {0, 1, 0, 2, 0, 0, 200, 1};
  EXPECT_LT(Metric->compare(A, B), 0.5);
}

TEST_P(SimilarityMetricTest, SymmetricInArguments) {
  Rng Random(2);
  const auto A = randomHist(Random, 24);
  const auto B = randomHist(Random, 24);
  EXPECT_NEAR(Metric->compare(A, B), Metric->compare(B, A), 1e-12);
}

TEST_P(SimilarityMetricTest, BothEmptyScoreOne) {
  const std::vector<std::uint32_t> Zero(16, 0);
  EXPECT_DOUBLE_EQ(Metric->compare(Zero, Zero), 1.0);
}

TEST_P(SimilarityMetricTest, BoundedByOne) {
  Rng Random(3);
  for (int I = 0; I < 50; ++I) {
    const auto A = randomHist(Random, 16);
    const auto B = randomHist(Random, 16);
    const double S = Metric->compare(A, B);
    EXPECT_LE(S, 1.0 + 1e-12);
    EXPECT_GE(S, -1.0 - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SimilarityMetricTest,
    ::testing::Values(SimilarityKind::Pearson, SimilarityKind::Cosine,
                      SimilarityKind::Overlap),
    [](const auto &Info) {
      switch (Info.param) {
      case SimilarityKind::Pearson:
        return "Pearson";
      case SimilarityKind::Cosine:
        return "Cosine";
      case SimilarityKind::Overlap:
        return "Overlap";
      }
      return "?";
    });

TEST(PearsonSimilarity, AntiCorrelationIsNegative) {
  // Only Pearson distinguishes anti-correlation; the paper treats it as a
  // behaviour change too (values near or below zero trigger).
  const std::vector<std::uint32_t> A = {10, 8, 6, 4, 2, 0};
  const std::vector<std::uint32_t> B = {0, 2, 4, 6, 8, 10};
  PearsonSimilarity P;
  EXPECT_NEAR(P.compare(A, B), -1.0, 1e-9);
}

TEST(OverlapSimilarity, IsNormalizedIntersection) {
  const std::vector<std::uint32_t> A = {10, 0};
  const std::vector<std::uint32_t> B = {5, 5};
  OverlapSimilarity O;
  EXPECT_DOUBLE_EQ(O.compare(A, B), 0.5);
}

TEST(OverlapSimilarity, ZeroAgainstNonZeroIsZero) {
  const std::vector<std::uint32_t> Zero(4, 0);
  const std::vector<std::uint32_t> B = {1, 2, 3, 4};
  OverlapSimilarity O;
  EXPECT_DOUBLE_EQ(O.compare(Zero, B), 0.0);
}

TEST(CosineSimilarity, OrthogonalVectorsScoreZero) {
  const std::vector<std::uint32_t> A = {1, 0, 0, 0};
  const std::vector<std::uint32_t> B = {0, 1, 0, 0};
  CosineSimilarity C;
  EXPECT_DOUBLE_EQ(C.compare(A, B), 0.0);
}

TEST(Similarity, FactoryNames) {
  EXPECT_STREQ(makeSimilarity(SimilarityKind::Pearson)->name(), "pearson");
  EXPECT_STREQ(makeSimilarity(SimilarityKind::Cosine)->name(), "cosine");
  EXPECT_STREQ(makeSimilarity(SimilarityKind::Overlap)->name(), "overlap");
}

} // namespace
