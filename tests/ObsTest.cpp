//===- tests/ObsTest.cpp - Observability layer ----------------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The obs layer's contract: exact counters, byte-stable exporters, a
// bounded event ring with honest drop accounting, and instrumentation
// that survives the hostile inputs the release-hardening bugfixes exist
// for -- corrupted PC storms, out-of-enum similarity kinds -- in every
// build mode, NDEBUG included.
//
//===----------------------------------------------------------------------===//

#include "obs/Export.h"
#include "obs/Instruments.h"
#include "obs/Metrics.h"

#include "core/RegionMonitor.h"
#include "faults/FaultPlan.h"
#include "service/MonitorService.h"
#include "support/Histogram.h"
#include "trace/Recorder.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace regmon;
using namespace regmon::obs;

namespace {

//===----------------------------------------------------------------------===//
// Metric primitives and registry
//===----------------------------------------------------------------------===//

TEST(ObsMetrics, CounterAccumulates) {
  Counter C;
  EXPECT_EQ(C.value(), 0u);
  C.add();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
}

TEST(ObsMetrics, GaugeLastStoreWins) {
  Gauge G;
  EXPECT_DOUBLE_EQ(G.value(), 0.0);
  G.set(0.25);
  G.set(-3.5);
  EXPECT_DOUBLE_EQ(G.value(), -3.5);
}

TEST(ObsMetrics, HistogramBucketsByUpperBound) {
  BucketHistogram H({1.0, 10.0});
  H.observe(0.5);  // <= 1
  H.observe(1.0);  // <= 1 (bounds are inclusive)
  H.observe(2.0);  // <= 10
  H.observe(99.0); // +Inf
  EXPECT_EQ(H.count(), 4u);
  const std::vector<std::uint64_t> Counts = H.bucketCounts();
  ASSERT_EQ(Counts.size(), 3u);
  EXPECT_EQ(Counts[0], 2u);
  EXPECT_EQ(Counts[1], 1u);
  EXPECT_EQ(Counts[2], 1u);
}

TEST(ObsMetrics, RegistryIsIdempotentPerNameAndLabel) {
  MetricsRegistry R;
  Counter &A = R.counter("hits_total", "hits");
  Counter &B = R.counter("hits_total");
  EXPECT_EQ(&A, &B) << "same (name, label) must return the same counter";
  Counter &Labelled = R.counter("hits_total", "hits", "stream=\"1\"");
  EXPECT_NE(&A, &Labelled);
  A.add(2);
  Labelled.add(5);
  EXPECT_EQ(R.collect().size(), 2u);
}

TEST(ObsMetrics, CollectOrdersByNameThenLabel) {
  MetricsRegistry R;
  R.counter("zeta_total");
  R.counter("alpha_total", "", "stream=\"1\"");
  R.counter("alpha_total", "", "stream=\"0\"");
  R.gauge("mid");
  const std::vector<MetricValue> Out = R.collect();
  ASSERT_EQ(Out.size(), 4u);
  EXPECT_EQ(Out[0].Name, "alpha_total");
  EXPECT_EQ(Out[0].Label, "stream=\"0\"");
  EXPECT_EQ(Out[1].Label, "stream=\"1\"");
  EXPECT_EQ(Out[2].Name, "mid");
  EXPECT_EQ(Out[3].Name, "zeta_total");
}

//===----------------------------------------------------------------------===//
// Exporters: golden output and byte stability
//===----------------------------------------------------------------------===//

/// The hand-built registry behind the golden-output assertions.
void populate(MetricsRegistry &R, EventTracer &T) {
  R.counter("requests_total", "requests served").add(3);
  R.gauge("temperature", "degrees").set(36.5);
  BucketHistogram &H = R.histogram("latency", {0.5, 1.0}, "seconds");
  H.observe(0.25);
  H.observe(0.75);
  H.observe(5.0);
  R.counter("hits_total", "per-stream hits", "stream=\"1\"").add(2);
  R.counter("hits_total", "per-stream hits", "stream=\"0\"").add(1);
  recordEvent(&T, EventKind::RegionFormed, 0, 2, 7);
  recordEvent(&T, EventKind::PhaseEnteredStable, 0, 2, 9, 0.91);
}

TEST(ObsExport, PrometheusGoldenOutput) {
  MetricsRegistry R;
  EventTracer T;
  populate(R, T);
  EXPECT_EQ(exportPrometheus(R),
            "# HELP regmon_hits_total per-stream hits\n"
            "# TYPE regmon_hits_total counter\n"
            "regmon_hits_total{stream=\"0\"} 1\n"
            "regmon_hits_total{stream=\"1\"} 2\n"
            "# HELP regmon_latency seconds\n"
            "# TYPE regmon_latency histogram\n"
            "regmon_latency_bucket{le=\"0.5\"} 1\n"
            "regmon_latency_bucket{le=\"1\"} 2\n"
            "regmon_latency_bucket{le=\"+Inf\"} 3\n"
            "regmon_latency_count 3\n"
            "# HELP regmon_requests_total requests served\n"
            "# TYPE regmon_requests_total counter\n"
            "regmon_requests_total 3\n"
            "# HELP regmon_temperature degrees\n"
            "# TYPE regmon_temperature gauge\n"
            "regmon_temperature 36.5\n");
}

TEST(ObsExport, JsonGoldenOutput) {
  MetricsRegistry R;
  EventTracer T;
  populate(R, T);
  EXPECT_EQ(
      exportJson(R, &T),
      "{\"metrics\":["
      "{\"name\":\"hits_total\",\"label\":\"stream=\\\"0\\\"\","
      "\"type\":\"counter\",\"value\":1},"
      "{\"name\":\"hits_total\",\"label\":\"stream=\\\"1\\\"\","
      "\"type\":\"counter\",\"value\":2},"
      "{\"name\":\"latency\",\"label\":\"\",\"type\":\"histogram\","
      "\"bounds\":[0.5,1],\"buckets\":[1,1,1],\"count\":3},"
      "{\"name\":\"requests_total\",\"label\":\"\",\"type\":\"counter\","
      "\"value\":3},"
      "{\"name\":\"temperature\",\"label\":\"\",\"type\":\"gauge\","
      "\"value\":36.5}"
      "],\"events\":["
      "{\"kind\":\"region-formed\",\"stream\":0,\"region\":2,"
      "\"interval\":7,\"value\":0},"
      "{\"kind\":\"phase-entered-stable\",\"stream\":0,\"region\":2,"
      "\"interval\":9,\"value\":0.91}"
      "],\"dropped_events\":0}");
}

TEST(ObsExport, TraceTextGoldenOutput) {
  MetricsRegistry R;
  EventTracer T;
  populate(R, T);
  EXPECT_EQ(exportTraceText(T),
            "interval=7 stream=0 region=2 kind=region-formed value=0\n"
            "interval=9 stream=0 region=2 kind=phase-entered-stable "
            "value=0.91\n");
}

TEST(ObsExport, ByteStableAcrossIdenticalRuns) {
  MetricsRegistry R1, R2;
  EventTracer T1, T2;
  populate(R1, T1);
  populate(R2, T2);
  EXPECT_EQ(exportPrometheus(R1), exportPrometheus(R2));
  EXPECT_EQ(exportJson(R1, &T1), exportJson(R2, &T2));
  EXPECT_EQ(exportTraceText(T1), exportTraceText(T2));
}

TEST(ObsExport, SortedOrderErasesArrivalOrder) {
  // The same event set recorded in two different arrival orders must
  // export identically -- this is what makes multi-worker runs
  // byte-stable.
  EventTracer A, B;
  recordEvent(&A, EventKind::RegionFormed, 1, 0, 5);
  recordEvent(&A, EventKind::RegionFormed, 0, 0, 5);
  recordEvent(&A, EventKind::GlobalPhaseChange, 0, 0, 2);
  recordEvent(&B, EventKind::GlobalPhaseChange, 0, 0, 2);
  recordEvent(&B, EventKind::RegionFormed, 0, 0, 5);
  recordEvent(&B, EventKind::RegionFormed, 1, 0, 5);
  EXPECT_EQ(exportTraceText(A), exportTraceText(B));
  const std::vector<TraceEvent> Sorted = A.sortedSnapshot();
  ASSERT_EQ(Sorted.size(), 3u);
  EXPECT_EQ(Sorted[0].Kind, EventKind::GlobalPhaseChange);
  EXPECT_EQ(Sorted[1].Stream, 0u);
  EXPECT_EQ(Sorted[2].Stream, 1u);
}

//===----------------------------------------------------------------------===//
// Event tracer ring
//===----------------------------------------------------------------------===//

TEST(ObsEventTracerRing, WrapDropsOldestAndCountsDrops) {
  EventTracer T(3);
  for (std::uint64_t I = 0; I < 5; ++I)
    recordEvent(&T, EventKind::RegionFormed, 0, I, I);
  EXPECT_EQ(T.capacity(), 3u);
  EXPECT_EQ(T.recorded(), 5u);
  EXPECT_EQ(T.dropped(), 2u);
  const std::vector<TraceEvent> Snap = T.snapshot();
  ASSERT_EQ(Snap.size(), 3u);
  EXPECT_EQ(Snap[0].Interval, 2u) << "oldest retained after two drops";
  EXPECT_EQ(Snap[2].Interval, 4u);
}

TEST(ObsEventTracerRing, DropsAreDisclosedInExports) {
  EventTracer T(2);
  for (std::uint64_t I = 0; I < 3; ++I)
    recordEvent(&T, EventKind::RegionFormed, 0, 0, I);
  const std::string Text = exportTraceText(T);
  EXPECT_NE(Text.find("# dropped=1\n"), std::string::npos);
  MetricsRegistry R;
  const std::string Json = exportJson(R, &T);
  EXPECT_NE(Json.find("\"dropped_events\":1"), std::string::npos);
}

TEST(ObsEventTracerRing, ClearResetsRetentionAndAccounting) {
  EventTracer T(2);
  for (std::uint64_t I = 0; I < 3; ++I)
    recordEvent(&T, EventKind::RegionFormed, 0, 0, I);
  T.clear();
  EXPECT_EQ(T.recorded(), 0u);
  EXPECT_EQ(T.dropped(), 0u);
  EXPECT_TRUE(T.snapshot().empty());
}

TEST(ObsEventTracerRing, CapacityFloorIsOne) {
  EventTracer T(0);
  recordEvent(&T, EventKind::RegionFormed, 0, 0, 1);
  recordEvent(&T, EventKind::RegionFormed, 0, 0, 2);
  ASSERT_EQ(T.snapshot().size(), 1u);
  EXPECT_EQ(T.snapshot()[0].Interval, 2u);
}

//===----------------------------------------------------------------------===//
// Concurrency: exact totals under contention (TSan-clean by construction)
//===----------------------------------------------------------------------===//

TEST(ObsConcurrency, CountersHistogramsAndTracerAreExactUnderContention) {
  constexpr std::size_t Threads = 8;
  constexpr std::uint64_t PerThread = 20'000;
  MetricsRegistry R;
  Counter &C = R.counter("ops_total");
  Gauge &G = R.gauge("level");
  BucketHistogram &H = R.histogram("sizes", {10.0, 100.0});
  EventTracer T(Threads * 4);

  std::vector<std::thread> Workers;
  Workers.reserve(Threads);
  for (std::size_t W = 0; W < Threads; ++W)
    Workers.emplace_back([&, W] {
      for (std::uint64_t I = 0; I < PerThread; ++I) {
        C.add();
        G.set(static_cast<double>(W));
        H.observe(static_cast<double>(I % 150));
      }
      recordEvent(&T, EventKind::RegionFormed,
                  static_cast<std::uint32_t>(W), 0, W);
    });
  for (std::thread &Th : Workers)
    Th.join();

  EXPECT_EQ(C.value(), Threads * PerThread);
  EXPECT_EQ(H.count(), Threads * PerThread);
  std::uint64_t BucketSum = 0;
  for (std::uint64_t B : H.bucketCounts())
    BucketSum += B;
  EXPECT_EQ(BucketSum, H.count()) << "no observation lost between buckets";
  const double Level = G.value();
  EXPECT_GE(Level, 0.0);
  EXPECT_LT(Level, static_cast<double>(Threads));
  EXPECT_EQ(T.recorded(), Threads);
  EXPECT_EQ(T.dropped(), 0u);
  EXPECT_EQ(T.sortedSnapshot().size(), Threads);
}

//===----------------------------------------------------------------------===//
// Hostile inputs: the release-hardening regressions, observed
//===----------------------------------------------------------------------===//

/// Same three-loop oracle the core monitor tests use.
class TestCodeMap final : public core::CodeMap {
public:
  std::optional<core::CodeRegionInfo> regionFor(Addr Pc) const override {
    if (Pc >= 0x1000 && Pc < 0x1100)
      return core::CodeRegionInfo{0x1000, 0x1100, "loopA"};
    if (Pc >= 0x2000 && Pc < 0x2080)
      return core::CodeRegionInfo{0x2000, 0x2080, "loopB"};
    return std::nullopt;
  }
};

/// One interval's clean buffer: alternating PCs across loopA with
/// monotonic timestamps, the shape the fault injector expects.
std::vector<Sample> cleanInterval(std::size_t Count) {
  std::vector<Sample> Out;
  Out.reserve(Count);
  for (std::size_t I = 0; I < Count; ++I)
    Out.push_back(Sample{0x1000 + 4 * (I % 0x40),
                         static_cast<Cycles>(100 * (I + 1))});
  return Out;
}

TEST(ObsHostileInputs, HistogramSurvivesCorruptedPcStorm) {
  // Fault-plan PC corruption throws instruction-aligned wild PCs into the
  // 0x6000'0000 window. Feeding the faulted stream straight into a region
  // histogram must reject every out-of-region PC -- in NDEBUG too, where
  // the old assert-only guard vanished and the unsigned bin arithmetic
  // wrote out of bounds (ASan is the witness).
  faults::FaultConfig Cfg;
  Cfg.CorruptRate = 0.5;
  const faults::FaultPlan Plan(/*PlanSeed=*/99, Cfg);
  faults::StreamFaultInjector Inj = Plan.forStream(0);

  InstrHistogram H(0x1000, 0x1100);
  std::uint64_t Accepted = 0, Rejected = 0;
  for (int Interval = 0; Interval < 20; ++Interval)
    for (const Sample &S : Inj.apply(cleanInterval(512))) {
      if (H.tryAddSample(S.Pc))
        ++Accepted;
      else
        ++Rejected;
    }
  EXPECT_EQ(H.total(), Accepted);
  EXPECT_GT(Rejected, 0u) << "the storm must actually corrupt something";
  EXPECT_EQ(Rejected, Inj.stats().SamplesCorrupted)
      << "every corrupted PC lands outside the region, nothing else does";
}

TEST(ObsHostileInputs, MonitorAbsorbsCorruptedPcStormAsUcr) {
  faults::FaultConfig Cfg;
  Cfg.CorruptRate = 0.3;
  const faults::FaultPlan Plan(/*PlanSeed=*/7, Cfg);
  faults::StreamFaultInjector Inj = Plan.forStream(0);

  TestCodeMap Map;
  core::RegionMonitor M(Map);
  MetricsRegistry R;
  EventTracer T;
  const MonitorInstruments Obs = makeMonitorInstruments(R, &T, 0, "");
  M.attachObservability(&Obs);

  std::uint64_t Fed = 0;
  for (int Interval = 0; Interval < 30; ++Interval) {
    const std::vector<Sample> Faulted = Inj.apply(cleanInterval(512));
    Fed += Faulted.size();
    M.observeInterval(Faulted);
  }
  EXPECT_EQ(M.intervals(), 30u);
  EXPECT_EQ(Obs.SamplesTotal->value(), Fed);
  // Corrupted PCs are non-regionable: they surface as UCR pressure, not
  // as out-of-region histogram rejections (attribution never maps them).
  // UCR also holds the first interval's clean samples, observed before
  // the formation trigger built loopA, hence >= rather than ==.
  EXPECT_GE(Obs.SamplesUcr->value(), Inj.stats().SamplesCorrupted)
      << "every wild PC counted as UCR";
  EXPECT_GT(Inj.stats().SamplesCorrupted, 0u);
  EXPECT_EQ(M.outOfRegionSamples(), Obs.SamplesOutOfRegion->value());
  EXPECT_GE(M.lastUcrFraction(), 0.0);
  EXPECT_LE(M.lastUcrFraction(), 1.0);
}

TEST(ObsHostileInputs, HostileSimilarityKindFallsBackAndIsCounted) {
  // An out-of-enum similarity kind -- version skew, a fuzzed config --
  // used to make makeSimilarity return nullptr and the monitor
  // dereference it. The monitor must construct with the Pearson fallback
  // and disclose the substitution as a metric and an event.
  TestCodeMap Map;
  core::RegionMonitorConfig Config;
  Config.Similarity = static_cast<core::SimilarityKind>(0xEF);
  core::RegionMonitor M(Map, Config);
  EXPECT_TRUE(M.similarityFellBack());

  MetricsRegistry R;
  EventTracer T;
  const MonitorInstruments Obs = makeMonitorInstruments(R, &T, 0, "");
  M.attachObservability(&Obs);
  EXPECT_EQ(Obs.SimilarityFallbacks->value(), 1u);
  EXPECT_NE(exportTraceText(T).find("kind=similarity-fallback"),
            std::string::npos);

  // And the fallback metric actually detects phases.
  for (int I = 0; I < 8; ++I)
    M.observeInterval(cleanInterval(256));
  EXPECT_EQ(M.regions().size(), 1u);
}

TEST(ObsHostileInputs, HealthySimilarityKindIsNotCounted) {
  TestCodeMap Map;
  core::RegionMonitor M(Map);
  EXPECT_FALSE(M.similarityFellBack());
  MetricsRegistry R;
  const MonitorInstruments Obs = makeMonitorInstruments(R, nullptr, 0, "");
  M.attachObservability(&Obs);
  EXPECT_EQ(Obs.SimilarityFallbacks->value(), 0u);
}

//===----------------------------------------------------------------------===//
// Service integration: per-stream labels and aggregate counters
//===----------------------------------------------------------------------===//

TEST(ObsService, PerStreamSeriesAndAggregatesMatchSnapshot) {
  TestCodeMap Map;
  service::MonitorService Service(
      {/*Workers=*/2, /*QueueCapacity=*/16, service::OverflowPolicy::Block,
       /*ValidateBatches=*/true, {}});
  Service.addStream(Map);
  Service.addStream(Map);
  MetricsRegistry R;
  EventTracer T(1 << 12);
  Service.attachObservability(R, &T);
  Service.start();
  for (int I = 0; I < 10; ++I) {
    ASSERT_TRUE(Service.submit({0, cleanInterval(256)}));
    ASSERT_TRUE(Service.submit({1, cleanInterval(256)}));
  }
  Service.stop();
  const service::ServiceSnapshot Snap = Service.snapshot();

  EXPECT_EQ(R.counter("service_batches_submitted_total").value(),
            Snap.BatchesSubmitted);
  EXPECT_EQ(R.counter("service_batches_rejected_total").value(),
            Snap.BatchesRejected);
  const std::uint64_t Stream0 =
      R.counter("monitor_intervals_total", "", streamLabel(0)).value();
  const std::uint64_t Stream1 =
      R.counter("monitor_intervals_total", "", streamLabel(1)).value();
  EXPECT_EQ(Stream0, 10u);
  EXPECT_EQ(Stream1, 10u);
  const std::string Prom = exportPrometheus(R);
  EXPECT_NE(Prom.find("regmon_monitor_intervals_total{stream=\"0\"} 10"),
            std::string::npos);
  EXPECT_NE(Prom.find("regmon_monitor_intervals_total{stream=\"1\"} 10"),
            std::string::npos);
}

TEST(ObsService, QuarantineAndRecoveryAreTraced) {
  TestCodeMap Map;
  service::ServiceConfig Cfg{/*Workers=*/1, /*QueueCapacity=*/16,
                             service::OverflowPolicy::Block,
                             /*ValidateBatches=*/true, {}};
  Cfg.Health.PoisonQuarantineThreshold = 1; // quarantine on first poison
  Cfg.Health.QuarantineBaseBatches = 2;
  Cfg.Health.RecoveryCleanBatches = 2;
  service::MonitorService Service(Cfg);
  Service.addStream(Map);
  MetricsRegistry R;
  EventTracer T;
  Service.attachObservability(R, &T);
  Service.start();

  std::vector<Sample> Poisoned = cleanInterval(8);
  faults::poisonBatch(Poisoned);
  EXPECT_FALSE(Service.submit({0, Poisoned})); // -> quarantined
  for (int I = 0; I < 2; ++I)
    EXPECT_FALSE(Service.submit({0, cleanInterval(8)})); // backoff served
  // Probe + clean streak -> recovery.
  for (int I = 0; I < 3; ++I)
    EXPECT_TRUE(Service.submit({0, cleanInterval(8)}));
  Service.stop();

  EXPECT_EQ(R.counter("service_stream_quarantines_total").value(), 1u);
  EXPECT_EQ(R.counter("service_stream_recoveries_total").value(), 1u);
  EXPECT_EQ(R.counter("service_batches_poisoned_total").value(), 1u);
  const std::string Trace = exportTraceText(T);
  EXPECT_NE(Trace.find("kind=stream-quarantined"), std::string::npos);
  EXPECT_NE(Trace.find("kind=stream-recovered"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Flight-recorder instruments
//===----------------------------------------------------------------------===//

/// The trace counter catalogue mirrors the recorder's own accounting and
/// exports byte-for-byte: an operator alarming on
/// trace_records_dropped_total or trace_append_failures_total sees the
/// same numbers recordsWritten()/appendFailures() report in-process.
TEST(ObsService, TraceInstrumentsMirrorRecorderAccounting) {
  MetricsRegistry R;
  const TraceInstruments I = makeTraceInstruments(R, "");
  const std::string Path = ::testing::TempDir() + "regmon_obs_trace_" +
                           std::to_string(::getpid()) + ".bin";
  std::remove(Path.c_str());
  trace::TraceRecorder Rec;
  ASSERT_TRUE(Rec.open(Path).Ok);
  Rec.attachObservability(&I);

  const service::SampleBatch Batch{0, {{0x400010, 100, false}}};
  EXPECT_EQ(Rec.recordBatch(Batch, service::RecordedFate::Admitted), 1u);
  EXPECT_EQ(Rec.recordBatch(Batch, service::RecordedFate::Admitted), 2u);
  Rec.recordDrop(/*EvictedSeq=*/1, /*Shard=*/0);
  Rec.recordPushReject(/*Seq=*/2);
  Rec.recordCheckpoint(/*JournalSeq=*/7, /*Committed=*/true);

  EXPECT_EQ(I.RecordsTotal->value(), Rec.recordsWritten());
  EXPECT_EQ(I.RecordsDropped->value(), 1u)
      << "only the Drop record feeds the dropped counter";
  // The 8-byte file header predates attach (open() writes it before any
  // instruments exist), so the byte counter covers records only.
  EXPECT_EQ(I.BytesTotal->value(),
            Rec.bytesWritten() - trace::TraceHeaderBytes);
  EXPECT_EQ(I.AppendFailures->value(), 0u);

  const std::uint64_t RecordBytes = I.BytesTotal->value();
  EXPECT_TRUE(Rec.close());
  // A dead recorder turns every tap call into an append failure -- and
  // never into a phantom drop.
  Rec.recordDrop(/*EvictedSeq=*/2, /*Shard=*/0);
  EXPECT_EQ(I.AppendFailures->value(), 1u);
  EXPECT_EQ(I.RecordsDropped->value(), 1u);

  EXPECT_EQ(exportPrometheus(R),
            "# HELP regmon_trace_append_failures_total flight-recorder "
            "appends that failed\n"
            "# TYPE regmon_trace_append_failures_total counter\n"
            "regmon_trace_append_failures_total 1\n"
            "# HELP regmon_trace_bytes_total flight-recorder bytes "
            "appended\n"
            "# TYPE regmon_trace_bytes_total counter\n"
            "regmon_trace_bytes_total " +
                std::to_string(RecordBytes) +
                "\n"
                "# HELP regmon_trace_records_dropped_total drop records "
                "appended (batches evicted by the DropOldest policy while "
                "recording)\n"
                "# TYPE regmon_trace_records_dropped_total counter\n"
                "regmon_trace_records_dropped_total 1\n"
                "# HELP regmon_trace_records_total flight-recorder records "
                "appended\n"
                "# TYPE regmon_trace_records_total counter\n"
                "regmon_trace_records_total 5\n");
  std::remove(Path.c_str());
}

} // namespace
