//===- tests/TraceScenarios.h - Flight-recorder scenario corpus -*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The shared incident-scenario harness behind the flight-recorder tests
// and the committed trace corpus (tests/trace_corpus/). Each scenario is
// a fully deterministic recorded run -- all submissions happen on one
// thread, so the trace's global record order (and therefore its bytes)
// is reproducible run to run even when the recorded service is threaded
// -- chosen to exercise one distinct decision path:
//
//   fault-storm                 seeded sample/batch faults across three
//                               streams: poison refusals, corrupt and
//                               truncated batches, health churn
//   quarantine-recovery         a scripted poison burst drives stream 0
//                               through quarantine -> backoff -> probe ->
//                               full recovery while stream 1 stays clean
//   drop-oldest-overload        a stalled worker + DropOldest queue turns
//                               a burst into deterministic evictions, all
//                               captured as drop records
//   checkpoint-restore-mid-trace an Inline persisted run committing a
//                               snapshot mid-trace, so replay can re-apply
//                               the checkpoint and a later restore proves
//                               the continuation
//
// recordScenario() and replayScenario() produce the same export bundle,
// so tests assert byte-identity between the recorded incident and its
// replay directly.
//
//===----------------------------------------------------------------------===//

#ifndef REGMON_TESTS_TRACESCENARIOS_H
#define REGMON_TESTS_TRACESCENARIOS_H

#include "faults/FaultPlan.h"
#include "obs/Export.h"
#include "persist/Checkpoint.h"
#include "sampling/Sampler.h"
#include "service/MonitorService.h"
#include "sim/Engine.h"
#include "sim/ProgramCodeMap.h"
#include "trace/Recorder.h"
#include "trace/Replay.h"
#include "workloads/Workloads.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace regmon::tracetest {

/// One scenario's full shape: topology, faults, and which of the three
/// special submission choreographies (if any) it uses.
struct ScenarioSpec {
  struct StreamDef {
    std::string Workload;
    std::uint64_t Seed = 0;
  };
  std::vector<StreamDef> Streams;
  service::ServiceConfig Cfg;
  faults::FaultConfig Faults;
  std::uint64_t FaultSeed = 0;
  /// Per-stream interval cap (the submission round count).
  std::size_t Intervals = 0;
  /// Stream 0's first three batches are poisoned by script (not by a
  /// seeded plan), walking the health machine through one full
  /// quarantine -> recovery cycle at the default tuning.
  bool ScriptedQuarantine = false;
  /// The single worker stalls on its first batch until stop, so every
  /// later submission lands in a full DropOldest queue and the eviction
  /// sequence is a pure function of the (single-threaded) submit order.
  bool DropChoreography = false;
  /// Commit a snapshot halfway through the run (requires an Inline
  /// config and attached persistence) so the trace carries a mid-run
  /// checkpoint marker.
  bool MidRunCheckpoint = false;
};

inline std::vector<std::string> scenarioNames() {
  return {"fault-storm", "quarantine-recovery", "drop-oldest-overload",
          "checkpoint-restore-mid-trace"};
}

inline ScenarioSpec specFor(const std::string &Name) {
  ScenarioSpec Spec;
  if (Name == "fault-storm") {
    Spec.Streams = {{"synthetic.periodic", 11},
                    {"synthetic.periodic", 12},
                    {"synthetic.steady", 13}};
    Spec.Cfg.Workers = 2;
    Spec.Cfg.QueueCapacity = 8;
    Spec.Faults.DropRate = 0.05;
    Spec.Faults.CorruptRate = 0.10;
    Spec.Faults.TruncateRate = 0.15;
    Spec.Faults.PoisonRate = 0.12;
    Spec.FaultSeed = 77;
    Spec.Intervals = 20;
  } else if (Name == "quarantine-recovery") {
    Spec.Streams = {{"synthetic.steady", 21}, {"synthetic.steady", 22}};
    Spec.Cfg.Workers = 1;
    Spec.Cfg.QueueCapacity = 8;
    Spec.Intervals = 20; // 3 poisoned + 8 backoff + probe + 4 clean fit
    Spec.ScriptedQuarantine = true;
  } else if (Name == "drop-oldest-overload") {
    Spec.Streams = {{"synthetic.steady", 31},
                    {"synthetic.steady", 32},
                    {"synthetic.steady", 33},
                    {"synthetic.steady", 34}};
    Spec.Cfg.Workers = 1;
    Spec.Cfg.QueueCapacity = 4;
    Spec.Cfg.Policy = service::OverflowPolicy::DropOldest;
    Spec.Intervals = 7;
    Spec.DropChoreography = true;
  } else if (Name == "checkpoint-restore-mid-trace") {
    Spec.Streams = {{"synthetic.periodic", 41}, {"synthetic.steady", 42}};
    Spec.Cfg.Workers = 2;
    Spec.Cfg.QueueCapacity = 8;
    Spec.Cfg.Inline = true;
    Spec.Faults.PoisonRate = 0.20;
    Spec.FaultSeed = 99;
    Spec.Intervals = 12;
    Spec.MidRunCheckpoint = true;
  }
  return Spec;
}

/// One pre-sampled stream (the service tests' pattern): the workload owns
/// the program, the map resolves its PCs, the intervals are the batches.
struct PreparedStream {
  std::unique_ptr<workloads::Workload> W;
  std::unique_ptr<sim::ProgramCodeMap> Map;
  std::vector<std::vector<Sample>> Intervals;
};

inline std::vector<PreparedStream> prepare(const ScenarioSpec &Spec) {
  std::vector<PreparedStream> Streams;
  for (const ScenarioSpec::StreamDef &D : Spec.Streams) {
    PreparedStream S;
    S.W = std::make_unique<workloads::Workload>(workloads::make(D.Workload));
    S.Map = std::make_unique<sim::ProgramCodeMap>(S.W->Prog);
    sim::Engine Engine(S.W->Prog, S.W->Script, D.Seed);
    // 256-sample intervals (not the paper's 2032): the corpus commits
    // these traces, and the decision paths exercised do not depend on
    // interval density.
    sampling::Sampler Sampler(Engine, {45'000, 256});
    S.Intervals = Sampler.collectIntervals(Spec.Intervals);
    Streams.push_back(std::move(S));
  }
  return Streams;
}

/// Drives every submission for \p Spec from the calling thread, in the
/// global round-robin order the corpus pins. Health refusals and queue
/// evictions are the scenario's point, so submit results are ignored.
inline void submitAll(const ScenarioSpec &Spec,
                      const std::vector<PreparedStream> &Streams,
                      service::MonitorService &Service) {
  const auto batchAt = [&](service::StreamId Id, std::size_t I) {
    return service::SampleBatch{Id, Streams[Id].Intervals[I]};
  };
  if (Spec.DropChoreography) {
    // Feed the stalling worker its one batch, wait until it has left the
    // queue (the hook now holds it until stop), then burst the rest into
    // the full queue single-threaded: each push past capacity evicts the
    // oldest queued batch deterministically.
    (void)Service.submit(batchAt(0, 0));
    while (Service.snapshot().QueueDepth != 0)
      std::this_thread::yield();
    for (std::size_t I = 0; I < Spec.Intervals; ++I)
      for (service::StreamId Id = 0; Id < Streams.size(); ++Id)
        if (!(I == 0 && Id == 0) && I < Streams[Id].Intervals.size())
          (void)Service.submit(batchAt(Id, I));
    return;
  }
  const faults::FaultPlan Plan(Spec.FaultSeed, Spec.Faults);
  std::vector<faults::StreamFaultInjector> Injectors;
  for (service::StreamId Id = 0; Id < Streams.size(); ++Id)
    Injectors.push_back(Plan.forStream(Id));
  for (std::size_t I = 0; I < Spec.Intervals; ++I) {
    if (Spec.MidRunCheckpoint && I == Spec.Intervals / 2)
      (void)Service.checkpoint(); // legal mid-run: the config is Inline
    for (service::StreamId Id = 0; Id < Streams.size(); ++Id) {
      if (I >= Streams[Id].Intervals.size())
        continue;
      service::SampleBatch B = batchAt(Id, I);
      if (Spec.ScriptedQuarantine) {
        if (Id == 0 && I < 3)
          faults::poisonBatch(B.Samples);
      } else {
        B.Samples = Injectors[Id].apply(B.Samples);
        if (Injectors[Id].nextBatchFault() == faults::BatchFault::Poison)
          faults::poisonBatch(B.Samples);
      }
      (void)Service.submit(std::move(B));
    }
  }
}

/// Everything a test compares between a recording and its replay. Snap is
/// taken before the exports so the point-in-time gauges are refreshed.
struct RecordOutcome {
  trace::TraceRecorder::OpenResult Open;
  service::ServiceSnapshot Snap;
  std::string Prom;
  std::string Json;
  /// encodeState() bytes, captured for MidRunCheckpoint scenarios (the
  /// restore-continuation reference).
  std::vector<std::uint8_t> FinalState;
};

/// Records \p Name into \p TracePath. \p PersistDir (optional) attaches
/// durability; \p Crash (optional) gates the *recorder's* I/O so tests
/// can kill it mid-write while the service finishes the run.
inline RecordOutcome recordScenario(const std::string &Name,
                                    const std::string &TracePath,
                                    const std::string &PersistDir = {},
                                    persist::CrashPoint *Crash = nullptr) {
  const ScenarioSpec Spec = specFor(Name);
  const std::vector<PreparedStream> Streams = prepare(Spec);
  service::MonitorService Service(Spec.Cfg);
  for (const PreparedStream &S : Streams)
    Service.addStream(*S.Map);
  obs::MetricsRegistry Registry;
  obs::EventTracer Tracer;
  Service.attachObservability(Registry, &Tracer);
  std::unique_ptr<persist::CheckpointManager> Store;
  if (!PersistDir.empty()) {
    Store = std::make_unique<persist::CheckpointManager>(PersistDir);
    Service.attachPersistence(*Store);
    (void)Service.restore();
  }
  trace::TraceRecorder Recorder;
  RecordOutcome Out;
  Out.Open = Recorder.open(TracePath, Crash);
  if (!Out.Open.Ok)
    return Out; // crash budget died inside the header; caller asserts
  Service.attachRecorder(Recorder);
  std::atomic<bool> StalledOnce{false};
  if (Spec.DropChoreography)
    Service.setWorkerHook(
        [&Service, &StalledOnce](std::size_t, const service::SampleBatch &) {
          if (StalledOnce.exchange(true))
            return;
          while (!Service.stopRequested())
            std::this_thread::yield();
        });
  Service.start();
  submitAll(Spec, Streams, Service);
  Service.stop();
  Out.Snap = Service.snapshot();
  Out.Prom = obs::exportPrometheus(Registry);
  Out.Json = obs::exportJson(Registry, &Tracer);
  if (Spec.MidRunCheckpoint)
    Out.FinalState = Service.encodeState();
  Recorder.close();
  return Out;
}

struct ReplayOutcome {
  trace::FileReplay File;
  service::ServiceSnapshot Snap;
  std::string Prom;
  std::string Json;
  std::vector<std::uint8_t> FinalState;
};

/// Replays \p TracePath through a fresh worker-less service with \p
/// Name's topology. A non-empty \p PersistDir attaches persistence and
/// re-applies recorded checkpoints into it, so a later service can
/// restore the incident's durable state from that directory.
inline ReplayOutcome replayScenario(const std::string &Name,
                                    const std::string &TracePath,
                                    const std::string &PersistDir = {}) {
  ScenarioSpec Spec = specFor(Name);
  Spec.Cfg.Inline = true; // replay is always worker-less
  const std::vector<PreparedStream> Streams = prepare(Spec);
  service::MonitorService Service(Spec.Cfg);
  for (const PreparedStream &S : Streams)
    Service.addStream(*S.Map);
  obs::MetricsRegistry Registry;
  obs::EventTracer Tracer;
  Service.attachObservability(Registry, &Tracer);
  std::unique_ptr<persist::CheckpointManager> Store;
  trace::ReplayConfig RC;
  if (!PersistDir.empty()) {
    Store = std::make_unique<persist::CheckpointManager>(PersistDir);
    Service.attachPersistence(*Store);
    (void)Service.restore();
    RC.ApplyCheckpoints = true;
  }
  ReplayOutcome Out;
  Out.File = trace::replayTraceFile(TracePath, Service, RC);
  Out.Snap = Service.snapshot();
  Out.Prom = obs::exportPrometheus(Registry);
  Out.Json = obs::exportJson(Registry, &Tracer);
  if (Spec.MidRunCheckpoint)
    Out.FinalState = Service.encodeState();
  return Out;
}

} // namespace regmon::tracetest

#endif // REGMON_TESTS_TRACESCENARIOS_H
