//===- tests/PersistFormatTest.cpp - Durability format tests --------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Format-level tests of the persist layer: the byte codec's trust boundary,
// the CRC implementation, the snapshot container (including an exhaustive
// truncation + bit-flip fuzz over every byte of a real snapshot), the
// migration chain, the write-ahead journal's torn-tail handling, the
// checkpoint manager's commit protocol under a swept crash budget, and the
// StateCodec bit-identity contract for every serialized class.
//
//===----------------------------------------------------------------------===//

#include "persist/Bytes.h"
#include "persist/Checkpoint.h"
#include "persist/Crc32.h"
#include "persist/Io.h"
#include "persist/Journal.h"
#include "persist/Snapshot.h"
#include "persist/StateCodec.h"

#include "core/RegionMonitor.h"
#include "gpd/CentroidPhaseDetector.h"
#include "rto/OptimizationModel.h"
#include "rto/TraceDeployments.h"
#include "sampling/AdaptiveController.h"
#include "sampling/Sampler.h"
#include "sim/Engine.h"
#include "sim/ProgramCodeMap.h"
#include "support/Histogram.h"
#include "support/Statistics.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

using namespace regmon;
using namespace regmon::persist;

namespace {

/// A fresh scratch directory under the gtest temp root, unique per call.
/// Wiped first: temp directories survive across test-binary runs, and an
/// append-mode journal must not inherit a previous run's records.
std::string scratchDir(const std::string &Tag) {
  static int Counter = 0;
  // The PID keeps concurrent test processes (e.g. parallel sanitizer
  // sweeps of the same binary) from wiping each other's scratch trees.
  const std::string Dir =
      ::testing::TempDir() + "regmon_persist_" + std::to_string(::getpid()) +
      "_" + Tag + "_" + std::to_string(Counter++);
  std::filesystem::remove_all(Dir);
  EXPECT_TRUE(ensureDir(Dir));
  return Dir;
}

/// Overwrites \p Path with \p Data (no crash injection).
void writeBytes(const std::string &Path, std::span<const std::uint8_t> Data) {
  FileSink Sink(Path, /*Append=*/false, nullptr);
  ASSERT_TRUE(Sink.write(Data));
  ASSERT_TRUE(Sink.close());
}

std::vector<std::uint8_t> mustRead(const std::string &Path) {
  const auto Data = readFileBytes(Path);
  EXPECT_TRUE(Data.has_value()) << Path;
  return Data.value_or(std::vector<std::uint8_t>{});
}

//===----------------------------------------------------------------------===//
// CRC-32
//===----------------------------------------------------------------------===//

std::vector<std::uint8_t> asBytes(std::string_view S) {
  return {S.begin(), S.end()};
}

TEST(PersistCrc32, KnownCheckValue) {
  // The standard CRC-32/IEEE check value: crc("123456789") == 0xCBF43926.
  EXPECT_EQ(crc32(asBytes("123456789")), 0xCBF43926U);
}

TEST(PersistCrc32, EmptyInputIsZero) {
  EXPECT_EQ(crc32(std::span<const std::uint8_t>{}), 0U);
}

TEST(PersistCrc32, ChainingMatchesConcatenation) {
  const std::vector<std::uint8_t> A = asBytes("regmon snapshot ");
  const std::vector<std::uint8_t> B = asBytes("journal payload");
  std::vector<std::uint8_t> AB = A;
  AB.insert(AB.end(), B.begin(), B.end());
  EXPECT_EQ(crc32(B, crc32(A)), crc32(AB));
  EXPECT_NE(crc32(A), crc32(B));
}

//===----------------------------------------------------------------------===//
// ByteWriter / ByteReader
//===----------------------------------------------------------------------===//

TEST(PersistBytes, RoundTripAllFieldTypes) {
  ByteWriter W;
  W.u8(0xAB);
  W.u32(0xDEADBEEFU);
  W.u64(0x0123456789ABCDEFULL);
  W.f64(-0.1);
  W.boolean(true);
  W.boolean(false);
  W.str(std::string_view("hello\0world", 11)); // embedded NUL must survive
  const std::vector<std::uint32_t> V32 = {1, 0, 0xFFFFFFFFU};
  const std::vector<std::uint64_t> V64 = {42};
  const std::vector<double> VF = {std::sqrt(2.0), -0.0, 1e308};
  W.vecU32(V32);
  W.vecU64(V64);
  W.vecF64(VF);

  ByteReader R(W.data());
  EXPECT_EQ(R.u8(), 0xAB);
  EXPECT_EQ(R.u32(), 0xDEADBEEFU);
  EXPECT_EQ(R.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(R.f64()),
            std::bit_cast<std::uint64_t>(-0.1));
  EXPECT_TRUE(R.boolean());
  EXPECT_FALSE(R.boolean());
  std::string S;
  ASSERT_TRUE(R.str(S));
  EXPECT_EQ(S, std::string_view("hello\0world", 11));
  std::vector<std::uint32_t> O32;
  std::vector<std::uint64_t> O64;
  std::vector<double> OF;
  ASSERT_TRUE(R.vecU32(O32));
  ASSERT_TRUE(R.vecU64(O64));
  ASSERT_TRUE(R.vecF64(OF));
  EXPECT_EQ(O32, V32);
  EXPECT_EQ(O64, V64);
  ASSERT_EQ(OF.size(), VF.size());
  for (std::size_t I = 0; I < VF.size(); ++I)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(OF[I]),
              std::bit_cast<std::uint64_t>(VF[I]));
  EXPECT_TRUE(R.atEnd());
}

TEST(PersistBytes, ReaderFailsOnTruncationAndStaysFailed) {
  ByteWriter W;
  W.u32(7);
  ByteReader R(W.data());
  EXPECT_EQ(R.u64(), 0U); // only 4 bytes present
  EXPECT_FALSE(R.ok());
  // Sticky: even a 1-byte read now fails and yields zero.
  EXPECT_EQ(R.u8(), 0U);
  EXPECT_FALSE(R.atEnd());
}

TEST(PersistBytes, BooleanRejectsOutOfRangeEncoding) {
  const std::vector<std::uint8_t> Bad = {2};
  ByteReader R(Bad);
  (void)R.boolean();
  EXPECT_FALSE(R.ok());
}

TEST(PersistBytes, LengthPrefixesValidatedBeforeAllocation) {
  // A hostile length prefix (claiming ~2^61 elements against a 4-byte
  // buffer) must be rejected up front, not allocated.
  ByteWriter W;
  W.u64(0x2000000000000000ULL);
  W.u32(0);
  for (int Kind = 0; Kind < 4; ++Kind) {
    ByteReader R(W.data());
    bool Ok = true;
    switch (Kind) {
    case 0: {
      std::vector<std::uint32_t> Out;
      Ok = R.vecU32(Out);
      break;
    }
    case 1: {
      std::vector<std::uint64_t> Out;
      Ok = R.vecU64(Out);
      break;
    }
    case 2: {
      std::vector<double> Out;
      Ok = R.vecF64(Out);
      break;
    }
    case 3: {
      std::string Out;
      Ok = R.str(Out);
      break;
    }
    }
    EXPECT_FALSE(Ok) << "kind " << Kind;
  }
}

TEST(PersistBytes, AtEndRejectsTrailingBytes) {
  ByteWriter W;
  W.u32(1);
  W.u8(9);
  ByteReader R(W.data());
  (void)R.u32();
  EXPECT_FALSE(R.atEnd()); // one byte left over
  (void)R.u8();
  EXPECT_TRUE(R.atEnd());
}

//===----------------------------------------------------------------------===//
// Snapshot container
//===----------------------------------------------------------------------===//

std::vector<SnapshotSection> sampleSections() {
  std::vector<SnapshotSection> Sections(3);
  Sections[0].Id = 1;
  Sections[0].Payload = asBytes("meta");
  Sections[1].Id = 2;
  Sections[1].Payload = {}; // empty payloads are legal
  Sections[2].Id = 0xFFFFFFFFU;
  Sections[2].Payload = asBytes("stream state bytes");
  return Sections;
}

TEST(PersistSnapshot, RoundTripPreservesSections) {
  const std::vector<SnapshotSection> In = sampleSections();
  const std::vector<std::uint8_t> Encoded = encodeSnapshot(In);
  std::vector<SnapshotSection> Out;
  ASSERT_EQ(decodeSnapshot(Encoded, Out), SnapshotError::None);
  ASSERT_EQ(Out.size(), In.size());
  for (std::size_t I = 0; I < In.size(); ++I) {
    EXPECT_EQ(Out[I].Id, In[I].Id);
    EXPECT_EQ(Out[I].Payload, In[I].Payload);
  }
}

TEST(PersistSnapshot, EmptySectionListRoundTrips) {
  const std::vector<std::uint8_t> Encoded = encodeSnapshot({});
  std::vector<SnapshotSection> Out;
  EXPECT_EQ(decodeSnapshot(Encoded, Out), SnapshotError::None);
  EXPECT_TRUE(Out.empty());
}

TEST(PersistSnapshot, ErrorTaxonomy) {
  std::vector<SnapshotSection> Out;

  // TooShort: fewer bytes than header + footer.
  const std::vector<std::uint8_t> Short = {0x52, 0x47, 0x4D};
  EXPECT_EQ(decodeSnapshot(Short, Out), SnapshotError::TooShort);

  // BadMagic.
  std::vector<std::uint8_t> Encoded = encodeSnapshot(sampleSections());
  std::vector<std::uint8_t> Mutated = Encoded;
  Mutated[0] ^= 0xFF;
  EXPECT_EQ(decodeSnapshot(Mutated, Out), SnapshotError::BadMagic);
  EXPECT_TRUE(Out.empty());

  // UnsupportedVersion: a schema this build has no migration path for.
  const std::vector<std::uint8_t> Future =
      encodeSnapshot(sampleSections(), /*Version=*/999);
  EXPECT_EQ(decodeSnapshot(Future, Out), SnapshotError::UnsupportedVersion);

  // SectionLimit: a corrupt count field must not buy a long parse loop.
  {
    ByteWriter W;
    W.u32(SnapshotMagic);
    W.u32(SnapshotVersion);
    W.u32(SnapshotMaxSections + 1);
    W.u32(crc32(W.data()));
    EXPECT_EQ(decodeSnapshot(W.take(), Out), SnapshotError::SectionLimit);
  }

  // SectionOverrun: a section length running past the file. The section
  // parse rejects it before the (here deliberately bogus) footer matters.
  {
    ByteWriter W;
    W.u32(SnapshotMagic);
    W.u32(SnapshotVersion);
    W.u32(1);
    W.u32(7);      // section id
    W.u64(1'000);  // payload length far past EOF
    W.u32(0);      // payload crc
    W.u32(0);      // footer
    EXPECT_EQ(decodeSnapshot(W.take(), Out), SnapshotError::SectionOverrun);
  }

  // SectionCrcMismatch: damage a payload byte; the section CRC localizes
  // it before the file CRC is even consulted.
  Mutated = Encoded;
  Mutated[Mutated.size() - 6] ^= 0x01; // inside the last payload
  EXPECT_EQ(decodeSnapshot(Mutated, Out), SnapshotError::SectionCrcMismatch);

  // FileCrcMismatch: damage the footer itself.
  Mutated = Encoded;
  Mutated[Mutated.size() - 1] ^= 0x01;
  EXPECT_EQ(decodeSnapshot(Mutated, Out), SnapshotError::FileCrcMismatch);
}

// The robustness tentpole's core promise: *every* truncation of a real
// snapshot is rejected with a clean error, never UB. Run under ASan/UBSan
// via tools/run_sanitized_tests.sh.
TEST(PersistSnapshotFuzz, EveryTruncationRejected) {
  const std::vector<std::uint8_t> Encoded = encodeSnapshot(sampleSections());
  for (std::size_t Len = 0; Len < Encoded.size(); ++Len) {
    const std::span<const std::uint8_t> Prefix(Encoded.data(), Len);
    std::vector<SnapshotSection> Out;
    const SnapshotError Err = decodeSnapshot(Prefix, Out);
    EXPECT_NE(Err, SnapshotError::None) << "prefix length " << Len;
    EXPECT_TRUE(Out.empty()) << "prefix length " << Len;
  }
}

// ...and every single-bit flip. CRC-32 detects all single-bit errors, and
// a flip in the footer leaves the recomputed CRC unchanged but the stored
// one different, so rejection is deterministic at every offset.
TEST(PersistSnapshotFuzz, EveryBitFlipRejected) {
  const std::vector<std::uint8_t> Encoded = encodeSnapshot(sampleSections());
  for (std::size_t Off = 0; Off < Encoded.size(); ++Off) {
    for (int Bit = 0; Bit < 8; ++Bit) {
      std::vector<std::uint8_t> Mutated = Encoded;
      Mutated[Off] ^= static_cast<std::uint8_t>(1U << Bit);
      std::vector<SnapshotSection> Out;
      const SnapshotError Err = decodeSnapshot(Mutated, Out);
      EXPECT_NE(Err, SnapshotError::None)
          << "offset " << Off << " bit " << Bit;
      EXPECT_TRUE(Out.empty()) << "offset " << Off << " bit " << Bit;
    }
  }
}

//===----------------------------------------------------------------------===//
// Migrations
//===----------------------------------------------------------------------===//

bool upgradeV0(std::vector<SnapshotSection> &Sections) {
  // A v0 -> v1 shim for the test: tag every section id.
  for (SnapshotSection &S : Sections)
    S.Id += 100;
  return true;
}
bool identityHook(std::vector<SnapshotSection> &) { return true; }
bool failingHook(std::vector<SnapshotSection> &) { return false; }

TEST(PersistSnapshotMigration, ChainWalksOldSchemaForward) {
  const SnapshotMigration Chain[] = {
      {0, 1, &upgradeV0},
      {1, 1, &identityHook},
  };
  const std::vector<std::uint8_t> Old =
      encodeSnapshot(sampleSections(), /*Version=*/0);
  std::vector<SnapshotSection> Out;
  ASSERT_EQ(decodeSnapshot(Old, Out, Chain), SnapshotError::None);
  ASSERT_EQ(Out.size(), 3U);
  EXPECT_EQ(Out[0].Id, 101U); // upgraded
  EXPECT_EQ(Out[1].Id, 102U);
}

TEST(PersistSnapshotMigration, FailingHookReportsMigrationFailed) {
  const SnapshotMigration Chain[] = {
      {0, 1, &failingHook},
      {1, 1, &identityHook},
  };
  const std::vector<std::uint8_t> Old =
      encodeSnapshot(sampleSections(), /*Version=*/0);
  std::vector<SnapshotSection> Out;
  EXPECT_EQ(decodeSnapshot(Old, Out, Chain), SnapshotError::MigrationFailed);
  EXPECT_TRUE(Out.empty());
}

TEST(PersistSnapshotMigration, CyclicChainRejectedNotLooped) {
  const SnapshotMigration Chain[] = {
      {5, 6, &identityHook},
      {6, 5, &identityHook},
  };
  const std::vector<std::uint8_t> Old =
      encodeSnapshot(sampleSections(), /*Version=*/5);
  std::vector<SnapshotSection> Out;
  EXPECT_EQ(decodeSnapshot(Old, Out, Chain),
            SnapshotError::UnsupportedVersion);
}

//===----------------------------------------------------------------------===//
// Journal
//===----------------------------------------------------------------------===//

std::vector<std::uint8_t> seqPayload(std::uint64_t Seq) {
  ByteWriter W;
  W.u64(Seq);
  W.str("batch-" + std::to_string(Seq));
  return W.take();
}

/// Appends records 1..N to a fresh journal at \p Path.
void writeJournal(const std::string &Path, std::uint64_t N) {
  JournalWriter Writer;
  ASSERT_TRUE(Writer.open(Path, nullptr));
  for (std::uint64_t Seq = 1; Seq <= N; ++Seq)
    ASSERT_TRUE(Writer.append(Seq, seqPayload(Seq)));
  Writer.close();
}

TEST(PersistJournal, AppendReplayRoundTripWithSkipThreshold) {
  const std::string Dir = scratchDir("journal_roundtrip");
  const std::string Path = Dir + "/journal.wal";
  writeJournal(Path, 5);

  std::vector<std::uint64_t> Seen;
  const JournalResult Res = replayJournal(
      Path, /*SkipThroughSeq=*/2,
      [&Seen](std::uint64_t Seq, std::span<const std::uint8_t> Payload) {
        EXPECT_EQ(std::vector<std::uint8_t>(Payload.begin(), Payload.end()),
                  seqPayload(Seq));
        Seen.push_back(Seq);
        return true;
      });
  EXPECT_EQ(Seen, (std::vector<std::uint64_t>{3, 4, 5}));
  EXPECT_EQ(Res.RecordsReplayed, 3U);
  EXPECT_EQ(Res.RecordsSkipped, 2U);
  EXPECT_EQ(Res.LastSeq, 5U);
  EXPECT_FALSE(Res.TornTail);
  EXPECT_FALSE(Res.HeaderCorrupt);
}

TEST(PersistJournal, MissingFileIsNotCorruption) {
  const std::string Dir = scratchDir("journal_missing");
  const JournalResult Res = replayJournal(
      Dir + "/nope.wal", 0,
      [](std::uint64_t, std::span<const std::uint8_t>) { return true; });
  EXPECT_TRUE(Res.Missing);
  EXPECT_FALSE(Res.TornTail);
  EXPECT_EQ(Res.RecordsReplayed, 0U);
}

TEST(PersistJournal, ReplayTrustsLongestValidPrefixAtEveryTruncation) {
  const std::string Dir = scratchDir("journal_torn");
  const std::string Path = Dir + "/journal.wal";
  writeJournal(Path, 3);
  const std::vector<std::uint8_t> Full = mustRead(Path);

  // Record boundaries: the valid prefixes a truncated file may expose.
  std::vector<std::uint64_t> Boundaries;
  {
    const JournalResult Whole = replayJournal(
        Path, 0,
        [](std::uint64_t, std::span<const std::uint8_t>) { return true; });
    ASSERT_EQ(Whole.RecordsReplayed, 3U);
    ASSERT_EQ(Whole.ValidBytes, Full.size());
  }

  const std::string Torn = Dir + "/torn.wal";
  for (std::size_t Len = 0; Len <= Full.size(); ++Len) {
    writeBytes(Torn, std::span<const std::uint8_t>(Full.data(), Len));
    std::uint64_t Count = 0;
    const JournalResult Res = replayJournal(
        Torn, 0, [&Count](std::uint64_t, std::span<const std::uint8_t>) {
          ++Count;
          return true;
        });
    SCOPED_TRACE("truncated to " + std::to_string(Len));
    EXPECT_EQ(Res.RecordsReplayed, Count);
    EXPECT_LE(Res.RecordsReplayed, 3U);
    EXPECT_LE(Res.ValidBytes, Len);
    if (Len < 8) {
      // Not even the file header: nothing replayable.
      EXPECT_TRUE(Res.HeaderCorrupt || Res.TornTail);
      EXPECT_EQ(Res.RecordsReplayed, 0U);
    } else if (Len < Full.size()) {
      // Mid-record cuts report a torn tail; exact-boundary cuts are clean.
      const bool AtBoundary = Res.ValidBytes == Len;
      EXPECT_EQ(Res.TornTail, !AtBoundary);
    } else {
      EXPECT_FALSE(Res.TornTail);
      EXPECT_EQ(Res.RecordsReplayed, 3U);
    }
    Boundaries.push_back(Res.ValidBytes);
  }
  // ValidBytes is monotone in the truncation length -- replay never
  // "finds" bytes a shorter file did not have.
  EXPECT_TRUE(std::is_sorted(Boundaries.begin(), Boundaries.end()));
}

TEST(PersistJournal, EveryBitFlipScansSafely) {
  const std::string Dir = scratchDir("journal_flip");
  const std::string Path = Dir + "/journal.wal";
  writeJournal(Path, 3);
  const std::vector<std::uint8_t> Full = mustRead(Path);

  const std::string Mut = Dir + "/mut.wal";
  for (std::size_t Off = 0; Off < Full.size(); ++Off) {
    std::vector<std::uint8_t> Mutated = Full;
    Mutated[Off] ^= static_cast<std::uint8_t>(1U << (Off % 8));
    writeBytes(Mut, Mutated);
    const JournalResult Res = replayJournal(
        Mut, 0, [](std::uint64_t Seq, std::span<const std::uint8_t> Payload) {
          // Any record that *is* delivered must carry an intact payload:
          // the flip can only remove records from the valid prefix.
          EXPECT_EQ(
              std::vector<std::uint8_t>(Payload.begin(), Payload.end()),
              seqPayload(Seq));
          return true;
        });
    SCOPED_TRACE("flip at offset " + std::to_string(Off));
    EXPECT_LE(Res.RecordsReplayed, 3U);
    EXPECT_LE(Res.ValidBytes, Full.size());
    // A flip anywhere damages header, a record, or trailing bytes of the
    // scan -- some failure marker must be raised, or (flips confined to a
    // record the CRC rejects) the scan ends torn.
    EXPECT_TRUE(Res.HeaderCorrupt || Res.TornTail ||
                Res.RecordsReplayed < 3U || Res.ValidBytes < Full.size());
  }
}

TEST(PersistJournal, NonIncreasingSequenceEndsScan) {
  const std::string Dir = scratchDir("journal_seq");
  const std::string Path = Dir + "/journal.wal";
  // Hand-build: header + seq 5 + seq 5 again (stale tail after reuse).
  ByteWriter W;
  W.u32(JournalMagic);
  W.u32(JournalVersion);
  for (int I = 0; I < 2; ++I) {
    const std::vector<std::uint8_t> P = seqPayload(5);
    W.u64(5);
    W.u32(static_cast<std::uint32_t>(P.size()));
    W.u32(journalRecordCrc(5, P));
    W.bytes(P);
  }
  const std::vector<std::uint8_t> Bytes = W.take();
  writeBytes(Path, Bytes);

  std::uint64_t Count = 0;
  const JournalResult Res = replayJournal(
      Path, 0, [&Count](std::uint64_t, std::span<const std::uint8_t>) {
        ++Count;
        return true;
      });
  EXPECT_EQ(Count, 1U);
  EXPECT_TRUE(Res.TornTail);
  EXPECT_LT(Res.ValidBytes, Bytes.size());
}

TEST(PersistJournal, RejectedPayloadStopsScanAndIsNotCountedInLastSeq) {
  const std::string Dir = scratchDir("journal_reject");
  const std::string Path = Dir + "/journal.wal";
  writeJournal(Path, 3);
  const JournalResult Res = replayJournal(
      Path, 0, [](std::uint64_t Seq, std::span<const std::uint8_t>) {
        return Seq < 2; // the service rejects record 2 as malformed
      });
  EXPECT_EQ(Res.RecordsReplayed, 1U);
  EXPECT_TRUE(Res.PayloadRejected);
  EXPECT_EQ(Res.LastSeq, 1U);
}

//===----------------------------------------------------------------------===//
// CheckpointManager
//===----------------------------------------------------------------------===//

/// Encodes a one-section snapshot whose payload names the journal
/// sequence it covers -- a miniature of the service's snapshot.
std::vector<std::uint8_t> coverSnapshot(std::uint64_t CoverSeq) {
  ByteWriter P;
  P.u64(CoverSeq);
  std::vector<SnapshotSection> Sections(1);
  Sections[0].Id = 1;
  Sections[0].Payload = P.take();
  return encodeSnapshot(Sections);
}

std::uint64_t coveredSeq(const std::vector<SnapshotSection> &Sections) {
  EXPECT_EQ(Sections.size(), 1U);
  ByteReader R(Sections[0].Payload);
  const std::uint64_t Seq = R.u64();
  EXPECT_TRUE(R.atEnd());
  return Seq;
}

TEST(PersistCheckpoint, CommitRotatesAndCompactionKeepsFallbackUsable) {
  const std::string Dir = scratchDir("ckpt_rotate");
  CheckpointManager M(Dir);
  ASSERT_TRUE(M.valid());

  // Commit A (covers 0), journal 1..3, commit B (covers 3), journal 4..6.
  ASSERT_TRUE(M.commitSnapshot(coverSnapshot(0), 0));
  for (std::uint64_t Seq = 1; Seq <= 3; ++Seq)
    ASSERT_TRUE(M.appendJournal(Seq, seqPayload(Seq)));
  ASSERT_TRUE(M.commitSnapshot(coverSnapshot(3), 0));
  for (std::uint64_t Seq = 4; Seq <= 6; ++Seq)
    ASSERT_TRUE(M.appendJournal(Seq, seqPayload(Seq)));

  // Current rung = B, fallback = A.
  auto Cur = M.loadRung(CheckpointManager::Rung::Current);
  ASSERT_TRUE(Cur.has_value());
  EXPECT_EQ(coveredSeq(*Cur), 3U);
  auto Prev = M.loadRung(CheckpointManager::Rung::Previous);
  ASSERT_TRUE(Prev.has_value());
  EXPECT_EQ(coveredSeq(*Prev), 0U);

  // The journal still holds 1..6: compaction at the B commit dropped only
  // records covered by the *fallback* (A, seq 0), so prev + journal can
  // rebuild everything B + journal can.
  std::vector<std::uint64_t> Seen;
  (void)M.replayAndRepair(
      0, [&Seen](std::uint64_t Seq, std::span<const std::uint8_t>) {
        Seen.push_back(Seq);
        return true;
      });
  EXPECT_EQ(Seen, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6}));

  // Commit C (covers 6) compacting through B's seq 3: records 1..3 drop.
  ASSERT_TRUE(M.commitSnapshot(coverSnapshot(6), 3));
  Seen.clear();
  (void)M.replayAndRepair(
      0, [&Seen](std::uint64_t Seq, std::span<const std::uint8_t>) {
        Seen.push_back(Seq);
        return true;
      });
  EXPECT_EQ(Seen, (std::vector<std::uint64_t>{4, 5, 6}));
  EXPECT_EQ(M.counters().SnapshotsCommitted, 3U);
}

TEST(PersistCheckpoint, ReplayAndRepairTruncatesTornTail) {
  const std::string Dir = scratchDir("ckpt_repair");
  CheckpointManager M(Dir);
  ASSERT_TRUE(M.valid());
  for (std::uint64_t Seq = 1; Seq <= 3; ++Seq)
    ASSERT_TRUE(M.appendJournal(Seq, seqPayload(Seq)));

  // Tear the tail by appending garbage (a crash mid-append).
  {
    const std::vector<std::uint8_t> Garbage = {0x13, 0x37, 0xFE};
    FileSink Sink(M.journalPath(), /*Append=*/true, nullptr);
    ASSERT_TRUE(Sink.write(Garbage));
    ASSERT_TRUE(Sink.close());
  }
  const std::uint64_t TornSize = mustRead(M.journalPath()).size();

  const JournalResult Res = M.replayAndRepair(
      0, [](std::uint64_t, std::span<const std::uint8_t>) { return true; });
  EXPECT_EQ(Res.RecordsReplayed, 3U);
  EXPECT_TRUE(Res.TornTail);
  EXPECT_EQ(M.counters().JournalTornTails, 1U);
  EXPECT_EQ(M.counters().JournalRepairs, 1U);
  EXPECT_LT(mustRead(M.journalPath()).size(), TornSize);

  // Appends now extend a well-formed journal: all four records replay.
  ASSERT_TRUE(M.appendJournal(4, seqPayload(4)));
  std::vector<std::uint64_t> Seen;
  const JournalResult After = M.replayAndRepair(
      0, [&Seen](std::uint64_t Seq, std::span<const std::uint8_t>) {
        Seen.push_back(Seq);
        return true;
      });
  EXPECT_FALSE(After.TornTail);
  EXPECT_EQ(Seen, (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST(PersistCheckpoint, CorruptRungFallsToPreviousWithReasonCounted) {
  const std::string Dir = scratchDir("ckpt_corrupt");
  CheckpointManager M(Dir);
  ASSERT_TRUE(M.valid());
  ASSERT_TRUE(M.commitSnapshot(coverSnapshot(1), 0));
  ASSERT_TRUE(M.commitSnapshot(coverSnapshot(2), 0));

  // Corrupt the current rung on disk.
  std::vector<std::uint8_t> Bytes = mustRead(M.snapshotPath());
  Bytes[Bytes.size() / 2] ^= 0x40;
  writeBytes(M.snapshotPath(), Bytes);

  EXPECT_FALSE(M.loadRung(CheckpointManager::Rung::Current).has_value());
  EXPECT_EQ(M.counters().CorruptSnapshots, 1U);
  EXPECT_NE(M.counters().LastError, SnapshotError::None);
  auto Prev = M.loadRung(CheckpointManager::Rung::Previous);
  ASSERT_TRUE(Prev.has_value());
  EXPECT_EQ(coveredSeq(*Prev), 1U);
}

// The commit-protocol crash sweep: simulate a power cut after every unit
// of I/O inside a snapshot commit and assert the directory always
// recovers to full coverage -- either the new snapshot, or the fallback
// rung plus the journal records compaction deliberately preserved.
TEST(PersistCheckpoint, CrashSweptCommitAlwaysLeavesRecoverableState) {
  // Accounting run: how many units does the swept commit cost?
  std::uint64_t TotalUnits = 0;
  {
    const std::string Dir = scratchDir("ckpt_sweep_acct");
    CheckpointManager M(Dir);
    ASSERT_TRUE(M.commitSnapshot(coverSnapshot(0), 0));
    for (std::uint64_t Seq = 1; Seq <= 3; ++Seq)
      ASSERT_TRUE(M.appendJournal(Seq, seqPayload(Seq)));
    ASSERT_TRUE(M.commitSnapshot(coverSnapshot(3), 0));
    for (std::uint64_t Seq = 4; Seq <= 6; ++Seq)
      ASSERT_TRUE(M.appendJournal(Seq, seqPayload(Seq)));
    CrashPoint Acct = CrashPoint::unlimited();
    M.armCrash(&Acct);
    ASSERT_TRUE(M.commitSnapshot(coverSnapshot(6), 3));
    M.armCrash(nullptr);
    TotalUnits = Acct.used();
  }
  ASSERT_GT(TotalUnits, 0U);

  for (std::uint64_t Budget = 0; Budget <= TotalUnits; ++Budget) {
    SCOPED_TRACE("crash budget " + std::to_string(Budget));
    const std::string Dir = scratchDir("ckpt_sweep");
    {
      CheckpointManager M(Dir);
      ASSERT_TRUE(M.commitSnapshot(coverSnapshot(0), 0));
      for (std::uint64_t Seq = 1; Seq <= 3; ++Seq)
        ASSERT_TRUE(M.appendJournal(Seq, seqPayload(Seq)));
      ASSERT_TRUE(M.commitSnapshot(coverSnapshot(3), 0));
      for (std::uint64_t Seq = 4; Seq <= 6; ++Seq)
        ASSERT_TRUE(M.appendJournal(Seq, seqPayload(Seq)));
      CrashPoint Crash(Budget);
      M.armCrash(&Crash);
      (void)M.commitSnapshot(coverSnapshot(6), 3); // may die anywhere
      // The manager (and its torn file handles) is abandoned here, like
      // the crashed process.
    }

    // Restart: a fresh manager climbs the ladder.
    CheckpointManager R(Dir);
    std::uint64_t CoverSeq = 0;
    auto Sections = R.loadRung(CheckpointManager::Rung::Current);
    if (!Sections) {
      Sections = R.loadRung(CheckpointManager::Rung::Previous);
      R.noteFallbackUsed();
    }
    ASSERT_TRUE(Sections.has_value())
        << "no usable snapshot rung after crash";
    CoverSeq = coveredSeq(*Sections);
    EXPECT_TRUE(CoverSeq == 3 || CoverSeq == 6)
        << "recovered rung covers unexpected seq " << CoverSeq;

    std::set<std::uint64_t> Replayed;
    const JournalResult JR = R.replayAndRepair(
        CoverSeq,
        [&Replayed](std::uint64_t Seq, std::span<const std::uint8_t> P) {
          EXPECT_EQ(std::vector<std::uint8_t>(P.begin(), P.end()),
                    seqPayload(Seq));
          Replayed.insert(Seq);
          return true;
        });
    EXPECT_FALSE(JR.HeaderCorrupt);
    // Full coverage: snapshot + replayed journal reach seq 6 exactly,
    // with no gaps -- every acknowledged record survives the crash.
    std::uint64_t Reached = CoverSeq;
    for (std::uint64_t Seq = CoverSeq + 1; Seq <= 6; ++Seq) {
      EXPECT_TRUE(Replayed.count(Seq))
          << "gap: record " << Seq << " lost (rung covers " << CoverSeq
          << ")";
      Reached = Seq;
    }
    EXPECT_EQ(Reached, 6U);
    EXPECT_EQ(Replayed.size(), 6 - CoverSeq);
  }
}

//===----------------------------------------------------------------------===//
// StateCodec
//===----------------------------------------------------------------------===//

std::vector<std::uint8_t> encodeBytes(const auto &Obj) {
  ByteWriter W;
  StateCodec::encode(W, Obj);
  return W.take();
}

TEST(PersistStateCodec, WindowedStatsBitIdenticalRoundTripAndContinuation) {
  WindowedStats Orig(4);
  // Irrational-ish values: any re-accumulation of the sum would differ in
  // the last ulp, which the raw-bits encoding must prevent.
  for (double X : {1.0 / 3.0, std::sqrt(2.0), 0.1, std::acos(-1.0), 2.0 / 7.0})
    Orig.add(X);

  const std::vector<std::uint8_t> Bytes = encodeBytes(Orig);
  WindowedStats Copy(1); // capacity comes from the payload
  ByteReader R(Bytes);
  ASSERT_TRUE(StateCodec::decode(R, Copy, /*MaxCap=*/8));
  EXPECT_TRUE(R.atEnd());
  EXPECT_EQ(encodeBytes(Copy), Bytes);

  // Continuation: original and copy must stay bit-identical forever.
  for (double X : {0.7, 1e-9, 123.456}) {
    Orig.add(X);
    Copy.add(X);
  }
  EXPECT_EQ(encodeBytes(Copy), encodeBytes(Orig));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(Copy.mean()),
            std::bit_cast<std::uint64_t>(Orig.mean()));
}

TEST(PersistStateCodec, WindowedStatsRejectsOverCapacityAndBadInvariants) {
  WindowedStats Orig(4);
  Orig.add(1.0);
  const std::vector<std::uint8_t> Bytes = encodeBytes(Orig);
  {
    // MaxCap below the serialized capacity: config mismatch, rejected.
    WindowedStats S(1);
    ByteReader R(Bytes);
    EXPECT_FALSE(StateCodec::decode(R, S, /*MaxCap=*/2));
  }
  {
    // Head out of range for a non-full window.
    ByteWriter W;
    W.u64(4); // cap
    W.u64(2); // head, but the window is not full -- invalid
    W.vecF64(std::vector<double>{1.0});
    W.f64(1.0);
    WindowedStats S(4);
    ByteReader R(W.data());
    EXPECT_FALSE(StateCodec::decode(R, S, /*MaxCap=*/8));
  }
}

TEST(PersistStateCodec, InstrHistogramRoundTripAndMismatchRejected) {
  InstrHistogram Orig(/*Start=*/0x1000, /*End=*/0x1000 + 16 * InstrBytes);
  for (int I = 0; I < 50; ++I)
    Orig.addSample(0x1000 + static_cast<Addr>(I % 16) * InstrBytes);

  const std::vector<std::uint8_t> Bytes = encodeBytes(Orig);
  InstrHistogram Copy(0x1000, 0x1000 + 16 * InstrBytes);
  ByteReader R(Bytes);
  ASSERT_TRUE(StateCodec::decode(R, Copy));
  EXPECT_TRUE(R.atEnd());
  EXPECT_EQ(encodeBytes(Copy), Bytes);
  EXPECT_EQ(Copy.total(), Orig.total());

  // Decoding into a histogram for a different region is rejected.
  InstrHistogram Other(0x2000, 0x2000 + 16 * InstrBytes);
  ByteReader R2(Bytes);
  EXPECT_FALSE(StateCodec::decode(R2, Other));

  // A payload whose total disagrees with its bins is rejected.
  ByteWriter W;
  W.u64(0x1000);
  W.vecU32(std::vector<std::uint32_t>(16, 1));
  W.u64(999); // != sum of bins
  InstrHistogram Victim(0x1000, 0x1000 + 16 * InstrBytes);
  ByteReader R3(W.data());
  EXPECT_FALSE(StateCodec::decode(R3, Victim));
}

TEST(PersistStateCodec, InstrHistogramMomentsSurviveRoundTrip) {
  // Mid-interval checkpoint of a partially filled histogram: the running
  // sum of squares (the incremental engine's Syy moment) must restore
  // exactly, or the O(1) similarity path would diverge from the naive
  // oracle after a warm restart.
  InstrHistogram Orig(0x1000, 0x1000 + 32 * InstrBytes);
  for (int I = 0; I < 77; ++I)
    Orig.addSample(0x1000 + static_cast<Addr>((I * 7) % 32) * InstrBytes);

  const std::vector<std::uint8_t> Bytes = encodeBytes(Orig);
  InstrHistogram Copy(0x1000, 0x1000 + 32 * InstrBytes);
  ByteReader R(Bytes);
  ASSERT_TRUE(StateCodec::decode(R, Copy));
  EXPECT_EQ(Copy.sumOfSquares(), Orig.sumOfSquares());

  // Continuation keeps the moment in sync with the bins on both sides.
  for (int I = 0; I < 20; ++I) {
    Orig.addSample(0x1000 + static_cast<Addr>(I % 32) * InstrBytes);
    Copy.addSample(0x1000 + static_cast<Addr>(I % 32) * InstrBytes);
  }
  EXPECT_EQ(encodeBytes(Copy), encodeBytes(Orig));
  EXPECT_EQ(Copy.sumOfSquares(), Orig.sumOfSquares());
}

TEST(PersistStateCodec, InstrHistogramRejectsDesyncedSumOfSquares) {
  // Bins and total agree, but the running sum of squares was tampered
  // with: accepted, it would silently desynchronize the incremental
  // similarity engine from the naive oracle. All-or-nothing demands
  // rejection.
  const std::vector<std::uint32_t> Bins(16, 2);
  ByteWriter W;
  W.u64(0x1000);
  W.vecU32(Bins);
  W.u64(32); // == sum of bins
  W.u64(65); // != sum of squared bins (16 * 4 = 64)
  InstrHistogram Victim(0x1000, 0x1000 + 16 * InstrBytes);
  ByteReader R(W.data());
  EXPECT_FALSE(StateCodec::decode(R, Victim));
  // The failed decode must not have touched the target.
  EXPECT_EQ(Victim.total(), 0U);
  EXPECT_EQ(Victim.sumOfSquares(), 0U);

  // The honest payload (SumSq == 64) is accepted.
  ByteWriter W2;
  W2.u64(0x1000);
  W2.vecU32(Bins);
  W2.u64(32);
  W2.u64(64);
  ByteReader R2(W2.data());
  EXPECT_TRUE(StateCodec::decode(R2, Victim));
  EXPECT_EQ(Victim.sumOfSquares(), 64U);
}

TEST(PersistStateCodec, LocalPhaseDetectorRejectsDesyncedStableMoments) {
  const std::unique_ptr<core::SimilarityMetric> Metric =
      core::makeSimilarity(core::SimilarityKind::Pearson);
  core::LocalPhaseDetector Victim(/*InstrCount=*/8, *Metric);

  // Hand-build a detector payload whose stable set is honest but whose
  // running moments (PrevSum / PrevSumSq) disagree with it.
  const std::vector<std::uint32_t> Prev{3, 0, 1, 0, 0, 2, 0, 0};
  const auto BuildPayload = [&Prev](std::uint64_t Sum, std::uint64_t SumSq) {
    ByteWriter W;
    W.vecU32(Prev);
    W.u64(Sum);
    W.u64(SumSq);
    W.boolean(true); // PrevValid
    W.u8(2);         // Stable
    W.f64(0.9);
    W.boolean(false);
    W.u64(1); // PhaseChanges
    W.u64(4); // Observed
    W.u64(0); // SkippedUndersampled
    return W.take();
  };

  {
    ByteReader R(BuildPayload(/*Sum=*/7, /*SumSq=*/14)); // wrong Sum (is 6)
    EXPECT_FALSE(StateCodec::decode(R, Victim));
  }
  {
    ByteReader R(BuildPayload(/*Sum=*/6, /*SumSq=*/13)); // wrong SumSq (14)
    EXPECT_FALSE(StateCodec::decode(R, Victim));
  }
  {
    // The honest payload decodes, and a re-encode reproduces it exactly.
    const std::vector<std::uint8_t> Honest = BuildPayload(6, 14);
    ByteReader R(Honest);
    ASSERT_TRUE(StateCodec::decode(R, Victim));
    EXPECT_TRUE(R.atEnd());
    EXPECT_EQ(encodeBytes(Victim), Honest);
    EXPECT_EQ(Victim.state(), core::LocalPhaseState::Stable);
  }
}

/// Records one workload stream's intervals (the service tests' pattern).
struct RecordedStream {
  std::unique_ptr<workloads::Workload> W;
  std::unique_ptr<sim::ProgramCodeMap> Map;
  std::vector<std::vector<Sample>> Intervals;
};

RecordedStream record(const std::string &Name, std::uint64_t Seed) {
  RecordedStream S;
  S.W = std::make_unique<workloads::Workload>(workloads::make(Name));
  S.Map = std::make_unique<sim::ProgramCodeMap>(S.W->Prog);
  sim::Engine Engine(S.W->Prog, S.W->Script, Seed);
  sampling::Sampler Sampler(Engine, {45'000, 2032});
  S.Intervals = Sampler.collectIntervals();
  return S;
}

TEST(PersistStateCodec, RegionMonitorBitIdenticalRoundTripAndContinuation) {
  const RecordedStream S = record("synthetic.periodic", 7);
  ASSERT_GT(S.Intervals.size(), 8U);

  core::RegionMonitorConfig Cfg;
  Cfg.TrackMissPhases = true; // exercise the miss-phase arrays too
  core::RegionMonitor Orig(*S.Map, Cfg);
  const std::size_t Half = S.Intervals.size() / 2;
  for (std::size_t I = 0; I < Half; ++I)
    Orig.observeInterval(S.Intervals[I]);
  ASSERT_FALSE(Orig.regions().empty()) << "stream formed no regions";

  const std::vector<std::uint8_t> Bytes = encodeBytes(Orig);
  core::RegionMonitor Copy(*S.Map, Cfg);
  {
    ByteReader R(Bytes);
    ASSERT_TRUE(StateCodec::decode(R, Copy));
    EXPECT_TRUE(R.atEnd());
  }
  EXPECT_EQ(encodeBytes(Copy), Bytes);

  // Continuation over the second half must match the uninterrupted run
  // byte for byte -- the warm-restart guarantee at monitor granularity.
  for (std::size_t I = Half; I < S.Intervals.size(); ++I) {
    Orig.observeInterval(S.Intervals[I]);
    Copy.observeInterval(S.Intervals[I]);
  }
  EXPECT_EQ(encodeBytes(Copy), encodeBytes(Orig));
  EXPECT_EQ(Copy.totalPhaseChanges(), Orig.totalPhaseChanges());
  EXPECT_EQ(Copy.intervals(), Orig.intervals());
}

TEST(PersistStateCodec, RegionMonitorRejectsTruncationAndResets) {
  const RecordedStream S = record("synthetic.steady", 3);
  core::RegionMonitor Orig(*S.Map);
  for (const std::vector<Sample> &Interval : S.Intervals)
    Orig.observeInterval(Interval);
  const std::vector<std::uint8_t> Bytes = encodeBytes(Orig);

  const std::vector<std::uint8_t> FreshBytes = [&] {
    core::RegionMonitor Fresh(*S.Map);
    return encodeBytes(Fresh);
  }();

  for (std::size_t Len : {std::size_t{0}, Bytes.size() / 3, Bytes.size() / 2,
                          Bytes.size() - 1}) {
    SCOPED_TRACE("truncated to " + std::to_string(Len));
    core::RegionMonitor Victim(*S.Map);
    ByteReader R(std::span<const std::uint8_t>(Bytes.data(), Len));
    EXPECT_FALSE(StateCodec::decode(R, Victim));
    // All-or-nothing: the victim is back at cold state, not half-written.
    EXPECT_EQ(encodeBytes(Victim), FreshBytes);
    EXPECT_TRUE(Victim.regions().empty());
  }

  // A different monitor configuration is a different state layout:
  // decoding under it must be refused, not misinterpreted. TrackMissPhases
  // is part of the fingerprint because it changes the per-region arrays.
  core::RegionMonitorConfig Other;
  Other.TrackMissPhases = true;
  core::RegionMonitor Mismatched(*S.Map, Other);
  ByteReader R(Bytes);
  EXPECT_FALSE(StateCodec::decode(R, Mismatched));
  EXPECT_TRUE(Mismatched.regions().empty());
}

TEST(PersistStateCodec, CentroidDetectorRoundTripAndContinuation) {
  gpd::CentroidConfig Cfg;
  Cfg.AdaptiveWindow = true; // window capacity varies: the hard case
  gpd::CentroidPhaseDetector Orig(Cfg);
  // Drive through stability and a phase change so the history, timer,
  // and counters are all nontrivial.
  for (int I = 0; I < 12; ++I)
    Orig.observeCentroid(1000.0 + (I % 3));
  for (int I = 0; I < 4; ++I)
    Orig.observeCentroid(5000.0 + 7.0 * I);

  const std::vector<std::uint8_t> Bytes = encodeBytes(Orig);
  gpd::CentroidPhaseDetector Copy(Cfg);
  {
    ByteReader R(Bytes);
    ASSERT_TRUE(StateCodec::decode(R, Copy));
    EXPECT_TRUE(R.atEnd());
  }
  EXPECT_EQ(encodeBytes(Copy), Bytes);
  EXPECT_EQ(Copy.state(), Orig.state());

  for (int I = 0; I < 10; ++I) {
    Orig.observeCentroid(5000.0 + (I % 2));
    Copy.observeCentroid(5000.0 + (I % 2));
  }
  EXPECT_EQ(encodeBytes(Copy), encodeBytes(Orig));
  EXPECT_EQ(Copy.phaseChanges(), Orig.phaseChanges());
}

TEST(PersistStateCodec, AdaptiveControllerRoundTripAndContinuation) {
  sampling::AdaptiveConfig Cfg;
  Cfg.Enabled = true;
  Cfg.MaxScaleLog2 = 3;
  Cfg.StableIntervalsPerStep = 2;
  sampling::AdaptiveController Orig(Cfg);
  // Drive to a nontrivial point: two lengthens, a tighten, one banked
  // streak interval and a nonzero samples-saved account.
  sampling::StreamFeedback Stable;
  Stable.AllRegionsStable = true;
  Stable.UcrFraction = 0.25;
  for (int I = 0; I < 4; ++I) {
    Orig.noteSamples(100);
    (void)Orig.observe(Stable);
  }
  ASSERT_EQ(Orig.scaleLog2(), 2U);
  ASSERT_GT(Orig.samplesSaved(), 0U);
  sampling::StreamFeedback Spike = Stable;
  Spike.UcrFraction = 0.9;
  ASSERT_EQ(Orig.observe(Spike), sampling::AdaptiveDecision::Tighten);
  (void)Orig.observe(Stable); // bank one interval toward the next step
  ASSERT_EQ(Orig.stableStreak(), 1U);

  const std::vector<std::uint8_t> Bytes = encodeBytes(Orig);
  sampling::AdaptiveController Copy(Cfg);
  {
    ByteReader R(Bytes);
    ASSERT_TRUE(StateCodec::decode(R, Copy));
    EXPECT_TRUE(R.atEnd());
  }
  EXPECT_EQ(encodeBytes(Copy), Bytes);
  EXPECT_EQ(Copy.stableStreak(), 1U);

  // Continuation: the copy must take the same transitions forever.
  for (int I = 0; I < 5; ++I) {
    Orig.noteSamples(10);
    Copy.noteSamples(10);
    EXPECT_EQ(Orig.observe(Stable), Copy.observe(Stable));
  }
  EXPECT_EQ(encodeBytes(Copy), encodeBytes(Orig));
}

TEST(PersistStateCodec, AdaptiveControllerRejectsDesyncedPayloads) {
  sampling::AdaptiveConfig Cfg;
  Cfg.Enabled = true;
  Cfg.MaxScaleLog2 = 3;
  Cfg.StableIntervalsPerStep = 2;
  sampling::AdaptiveController Orig(Cfg);
  sampling::StreamFeedback Stable;
  Stable.AllRegionsStable = true;
  for (int I = 0; I < 2; ++I)
    (void)Orig.observe(Stable);
  const std::vector<std::uint8_t> Bytes = encodeBytes(Orig);

  const auto rejects = [](std::vector<std::uint8_t> Mut,
                          sampling::AdaptiveConfig Into,
                          const std::string &What) {
    sampling::AdaptiveController C(Into);
    ByteReader R(Mut);
    EXPECT_FALSE(StateCodec::decode(R, C)) << What;
  };

  // Config mismatches: the decoding service was built with different
  // tuning, so the payload's schedule is not reproducible here.
  {
    sampling::AdaptiveConfig Other = Cfg;
    Other.StableIntervalsPerStep = 3;
    rejects(Bytes, Other, "step mismatch");
  }
  {
    sampling::AdaptiveConfig Other = Cfg;
    Other.Enabled = false;
    rejects(Bytes, Other, "enabled-bit mismatch");
  }
  // Every truncation is a clean rejection.
  for (std::size_t Len = 0; Len < Bytes.size(); ++Len)
    rejects({Bytes.begin(), Bytes.begin() + static_cast<long>(Len)}, Cfg,
            "truncated to " + std::to_string(Len));
  // Hand-rolled payloads violating the machine's invariants.
  const auto forged = [&](std::uint32_t Level, std::uint32_t Streak,
                          std::uint64_t Tightens, bool Enabled) {
    ByteWriter W;
    W.boolean(Enabled);
    W.u64(Cfg.BasePeriodCycles);
    W.u32(Cfg.MaxScaleLog2);
    W.u32(Cfg.StableIntervalsPerStep);
    W.f64(Cfg.UcrSpikeDelta);
    W.u32(Level);
    W.u32(Streak);
    W.f64(0.0);
    W.boolean(false);
    W.u64(0);        // lengthens
    W.u64(Tightens);
    W.u64(0);        // samples saved
    return W.take();
  };
  rejects(forged(Cfg.MaxScaleLog2 + 1, 0, 0, true), Cfg, "level above cap");
  rejects(forged(0, Cfg.StableIntervalsPerStep, 0, true), Cfg,
          "streak at threshold never persists");
  // A disabled controller never mutates state: nonzero dynamic fields
  // under Enabled == false are a desynced payload, not a restore.
  sampling::AdaptiveConfig Off = Cfg;
  Off.Enabled = false;
  rejects(forged(0, 0, 1, false), Off, "nonzero state while disabled");
  {
    const std::vector<std::uint8_t> Zeroed = forged(0, 0, 0, false);
    sampling::AdaptiveController C(Off);
    ByteReader R(Zeroed);
    EXPECT_TRUE(StateCodec::decode(R, C)) << "all-zero disabled payload";
  }
}

TEST(PersistStateCodec, TraceDeploymentsRoundTripWithoutTouchingEngine) {
  workloads::Workload W = workloads::make("synthetic.bottleneck");
  rto::OptimizationModel Model{W.Opportunities};
  sim::Engine Eng{W.Prog, W.Script, 1};

  rto::TraceDeployments Orig(Eng, Model, /*PatchOverheadCycles=*/1000);
  ASSERT_TRUE(Orig.deploy(0));
  // Cross the workload's profile switch so the deployed trace turns
  // harmful and the ledger carries a nonzero streak.
  ASSERT_TRUE(Eng.advanceAndSample(1'200'000'000).has_value());
  Orig.refresh();
  Orig.refresh();
  ASSERT_EQ(Orig.harmfulStreak(0), 2U);

  const std::vector<std::uint8_t> Bytes = encodeBytes(Orig);
  const double SpeedupBefore = Eng.speedup(0);

  rto::TraceDeployments Copy(Eng, Model, /*PatchOverheadCycles=*/1000);
  {
    ByteReader R(Bytes);
    ASSERT_TRUE(StateCodec::decode(R, Copy));
    EXPECT_TRUE(R.atEnd());
  }
  EXPECT_EQ(encodeBytes(Copy), Bytes);
  EXPECT_TRUE(Copy.deployed(0));
  EXPECT_EQ(Copy.harmfulStreak(0), 2U);
  EXPECT_EQ(Copy.patches(), Orig.patches());
  // Decode restores bookkeeping only; the engine's rate factors are
  // untouched until the caller's next refresh().
  EXPECT_DOUBLE_EQ(Eng.speedup(0), SpeedupBefore);
}

} // namespace
