//===- tests/trace_corpus_gen.cpp - Trace corpus regenerator --------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates the committed incident corpus (tests/trace_corpus/): for
// each scenario in tests/TraceScenarios.h, records the trace and writes
// the recording run's Prometheus and JSON exports as goldens:
//
//     <outdir>/<scenario>.bin    the recorded trace
//     <outdir>/<scenario>.prom   byte-pinned Prometheus export
//     <outdir>/<scenario>.json   byte-pinned JSON export
//
// TraceReplayTest asserts a fresh recording reproduces the committed
// trace byte for byte and that replaying the committed trace reproduces
// the committed exports -- so any drift in the wire format, the decision
// sequence, or the exporters shows up as a corpus diff, reviewed like any
// other code change. Regenerate with:
//
//     build/tests/trace_corpus_gen tests/trace_corpus
//
//===----------------------------------------------------------------------===//

#include "TraceScenarios.h"

#include "persist/Io.h"

#include <cstdio>
#include <filesystem>
#include <string>

using namespace regmon;

namespace {

bool writeFile(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  bool Written =
      F && std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  if (F)
    Written = std::fclose(F) == 0 && Written;
  return Written;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc != 2) {
    std::fprintf(stderr, "usage: trace_corpus_gen OUTDIR\n");
    return 2;
  }
  const std::string Dir = Argv[1];
  if (!persist::ensureDir(Dir)) {
    std::fprintf(stderr, "error: cannot create '%s'\n", Dir.c_str());
    return 1;
  }
  for (const std::string &Name : tracetest::scenarioNames()) {
    const std::string Trace = Dir + "/" + Name + ".bin";
    // A stale trace would be extended, not replaced: start fresh.
    std::filesystem::remove(Trace);
    std::string PersistDir;
    if (tracetest::specFor(Name).MidRunCheckpoint) {
      // Scratch durability directory; only the trace itself is corpus.
      PersistDir = Dir + "/." + Name + ".scratch";
      std::filesystem::remove_all(PersistDir);
      if (!persist::ensureDir(PersistDir)) {
        std::fprintf(stderr, "error: cannot create '%s'\n",
                     PersistDir.c_str());
        return 1;
      }
    }
    const tracetest::RecordOutcome Out =
        tracetest::recordScenario(Name, Trace, PersistDir);
    if (!PersistDir.empty())
      std::filesystem::remove_all(PersistDir);
    if (!Out.Open.Ok) {
      std::fprintf(stderr, "error: recording '%s' failed to open the trace\n",
                   Name.c_str());
      return 1;
    }
    if (!writeFile(Dir + "/" + Name + ".prom", Out.Prom) ||
        !writeFile(Dir + "/" + Name + ".json", Out.Json)) {
      std::fprintf(stderr, "error: cannot write goldens for '%s'\n",
                   Name.c_str());
      return 1;
    }
    std::printf("%-28s %6llu submitted, %llu dropped, %llu poisoned, "
                "%llu quarantined\n",
                Name.c_str(),
                static_cast<unsigned long long>(Out.Snap.BatchesSubmitted),
                static_cast<unsigned long long>(Out.Snap.BatchesDropped),
                static_cast<unsigned long long>(Out.Snap.BatchesPoisoned),
                static_cast<unsigned long long>(Out.Snap.BatchesQuarantined));
  }
  return 0;
}
