//===- tests/IntegrationTest.cpp - End-to-end paper claims ----------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Full-stack tests of the paper's central claims: engine -> sampler ->
/// detectors, on the catalogued workloads. These are the properties the
/// figure benches visualize, pinned as assertions.
///
//===----------------------------------------------------------------------===//

#include "core/RegionMonitor.h"
#include "gpd/CentroidPhaseDetector.h"
#include "sampling/Sampler.h"
#include "sim/Engine.h"
#include "sim/ProgramCodeMap.h"
#include "support/Statistics.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace regmon;

namespace {

struct FullRun {
  workloads::Workload W;
  sim::ProgramCodeMap Map;
  core::RegionMonitor Monitor;
  gpd::CentroidPhaseDetector Gpd;

  FullRun(const std::string &Name, Cycles Period,
          core::RegionMonitorConfig Config = {})
      : W(workloads::make(Name)), Map(W.Prog), Monitor(Map, Config) {
    sim::Engine Engine(W.Prog, W.Script, /*Seed=*/1);
    sampling::Sampler Sampler(Engine, {Period, 2032});
    Sampler.run([&](std::span<const Sample> Buffer) {
      Monitor.observeInterval(Buffer);
      Gpd.observeInterval(Buffer);
    });
  }

  std::uint64_t totalLocalChanges() const {
    std::uint64_t Total = 0;
    for (core::RegionId Id : Monitor.activeRegionIds())
      Total += Monitor.stats(Id).PhaseChanges;
    return Total;
  }
};

TEST(Integration, SteadyWorkloadIsStableEverywhere) {
  FullRun Run("synthetic.steady", 45'000);
  EXPECT_LE(Run.Gpd.phaseChanges(), 1u);
  EXPECT_GT(Run.Gpd.stableFraction(), 0.5);
  for (core::RegionId Id : Run.Monitor.activeRegionIds()) {
    EXPECT_LE(Run.Monitor.stats(Id).PhaseChanges, 1u);
    EXPECT_GT(Run.Monitor.stats(Id).stableFraction(), 0.5);
  }
}

TEST(Integration, PeriodicWorkloadChurnsGpdButNotLpd) {
  // The paper's core claim in miniature: global churn, local calm.
  FullRun Run("synthetic.periodic", 45'000);
  EXPECT_GE(Run.Gpd.phaseChanges(), 4u) << "GPD thrashes on the toggling";
  for (core::RegionId Id : Run.Monitor.activeRegionIds()) {
    EXPECT_LE(Run.Monitor.stats(Id).PhaseChanges, 1u)
        << Run.Monitor.regions()[Id].Name;
    EXPECT_GT(Run.Monitor.stats(Id).stableFraction(), 0.7);
  }
}

TEST(Integration, BottleneckShiftIsALocalPhaseChange) {
  FullRun Run("synthetic.bottleneck", 45'000);
  ASSERT_EQ(Run.Monitor.activeRegionIds().size(), 1u);
  const core::RegionStats &S = Run.Monitor.stats(0);
  // Enter stable, exit at the shift, re-enter: exactly 3 transitions.
  EXPECT_EQ(S.PhaseChanges, 3u);
}

TEST(Integration, McfRegionsAreLocallyStableDespiteGlobalChurn) {
  // Figs. 2/9/10: mcf's global phase churns at 45K while every monitored
  // region holds r near 1.
  FullRun Run("181.mcf", 45'000);
  EXPECT_GE(Run.Gpd.phaseChanges(), 10u);
  for (core::RegionId Id : Run.Monitor.activeRegionIds()) {
    EXPECT_LE(Run.Monitor.stats(Id).PhaseChanges, 1u)
        << Run.Monitor.regions()[Id].Name;
    EXPECT_GT(Run.Monitor.stats(Id).stableFraction(), 0.9)
        << Run.Monitor.regions()[Id].Name;
  }
}

TEST(Integration, GapUcrStaysHighDespiteFormationTriggers) {
  // Figs. 6/7: gap's interpreter cycles can never be claimed.
  FullRun Run("254.gap", 45'000);
  std::span<const double> History = Run.Monitor.ucrHistory();
  const std::vector<double> Ucr(History.begin(), History.end());
  EXPECT_GT(median(Ucr), 0.30);
  EXPECT_GT(Run.Monitor.formationTriggers(), Run.Monitor.intervals() / 2)
      << "formation keeps triggering";
}

TEST(Integration, GapHasOneStableAndOneUnstableRegion) {
  // Fig. 11: 7ba2c-7ba78 is stable; 8d25c-8d314 keeps changing phase.
  FullRun Run("254.gap", 45'000);
  std::uint64_t StableChanges = ~0ull, UnstableChanges = 0;
  for (core::RegionId Id : Run.Monitor.activeRegionIds()) {
    const std::string &Name = Run.Monitor.regions()[Id].Name;
    if (Name == "7ba2c-7ba78")
      StableChanges = Run.Monitor.stats(Id).PhaseChanges;
    if (Name == "8d25c-8d314")
      UnstableChanges = Run.Monitor.stats(Id).PhaseChanges;
  }
  EXPECT_LE(StableChanges, 2u);
  EXPECT_GE(UnstableChanges, 20u);
}

TEST(Integration, FacerecGpdUnstableAcrossPeriods) {
  // Figs. 3/4/5: facerec's two-set switching keeps GPD out of stable at
  // every studied period, with many changes only at the smallest.
  const FullRun At45k("187.facerec", 45'000);
  EXPECT_GE(At45k.Gpd.phaseChanges(), 20u);
  const FullRun At900k("187.facerec", 900'000);
  EXPECT_LE(At900k.Gpd.phaseChanges(), 4u);
  EXPECT_LT(At900k.Gpd.stableFraction(), 0.2);
}

TEST(Integration, LpdChangeCountsInsensitiveToSamplingPeriod) {
  // Figs. 13/14 headline: mcf's and facerec's local phase changes barely
  // move across a 20x sampling-period range.
  for (const char *Name : {"181.mcf", "187.facerec"}) {
    const FullRun Fine(Name, 45'000);
    const FullRun Coarse(Name, 900'000);
    EXPECT_LE(Fine.totalLocalChanges(), 8u) << Name;
    EXPECT_LE(Coarse.totalLocalChanges(), 8u) << Name;
  }
}

TEST(Integration, AmmpAberrationFixedByAdaptiveThreshold) {
  // Fig. 13 / section 3.2.2: ammp's huge region flaps at 45K under the
  // fixed threshold; the size-adaptive threshold (the paper's proposed
  // future work) removes the aberration.
  const FullRun Fixed("188.ammp", 45'000);
  EXPECT_GE(Fixed.totalLocalChanges(), 40u);

  core::RegionMonitorConfig Config;
  Config.Lpd.AdaptiveThreshold = true;
  const FullRun Adaptive("188.ammp", 45'000, Config);
  EXPECT_LE(Adaptive.totalLocalChanges(), 10u);
}

TEST(Integration, DetectorsAreDeterministic) {
  const FullRun A("synthetic.periodic", 45'000);
  const FullRun B("synthetic.periodic", 45'000);
  EXPECT_EQ(A.Gpd.phaseChanges(), B.Gpd.phaseChanges());
  EXPECT_EQ(A.totalLocalChanges(), B.totalLocalChanges());
  EXPECT_EQ(A.Monitor.regions().size(), B.Monitor.regions().size());
}

TEST(Integration, AttributionStrategyDoesNotChangeResults) {
  // Fig. 16's precondition: list and interval-tree attribution are
  // behaviourally identical; only cost differs.
  core::RegionMonitorConfig ListConfig;
  ListConfig.Attribution = core::AttributorKind::List;
  const FullRun WithList("254.gap", 45'000, ListConfig);
  const FullRun WithTree("254.gap", 45'000);
  EXPECT_EQ(WithList.totalLocalChanges(), WithTree.totalLocalChanges());
  EXPECT_EQ(WithList.Monitor.regions().size(),
            WithTree.Monitor.regions().size());
  ASSERT_EQ(WithList.Monitor.ucrHistory().size(),
            WithTree.Monitor.ucrHistory().size());
  for (std::size_t I = 0; I < WithList.Monitor.ucrHistory().size(); ++I)
    ASSERT_DOUBLE_EQ(WithList.Monitor.ucrHistory()[I],
                     WithTree.Monitor.ucrHistory()[I]);
}

} // namespace
