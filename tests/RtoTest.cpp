//===- tests/RtoTest.cpp - Runtime-optimizer simulation -------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rto/Harness.h"

#include "rto/TraceDeployments.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace regmon;
using namespace regmon::rto;

namespace {

RtoConfig fastConfig() {
  RtoConfig Config;
  Config.Sampling.PeriodCycles = 45'000;
  return Config;
}

TEST(OptimizationModel, MatchedProfileYieldsSpeedup) {
  OptimizationModel M({LoopOpportunity{0.2, 0.95}});
  EXPECT_DOUBLE_EQ(M.factor(0, 3, 3), 1.0 / 0.8);
}

TEST(OptimizationModel, MismatchedProfileYieldsPenalty) {
  OptimizationModel M({LoopOpportunity{0.2, 0.95}});
  EXPECT_DOUBLE_EQ(M.factor(0, 1, 2), 0.95);
}

TEST(Harness, UnoptimizedCyclesEqualWork) {
  const workloads::Workload W = workloads::make("synthetic.steady");
  const RtoResult R =
      runUnoptimized(W.Prog, W.Script, /*Seed=*/3, fastConfig());
  EXPECT_DOUBLE_EQ(R.TotalWork, W.Script.totalWork());
  EXPECT_EQ(R.TotalCycles, static_cast<Cycles>(R.TotalWork));
}

TEST(Harness, BothOptimizersExecuteAllWork) {
  const workloads::Workload W = workloads::make("synthetic.periodic");
  const OptimizationModel Model = W.model();
  const RtoResult Orig =
      runOriginal(W.Prog, W.Script, Model, 3, fastConfig());
  const RtoResult Lpd = runLocal(W.Prog, W.Script, Model, 3, fastConfig());
  EXPECT_DOUBLE_EQ(Orig.TotalWork, W.Script.totalWork());
  EXPECT_DOUBLE_EQ(Lpd.TotalWork, W.Script.totalWork());
}

TEST(Harness, OptimizationBeatsBaselineOnSteadyWorkload) {
  // A steady workload: both strategies should deploy and beat the
  // unoptimized run.
  const workloads::Workload W = workloads::make("synthetic.steady");
  const OptimizationModel Model = W.model();
  const RtoResult Base =
      runUnoptimized(W.Prog, W.Script, 3, fastConfig());
  const RtoResult Orig =
      runOriginal(W.Prog, W.Script, Model, 3, fastConfig());
  const RtoResult Lpd = runLocal(W.Prog, W.Script, Model, 3, fastConfig());
  EXPECT_LT(Orig.TotalCycles, Base.TotalCycles);
  EXPECT_LT(Lpd.TotalCycles, Base.TotalCycles);
  EXPECT_GT(Orig.Patches, 0u);
  EXPECT_GT(Lpd.Patches, 0u);
}

TEST(Harness, LpdBeatsOrigOnGloballyChaoticWorkload) {
  // synthetic.periodic toggles two far-apart region sets every 100M work:
  // at a small sampling period GPD keeps losing stability while every
  // region is locally steady -- the paper's core claim in miniature.
  const workloads::Workload W = workloads::make("synthetic.periodic");
  const OptimizationModel Model = W.model();
  const RtoResult Orig =
      runOriginal(W.Prog, W.Script, Model, 3, fastConfig());
  const RtoResult Lpd = runLocal(W.Prog, W.Script, Model, 3, fastConfig());
  EXPECT_GT(speedupPercent(Orig, Lpd), 1.0);
  EXPECT_GT(Lpd.StableFraction, Orig.StableFraction);
}

TEST(Harness, SpeedupPercentIsRatioMinusOne) {
  RtoResult A, B;
  A.TotalCycles = 120;
  B.TotalCycles = 100;
  EXPECT_DOUBLE_EQ(speedupPercent(A, B), 20.0);
  EXPECT_DOUBLE_EQ(speedupPercent(B, B), 0.0);
}

TEST(Harness, DeterministicAcrossRuns) {
  const workloads::Workload W = workloads::make("synthetic.periodic");
  const OptimizationModel Model = W.model();
  const RtoResult A = runLocal(W.Prog, W.Script, Model, 5, fastConfig());
  const RtoResult B = runLocal(W.Prog, W.Script, Model, 5, fastConfig());
  EXPECT_EQ(A.TotalCycles, B.TotalCycles);
  EXPECT_EQ(A.Patches, B.Patches);
}

struct DeploymentsFixture {
  workloads::Workload W = workloads::make("synthetic.bottleneck");
  OptimizationModel Model{W.Opportunities};
  sim::Engine Eng{W.Prog, W.Script, 1};
};

TEST(TraceDeployments, DeployTrainsOnActiveProfile) {
  DeploymentsFixture F;
  TraceDeployments T(F.Eng, F.Model, /*PatchOverheadCycles=*/1000);
  EXPECT_FALSE(T.deployed(0));
  EXPECT_TRUE(T.deploy(0));
  EXPECT_TRUE(T.deployed(0));
  EXPECT_EQ(T.patches(), 1u);
  // Matched profile: the engine runs the loop faster.
  EXPECT_DOUBLE_EQ(F.Eng.speedup(0), 1.0 / 0.9);
  // Patch overhead hit the cycle clock without advancing work.
  EXPECT_EQ(F.Eng.cycles(), 1000u);
  EXPECT_DOUBLE_EQ(F.Eng.work(), 0.0);
}

TEST(TraceDeployments, DeployIsIdempotent) {
  DeploymentsFixture F;
  TraceDeployments T(F.Eng, F.Model, 1000);
  T.deploy(0);
  EXPECT_TRUE(T.deploy(0));
  EXPECT_EQ(T.patches(), 1u) << "second deploy is a no-op";
}

TEST(TraceDeployments, UnpatchRestoresBaseline) {
  DeploymentsFixture F;
  TraceDeployments T(F.Eng, F.Model, 1000);
  T.deploy(0);
  T.unpatch(0);
  EXPECT_FALSE(T.deployed(0));
  EXPECT_DOUBLE_EQ(F.Eng.speedup(0), 1.0);
  EXPECT_EQ(T.unpatches(), 1u);
  T.unpatch(0);
  EXPECT_EQ(T.unpatches(), 1u) << "unpatching nothing is free";
}

TEST(TraceDeployments, RefreshAppliesMismatchPenalty) {
  // synthetic.bottleneck switches the loop's profile at half-run; a trace
  // trained on the first profile turns harmful after the switch
  // (MismatchFactor 0.95).
  DeploymentsFixture F;
  TraceDeployments T(F.Eng, F.Model, 0);
  T.deploy(0);
  ASSERT_DOUBLE_EQ(F.Eng.speedup(0), 1.0 / 0.9);
  // Advance past the profile switch at 1G work.
  ASSERT_TRUE(F.Eng.advanceAndSample(1'200'000'000).has_value());
  T.refresh();
  EXPECT_DOUBLE_EQ(F.Eng.speedup(0), 0.95);
  EXPECT_EQ(T.harmfulStreak(0), 1u);
  T.refresh();
  EXPECT_EQ(T.harmfulStreak(0), 2u);
  T.unpatch(0);
  EXPECT_EQ(T.harmfulStreak(0), 0u);
}

TEST(TraceDeployments, UnpatchAllClearsEverything) {
  const workloads::Workload W = workloads::make("synthetic.steady");
  const OptimizationModel Model(W.Opportunities);
  sim::Engine Eng(W.Prog, W.Script, 1);
  TraceDeployments T(Eng, Model, 0);
  T.deploy(0);
  T.deploy(1);
  T.unpatchAll();
  EXPECT_FALSE(T.deployed(0));
  EXPECT_FALSE(T.deployed(1));
  EXPECT_EQ(T.unpatches(), 2u);
}

TEST(Harness, SelfMonitoringUndoesHarmfulTraces) {
  // With self-monitoring, LPD must never end up slower than baseline on
  // the bottleneck-shift workload even though its trace turns harmful.
  const workloads::Workload W = workloads::make("synthetic.bottleneck");
  const OptimizationModel Model = W.model();
  RtoConfig Config = fastConfig();
  Config.SelfMonitorHarmIntervals = 2;
  const RtoResult Lpd = runLocal(W.Prog, W.Script, Model, 3, Config);
  const RtoResult Base =
      runUnoptimized(W.Prog, W.Script, 3, Config);
  EXPECT_LT(Lpd.TotalCycles,
            Base.TotalCycles + static_cast<Cycles>(1e7))
      << "harmful phase must be cut short";
}

} // namespace
