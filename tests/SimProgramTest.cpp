//===- tests/SimProgramTest.cpp - Program model ---------------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Program.h"

#include "sim/ProgramCodeMap.h"

#include <gtest/gtest.h>

using namespace regmon;
using namespace regmon::sim;

namespace {

Program makeNestedProgram() {
  ProgramBuilder B("nested");
  const auto P = B.addProcedure("main", 0x1000, 0x3000);
  const LoopId Outer = B.addLoop(P, 0x1100, 0x1a00);
  const LoopId Inner = B.addLoop(P, 0x1400, 0x1500);
  const LoopId NonReg = B.addLoop(P, 0x2000, 0x2100, /*Regionable=*/false);
  B.addHotSpotProfile(Outer, 1.0, {});
  B.addHotSpotProfile(Inner, 1.0, {});
  B.addHotSpotProfile(NonReg, 1.0, {});
  return B.build();
}

TEST(Program, BuilderAssignsDenseLoopIds) {
  const Program P = makeNestedProgram();
  ASSERT_EQ(P.loops().size(), 3u);
  for (std::uint32_t I = 0; I < 3; ++I)
    EXPECT_EQ(P.loop(I).Id, I);
}

TEST(Program, LoopNamesUseHexBounds) {
  const Program P = makeNestedProgram();
  EXPECT_EQ(P.loop(0).Name, "1100-1a00");
  EXPECT_EQ(P.loop(1).Name, "1400-1500");
}

TEST(Program, InstrCount) {
  const Program P = makeNestedProgram();
  EXPECT_EQ(P.loop(1).instrCount(), (0x1500u - 0x1400u) / 4);
}

TEST(Program, LoopContainingReturnsInnermost) {
  const Program P = makeNestedProgram();
  EXPECT_EQ(P.loopContaining(0x1450).value(), 1u) << "inner loop wins";
  EXPECT_EQ(P.loopContaining(0x1200).value(), 0u);
  EXPECT_EQ(P.loopContaining(0x2050).value(), 2u);
  EXPECT_FALSE(P.loopContaining(0x2f00).has_value());
  EXPECT_FALSE(P.loopContaining(0x0).has_value());
}

TEST(Program, ProfileWeightsCoverLoop) {
  ProgramBuilder B("p");
  const auto Proc = B.addProcedure("f", 0, 0x100);
  const LoopId L = B.addLoop(Proc, 0, 0x40); // 16 instructions
  const ProfileId Prof =
      B.addHotSpotProfile(L, 0.5, {{std::pair<std::size_t, double>{3, 10.0}}});
  const Program P = B.build();
  const auto W = P.profile(L, Prof);
  ASSERT_EQ(W.size(), 16u);
  EXPECT_DOUBLE_EQ(W[3], 10.5);
  EXPECT_DOUBLE_EQ(W[0], 0.5);
}

TEST(Program, ShiftedProfileRotates) {
  ProgramBuilder B("p");
  const auto Proc = B.addProcedure("f", 0, 0x100);
  const LoopId L = B.addLoop(Proc, 0, 0x28); // 10 instructions
  const ProfileId Base =
      B.addHotSpotProfile(L, 1.0, {{std::pair<std::size_t, double>{2, 9.0}}});
  const ProfileId Right = B.addShiftedProfile(L, Base, 1);
  const ProfileId WrapAround = B.addShiftedProfile(L, Base, 9);
  const Program P = B.build();
  EXPECT_DOUBLE_EQ(P.profile(L, Right)[3], 10.0);
  EXPECT_DOUBLE_EQ(P.profile(L, Right)[2], 1.0);
  EXPECT_DOUBLE_EQ(P.profile(L, WrapAround)[1], 10.0);
}

TEST(Program, ShiftedProfileNegativeDelta) {
  ProgramBuilder B("p");
  const auto Proc = B.addProcedure("f", 0, 0x100);
  const LoopId L = B.addLoop(Proc, 0, 0x28);
  const ProfileId Base =
      B.addHotSpotProfile(L, 1.0, {{std::pair<std::size_t, double>{0, 9.0}}});
  const ProfileId Left = B.addShiftedProfile(L, Base, -1);
  const Program P = B.build();
  EXPECT_DOUBLE_EQ(P.profile(L, Left)[9], 10.0) << "wraps backwards";
}

TEST(Program, ProfileCount) {
  const Program P = makeNestedProgram();
  EXPECT_EQ(P.profileCount(0), 1u);
}

TEST(ProgramCodeMap, ResolvesRegionableLoop) {
  const Program P = makeNestedProgram();
  const ProgramCodeMap Map(P);
  const auto Info = Map.regionFor(0x1450);
  ASSERT_TRUE(Info.has_value());
  EXPECT_EQ(Info->Start, 0x1400u) << "innermost regionable loop";
  EXPECT_EQ(Info->End, 0x1500u);
  EXPECT_EQ(Info->Name, "1400-1500");
}

TEST(ProgramCodeMap, NonRegionableResolvesToNothing) {
  const Program P = makeNestedProgram();
  const ProgramCodeMap Map(P);
  EXPECT_FALSE(Map.regionFor(0x2050).has_value());
  EXPECT_FALSE(Map.regionFor(0x2f00).has_value()) << "straight-line code";
}

TEST(ProgramCodeMap, OuterRegionableClaimsNestedNonRegionable) {
  ProgramBuilder B("p");
  const auto Proc = B.addProcedure("f", 0x1000, 0x2000);
  const LoopId Outer = B.addLoop(Proc, 0x1000, 0x1800);
  const LoopId Inner =
      B.addLoop(Proc, 0x1200, 0x1300, /*Regionable=*/false);
  B.addHotSpotProfile(Outer, 1.0, {});
  B.addHotSpotProfile(Inner, 1.0, {});
  const Program P = B.build();
  const ProgramCodeMap Map(P);
  const auto Info = Map.regionFor(0x1250);
  ASSERT_TRUE(Info.has_value());
  EXPECT_EQ(Info->Start, 0x1000u)
      << "skips the non-regionable inner loop, claims the outer";
}

} // namespace
