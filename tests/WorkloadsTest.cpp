//===- tests/WorkloadsTest.cpp - Workload catalogue -----------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace regmon;
using namespace regmon::workloads;

namespace {

TEST(Workloads, CatalogueNamesAreUniqueAndExist) {
  const auto &Names = allNames();
  EXPECT_GE(Names.size(), 31u);
  const std::set<std::string> Unique(Names.begin(), Names.end());
  EXPECT_EQ(Unique.size(), Names.size());
  for (const std::string &Name : Names)
    EXPECT_TRUE(exists(Name)) << Name;
  EXPECT_FALSE(exists("999.nonesuch"));
}

TEST(Workloads, FigureSelectionsAreSubsets) {
  const std::set<std::string> All(allNames().begin(), allNames().end());
  for (const auto *List :
       {&fig3Names(), &fig6Names(), &fig13Names(), &fig17Names()})
    for (const std::string &Name : *List)
      EXPECT_TRUE(All.count(Name)) << Name;
  EXPECT_EQ(fig3Names().size(), 21u);
  EXPECT_EQ(fig6Names().size(), 23u);
  EXPECT_EQ(fig13Names().size(), 8u);
  EXPECT_EQ(fig17Names().size(), 4u);
}

/// Structural validity of every catalogued workload.
class WorkloadValidityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadValidityTest, BuildsConsistently) {
  const Workload W = make(GetParam());
  EXPECT_EQ(W.Name, GetParam());
  EXPECT_FALSE(W.Prog.loops().empty());
  EXPECT_TRUE(W.Script.validateAgainst(W.Prog));
  EXPECT_GT(W.Script.totalWork(), 0.0);
  ASSERT_EQ(W.Opportunities.size(), W.Prog.loops().size())
      << "every loop needs optimization ground truth";
  for (const auto &Opp : W.Opportunities) {
    EXPECT_GE(Opp.StallFraction, 0.0);
    EXPECT_LT(Opp.StallFraction, 1.0);
    EXPECT_GT(Opp.MismatchFactor, 0.0);
    EXPECT_LE(Opp.MismatchFactor, 1.0);
  }
}

TEST_P(WorkloadValidityTest, LoopsLieInsideProcedures) {
  const Workload W = make(GetParam());
  for (const sim::Loop &L : W.Prog.loops()) {
    const sim::Procedure &P = W.Prog.procedures()[L.ProcIndex];
    EXPECT_GE(L.Start, P.Start) << L.Name;
    EXPECT_LE(L.End, P.End) << L.Name;
    EXPECT_EQ(L.Start % InstrBytes, 0u);
    EXPECT_EQ(L.End % InstrBytes, 0u);
  }
}

TEST_P(WorkloadValidityTest, MixWeightsArePositiveFractions) {
  const Workload W = make(GetParam());
  for (const sim::Mix &M : W.Script.mixes()) {
    EXPECT_FALSE(M.Components.empty());
    const double Total = M.totalWeight();
    EXPECT_NEAR(Total, 1.0, 0.05) << "mixes should be ~normalized";
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadValidityTest,
                         ::testing::ValuesIn(allNames()),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           std::replace(Name.begin(), Name.end(), '.', '_');
                           return Name;
                         });

TEST(Workloads, McfUsesThePaperRegionNames) {
  const Workload W = make("181.mcf");
  std::set<std::string> Names;
  for (const sim::Loop &L : W.Prog.loops())
    Names.insert(L.Name);
  EXPECT_TRUE(Names.count("13134-133d4"));
  EXPECT_TRUE(Names.count("142c8-14318"));
  EXPECT_TRUE(Names.count("146f0-14770"));
}

TEST(Workloads, GapUsesThePaperRegionNames) {
  const Workload W = make("254.gap");
  std::set<std::string> Names;
  for (const sim::Loop &L : W.Prog.loops())
    Names.insert(L.Name);
  EXPECT_TRUE(Names.count("7ba2c-7ba78"));
  EXPECT_TRUE(Names.count("8d25c-8d314"));
}

TEST(Workloads, GapAndCraftyHaveNonRegionableHotCode) {
  for (const char *Name : {"254.gap", "186.crafty"}) {
    const Workload W = make(Name);
    const bool HasNonRegionable = std::any_of(
        W.Prog.loops().begin(), W.Prog.loops().end(),
        [](const sim::Loop &L) { return !L.Regionable; });
    EXPECT_TRUE(HasNonRegionable) << Name;
  }
}

TEST(Workloads, AmmpHasOneVeryLargeLoop) {
  const Workload W = make("188.ammp");
  const bool HasHuge = std::any_of(
      W.Prog.loops().begin(), W.Prog.loops().end(),
      [](const sim::Loop &L) { return L.instrCount() >= 512; });
  EXPECT_TRUE(HasHuge) << "the Fig. 13 granularity-breakdown region";
}

TEST(Workloads, Fig17SubjectsHavePaperStallFractions) {
  // [13]'s reported speedups imply these removable stall fractions.
  const Workload Mgrid = make("172.mgrid");
  EXPECT_NEAR(Mgrid.Opportunities[0].StallFraction, 0.074, 1e-9);
  const Workload Fma3d = make("191.fma3d");
  EXPECT_NEAR(Fma3d.Opportunities[0].StallFraction, 0.138, 1e-9);
  const Workload Mcf = make("181.mcf");
  EXPECT_NEAR(Mcf.Opportunities[0].StallFraction, 0.30, 1e-9);
}

TEST(Workloads, SyntheticWorkloadsAreSmall) {
  for (const char *Name :
       {"synthetic.steady", "synthetic.periodic", "synthetic.bottleneck"}) {
    const Workload W = make(Name);
    EXPECT_LE(W.Script.totalWork(), 16e9) << Name << " must run quickly";
  }
}

} // namespace
