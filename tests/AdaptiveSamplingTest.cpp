//===- tests/AdaptiveSamplingTest.cpp - Adaptive period controller --------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The adaptive sampling controller (DESIGN.md §16), unit and integration:
// the ratchet's transition rules, the adaptive-off path's bit-identity
// with a service that never had controllers, and the adaptive-on path's
// bit-identity through checkpoint/restore and flight-recorder replay --
// the determinism contract that makes a dynamic sampling period safe to
// deploy in a replay-debugged system.
//
//===----------------------------------------------------------------------===//

#include "sampling/AdaptiveController.h"

#include "core/RegionMonitor.h"
#include "obs/Export.h"
#include "obs/Metrics.h"
#include "persist/Checkpoint.h"
#include "persist/Io.h"
#include "persist/StateCodec.h"
#include "sampling/Sampler.h"
#include "service/MonitorService.h"
#include "sim/Engine.h"
#include "sim/ProgramCodeMap.h"
#include "trace/Recorder.h"
#include "trace/Replay.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

using namespace regmon;
using namespace regmon::sampling;
using namespace regmon::service;

namespace {

StreamFeedback stable(double Ucr = 0.0) {
  StreamFeedback F;
  F.AllRegionsStable = true;
  F.UcrFraction = Ucr;
  return F;
}

AdaptiveConfig enabledConfig() {
  AdaptiveConfig Cfg;
  Cfg.Enabled = true;
  Cfg.MaxScaleLog2 = 3;
  Cfg.StableIntervalsPerStep = 2;
  return Cfg;
}

/// Steps \p C up to \p Level with all-stable feedback.
void rampTo(AdaptiveController &C, std::uint32_t Level) {
  while (C.scaleLog2() < Level)
    (void)C.observe(stable());
  ASSERT_EQ(C.scaleLog2(), Level);
}

TEST(AdaptiveController, DisabledControllerIsInert) {
  AdaptiveController C; // default config: disabled
  const auto encoded = [](const AdaptiveController &Ctl) {
    persist::ByteWriter W;
    persist::StateCodec::encode(W, Ctl);
    return W.take();
  };
  const std::vector<std::uint8_t> Fresh = encoded(C);
  StreamFeedback F;
  F.PhaseChanged = true;
  F.UcrFraction = 0.9;
  F.Healthy = false;
  for (int I = 0; I < 5; ++I) {
    C.noteSamples(1000);
    EXPECT_EQ(C.observe(F), AdaptiveDecision::Hold);
    EXPECT_EQ(C.observe(stable()), AdaptiveDecision::Hold);
  }
  EXPECT_EQ(C.scaleLog2(), 0U);
  EXPECT_EQ(C.samplesSaved(), 0U);
  EXPECT_EQ(encoded(C), Fresh) << "a disabled controller mutated state";
}

TEST(AdaptiveController, LengthenStepsOncePerCompletedStreak) {
  AdaptiveController C(enabledConfig());
  // Step requires 2 consecutive stable intervals: Hold, Lengthen, ...
  for (std::uint32_t Step = 1; Step <= 3; ++Step) {
    EXPECT_EQ(C.observe(stable()), AdaptiveDecision::Hold);
    EXPECT_EQ(C.stableStreak(), 1U);
    EXPECT_EQ(C.observe(stable()), AdaptiveDecision::Lengthen);
    EXPECT_EQ(C.scaleLog2(), Step);
    EXPECT_EQ(C.stableStreak(), 0U);
  }
  // At MaxScaleLog2 the ratchet holds; the streak does not keep banking.
  for (int I = 0; I < 6; ++I)
    EXPECT_EQ(C.observe(stable()), AdaptiveDecision::Hold);
  EXPECT_EQ(C.scaleLog2(), 3U);
  EXPECT_EQ(C.stableStreak(), 0U);
  EXPECT_EQ(C.lengthens(), 3U);
  EXPECT_EQ(C.currentPeriodCycles(), 45'000U << 3);
}

TEST(AdaptiveController, InstabilitySnapsToBaseInOneInterval) {
  const auto tightensOn = [](StreamFeedback Trigger, const char *What) {
    AdaptiveController C(enabledConfig());
    rampTo(C, 3);
    EXPECT_EQ(C.observe(Trigger), AdaptiveDecision::Tighten) << What;
    EXPECT_EQ(C.scaleLog2(), 0U) << What << ": snap must be total, not -1";
    EXPECT_EQ(C.stableStreak(), 0U) << What;
    EXPECT_EQ(C.tightens(), 1U) << What;
    // Already at base: the same trigger again is a Hold, not a second
    // tighten transition.
    EXPECT_EQ(C.observe(Trigger), AdaptiveDecision::Hold) << What;
    EXPECT_EQ(C.tightens(), 1U) << What;
  };
  StreamFeedback Phase = stable();
  Phase.PhaseChanged = true;
  tightensOn(Phase, "phase change");
  StreamFeedback Sick = stable();
  Sick.Healthy = false;
  tightensOn(Sick, "health degradation");
}

TEST(AdaptiveController, UcrSpikeComparesAgainstPreviousInterval) {
  AdaptiveController C(enabledConfig()); // delta 0.10
  // The first interval has no predecessor: a high absolute UCR is not a
  // spike, only a rise is.
  EXPECT_EQ(C.observe(stable(0.5)), AdaptiveDecision::Hold);
  EXPECT_EQ(C.observe(stable(0.55)), AdaptiveDecision::Lengthen);
  // Gradual drift below the delta never tightens...
  for (double U = 0.55; U > 0.1; U -= 0.05)
    EXPECT_NE(C.observe(stable(U)), AdaptiveDecision::Tighten) << U;
  // ...nor does a fall, however steep...
  EXPECT_NE(C.observe(stable(0.0)), AdaptiveDecision::Tighten);
  ASSERT_GT(C.scaleLog2(), 0U);
  // ...but an interval-over-interval rise >= delta snaps to base.
  EXPECT_EQ(C.observe(stable(0.10)), AdaptiveDecision::Tighten);
  EXPECT_EQ(C.scaleLog2(), 0U);
}

TEST(AdaptiveController, UnstableRegionsResetTheStreakWithoutTightening) {
  AdaptiveController C(enabledConfig());
  rampTo(C, 2);
  EXPECT_EQ(C.observe(stable()), AdaptiveDecision::Hold); // streak 1
  StreamFeedback Unstable;
  Unstable.AllRegionsStable = false;
  EXPECT_EQ(C.observe(Unstable), AdaptiveDecision::Hold);
  EXPECT_EQ(C.scaleLog2(), 2U) << "mere non-stability is not instability";
  EXPECT_EQ(C.stableStreak(), 0U) << "the banked interval is forfeited";
  // The full streak is needed again from scratch.
  EXPECT_EQ(C.observe(stable()), AdaptiveDecision::Hold);
  EXPECT_EQ(C.observe(stable()), AdaptiveDecision::Lengthen);
}

TEST(AdaptiveController, ConstructorNormalizesDegenerateConfig) {
  AdaptiveConfig Cfg;
  Cfg.Enabled = true;
  Cfg.BasePeriodCycles = 0;
  Cfg.MaxScaleLog2 = 99;
  Cfg.StableIntervalsPerStep = 0;
  Cfg.UcrSpikeDelta = -0.5;
  AdaptiveController C(Cfg);
  EXPECT_EQ(C.config().BasePeriodCycles, 1U);
  EXPECT_EQ(C.config().MaxScaleLog2,
            AdaptiveController::MaxSupportedScaleLog2);
  EXPECT_EQ(C.config().StableIntervalsPerStep, 1U);
  EXPECT_EQ(C.config().UcrSpikeDelta, 0.0);
  // Step 1: every stable interval lengthens.
  EXPECT_EQ(C.observe(stable()), AdaptiveDecision::Lengthen);
  // Delta 0: any rise at all is a spike.
  EXPECT_EQ(C.observe(stable(1e-9)), AdaptiveDecision::Tighten);

  Cfg.UcrSpikeDelta = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(AdaptiveController(Cfg).config().UcrSpikeDelta, 0.0);
  Cfg.UcrSpikeDelta = 7.0;
  EXPECT_EQ(AdaptiveController(Cfg).config().UcrSpikeDelta, 1.0);
}

TEST(AdaptiveController, SamplesSavedCountsForegoneBaseRateSamples) {
  AdaptiveController C(enabledConfig());
  C.noteSamples(100);
  EXPECT_EQ(C.samplesSaved(), 0U) << "base rate saves nothing";
  rampTo(C, 1);
  C.noteSamples(100); // each kept sample stands in for 2: saves 100
  EXPECT_EQ(C.samplesSaved(), 100U);
  rampTo(C, 3);
  C.noteSamples(10); // 2^3 - 1 = 7 saved per kept sample
  EXPECT_EQ(C.samplesSaved(), 170U);
  C.reset();
  EXPECT_EQ(C.samplesSaved(), 0U);
  EXPECT_EQ(C.scaleLog2(), 0U);
}

//===----------------------------------------------------------------------===//
// Service integration
//===----------------------------------------------------------------------===//

std::string scratchDir(const std::string &Tag) {
  static int Counter = 0;
  const std::string Dir = ::testing::TempDir() + "regmon_adaptive_" +
                          std::to_string(::getpid()) + "_" + Tag + "_" +
                          std::to_string(Counter++);
  std::filesystem::remove_all(Dir);
  EXPECT_TRUE(persist::ensureDir(Dir));
  return Dir;
}

struct RecordedStream {
  std::unique_ptr<workloads::Workload> W;
  std::unique_ptr<sim::ProgramCodeMap> Map;
  std::vector<std::vector<Sample>> Intervals;
};

RecordedStream record(const std::string &Name, std::uint64_t Seed) {
  RecordedStream S;
  S.W = std::make_unique<workloads::Workload>(workloads::make(Name));
  S.Map = std::make_unique<sim::ProgramCodeMap>(S.W->Prog);
  sim::Engine Engine(S.W->Prog, S.W->Script, Seed);
  sampling::Sampler Sampler(Engine, {45'000, 2032});
  S.Intervals = Sampler.collectIntervals();
  return S;
}

std::vector<RecordedStream> smallFleet() {
  std::vector<RecordedStream> Fleet;
  Fleet.push_back(record("synthetic.steady", 1));
  Fleet.push_back(record("synthetic.periodic", 2));
  return Fleet;
}

std::vector<SampleBatch> roundRobin(const std::vector<RecordedStream> &Fleet) {
  std::vector<SampleBatch> Batches;
  std::size_t MaxIntervals = 0;
  for (const RecordedStream &S : Fleet)
    MaxIntervals = std::max(MaxIntervals, S.Intervals.size());
  for (std::size_t I = 0; I < MaxIntervals; ++I)
    for (StreamId Id = 0; Id < Fleet.size(); ++Id)
      if (I < Fleet[Id].Intervals.size())
        Batches.push_back({Id, Fleet[Id].Intervals[I]});
  return Batches;
}

/// An Inline (worker-less) service: the submitting thread is the only
/// mutator, so monitors and controllers stay inspectable between submits.
ServiceConfig inlineConfig(AdaptiveConfig Adaptive = {}) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.QueueCapacity = 64;
  Cfg.Inline = true;
  Cfg.Adaptive = Adaptive;
  return Cfg;
}

/// The bench/service operating point: aggressive enough that the steady
/// workloads actually climb the ratchet within a test-sized run.
AdaptiveConfig serviceAdaptive() {
  AdaptiveConfig Cfg;
  Cfg.Enabled = true;
  Cfg.MaxScaleLog2 = 4;
  Cfg.StableIntervalsPerStep = 2;
  return Cfg;
}

std::unique_ptr<MonitorService>
makeService(const std::vector<RecordedStream> &Fleet,
            const ServiceConfig &Cfg) {
  auto Service = std::make_unique<MonitorService>(Cfg);
  for (const RecordedStream &S : Fleet)
    Service->addStream(*S.Map);
  return Service;
}

// The adaptive-off contract: a service with the controller disabled (the
// default config) processes every stream exactly like bare RegionMonitors
// fed the same intervals -- bit-identical encoded monitor state, zeroed
// controller series -- so shipping the controller changes nothing until a
// config turns it on.
TEST(AdaptiveService, DisabledControllerServiceMatchesBareMonitors) {
  const std::vector<RecordedStream> Fleet = smallFleet();
  const std::vector<SampleBatch> Batches = roundRobin(Fleet);
  auto Service = makeService(Fleet, inlineConfig());
  Service->start();
  for (const SampleBatch &B : Batches)
    ASSERT_TRUE(Service->submit(B));
  Service->stop();

  for (StreamId Id = 0; Id < Fleet.size(); ++Id) {
    SCOPED_TRACE("stream " + std::to_string(Id));
    core::RegionMonitor Bare(*Fleet[Id].Map);
    for (const std::vector<Sample> &Interval : Fleet[Id].Intervals)
      Bare.observeInterval(Interval);
    persist::ByteWriter WBare, WSvc;
    persist::StateCodec::encode(WBare, Bare);
    persist::StateCodec::encode(WSvc, Service->monitor(Id));
    EXPECT_EQ(WSvc.take(), WBare.take())
        << "an inert controller perturbed monitor state";
    EXPECT_EQ(Service->recommendedPeriodCycles(Id), 45'000U);
  }
  const ServiceSnapshot Snap = Service->snapshot();
  EXPECT_EQ(Snap.SamplesSaved, 0U);
  for (const StreamSnapshot &S : Snap.Streams) {
    EXPECT_EQ(S.PeriodScaleLog2, 0U);
    EXPECT_EQ(S.ControllerLengthens, 0U);
    EXPECT_EQ(S.ControllerTightens, 0U);
  }
}

// The enabled controller must actually climb on steady workloads, expose
// its state through snapshot/accessors, and publish its metric series.
TEST(AdaptiveService, EnabledControllerClimbsAndExposesState) {
  const std::vector<RecordedStream> Fleet = smallFleet();
  const std::vector<SampleBatch> Batches = roundRobin(Fleet);
  auto Service = makeService(Fleet, inlineConfig(serviceAdaptive()));
  obs::MetricsRegistry Registry;
  Service->attachObservability(Registry, nullptr);
  Service->start();
  for (const SampleBatch &B : Batches)
    ASSERT_TRUE(Service->submit(B));
  Service->stop();

  const ServiceSnapshot Snap = Service->snapshot();
  EXPECT_GT(Snap.SamplesSaved, 0U)
      << "no stream ever left the base period: the tentpole is vacuous";
  std::uint64_t Lengthens = 0;
  for (const StreamSnapshot &S : Snap.Streams) {
    Lengthens += S.ControllerLengthens;
    const AdaptiveController &Ctl = Service->controller(S.Stream);
    EXPECT_EQ(Ctl.scaleLog2(), S.PeriodScaleLog2);
    EXPECT_EQ(Ctl.samplesSaved(), S.SamplesSaved);
    EXPECT_EQ(Service->recommendedPeriodCycles(S.Stream),
              scaledPeriod(45'000, S.PeriodScaleLog2));
  }
  EXPECT_GT(Lengthens, 0U);
  const std::string Prom = obs::exportPrometheus(Registry);
  EXPECT_NE(Prom.find("sampling_period_current"), std::string::npos);
  EXPECT_NE(Prom.find("sampling_samples_saved_total"), std::string::npos);
  EXPECT_NE(Prom.find("sampling_lengthen_transitions_total"),
            std::string::npos);
}

// Health degradation reaches the controller: a poisoned batch degrades
// the stream at the door, and the next admitted batch's stamped health
// snaps a lengthened stream back to the base period.
TEST(AdaptiveService, DegradedAdmissionTightensTheStream) {
  std::vector<RecordedStream> Fleet;
  Fleet.push_back(record("synthetic.steady", 5));
  ServiceConfig Cfg = inlineConfig(serviceAdaptive());
  Cfg.ValidateBatches = true;
  Cfg.Health.PoisonQuarantineThreshold = 100; // degrade, never quarantine
  auto Service = makeService(Fleet, Cfg);
  Service->start();

  // Climb with clean batches until the stream leaves the base period.
  std::size_t Fed = 0;
  while (Fed < Fleet[0].Intervals.size() &&
         Service->snapshot().Streams[0].PeriodScaleLog2 == 0) {
    ASSERT_TRUE(Service->submit({0, Fleet[0].Intervals[Fed]}));
    ++Fed;
  }
  ASSERT_GT(Service->snapshot().Streams[0].PeriodScaleLog2, 0U)
      << "workload never stabilized; cannot exercise the tighten path";
  ASSERT_LT(Fed + 2, Fleet[0].Intervals.size());

  // One structurally-poisoned batch: rejected at the door, stream
  // Degraded, monitor untouched.
  std::vector<Sample> Poison = Fleet[0].Intervals[Fed];
  Poison[0].Pc += 1; // misaligned
  EXPECT_FALSE(Service->submit({0, Poison}));
  EXPECT_EQ(Service->snapshot().Streams[0].Health, StreamHealth::Degraded);

  // The next clean batch is admitted while Degraded; its stamped health
  // must tighten the controller in one interval.
  ASSERT_TRUE(Service->submit({0, Fleet[0].Intervals[Fed]}));
  const StreamSnapshot S = Service->snapshot().Streams[0];
  EXPECT_EQ(S.PeriodScaleLog2, 0U);
  EXPECT_GE(S.ControllerTightens, 1U);
  EXPECT_EQ(Service->recommendedPeriodCycles(0), 45'000U);
  Service->stop();
}

/// Runs the first \p Count batches through an uninterrupted persisted
/// adaptive service and returns its encodeState bytes.
std::vector<std::uint8_t>
adaptiveReferenceBytes(const std::vector<RecordedStream> &Fleet,
                       const std::vector<SampleBatch> &Batches,
                       std::size_t Count) {
  persist::CheckpointManager Store(scratchDir("ref"));
  auto Service = makeService(Fleet, inlineConfig(serviceAdaptive()));
  Service->attachPersistence(Store);
  EXPECT_EQ(Service->restore(), RestoreOutcome::ColdStart);
  Service->start();
  for (std::size_t I = 0; I < Count; ++I)
    (void)Service->submit(Batches[I]);
  Service->stop();
  return Service->encodeState();
}

// Checkpoint/restore with the controller mid-climb: the restored service
// must continue bit-identically to one that never restarted -- the
// controller's level, streak, UCR memory and accounts all travel.
TEST(AdaptiveService, CheckpointRestoreBitIdenticalMidClimb) {
  const std::vector<RecordedStream> Fleet = smallFleet();
  const std::vector<SampleBatch> Batches = roundRobin(Fleet);
  const std::size_t Half = Batches.size() / 2;
  const std::vector<std::uint8_t> RefHalf =
      adaptiveReferenceBytes(Fleet, Batches, Half);
  const std::vector<std::uint8_t> RefFull =
      adaptiveReferenceBytes(Fleet, Batches, Batches.size());

  const std::string Dir = scratchDir("warm");
  std::uint64_t SavedAtHalf = 0;
  {
    persist::CheckpointManager Store(Dir);
    auto Service = makeService(Fleet, inlineConfig(serviceAdaptive()));
    Service->attachPersistence(Store);
    ASSERT_EQ(Service->restore(), RestoreOutcome::ColdStart);
    Service->start();
    for (std::size_t I = 0; I < Half; ++I)
      ASSERT_TRUE(Service->submit(Batches[I]));
    Service->stop();
    SavedAtHalf = Service->snapshot().SamplesSaved;
    EXPECT_EQ(Service->encodeState(), RefHalf);
    ASSERT_TRUE(Service->checkpoint());
  }
  EXPECT_GT(SavedAtHalf, 0U) << "controller never climbed before the split";
  {
    persist::CheckpointManager Store(Dir);
    auto Service = makeService(Fleet, inlineConfig(serviceAdaptive()));
    Service->attachPersistence(Store);
    ASSERT_EQ(Service->restore(), RestoreOutcome::SnapshotOnly);
    EXPECT_EQ(Service->encodeState(), RefHalf) << "restore diverged";
    EXPECT_EQ(Service->snapshot().SamplesSaved, SavedAtHalf)
        << "controller accounts not republished after restore";
    Service->start();
    for (std::size_t I = Half; I < Batches.size(); ++I)
      ASSERT_TRUE(Service->submit(Batches[I]));
    Service->stop();
    EXPECT_EQ(Service->encodeState(), RefFull)
        << "continuation after restore diverged";
  }
}

// A snapshot taken under one adaptive config must not restore into a
// service tuned differently: the codec rejects the controller section,
// the snapshot is counted corrupt, and recovery falls back to journal
// replay -- which re-runs every decision under the *new* config.
TEST(AdaptiveService, ConfigChangeRejectsSnapshotAndReplaysJournal) {
  std::vector<RecordedStream> Fleet;
  Fleet.push_back(record("synthetic.steady", 9));
  std::vector<SampleBatch> Batches = roundRobin(Fleet);
  Batches.resize(std::min<std::size_t>(Batches.size(), 10));

  const std::string Dir = scratchDir("cfgchange");
  {
    persist::CheckpointManager Store(Dir);
    auto Service = makeService(Fleet, inlineConfig(serviceAdaptive()));
    Service->attachPersistence(Store);
    ASSERT_EQ(Service->restore(), RestoreOutcome::ColdStart);
    Service->start();
    for (const SampleBatch &B : Batches)
      ASSERT_TRUE(Service->submit(B));
    Service->stop();
    ASSERT_TRUE(Service->checkpoint());
  }
  AdaptiveConfig Retuned = serviceAdaptive();
  Retuned.StableIntervalsPerStep = 5;
  persist::CheckpointManager Store(Dir);
  auto Service = makeService(Fleet, inlineConfig(Retuned));
  Service->attachPersistence(Store);
  EXPECT_EQ(Service->restore(), RestoreOutcome::JournalOnly);
  EXPECT_EQ(Store.counters().CorruptSnapshots, 1U);
  // The journal replay re-decided under the new tuning.
  EXPECT_EQ(Service->controller(0).config().StableIntervalsPerStep, 5U);
  EXPECT_EQ(Service->snapshot().IntervalsProcessed, Batches.size());
}

// Flight-recorder replay with the controller enabled: a worker-less
// replay of the recorded submission order reproduces the period schedule
// and every controller account bit-for-bit (encodeState carries them).
TEST(AdaptiveService, TraceReplayReproducesThePeriodSchedule) {
  const std::vector<RecordedStream> Fleet = smallFleet();
  const std::vector<SampleBatch> Batches = roundRobin(Fleet);
  const std::string Trace = ::testing::TempDir() + "regmon_adaptive_" +
                            std::to_string(::getpid()) + "_trace.bin";
  std::filesystem::remove(Trace);

  std::vector<std::uint8_t> RecordedState;
  std::uint64_t RecordedSaved = 0;
  {
    auto Service = makeService(Fleet, inlineConfig(serviceAdaptive()));
    trace::TraceRecorder Recorder;
    ASSERT_TRUE(Recorder.open(Trace).Ok);
    Service->attachRecorder(Recorder);
    Service->start();
    for (const SampleBatch &B : Batches)
      ASSERT_TRUE(Service->submit(B));
    Service->stop();
    RecordedState = Service->encodeState();
    RecordedSaved = Service->snapshot().SamplesSaved;
    ASSERT_TRUE(Recorder.close());
  }
  ASSERT_GT(RecordedSaved, 0U) << "recorded run never left the base period";

  auto Replayed = makeService(Fleet, inlineConfig(serviceAdaptive()));
  const trace::FileReplay R = trace::replayTraceFile(Trace, *Replayed);
  ASSERT_TRUE(R.Replay.Ok) << "diverged at seq " << R.Replay.DivergedSeq;
  EXPECT_EQ(Replayed->encodeState(), RecordedState)
      << "replayed controller schedule diverged from the incident";
  EXPECT_EQ(Replayed->snapshot().SamplesSaved, RecordedSaved);
}

} // namespace
