//===- tests/CoreLpdTest.cpp - Local phase detector (Fig. 12) -------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/LocalPhaseDetector.h"

#include <gtest/gtest.h>

#include <vector>

using namespace regmon;
using namespace regmon::core;

namespace {

const std::vector<std::uint32_t> ShapeA = {2, 3, 90, 4, 30, 2, 3, 1};
const std::vector<std::uint32_t> ShapeB = {40, 2, 3, 2, 1, 50, 2, 9};
// ShapeA scaled up ~1.5x: same behaviour, more samples.
const std::vector<std::uint32_t> ShapeAScaled = {3, 4, 135, 6, 45, 3, 4, 2};

struct Fixture {
  PearsonSimilarity Metric;
  LocalPhaseDetector D{ShapeA.size(), Metric};
};

TEST(LocalPhaseDetector, StartsUnstable) {
  Fixture F;
  EXPECT_EQ(F.D.state(), LocalPhaseState::Unstable);
  EXPECT_EQ(F.D.phaseChanges(), 0u);
}

TEST(LocalPhaseDetector, FirstObservationOnlySeedsReference) {
  Fixture F;
  EXPECT_EQ(F.D.observe(ShapeA), LocalPhaseState::Unstable);
  EXPECT_EQ(F.D.observedIntervals(), 1u);
  // The seeded reference equals the observed histogram.
  EXPECT_EQ(std::vector<std::uint32_t>(F.D.stableSet().begin(),
                                       F.D.stableSet().end()),
            ShapeA);
}

TEST(LocalPhaseDetector, Fig12HappyPath) {
  // Unstable -> LessUnstable -> Stable in exactly three similar intervals
  // ("After two intervals, an r-value can be computed").
  Fixture F;
  EXPECT_EQ(F.D.observe(ShapeA), LocalPhaseState::Unstable);
  EXPECT_EQ(F.D.observe(ShapeA), LocalPhaseState::LessUnstable);
  EXPECT_EQ(F.D.observe(ShapeA), LocalPhaseState::Stable);
  EXPECT_EQ(F.D.phaseChanges(), 1u) << "entering stable is a phase change";
  EXPECT_TRUE(F.D.lastObservationChangedPhase());
}

TEST(LocalPhaseDetector, DissimilarIntervalKeepsUnstable) {
  Fixture F;
  F.D.observe(ShapeA);
  EXPECT_EQ(F.D.observe(ShapeB), LocalPhaseState::Unstable);
  EXPECT_LT(F.D.lastR(), 0.8);
  // The reference tracks the current set while not stable.
  EXPECT_EQ(std::vector<std::uint32_t>(F.D.stableSet().begin(),
                                       F.D.stableSet().end()),
            ShapeB);
}

TEST(LocalPhaseDetector, LessUnstableFallsBackOnDissimilarity) {
  Fixture F;
  F.D.observe(ShapeA);
  ASSERT_EQ(F.D.observe(ShapeA), LocalPhaseState::LessUnstable);
  EXPECT_EQ(F.D.observe(ShapeB), LocalPhaseState::Unstable);
  EXPECT_EQ(F.D.phaseChanges(), 0u) << "never reached stable";
}

TEST(LocalPhaseDetector, StableExitsOnBehaviourChange) {
  Fixture F;
  for (int I = 0; I < 3; ++I)
    F.D.observe(ShapeA);
  ASSERT_EQ(F.D.state(), LocalPhaseState::Stable);
  EXPECT_EQ(F.D.observe(ShapeB), LocalPhaseState::Unstable);
  EXPECT_EQ(F.D.phaseChanges(), 2u) << "one entry + one exit";
}

TEST(LocalPhaseDetector, ScaledHistogramDoesNotEndStablePhase) {
  // Paper Fig. 8's second property, end to end through the detector:
  // sampling variation must not fake a phase change.
  Fixture F;
  for (int I = 0; I < 3; ++I)
    F.D.observe(ShapeA);
  ASSERT_EQ(F.D.state(), LocalPhaseState::Stable);
  EXPECT_EQ(F.D.observe(ShapeAScaled), LocalPhaseState::Stable);
  EXPECT_GT(F.D.lastR(), 0.99);
  EXPECT_EQ(F.D.phaseChanges(), 1u);
}

TEST(LocalPhaseDetector, ReferenceFrozenWhileStable) {
  Fixture F;
  for (int I = 0; I < 3; ++I)
    F.D.observe(ShapeA);
  ASSERT_EQ(F.D.state(), LocalPhaseState::Stable);
  F.D.observe(ShapeAScaled); // similar: stays stable
  // The frozen reference is still ShapeA, not the scaled variant.
  EXPECT_EQ(std::vector<std::uint32_t>(F.D.stableSet().begin(),
                                       F.D.stableSet().end()),
            ShapeA);
}

TEST(LocalPhaseDetector, ReferenceUpdatesOnStableExit) {
  Fixture F;
  for (int I = 0; I < 3; ++I)
    F.D.observe(ShapeA);
  F.D.observe(ShapeB); // phase change
  EXPECT_EQ(std::vector<std::uint32_t>(F.D.stableSet().begin(),
                                       F.D.stableSet().end()),
            ShapeB)
      << "the new behaviour becomes the candidate reference";
  // And the new behaviour can stabilize in two more intervals.
  F.D.observe(ShapeB);
  EXPECT_EQ(F.D.observe(ShapeB), LocalPhaseState::Stable);
  EXPECT_EQ(F.D.phaseChanges(), 3u);
}

TEST(LocalPhaseDetector, BottleneckShiftByOneInstructionIsAPhaseChange) {
  // Fig. 8's first property end to end.
  std::vector<std::uint32_t> Shifted(ShapeA.size());
  for (std::size_t I = 0; I < ShapeA.size(); ++I)
    Shifted[(I + 1) % ShapeA.size()] = ShapeA[I];
  Fixture F;
  for (int I = 0; I < 3; ++I)
    F.D.observe(ShapeA);
  EXPECT_EQ(F.D.observe(Shifted), LocalPhaseState::Unstable);
}

TEST(LocalPhaseDetector, EffectiveRtDefaultsToConfig) {
  PearsonSimilarity Metric;
  LocalPhaseDetector D(64, Metric);
  EXPECT_DOUBLE_EQ(D.effectiveRt(), 0.8);
}

TEST(LocalPhaseDetector, AdaptiveThresholdLowersRtForLargeRegions) {
  PearsonSimilarity Metric;
  LocalDetectorConfig Config;
  Config.AdaptiveThreshold = true;
  LocalPhaseDetector Small(64, Metric, Config);
  LocalPhaseDetector Large(1024, Metric, Config);
  EXPECT_DOUBLE_EQ(Small.effectiveRt(), 0.8) << "at the base size";
  EXPECT_NEAR(Large.effectiveRt(), 0.8 - 0.05 * 4, 1e-12)
      << "log2(1024/64) = 4 steps down";
}

TEST(LocalPhaseDetector, AdaptiveThresholdClampsAtMinimum) {
  PearsonSimilarity Metric;
  LocalDetectorConfig Config;
  Config.AdaptiveThreshold = true;
  LocalPhaseDetector Huge(64 * 1024, Metric, Config);
  EXPECT_DOUBLE_EQ(Huge.effectiveRt(), Config.AdaptiveMinRt);
}

TEST(LocalPhaseDetector, AdaptiveThresholdToleratesModerateR) {
  // A pair of histograms with r = 1/sqrt(2) ~ 0.707: B carries A's spikes
  // plus an equal-energy set of disjoint spikes (B = A + C with A
  // orthogonal to C), so a fixed 0.8 threshold rejects it while the
  // adaptive threshold for a 1024-instruction region (rt_eff = 0.6)
  // accepts it.
  std::vector<std::uint32_t> A(1024, 0), B(1024, 0);
  for (std::size_t I = 0; I < 1024; I += 64) {
    A[I] = 40;
    B[I] = 40;
    B[I + 32] = 40;
  }
  PearsonSimilarity Metric;
  const double R = Metric.compare(A, B);
  ASSERT_GT(R, 0.65);
  ASSERT_LT(R, 0.75);

  LocalDetectorConfig Adaptive;
  Adaptive.AdaptiveThreshold = true;
  LocalPhaseDetector Fixed(1024, Metric);
  LocalPhaseDetector Adapt(1024, Metric, Adaptive);
  for (int I = 0; I < 2; ++I) {
    Fixed.observe(A);
    Adapt.observe(A);
  }
  Fixed.observe(B);
  Adapt.observe(B);
  EXPECT_NE(Fixed.state(), LocalPhaseState::Stable);
  EXPECT_EQ(Adapt.state(), LocalPhaseState::Stable);
}

/// Property sweep: alternating two dissimilar shapes with period K, the
/// detector fires exactly twice per alternation cycle once warmed up
/// (enter stable within a run, exit at the flip) for K >= 3.
class AlternationTest : public ::testing::TestWithParam<int> {};

TEST_P(AlternationTest, TwoChangesPerCycle) {
  const int K = GetParam();
  PearsonSimilarity Metric;
  LocalPhaseDetector D(ShapeA.size(), Metric);
  const int Cycles = 10;
  for (int Cycle = 0; Cycle < Cycles; ++Cycle) {
    for (int I = 0; I < K; ++I)
      D.observe(Cycle % 2 ? ShapeB : ShapeA);
  }
  // First run: 1 change (enter stable). Every subsequent run: exit + enter.
  const auto Expected = static_cast<std::uint64_t>(1 + (Cycles - 1) * 2);
  EXPECT_EQ(D.phaseChanges(), Expected);
}

INSTANTIATE_TEST_SUITE_P(RunLengths, AlternationTest,
                         ::testing::Values(3, 4, 5, 8, 13));

TEST(LocalPhaseDetector, PeriodTwoAlternationNeverStabilizes) {
  // With runs shorter than the stabilization latency the detector stays
  // out of stable entirely: zero phase changes, matching the paper's
  // "locally unstable regions" that do not flap.
  PearsonSimilarity Metric;
  LocalPhaseDetector D(ShapeA.size(), Metric);
  for (int I = 0; I < 40; ++I)
    D.observe(I % 2 ? ShapeB : ShapeA);
  EXPECT_EQ(D.phaseChanges(), 0u);
  EXPECT_NE(D.state(), LocalPhaseState::Stable);
}

} // namespace
