//===- tests/SupportMiscTest.cpp - Histogram, tables, charts --------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/AsciiChart.h"
#include "support/Histogram.h"
#include "support/TextTable.h"

#include <gtest/gtest.h>

using namespace regmon;

namespace {

TEST(InstrHistogram, BinsCoverRegion) {
  InstrHistogram H(0x1000, 0x1040);
  EXPECT_EQ(H.size(), 16u);
  EXPECT_EQ(H.start(), 0x1000u);
  EXPECT_TRUE(H.empty());
}

TEST(InstrHistogram, AddSampleCountsPerInstruction) {
  InstrHistogram H(0x1000, 0x1040);
  H.addSample(0x1000);
  H.addSample(0x1004);
  H.addSample(0x1004);
  H.addSample(0x103c);
  EXPECT_EQ(H.total(), 4u);
  EXPECT_EQ(H.bins()[0], 1u);
  EXPECT_EQ(H.bins()[1], 2u);
  EXPECT_EQ(H.bins()[15], 1u);
  EXPECT_FALSE(H.empty());
}

TEST(InstrHistogram, UnalignedPcLandsInItsInstructionBin) {
  // A sampled PC mid-instruction still belongs to that instruction.
  InstrHistogram H(0x1000, 0x1010);
  H.addSample(0x1006);
  EXPECT_EQ(H.bins()[1], 1u);
}

TEST(InstrHistogram, ResetClearsCounts) {
  InstrHistogram H(0, 0x10);
  H.addSample(0x4);
  H.reset();
  EXPECT_TRUE(H.empty());
  EXPECT_EQ(H.bins()[1], 0u);
}

TEST(InstrHistogram, AssignFromCopiesBins) {
  InstrHistogram A(0, 0x10), B(0, 0x10);
  A.addSample(0x8);
  B.assignFrom(A);
  EXPECT_EQ(B.bins()[2], 1u);
  EXPECT_EQ(B.total(), 1u);
}

// Regression: addSample used to range-check with assert only, so an
// NDEBUG build handed a below-region PC to an unsigned subtraction and
// indexed the bin vector with the wrapped result. tryAddSample must
// reject hostile PCs in every build mode, touching nothing.
TEST(InstrHistogram, TryAddSampleRejectsBelowRegion) {
  InstrHistogram H(0x1000, 0x1040);
  EXPECT_FALSE(H.tryAddSample(0x0FFC));
  EXPECT_FALSE(H.tryAddSample(0));
  EXPECT_EQ(H.total(), 0u);
  for (std::uint32_t Bin : H.bins())
    EXPECT_EQ(Bin, 0u);
}

TEST(InstrHistogram, TryAddSampleRejectsPastEnd) {
  InstrHistogram H(0x1000, 0x1040);
  EXPECT_FALSE(H.tryAddSample(0x1040)); // one past the last instruction
  EXPECT_FALSE(H.tryAddSample(0x6000'0000)); // fault-plan corruption window
  EXPECT_FALSE(H.tryAddSample(~Addr{0}));
  EXPECT_EQ(H.total(), 0u);
}

TEST(InstrHistogram, TryAddSampleAcceptsBoundaryPcs) {
  InstrHistogram H(0x1000, 0x1040);
  EXPECT_TRUE(H.tryAddSample(0x1000)); // first instruction
  EXPECT_TRUE(H.tryAddSample(0x103C)); // last instruction
  EXPECT_TRUE(H.tryAddSample(0x103F)); // unaligned tail of the last one
  EXPECT_EQ(H.total(), 3u);
  EXPECT_EQ(H.bins().front(), 1u);
  EXPECT_EQ(H.bins().back(), 2u);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable T;
  T.header({"name", "value"});
  T.row({"alpha", "1"});
  T.row({"b", "22"});
  const std::string Out = T.render();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  // Numeric column is right-aligned: "22" ends at the same column as "1".
  EXPECT_NE(Out.find(" 1\n"), std::string::npos);
  EXPECT_NE(Out.find("22\n"), std::string::npos);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable T;
  T.header({"a", "b", "c"});
  T.row({"x"});
  EXPECT_NO_THROW({ (void)T.render(); });
}

TEST(TextTable, Formatters) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::percent(0.256, 1), "25.6%");
  EXPECT_EQ(TextTable::count(42), "42");
}

TEST(Sparkline, EmptyInput) {
  EXPECT_EQ(sparkline(std::span<const double>(), 0, 1), "");
}

TEST(Sparkline, MapsExtremes) {
  const std::vector<double> V = {0.0, 1.0};
  const std::string S = sparkline(V, 0, 1);
  ASSERT_EQ(S.size(), 2u);
  EXPECT_EQ(S[0], ' ');
  EXPECT_EQ(S[1], '@');
}

TEST(Sparkline, ClampsOutOfRange) {
  const std::vector<double> V = {-5.0, 5.0};
  const std::string S = sparkline(V, 0, 1);
  EXPECT_EQ(S[0], ' ');
  EXPECT_EQ(S[1], '@');
}

TEST(StackedChart, RendersSeriesAndLegend) {
  StackedChart C(4);
  C.addSeries("first", {1, 2, 3});
  C.addSeries("second", {3, 2, 1});
  const std::string Out = C.render();
  EXPECT_NE(Out.find("a = first"), std::string::npos);
  EXPECT_NE(Out.find("b = second"), std::string::npos);
}

TEST(StackedChart, EmptyChart) {
  StackedChart C;
  EXPECT_EQ(C.render(), "(empty chart)\n");
}

TEST(StackedChart, OverlayLine) {
  StackedChart C(3);
  C.addSeries("s", {1, 1});
  C.setOverlay("flag", {true, false});
  const std::string Out = C.render();
  EXPECT_NE(Out.find('#'), std::string::npos);
  EXPECT_NE(Out.find("flag"), std::string::npos);
}

} // namespace
