//===- tests/FleetTest.cpp - Fleet summary algebra and tree rollups -------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The fleet layer's correctness core: the FleetSummary join-semilattice
// (associativity / commutativity / idempotence over random permutations
// and merge-tree shapes), the wire codec's bit-stability and trust
// boundary, the deterministic topology builder, and the differential
// proof that a fault-free aggregation tree rolls up bit-identically to a
// flat single-service reference. Degraded views are checked down to the
// integer: coverage fractions and staleness are recomputed independently
// from the root state and must match exactly.
//
//===----------------------------------------------------------------------===//

#include "fleet/Codec.h"
#include "fleet/FleetFaultPlan.h"
#include "fleet/FleetTree.h"
#include "fleet/Summary.h"

#include "service/MonitorService.h"
#include "sim/Engine.h"
#include "sim/ProgramCodeMap.h"
#include "sampling/Sampler.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <memory>
#include <span>
#include <vector>

using namespace regmon;
using namespace regmon::fleet;

namespace {

//===----------------------------------------------------------------------===//
// Summary algebra
//===----------------------------------------------------------------------===//

/// A leaf summary whose content is a pure function of (leaf, epoch) --
/// exactly the real fleet's invariant (a leaf emits one summary per
/// epoch; duplicates and stale replays carry identical bytes). The
/// semilattice laws only hold under that invariant, so the generator
/// must honor it too.
LeafSummary summaryFor(LeafId Leaf, std::uint64_t Epoch) {
  Rng R(0x5eedULL + Leaf * 977 + Epoch * 131071);
  LeafSummary S;
  S.Leaf = Leaf;
  S.Epoch = Epoch;
  S.Stats.Streams = 1 + R.nextBelow(4);
  S.Stats.BatchesProcessed = R.nextBelow(100);
  S.Stats.Intervals = R.nextBelow(1000);
  S.Stats.PhaseChanges = R.nextBelow(50);
  S.Stats.FormationTriggers = R.nextBelow(20);
  S.Stats.ActiveRegions = R.nextBelow(10);
  S.Stats.StableRegions = R.nextBelow(5);
  S.Stats.TotalSamples = R.nextBelow(100000);
  S.Stats.UcrSamples = R.nextBelow(1000);
  S.Stats.QuarantinedStreams = R.nextBelow(2);
  S.Stats.Crashes = R.nextBelow(3);
  S.StableHist = MergeableHistogram(stableFractionBounds());
  const std::uint64_t Obs = R.nextBelow(12);
  for (std::uint64_t I = 0; I < Obs; ++I)
    S.StableHist.add(R.nextDouble() * 1.2);
  S.TopK = TopKSketch(4);
  const std::uint64_t K = R.nextBelow(8);
  for (std::uint64_t I = 0; I < K; ++I)
    S.TopK.add({static_cast<std::uint32_t>(Leaf * 8 + R.nextBelow(6)),
                static_cast<std::uint32_t>(R.nextBelow(4)),
                R.nextBelow(30)});
  return S;
}

/// A random batch of (leaf, epoch) summaries, repetition allowed -- a
/// repeated pair models a duplicated / replayed message.
std::vector<LeafSummary> randomBatch(Rng &R, std::size_t N) {
  std::vector<LeafSummary> Out;
  Out.reserve(N);
  for (std::size_t I = 0; I < N; ++I)
    Out.push_back(summaryFor(static_cast<LeafId>(R.nextBelow(6)),
                             1 + R.nextBelow(10)));
  return Out;
}

/// Folds \p Parts with a random binary merge tree: a random split point,
/// recurse on both halves, join. Every shape must agree with every other.
FleetSummary mergeTree(Rng &R, std::span<const LeafSummary> Parts) {
  if (Parts.size() == 1) {
    FleetSummary S;
    S.absorb(Parts[0]);
    return S;
  }
  const std::size_t Split = 1 + R.nextBelow(Parts.size() - 1);
  FleetSummary Left = mergeTree(R, Parts.subspan(0, Split));
  FleetSummary Right = mergeTree(R, Parts.subspan(Split));
  Left.merge(Right);
  return Left;
}

TEST(FleetSummaryAlgebra, MergeAgreesOverPermutationsAndTreeShapes) {
  Rng R(101);
  for (int Trial = 0; Trial < 20; ++Trial) {
    std::vector<LeafSummary> Batch = randomBatch(R, 2 + R.nextBelow(14));

    // Reference: absorb one by one, left to right.
    FleetSummary Ref;
    for (const LeafSummary &S : Batch)
      Ref.absorb(S);
    const std::vector<std::uint8_t> RefBytes = Codec::encodeState(Ref);

    for (int Shuffle = 0; Shuffle < 8; ++Shuffle) {
      std::vector<LeafSummary> Perm = Batch;
      for (std::size_t I = Perm.size(); I > 1; --I)
        std::swap(Perm[I - 1], Perm[R.nextBelow(I)]);
      const FleetSummary Merged = mergeTree(R, Perm);
      ASSERT_EQ(Merged, Ref) << "trial " << Trial << " shuffle " << Shuffle;
      ASSERT_EQ(Codec::encodeState(Merged), RefBytes);
    }
  }
}

TEST(FleetSummaryAlgebra, MergeIsIdempotent) {
  Rng R(202);
  for (int Trial = 0; Trial < 10; ++Trial) {
    std::vector<LeafSummary> Batch = randomBatch(R, 6);
    FleetSummary A;
    for (const LeafSummary &S : Batch)
      A.absorb(S);
    FleetSummary Twice = A;
    Twice.merge(A);
    EXPECT_EQ(Twice, A);
    // Re-absorbing every element changes nothing either.
    for (const LeafSummary &S : Batch)
      Twice.absorb(S);
    EXPECT_EQ(Twice, A);
  }
}

TEST(FleetSummaryAlgebra, AbsorbKeepsOnlyFresherEntries) {
  FleetSummary S;
  EXPECT_TRUE(S.absorb(summaryFor(3, 5)));
  EXPECT_EQ(S.size(), 1u);

  // Staler and equal-epoch entries are ignored.
  EXPECT_FALSE(S.absorb(summaryFor(3, 4)));
  EXPECT_FALSE(S.absorb(summaryFor(3, 5)));
  EXPECT_EQ(S.find(3)->Epoch, 5u);

  // A fresher entry replaces in place.
  EXPECT_TRUE(S.absorb(summaryFor(3, 9)));
  EXPECT_EQ(S.size(), 1u);
  EXPECT_EQ(S.find(3)->Epoch, 9u);

  // Entries stay sorted by leaf id whatever the insertion order.
  EXPECT_TRUE(S.absorb(summaryFor(7, 2)));
  EXPECT_TRUE(S.absorb(summaryFor(0, 1)));
  ASSERT_EQ(S.size(), 3u);
  EXPECT_EQ(S.entries()[0].Leaf, 0u);
  EXPECT_EQ(S.entries()[1].Leaf, 3u);
  EXPECT_EQ(S.entries()[2].Leaf, 7u);
  EXPECT_EQ(S.find(1), nullptr);
}

TEST(FleetSummaryAlgebra, TopKMergeIsAssociativeUnderTruncation) {
  // Early truncation must agree with late truncation, including when the
  // same key appears on several sides (max-on-collision). Exhaustively
  // random: sketches of capacity 3 over a tiny colliding key space.
  Rng R(303);
  auto randomSketch = [&R] {
    TopKSketch S(3);
    const std::uint64_t N = R.nextBelow(7);
    for (std::uint64_t I = 0; I < N; ++I)
      S.add({static_cast<std::uint32_t>(R.nextBelow(3)),
             static_cast<std::uint32_t>(R.nextBelow(2)), R.nextBelow(9)});
    return S;
  };
  for (int Trial = 0; Trial < 200; ++Trial) {
    const TopKSketch A = randomSketch(), B = randomSketch(),
                     C = randomSketch();
    TopKSketch Left = A; // (A . B) . C
    Left.merge(B);
    Left.merge(C);
    TopKSketch Right = B; // A . (B . C)
    Right.merge(C);
    TopKSketch RightFull = A;
    RightFull.merge(Right);
    ASSERT_EQ(Left, RightFull) << "trial " << Trial;

    TopKSketch Comm = B; // B . A == A . B
    Comm.merge(A);
    TopKSketch Fwd = A;
    Fwd.merge(B);
    ASSERT_EQ(Comm, Fwd);

    TopKSketch Idem = A; // A . A == A
    Idem.merge(A);
    ASSERT_EQ(Idem, A);
  }
}

TEST(FleetSummaryAlgebra, TopKKeepsCanonicalOrderAndCapacity) {
  TopKSketch S(2);
  S.add({1, 1, 5});
  S.add({2, 2, 9});
  S.add({3, 3, 7}); // evicts (1, 1, 5)
  ASSERT_EQ(S.entries().size(), 2u);
  EXPECT_EQ(S.entries()[0], (TopKEntry{2, 2, 9}));
  EXPECT_EQ(S.entries()[1], (TopKEntry{3, 3, 7}));

  // Equal counts rank by ascending (stream, region).
  TopKSketch T(3);
  T.add({5, 0, 4});
  T.add({1, 9, 4});
  T.add({1, 2, 4});
  EXPECT_EQ(T.entries()[0], (TopKEntry{1, 2, 4}));
  EXPECT_EQ(T.entries()[1], (TopKEntry{1, 9, 4}));
  EXPECT_EQ(T.entries()[2], (TopKEntry{5, 0, 4}));

  // Max-on-collision refreshes, never sums.
  TopKSketch U(2);
  U.add({1, 1, 5});
  U.add({1, 1, 3});
  ASSERT_EQ(U.entries().size(), 1u);
  EXPECT_EQ(U.entries()[0].PhaseChanges, 5u);
}

TEST(FleetSummaryAlgebra, HistogramMergeIsElementwiseAddition) {
  MergeableHistogram A({0.5, 1.0});
  A.add(0.25); // bucket 0 (x <= 0.5)
  A.add(0.5);  // bucket 0 (inclusive upper bound)
  A.add(0.75); // bucket 1
  A.add(2.0);  // +Inf bucket
  ASSERT_EQ(A.counts().size(), 3u);
  EXPECT_EQ(A.counts()[0], 2u);
  EXPECT_EQ(A.counts()[1], 1u);
  EXPECT_EQ(A.counts()[2], 1u);
  EXPECT_EQ(A.total(), 4u);

  MergeableHistogram B({0.5, 1.0});
  B.add(0.1);
  B.add(5.0);
  MergeableHistogram M = A;
  M.merge(B);
  EXPECT_EQ(M.counts()[0], 3u);
  EXPECT_EQ(M.counts()[1], 1u);
  EXPECT_EQ(M.counts()[2], 2u);
  EXPECT_EQ(M.total(), 6u);

  // A default-constructed histogram is the merge identity on both sides.
  MergeableHistogram Empty;
  MergeableHistogram L = Empty;
  L.merge(A);
  EXPECT_EQ(L, A);
  MergeableHistogram Rt = A;
  Rt.merge(Empty);
  EXPECT_EQ(Rt, A);
}

TEST(FleetSummaryAlgebra, RollupFiltersByMinEpochExactly) {
  FleetSummary S;
  S.absorb(summaryFor(0, 2));
  S.absorb(summaryFor(1, 5));
  S.absorb(summaryFor(2, 9));

  const FleetRollup All = rollup(S, 0, stableFractionBounds(), 4);
  LeafStats Expected;
  for (const LeafSummary &E : S.entries())
    Expected.merge(E.Stats);
  EXPECT_EQ(All.Totals, Expected);

  const FleetRollup Fresh = rollup(S, 5, stableFractionBounds(), 4);
  LeafStats ExpectedFresh;
  ExpectedFresh.merge(S.find(1)->Stats);
  ExpectedFresh.merge(S.find(2)->Stats);
  EXPECT_EQ(Fresh.Totals, ExpectedFresh);
  EXPECT_EQ(Fresh.StableHist.total(),
            S.find(1)->StableHist.total() + S.find(2)->StableHist.total());

  const FleetRollup None = rollup(S, 10, stableFractionBounds(), 4);
  EXPECT_EQ(None.Totals, LeafStats{});
  EXPECT_EQ(None.StableHist.total(), 0u);
  EXPECT_TRUE(None.TopK.entries().empty());
}

//===----------------------------------------------------------------------===//
// Wire codec
//===----------------------------------------------------------------------===//

TEST(FleetCodec, EveryTypeRoundTripsBitStably) {
  const LeafSummary S = summaryFor(4, 7);

  persist::ByteWriter W1;
  Codec::encode(W1, S.Stats);
  const std::vector<std::uint8_t> B1 = W1.take();
  persist::ByteReader R1(B1);
  LeafStats Stats;
  ASSERT_TRUE(Codec::decode(R1, Stats));
  EXPECT_EQ(Stats, S.Stats);

  persist::ByteWriter W2;
  Codec::encode(W2, S.StableHist);
  const std::vector<std::uint8_t> B2 = W2.take();
  persist::ByteReader R2(B2);
  MergeableHistogram H;
  ASSERT_TRUE(Codec::decode(R2, H));
  EXPECT_EQ(H, S.StableHist);

  persist::ByteWriter W3;
  Codec::encode(W3, S.TopK);
  const std::vector<std::uint8_t> B3 = W3.take();
  persist::ByteReader R3(B3);
  TopKSketch K;
  ASSERT_TRUE(Codec::decode(R3, K));
  EXPECT_EQ(K, S.TopK);

  // Message and state round-trips, and encode(decode(x)) == x in bytes.
  const std::vector<std::uint8_t> Msg = Codec::encodeMessage(S);
  const auto Decoded = Codec::decodeMessage(Msg);
  ASSERT_TRUE(Decoded.has_value());
  EXPECT_EQ(*Decoded, S);
  EXPECT_EQ(Codec::encodeMessage(*Decoded), Msg);

  FleetSummary Fleet;
  Fleet.absorb(summaryFor(0, 3));
  Fleet.absorb(summaryFor(4, 7));
  Fleet.absorb(summaryFor(9, 1));
  const std::vector<std::uint8_t> State = Codec::encodeState(Fleet);
  const auto DecodedState = Codec::decodeState(State);
  ASSERT_TRUE(DecodedState.has_value());
  EXPECT_EQ(*DecodedState, Fleet);
  EXPECT_EQ(Codec::encodeState(*DecodedState), State);

  // An empty state round-trips too (a virgin aggregator's checkpoint).
  const auto EmptyState = Codec::decodeState(Codec::encodeState({}));
  ASSERT_TRUE(EmptyState.has_value());
  EXPECT_TRUE(EmptyState->empty());
}

TEST(FleetCodec, MessageRejectsEveryTruncation) {
  const std::vector<std::uint8_t> Msg = Codec::encodeMessage(summaryFor(2, 4));
  for (std::size_t Len = 0; Len < Msg.size(); ++Len) {
    const std::span<const std::uint8_t> Prefix(Msg.data(), Len);
    EXPECT_FALSE(Codec::decodeMessage(Prefix).has_value())
        << "truncated at " << Len << " of " << Msg.size();
  }
  EXPECT_TRUE(Codec::decodeMessage(Msg).has_value());
}

TEST(FleetCodec, MessageRejectsTrailingBytesAndWrongVersion) {
  std::vector<std::uint8_t> Msg = Codec::encodeMessage(summaryFor(1, 1));
  std::vector<std::uint8_t> Trailing = Msg;
  Trailing.push_back(0);
  EXPECT_FALSE(Codec::decodeMessage(Trailing).has_value());

  std::vector<std::uint8_t> Wrong = Msg;
  Wrong[0] ^= 0xff; // little-endian u32 version prefix
  EXPECT_FALSE(Codec::decodeMessage(Wrong).has_value());
  EXPECT_FALSE(Codec::decodeState(Wrong).has_value());
}

TEST(FleetCodec, StateRejectsUnsortedLeafIds) {
  // Handcraft a state whose entries arrive in descending leaf order --
  // a canonical encoder can never produce it, so decode must refuse.
  persist::ByteWriter W;
  W.u32(Codec::Version);
  W.u64(2);
  Codec::encode(W, summaryFor(7, 1));
  Codec::encode(W, summaryFor(3, 1));
  EXPECT_FALSE(Codec::decodeState(W.take()).has_value());

  persist::ByteWriter Dup;
  Dup.u32(Codec::Version);
  Dup.u64(2);
  Codec::encode(Dup, summaryFor(3, 1));
  Codec::encode(Dup, summaryFor(3, 2));
  EXPECT_FALSE(Codec::decodeState(Dup.take()).has_value());
}

TEST(FleetCodec, TopKRejectsNonCanonicalOrderAndOverCapacity) {
  auto sketchBytes = [](std::uint32_t Cap,
                        std::span<const TopKEntry> Entries) {
    persist::ByteWriter W;
    W.u32(Cap);
    W.u64(Entries.size());
    for (const TopKEntry &E : Entries) {
      W.u32(E.Stream);
      W.u32(E.Region);
      W.u64(E.PhaseChanges);
    }
    return W.take();
  };
  auto decodes = [](std::span<const std::uint8_t> Bytes) {
    persist::ByteReader R(Bytes);
    TopKSketch S;
    return Codec::decode(R, S) && R.atEnd();
  };

  const TopKEntry Sorted[] = {{0, 0, 9}, {1, 1, 5}};
  EXPECT_TRUE(decodes(sketchBytes(4, Sorted)));

  const TopKEntry Reversed[] = {{1, 1, 5}, {0, 0, 9}};
  EXPECT_FALSE(decodes(sketchBytes(4, Reversed)));

  const TopKEntry Duplicate[] = {{1, 1, 5}, {1, 1, 5}};
  EXPECT_FALSE(decodes(sketchBytes(4, Duplicate)));

  const TopKEntry Three[] = {{0, 0, 9}, {1, 1, 5}, {2, 2, 1}};
  EXPECT_FALSE(decodes(sketchBytes(2, Three))); // count beyond capacity
}

TEST(FleetCodec, HistogramRejectsInconsistentShapes) {
  auto decodes = [](persist::ByteWriter &W) {
    const std::vector<std::uint8_t> Bytes = W.take();
    persist::ByteReader R(Bytes);
    MergeableHistogram H;
    return Codec::decode(R, H) && R.atEnd();
  };
  const double Ascending[] = {0.5, 1.0};
  const double Descending[] = {1.0, 0.5};

  persist::ByteWriter Good;
  MergeableHistogram H({0.5, 1.0});
  H.add(0.2);
  Codec::encode(Good, H);
  EXPECT_TRUE(decodes(Good));

  // Bucket count must be bounds + 1.
  persist::ByteWriter BadCount;
  const std::uint64_t TwoBuckets[] = {1, 0};
  BadCount.vecF64(Ascending);
  BadCount.vecU64(TwoBuckets);
  BadCount.u64(1);
  EXPECT_FALSE(decodes(BadCount));

  // Counts must sum to the declared total.
  persist::ByteWriter BadTotal;
  const std::uint64_t ThreeBuckets[] = {1, 0, 0};
  BadTotal.vecF64(Ascending);
  BadTotal.vecU64(ThreeBuckets);
  BadTotal.u64(7);
  EXPECT_FALSE(decodes(BadTotal));

  // Bounds must ascend.
  persist::ByteWriter BadBounds;
  BadBounds.vecF64(Descending);
  BadBounds.vecU64(ThreeBuckets);
  BadBounds.u64(1);
  EXPECT_FALSE(decodes(BadBounds));
}

//===----------------------------------------------------------------------===//
// Topology
//===----------------------------------------------------------------------===//

TEST(FleetTopologyShape, BuildsDenseBottomUpTreesForAnyShape) {
  for (std::uint32_t Leaves = 1; Leaves <= 17; ++Leaves) {
    for (std::uint32_t Fanout = 2; Fanout <= 5; ++Fanout) {
      const FleetTopology T = FleetTopology::build(Leaves, Fanout);
      ASSERT_EQ(T.leaves(), Leaves);
      ASSERT_FALSE(T.aggs().empty());

      // Exactly one root, and it covers every leaf exactly once.
      const FleetTopology::AggNode &Root = T.aggs()[T.root()];
      EXPECT_EQ(Root.Parent, NoNode);
      std::vector<LeafId> Covered = Root.LeavesUnder;
      std::sort(Covered.begin(), Covered.end());
      ASSERT_EQ(Covered.size(), Leaves);
      for (std::uint32_t L = 0; L < Leaves; ++L)
        EXPECT_EQ(Covered[L], L);

      std::uint32_t Roots = 0;
      for (std::uint32_t I = 0; I < T.aggs().size(); ++I) {
        const FleetTopology::AggNode &N = T.aggs()[I];
        EXPECT_EQ(N.Id, I); // dense ids in construction order
        if (N.Parent == NoNode)
          ++Roots;
        else {
          EXPECT_GT(N.Parent, N.Id); // ids ascend with level (bottom-up)
          const auto &Sib = T.aggs()[N.Parent].ChildAggs;
          EXPECT_NE(std::find(Sib.begin(), Sib.end(), N.Id), Sib.end());
        }
        if (N.Level == 1) {
          EXPECT_TRUE(N.ChildAggs.empty());
          EXPECT_FALSE(N.ChildLeaves.empty());
          EXPECT_LE(N.ChildLeaves.size(), std::size_t{Fanout});
          for (LeafId L : N.ChildLeaves)
            EXPECT_EQ(T.parentOfLeaf(L), N.Id);
        } else {
          EXPECT_TRUE(N.ChildLeaves.empty());
          EXPECT_LE(N.ChildAggs.size(), std::size_t{Fanout});
        }
      }
      EXPECT_EQ(Roots, 1u);
      EXPECT_EQ(T.aggs()[T.root()].Level, T.levels());

      // Link ids are dense and collision-free by construction.
      EXPECT_EQ(T.leafLink(Leaves - 1), Leaves - 1);
      EXPECT_EQ(T.aggLink(0), Leaves);
    }
  }
}

//===----------------------------------------------------------------------===//
// Differential: tree rollup == flat single-service reference
//===----------------------------------------------------------------------===//

/// The flat reference: one Inline MonitorService carrying every fleet
/// stream, fed the byte-identical sample batches (same workload, same
/// per-stream engine seeds), summarized per leaf range with the same
/// shared buildLeafSummary the tree's leaves use.
FleetSummary flatReference(const FleetSimConfig &Cfg, std::uint64_t Epochs) {
  struct FlatStream {
    explicit FlatStream(const FleetSimConfig &Cfg, std::uint64_t Global)
        : W(workloads::make(Cfg.Workload)), Map(W.Prog),
          Eng(W.Prog, W.Script, Cfg.Seed + Global),
          Smp(Eng, {Cfg.PeriodCycles, 2032}) {}
    workloads::Workload W;
    sim::ProgramCodeMap Map;
    sim::Engine Eng;
    sampling::Sampler Smp;
    bool Ended = false;
  };

  const std::uint32_t NumStreams = Cfg.Leaves * Cfg.StreamsPerLeaf;
  std::vector<std::unique_ptr<FlatStream>> Streams;
  Streams.reserve(NumStreams);
  for (std::uint32_t G = 0; G < NumStreams; ++G)
    Streams.push_back(std::make_unique<FlatStream>(Cfg, G));

  service::ServiceConfig SC;
  SC.Workers = 1;
  SC.QueueCapacity = 8;
  SC.Inline = true;
  service::MonitorService Svc(SC);
  for (const auto &S : Streams)
    Svc.addStream(S->Map);
  Svc.start();

  std::vector<Sample> Buffer;
  for (std::uint64_t E = 0; E < Epochs; ++E) {
    for (std::uint32_t G = 0; G < NumStreams; ++G) {
      FlatStream &S = *Streams[G];
      for (std::uint32_t B = 0; B < Cfg.BatchesPerEpoch; ++B) {
        if (S.Ended)
          break;
        if (!S.Smp.fillBuffer(Buffer)) {
          S.Ended = true;
          break;
        }
        Svc.submit({G, Buffer});
      }
    }
  }

  FleetSummary Ref;
  for (std::uint32_t L = 0; L < Cfg.Leaves; ++L)
    Ref.absorb(buildLeafSummary(Svc, L, Epochs,
                                /*FirstStream=*/L * Cfg.StreamsPerLeaf,
                                Cfg.StreamsPerLeaf,
                                /*FirstGlobalStream=*/L * Cfg.StreamsPerLeaf,
                                stableFractionBounds(), Cfg.TopKCapacity,
                                /*Crashes=*/0));
  Svc.stop();
  return Ref;
}

TEST(FleetDifferential, FaultFreeTreeMatchesFlatSingleService) {
  FleetSimConfig Cfg;
  Cfg.Leaves = 5;
  Cfg.Fanout = 2; // three aggregation levels over five leaves
  Cfg.StreamsPerLeaf = 2;
  Cfg.BatchesPerEpoch = 2;
  Cfg.Seed = 11;
  const std::uint64_t Epochs = 6;

  FleetSim Sim(Cfg, FleetFaultPlan(1));
  ASSERT_EQ(Sim.topology().levels(), 3u);
  Sim.run(Epochs);

  const FleetSummary Ref = flatReference(Cfg, Epochs);
  ASSERT_EQ(Ref.size(), Cfg.Leaves);

  // The acceptance bar: bit-identical, not merely equal.
  EXPECT_EQ(Sim.rootState(), Ref);
  EXPECT_EQ(Codec::encodeState(Sim.rootState()), Codec::encodeState(Ref));

  const FleetView V = Sim.view();
  EXPECT_EQ(V.LeavesPresent, Cfg.Leaves);
  EXPECT_EQ(V.LeavesExpired, 0u);
  EXPECT_EQ(V.MaxStaleness, 0u);
  EXPECT_DOUBLE_EQ(V.coverage(), 1.0);
  EXPECT_GT(V.Rollup.Totals.Intervals, 0u);
  EXPECT_EQ(V.Rollup.Totals.Crashes, 0u);
  EXPECT_EQ(V.Rollup.Totals.Streams,
            std::uint64_t{Cfg.Leaves} * Cfg.StreamsPerLeaf);

  // Every interior node, not just the root, converged on full coverage.
  for (const FleetTopology::AggNode &N : Sim.topology().aggs())
    EXPECT_EQ(Sim.aggStats(N.Id).DecodeFailures, 0u);
}

//===----------------------------------------------------------------------===//
// Degraded views: exact coverage and staleness arithmetic
//===----------------------------------------------------------------------===//

TEST(FleetDegradation, DeterministicCrashScheduleYieldsExactViews) {
  // One leaf, certain crash rate: the schedule is exactly computable.
  // E1 crash (down until E4), E4 restart + emit, E5 crash (down until
  // E8), E8 restart + emit. Horizon 1 expires the E4 entry at E6.
  FleetSimConfig Cfg;
  Cfg.Leaves = 1;
  Cfg.Fanout = 2;
  Cfg.Seed = 5;
  FleetFaultConfig FC;
  FC.LeafCrashRate = 1.0;
  FC.LeafRestartEpochs = 3;
  FC.MaxStalenessEpochs = 1;
  FleetSim Sim(Cfg, FleetFaultPlan(9, FC));

  struct Expect {
    std::uint64_t Present, Expired, Staleness;
  };
  const Expect Timeline[] = {
      /*E1*/ {0, 0, 0}, /*E2*/ {0, 0, 0}, /*E3*/ {0, 0, 0},
      /*E4*/ {1, 0, 0}, /*E5*/ {1, 0, 1}, /*E6*/ {0, 1, 0},
      /*E7*/ {0, 1, 0}, /*E8*/ {1, 0, 0},
  };
  for (std::size_t E = 0; E < std::size(Timeline); ++E) {
    Sim.runEpoch();
    const FleetView V = Sim.view();
    ASSERT_EQ(V.Epoch, E + 1);
    EXPECT_EQ(V.LeavesTotal, 1u);
    EXPECT_EQ(V.LeavesPresent, Timeline[E].Present) << "epoch " << E + 1;
    EXPECT_EQ(V.LeavesExpired, Timeline[E].Expired) << "epoch " << E + 1;
    EXPECT_EQ(V.MaxStaleness, Timeline[E].Staleness) << "epoch " << E + 1;
    EXPECT_DOUBLE_EQ(V.coverage(), Timeline[E].Present ? 1.0 : 0.0);
    // An expired or absent leaf contributes nothing: the rollup is
    // exactly empty, never a stale approximation.
    if (Timeline[E].Present == 0) {
      EXPECT_EQ(V.Rollup.Totals, LeafStats{});
      EXPECT_EQ(V.Rollup.StableHist.total(), 0u);
    } else {
      EXPECT_GT(V.Rollup.Totals.Intervals, 0u);
    }
  }

  const LeafAgentStats &LS = Sim.leafStats(0);
  EXPECT_EQ(LS.Crashes, 2u);
  EXPECT_EQ(LS.Restores, 2u);
  EXPECT_EQ(LS.ColdRestores, 2u); // no persistence configured
  EXPECT_EQ(LS.EpochsDown, 6u);   // E1-3, E5-7
  EXPECT_EQ(LS.SummariesEmitted, 2u);
  EXPECT_EQ(LS.BatchesDiscarded, 6u * Cfg.BatchesPerEpoch);
  EXPECT_EQ(Sim.view().Rollup.Totals.Crashes, 2u);
}

TEST(FleetDegradation, ViewArithmeticMatchesRootStateUnderChaos) {
  // Under an arbitrary fault mix, every number in the view must be
  // re-derivable from the root state with integer arithmetic: coverage,
  // staleness, the subtree partition, and the rollup totals.
  FleetSimConfig Cfg;
  Cfg.Leaves = 9;
  Cfg.Fanout = 3;
  Cfg.Seed = 21;
  FleetFaultConfig FC;
  FC.LeafCrashRate = 0.3;
  FC.LeafRestartEpochs = 2;
  FC.AggStallRate = 0.2;
  FC.Transport = {0.1, 0.1, 0.1, 0.1};
  FC.MaxStalenessEpochs = 3;
  FleetSim Sim(Cfg, FleetFaultPlan(33, FC));

  for (int E = 0; E < 10; ++E) {
    Sim.runEpoch();
    const FleetView V = Sim.view();
    const FleetSummary &Root = Sim.rootState();
    const std::uint64_t MinEpoch =
        V.Epoch <= FC.MaxStalenessEpochs ? 0
                                         : V.Epoch - FC.MaxStalenessEpochs;

    std::uint64_t Present = 0, Expired = 0, Staleness = 0;
    LeafStats Totals;
    for (const LeafSummary &S : Root.entries()) {
      if (MinEpoch > 0 && S.Epoch < MinEpoch) {
        ++Expired;
        continue;
      }
      ++Present;
      Staleness = std::max(Staleness, V.Epoch - S.Epoch);
      Totals.merge(S.Stats);
    }
    EXPECT_EQ(V.LeavesPresent, Present);
    EXPECT_EQ(V.LeavesExpired, Expired);
    EXPECT_EQ(V.MaxStaleness, Staleness);
    EXPECT_EQ(V.Rollup.Totals, Totals);
    EXPECT_DOUBLE_EQ(V.coverage(), static_cast<double>(Present) /
                                       static_cast<double>(V.LeavesTotal));

    // The subtree rows partition the fleet exactly.
    std::uint64_t RowLeaves = 0, RowPresent = 0, RowStaleness = 0;
    for (const SubtreeView &Row : V.Subtrees) {
      RowLeaves += Row.LeavesExpected;
      RowPresent += Row.LeavesPresent;
      RowStaleness = std::max(RowStaleness, Row.MaxStaleness);
    }
    EXPECT_EQ(RowLeaves, V.LeavesTotal);
    EXPECT_EQ(RowPresent, V.LeavesPresent);
    EXPECT_EQ(RowStaleness, V.MaxStaleness);
  }
}

} // namespace
