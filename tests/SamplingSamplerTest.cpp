//===- tests/SamplingSamplerTest.cpp - Sampling front-end -----------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sampling/Sampler.h"

#include "obs/Instruments.h"
#include "obs/Metrics.h"

#include <gtest/gtest.h>

using namespace regmon;
using namespace regmon::sim;
using namespace regmon::sampling;

namespace {

struct TestSetup {
  Program Prog;
  PhaseScript Script;

  explicit TestSetup(Work Total = 1'000'000) {
    ProgramBuilder B("sampler-test");
    const auto Proc = B.addProcedure("f", 0x1000, 0x2000);
    const LoopId A = B.addLoop(Proc, 0x1000, 0x1100);
    B.addHotSpotProfile(A, 1.0, {});
    const MixId M = Script.addMix({MixComponent{A, 0, 1.0}});
    Script.steady(M, Total);
    Prog = B.build();
  }
};

TEST(Sampler, DeliversFullBuffers) {
  TestSetup T;
  Engine E(T.Prog, T.Script, 1);
  Sampler S(E, {/*PeriodCycles=*/100, /*BufferSize=*/64});
  std::size_t Buffers = 0;
  S.run([&](std::span<const Sample> Buffer) {
    ++Buffers;
    EXPECT_EQ(Buffer.size(), 64u);
  });
  // 1M cycles / (100 * 64) = 156 full buffers, remainder discarded.
  EXPECT_EQ(Buffers, 156u);
  EXPECT_EQ(S.intervals(), 156u);
}

TEST(Sampler, PartialFinalBufferDiscarded) {
  TestSetup T(10'000);
  Engine E(T.Prog, T.Script, 2);
  Sampler S(E, {100, 64});
  std::size_t Buffers = 0;
  S.run([&](std::span<const Sample>) { ++Buffers; });
  EXPECT_EQ(Buffers, 1u) << "100 samples fit; 36 leftover discarded";
}

TEST(Sampler, FillBufferReturnsFalseAtEnd) {
  TestSetup T(10'000);
  Engine E(T.Prog, T.Script, 3);
  Sampler S(E, {100, 64});
  std::vector<Sample> Buffer;
  EXPECT_TRUE(S.fillBuffer(Buffer));
  EXPECT_EQ(Buffer.size(), 64u);
  EXPECT_FALSE(S.fillBuffer(Buffer));
  EXPECT_LT(Buffer.size(), 64u);
}

TEST(Sampler, TimestampsSpacedByPeriod) {
  TestSetup T;
  Engine E(T.Prog, T.Script, 4);
  Sampler S(E, {250, 16});
  std::vector<Sample> Buffer;
  ASSERT_TRUE(S.fillBuffer(Buffer));
  for (std::size_t I = 1; I < Buffer.size(); ++I)
    EXPECT_EQ(Buffer[I].Time - Buffer[I - 1].Time, 250u);
}

TEST(Sampler, PaperDefaultBufferSize) {
  const SamplingConfig Config;
  EXPECT_EQ(Config.BufferSize, 2032u) << "the paper's Fig. 2 buffer";
  EXPECT_EQ(Config.PeriodCycles, 45'000u);
}

TEST(Sampler, CollectIntervalsDiscardsTrailingPartial) {
  // 10'000 cycles at period 100 yields 100 samples: one full 64-sample
  // buffer collected, 36 trailing samples discarded like run() does.
  TestSetup T(10'000);
  Engine E(T.Prog, T.Script, 7);
  Sampler S(E, {100, 64});
  const std::vector<std::vector<Sample>> Intervals = S.collectIntervals();
  ASSERT_EQ(Intervals.size(), 1u);
  EXPECT_EQ(Intervals[0].size(), 64u);
  EXPECT_EQ(S.intervals(), 1u);
}

TEST(Sampler, CollectIntervalsExactMultipleLosesNothing) {
  // 6'500 cycles at period 100 yields exactly 64 samples (the engine
  // ends before the final period elapses): one full buffer, nothing to
  // discard, and the program end is not an extra interval.
  TestSetup T(6'500);
  Engine E(T.Prog, T.Script, 8);
  Sampler S(E, {100, 64});
  const std::vector<std::vector<Sample>> Intervals = S.collectIntervals();
  ASSERT_EQ(Intervals.size(), 1u);
  EXPECT_EQ(Intervals[0].size(), 64u);
}

TEST(Sampler, CollectIntervalsHonorsMaxIntervals) {
  TestSetup T;
  Engine E(T.Prog, T.Script, 9);
  Sampler S(E, {100, 64});
  const std::vector<std::vector<Sample>> Intervals = S.collectIntervals(3);
  EXPECT_EQ(Intervals.size(), 3u);
  for (const std::vector<Sample> &Interval : Intervals)
    EXPECT_EQ(Interval.size(), 64u);
}

TEST(Sampler, FillBufferPartialFinalDataIsExposedButNotAnInterval) {
  // The final partial buffer is reachable through fillBuffer (the caller
  // decides), but never counts as a delivered interval.
  TestSetup T(10'000);
  Engine E(T.Prog, T.Script, 10);
  Sampler S(E, {100, 64});
  std::vector<Sample> Buffer;
  ASSERT_TRUE(S.fillBuffer(Buffer));
  EXPECT_EQ(S.intervals(), 1u);
  EXPECT_FALSE(S.fillBuffer(Buffer));
  EXPECT_EQ(Buffer.size(), 35u) << "99 samples total, 64 consumed";
  EXPECT_EQ(S.intervals(), 1u) << "partial data is not an interval";
}

// Regression: a zero period used to be guarded only by an assert, so a
// release build fed PeriodCycles == 0 would spin fillBuffer forever (the
// engine advances zero cycles per "interrupt"). The clamp now runs in
// every build; this test deadlocks on the old behaviour instead of
// failing an expectation, which is exactly why it must exist.
TEST(Sampler, ZeroConfigClampedInEveryBuildAndRunTerminates) {
  TestSetup T(100);
  Engine E(T.Prog, T.Script, 11);
  Sampler S(E, {/*PeriodCycles=*/0, /*BufferSize=*/0});
  EXPECT_TRUE(S.configClamped());
  EXPECT_EQ(S.config().PeriodCycles, 1u);
  EXPECT_EQ(S.config().BufferSize, 1u);
  std::size_t Buffers = 0;
  S.run([&](std::span<const Sample> Buffer) {
    ++Buffers;
    EXPECT_EQ(Buffer.size(), 1u);
  });
  EXPECT_EQ(Buffers, 99u) << "one sample per cycle, program end discarded";
}

TEST(Sampler, ConfigClampReportedThroughInstruments) {
  TestSetup T(10'000);
  Engine E(T.Prog, T.Script, 12);
  Sampler S(E, {/*PeriodCycles=*/0, /*BufferSize=*/64});
  obs::MetricsRegistry Registry;
  obs::EventTracer Tracer;
  const obs::SamplerInstruments I =
      obs::makeSamplerInstruments(Registry, &Tracer, /*Stream=*/7, "");
  S.attachObservability(&I);
  EXPECT_EQ(I.ConfigClamps->value(), 1u);
  EXPECT_EQ(I.PeriodCurrent->value(), 1.0);
  const std::vector<obs::TraceEvent> Events = Tracer.snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Kind, obs::EventKind::SamplingConfigClamped);
  EXPECT_EQ(Events[0].Stream, 7u);

  // A valid configuration attaches silently.
  Engine E2(T.Prog, T.Script, 12);
  Sampler Clean(E2, {100, 64});
  Clean.attachObservability(&I);
  EXPECT_FALSE(Clean.configClamped());
  EXPECT_EQ(I.ConfigClamps->value(), 1u);
  EXPECT_EQ(I.PeriodCurrent->value(), 100.0);
}

TEST(Sampler, DynamicScaleStretchesThePeriodMidRun) {
  TestSetup T;
  Engine E(T.Prog, T.Script, 13);
  Sampler S(E, {100, 16});
  std::vector<Sample> Buffer;
  ASSERT_TRUE(S.fillBuffer(Buffer));
  for (std::size_t I = 1; I < Buffer.size(); ++I)
    EXPECT_EQ(Buffer[I].Time - Buffer[I - 1].Time, 100u);

  EXPECT_EQ(S.setPeriodScaleLog2(3), 3u);
  EXPECT_EQ(S.effectivePeriodCycles(), 800u);
  ASSERT_TRUE(S.fillBuffer(Buffer));
  for (std::size_t I = 1; I < Buffer.size(); ++I)
    EXPECT_EQ(Buffer[I].Time - Buffer[I - 1].Time, 800u);

  // Back to base: the scale is a multiplier, not a new config.
  EXPECT_EQ(S.setPeriodScaleLog2(0), 0u);
  EXPECT_EQ(S.effectivePeriodCycles(), 100u);
  EXPECT_EQ(S.config().PeriodCycles, 100u);
}

TEST(Sampler, ScaleRequestsClampToCeilingAndAreCounted) {
  TestSetup T;
  Engine E(T.Prog, T.Script, 14);
  Sampler S(E, {100, 16});
  obs::MetricsRegistry Registry;
  const obs::SamplerInstruments I =
      obs::makeSamplerInstruments(Registry, nullptr, 0, "");
  S.attachObservability(&I);

  EXPECT_EQ(S.setPeriodScaleLog2(Sampler::MaxPeriodScaleLog2 + 5),
            Sampler::MaxPeriodScaleLog2);
  EXPECT_EQ(I.ScaleClamps->value(), 1u);
  EXPECT_EQ(I.ScaleChanges->value(), 1u);
  EXPECT_EQ(I.PeriodCurrent->value(),
            static_cast<double>(
                scaledPeriod(100, Sampler::MaxPeriodScaleLog2)));

  // Re-applying the same scale is not a change.
  EXPECT_EQ(S.setPeriodScaleLog2(Sampler::MaxPeriodScaleLog2),
            Sampler::MaxPeriodScaleLog2);
  EXPECT_EQ(I.ScaleChanges->value(), 1u);
}

TEST(Sampler, ScaledPeriodSaturatesInsteadOfWrapping) {
  EXPECT_EQ(scaledPeriod(45'000, 0), 45'000u);
  EXPECT_EQ(scaledPeriod(45'000, 4), 720'000u);
  EXPECT_EQ(scaledPeriod(0, 0), 1u) << "zero base clamps like the sampler";
  EXPECT_EQ(scaledPeriod(0, 3), 8u);
  // One bit shy of the top: any further shift must pin, not wrap to 0.
  EXPECT_EQ(scaledPeriod(std::uint64_t{1} << 63, 1), UINT64_MAX);
  EXPECT_EQ(scaledPeriod(3, 63), UINT64_MAX);
  EXPECT_EQ(scaledPeriod(45'000, 64), UINT64_MAX);
  EXPECT_EQ(scaledPeriod(45'000, 1'000), UINT64_MAX);
  EXPECT_EQ(scaledPeriod(std::uint64_t{1} << 32, 31), std::uint64_t{1} << 63);
}

TEST(Sampler, SmallerPeriodMoreIntervals) {
  TestSetup T;
  std::size_t Coarse, Fine;
  {
    Engine E(T.Prog, T.Script, 5);
    Sampler S(E, {1000, 32});
    Coarse = S.run([](std::span<const Sample>) {});
  }
  {
    Engine E(T.Prog, T.Script, 5);
    Sampler S(E, {100, 32});
    Fine = S.run([](std::span<const Sample>) {});
  }
  // 1M cycles: 31 buffers of 32*1000 cycles vs 312 of 32*100.
  EXPECT_EQ(Coarse, 31u);
  EXPECT_EQ(Fine, 312u);
}

} // namespace
