//===- tests/CrashRecoveryTest.cpp - Kill-point recovery tests ------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Service-level crash-safety tests: a MonitorService with persistence
// attached is "killed" at seeded points -- mid-journal-append and
// mid-snapshot-commit, via the persist layer's deterministic CrashPoint
// budgets -- and a fresh service recovering from the directory must be
// *bit-identical* (encodeState bytes) to a reference service that
// processed exactly the acknowledged work without interruption. A fuzz
// pass truncates and bit-flips every byte of a committed snapshot and
// asserts recovery degrades to journal replay with the corruption counted,
// never a crash. Run under ASan/UBSan and TSan via
// tools/run_sanitized_tests.sh.
//
//===----------------------------------------------------------------------===//

#include "service/MonitorService.h"

#include "faults/FaultPlan.h"
#include "persist/Checkpoint.h"
#include "persist/Io.h"
#include "persist/StateCodec.h"
#include "sampling/Sampler.h"
#include "sim/Engine.h"
#include "sim/ProgramCodeMap.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

using namespace regmon;
using namespace regmon::service;
using regmon::persist::CheckpointManager;
using regmon::persist::CrashPoint;

namespace {

/// A fresh scratch directory under the gtest temp root. Wiped first: temp
/// directories survive across test-binary runs, and an append-mode
/// journal must not inherit a previous run's records.
std::string scratchDir(const std::string &Tag) {
  static int Counter = 0;
  // The PID keeps concurrent test processes (e.g. parallel sanitizer
  // sweeps of the same binary) from wiping each other's scratch trees.
  const std::string Dir = ::testing::TempDir() + "regmon_crash_" +
                          std::to_string(::getpid()) + "_" + Tag + "_" +
                          std::to_string(Counter++);
  std::filesystem::remove_all(Dir);
  EXPECT_TRUE(persist::ensureDir(Dir));
  return Dir;
}

/// One pre-recorded stream (the service tests' pattern).
struct RecordedStream {
  std::unique_ptr<workloads::Workload> W;
  std::unique_ptr<sim::ProgramCodeMap> Map;
  std::vector<std::vector<Sample>> Intervals;
};

RecordedStream record(const std::string &Name, std::uint64_t Seed) {
  RecordedStream S;
  S.W = std::make_unique<workloads::Workload>(workloads::make(Name));
  S.Map = std::make_unique<sim::ProgramCodeMap>(S.W->Prog);
  sim::Engine Engine(S.W->Prog, S.W->Script, Seed);
  sampling::Sampler Sampler(Engine, {45'000, 2032});
  S.Intervals = Sampler.collectIntervals();
  return S;
}

std::vector<RecordedStream> smallFleet() {
  std::vector<RecordedStream> Fleet;
  Fleet.push_back(record("synthetic.steady", 1));
  Fleet.push_back(record("synthetic.periodic", 2));
  return Fleet;
}

/// Flattens a fleet into one global round-robin submission sequence. All
/// bit-identity tests submit from a single thread in this order, so the
/// journal sequence (a real submission order) is reproducible.
std::vector<SampleBatch> roundRobin(const std::vector<RecordedStream> &Fleet) {
  std::vector<SampleBatch> Batches;
  std::size_t MaxIntervals = 0;
  for (const RecordedStream &S : Fleet)
    MaxIntervals = std::max(MaxIntervals, S.Intervals.size());
  for (std::size_t I = 0; I < MaxIntervals; ++I)
    for (StreamId Id = 0; Id < Fleet.size(); ++Id)
      if (I < Fleet[Id].Intervals.size())
        Batches.push_back({Id, Fleet[Id].Intervals[I]});
  return Batches;
}

ServiceConfig testConfig() {
  return {/*Workers=*/2, /*QueueCapacity=*/8, OverflowPolicy::Block,
          /*ValidateBatches=*/true, {}};
}

std::unique_ptr<MonitorService>
makeService(const std::vector<RecordedStream> &Fleet) {
  auto Service = std::make_unique<MonitorService>(testConfig());
  for (const RecordedStream &S : Fleet)
    Service->addStream(*S.Map);
  return Service;
}

/// Reference: runs the first \p Count batches through an uninterrupted
/// persisted service on its own scratch directory and returns its state
/// bytes. The reference journals too, so its Meta section's sequence
/// number matches a recovered service's.
std::vector<std::uint8_t>
referenceBytes(const std::vector<RecordedStream> &Fleet,
               const std::vector<SampleBatch> &Batches, std::size_t Count) {
  CheckpointManager Store(scratchDir("ref"));
  auto Service = makeService(Fleet);
  Service->attachPersistence(Store);
  EXPECT_EQ(Service->restore(), RestoreOutcome::ColdStart);
  Service->start();
  for (std::size_t I = 0; I < Count; ++I)
    (void)Service->submit(Batches[I]); // health rejections are legitimate
  Service->stop();
  return Service->encodeState();
}

TEST(CrashRecoveryNames, RestoreOutcomesAreDistinct) {
  std::set<std::string> Names;
  for (RestoreOutcome O :
       {RestoreOutcome::ColdStart, RestoreOutcome::JournalOnly,
        RestoreOutcome::SnapshotOnly, RestoreOutcome::SnapshotPlusJournal})
    Names.insert(toString(O));
  EXPECT_EQ(Names.size(), 4U);
}

// The recovery ladder's four outcomes, climbed in order on one directory.
TEST(CrashRecovery, RestoreOutcomeLadder) {
  const std::vector<RecordedStream> Fleet = smallFleet();
  const std::vector<SampleBatch> Batches = roundRobin(Fleet);
  ASSERT_GE(Batches.size(), 8U);
  const std::string Dir = scratchDir("ladder");

  // Empty directory: cold start.
  {
    CheckpointManager Store(Dir);
    auto Service = makeService(Fleet);
    Service->attachPersistence(Store);
    EXPECT_EQ(Service->restore(), RestoreOutcome::ColdStart);
    Service->start();
    for (std::size_t I = 0; I < 3; ++I)
      ASSERT_TRUE(Service->submit(Batches[I]));
    Service->stop();
    // No checkpoint: only the journal survives.
  }
  // Journal but no snapshot: journal-only recovery.
  {
    CheckpointManager Store(Dir);
    auto Service = makeService(Fleet);
    Service->attachPersistence(Store);
    EXPECT_EQ(Service->restore(), RestoreOutcome::JournalOnly);
    EXPECT_EQ(Service->persistedSequence(), 3U);
    ASSERT_TRUE(Service->checkpoint());
  }
  // Snapshot covering the whole journal: snapshot-only.
  {
    CheckpointManager Store(Dir);
    auto Service = makeService(Fleet);
    Service->attachPersistence(Store);
    EXPECT_EQ(Service->restore(), RestoreOutcome::SnapshotOnly);
    Service->start();
    for (std::size_t I = 3; I < 6; ++I)
      ASSERT_TRUE(Service->submit(Batches[I]));
    Service->stop();
  }
  // Snapshot plus newer journal records: both rungs used.
  {
    CheckpointManager Store(Dir);
    auto Service = makeService(Fleet);
    Service->attachPersistence(Store);
    EXPECT_EQ(Service->restore(), RestoreOutcome::SnapshotPlusJournal);
    EXPECT_EQ(Service->persistedSequence(), 6U);
  }
}

// A clean stop + checkpoint + warm restart must be indistinguishable --
// byte for byte -- from never having restarted.
TEST(CrashRecovery, WarmRestartBitIdenticalToUninterruptedRun) {
  const std::vector<RecordedStream> Fleet = smallFleet();
  const std::vector<SampleBatch> Batches = roundRobin(Fleet);
  const std::size_t Half = Batches.size() / 2;
  const std::vector<std::uint8_t> RefHalf =
      referenceBytes(Fleet, Batches, Half);
  const std::vector<std::uint8_t> RefFull =
      referenceBytes(Fleet, Batches, Batches.size());

  const std::string Dir = scratchDir("warm");
  {
    CheckpointManager Store(Dir);
    auto Service = makeService(Fleet);
    Service->attachPersistence(Store);
    ASSERT_EQ(Service->restore(), RestoreOutcome::ColdStart);
    Service->start();
    for (std::size_t I = 0; I < Half; ++I)
      ASSERT_TRUE(Service->submit(Batches[I]));
    Service->stop();
    EXPECT_EQ(Service->encodeState(), RefHalf);
    ASSERT_TRUE(Service->checkpoint());
  }
  {
    CheckpointManager Store(Dir);
    auto Service = makeService(Fleet);
    Service->attachPersistence(Store);
    ASSERT_EQ(Service->restore(), RestoreOutcome::SnapshotOnly);
    EXPECT_EQ(Service->encodeState(), RefHalf) << "restored state diverged";
    Service->start();
    for (std::size_t I = Half; I < Batches.size(); ++I)
      ASSERT_TRUE(Service->submit(Batches[I]));
    Service->stop();
    EXPECT_EQ(Service->encodeState(), RefFull)
        << "continuation after warm restart diverged";
    EXPECT_EQ(Service->persistedSequence(), Batches.size());
  }
}

// Kill the process mid-journal-append at seeded byte budgets and assert
// the recovered service equals a reference that processed exactly the
// acknowledged batches. Budgets are derived from an accounting run, so
// the sweep hits just-before, exactly-at, and just-after record
// boundaries at the start, middle, and end of the run.
TEST(CrashRecovery, JournalAppendCrashSweepRecoversAcknowledgedPrefix) {
  const std::vector<RecordedStream> Fleet = smallFleet();
  std::vector<SampleBatch> Batches = roundRobin(Fleet);
  Batches.resize(std::min<std::size_t>(Batches.size(), 12));
  const std::size_t N = Batches.size();
  ASSERT_GE(N, 6U);

  // Accounting run: cumulative crash units after each acknowledged append.
  std::vector<std::uint64_t> Cum;
  {
    CheckpointManager Store(scratchDir("jsweep_acct"));
    auto Service = makeService(Fleet);
    Service->attachPersistence(Store);
    ASSERT_EQ(Service->restore(), RestoreOutcome::ColdStart);
    CrashPoint Acct = CrashPoint::unlimited();
    Store.armCrash(&Acct);
    Service->start();
    for (const SampleBatch &B : Batches) {
      ASSERT_TRUE(Service->submit(B));
      Cum.push_back(Acct.used());
    }
    Service->stop();
  }
  ASSERT_EQ(Cum.size(), N);

  std::set<std::uint64_t> Budgets = {0, 1};
  for (const std::size_t K : {std::size_t{0}, N / 2, N - 1}) {
    if (Cum[K] > 0)
      Budgets.insert(Cum[K] - 1); // torn one byte short of the record
    Budgets.insert(Cum[K]);       // exactly at the record boundary
    Budgets.insert(Cum[K] + 3);   // torn shortly into the next record
  }
  Budgets.insert(Cum.back() + 1'000'000); // never dies: all acknowledged

  for (const std::uint64_t Budget : Budgets) {
    SCOPED_TRACE("crash budget " + std::to_string(Budget));
    const std::string Dir = scratchDir("jsweep");
    std::size_t Acked = 0;
    {
      CheckpointManager Store(Dir);
      auto Service = makeService(Fleet);
      Service->attachPersistence(Store);
      ASSERT_EQ(Service->restore(), RestoreOutcome::ColdStart);
      CrashPoint Crash(Budget);
      Store.armCrash(&Crash);
      Service->start();
      for (const SampleBatch &B : Batches) {
        if (!Service->submit(B))
          break; // journal dead: the service refuses un-durable work
        ++Acked;
      }
      Service->stop();
      // The crashed process is abandoned with whatever torn tail it left.
    }
    if (Budget > Cum.back()) {
      EXPECT_EQ(Acked, N);
    }

    CheckpointManager Store(Dir);
    auto Service = makeService(Fleet);
    Service->attachPersistence(Store);
    const RestoreOutcome Outcome = Service->restore();
    // Recovery owns every acknowledged batch, plus at most the one record
    // that was fully written when the crash denied its acknowledgement
    // (durable-but-unacked: the write landed, the flush "failed"). Never
    // fewer than acked, never more than one extra.
    const std::uint64_t Replayed = Service->persistedSequence();
    EXPECT_GE(Replayed, Acked);
    EXPECT_LE(Replayed, std::min<std::uint64_t>(Acked + 1, N));
    EXPECT_EQ(Outcome, Replayed == 0 ? RestoreOutcome::ColdStart
                                     : RestoreOutcome::JournalOnly);
    EXPECT_EQ(Service->encodeState(),
              referenceBytes(Fleet, Batches, Replayed))
        << "recovered state is not a valid submission prefix (acked="
        << Acked << " replayed=" << Replayed << ")";
  }
}

// Kill the process inside a snapshot commit -- during the tmp write, the
// two renames, and journal compaction -- and assert recovery lands on
// either the old or the new snapshot with the journal bridging the rest:
// no kill point may lose acknowledged work or poison state.
TEST(CrashRecovery, SnapshotCommitCrashSweepNeverLosesState) {
  const std::vector<RecordedStream> Fleet = smallFleet();
  const std::vector<SampleBatch> Batches = roundRobin(Fleet);
  const std::size_t N = Batches.size();
  const std::size_t N1 = N / 3, N2 = 2 * N / 3;
  ASSERT_GT(N1, 0U);

  const std::string Base = scratchDir("csweep_base");
  // Phase A: first third, checkpoint #1.
  {
    CheckpointManager Store(Base);
    auto Service = makeService(Fleet);
    Service->attachPersistence(Store);
    ASSERT_EQ(Service->restore(), RestoreOutcome::ColdStart);
    Service->start();
    for (std::size_t I = 0; I < N1; ++I)
      ASSERT_TRUE(Service->submit(Batches[I]));
    Service->stop();
    ASSERT_TRUE(Service->checkpoint());
  }
  // Phase B: second third on top, stopping just before checkpoint #2.
  std::vector<std::uint8_t> RefMid;
  std::uint64_t TotalUnits = 0;
  std::uint64_t SnapLen = 0;
  const std::string Pristine = scratchDir("csweep_pristine");
  {
    CheckpointManager Store(Base);
    auto Service = makeService(Fleet);
    Service->attachPersistence(Store);
    ASSERT_EQ(Service->restore(), RestoreOutcome::SnapshotOnly);
    Service->start();
    for (std::size_t I = N1; I < N2; ++I)
      ASSERT_TRUE(Service->submit(Batches[I]));
    Service->stop();
    RefMid = Service->encodeState();
    SnapLen = RefMid.size();
    // Preserve the pre-commit directory, then run the accounting commit.
    std::filesystem::copy(Base, Pristine,
                          std::filesystem::copy_options::recursive);
    CrashPoint Acct = CrashPoint::unlimited();
    Store.armCrash(&Acct);
    ASSERT_TRUE(Service->checkpoint());
    TotalUnits = Acct.used();
  }
  ASSERT_GT(TotalUnits, SnapLen);
  const std::vector<std::uint8_t> RefFull = referenceBytes(Fleet, Batches, N);

  // Budgets: the tmp-write span, the rename window right after it, and
  // the compaction span at the end.
  std::set<std::uint64_t> Budgets = {0, 1, 2, SnapLen / 2};
  for (std::uint64_t D = 0; D <= 6; ++D)
    Budgets.insert(SnapLen + D); // around the two renames
  for (std::uint64_t D = 0; D <= 6 && D <= TotalUnits; ++D)
    Budgets.insert(TotalUnits - D); // inside compaction
  Budgets.insert(TotalUnits + 10); // clean commit

  bool SawFallback = false, SawNewSnapshot = false;
  for (const std::uint64_t Budget : Budgets) {
    SCOPED_TRACE("crash budget " + std::to_string(Budget));
    const std::string Dir = scratchDir("csweep");
    std::filesystem::remove_all(Dir);
    std::filesystem::copy(Pristine, Dir,
                          std::filesystem::copy_options::recursive);
    // Rebuild the pre-commit service from the copied directory, then
    // crash inside its checkpoint.
    {
      CheckpointManager Store(Dir);
      auto Service = makeService(Fleet);
      Service->attachPersistence(Store);
      const RestoreOutcome Outcome = Service->restore();
      EXPECT_TRUE(Outcome == RestoreOutcome::SnapshotPlusJournal)
          << toString(Outcome);
      ASSERT_EQ(Service->encodeState(), RefMid);
      CrashPoint Crash(Budget);
      Store.armCrash(&Crash);
      (void)Service->checkpoint(); // may die at any step
    }
    // Restart: recovery must reconstruct the same mid-run state...
    CheckpointManager Store(Dir);
    auto Service = makeService(Fleet);
    Service->attachPersistence(Store);
    const RestoreOutcome Outcome = Service->restore();
    EXPECT_NE(Outcome, RestoreOutcome::ColdStart);
    EXPECT_NE(Outcome, RestoreOutcome::JournalOnly);
    EXPECT_EQ(Service->encodeState(), RefMid)
        << "kill point corrupted or lost state (" << toString(Outcome)
        << ")";
    EXPECT_EQ(Service->persistedSequence(), N2);
    SawFallback |= Store.counters().FallbacksUsed > 0;
    SawNewSnapshot |= Outcome == RestoreOutcome::SnapshotOnly;
    EXPECT_EQ(Store.counters().ColdStarts, 0U);
    // ...and the continuation must stay bit-identical to never crashing.
    Service->start();
    for (std::size_t I = N2; I < N; ++I)
      ASSERT_TRUE(Service->submit(Batches[I]));
    Service->stop();
    EXPECT_EQ(Service->encodeState(), RefFull);
  }
  // The sweep must have exercised both sides of the commit point.
  EXPECT_TRUE(SawFallback) << "no budget landed before the commit point";
  EXPECT_TRUE(SawNewSnapshot) << "no budget completed the rename pair";
}

// Satellite: truncate and bit-flip a committed snapshot at *every* byte
// offset. Restore must reject the file cleanly (counted, no crash, no
// UB under ASan/UBSan) and fall back to journal replay, which still
// reconstructs the full acknowledged state because compaction only drops
// records the *fallback* rung covers -- and there is none here.
TEST(CrashRecovery, SnapshotFuzzEveryOffsetDegradesToJournalReplay) {
  std::vector<RecordedStream> Fleet;
  Fleet.push_back(record("synthetic.steady", 3));
  std::vector<SampleBatch> Batches = roundRobin(Fleet);
  Batches.resize(std::min<std::size_t>(Batches.size(), 3));
  const std::size_t N = Batches.size();
  ASSERT_GE(N, 2U);

  const std::string Dir = scratchDir("fuzz");
  std::vector<std::uint8_t> RefBytes;
  {
    CheckpointManager Store(Dir);
    auto Service = makeService(Fleet);
    Service->attachPersistence(Store);
    ASSERT_EQ(Service->restore(), RestoreOutcome::ColdStart);
    Service->start();
    for (const SampleBatch &B : Batches)
      ASSERT_TRUE(Service->submit(B));
    Service->stop();
    RefBytes = Service->encodeState();
    ASSERT_TRUE(Service->checkpoint());
  }
  const std::string SnapPath = Dir + "/snapshot.bin";
  const auto Snap = persist::readFileBytes(SnapPath);
  ASSERT_TRUE(Snap.has_value());
  ASSERT_FALSE(Snap->empty());

  const auto writeSnapshot = [&](std::span<const std::uint8_t> Data) {
    persist::FileSink Sink(SnapPath, /*Append=*/false, nullptr);
    ASSERT_TRUE(Sink.write(Data));
    ASSERT_TRUE(Sink.close());
  };
  const auto expectJournalRecovery = [&](const std::string &What) {
    CheckpointManager Store(Dir);
    auto Service = makeService(Fleet);
    Service->attachPersistence(Store);
    const RestoreOutcome Outcome = Service->restore();
    EXPECT_EQ(Outcome, RestoreOutcome::JournalOnly) << What;
    EXPECT_EQ(Store.counters().CorruptSnapshots, 1U) << What;
    EXPECT_EQ(Store.counters().ColdStarts, 1U) << What;
    EXPECT_EQ(Service->encodeState(), RefBytes) << What;
  };

  // Sanity: the intact snapshot restores without touching the journal.
  {
    CheckpointManager Store(Dir);
    auto Service = makeService(Fleet);
    Service->attachPersistence(Store);
    EXPECT_EQ(Service->restore(), RestoreOutcome::SnapshotOnly);
    EXPECT_EQ(Store.counters().CorruptSnapshots, 0U);
    EXPECT_EQ(Service->encodeState(), RefBytes);
  }

  for (std::size_t Len = 0; Len < Snap->size(); ++Len) {
    writeSnapshot(std::span<const std::uint8_t>(Snap->data(), Len));
    expectJournalRecovery("truncated to " + std::to_string(Len));
  }
  for (std::size_t Off = 0; Off < Snap->size(); ++Off) {
    std::vector<std::uint8_t> Mutated = *Snap;
    Mutated[Off] ^= static_cast<std::uint8_t>(1U << (Off % 8));
    writeSnapshot(Mutated);
    expectJournalRecovery("bit flip at offset " + std::to_string(Off));
  }
}

// Chaos variant: the same warm-restart bit-identity with a fault plan
// poisoning a third of the batches. Health-machine rejections happen at
// the door *after* journaling, so replay re-runs the same refusals and
// the recovered quarantine state matches the reference exactly.
TEST(CrashRecovery, WarmRestartBitIdenticalUnderFaultInjection) {
  const std::vector<RecordedStream> Fleet = smallFleet();
  faults::FaultConfig FaultCfg;
  FaultCfg.PoisonRate = 0.34;
  const faults::FaultPlan Plan(/*PlanSeed=*/11, FaultCfg);

  // Pre-build the faulted submission sequence once; both the reference
  // and the split run submit these exact batches in this exact order.
  std::vector<SampleBatch> Batches;
  {
    std::vector<faults::StreamFaultInjector> Injectors;
    for (StreamId Id = 0; Id < Fleet.size(); ++Id)
      Injectors.push_back(Plan.forStream(Id));
    for (const SampleBatch &Clean : roundRobin(Fleet)) {
      SampleBatch B{Clean.Stream, Injectors[Clean.Stream].apply(Clean.Samples)};
      if (Injectors[Clean.Stream].nextBatchFault() ==
          faults::BatchFault::Poison)
        faults::poisonBatch(B.Samples);
      Batches.push_back(std::move(B));
    }
  }
  const std::size_t Half = Batches.size() / 2;
  const std::vector<std::uint8_t> RefFull =
      referenceBytes(Fleet, Batches, Batches.size());

  const std::string Dir = scratchDir("chaos");
  std::uint64_t PoisonedFirstHalf = 0;
  {
    CheckpointManager Store(Dir);
    auto Service = makeService(Fleet);
    Service->attachPersistence(Store);
    ASSERT_EQ(Service->restore(), RestoreOutcome::ColdStart);
    Service->start();
    for (std::size_t I = 0; I < Half; ++I)
      (void)Service->submit(Batches[I]); // poisoned batches bounce, by design
    Service->stop();
    PoisonedFirstHalf = Service->snapshot().BatchesPoisoned;
    ASSERT_TRUE(Service->checkpoint());
  }
  EXPECT_GT(PoisonedFirstHalf, 0U) << "fault plan poisoned nothing";

  CheckpointManager Store(Dir);
  auto Service = makeService(Fleet);
  Service->attachPersistence(Store);
  const RestoreOutcome Outcome = Service->restore();
  EXPECT_EQ(Outcome, RestoreOutcome::SnapshotOnly);
  EXPECT_EQ(Service->snapshot().BatchesPoisoned, PoisonedFirstHalf)
      << "quarantine bookkeeping not restored";
  Service->start();
  for (std::size_t I = Half; I < Batches.size(); ++I)
    (void)Service->submit(Batches[I]);
  Service->stop();
  EXPECT_EQ(Service->encodeState(), RefFull);
}

// The payoff the ISSUE demands: a warm restart reaches its first stable
// phase in at most half the intervals a cold start needs. Measured on
// the monitor state actually carried through the snapshot codec.
TEST(CrashRecovery, WarmRestartStabilizesInHalfTheColdStartIntervals) {
  const RecordedStream S = record("synthetic.steady", 1);
  ASSERT_GT(S.Intervals.size(), 8U);

  const auto anyStable = [](const core::RegionMonitor &M) {
    for (const core::Region &R : M.regions())
      if (M.detector(R.Id).state() == core::LocalPhaseState::Stable)
        return true;
    return false;
  };
  const auto intervalsToStable = [&](core::RegionMonitor &M) {
    std::uint64_t Count = 0;
    for (const std::vector<Sample> &Interval : S.Intervals) {
      if (anyStable(M))
        return Count;
      M.observeInterval(Interval);
      ++Count;
    }
    return Count;
  };

  core::RegionMonitor Cold(*S.Map);
  const std::uint64_t ColdIntervals = intervalsToStable(Cold);
  ASSERT_GE(ColdIntervals, 2U) << "workload stabilizes too fast to measure";
  ASSERT_TRUE(anyStable(Cold)) << "workload never stabilized";

  // Checkpoint the trained monitor, restore into a fresh one, and replay
  // the stream from the top -- the warm-restart scenario.
  persist::ByteWriter W;
  persist::StateCodec::encode(W, Cold);
  core::RegionMonitor Warm(*S.Map);
  persist::ByteReader R(W.data());
  ASSERT_TRUE(persist::StateCodec::decode(R, Warm));
  const std::uint64_t WarmIntervals = intervalsToStable(Warm);
  EXPECT_LE(WarmIntervals * 2, ColdIntervals)
      << "warm=" << WarmIntervals << " cold=" << ColdIntervals;
}

} // namespace
