//===- tests/ChaosTest.cpp - Deterministic fault injection ----------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Chaos suite for the sampling -> service -> RTO stack: every fault the
// FaultPlan can inject is replayable bit-for-bit, the service's health
// machine quarantines and heals streams deterministically, a stalled
// worker cannot hold stop() hostage, and a failed trace deployment rolls
// back completely. Run under TSan/ASan via tools/run_sanitized_tests.sh.
//
//===----------------------------------------------------------------------===//

#include "faults/FaultPlan.h"

#include "core/RegionMonitor.h"
#include "rto/Harness.h"
#include "rto/TraceDeployments.h"
#include "sampling/Sampler.h"
#include "service/MonitorService.h"
#include "sim/Engine.h"
#include "sim/ProgramCodeMap.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace regmon;
using namespace regmon::faults;
using namespace regmon::service;

namespace {

/// One pre-recorded clean stream (same shape as ServiceConcurrencyTest).
struct RecordedStream {
  std::string WorkloadName;
  std::unique_ptr<workloads::Workload> W;
  std::unique_ptr<sim::ProgramCodeMap> Map;
  std::vector<std::vector<Sample>> Intervals;
};

RecordedStream record(const std::string &Name, std::uint64_t Seed,
                      Cycles Period = 45'000) {
  RecordedStream S;
  S.WorkloadName = Name;
  S.W = std::make_unique<workloads::Workload>(workloads::make(Name));
  S.Map = std::make_unique<sim::ProgramCodeMap>(S.W->Prog);
  sim::Engine Engine(S.W->Prog, S.W->Script, Seed);
  sampling::Sampler Sampler(Engine, {Period, 2032});
  S.Intervals = Sampler.collectIntervals();
  return S;
}

std::vector<RecordedStream> recordFleet() {
  const std::pair<const char *, std::uint64_t> Defs[] = {
      {"synthetic.steady", 21},
      {"synthetic.periodic", 22},
      {"synthetic.bottleneck", 23},
      {"synthetic.pollution", 24},
  };
  std::vector<RecordedStream> Fleet;
  Fleet.reserve(std::size(Defs));
  for (const auto &[Name, Seed] : Defs)
    Fleet.push_back(record(Name, Seed));
  return Fleet;
}

bool sameSamples(const std::vector<Sample> &A, const std::vector<Sample> &B) {
  if (A.size() != B.size())
    return false;
  for (std::size_t I = 0; I < A.size(); ++I)
    if (A[I].Pc != B[I].Pc || A[I].Time != B[I].Time ||
        A[I].DCacheMiss != B[I].DCacheMiss)
      return false;
  return true;
}

/// A config exercising every sample-level fault class at once.
FaultConfig heavyConfig() {
  FaultConfig Cfg;
  Cfg.DropRate = 0.25;
  Cfg.DuplicateRate = 0.15;
  Cfg.CorruptRate = 0.20;
  Cfg.PeriodJitterFrac = 0.5;
  Cfg.TruncateRate = 0.3;
  Cfg.PoisonRate = 0.1;
  Cfg.StallRate = 0.05;
  return Cfg;
}

//===----------------------------------------------------------------------===//
// Injector determinism and invariants
//===----------------------------------------------------------------------===//

TEST(FaultInjector, ReplayIsBitIdentical) {
  const RecordedStream S = record("synthetic.periodic", 31);
  const FaultPlan Plan(/*PlanSeed=*/42, heavyConfig());
  StreamFaultInjector A = Plan.forStream(0);
  StreamFaultInjector B = Plan.forStream(0);
  for (const std::vector<Sample> &Interval : S.Intervals) {
    EXPECT_TRUE(sameSamples(A.apply(Interval), B.apply(Interval)));
    EXPECT_EQ(A.nextBatchFault(), B.nextBatchFault());
  }
  EXPECT_EQ(A.stats().SamplesDropped, B.stats().SamplesDropped);
  EXPECT_EQ(A.stats().SamplesCorrupted, B.stats().SamplesCorrupted);
  EXPECT_EQ(A.stats().BatchesPoisoned, B.stats().BatchesPoisoned);
  EXPECT_GT(A.stats().SamplesDropped, 0u) << "heavy config must bite";
  EXPECT_GT(A.stats().SamplesCorrupted, 0u);
}

TEST(FaultInjector, ForStreamIsOrderIndependent) {
  const RecordedStream S = record("synthetic.steady", 32);
  const FaultPlan Plan(7, heavyConfig());
  // Derive stream 3's injector directly...
  StreamFaultInjector Direct = Plan.forStream(3);
  // ...and after touching other streams first, in a different order.
  const FaultPlan Same(7, heavyConfig());
  (void)Same.forStream(9);
  (void)Same.forStream(0);
  StreamFaultInjector Later = Same.forStream(3);
  EXPECT_TRUE(
      sameSamples(Direct.apply(S.Intervals[0]), Later.apply(S.Intervals[0])));
  EXPECT_EQ(Direct.nextBatchFault(), Later.nextBatchFault());
}

TEST(FaultInjector, DistinctStreamsGetDistinctFaults) {
  const RecordedStream S = record("synthetic.steady", 33);
  const FaultPlan Plan(11, heavyConfig());
  StreamFaultInjector A = Plan.forStream(0);
  StreamFaultInjector B = Plan.forStream(1);
  EXPECT_FALSE(
      sameSamples(A.apply(S.Intervals[0]), B.apply(S.Intervals[0])));
}

TEST(FaultInjector, SampleFaultsPreserveStructuralValidity) {
  // Sample-level faults are noise, not damage: whatever the injector does
  // (short of explicit poisoning), the batch must still pass the
  // service's structural validation.
  const RecordedStream S = record("synthetic.pollution", 34);
  StreamFaultInjector Inj(99, heavyConfig());
  for (const std::vector<Sample> &Interval : S.Intervals) {
    const std::vector<Sample> Faulted = Inj.apply(Interval);
    EXPECT_TRUE(structurallyValid(Faulted));
    for (const Sample &Sm : Faulted)
      EXPECT_EQ(Sm.Pc % InstrBytes, 0u);
  }
  EXPECT_GT(Inj.stats().BatchesTruncated, 0u);
}

TEST(FaultInjector, CertainDropLosesEverything) {
  FaultConfig Cfg;
  Cfg.DropRate = 1.0;
  StreamFaultInjector Inj(1, Cfg);
  const std::vector<Sample> Clean = {{0x1000, 10, false}, {0x1004, 20, true}};
  EXPECT_TRUE(Inj.apply(Clean).empty());
  EXPECT_EQ(Inj.stats().SamplesDropped, 2u);
}

TEST(FaultInjector, CertainDuplicationDoublesTheBatch) {
  FaultConfig Cfg;
  Cfg.DuplicateRate = 1.0;
  StreamFaultInjector Inj(2, Cfg);
  const std::vector<Sample> Clean = {{0x1000, 10, false}, {0x1004, 20, true}};
  EXPECT_EQ(Inj.apply(Clean).size(), 4u);
  EXPECT_EQ(Inj.stats().SamplesDuplicated, 2u);
}

TEST(FaultInjector, CorruptedPcsLandInTheConfiguredWindow) {
  FaultConfig Cfg;
  Cfg.CorruptRate = 1.0;
  StreamFaultInjector Inj(3, Cfg);
  const std::vector<Sample> Clean = {{0x1000, 10, false}, {0x1004, 20, true}};
  for (const Sample &S : Inj.apply(Clean)) {
    EXPECT_GE(S.Pc, Cfg.CorruptBase);
    EXPECT_LT(S.Pc, Cfg.CorruptBase + Cfg.CorruptSpan * InstrBytes);
  }
  EXPECT_EQ(Inj.stats().SamplesCorrupted, 2u);
}

TEST(FaultInjector, BatchFaultStreamIndependentOfSampleFaults) {
  // Poison/stall decisions come from their own generator: interleaving
  // apply() calls must not shift which batches get poisoned.
  const RecordedStream S = record("synthetic.steady", 35);
  const FaultPlan Plan(5, heavyConfig());
  StreamFaultInjector WithApply = Plan.forStream(0);
  StreamFaultInjector Bare = Plan.forStream(0);
  for (std::size_t I = 0; I < 32; ++I) {
    (void)WithApply.apply(S.Intervals[I % S.Intervals.size()]);
    EXPECT_EQ(WithApply.nextBatchFault(), Bare.nextBatchFault());
  }
}

TEST(FaultInjector, PoisonBatchFailsStructuralValidation) {
  const RecordedStream S = record("synthetic.steady", 36);
  std::vector<Sample> Batch = S.Intervals[0];
  ASSERT_TRUE(structurallyValid(Batch));
  poisonBatch(Batch);
  EXPECT_FALSE(structurallyValid(Batch));

  std::vector<Sample> Empty;
  poisonBatch(Empty);
  EXPECT_FALSE(structurallyValid(Empty));

  std::vector<Sample> One = {{0x1000, 10, false}};
  poisonBatch(One);
  EXPECT_FALSE(structurallyValid(One));
}

//===----------------------------------------------------------------------===//
// Summary-transport faults (fleet-tree links, see fleet/FleetTree.h)
//===----------------------------------------------------------------------===//

TEST(TransportFaults, ReplayIsBitIdentical) {
  const TransportFaultConfig Cfg = {0.2, 0.2, 0.2, 0.2};
  FaultPlan Plan(77);
  LinkFaultInjector A = Plan.forLink(5, Cfg);
  LinkFaultInjector B = Plan.forLink(5, Cfg);
  for (int I = 0; I < 500; ++I)
    ASSERT_EQ(A.nextFault(), B.nextFault()) << "message " << I;
  EXPECT_EQ(A.stats().MessagesSeen, 500u);
  EXPECT_EQ(A.stats().Dropped, B.stats().Dropped);
  EXPECT_EQ(A.stats().Duplicated, B.stats().Duplicated);
  EXPECT_EQ(A.stats().Reordered, B.stats().Reordered);
  EXPECT_EQ(A.stats().Stale, B.stats().Stale);
}

TEST(TransportFaults, DistinctLinksGetDistinctFaults) {
  const TransportFaultConfig Cfg = {0.3, 0.3, 0.3, 0.3};
  FaultPlan Plan(77);
  LinkFaultInjector A = Plan.forLink(1, Cfg);
  LinkFaultInjector B = Plan.forLink(2, Cfg);
  bool Differ = false;
  for (int I = 0; I < 200 && !Differ; ++I)
    Differ = A.nextFault() != B.nextFault();
  EXPECT_TRUE(Differ);
}

TEST(TransportFaults, DecisionStreamIndependentOfFiring) {
  // The always-drawn contract: one draw per fault class per message, at a
  // fixed position in the stream, consumed whether or not another class
  // fires. Observably, each class's per-message decision pattern is
  // invariant under every other class's rate -- maxing the later classes
  // cannot shift the drop pattern, and vice versa.
  FaultPlan Plan(123);

  LinkFaultInjector DropOnly = Plan.forLink(9, {0.5, 0.0, 0.0, 0.0});
  LinkFaultInjector DropNoisy = Plan.forLink(9, {0.5, 1.0, 1.0, 1.0});
  for (int I = 0; I < 400; ++I) {
    const bool Dropped = DropOnly.nextFault() == TransportFault::Drop;
    const bool NoisyDropped = DropNoisy.nextFault() == TransportFault::Drop;
    ASSERT_EQ(Dropped, NoisyDropped) << "message " << I;
  }
  EXPECT_EQ(DropOnly.stats().Dropped, DropNoisy.stats().Dropped);
  EXPECT_GT(DropOnly.stats().Dropped, 0u);

  // Symmetric: the reorder pattern is unmoved by the stale rate behind it.
  LinkFaultInjector ReorderOnly = Plan.forLink(9, {0.0, 0.0, 0.5, 0.0});
  LinkFaultInjector ReorderNoisy = Plan.forLink(9, {0.0, 0.0, 0.5, 1.0});
  for (int I = 0; I < 400; ++I) {
    const bool Held = ReorderOnly.nextFault() == TransportFault::Reorder;
    const bool NoisyHeld = ReorderNoisy.nextFault() == TransportFault::Reorder;
    ASSERT_EQ(Held, NoisyHeld) << "message " << I;
  }
  EXPECT_GT(ReorderOnly.stats().Reordered, 0u);
}

TEST(TransportFaults, PrecedenceIsDropDuplicateReorderStale) {
  // Every class at certainty: drop wins the returned fate (and the stats
  // record the winning fate only); zeroing the winner promotes the next.
  LinkFaultInjector All(7, {1.0, 1.0, 1.0, 1.0});
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(All.nextFault(), TransportFault::Drop);
  EXPECT_EQ(All.stats().Dropped, 50u);
  EXPECT_EQ(All.stats().Duplicated + All.stats().Reordered +
                All.stats().Stale,
            0u);

  LinkFaultInjector NoDrop(7, {0.0, 1.0, 1.0, 1.0});
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(NoDrop.nextFault(), TransportFault::Duplicate);

  LinkFaultInjector NoDup(7, {0.0, 0.0, 1.0, 1.0});
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(NoDup.nextFault(), TransportFault::Reorder);

  LinkFaultInjector StaleOnly(7, {0.0, 0.0, 0.0, 1.0});
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(StaleOnly.nextFault(), TransportFault::Stale);
}

TEST(TransportFaults, DefaultConfigInjectsNothing) {
  FaultPlan Plan(9);
  LinkFaultInjector Clean = Plan.forLink(0, {});
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Clean.nextFault(), TransportFault::None);
  EXPECT_EQ(Clean.stats().MessagesSeen, 100u);
  EXPECT_EQ(Clean.stats().Dropped + Clean.stats().Duplicated +
                Clean.stats().Reordered + Clean.stats().Stale,
            0u);
}

//===----------------------------------------------------------------------===//
// Service health machine (single-threaded: admission happens at submit)
//===----------------------------------------------------------------------===//

SampleBatch validBatch(StreamId Id) {
  return {Id, {{0x1000, 10, false}, {0x1004, 20, false}}};
}

SampleBatch poisonedBatch(StreamId Id) {
  SampleBatch B = validBatch(Id);
  poisonBatch(B.Samples);
  return B;
}

StreamSnapshot streamSnap(const MonitorService &Service, StreamId Id) {
  return Service.snapshot().Streams.at(Id);
}

TEST(StreamHealthMachine, PoisonEscalatesThroughQuarantineToRecovery) {
  const RecordedStream S = record("synthetic.steady", 41);
  MonitorService Service({/*Workers=*/1, /*QueueCapacity=*/256,
                          OverflowPolicy::Block, /*ValidateBatches=*/true,
                          {}});
  const StreamId Id = Service.addStream(*S.Map);

  EXPECT_TRUE(Service.submit(validBatch(Id)));
  EXPECT_EQ(streamSnap(Service, Id).Health, StreamHealth::Healthy);

  // First poisoned batch degrades; two more (threshold 3) quarantine.
  EXPECT_FALSE(Service.submit(poisonedBatch(Id)));
  EXPECT_EQ(streamSnap(Service, Id).Health, StreamHealth::Degraded);
  EXPECT_FALSE(Service.submit(poisonedBatch(Id)));
  EXPECT_EQ(streamSnap(Service, Id).Health, StreamHealth::Degraded);
  EXPECT_FALSE(Service.submit(poisonedBatch(Id)));
  EXPECT_EQ(streamSnap(Service, Id).Health, StreamHealth::Quarantined);
  EXPECT_EQ(streamSnap(Service, Id).TimesQuarantined, 1u);
  EXPECT_EQ(streamSnap(Service, Id).PoisonedBatches, 3u);

  // The first quarantine rejects QuarantineBaseBatches (8) batches --
  // even structurally valid ones -- then admits a probe.
  for (int I = 0; I < 8; ++I)
    EXPECT_FALSE(Service.submit(validBatch(Id))) << "backoff batch " << I;
  EXPECT_EQ(streamSnap(Service, Id).QuarantinedBatches, 8u);
  EXPECT_TRUE(Service.submit(validBatch(Id))) << "probe batch";
  EXPECT_EQ(streamSnap(Service, Id).Health, StreamHealth::Recovering);
  EXPECT_EQ(streamSnap(Service, Id).Readmissions, 1u);

  // Three more clean batches complete the 4-batch streak back to Healthy.
  EXPECT_TRUE(Service.submit(validBatch(Id)));
  EXPECT_TRUE(Service.submit(validBatch(Id)));
  EXPECT_EQ(streamSnap(Service, Id).Health, StreamHealth::Recovering);
  EXPECT_TRUE(Service.submit(validBatch(Id)));
  EXPECT_EQ(streamSnap(Service, Id).Health, StreamHealth::Healthy);

  // Health rejections never count as submitted: the invariant
  // processed + dropped == submitted must stay provable after drain.
  const ServiceSnapshot Snap = Service.snapshot();
  EXPECT_EQ(Snap.BatchesSubmitted, 5u);
  EXPECT_EQ(Snap.BatchesPoisoned, 3u);
  EXPECT_EQ(Snap.BatchesQuarantined, 8u);
  Service.start();
  Service.stop();
  const ServiceSnapshot Final = Service.snapshot();
  EXPECT_EQ(Final.BatchesProcessed + Final.BatchesDropped,
            Final.BatchesSubmitted);
}

/// Submits valid batches until one is admitted; returns how many were
/// rejected first (the observed backoff length).
std::uint64_t rejectionsUntilAdmitted(MonitorService &Service, StreamId Id) {
  std::uint64_t Rejected = 0;
  while (!Service.submit(validBatch(Id)))
    ++Rejected;
  return Rejected;
}

TEST(StreamHealthMachine, BackoffDoublesPerEpisodeCapsAndResets) {
  const RecordedStream S = record("synthetic.steady", 42);
  ServiceConfig Cfg{/*Workers=*/1, /*QueueCapacity=*/1024,
                    OverflowPolicy::Block, /*ValidateBatches=*/true, {}};
  Cfg.Health.PoisonQuarantineThreshold = 1;
  Cfg.Health.QuarantineBaseBatches = 2;
  Cfg.Health.QuarantineMaxBatches = 8;
  Cfg.Health.RecoveryCleanBatches = 2;
  MonitorService Service(Cfg);
  const StreamId Id = Service.addStream(*S.Map);

  // Episode 1: a single poisoned batch quarantines (threshold 1) with the
  // base backoff of 2.
  EXPECT_FALSE(Service.submit(poisonedBatch(Id)));
  EXPECT_EQ(streamSnap(Service, Id).Health, StreamHealth::Quarantined);
  EXPECT_EQ(rejectionsUntilAdmitted(Service, Id), 2u);
  EXPECT_EQ(streamSnap(Service, Id).Health, StreamHealth::Recovering);

  // Relapse before the streak completes: episode 2 doubles to 4.
  EXPECT_FALSE(Service.submit(poisonedBatch(Id)));
  EXPECT_EQ(rejectionsUntilAdmitted(Service, Id), 4u);

  // Episodes 3 and 4: 8, then capped at 8.
  EXPECT_FALSE(Service.submit(poisonedBatch(Id)));
  EXPECT_EQ(rejectionsUntilAdmitted(Service, Id), 8u);
  EXPECT_FALSE(Service.submit(poisonedBatch(Id)));
  EXPECT_EQ(rejectionsUntilAdmitted(Service, Id), 8u);
  EXPECT_EQ(streamSnap(Service, Id).TimesQuarantined, 4u);

  // Full recovery (probe + 1 = streak of 2) forgives the history...
  EXPECT_TRUE(Service.submit(validBatch(Id)));
  EXPECT_EQ(streamSnap(Service, Id).Health, StreamHealth::Healthy);

  // ...so the next quarantine starts from the base backoff again.
  EXPECT_FALSE(Service.submit(poisonedBatch(Id)));
  EXPECT_EQ(rejectionsUntilAdmitted(Service, Id), 2u);
  EXPECT_EQ(streamSnap(Service, Id).TimesQuarantined, 5u);
}

// Regression: the per-episode doubling used to be a bare `Backoff *= 2`
// loop, which wraps to zero when the base is a high power of two and the
// ceiling sits near UINT64_MAX -- exactly the configuration where the
// operator wanted "quarantine practically forever", the wrap turned it
// into "no quarantine at all". The helper must saturate instead.
TEST(StreamHealthMachine, BackoffSaturatesInsteadOfWrappingToZero) {
  HealthConfig H;
  H.QuarantineBaseBatches = std::uint64_t{1} << 63;
  H.QuarantineMaxBatches = UINT64_MAX;
  EXPECT_EQ(quarantineBackoffBatches(H, 1), std::uint64_t{1} << 63);
  // Episode 2 doubles 2^63 -- the wrap would yield 0 here.
  EXPECT_EQ(quarantineBackoffBatches(H, 2), UINT64_MAX);
  // Far-future episodes stay pinned (and the loop stays bounded).
  EXPECT_EQ(quarantineBackoffBatches(H, 1'000'000), UINT64_MAX);

  // The everyday path is unchanged: double per episode, cap at the
  // ceiling (the service-level test drives the same schedule end to end).
  HealthConfig Normal;
  Normal.QuarantineBaseBatches = 8;
  Normal.QuarantineMaxBatches = 1024;
  EXPECT_EQ(quarantineBackoffBatches(Normal, 1), 8U);
  EXPECT_EQ(quarantineBackoffBatches(Normal, 2), 16U);
  EXPECT_EQ(quarantineBackoffBatches(Normal, 5), 128U);
  EXPECT_EQ(quarantineBackoffBatches(Normal, 8), 1024U);
  EXPECT_EQ(quarantineBackoffBatches(Normal, 50), 1024U);
  // A ceiling below the base still wins.
  Normal.QuarantineMaxBatches = 4;
  EXPECT_EQ(quarantineBackoffBatches(Normal, 1), 4U);
  EXPECT_EQ(quarantineBackoffBatches(Normal, 3), 4U);
}

TEST(StreamHealthMachine, ValidationDisabledAdmitsEverything) {
  const RecordedStream S = record("synthetic.steady", 43);
  MonitorService Service({/*Workers=*/1, /*QueueCapacity=*/64,
                          OverflowPolicy::Block, /*ValidateBatches=*/false,
                          {}});
  const StreamId Id = Service.addStream(*S.Map);
  for (int I = 0; I < 8; ++I)
    EXPECT_TRUE(Service.submit(poisonedBatch(Id)));
  const StreamSnapshot Snap = streamSnap(Service, Id);
  EXPECT_EQ(Snap.Health, StreamHealth::Healthy);
  EXPECT_EQ(Snap.PoisonedBatches, 0u);
  EXPECT_EQ(Service.snapshot().BatchesSubmitted, 8u);
}

TEST(StreamHealthMachine, HealthIsPerStream) {
  const RecordedStream S = record("synthetic.steady", 44);
  MonitorService Service({/*Workers=*/2, /*QueueCapacity=*/64,
                          OverflowPolicy::Block, /*ValidateBatches=*/true,
                          {}});
  const StreamId Sick = Service.addStream(*S.Map);
  const StreamId Fine = Service.addStream(*S.Map);
  for (int I = 0; I < 3; ++I)
    EXPECT_FALSE(Service.submit(poisonedBatch(Sick)));
  EXPECT_EQ(streamSnap(Service, Sick).Health, StreamHealth::Quarantined);
  EXPECT_TRUE(Service.submit(validBatch(Fine)));
  EXPECT_EQ(streamSnap(Service, Fine).Health, StreamHealth::Healthy);
  EXPECT_EQ(streamSnap(Service, Fine).PoisonedBatches, 0u);
}

//===----------------------------------------------------------------------===//
// End-to-end chaos: threaded service under a full fault plan
//===----------------------------------------------------------------------===//

/// Runs the recorded fleet through a threaded service with the given
/// fault plan and returns every per-stream observable: monitor totals,
/// region bounds, and health counters. Two invocations must agree
/// bit-for-bit whatever the scheduler does.
std::vector<std::uint64_t> runChaos(const std::vector<RecordedStream> &Fleet,
                                    const FaultPlan &Plan,
                                    std::size_t Workers) {
  MonitorService Service({Workers, /*QueueCapacity=*/4,
                          OverflowPolicy::Block, /*ValidateBatches=*/true,
                          {}});
  for (const RecordedStream &S : Fleet)
    Service.addStream(*S.Map);
  Service.start();

  std::vector<std::thread> Producers;
  Producers.reserve(Fleet.size());
  for (StreamId Id = 0; Id < Fleet.size(); ++Id)
    Producers.emplace_back([&, Id] {
      StreamFaultInjector Inj = Plan.forStream(Id);
      for (const std::vector<Sample> &Interval : Fleet[Id].Intervals) {
        SampleBatch Batch{Id, Inj.apply(Interval)};
        if (Inj.nextBatchFault() == BatchFault::Poison)
          poisonBatch(Batch.Samples);
        (void)Service.submit(std::move(Batch)); // rejections are the point
      }
    });
  for (std::thread &T : Producers)
    T.join();
  Service.stop();

  std::vector<std::uint64_t> Result;
  const ServiceSnapshot Snap = Service.snapshot();
  for (StreamId Id = 0; Id < Fleet.size(); ++Id) {
    const core::RegionMonitor &Monitor = Service.monitor(Id);
    Result.push_back(Monitor.intervals());
    Result.push_back(Monitor.totalPhaseChanges());
    Result.push_back(Monitor.formationTriggers());
    Result.push_back(Monitor.totalSamples());
    Result.push_back(Monitor.regions().size());
    for (const core::Region &R : Monitor.regions()) {
      Result.push_back(R.Start);
      Result.push_back(R.End);
    }
    const StreamSnapshot &St = Snap.Streams[Id];
    Result.push_back(static_cast<std::uint64_t>(St.Health));
    Result.push_back(St.PoisonedBatches);
    Result.push_back(St.QuarantinedBatches);
    Result.push_back(St.TimesQuarantined);
    Result.push_back(St.Readmissions);
    Result.push_back(St.BatchesProcessed);
  }
  return Result;
}

TEST(ChaosReplay, ThreadedFaultedRunsAreBitIdentical) {
  const std::vector<RecordedStream> Fleet = recordFleet();
  const FaultPlan Plan(0xfeedULL, heavyConfig());
  const std::vector<std::uint64_t> A = runChaos(Fleet, Plan, 3);
  const std::vector<std::uint64_t> B = runChaos(Fleet, Plan, 3);
  EXPECT_EQ(A, B);
}

TEST(ChaosReplay, ResultsIndependentOfWorkerCount) {
  // Shard routing changes with the worker count, but per-stream results
  // must not: admission is decided at submit time and each stream's
  // batches stay ordered on whichever shard they land.
  const std::vector<RecordedStream> Fleet = recordFleet();
  const FaultPlan Plan(0xbeefULL, heavyConfig());
  EXPECT_EQ(runChaos(Fleet, Plan, 1), runChaos(Fleet, Plan, 4));
}

TEST(ChaosReplay, PoisonedStreamsHealAfterTheStorm) {
  // A stream whose collector is poisoned for a while and then heals must
  // end Healthy and process every post-storm batch.
  const RecordedStream S =
      record("synthetic.periodic", 45, /*Period=*/9'000);
  ASSERT_GE(S.Intervals.size(), 24u);
  MonitorService Service({/*Workers=*/2, /*QueueCapacity=*/8,
                          OverflowPolicy::Block, /*ValidateBatches=*/true,
                          {}});
  const StreamId Id = Service.addStream(*S.Map);
  Service.start();

  std::uint64_t Admitted = 0;
  for (std::size_t I = 0; I < S.Intervals.size(); ++I) {
    SampleBatch Batch{Id, S.Intervals[I]};
    if (I < 3) // the storm: three consecutive poisoned deliveries
      poisonBatch(Batch.Samples);
    if (Service.submit(std::move(Batch)))
      ++Admitted;
  }
  Service.stop();

  const StreamSnapshot Snap = streamSnap(Service, Id);
  EXPECT_EQ(Snap.Health, StreamHealth::Healthy);
  EXPECT_EQ(Snap.TimesQuarantined, 1u);
  EXPECT_EQ(Snap.PoisonedBatches, 3u);
  EXPECT_EQ(Snap.QuarantinedBatches, 8u);
  EXPECT_EQ(Snap.BatchesProcessed, Admitted);
  // Everything after the backoff window flowed through.
  EXPECT_EQ(Admitted, S.Intervals.size() - 3 - 8);
  EXPECT_EQ(Service.monitor(Id).intervals(), Admitted);
}

TEST(ChaosReplay, StalledWorkerDoesNotHoldStopHostage) {
  // A worker hook that stalls forever -- but polls stopRequested() as the
  // contract demands -- must not block stop() beyond its polling period.
  const RecordedStream S = record("synthetic.steady", 46);
  MonitorService Service({/*Workers=*/1, /*QueueCapacity=*/8,
                          OverflowPolicy::Block, /*ValidateBatches=*/true,
                          {}});
  const StreamId Id = Service.addStream(*S.Map);
  std::atomic<bool> Stalled{false};
  Service.setWorkerHook([&](std::size_t, const SampleBatch &) {
    Stalled.store(true, std::memory_order_release);
    while (!Service.stopRequested())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  ASSERT_TRUE(Service.submit({Id, S.Intervals[0]}));
  Service.start();
  while (!Stalled.load(std::memory_order_acquire))
    std::this_thread::yield();

  const auto T0 = std::chrono::steady_clock::now();
  Service.stop();
  const auto Elapsed = std::chrono::steady_clock::now() - T0;
  EXPECT_LT(Elapsed, std::chrono::seconds(10))
      << "stop() must be bounded by the hook's polling period";
  EXPECT_EQ(Service.snapshot().BatchesProcessed, 1u)
      << "the stalled batch still drains";
}

TEST(ChaosReplay, DropOldestOverflowStormConservesAccounting) {
  // Producers race tiny drop-oldest queues while workers drain: no
  // deadlock, and every submitted batch is processed, dropped or still
  // queued -- never lost.
  const RecordedStream S = record("synthetic.steady", 47);
  MonitorService Service({/*Workers=*/2, /*QueueCapacity=*/2,
                          OverflowPolicy::DropOldest,
                          /*ValidateBatches=*/true, {}});
  constexpr std::size_t StreamCount = 4;
  std::vector<StreamId> Ids;
  for (std::size_t I = 0; I < StreamCount; ++I)
    Ids.push_back(Service.addStream(*S.Map));
  Service.start();

  constexpr std::size_t PerStream = 200;
  std::vector<std::thread> Producers;
  for (const StreamId Id : Ids)
    Producers.emplace_back([&, Id] {
      for (std::size_t I = 0; I < PerStream; ++I)
        ASSERT_TRUE(Service.submit(validBatch(Id)))
            << "drop-oldest submissions never block or fail while running";
    });
  for (std::thread &T : Producers)
    T.join();
  Service.stop();

  const ServiceSnapshot Snap = Service.snapshot();
  EXPECT_EQ(Snap.BatchesSubmitted, StreamCount * PerStream);
  EXPECT_EQ(Snap.BatchesProcessed + Snap.BatchesDropped,
            Snap.BatchesSubmitted);
  EXPECT_EQ(Snap.QueueDepth, 0u);
}

//===----------------------------------------------------------------------===//
// Degraded-mode monitoring: under-sampling is missing evidence
//===----------------------------------------------------------------------===//

TEST(DegradedMode, DetectorGateSkipsUndersampledHistograms) {
  const auto Metric = core::makeSimilarity(core::SimilarityKind::Pearson);
  core::LocalDetectorConfig Cfg;
  Cfg.MinObserveSamples = 100;
  core::LocalPhaseDetector Det(/*InstrCount=*/8, *Metric, Cfg);

  // A well-sampled histogram advances the machine...
  std::vector<std::uint32_t> Full(8, 50); // 400 samples
  Det.observe(Full);
  EXPECT_EQ(Det.observedIntervals(), 1u);
  EXPECT_EQ(Det.skippedUndersampled(), 0u);

  // ...a sparse one is discounted entirely: no state change, no phase
  // change, not even an observation.
  std::vector<std::uint32_t> Sparse(8, 0);
  Sparse[0] = 3;
  const core::LocalPhaseState Before = Det.state();
  Det.observe(Sparse);
  EXPECT_EQ(Det.state(), Before);
  EXPECT_EQ(Det.observedIntervals(), 1u);
  EXPECT_EQ(Det.skippedUndersampled(), 1u);
  EXPECT_FALSE(Det.lastObservationChangedPhase());

  // The gate disabled (the paper's configuration) observes everything.
  core::LocalPhaseDetector Ungated(8, *Metric, {});
  Ungated.observe(Sparse);
  EXPECT_EQ(Ungated.observedIntervals(), 1u);
  EXPECT_EQ(Ungated.skippedUndersampled(), 0u);
}

TEST(DegradedMode, MonitorDiscountsUndersampledIntervals) {
  const RecordedStream S = record("synthetic.periodic", 48);
  core::RegionMonitorConfig Cfg;
  Cfg.MinIntervalSamples = 64;
  core::RegionMonitor Monitor(*S.Map, Cfg);

  // Feed the clean stream, but truncate every third interval to a stub
  // far below the gate.
  std::uint64_t Truncated = 0;
  for (std::size_t I = 0; I < S.Intervals.size(); ++I) {
    if (I % 3 == 2) {
      const std::vector<Sample> Stub(S.Intervals[I].begin(),
                                     S.Intervals[I].begin() + 10);
      Monitor.observeInterval(Stub);
      ++Truncated;
    } else {
      Monitor.observeInterval(S.Intervals[I]);
    }
  }
  EXPECT_EQ(Monitor.intervals(), S.Intervals.size());
  EXPECT_EQ(Monitor.undersampledIntervals(), Truncated);

  // An undersampled interval must never have triggered formation: with
  // only 10 samples the UCR fraction is high, but it is evidence of
  // nothing. Compare against an ungated monitor over the same input.
  core::RegionMonitor Ungated(*S.Map, {});
  for (std::size_t I = 0; I < S.Intervals.size(); ++I) {
    if (I % 3 == 2) {
      const std::vector<Sample> Stub(S.Intervals[I].begin(),
                                     S.Intervals[I].begin() + 10);
      Ungated.observeInterval(Stub);
    } else {
      Ungated.observeInterval(S.Intervals[I]);
    }
  }
  EXPECT_EQ(Ungated.undersampledIntervals(), 0u);
  EXPECT_LE(Monitor.formationTriggers(), Ungated.formationTriggers());
}

TEST(DegradedMode, GateIsInertOnCleanWellSampledStreams) {
  // On a clean stream every interval clears a small gate, so the gated
  // monitor must agree with the paper's configuration exactly.
  const RecordedStream S = record("synthetic.bottleneck", 49);
  core::RegionMonitorConfig Gated;
  Gated.MinIntervalSamples = 1;
  Gated.Lpd.MinObserveSamples = 1;
  core::RegionMonitor A(*S.Map, Gated);
  core::RegionMonitor B(*S.Map, {});
  for (const std::vector<Sample> &Interval : S.Intervals) {
    A.observeInterval(Interval);
    B.observeInterval(Interval);
  }
  EXPECT_EQ(A.totalPhaseChanges(), B.totalPhaseChanges());
  EXPECT_EQ(A.formationTriggers(), B.formationTriggers());
  EXPECT_EQ(A.regions().size(), B.regions().size());
  EXPECT_EQ(A.undersampledIntervals(), 0u);
}

//===----------------------------------------------------------------------===//
// RTO: failed deployments roll back completely
//===----------------------------------------------------------------------===//

TEST(DeployFaults, HookRollsBackTheWholeDeployment) {
  const workloads::Workload W = workloads::make("synthetic.bottleneck");
  const rto::OptimizationModel Model{W.Opportunities};
  sim::Engine Eng(W.Prog, W.Script, 1);
  rto::TraceDeployments T(Eng, Model, /*PatchOverheadCycles=*/1000);
  T.setDeployFaultHook([](sim::LoopId) { return true; });

  EXPECT_FALSE(T.deploy(0));
  EXPECT_FALSE(T.deployed(0)) << "a failed patch leaves no trace behind";
  EXPECT_EQ(T.patches(), 0u);
  EXPECT_EQ(T.failedPatches(), 1u);
  EXPECT_DOUBLE_EQ(Eng.speedup(0), 1.0) << "rate factors restored";
  // The attempt and the rollback both hit the critical path.
  EXPECT_EQ(Eng.cycles(), 2000u);
}

TEST(DeployFaults, CertainFailureDisablesOptimizationEntirely) {
  const workloads::Workload W = workloads::make("synthetic.steady");
  const rto::OptimizationModel Model = W.model();
  rto::RtoConfig Cfg;
  Cfg.DeployFailureRate = 1.0;
  const rto::RtoResult Faulted =
      runLocal(W.Prog, W.Script, Model, 3, Cfg);
  EXPECT_EQ(Faulted.Patches, 0u);
  EXPECT_GT(Faulted.FailedPatches, 0u);

  const rto::RtoResult Clean = runLocal(W.Prog, W.Script, Model, 3, {});
  EXPECT_EQ(Clean.FailedPatches, 0u);
  EXPECT_GT(Clean.Patches, 0u);
  // Failed patches are pure overhead: the faulted run can only be slower.
  EXPECT_GT(Faulted.TotalCycles, Clean.TotalCycles);
  EXPECT_DOUBLE_EQ(Faulted.TotalWork, Clean.TotalWork)
      << "rollback must not lose scripted work";
}

TEST(DeployFaults, FailurePatternReplaysAcrossRunsAndStrategies) {
  const workloads::Workload W = workloads::make("synthetic.periodic");
  const rto::OptimizationModel Model = W.model();
  rto::RtoConfig Cfg;
  Cfg.DeployFailureRate = 0.5;
  Cfg.DeployFailureSeed = 77;
  const rto::RtoResult A = runLocal(W.Prog, W.Script, Model, 3, Cfg);
  const rto::RtoResult B = runLocal(W.Prog, W.Script, Model, 3, Cfg);
  EXPECT_EQ(A.TotalCycles, B.TotalCycles);
  EXPECT_EQ(A.Patches, B.Patches);
  EXPECT_EQ(A.FailedPatches, B.FailedPatches);
  EXPECT_GT(A.FailedPatches, 0u);

  // The baseline strategy is subject to the same injected failures.
  const rto::RtoResult Orig = runOriginal(W.Prog, W.Script, Model, 3, Cfg);
  EXPECT_GT(Orig.FailedPatches, 0u);
}

} // namespace
