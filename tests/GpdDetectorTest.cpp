//===- tests/GpdDetectorTest.cpp - Centroid GPD state machine -------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gpd/CentroidPhaseDetector.h"

#include <gtest/gtest.h>

#include <vector>

using namespace regmon;
using namespace regmon::gpd;

namespace {

/// Feeds N identical centroids; with the default config the detector must
/// pass Unstable -> LessStable -> Stable.
TEST(CentroidDetector, ConstantCentroidStabilizes) {
  CentroidPhaseDetector D;
  GlobalPhaseState State = GlobalPhaseState::Unstable;
  for (int I = 0; I < 10; ++I)
    State = D.observeCentroid(100'000);
  EXPECT_EQ(State, GlobalPhaseState::Stable);
  EXPECT_EQ(D.phaseChanges(), 1u) << "exactly one entry into stable";
}

TEST(CentroidDetector, StartsUnstable) {
  CentroidPhaseDetector D;
  EXPECT_EQ(D.state(), GlobalPhaseState::Unstable);
  EXPECT_EQ(D.observeCentroid(100'000), GlobalPhaseState::Unstable)
      << "no band exists after one observation";
}

TEST(CentroidDetector, StabilizationLatency) {
  // Band needs 2 prior centroids; LessStable needs TimerIntervals (2) of
  // low drift: stable at the 5th identical centroid.
  CentroidPhaseDetector D;
  std::vector<GlobalPhaseState> States;
  for (int I = 0; I < 5; ++I)
    States.push_back(D.observeCentroid(50'000));
  EXPECT_EQ(States[0], GlobalPhaseState::Unstable);
  EXPECT_EQ(States[1], GlobalPhaseState::Unstable);
  EXPECT_EQ(States[2], GlobalPhaseState::LessStable);
  EXPECT_EQ(States[3], GlobalPhaseState::LessStable);
  EXPECT_EQ(States[4], GlobalPhaseState::Stable);
}

TEST(CentroidDetector, ModerateDriftEndsStablePhase) {
  CentroidPhaseDetector D;
  for (int I = 0; I < 8; ++I)
    D.observeCentroid(100'000);
  ASSERT_EQ(D.state(), GlobalPhaseState::Stable);
  // Drift beyond TH2 (5% of E): 100k -> 107k is ~7% outside the band.
  EXPECT_EQ(D.observeCentroid(107'000), GlobalPhaseState::Unstable);
  EXPECT_TRUE(D.lastIntervalChangedPhase());
  EXPECT_EQ(D.phaseChanges(), 2u);
}

TEST(CentroidDetector, SmallDriftToleratedWhileStable) {
  CentroidPhaseDetector D;
  for (int I = 0; I < 8; ++I)
    D.observeCentroid(100'000);
  ASSERT_EQ(D.state(), GlobalPhaseState::Stable);
  // 0.5% drift: inside TH2.
  EXPECT_EQ(D.observeCentroid(100'500), GlobalPhaseState::Stable);
  EXPECT_EQ(D.phaseChanges(), 1u);
}

TEST(CentroidDetector, Th3BouncesLessStableToUnstable) {
  CentroidPhaseDetector D;
  D.observeCentroid(100'000);
  D.observeCentroid(100'000);
  ASSERT_EQ(D.observeCentroid(100'000), GlobalPhaseState::LessStable);
  // 12% drift > TH3 while less-stable.
  EXPECT_EQ(D.observeCentroid(112'000), GlobalPhaseState::Unstable);
  EXPECT_EQ(D.phaseChanges(), 0u) << "never reached stable";
}

TEST(CentroidDetector, ModerateDriftRestartsTimer) {
  CentroidConfig Config;
  Config.TimerIntervals = 2;
  CentroidPhaseDetector D(Config);
  D.observeCentroid(100'000);
  D.observeCentroid(100'000);
  ASSERT_EQ(D.observeCentroid(100'000), GlobalPhaseState::LessStable);
  ASSERT_EQ(D.observeCentroid(100'000), GlobalPhaseState::LessStable);
  // Drift between TH1 and TH3 resets the quiet timer but stays LessStable.
  // History is {1e5 x4}: band is degenerate at 1e5, so 3% drift ~ 3000.
  ASSERT_EQ(D.observeCentroid(103'000), GlobalPhaseState::LessStable);
  // Needs two more quiet intervals before stabilizing again. The band now
  // contains 103k so SD widened; drift from band for 100k is small.
  EXPECT_EQ(D.observeCentroid(100'000), GlobalPhaseState::LessStable);
  EXPECT_EQ(D.observeCentroid(100'000), GlobalPhaseState::Stable);
}

TEST(CentroidDetector, Th4ClearsHistory) {
  CentroidPhaseDetector D;
  for (int I = 0; I < 8; ++I)
    D.observeCentroid(100'000);
  ASSERT_EQ(D.state(), GlobalPhaseState::Stable);
  // A wholesale working-set change: 100k -> 400k is a 300% drift.
  EXPECT_EQ(D.observeCentroid(400'000), GlobalPhaseState::Unstable);
  // After the reset the detector re-learns the new neighbourhood with the
  // standard latency (band after 2, timer 2).
  std::vector<GlobalPhaseState> States;
  for (int I = 0; I < 5; ++I)
    States.push_back(D.observeCentroid(400'000));
  EXPECT_EQ(States[4], GlobalPhaseState::Stable);
}

TEST(CentroidDetector, ThickBandBlocksStabilization) {
  // Alternating far-apart centroids: the band covers both poles but is
  // thicker than E/6, so the detector must never leave unstable. This is
  // the facerec scenario at large sampling periods.
  CentroidPhaseDetector D;
  for (int I = 0; I < 40; ++I)
    D.observeCentroid(I % 2 ? 400'000.0 : 100'000.0);
  EXPECT_EQ(D.stableIntervals(), 0u);
  EXPECT_EQ(D.phaseChanges(), 0u);
}

TEST(CentroidDetector, NarrowOscillationIsAbsorbed) {
  // A small symmetric oscillation (well within E/6) sits inside the band
  // of stability: the detector correctly treats it as one phase.
  CentroidPhaseDetector D;
  for (int I = 0; I < 12; ++I)
    D.observeCentroid(I % 2 ? 100'300.0 : 100'000.0);
  EXPECT_EQ(D.state(), GlobalPhaseState::Stable);
}

TEST(CentroidDetector, ObserveIntervalAveragesPcs) {
  CentroidPhaseDetector A, B;
  std::vector<Sample> Buffer;
  for (int I = 0; I < 100; ++I)
    Buffer.push_back(Sample{static_cast<Addr>(99'950 + I), 0});
  for (int I = 0; I < 6; ++I)
    A.observeInterval(Buffer);
  for (int I = 0; I < 6; ++I)
    B.observeCentroid(99'999.5);
  EXPECT_EQ(A.state(), B.state());
}

TEST(CentroidDetector, StableFractionAndTimeline) {
  CentroidPhaseDetector D;
  for (int I = 0; I < 10; ++I)
    D.observeCentroid(100'000);
  EXPECT_EQ(D.intervals(), 10u);
  EXPECT_EQ(D.stableIntervals(), 6u) << "stable from the 5th interval";
  EXPECT_DOUBLE_EQ(D.stableFraction(), 0.6);
  ASSERT_EQ(D.timeline().size(), 10u);
  EXPECT_EQ(D.timeline()[0], GlobalPhaseState::Unstable);
  EXPECT_EQ(D.timeline()[9], GlobalPhaseState::Stable);
}

TEST(CentroidDetector, PhaseChangeCountsBothDirections) {
  CentroidPhaseDetector D;
  for (int Cycle = 0; Cycle < 3; ++Cycle) {
    for (int I = 0; I < 8; ++I)
      D.observeCentroid(100'000);
    D.observeCentroid(110'000); // leave stable
    // Re-enter the original neighbourhood; it restabilizes.
  }
  // Each cycle: one entry + one exit.
  EXPECT_EQ(D.phaseChanges(), 6u);
}

TEST(CentroidDetector, AdaptiveWindowShrinksOnChangeAndRegrows) {
  CentroidConfig Config;
  Config.AdaptiveWindow = true;
  Config.MinHistoryLength = 3;
  Config.MaxHistoryLength = 8;
  Config.HistoryLength = 8;
  Config.GrowAfterStableIntervals = 2;
  CentroidPhaseDetector D(Config);
  for (int I = 0; I < 10; ++I)
    D.observeCentroid(100'000);
  ASSERT_EQ(D.state(), GlobalPhaseState::Stable);
  // Leave stable: the window must collapse to the minimum, making the
  // band re-form around the new neighbourhood quickly.
  D.observeCentroid(115'000);
  ASSERT_TRUE(D.lastIntervalChangedPhase());
  // Re-stabilize at the new centroid: with a 3-entry window this takes
  // the minimum latency again.
  std::vector<GlobalPhaseState> States;
  for (int I = 0; I < 6; ++I)
    States.push_back(D.observeCentroid(115'000));
  EXPECT_EQ(States[4], GlobalPhaseState::Stable);
}

TEST(CentroidDetector, AdaptiveWindowRestabilizesFasterThanConstant) {
  // After a genuine transition, the adaptive detector must not be slower
  // to re-enter stable than the constant-window one.
  const auto StableAfter = [](bool Adaptive) {
    CentroidConfig Config;
    Config.AdaptiveWindow = Adaptive;
    CentroidPhaseDetector D(Config);
    for (int I = 0; I < 12; ++I)
      D.observeCentroid(100'000);
    D.observeCentroid(300'000); // working-set change
    int Steps = 0;
    while (D.state() != GlobalPhaseState::Stable && Steps < 50) {
      D.observeCentroid(300'000);
      ++Steps;
    }
    return Steps;
  };
  EXPECT_LE(StableAfter(true), StableAfter(false));
}

/// Property sweep over drift sizes: from a stable state, drifts below TH2
/// never end the phase, drifts above do.
class DriftThresholdTest : public ::testing::TestWithParam<double> {};

TEST_P(DriftThresholdTest, Th2GovernsStableExit) {
  const double DriftFraction = GetParam();
  CentroidPhaseDetector D;
  for (int I = 0; I < 8; ++I)
    D.observeCentroid(200'000);
  ASSERT_EQ(D.state(), GlobalPhaseState::Stable);
  const double Next = 200'000 * (1.0 + DriftFraction);
  const GlobalPhaseState After = D.observeCentroid(Next);
  if (DriftFraction > 0.052) { // SD ~ 0: band is a point; TH2 = 5%
    EXPECT_EQ(After, GlobalPhaseState::Unstable) << DriftFraction;
  } else if (DriftFraction < 0.048) {
    EXPECT_EQ(After, GlobalPhaseState::Stable) << DriftFraction;
  }
}

INSTANTIATE_TEST_SUITE_P(Drifts, DriftThresholdTest,
                         ::testing::Values(0.0, 0.01, 0.02, 0.03, 0.04,
                                           0.06, 0.08, 0.12, 0.3, 0.6));

} // namespace
