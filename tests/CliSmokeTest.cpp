//===- tests/CliSmokeTest.cpp - regmon-cli exit-code contract -------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Pins the CLI's process contract: 0 success, 1 runtime failure, 2 usage
// error; --help on stdout, diagnostics on stderr. Scripts and the CI
// replay-determinism job branch on these codes, so a change here is an
// interface break, not a cosmetic one. Every case shells out to the real
// binary (REGMON_CLI_PATH, injected by CMake) -- no main() re-entry.
//
//===----------------------------------------------------------------------===//

#include "trace/Format.h"

#include "persist/Bytes.h"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct RunResult {
  int Exit = -1;
  std::string Out;
  std::string Err;
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream S;
  S << In.rdbuf();
  return S.str();
}

/// Runs `regmon-cli <Args>` with stdout/stderr captured to scratch files.
RunResult run(const std::string &Args) {
  static int Counter = 0;
  const std::string Base = ::testing::TempDir() + "regmon_cli_smoke_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(Counter++);
  const std::string OutPath = Base + ".out";
  const std::string ErrPath = Base + ".err";
  const std::string Cmd = std::string("\"") + REGMON_CLI_PATH + "\" " + Args +
                          " >\"" + OutPath + "\" 2>\"" + ErrPath + "\"";
  const int Status = std::system(Cmd.c_str());
  RunResult R;
  if (WIFEXITED(Status))
    R.Exit = WEXITSTATUS(Status);
  R.Out = slurp(OutPath);
  R.Err = slurp(ErrPath);
  std::remove(OutPath.c_str());
  std::remove(ErrPath.c_str());
  return R;
}

TEST(CliSmoke, HelpGoesToStdoutAndExitsZero) {
  for (const char *Spelling : {"--help", "-h", "help"}) {
    const RunResult R = run(Spelling);
    EXPECT_EQ(R.Exit, 0) << Spelling;
    EXPECT_NE(R.Out.find("usage:"), std::string::npos) << Spelling;
    EXPECT_NE(R.Out.find("trace-verify"), std::string::npos)
        << "the usage text must cover the flight-recorder commands";
    EXPECT_TRUE(R.Err.empty()) << Spelling << ": " << R.Err;
  }
}

TEST(CliSmoke, NoArgumentsIsAUsageError) {
  const RunResult R = run("");
  EXPECT_EQ(R.Exit, 2);
  EXPECT_TRUE(R.Out.empty()) << R.Out;
  EXPECT_NE(R.Err.find("usage:"), std::string::npos);
}

TEST(CliSmoke, UnknownCommandIsAUsageError) {
  const RunResult R = run("frobnicate");
  EXPECT_EQ(R.Exit, 2);
  EXPECT_NE(R.Err.find("unknown command 'frobnicate'"), std::string::npos);
}

TEST(CliSmoke, UnknownFlagIsAUsageError) {
  const RunResult R = run("monitor synthetic.steady --no-such-flag");
  EXPECT_EQ(R.Exit, 2);
  EXPECT_NE(R.Err.find("unknown flag '--no-such-flag'"), std::string::npos);
}

TEST(CliSmoke, UnknownWorkloadIsAUsageError) {
  const RunResult R = run("monitor no.such.workload");
  EXPECT_EQ(R.Exit, 2);
  EXPECT_NE(R.Err.find("unknown workload"), std::string::npos);
}

TEST(CliSmoke, ListSucceedsAndNamesWorkloads) {
  const RunResult R = run("list");
  EXPECT_EQ(R.Exit, 0);
  EXPECT_NE(R.Out.find("synthetic.steady"), std::string::npos);
  EXPECT_TRUE(R.Err.empty()) << R.Err;
}

TEST(CliSmoke, TraceVerifyWithoutTraceIsAUsageError) {
  const RunResult R = run("trace-verify");
  EXPECT_EQ(R.Exit, 2);
  EXPECT_NE(R.Err.find("trace-verify needs --trace"), std::string::npos);
}

TEST(CliSmoke, TraceVerifyMissingFileIsARuntimeFailure) {
  const RunResult R = run("trace-verify --trace /no/such/trace.bin");
  EXPECT_EQ(R.Exit, 1);
  EXPECT_NE(R.Err.find("no trace at"), std::string::npos);
}

/// The operator walkthrough in miniature: a torn trace verifies as
/// damaged (exit 1), --repair truncates it, and the repaired file
/// verifies intact (exit 0).
TEST(CliSmoke, TraceVerifyRepairRoundTrip) {
  const std::string Trace = ::testing::TempDir() + "regmon_cli_smoke_" +
                            std::to_string(::getpid()) + ".trace.bin";
  std::remove(Trace.c_str());
  {
    regmon::persist::ByteWriter W;
    regmon::trace::encodeTraceHeader(W);
    W.u8(0xAB); // one garbage byte: a torn record header
    std::ofstream Out(Trace, std::ios::binary);
    Out.write(reinterpret_cast<const char *>(W.data().data()),
              static_cast<std::streamsize>(W.size()));
  }

  const std::string Flag = " --trace \"" + Trace + "\"";
  const RunResult Damaged = run("trace-verify" + Flag);
  EXPECT_EQ(Damaged.Exit, 1);
  EXPECT_NE(Damaged.Out.find("torn-tail"), std::string::npos);
  EXPECT_NE(Damaged.Err.find("--repair"), std::string::npos)
      << "a repairable file must advertise the fix";

  const RunResult Repaired = run("trace-verify" + Flag + " --repair");
  EXPECT_EQ(Repaired.Exit, 0);
  EXPECT_NE(Repaired.Out.find("repaired"), std::string::npos);

  const RunResult Clean = run("trace-verify" + Flag);
  EXPECT_EQ(Clean.Exit, 0);
  EXPECT_NE(Clean.Out.find("intact"), std::string::npos);
  std::remove(Trace.c_str());
}

} // namespace
