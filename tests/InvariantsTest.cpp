//===- tests/InvariantsTest.cpp - Cross-cutting system invariants ---------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Invariants that must hold for *every* workload in the catalogue, checked
/// by one full monitored run each. These catch accounting bugs that
/// pointwise unit tests miss: sample conservation across attribution and
/// the UCR, stability bookkeeping, and the parity relation between phase
/// changes and the current state.
///
//===----------------------------------------------------------------------===//

#include "core/RegionMonitor.h"
#include "gpd/CentroidPhaseDetector.h"
#include "sampling/Sampler.h"
#include "sim/Engine.h"
#include "sim/ProgramCodeMap.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace regmon;

namespace {

/// One monitored run of the parameterized workload at 450K (cheap: ~10x
/// fewer samples than 45K, same code paths).
class WorkloadInvariantsTest : public ::testing::TestWithParam<std::string> {
protected:
  void SetUp() override {
    W = std::make_unique<workloads::Workload>(
        workloads::make(GetParam()));
    Map = std::make_unique<sim::ProgramCodeMap>(W->Prog);
    Monitor = std::make_unique<core::RegionMonitor>(*Map);
    sim::Engine Engine(W->Prog, W->Script, /*Seed=*/1);
    sampling::Sampler Sampler(Engine, {450'000, 2032});
    Sampler.run([&](std::span<const Sample> Buffer) {
      Monitor->observeInterval(Buffer);
      Gpd.observeInterval(Buffer);
      ++Intervals;
    });
  }

  std::unique_ptr<workloads::Workload> W;
  std::unique_ptr<sim::ProgramCodeMap> Map;
  std::unique_ptr<core::RegionMonitor> Monitor;
  gpd::CentroidPhaseDetector Gpd;
  std::uint64_t Intervals = 0;
};

TEST_P(WorkloadInvariantsTest, SampleConservation) {
  // No workload in the catalogue has overlapping regions, so every sample
  // lands in exactly one region or the UCR:
  //   sum(region samples) + sum(UCR samples) == intervals * buffer.
  std::uint64_t Attributed = 0;
  for (const core::Region &R : Monitor->regions())
    Attributed += Monitor->stats(R.Id).TotalSamples;
  double UcrSamples = 0;
  for (double Fraction : Monitor->ucrHistory())
    UcrSamples += Fraction * 2032.0;
  EXPECT_NEAR(static_cast<double>(Attributed) + UcrSamples,
              static_cast<double>(Intervals) * 2032.0, 0.5)
      << "samples leaked or were double-counted";
}

TEST_P(WorkloadInvariantsTest, PerRegionAccounting) {
  for (const core::Region &R : Monitor->regions()) {
    const core::RegionStats &S = Monitor->stats(R.Id);
    EXPECT_LE(S.ActiveIntervals, S.LifetimeIntervals) << R.Name;
    EXPECT_LE(S.LifetimeIntervals, Intervals) << R.Name;
    EXPECT_LE(S.StableIntervals, S.LifetimeIntervals) << R.Name;
    EXPECT_LE(S.TotalMisses, S.TotalSamples) << R.Name;
    EXPECT_GE(S.missFraction(), 0.0);
    EXPECT_LE(S.missFraction(), 1.0);
    EXPECT_EQ(S.LifetimeIntervals, Intervals - R.FormedAtInterval)
        << R.Name << ": no pruning configured, lifetime is exact";
  }
}

TEST_P(WorkloadInvariantsTest, PhaseChangeParity) {
  // Every region starts unstable and each counted change toggles
  // stability, so: currently stable <=> an odd number of phase changes.
  for (core::RegionId Id : Monitor->activeRegionIds()) {
    const bool Stable = Monitor->detector(Id).state() ==
                        core::LocalPhaseState::Stable;
    EXPECT_EQ(Monitor->stats(Id).PhaseChanges % 2 == 1, Stable)
        << Monitor->regions()[Id].Name;
  }
  const bool GpdStable = Gpd.state() == gpd::GlobalPhaseState::Stable;
  EXPECT_EQ(Gpd.phaseChanges() % 2 == 1, GpdStable);
}

TEST_P(WorkloadInvariantsTest, TimelinesAndHistoriesAlign) {
  EXPECT_EQ(Monitor->intervals(), Intervals);
  EXPECT_EQ(Monitor->ucrHistory().size(), Intervals);
  EXPECT_EQ(Gpd.intervals(), Intervals);
  EXPECT_EQ(Gpd.timeline().size(), Intervals);
  for (double Fraction : Monitor->ucrHistory()) {
    EXPECT_GE(Fraction, 0.0);
    EXPECT_LE(Fraction, 1.0);
  }
}

TEST_P(WorkloadInvariantsTest, RegionsMatchFormableLoops) {
  // Every formed region must correspond exactly to a regionable loop of
  // the program (formation only proposes loop bounds).
  for (const core::Region &R : Monitor->regions()) {
    const bool Matches = std::any_of(
        W->Prog.loops().begin(), W->Prog.loops().end(),
        [&](const sim::Loop &L) {
          return L.Regionable && L.Start == R.Start && L.End == R.End;
        });
    EXPECT_TRUE(Matches) << R.Name;
  }
}

TEST_P(WorkloadInvariantsTest, LastRWithinBounds) {
  for (core::RegionId Id : Monitor->activeRegionIds()) {
    const double R = Monitor->detector(Id).lastR();
    EXPECT_GE(R, -1.0 - 1e-9);
    EXPECT_LE(R, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadInvariantsTest,
                         ::testing::ValuesIn(workloads::allNames()),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           std::replace(Name.begin(), Name.end(), '.', '_');
                           return Name;
                         });

} // namespace
