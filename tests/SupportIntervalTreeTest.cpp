//===- tests/SupportIntervalTreeTest.cpp - Interval tree ------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/IntervalTree.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

using namespace regmon;

namespace {

std::vector<std::uint32_t> stabSorted(const IntervalTree &T, Addr P) {
  std::vector<std::uint32_t> Out;
  T.stab(P, Out);
  std::sort(Out.begin(), Out.end());
  return Out;
}

TEST(IntervalTree, EmptyTree) {
  IntervalTree T;
  EXPECT_TRUE(T.empty());
  EXPECT_EQ(T.size(), 0u);
  EXPECT_TRUE(stabSorted(T, 100).empty());
  EXPECT_TRUE(T.checkInvariants());
}

TEST(IntervalTree, SingleInterval) {
  IntervalTree T;
  T.insert(100, 200, 7);
  EXPECT_EQ(T.size(), 1u);
  EXPECT_EQ(stabSorted(T, 100), std::vector<std::uint32_t>{7}); // inclusive
  EXPECT_EQ(stabSorted(T, 199), std::vector<std::uint32_t>{7});
  EXPECT_TRUE(stabSorted(T, 200).empty()); // exclusive end
  EXPECT_TRUE(stabSorted(T, 99).empty());
}

TEST(IntervalTree, OverlappingIntervalsAllReported) {
  IntervalTree T;
  T.insert(0, 1000, 1);  // outer
  T.insert(100, 200, 2); // nested
  T.insert(150, 300, 3); // straddles
  EXPECT_EQ(stabSorted(T, 160), (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(stabSorted(T, 250), (std::vector<std::uint32_t>{1, 3}));
  EXPECT_EQ(stabSorted(T, 50), std::vector<std::uint32_t>{1});
}

TEST(IntervalTree, DuplicateIntervalsCoexist) {
  IntervalTree T;
  T.insert(10, 20, 1);
  T.insert(10, 20, 2);
  EXPECT_EQ(T.size(), 2u);
  EXPECT_EQ(stabSorted(T, 15), (std::vector<std::uint32_t>{1, 2}));
}

TEST(IntervalTree, EraseExactEntry) {
  IntervalTree T;
  T.insert(10, 20, 1);
  T.insert(10, 20, 2);
  EXPECT_TRUE(T.erase(10, 20, 1));
  EXPECT_EQ(stabSorted(T, 15), std::vector<std::uint32_t>{2});
  EXPECT_FALSE(T.erase(10, 20, 1)) << "already erased";
  EXPECT_FALSE(T.erase(11, 20, 2)) << "bounds must match exactly";
  EXPECT_TRUE(T.checkInvariants());
}

TEST(IntervalTree, ClearEmptiesTree) {
  IntervalTree T;
  for (std::uint32_t I = 0; I < 100; ++I)
    T.insert(I * 10, I * 10 + 5, I);
  T.clear();
  EXPECT_TRUE(T.empty());
  EXPECT_TRUE(stabSorted(T, 42).empty());
  T.insert(1, 2, 9);
  EXPECT_EQ(T.size(), 1u);
}

TEST(IntervalTree, MoveTransfersContents) {
  IntervalTree T;
  T.insert(5, 10, 3);
  IntervalTree U = std::move(T);
  EXPECT_EQ(stabSorted(U, 7), std::vector<std::uint32_t>{3});
}

TEST(IntervalTree, SortedAscendingInsertStaysBalanced) {
  IntervalTree T;
  for (std::uint32_t I = 0; I < 4096; ++I)
    T.insert(I * 8, I * 8 + 4, I);
  EXPECT_TRUE(T.checkInvariants()) << "AVL balance violated";
  EXPECT_EQ(stabSorted(T, 8 * 1000 + 2), std::vector<std::uint32_t>{1000});
}

TEST(IntervalTree, EntriesReturnsAllInStartOrder) {
  IntervalTree T;
  T.insert(30, 40, 3);
  T.insert(10, 20, 1);
  T.insert(20, 30, 2);
  const auto Entries = T.entries();
  ASSERT_EQ(Entries.size(), 3u);
  EXPECT_EQ(Entries[0].Start, 10u);
  EXPECT_EQ(Entries[1].Start, 20u);
  EXPECT_EQ(Entries[2].Start, 30u);
}

TEST(IntervalTree, FunctionVisitorVariant) {
  IntervalTree T;
  T.insert(0, 10, 1);
  T.insert(5, 15, 2);
  std::vector<std::uint32_t> Seen;
  T.stab(7, [&Seen](std::uint32_t V) { Seen.push_back(V); });
  std::sort(Seen.begin(), Seen.end());
  EXPECT_EQ(Seen, (std::vector<std::uint32_t>{1, 2}));
}

TEST(IntervalTree, EmptyTreeBoundaryQueries) {
  IntervalTree T;
  EXPECT_TRUE(stabSorted(T, 0).empty());
  EXPECT_TRUE(stabSorted(T, ~Addr{0}).empty());
  std::size_t Visits = 0;
  T.stab(42, [&Visits](std::uint32_t) { ++Visits; });
  EXPECT_EQ(Visits, 0u);
  EXPECT_FALSE(T.erase(0, 1, 0)) << "nothing to erase in an empty tree";
  EXPECT_TRUE(T.checkInvariants());
}

TEST(IntervalTree, FullyOverlappingRegionsAllReported) {
  // Identical spans plus concentric nesting: a stab in the common core
  // reports every region, as overlapping-region attribution requires.
  IntervalTree T;
  for (std::uint32_t I = 0; I < 8; ++I)
    T.insert(100, 200, I); // eight identical spans
  for (std::uint32_t I = 0; I < 4; ++I)
    T.insert(100 + 10 * I, 200 - 10 * I, 8 + I); // concentric shells
  std::vector<std::uint32_t> Want;
  for (std::uint32_t I = 0; I < 12; ++I)
    Want.push_back(I);
  EXPECT_EQ(stabSorted(T, 150), Want);
  // Outside the innermost shell only the enclosing ones remain.
  EXPECT_EQ(stabSorted(T, 105),
            (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_TRUE(T.checkInvariants());
}

TEST(IntervalTree, PointIntervalBoundaries) {
  // The narrowest legal interval is one instruction wide: [lo, lo + 1).
  // Its single point stabs; both neighbours miss.
  IntervalTree T;
  T.insert(100, 101, 1);
  EXPECT_EQ(stabSorted(T, 100), std::vector<std::uint32_t>{1});
  EXPECT_TRUE(stabSorted(T, 99).empty());
  EXPECT_TRUE(stabSorted(T, 101).empty());

  // Adjacent point intervals tile without overlap: lo == hi of the
  // previous interval belongs to the next one only.
  T.insert(101, 102, 2);
  EXPECT_EQ(stabSorted(T, 101), std::vector<std::uint32_t>{2});
  EXPECT_EQ(stabSorted(T, 100), std::vector<std::uint32_t>{1});
  EXPECT_TRUE(stabSorted(T, 102).empty());
  EXPECT_TRUE(T.checkInvariants());
}

#ifndef NDEBUG
TEST(IntervalTreeDeathTest, DegenerateEmptyIntervalRejected) {
  // lo == hi denotes an empty half-open interval; the tree's contract
  // (Start < End) rejects it rather than storing an unstabbable entry.
  IntervalTree T;
  EXPECT_DEATH_IF_SUPPORTED(T.insert(100, 100, 1), "non-empty");
}
#endif

/// Property sweep: against a naive reference over random interval sets,
/// with interleaved random erasures, every stab agrees and the AVL/max-end
/// invariants hold throughout.
class IntervalTreeFuzzTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IntervalTreeFuzzTest, MatchesNaiveReference) {
  Rng Random(GetParam());
  IntervalTree T;
  struct Ref {
    Addr Start, End;
    std::uint32_t Value;
  };
  std::vector<Ref> Reference;

  const std::size_t Ops = 400;
  for (std::size_t Op = 0; Op < Ops; ++Op) {
    const bool Erase = !Reference.empty() && Random.nextBelow(4) == 0;
    if (Erase) {
      const std::size_t Pick = Random.nextBelow(Reference.size());
      const Ref R = Reference[Pick];
      ASSERT_TRUE(T.erase(R.Start, R.End, R.Value));
      Reference.erase(Reference.begin() +
                      static_cast<std::ptrdiff_t>(Pick));
    } else {
      const Addr Start = Random.nextBelow(1000);
      const Addr End = Start + 1 + Random.nextBelow(200);
      const auto Value = static_cast<std::uint32_t>(Op);
      T.insert(Start, End, Value);
      Reference.push_back(Ref{Start, End, Value});
    }
    ASSERT_TRUE(T.checkInvariants()) << "after op " << Op;
    ASSERT_EQ(T.size(), Reference.size());

    // Probe a few random points.
    for (int Probe = 0; Probe < 8; ++Probe) {
      const Addr P = Random.nextBelow(1300);
      std::vector<std::uint32_t> Expected;
      for (const Ref &R : Reference)
        if (P >= R.Start && P < R.End)
          Expected.push_back(R.Value);
      std::sort(Expected.begin(), Expected.end());
      ASSERT_EQ(stabSorted(T, P), Expected) << "point " << P;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalTreeFuzzTest,
                         ::testing::Range<std::uint64_t>(100, 112));

} // namespace
