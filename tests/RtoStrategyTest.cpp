//===- tests/RtoStrategyTest.cpp - Optimizer strategy behaviour -----------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Behavioural tests of the two optimizer strategies beyond end-to-end
/// cycle counts: ORIG's unpatch-all-on-phase-change policy, its hotness
/// gate, and the deployment dynamics of LPD under each sampling period.
///
//===----------------------------------------------------------------------===//

#include "rto/Harness.h"

#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace regmon;
using namespace regmon::rto;

namespace {

RtoConfig configAt(Cycles Period) {
  RtoConfig Config;
  Config.Sampling.PeriodCycles = Period;
  return Config;
}

TEST(RtoOriginal, UnpatchesEverythingOnGlobalPhaseChange) {
  // synthetic.periodic at 45K: GPD stabilizes within runs and fires at
  // flips; every firing must unpatch all deployed traces, so unpatches
  // grow with the number of phase changes.
  const workloads::Workload W = workloads::make("synthetic.periodic");
  const OptimizationModel Model = W.model();
  const RtoResult R =
      runOriginal(W.Prog, W.Script, Model, 3, configAt(45'000));
  EXPECT_GT(R.GlobalPhaseChanges, 3u);
  EXPECT_GT(R.Unpatches, 2u);
  EXPECT_GE(R.Patches, R.Unpatches)
      << "everything unpatched was previously patched";
}

TEST(RtoOriginal, SteadyWorkloadPatchesOnceAndKeeps) {
  const workloads::Workload W = workloads::make("synthetic.steady");
  const OptimizationModel Model = W.model();
  const RtoResult R =
      runOriginal(W.Prog, W.Script, Model, 3, configAt(45'000));
  EXPECT_EQ(R.Unpatches, 0u) << "no phase change, nothing unpatched";
  EXPECT_EQ(R.Patches, 2u) << "both hot loops get traces";
}

TEST(RtoOriginal, HotnessGateBlocksColdRegions) {
  // With an absurdly high hotness bar, ORIG never deploys anything.
  const workloads::Workload W = workloads::make("synthetic.steady");
  const OptimizationModel Model = W.model();
  RtoConfig Config = configAt(45'000);
  Config.MinTraceSamples = 10'000; // > buffer size: unreachable
  const RtoResult R = runOriginal(W.Prog, W.Script, Model, 3, Config);
  EXPECT_EQ(R.Patches, 0u);
  EXPECT_EQ(R.TotalCycles, static_cast<Cycles>(R.TotalWork))
      << "no deployment, no speedup";
}

TEST(RtoLocal, RedeploysPerRegionAfterLocalChange) {
  // synthetic.bottleneck: the region destabilizes once (the shift) and
  // restabilizes; LPD should patch, unpatch once, patch again.
  const workloads::Workload W = workloads::make("synthetic.bottleneck");
  const OptimizationModel Model = W.model();
  RtoConfig Config = configAt(45'000);
  Config.SelfMonitor = SelfMonitorMode::Off;
  const RtoResult R = runLocal(W.Prog, W.Script, Model, 3, Config);
  EXPECT_EQ(R.Patches, 2u);
  EXPECT_EQ(R.Unpatches, 1u);
}

TEST(RtoLocal, PatchOverheadIsChargedPerOperation) {
  const workloads::Workload W = workloads::make("synthetic.steady");
  const OptimizationModel Model = W.model();
  RtoConfig Cheap = configAt(45'000);
  Cheap.PatchOverheadCycles = 0;
  RtoConfig Expensive = configAt(45'000);
  Expensive.PatchOverheadCycles = 10'000'000;
  const RtoResult A = runLocal(W.Prog, W.Script, Model, 3, Cheap);
  const RtoResult B = runLocal(W.Prog, W.Script, Model, 3, Expensive);
  ASSERT_EQ(A.Patches, B.Patches);
  EXPECT_EQ(B.TotalCycles - A.TotalCycles, B.Patches * 10'000'000u);
}

TEST(RtoLocal, StableFractionGrowsWithLpd) {
  // On every catalogued Fig. 17 subject at every period, LPD's stable
  // fraction must dominate ORIG's -- the mechanism behind the speedups.
  for (const std::string &Name : workloads::fig17Names()) {
    const workloads::Workload W = workloads::make(Name);
    const OptimizationModel Model = W.model();
    for (const Cycles Period : {100'000u, 1'500'000u}) {
      const RtoResult Orig =
          runOriginal(W.Prog, W.Script, Model, 1, configAt(Period));
      const RtoResult Lpd =
          runLocal(W.Prog, W.Script, Model, 1, configAt(Period));
      EXPECT_GE(Lpd.StableFraction + 1e-9, Orig.StableFraction)
          << Name << " @ " << Period;
    }
  }
}

TEST(RtoLocal, NeverMateriallySlowerThanOrig) {
  // The paper's bottom line: "in general LPD outperforms GPD". Allow a
  // tiny tolerance for patch-overhead noise.
  for (const std::string &Name : workloads::fig17Names()) {
    const workloads::Workload W = workloads::make(Name);
    const OptimizationModel Model = W.model();
    for (const Cycles Period : {100'000u, 800'000u, 1'500'000u}) {
      const RtoResult Orig =
          runOriginal(W.Prog, W.Script, Model, 1, configAt(Period));
      const RtoResult Lpd =
          runLocal(W.Prog, W.Script, Model, 1, configAt(Period));
      EXPECT_GT(speedupPercent(Orig, Lpd), -1.0) << Name << " @ " << Period;
    }
  }
}

TEST(RtoHarness, SamplingPeriodZeroIntervalsIsSafe) {
  // A sampling period longer than the whole program: no complete interval
  // is ever delivered; both strategies degrade to unoptimized execution.
  const workloads::Workload W = workloads::make("synthetic.steady");
  const OptimizationModel Model = W.model();
  RtoConfig Config;
  Config.Sampling.PeriodCycles = 10'000'000'000ull;
  const RtoResult Orig = runOriginal(W.Prog, W.Script, Model, 3, Config);
  const RtoResult Lpd = runLocal(W.Prog, W.Script, Model, 3, Config);
  EXPECT_EQ(Orig.Intervals, 0u);
  EXPECT_EQ(Lpd.Intervals, 0u);
  EXPECT_EQ(Orig.TotalCycles, static_cast<Cycles>(W.Script.totalWork()));
  EXPECT_EQ(Lpd.TotalCycles, Orig.TotalCycles);
  EXPECT_DOUBLE_EQ(Orig.StableFraction, 0.0);
}

TEST(RtoHarness, NextGenModelsShowLargerLpdAdvantage) {
  // The section 3.2.4 prediction, pinned: 429.mcf's LPD-over-ORIG speedup
  // at 800K exceeds 181.mcf's.
  const auto RunPair = [&](const std::string &Name) {
    const workloads::Workload W = workloads::make(Name);
    const OptimizationModel Model = W.model();
    const RtoConfig Config = configAt(800'000);
    return speedupPercent(runOriginal(W.Prog, W.Script, Model, 1, Config),
                          runLocal(W.Prog, W.Script, Model, 1, Config));
  };
  EXPECT_GT(RunPair("429.mcf"), RunPair("181.mcf"));
}

} // namespace
