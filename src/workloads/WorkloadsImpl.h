//===- workloads/WorkloadsImpl.h - Per-benchmark factories -----*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Private declarations of the per-benchmark workload factories, split
/// across SpecInt.cpp / SpecFp.cpp / Synthetic.cpp and registered in
/// Workloads.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_WORKLOADS_WORKLOADSIMPL_H
#define REGMON_WORKLOADS_WORKLOADSIMPL_H

#include "workloads/WorkloadBuilder.h"

namespace regmon::workloads::detail {

// SPEC CPU2000 integer models (SpecInt.cpp).
Workload makeGzip();
Workload makeVpr();
Workload makeGcc();
Workload makeMcf();
Workload makeCrafty();
Workload makeParser();
Workload makeGap();
Workload makeVortex();
Workload makeBzip2();
Workload makeTwolf();

// SPEC CPU2000 floating-point models (SpecFp.cpp).
Workload makeWupwise();
Workload makeSwim();
Workload makeMgrid();
Workload makeApplu();
Workload makeMesa();
Workload makeGalgel();
Workload makeArt();
Workload makeEquake();
Workload makeFacerec();
Workload makeAmmp();
Workload makeLucas();
Workload makeFma3d();
Workload makeSixtrack();
Workload makeApsi();

// Next-generation (CPU2006-candidate) models (NextGen.cpp).
Workload makeMcf2006();
Workload makeLibquantum();
Workload makeLbm();

// Hand-checkable synthetic workloads (Synthetic.cpp).
Workload makeSyntheticSteady();
Workload makeSyntheticPeriodic();
Workload makeSyntheticBottleneck();
Workload makeSyntheticPollution();

} // namespace regmon::workloads::detail

#endif // REGMON_WORKLOADS_WORKLOADSIMPL_H
