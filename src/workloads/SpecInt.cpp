//===- workloads/SpecInt.cpp - SPEC CPU2000 integer models ----------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Behaviour models of the SPEC CPU2000 integer benchmarks. Each model is a
/// compact description of what the paper (and [13]) report the benchmark
/// *looks like* through a PC-sampling window; see Workloads.h for the
/// ground rules.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadsImpl.h"

using namespace regmon;
using namespace regmon::workloads;
using sim::LoopId;
using sim::MixId;
using sim::ProfileId;

/// 164.gzip (ref5 input): deflate/inflate alternate as the input is
/// compressed and decompressed in blocks. Moderate global churn at small
/// sampling periods; both hot loops are internally steady.
Workload detail::makeGzip() {
  WorkloadBuilder B("164.gzip");
  const auto PDeflate = B.proc("deflate", 0x18000, 0x19000);
  const auto PInflate = B.proc("inflate", 0x42000, 0x43000);
  const auto PLib = B.proc("libc_misc", 0x90000, 0x90400);

  const LoopId Deflate = B.loop(PDeflate, 0x18200, 0x18300, 0.06);
  const LoopId Match = B.loop(PDeflate, 0x18800, 0x18880, 0.08);
  const LoopId Inflate = B.loop(PInflate, 0x42400, 0x424c0, 0.05);
  const LoopId Crc = B.loop(PLib, 0x90000, 0x90400, 0.0, 1.0,
                            /*Regionable=*/false);

  const ProfileId DeflateP = B.hotspots(Deflate, 1.0, {{12, 30}, {40, 18}});
  const ProfileId MatchP = B.hotspots(Match, 1.0, {{6, 45}});
  const ProfileId InflateP = B.hotspots(Inflate, 1.0, {{20, 28}, {33, 12}});
  const ProfileId CrcP = B.uniform(Crc);

  const MixId Compress = B.mix({{Deflate, DeflateP, 0.42},
                                {Match, MatchP, 0.38},
                                {Inflate, InflateP, 0.05},
                                {Crc, CrcP, 0.15}});
  const MixId Decompress = B.mix({{Inflate, InflateP, 0.70},
                                  {Deflate, DeflateP, 0.06},
                                  {Match, MatchP, 0.04},
                                  {Crc, CrcP, 0.20}});

  // ref5 processes one file per pass: compress, then decompress, repeated.
  B.alternating(Compress, Decompress, 1.1 * GWork, 60 * GWork);
  return B.build();
}

/// 175.vpr: one placement phase, one routing phase, one clean transition.
Workload detail::makeVpr() {
  WorkloadBuilder B("175.vpr");
  const auto PPlace = B.proc("try_place", 0x22000, 0x23000);
  const auto PRoute = B.proc("route_net", 0x2a000, 0x2b000);

  const LoopId Place = B.loop(PPlace, 0x22100, 0x22200, 0.05);
  const LoopId Swap = B.loop(PPlace, 0x22600, 0x22680, 0.04);
  const LoopId Route = B.loop(PRoute, 0x2a300, 0x2a400, 0.06);

  const ProfileId PlaceP = B.hotspots(Place, 1.0, {{18, 26}});
  const ProfileId SwapP = B.hotspots(Swap, 1.0, {{9, 30}});
  const ProfileId RouteP = B.hotspots(Route, 1.0, {{30, 22}, {44, 14}});

  const MixId Placing =
      B.mix({{Place, PlaceP, 0.62}, {Swap, SwapP, 0.38}});
  const MixId Routing =
      B.mix({{Route, RouteP, 0.85}, {Place, PlaceP, 0.15}});

  B.steady(Placing, 34 * GWork);
  B.steady(Routing, 26 * GWork);
  return B.build();
}

/// 176.gcc: a big compiler -- dozens of moderately hot loops, a working
/// set that churns from pass to pass, and substantial time in code no
/// region can be built around. The large region count is what makes gcc
/// expensive to monitor (Figs. 15/16).
Workload detail::makeGcc() {
  WorkloadBuilder B("176.gcc");
  const auto PParse = B.proc("yyparse", 0x30000, 0x38000);
  const auto PRtl = B.proc("rtl_passes", 0x50000, 0x5c000);
  const auto PReg = B.proc("reload", 0x70000, 0x78000);
  const auto PMisc = B.proc("misc", 0xa0000, 0xa1000);

  // Thirty-two loops per pass cluster, 24-40 instructions each.
  std::vector<LoopId> Loops;
  std::vector<ProfileId> Profiles;
  const std::uint32_t Procs[] = {PParse, PRtl, PReg};
  const Addr Bases[] = {0x30000, 0x50000, 0x70000};
  for (int Cluster = 0; Cluster < 3; ++Cluster) {
    for (int I = 0; I < 32; ++I) {
      const Addr Start = Bases[Cluster] + static_cast<Addr>(I) * 0x400;
      const Addr End = Start + 0x80 + static_cast<Addr>(I % 3) * 0x20;
      const LoopId L = B.loop(Procs[Cluster], Start, End, 0.04);
      Loops.push_back(L);
      Profiles.push_back(B.hotspots(
          L, 1.0, {{static_cast<std::size_t>(3 + I % 9), 24.0}}));
    }
  }
  const LoopId Misc = B.loop(PMisc, 0xa0000, 0xa1000, 0.0, 1.0,
                             /*Regionable=*/false);
  const ProfileId MiscP = B.uniform(Misc);

  // One mix per pass cluster: its loops plus non-regionable glue.
  MixId Mixes[3];
  for (int Cluster = 0; Cluster < 3; ++Cluster) {
    sim::Mix M;
    for (int I = 0; I < 32; ++I) {
      const std::size_t Index = static_cast<std::size_t>(Cluster) * 32 +
                                static_cast<std::size_t>(I);
      M.Components.push_back(
          {Loops[Index], Profiles[Index], 0.022 + 0.001 * (I % 5)});
    }
    M.Components.push_back({Misc, MiscP, 0.26});
    Mixes[Cluster] = B.mixRaw(std::move(M));
  }

  // Compile units stream by: parse, optimize, reload, repeat.
  for (int Unit = 0; Unit < 12; ++Unit)
    for (int Cluster = 0; Cluster < 3; ++Cluster)
      B.steady(Mixes[Cluster], (1.3 + 0.2 * (Unit % 3)) * GWork);
  return B.build();
}

/// 181.mcf: the paper's flagship. Early execution is dominated by region
/// 146f0-14770, which fades while 142c8-14318 grows (Figs. 2/9); the back
/// half toggles periodically between the two sets with *constant
/// per-region histograms*, so GPD sees endless churn while every region is
/// locally stable (Fig. 10). [13] reports a 35% prefetching speedup:
/// removable stall fraction 0.26.
Workload detail::makeMcf() {
  WorkloadBuilder B("181.mcf");
  const auto PBea = B.proc("primal_bea_mpp", 0x13000, 0x13800);
  const auto PRefresh = B.proc("refresh_potential", 0x14200, 0x14800);
  const auto PLib = B.proc("malloc_glue", 0x1c000, 0x1c300);
  const auto PImpl = B.proc("price_out_impl", 0x48000, 0x48800);

  const LoopId Bea = B.loop(PBea, 0x13134, 0x133d4, 0.30);
  const LoopId Arc = B.loop(PRefresh, 0x142c8, 0x14318, 0.30);
  const LoopId Node = B.loop(PRefresh, 0x146f0, 0x14770, 0.30);
  const LoopId Impl = B.loop(PImpl, 0x48100, 0x48190, 0.30);
  const LoopId Lib = B.loop(PLib, 0x1c000, 0x1c300, 0.0, 1.0,
                            /*Regionable=*/false);

  const ProfileId BeaP = B.hotspots(Bea, 1.0, {{40, 60}, {90, 35}});
  const ProfileId ArcP = B.hotspots(Arc, 1.0, {{5, 50}, {14, 20}});
  const ProfileId NodeP = B.hotspots(Node, 1.0, {{10, 55}, {24, 30}});
  const ProfileId ImplP = B.hotspots(Impl, 1.0, {{14, 36}});
  const ProfileId LibP = B.uniform(Lib);
  // mcf is the memory-bound benchmark of the suite: its hot instructions
  // are pointer-chasing loads missing most of the time.
  B.missModel(Bea, BeaP, 0.04, {{40, 0.55}, {90, 0.40}});
  B.missModel(Arc, ArcP, 0.04, {{5, 0.50}, {14, 0.30}});
  B.missModel(Node, NodeP, 0.04, {{10, 0.55}, {24, 0.35}});
  B.missModel(Impl, ImplP, 0.04, {{14, 0.45}});

  // Early: 146f0 (Node) rules.
  const MixId Early = B.mix({{Node, NodeP, 0.58},
                             {Bea, BeaP, 0.22},
                             {Arc, ArcP, 0.08},
                             {Lib, LibP, 0.12}});
  // Hand-off midpoints.
  const MixId Mid = B.mix({{Node, NodeP, 0.38},
                           {Bea, BeaP, 0.24},
                           {Arc, ArcP, 0.26},
                           {Lib, LibP, 0.12}});
  // Late toggle poles: Node-heavy simplex iterations vs Arc/implicit-price
  // sweeps. price_out_impl sits far from refresh_potential in the binary,
  // so the pole centroids land ~50% of E apart: past TH3 (band broken,
  // bounce to unstable) but well under TH4 (history survives), exactly the
  // churn-without-working-set-change regime of section 2.2.
  const MixId PoleA = B.mix({{Node, NodeP, 0.70},
                             {Bea, BeaP, 0.12},
                             {Arc, ArcP, 0.06},
                             {Lib, LibP, 0.12}});
  const MixId PoleB = B.mix({{Arc, ArcP, 0.30},
                             {Bea, BeaP, 0.18},
                             {Impl, ImplP, 0.35},
                             {Node, NodeP, 0.05},
                             {Lib, LibP, 0.12}});

  B.steady(Early, 14 * GWork);
  B.steady(Mid, 10 * GWork);
  B.alternating(PoleA, PoleB, 3.4 * GWork, 76 * GWork);
  return B.build();
}

/// 186.crafty: chess search -- many small hot loops whose relative weights
/// shuffle with the game phase, plus attack-table code whose cyclic paths
/// cross procedure boundaries, defeating region formation on every trigger
/// (Fig. 7: UCR never drops).
Workload detail::makeCrafty() {
  WorkloadBuilder B("186.crafty");
  const auto PSearch = B.proc("search", 0x34000, 0x3a000);
  const auto PEval = B.proc("evaluate", 0x3c000, 0x3e000);
  const auto PAttack = B.proc("attack_tables", 0x58000, 0x59000);

  std::vector<LoopId> Loops;
  std::vector<ProfileId> Profiles;
  for (int I = 0; I < 20; ++I) {
    const Addr Start = 0x34000 + static_cast<Addr>(I) * 0x400;
    const LoopId L = B.loop(PSearch, Start, Start + 0x70, 0.03);
    Loops.push_back(L);
    Profiles.push_back(B.hotspots(
        L, 1.0, {{static_cast<std::size_t>(2 + I % 7), 20.0}}));
  }
  for (int I = 0; I < 20; ++I) {
    const Addr Start = 0x3c000 + static_cast<Addr>(I) * 0x180;
    const LoopId L = B.loop(PEval, Start, Start + 0x60, 0.03);
    Loops.push_back(L);
    Profiles.push_back(B.hotspots(
        L, 1.0, {{static_cast<std::size_t>(1 + I % 5), 18.0}}));
  }
  const LoopId Attack = B.loop(PAttack, 0x58000, 0x59000, 0.0, 1.0,
                               /*Regionable=*/false);
  const ProfileId AttackP = B.uniform(Attack);

  // Two game-phase mixes emphasizing different loop subsets; the attack
  // tables burn ~45% throughout.
  auto MakePhase = [&](int Offset) {
    sim::Mix M;
    for (int I = 0; I < 40; ++I) {
      const double W = ((I + Offset) % 40) < 20 ? 0.0205 : 0.007;
      M.Components.push_back(
          {Loops[static_cast<std::size_t>(I)],
           Profiles[static_cast<std::size_t>(I)], W});
    }
    M.Components.push_back({Attack, AttackP, 0.45});
    return B.mixRaw(std::move(M));
  };
  const MixId Opening = MakePhase(0);
  const MixId Endgame = MakePhase(20);

  B.alternating(Opening, Endgame, 0.5 * GWork, 60 * GWork);
  return B.build();
}

/// 197.parser: dictionary lookups and linkage phases; mild churn between
/// two working sets, a quarter of the time in non-regionable hash glue.
Workload detail::makeParser() {
  WorkloadBuilder B("197.parser");
  const auto PLink = B.proc("link_grammar", 0x26000, 0x28000);
  const auto PDict = B.proc("dict_lookup", 0x2c000, 0x2d000);
  const auto PHash = B.proc("hash_glue", 0x48000, 0x48800);

  const LoopId Match = B.loop(PLink, 0x26200, 0x262c0, 0.05);
  const LoopId Prune = B.loop(PLink, 0x27000, 0x27090, 0.05);
  const LoopId Dict = B.loop(PDict, 0x2c100, 0x2c1a0, 0.04);
  const LoopId Hash = B.loop(PHash, 0x48000, 0x48800, 0.0, 1.0,
                             /*Regionable=*/false);

  const ProfileId MatchP = B.hotspots(Match, 1.0, {{11, 32}});
  const ProfileId PruneP = B.hotspots(Prune, 1.0, {{20, 26}});
  const ProfileId DictP = B.hotspots(Dict, 1.0, {{8, 24}, {29, 12}});
  const ProfileId HashP = B.uniform(Hash);

  const MixId Parsing = B.mix({{Match, MatchP, 0.40},
                               {Prune, PruneP, 0.22},
                               {Dict, DictP, 0.13},
                               {Hash, HashP, 0.25}});
  const MixId Looking = B.mix({{Dict, DictP, 0.48},
                               {Match, MatchP, 0.17},
                               {Prune, PruneP, 0.10},
                               {Hash, HashP, 0.25}});

  B.alternating(Parsing, Looking, 2.2 * GWork, 58 * GWork);
  return B.build();
}

/// 254.gap: the group-theory interpreter. ~40% of cycles live in dispatch
/// code whose cycles span procedure boundaries -- no region can claim them,
/// so UCR stays high through endless formation triggers (Figs. 6/7). Of the
/// two named regions, 7ba2c-7ba78 computes steadily while 8d25c-8d314
/// flips its internal bottleneck with the mix, making it locally unstable
/// (Figs. 11/13). [13] reports ~9%: stall fraction 0.085.
Workload detail::makeGap() {
  WorkloadBuilder B("254.gap");
  const auto PEval = B.proc("eval_loop", 0x7b000, 0x7c000);
  const auto PCollect = B.proc("collect_garbage", 0x8d000, 0x8e000);
  const auto PInterp = B.proc("interp_dispatch", 0x60000, 0x61800);
  const auto PGcSup = B.proc("gc_support", 0x140000, 0x140800);

  const LoopId Eval = B.loop(PEval, 0x7ba2c, 0x7ba78, 0.20);
  const LoopId Gc = B.loop(PCollect, 0x8d25c, 0x8d314, 0.20, 0.97);
  const LoopId Interp = B.loop(PInterp, 0x60000, 0x61800, 0.0, 1.0,
                               /*Regionable=*/false);
  const LoopId GcSup = B.loop(PGcSup, 0x140000, 0x140800, 0.0, 1.0,
                              /*Regionable=*/false);

  const ProfileId EvalP = B.hotspots(Eval, 1.0, {{7, 38}});
  const ProfileId GcA = B.hotspots(Gc, 1.0, {{10, 30}, {22, 18}});
  B.missModel(Eval, EvalP, 0.03, {{7, 0.40}});
  B.missModel(Gc, GcA, 0.03, {{10, 0.35}, {22, 0.25}});
  const ProfileId GcB = B.shifted(Gc, GcA, 17); // weights + misses shift
  const ProfileId InterpP = B.uniform(Interp);
  const ProfileId GcSupP = B.uniform(GcSup);

  // Quiet stretch before the Gc region ever runs (Fig. 11: r starts at 0).
  const MixId Warmup = B.mix({{Eval, EvalP, 0.60}, {Interp, InterpP, 0.40}});
  // Toggle poles: Eval-heavy vs Gc-heavy; Gc's bottleneck shifts with the
  // mix, so its histogram changes shape each flip.
  const MixId PoleA = B.mix({{Eval, EvalP, 0.52},
                             {Gc, GcA, 0.06},
                             {Interp, InterpP, 0.42}});
  const MixId PoleB = B.mix({{Gc, GcB, 0.40},
                             {Eval, EvalP, 0.10},
                             {Interp, InterpP, 0.30},
                             {GcSup, GcSupP, 0.20}});

  B.steady(Warmup, 5 * GWork);
  B.alternating(PoleA, PoleB, 1.4 * GWork, 26 * GWork);
  B.steady(Warmup, 5 * GWork);
  return B.build();
}

/// 255.vortex: an object database; three query mixes in rotation with
/// clean transitions.
Workload detail::makeVortex() {
  WorkloadBuilder B("255.vortex");
  const auto PMem = B.proc("mem_subsystem", 0x20000, 0x21000);
  const auto PTree = B.proc("tree_walk", 0x44000, 0x45000);
  const auto PGlue = B.proc("glue", 0x74000, 0x74600);

  const LoopId Mem = B.loop(PMem, 0x20100, 0x201c0, 0.05);
  const LoopId Tree = B.loop(PTree, 0x44200, 0x442a0, 0.05);
  const LoopId Pack = B.loop(PTree, 0x44800, 0x44880, 0.04);
  const LoopId Glue = B.loop(PGlue, 0x74000, 0x74600, 0.0, 1.0,
                             /*Regionable=*/false);

  const ProfileId MemP = B.hotspots(Mem, 1.0, {{14, 30}});
  const ProfileId TreeP = B.hotspots(Tree, 1.0, {{22, 28}});
  const ProfileId PackP = B.hotspots(Pack, 1.0, {{5, 26}});
  const ProfileId GlueP = B.uniform(Glue);

  const MixId Lookup = B.mix({{Tree, TreeP, 0.48},
                              {Mem, MemP, 0.22},
                              {Pack, PackP, 0.10},
                              {Glue, GlueP, 0.20}});
  const MixId Update = B.mix({{Mem, MemP, 0.46},
                              {Pack, PackP, 0.24},
                              {Tree, TreeP, 0.10},
                              {Glue, GlueP, 0.20}});

  B.steady(Lookup, 20 * GWork);
  B.steady(Update, 18 * GWork);
  B.steady(Lookup, 20 * GWork);
  return B.build();
}

/// 256.bzip2: block-sorting compression; compress and decompress passes
/// alternate slowly, each internally steady.
Workload detail::makeBzip2() {
  WorkloadBuilder B("256.bzip2");
  const auto PSort = B.proc("block_sort", 0x1a000, 0x1b000);
  const auto PHuff = B.proc("huffman", 0x3a000, 0x3b000);

  const LoopId Sort = B.loop(PSort, 0x1a200, 0x1a2e0, 0.07);
  const LoopId Mtf = B.loop(PSort, 0x1a900, 0x1a980, 0.05);
  const LoopId Huff = B.loop(PHuff, 0x3a100, 0x3a1c0, 0.05);

  const ProfileId SortP = B.hotspots(Sort, 1.0, {{25, 34}, {41, 16}});
  const ProfileId MtfP = B.hotspots(Mtf, 1.0, {{10, 28}});
  const ProfileId HuffP = B.hotspots(Huff, 1.0, {{19, 30}});

  const MixId Compress = B.mix({{Sort, SortP, 0.55},
                                {Mtf, MtfP, 0.30},
                                {Huff, HuffP, 0.15}});
  const MixId Decompress = B.mix({{Huff, HuffP, 0.62},
                                  {Mtf, MtfP, 0.28},
                                  {Sort, SortP, 0.10}});

  B.alternating(Compress, Decompress, 2.5 * GWork, 60 * GWork);
  return B.build();
}

/// 300.twolf: simulated annealing placement; one dominant working set with
/// a slow cooling drift.
Workload detail::makeTwolf() {
  WorkloadBuilder B("300.twolf");
  const auto PPlace = B.proc("uloop", 0x24000, 0x25000);

  const LoopId New = B.loop(PPlace, 0x24100, 0x241a0, 0.06);
  const LoopId Accept = B.loop(PPlace, 0x24600, 0x24680, 0.05);

  const ProfileId NewP = B.hotspots(New, 1.0, {{16, 30}});
  const ProfileId AcceptP = B.hotspots(Accept, 1.0, {{7, 26}});

  const MixId Hot = B.mix({{New, NewP, 0.60}, {Accept, AcceptP, 0.40}});
  const MixId Cold = B.mix({{New, NewP, 0.74}, {Accept, AcceptP, 0.26}});

  B.steady(Hot, 30 * GWork);
  B.steady(Cold, 28 * GWork);
  return B.build();
}
