//===- workloads/Workloads.h - SPEC CPU2000 behaviour models ---*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic models of the SPEC CPU2000 benchmarks the paper evaluates on.
/// Real SPEC binaries and an UltraSPARC are unavailable here; each model
/// reproduces the *observable execution shape* the paper attributes to that
/// benchmark -- which loops are hot, how the working set moves, what
/// alternates with what period, which code defeats region formation -- so
/// the phase detectors face the same stimuli. Absolute phase-change counts
/// are not expected to match the paper's; orderings and period-sensitivity
/// trends are (see DESIGN.md section 2 and EXPERIMENTS.md).
///
/// Models with paper-documented behaviour:
///
///  * 181.mcf      -- region hand-off over time (Figs. 2/9), then periodic
///                    toggling between two region sets with constant
///                    per-region histograms (locally stable, Fig. 10);
///                    26% removable stall (35% speedup reported in [13]).
///  * 187.facerec  -- alternation between two sets of regions causing
///                    frequent spurious global changes (Fig. 5).
///  * 254.gap      -- ~40% of samples in non-regionable interpreter code
///                    (Figs. 6/7); one stable and one unstable region
///                    (Fig. 11); the unstable one is short-lived with many
///                    local changes at small periods (Fig. 13).
///  * 186.crafty   -- many small regions plus non-regionable hot code that
///                    keeps UCR high despite repeated formation (Fig. 7).
///  * 188.ammp     -- one very large region whose blended behaviour holds r
///                    just below the threshold at small periods (the
///                    Fig. 13 aberration motivating size-adaptive rt).
///  * 172.mgrid / 191.fma3d -- Fig. 17 speedup subjects with the removable
///                    stall fractions reported in [13].
///
/// The remaining benchmarks get behaviour consistent with their Fig. 3/4/6
/// bars: mostly-stable numeric codes, mildly drifting integer codes, and a
/// few period-sensitive oscillators (wupwise, galgel, lucas, bzip2).
///
/// Three `synthetic.*` workloads with hand-checkable behaviour are included
/// for tests and examples.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_WORKLOADS_WORKLOADS_H
#define REGMON_WORKLOADS_WORKLOADS_H

#include "workloads/WorkloadBuilder.h"

#include <string>
#include <string_view>
#include <vector>

namespace regmon::workloads {

/// Returns the workload named \p Name. Asserts on unknown names; check
/// \ref allNames / \ref exists first for dynamic input.
Workload make(std::string_view Name);

/// Returns true if \p Name names a known workload.
bool exists(std::string_view Name);

/// Returns every available workload name (SPEC models + synthetic).
const std::vector<std::string> &allNames();

/// Returns the 21 benchmark names of the paper's Figs. 3/4 sweep (the
/// SPEC subset with short-running programs excluded).
const std::vector<std::string> &fig3Names();

/// Returns the 23 benchmark names of the paper's Fig. 6 UCR study.
const std::vector<std::string> &fig6Names();

/// Returns the (benchmark, region-count) selection of the paper's
/// Figs. 13/14 local-phase sweep.
const std::vector<std::string> &fig13Names();

/// Returns the four Fig. 17 speedup subjects.
const std::vector<std::string> &fig17Names();

/// Returns the next-generation (CPU2006-candidate) models the paper
/// expected greater impact on (section 3.2.4).
const std::vector<std::string> &nextGenNames();

} // namespace regmon::workloads

#endif // REGMON_WORKLOADS_WORKLOADS_H
