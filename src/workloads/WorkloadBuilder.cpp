//===- workloads/WorkloadBuilder.cpp - Workload assembly DSL --------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadBuilder.h"

#include <cassert>

using namespace regmon;
using namespace regmon::workloads;

WorkloadBuilder::WorkloadBuilder(std::string WorkloadName)
    : Name(std::move(WorkloadName)), Prog(Name) {}

std::uint32_t WorkloadBuilder::proc(std::string ProcName, Addr Start,
                                    Addr End) {
  return Prog.addProcedure(std::move(ProcName), Start, End);
}

sim::LoopId WorkloadBuilder::loop(std::uint32_t ProcIndex, Addr Start,
                                  Addr End, double Stall, double Mismatch,
                                  bool Regionable) {
  const sim::LoopId Id = Prog.addLoop(ProcIndex, Start, End, Regionable);
  assert(Id == Opportunities.size() && "loop ids must stay dense");
  Opportunities.push_back(rto::LoopOpportunity{Stall, Mismatch});
  return Id;
}

sim::ProfileId WorkloadBuilder::hotspots(
    sim::LoopId L, double Background,
    std::initializer_list<std::pair<std::size_t, double>> Spots) {
  const std::vector<std::pair<std::size_t, double>> Vec(Spots);
  return Prog.addHotSpotProfile(L, Background, Vec);
}

sim::ProfileId WorkloadBuilder::uniform(sim::LoopId L) {
  return Prog.addHotSpotProfile(L, 1.0, {});
}

sim::ProfileId WorkloadBuilder::shifted(sim::LoopId L, sim::ProfileId P,
                                        std::ptrdiff_t Delta) {
  return Prog.addShiftedProfile(L, P, Delta);
}

void WorkloadBuilder::missModel(
    sim::LoopId L, sim::ProfileId P, double Background,
    std::initializer_list<std::pair<std::size_t, double>> Delinquent) {
  const std::vector<std::pair<std::size_t, double>> Vec(Delinquent);
  Prog.setMissModel(L, P, Background, Vec);
}

sim::MixId
WorkloadBuilder::mix(std::initializer_list<sim::MixComponent> Components) {
  return Script.addMix(Components);
}

sim::MixId WorkloadBuilder::mixRaw(sim::Mix M) {
  return Script.addMix(std::move(M));
}

void WorkloadBuilder::steady(sim::MixId M, Work Duration) {
  Script.steady(M, Duration);
}

void WorkloadBuilder::alternating(sim::MixId A, sim::MixId B,
                                  Work HalfPeriod, Work Duration) {
  Script.alternating(A, B, HalfPeriod, Duration);
}

Workload WorkloadBuilder::build() {
  Workload W;
  W.Name = std::move(Name);
  W.Prog = Prog.build();
  W.Script = std::move(Script);
  W.Opportunities = std::move(Opportunities);
  assert(W.Script.validateAgainst(W.Prog) && "script/program mismatch");
  return W;
}
