//===- workloads/NextGen.cpp - Next-generation benchmark candidates -------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper (section 3.2.4) notes that CPU2000's working sets had been
/// outgrown by 2006 cache hierarchies and that "we have observed much
/// greater performance impact of our work on the candidate programs for
/// the next generation of benchmarks". Those candidates became SPEC
/// CPU2006; this file models three of its famously memory-bound members
/// the way the CPU2000 models are built -- bigger miss fractions, longer
/// runs, and phase behaviour taken from their published characterizations:
///
///  * 429.mcf        -- CPU2000 mcf with a ~10x larger network: the same
///                      region hand-off and periodic tail, but pointer
///                      chasing misses nearly always.
///  * 462.libquantum -- quantum simulation: a handful of streaming gate
///                      kernels applied in long alternating passes.
///  * 470.lbm        -- lattice-Boltzmann: one huge streaming kernel,
///                      steady as a rock, drowning in capacity misses.
///
/// `bench_ext_nextgen` reruns the Fig. 17 experiment on them.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadsImpl.h"

using namespace regmon;
using namespace regmon::workloads;
using sim::LoopId;
using sim::MixId;
using sim::ProfileId;

/// 429.mcf: the CPU2006 re-release of the network simplex code. Same
/// execution shape as 181.mcf, but the working set dwarfs the caches:
/// removable stall fraction ~0.42.
Workload detail::makeMcf2006() {
  WorkloadBuilder B("429.mcf");
  const auto PBea = B.proc("primal_bea_mpp", 0x13000, 0x13800);
  const auto PRefresh = B.proc("refresh_potential", 0x14200, 0x14800);
  const auto PLib = B.proc("malloc_glue", 0x1c000, 0x1c300);
  const auto PImpl = B.proc("price_out_impl", 0x48000, 0x48800);

  const LoopId Bea = B.loop(PBea, 0x13134, 0x133d4, 0.42);
  const LoopId Arc = B.loop(PRefresh, 0x142c8, 0x14318, 0.42);
  const LoopId Node = B.loop(PRefresh, 0x146f0, 0x14770, 0.42);
  const LoopId Impl = B.loop(PImpl, 0x48100, 0x48190, 0.42);
  const LoopId Lib = B.loop(PLib, 0x1c000, 0x1c300, 0.0, 1.0,
                            /*Regionable=*/false);

  const ProfileId BeaP = B.hotspots(Bea, 1.0, {{40, 70}, {90, 40}});
  const ProfileId ArcP = B.hotspots(Arc, 1.0, {{5, 55}, {14, 24}});
  const ProfileId NodeP = B.hotspots(Node, 1.0, {{10, 60}, {24, 34}});
  const ProfileId ImplP = B.hotspots(Impl, 1.0, {{14, 40}});
  const ProfileId LibP = B.uniform(Lib);
  B.missModel(Bea, BeaP, 0.08, {{40, 0.80}, {90, 0.65}});
  B.missModel(Arc, ArcP, 0.08, {{5, 0.78}, {14, 0.55}});
  B.missModel(Node, NodeP, 0.08, {{10, 0.82}, {24, 0.60}});
  B.missModel(Impl, ImplP, 0.08, {{14, 0.70}});

  const MixId Early = B.mix({{Node, NodeP, 0.60},
                             {Bea, BeaP, 0.22},
                             {Arc, ArcP, 0.08},
                             {Lib, LibP, 0.10}});
  const MixId PoleA = B.mix({{Node, NodeP, 0.72},
                             {Bea, BeaP, 0.12},
                             {Arc, ArcP, 0.06},
                             {Lib, LibP, 0.10}});
  const MixId PoleB = B.mix({{Arc, ArcP, 0.30},
                             {Bea, BeaP, 0.18},
                             {Impl, ImplP, 0.37},
                             {Node, NodeP, 0.05},
                             {Lib, LibP, 0.10}});

  B.steady(Early, 20 * GWork);
  B.alternating(PoleA, PoleB, 3.4 * GWork, 100 * GWork);
  return B.build();
}

/// 462.libquantum: gate kernels (toffoli, cnot, hadamard) stream over the
/// whole quantum register on every pass; passes alternate on a timescale
/// that keeps the centroid detector guessing at every studied period.
Workload detail::makeLibquantum() {
  WorkloadBuilder B("462.libquantum");
  const auto PGates = B.proc("quantum_gates", 0x22000, 0x23000);
  const auto PSieve = B.proc("quantum_sieve", 0x84000, 0x85000);

  const LoopId Toffoli = B.loop(PGates, 0x22100, 0x221c0, 0.35);
  const LoopId Cnot = B.loop(PGates, 0x22600, 0x22680, 0.33);
  const LoopId Sieve = B.loop(PSieve, 0x84100, 0x841d0, 0.30);

  const ProfileId ToffoliP = B.hotspots(Toffoli, 1.0, {{20, 44}});
  const ProfileId CnotP = B.hotspots(Cnot, 1.0, {{11, 36}});
  const ProfileId SieveP = B.hotspots(Sieve, 1.0, {{26, 40}, {39, 16}});
  B.missModel(Toffoli, ToffoliP, 0.10, {{20, 0.75}});
  B.missModel(Cnot, CnotP, 0.10, {{11, 0.72}});
  B.missModel(Sieve, SieveP, 0.10, {{26, 0.68}, {39, 0.40}});

  const MixId GatePass = B.mix({{Toffoli, ToffoliP, 0.56},
                                {Cnot, CnotP, 0.38},
                                {Sieve, SieveP, 0.06}});
  const MixId SievePass = B.mix({{Sieve, SieveP, 0.84},
                                 {Cnot, CnotP, 0.10},
                                 {Toffoli, ToffoliP, 0.06}});

  B.alternating(GatePass, SievePass, 2.7 * GWork, 90 * GWork);
  return B.build();
}

/// 470.lbm: one gigantic streaming stencil over the fluid lattice. The
/// behaviour never changes -- the win here is not phase robustness but the
/// sheer size of the removable stall once a trace deploys.
Workload detail::makeLbm() {
  WorkloadBuilder B("470.lbm");
  const auto PStream = B.proc("LBM_performStreamCollide", 0x30000, 0x31000);

  const LoopId Stream = B.loop(PStream, 0x30100, 0x30300, 0.45);
  const LoopId Swap = B.loop(PStream, 0x30800, 0x30880, 0.10);

  const ProfileId StreamP =
      B.hotspots(Stream, 1.0, {{40, 60}, {70, 40}, {100, 30}});
  const ProfileId SwapP = B.hotspots(Swap, 1.0, {{8, 24}});
  B.missModel(Stream, StreamP, 0.12, {{40, 0.75}, {70, 0.70}, {100, 0.55}});
  B.missModel(Swap, SwapP, 0.08, {{8, 0.50}});

  const MixId Step = B.mix({{Stream, StreamP, 0.86}, {Swap, SwapP, 0.14}});
  B.steady(Step, 90 * GWork);
  return B.build();
}
