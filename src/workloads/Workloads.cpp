//===- workloads/Workloads.cpp - Workload registry ------------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/WorkloadsImpl.h"

#include <cassert>
#include <utility>

using namespace regmon;
using namespace regmon::workloads;

namespace {

using Factory = Workload (*)();

struct RegistryEntry {
  const char *Name;
  Factory Make;
};

// Registration order defines allNames() order: SPEC by number, then the
// synthetic workloads.
constexpr RegistryEntry Registry[] = {
    {"164.gzip", detail::makeGzip},
    {"168.wupwise", detail::makeWupwise},
    {"171.swim", detail::makeSwim},
    {"172.mgrid", detail::makeMgrid},
    {"173.applu", detail::makeApplu},
    {"175.vpr", detail::makeVpr},
    {"176.gcc", detail::makeGcc},
    {"177.mesa", detail::makeMesa},
    {"178.galgel", detail::makeGalgel},
    {"179.art", detail::makeArt},
    {"181.mcf", detail::makeMcf},
    {"183.equake", detail::makeEquake},
    {"186.crafty", detail::makeCrafty},
    {"187.facerec", detail::makeFacerec},
    {"188.ammp", detail::makeAmmp},
    {"189.lucas", detail::makeLucas},
    {"191.fma3d", detail::makeFma3d},
    {"197.parser", detail::makeParser},
    {"200.sixtrack", detail::makeSixtrack},
    {"254.gap", detail::makeGap},
    {"255.vortex", detail::makeVortex},
    {"256.bzip2", detail::makeBzip2},
    {"300.twolf", detail::makeTwolf},
    {"301.apsi", detail::makeApsi},
    {"429.mcf", detail::makeMcf2006},
    {"462.libquantum", detail::makeLibquantum},
    {"470.lbm", detail::makeLbm},
    {"synthetic.steady", detail::makeSyntheticSteady},
    {"synthetic.periodic", detail::makeSyntheticPeriodic},
    {"synthetic.bottleneck", detail::makeSyntheticBottleneck},
    {"synthetic.pollution", detail::makeSyntheticPollution},
};

const RegistryEntry *find(std::string_view Name) {
  for (const RegistryEntry &E : Registry)
    if (Name == E.Name)
      return &E;
  return nullptr;
}

} // namespace

Workload regmon::workloads::make(std::string_view Name) {
  const RegistryEntry *E = find(Name);
  assert(E && "unknown workload name");
  return E->Make();
}

bool regmon::workloads::exists(std::string_view Name) {
  return find(Name) != nullptr;
}

const std::vector<std::string> &regmon::workloads::allNames() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> Out;
    for (const RegistryEntry &E : Registry)
      Out.emplace_back(E.Name);
    return Out;
  }();
  return Names;
}

const std::vector<std::string> &regmon::workloads::fig3Names() {
  // The paper's Figs. 3/4 cover 21 benchmarks; short-running programs
  // (gzip, gcc, art in our catalogue) are excluded from that sweep.
  static const std::vector<std::string> Names = {
      "168.wupwise", "171.swim",   "172.mgrid",    "173.applu",
      "175.vpr",     "177.mesa",   "178.galgel",   "181.mcf",
      "183.equake",  "186.crafty", "187.facerec",  "188.ammp",
      "189.lucas",   "191.fma3d",  "197.parser",   "200.sixtrack",
      "254.gap",     "255.vortex", "256.bzip2",    "300.twolf",
      "301.apsi"};
  return Names;
}

const std::vector<std::string> &regmon::workloads::fig6Names() {
  // Fig. 6 adds gzip and gcc to the Fig. 3 set.
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> Out = {"164.gzip", "176.gcc"};
    const std::vector<std::string> &Base = fig3Names();
    Out.insert(Out.end(), Base.begin(), Base.end());
    return Out;
  }();
  return Names;
}

const std::vector<std::string> &regmon::workloads::fig13Names() {
  // The Figs. 13/14 selection: benchmarks with many GPD changes at small
  // sampling periods.
  static const std::vector<std::string> Names = {
      "181.mcf",    "187.facerec", "254.gap",   "164.gzip",
      "178.galgel", "189.lucas",   "191.fma3d", "188.ammp"};
  return Names;
}

const std::vector<std::string> &regmon::workloads::fig17Names() {
  static const std::vector<std::string> Names = {
      "181.mcf", "172.mgrid", "254.gap", "191.fma3d"};
  return Names;
}

const std::vector<std::string> &regmon::workloads::nextGenNames() {
  static const std::vector<std::string> Names = {
      "429.mcf", "462.libquantum", "470.lbm"};
  return Names;
}
