//===- workloads/SpecFp.cpp - SPEC CPU2000 floating-point models ----------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Behaviour models of the SPEC CPU2000 floating-point benchmarks; see
/// Workloads.h for the ground rules.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadsImpl.h"

using namespace regmon;
using namespace regmon::workloads;
using sim::LoopId;
using sim::MixId;
using sim::ProfileId;

/// 168.wupwise: lattice QCD -- BLAS-heavy with a matmul/gamma-op cadence
/// per lattice sweep. Oscillates fast enough to thrash GPD at the smallest
/// sampling period only.
Workload detail::makeWupwise() {
  WorkloadBuilder B("168.wupwise");
  const auto PZgemm = B.proc("zgemm", 0x1e000, 0x1f000);
  const auto PGammp = B.proc("gammul", 0x66000, 0x67000);

  const LoopId Zgemm = B.loop(PZgemm, 0x1e200, 0x1e300, 0.08);
  const LoopId Zaxpy = B.loop(PZgemm, 0x1e800, 0x1e880, 0.06);
  const LoopId Gamma = B.loop(PGammp, 0x66100, 0x661e0, 0.06);

  const ProfileId ZgemmP = B.hotspots(Zgemm, 1.0, {{30, 40}, {52, 20}});
  const ProfileId ZaxpyP = B.hotspots(Zaxpy, 1.0, {{8, 30}});
  const ProfileId GammaP = B.hotspots(Gamma, 1.0, {{25, 34}});

  const MixId MatPhase = B.mix({{Zgemm, ZgemmP, 0.66},
                                {Zaxpy, ZaxpyP, 0.28},
                                {Gamma, GammaP, 0.06}});
  const MixId GammaPhase = B.mix({{Gamma, GammaP, 0.72},
                                  {Zaxpy, ZaxpyP, 0.20},
                                  {Zgemm, ZgemmP, 0.08}});

  B.alternating(MatPhase, GammaPhase, 1.2 * GWork, 60 * GWork);
  return B.build();
}

/// 171.swim: shallow-water stencils; three big steady loops, the model
/// numeric benchmark that never changes phase.
Workload detail::makeSwim() {
  WorkloadBuilder B("171.swim");
  const auto PCalc = B.proc("calc123", 0x16000, 0x17000);

  const LoopId Calc1 = B.loop(PCalc, 0x16100, 0x161c0, 0.10);
  const LoopId Calc2 = B.loop(PCalc, 0x16400, 0x164c0, 0.10);
  const LoopId Calc3 = B.loop(PCalc, 0x16800, 0x168a0, 0.08);

  const ProfileId C1 = B.hotspots(Calc1, 1.0, {{12, 36}, {28, 20}});
  const ProfileId C2 = B.hotspots(Calc2, 1.0, {{20, 32}});
  const ProfileId C3 = B.hotspots(Calc3, 1.0, {{9, 28}});

  const MixId Step = B.mix(
      {{Calc1, C1, 0.40}, {Calc2, C2, 0.37}, {Calc3, C3, 0.23}});
  B.steady(Step, 58 * GWork);
  return B.build();
}

/// 172.mgrid: multigrid V-cycles; the hot loops sit close together and the
/// cycle structure repeats far faster than any sampling interval, so the
/// centroid barely moves at any period ([13] reports 8%: stall 0.074).
Workload detail::makeMgrid() {
  WorkloadBuilder B("172.mgrid");
  const auto PResid = B.proc("resid_psinv", 0x1a000, 0x1b000);

  const LoopId Resid = B.loop(PResid, 0x1a100, 0x1a1e0, 0.074);
  const LoopId Psinv = B.loop(PResid, 0x1a400, 0x1a4c0, 0.074);
  const LoopId Interp = B.loop(PResid, 0x1a800, 0x1a880, 0.05);

  const ProfileId ResidP = B.hotspots(Resid, 1.0, {{18, 42}, {33, 18}});
  const ProfileId PsinvP = B.hotspots(Psinv, 1.0, {{14, 38}});
  const ProfileId InterpP = B.hotspots(Interp, 1.0, {{7, 22}});
  B.missModel(Resid, ResidP, 0.02, {{18, 0.18}, {33, 0.10}});
  B.missModel(Psinv, PsinvP, 0.02, {{14, 0.16}});

  const MixId Down = B.mix({{Resid, ResidP, 0.52},
                            {Psinv, PsinvP, 0.36},
                            {Interp, InterpP, 0.12}});
  const MixId Up = B.mix({{Resid, ResidP, 0.44},
                          {Psinv, PsinvP, 0.40},
                          {Interp, InterpP, 0.16}});

  // V-cycle cadence of ~40M work: every interval at every studied period
  // blends both halves, so the mixture looks stationary.
  B.alternating(Down, Up, 0.04 * GWork, 58 * GWork);
  return B.build();
}

/// 173.applu: SSOR solver; steady except one grid re-partitioning halfway.
Workload detail::makeApplu() {
  WorkloadBuilder B("173.applu");
  const auto PSolve = B.proc("blts_buts", 0x1c000, 0x1d000);

  const LoopId Blts = B.loop(PSolve, 0x1c100, 0x1c1e0, 0.08);
  const LoopId Buts = B.loop(PSolve, 0x1c500, 0x1c5e0, 0.08);

  const ProfileId BltsP = B.hotspots(Blts, 1.0, {{22, 36}});
  const ProfileId ButsP = B.hotspots(Buts, 1.0, {{31, 34}});

  const MixId Lower = B.mix({{Blts, BltsP, 0.68}, {Buts, ButsP, 0.32}});
  const MixId Upper = B.mix({{Buts, ButsP, 0.66}, {Blts, BltsP, 0.34}});

  B.steady(Lower, 29 * GWork);
  B.steady(Upper, 29 * GWork);
  return B.build();
}

/// 177.mesa: software rasterization; one dominant pipeline with a minor
/// scene change.
Workload detail::makeMesa() {
  WorkloadBuilder B("177.mesa");
  const auto PTri = B.proc("triangle_pipe", 0x28000, 0x29000);

  const LoopId Span = B.loop(PTri, 0x28100, 0x281c0, 0.05);
  const LoopId Tex = B.loop(PTri, 0x28500, 0x28580, 0.06);

  const ProfileId SpanP = B.hotspots(Span, 1.0, {{15, 30}});
  const ProfileId TexP = B.hotspots(Tex, 1.0, {{9, 28}});

  const MixId Flat = B.mix({{Span, SpanP, 0.70}, {Tex, TexP, 0.30}});
  const MixId Textured = B.mix({{Tex, TexP, 0.55}, {Span, SpanP, 0.45}});

  B.steady(Flat, 22 * GWork);
  B.steady(Textured, 36 * GWork);
  return B.build();
}

/// 178.galgel: Galerkin fluid oscillations -- the physics itself is
/// periodic, and the solver working set swings with it on a timescale that
/// aliases badly against small sampling periods.
Workload detail::makeGalgel() {
  WorkloadBuilder B("178.galgel");
  const auto PSyshtN = B.proc("sysht_nonlin", 0x20000, 0x21000);
  const auto PDgemv = B.proc("dgemv_kernel", 0x7e000, 0x7f000);

  const LoopId Nonlin = B.loop(PSyshtN, 0x20100, 0x201e0, 0.07);
  const LoopId Dgemv = B.loop(PDgemv, 0x7e100, 0x7e1d0, 0.09);
  const LoopId Copy = B.loop(PDgemv, 0x7e600, 0x7e660, 0.03);

  const ProfileId NonlinP = B.hotspots(Nonlin, 1.0, {{27, 38}});
  const ProfileId DgemvP = B.hotspots(Dgemv, 1.0, {{16, 44}, {37, 18}});
  const ProfileId CopyP = B.hotspots(Copy, 1.0, {{4, 20}});

  const MixId Assembly = B.mix({{Nonlin, NonlinP, 0.72},
                                {Copy, CopyP, 0.16},
                                {Dgemv, DgemvP, 0.12}});
  const MixId Solve = B.mix({{Dgemv, DgemvP, 0.74},
                             {Copy, CopyP, 0.14},
                             {Nonlin, NonlinP, 0.12}});

  B.alternating(Assembly, Solve, 1.0 * GWork, 58 * GWork);
  return B.build();
}

/// 179.art: neural-network image recognition; two steady scan loops.
/// (Fig. 16 subject only.)
Workload detail::makeArt() {
  WorkloadBuilder B("179.art");
  const auto PScan = B.proc("match_scan", 0x18000, 0x19000);

  const LoopId F1 = B.loop(PScan, 0x18100, 0x181a0, 0.09);
  const LoopId F2 = B.loop(PScan, 0x18400, 0x18480, 0.07);

  const ProfileId F1P = B.hotspots(F1, 1.0, {{13, 34}});
  const ProfileId F2P = B.hotspots(F2, 1.0, {{21, 30}});

  const MixId Scan = B.mix({{F1, F1P, 0.58}, {F2, F2P, 0.42}});
  B.steady(Scan, 56 * GWork);
  return B.build();
}

/// 183.equake: sparse earthquake simulation; one steady sparse-matvec
/// working set.
Workload detail::makeEquake() {
  WorkloadBuilder B("183.equake");
  const auto PSmvp = B.proc("smvp", 0x1f000, 0x20000);

  const LoopId Smvp = B.loop(PSmvp, 0x1f100, 0x1f1e0, 0.11);
  const LoopId Time = B.loop(PSmvp, 0x1f600, 0x1f660, 0.04);

  const ProfileId SmvpP = B.hotspots(Smvp, 1.0, {{24, 46}, {40, 22}});
  const ProfileId TimeP = B.hotspots(Time, 1.0, {{6, 18}});
  B.missModel(Smvp, SmvpP, 0.03, {{24, 0.35}, {40, 0.20}});

  const MixId Step = B.mix({{Smvp, SmvpP, 0.82}, {Time, TimeP, 0.18}});
  B.steady(Step, 56 * GWork);
  return B.build();
}

/// 187.facerec: the paper's Fig. 5 case -- execution "periodically
/// switches between 2 sets of regions" (graph search vs FFT correlation)
/// placed far apart in the binary. Every switch yanks the centroid across
/// most of the address space; locally each set is perfectly steady.
Workload detail::makeFacerec() {
  WorkloadBuilder B("187.facerec");
  const auto PGraph = B.proc("graph_routines", 0x20000, 0x22000);
  const auto PFft = B.proc("fft_correlate", 0x94000, 0x96000);

  const LoopId GMatch = B.loop(PGraph, 0x20200, 0x202e0, 0.07);
  const LoopId GLocal = B.loop(PGraph, 0x21000, 0x21090, 0.05);
  const LoopId Fft = B.loop(PFft, 0x94200, 0x942e0, 0.09);
  const LoopId Corr = B.loop(PFft, 0x95000, 0x950a0, 0.07);

  const ProfileId GMatchP = B.hotspots(GMatch, 1.0, {{19, 36}});
  const ProfileId GLocalP = B.hotspots(GLocal, 1.0, {{10, 26}});
  const ProfileId FftP = B.hotspots(Fft, 1.0, {{28, 40}, {44, 16}});
  const ProfileId CorrP = B.hotspots(Corr, 1.0, {{12, 30}});

  const MixId GraphSet = B.mix({{GMatch, GMatchP, 0.62},
                                {GLocal, GLocalP, 0.30},
                                {Fft, FftP, 0.05},
                                {Corr, CorrP, 0.03}});
  const MixId FftSet = B.mix({{Fft, FftP, 0.58},
                              {Corr, CorrP, 0.34},
                              {GMatch, GMatchP, 0.05},
                              {GLocal, GLocalP, 0.03}});

  B.alternating(GraphSet, FftSet, 1.3 * GWork, 58 * GWork);
  return B.build();
}

/// 188.ammp: molecular dynamics with one enormous force loop (1024
/// instructions). Its two bottleneck patterns alternate on a 33M-work
/// cadence, so every 45K-period interval (91M cycles) blends them in
/// wobbling proportions; with 1024 bins sharing ~1300 samples the Pearson
/// r hovers *just below* the 0.8 threshold at small periods -- the
/// Fig. 13 aberration that motivates a size-adaptive threshold. At larger
/// periods each interval averages many alternations and r recovers.
Workload detail::makeAmmp() {
  WorkloadBuilder B("188.ammp");
  const auto PForce = B.proc("mm_fv_update_nonbon", 0x60000, 0x62000);
  const auto PPair = B.proc("pair_lists", 0x30000, 0x30800);

  const LoopId Force = B.loop(PForce, 0x60000, 0x61000, 0.10);
  const LoopId Pair = B.loop(PPair, 0x30100, 0x30190, 0.05);

  const ProfileId ForceA = B.hotspots(
      Force, 1.0,
      {{100, 60}, {301, 45}, {502, 50}, {703, 40}, {900, 35}});
  const ProfileId ForceB = B.shifted(Force, ForceA, 57);
  const ProfileId PairP = B.hotspots(Pair, 1.0, {{8, 24}});

  const MixId NearList = B.mix({{Force, ForceA, 0.62},
                                {Pair, PairP, 0.38}});
  const MixId FarList = B.mix({{Force, ForceB, 0.62},
                               {Pair, PairP, 0.38}});

  B.alternating(NearList, FarList, 0.033 * GWork, 58 * GWork);
  return B.build();
}

/// 189.lucas: Lucas-Lehmer primality -- FFT squaring and carry passes
/// cadence against each other.
Workload detail::makeLucas() {
  WorkloadBuilder B("189.lucas");
  const auto PFft = B.proc("fft_square", 0x1d000, 0x1e000);
  const auto PCarry = B.proc("carry_norm", 0x6a000, 0x6b000);

  const LoopId Fft = B.loop(PFft, 0x1d100, 0x1d1e0, 0.08);
  const LoopId Carry = B.loop(PCarry, 0x6a100, 0x6a190, 0.06);

  const ProfileId FftP = B.hotspots(Fft, 1.0, {{26, 42}});
  const ProfileId CarryP = B.hotspots(Carry, 1.0, {{11, 30}});

  const MixId Squaring = B.mix({{Fft, FftP, 0.80}, {Carry, CarryP, 0.20}});
  const MixId Carrying = B.mix({{Carry, CarryP, 0.72}, {Fft, FftP, 0.28}});

  B.alternating(Squaring, Carrying, 0.9 * GWork, 56 * GWork);
  return B.build();
}

/// 191.fma3d: crash simulation; element blocks of different types stream
/// through, drifting the working set on a medium timescale ([13] reports
/// 16%: stall 0.138).
Workload detail::makeFma3d() {
  WorkloadBuilder B("191.fma3d");
  const auto PPlate = B.proc("platq_force", 0x26000, 0x27000);
  const auto PSolid = B.proc("solid_force", 0x6e000, 0x6f000);

  const LoopId Platq = B.loop(PPlate, 0x26100, 0x261e0, 0.138);
  const LoopId Solid = B.loop(PSolid, 0x6e100, 0x6e1d0, 0.138);
  const LoopId Gather = B.loop(PSolid, 0x6e600, 0x6e680, 0.05);

  const ProfileId PlatqP = B.hotspots(Platq, 1.0, {{21, 40}, {38, 18}});
  const ProfileId SolidP = B.hotspots(Solid, 1.0, {{17, 38}});
  const ProfileId GatherP = B.hotspots(Gather, 1.0, {{9, 22}});
  B.missModel(Platq, PlatqP, 0.03, {{21, 0.30}, {38, 0.18}});
  B.missModel(Solid, SolidP, 0.03, {{17, 0.28}});
  B.missModel(Gather, GatherP, 0.03, {{9, 0.20}});

  const MixId Plates = B.mix({{Platq, PlatqP, 0.64},
                              {Gather, GatherP, 0.22},
                              {Solid, SolidP, 0.14}});
  const MixId Solids = B.mix({{Solid, SolidP, 0.62},
                              {Gather, GatherP, 0.24},
                              {Platq, PlatqP, 0.14}});

  B.alternating(Plates, Solids, 2.0 * GWork, 58 * GWork);
  return B.build();
}

/// 200.sixtrack: particle tracking; a single tight steady kernel.
Workload detail::makeSixtrack() {
  WorkloadBuilder B("200.sixtrack");
  const auto PTrack = B.proc("thin6d", 0x21000, 0x22000);

  const LoopId Track = B.loop(PTrack, 0x21100, 0x211e0, 0.06);
  const LoopId Kick = B.loop(PTrack, 0x21500, 0x21570, 0.04);

  const ProfileId TrackP = B.hotspots(Track, 1.0, {{23, 40}});
  const ProfileId KickP = B.hotspots(Kick, 1.0, {{8, 24}});

  const MixId Turn = B.mix({{Track, TrackP, 0.76}, {Kick, KickP, 0.24}});
  B.steady(Turn, 56 * GWork);
  return B.build();
}

/// 301.apsi: pollution modelling; two solver working sets with clean
/// transitions.
Workload detail::makeApsi() {
  WorkloadBuilder B("301.apsi");
  const auto PAdv = B.proc("advection", 0x23000, 0x24000);
  const auto PTurb = B.proc("turbulence", 0x52000, 0x53000);

  const LoopId Adv = B.loop(PAdv, 0x23100, 0x231d0, 0.07);
  const LoopId Turb = B.loop(PTurb, 0x52100, 0x52190, 0.06);

  const ProfileId AdvP = B.hotspots(Adv, 1.0, {{20, 34}});
  const ProfileId TurbP = B.hotspots(Turb, 1.0, {{13, 30}});

  const MixId Advect = B.mix({{Adv, AdvP, 0.70}, {Turb, TurbP, 0.30}});
  const MixId Diffuse = B.mix({{Turb, TurbP, 0.64}, {Adv, AdvP, 0.36}});

  B.steady(Advect, 20 * GWork);
  B.steady(Diffuse, 18 * GWork);
  B.steady(Advect, 20 * GWork);
  return B.build();
}
