//===- workloads/WorkloadBuilder.h - Workload assembly DSL -----*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin assembly layer over ProgramBuilder + PhaseScript +
/// OptimizationModel so that each benchmark model reads as a compact,
/// reviewable behaviour description. See Workloads.h for the catalogue.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_WORKLOADS_WORKLOADBUILDER_H
#define REGMON_WORKLOADS_WORKLOADBUILDER_H

#include "rto/OptimizationModel.h"
#include "sim/PhaseScript.h"
#include "sim/Program.h"

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace regmon::workloads {

/// Convenient work-unit scales for behaviour scripts.
inline constexpr Work MWork = 1e6;
inline constexpr Work GWork = 1e9;

/// A fully assembled workload: the program, its behaviour timeline, and
/// the ground-truth optimization opportunities per loop.
struct Workload {
  std::string Name;
  sim::Program Prog;
  sim::PhaseScript Script;
  std::vector<rto::LoopOpportunity> Opportunities;

  /// Returns the optimization model over this workload's loops.
  rto::OptimizationModel model() const {
    return rto::OptimizationModel(Opportunities);
  }
};

/// Fluent builder for Workload instances.
class WorkloadBuilder {
public:
  explicit WorkloadBuilder(std::string Name);

  /// Adds a procedure; returns its index.
  std::uint32_t proc(std::string Name, Addr Start, Addr End);

  /// Adds a loop with its optimization ground truth. \p Stall is the
  /// removable cycle fraction, \p Mismatch the rate factor under behaviour
  /// mismatch, \p Regionable whether region formation can claim it.
  sim::LoopId loop(std::uint32_t Proc, Addr Start, Addr End,
                   double Stall = 0.05, double Mismatch = 1.0,
                   bool Regionable = true);

  /// Adds a hotspot instruction-weight profile (see
  /// ProgramBuilder::addHotSpotProfile).
  sim::ProfileId hotspots(
      sim::LoopId L, double Background,
      std::initializer_list<std::pair<std::size_t, double>> Spots);

  /// Adds a uniform profile over the loop's instructions.
  sim::ProfileId uniform(sim::LoopId L);

  /// Adds a copy of (\p L, \p P) with hotspots shifted by \p Delta slots.
  sim::ProfileId shifted(sim::LoopId L, sim::ProfileId P,
                         std::ptrdiff_t Delta);

  /// Attaches a D-cache miss model to (\p L, \p P): background miss
  /// probability plus (instruction, extra probability) delinquent loads.
  void missModel(sim::LoopId L, sim::ProfileId P, double Background,
                 std::initializer_list<std::pair<std::size_t, double>>
                     Delinquent);

  /// Registers a mix of (loop, profile, weight) components.
  sim::MixId mix(std::initializer_list<sim::MixComponent> Components);

  /// Registers a programmatically assembled mix.
  sim::MixId mixRaw(sim::Mix M);

  /// Appends a steady segment.
  void steady(sim::MixId M, Work Duration);

  /// Appends an A/B alternating segment.
  void alternating(sim::MixId A, sim::MixId B, Work HalfPeriod,
                   Work Duration);

  /// Finalizes the workload; the builder must not be reused.
  Workload build();

private:
  std::string Name;
  sim::ProgramBuilder Prog;
  sim::PhaseScript Script;
  std::vector<rto::LoopOpportunity> Opportunities;
};

} // namespace regmon::workloads

#endif // REGMON_WORKLOADS_WORKLOADBUILDER_H
