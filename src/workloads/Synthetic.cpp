//===- workloads/Synthetic.cpp - Hand-checkable test workloads ------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small, fully understood workloads for unit/integration tests and the
/// quickstart example. Unlike the SPEC models these are sized so a whole
/// run finishes in milliseconds.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadsImpl.h"

using namespace regmon;
using namespace regmon::workloads;
using sim::LoopId;
using sim::MixId;
using sim::ProfileId;

/// One steady mix of two loops; no phase ever changes.
Workload detail::makeSyntheticSteady() {
  WorkloadBuilder B("synthetic.steady");
  const auto P = B.proc("kernel", 0x10000, 0x11000);
  const LoopId A = B.loop(P, 0x10100, 0x101c0, 0.10);
  const LoopId C = B.loop(P, 0x10800, 0x10880, 0.05);
  const ProfileId Ap = B.hotspots(A, 1.0, {{12, 30}});
  const ProfileId Cp = B.hotspots(C, 1.0, {{7, 24}});
  B.missModel(A, Ap, 0.02, {{12, 0.45}});
  B.missModel(C, Cp, 0.02, {{7, 0.30}});
  const MixId M = B.mix({{A, Ap, 0.65}, {C, Cp, 0.35}});
  B.steady(M, 2.0 * GWork);
  return B.build();
}

/// Two far-apart region sets toggling every 800M work: a miniature
/// facerec. Globally chaotic at small periods, locally steady always.
Workload detail::makeSyntheticPeriodic() {
  WorkloadBuilder B("synthetic.periodic");
  const auto P1 = B.proc("set_a", 0x10000, 0x11000);
  const auto P2 = B.proc("set_b", 0x80000, 0x81000);
  const LoopId A = B.loop(P1, 0x10100, 0x101c0, 0.10);
  const LoopId C = B.loop(P2, 0x80100, 0x801c0, 0.10);
  const ProfileId Ap = B.hotspots(A, 1.0, {{10, 32}});
  const ProfileId Cp = B.hotspots(C, 1.0, {{20, 28}});
  const MixId MixA = B.mix({{A, Ap, 0.92}, {C, Cp, 0.08}});
  const MixId MixB = B.mix({{C, Cp, 0.92}, {A, Ap, 0.08}});
  B.alternating(MixA, MixB, 0.8 * GWork, 12.0 * GWork);
  return B.build();
}

/// One loop whose bottleneck instruction shifts halfway through the run
/// (the Fig. 8 scenario): a genuine *local* phase change with no
/// working-set change at all.
Workload detail::makeSyntheticBottleneck() {
  WorkloadBuilder B("synthetic.bottleneck");
  const auto P = B.proc("kernel", 0x10000, 0x11000);
  const LoopId A = B.loop(P, 0x10100, 0x101c0, 0.10, 0.95);
  const ProfileId Before = B.hotspots(A, 1.0, {{12, 40}, {30, 22}});
  B.missModel(A, Before, 0.02, {{12, 0.50}, {30, 0.35}});
  const ProfileId After = B.shifted(A, Before, 1);
  const MixId MixBefore = B.mix({{A, Before, 1.0}});
  const MixId MixAfter = B.mix({{A, After, 1.0}});
  B.steady(MixBefore, 1.0 * GWork);
  B.steady(MixAfter, 1.0 * GWork);
  return B.build();
}

/// One loop whose *cycle* histogram never changes but whose delinquent
/// loads move halfway through the run: invisible to PC-histogram phase
/// detection, visible only through miss-event monitoring. The workload
/// behind the self-monitoring ablation -- a deployed prefetch trace keeps
/// "looking" right while silently polluting the cache.
Workload detail::makeSyntheticPollution() {
  WorkloadBuilder B("synthetic.pollution");
  const auto P = B.proc("kernel", 0x10000, 0x11000);
  const LoopId A = B.loop(P, 0x10100, 0x101c0, 0.12, 0.94);
  // Two equally hot instructions; identical cycle weights in both phases.
  const ProfileId Phase1 = B.hotspots(A, 1.0, {{12, 30}, {30, 30}});
  const ProfileId Phase2 = B.hotspots(A, 1.0, {{12, 30}, {30, 30}});
  // Only the miss pattern moves: same DPI, different delinquent load.
  B.missModel(A, Phase1, 0.02, {{12, 0.55}});
  B.missModel(A, Phase2, 0.02, {{30, 0.55}});
  const MixId Mix1 = B.mix({{A, Phase1, 1.0}});
  const MixId Mix2 = B.mix({{A, Phase2, 1.0}});
  B.steady(Mix1, 2.0 * GWork);
  B.steady(Mix2, 4.0 * GWork);
  return B.build();
}
