//===- faults/FaultPlan.cpp - Deterministic fault injection ---------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "faults/FaultPlan.h"

#include <algorithm>
#include <cassert>

using namespace regmon;
using namespace regmon::faults;

namespace {

/// splitmix64 finalizer, the same mixing the service uses for shard
/// routing: derives per-stream seeds that are independent of stream-id
/// patterns and of the order injectors are created in.
std::uint64_t mix64(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

} // namespace

const char *faults::toString(BatchFault F) {
  switch (F) {
  case BatchFault::None:
    return "none";
  case BatchFault::Poison:
    return "poison";
  case BatchFault::Stall:
    return "stall";
  }
  return "?";
}

const char *faults::toString(TransportFault F) {
  switch (F) {
  case TransportFault::None:
    return "none";
  case TransportFault::Drop:
    return "drop";
  case TransportFault::Duplicate:
    return "duplicate";
  case TransportFault::Reorder:
    return "reorder";
  case TransportFault::Stale:
    return "stale";
  }
  return "?";
}

LinkFaultInjector::LinkFaultInjector(std::uint64_t Seed,
                                     TransportFaultConfig Cfg)
    : Config(Cfg), MsgRng(mix64(Seed ^ 0x96969696'96969696ULL)) {}

REGMON_PURE TransportFault LinkFaultInjector::nextFault() {
  ++Stats.MessagesSeen;
  // One decision per fault class per message, always drawn, so the
  // consumed random stream is independent of which faults fire -- the
  // same discipline StreamFaultInjector::apply uses.
  const bool Drop = MsgRng.nextDouble() < Config.DropRate;
  const bool Duplicate = MsgRng.nextDouble() < Config.DuplicateRate;
  const bool Reorder = MsgRng.nextDouble() < Config.ReorderRate;
  const bool Stale = MsgRng.nextDouble() < Config.StaleRate;
  if (Drop) {
    ++Stats.Dropped;
    return TransportFault::Drop;
  }
  if (Duplicate) {
    ++Stats.Duplicated;
    return TransportFault::Duplicate;
  }
  if (Reorder) {
    ++Stats.Reordered;
    return TransportFault::Reorder;
  }
  if (Stale) {
    ++Stats.Stale;
    return TransportFault::Stale;
  }
  return TransportFault::None;
}

REGMON_PURE void faults::poisonBatch(std::vector<Sample> &Batch) {
  if (Batch.empty()) {
    // An empty batch carries nothing to malform; give it one impossible
    // sample so validation still has something to reject.
    Batch.push_back(Sample{1, 0, false}); // unaligned PC
    return;
  }
  // Knock the middle sample off instruction alignment: a PC a real
  // front-end could never deliver.
  Batch[Batch.size() / 2].Pc |= 1;
  // And break timestamp monotonicity when there is room to.
  if (Batch.size() >= 2 && Batch[0].Time != Batch[1].Time)
    std::swap(Batch[0].Time, Batch[1].Time);
}

StreamFaultInjector::StreamFaultInjector(std::uint64_t Seed, FaultConfig Cfg)
    : Config(Cfg), SampleRng(mix64(Seed ^ 0x5a5a5a5a5a5a5a5aULL)),
      ShapeRng(mix64(Seed ^ 0xc3c3c3c3c3c3c3c3ULL)),
      BatchRng(mix64(Seed ^ 0x0f0f0f0f0f0f0f0fULL)) {
  assert(Config.CorruptBase % InstrBytes == 0 &&
         "corrupted PCs must stay instruction-aligned");
  assert(Config.CorruptSpan > 0 && "corruption window must be non-empty");
  assert(Config.TruncateMinFrac > 0 && Config.TruncateMinFrac <= 1 &&
         "truncation must keep a positive fraction");
}

REGMON_PURE std::vector<Sample>
StreamFaultInjector::apply(std::span<const Sample> Clean) {
  ++Stats.BatchesSeen;
  Stats.SamplesSeen += Clean.size();

  std::vector<Sample> Out;
  Out.reserve(Clean.size() + Clean.size() / 8);

  // Nominal inter-sample spacing, for jitter scaling. A single-sample or
  // constant-time batch jitters over nothing.
  Cycles Spacing = 0;
  if (Clean.size() >= 2 && Clean.back().Time > Clean.front().Time)
    Spacing = (Clean.back().Time - Clean.front().Time) /
              static_cast<Cycles>(Clean.size() - 1);

  for (const Sample &S : Clean) {
    // One decision per fault class per sample, always drawn, so the
    // consumed random stream (and thus every later decision) is
    // independent of which faults actually fire.
    const bool Drop = SampleRng.nextDouble() < Config.DropRate;
    const bool Duplicate = SampleRng.nextDouble() < Config.DuplicateRate;
    const bool Corrupt = SampleRng.nextDouble() < Config.CorruptRate;
    const std::uint64_t CorruptSlot = SampleRng.nextBelow(Config.CorruptSpan);
    const double JitterDraw = SampleRng.nextDouble();

    if (Drop) {
      ++Stats.SamplesDropped;
      continue;
    }
    Sample Faulted = S;
    if (Corrupt) {
      Faulted.Pc = Config.CorruptBase +
                   static_cast<Addr>(CorruptSlot) * InstrBytes;
      ++Stats.SamplesCorrupted;
    }
    if (Config.PeriodJitterFrac > 0 && Spacing > 0) {
      // Symmetric jitter in [-J, +J] cycles around the nominal timestamp.
      const double J = Config.PeriodJitterFrac * static_cast<double>(Spacing);
      const auto Offset =
          static_cast<std::int64_t>((JitterDraw * 2.0 - 1.0) * J);
      if (Offset >= 0 ||
          Faulted.Time >= static_cast<Cycles>(-Offset))
        Faulted.Time = static_cast<Cycles>(
            static_cast<std::int64_t>(Faulted.Time) + Offset);
    }
    Out.push_back(Faulted);
    if (Duplicate) {
      Out.push_back(Faulted);
      ++Stats.SamplesDuplicated;
    }
  }

  // Jitter may have locally reordered timestamps; restore the
  // non-decreasing order a real buffer delivers (samples are appended in
  // interrupt order even when the period wobbles).
  Cycles Floor = 0;
  for (Sample &S : Out) {
    S.Time = std::max(S.Time, Floor);
    Floor = S.Time;
  }

  // Truncation last: the interval ends early, whatever survived so far.
  if (!Out.empty() && ShapeRng.nextDouble() < Config.TruncateRate) {
    const double KeptFrac =
        Config.TruncateMinFrac +
        (1.0 - Config.TruncateMinFrac) * ShapeRng.nextDouble();
    const auto Kept = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               KeptFrac * static_cast<double>(Out.size())));
    if (Kept < Out.size()) {
      Out.resize(Kept);
      ++Stats.BatchesTruncated;
    }
  } else if (!Out.empty()) {
    ShapeRng.nextDouble(); // keep the shape stream aligned per batch
  }

  return Out;
}

REGMON_PURE BatchFault StreamFaultInjector::nextBatchFault() {
  // Two independent draws per batch, always consumed, so the poison and
  // stall sequences never shift each other.
  const bool Poison = BatchRng.nextDouble() < Config.PoisonRate;
  const bool Stall = BatchRng.nextDouble() < Config.StallRate;
  if (Poison) {
    ++Stats.BatchesPoisoned;
    return BatchFault::Poison;
  }
  if (Stall) {
    ++Stats.BatchesStalled;
    return BatchFault::Stall;
  }
  return BatchFault::None;
}

REGMON_PURE StreamFaultInjector FaultPlan::forStream(std::uint32_t Id) const {
  return StreamFaultInjector(mix64(Seed) ^ mix64(Id), Config);
}

REGMON_PURE LinkFaultInjector
FaultPlan::forLink(std::uint32_t Id, TransportFaultConfig Cfg) const {
  // A distinct mixing constant decorrelates link Id from stream Id, so a
  // fleet reusing one plan seed for both draws independent sequences.
  return LinkFaultInjector(mix64(Seed ^ 0x7171717171717171ULL) ^ mix64(Id),
                           Cfg);
}
