//===- faults/FaultPlan.h - Deterministic fault injection -------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the sampling -> service -> RTO stack.
///
/// The paper's robustness claim -- LPD stays stable where centroid GPD
/// thrashes as sampling conditions shift -- is only credible if the system
/// survives the ways real HPM front-ends misbehave: lost and duplicated
/// samples, wild program counters landing in unmapped address space,
/// jittered interrupt periods, intervals cut short by buffer teardown, and
/// a collection pipeline that occasionally delivers garbage or stalls
/// outright. A \ref FaultPlan models all of these as *pure, seeded
/// transformations* of a clean sample stream:
///
///  * every random decision is drawn from a \ref regmon::Rng derived from
///    the plan seed, so the identical plan over the identical clean stream
///    yields a bit-identical faulted stream on every replay;
///  * per-stream injectors are derived by seed mixing, not by sharing one
///    generator, so stream K's faults are independent of how many other
///    streams exist or in which order injectors were created;
///  * sample-level and batch-level decisions come from separate forked
///    generators, so a dropped sample never shifts which batch gets
///    poisoned.
///
/// The layer is deliberately free of threads and clocks: fault *timing* in
/// the service (worker stalls) is expressed as a \ref BatchFault marker the
/// test harness interprets, keeping this library in the deterministic
/// world where ChaosTest can assert bit-identical replays.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_FAULTS_FAULTPLAN_H
#define REGMON_FAULTS_FAULTPLAN_H

#include "support/Contracts.h"
#include "support/Rng.h"
#include "support/Types.h"

#include <cstdint>
#include <span>
#include <vector>

namespace regmon::faults {

/// Service-level fate of one delivered batch, decided deterministically by
/// the injector. Sample-level faults (drop/duplicate/corrupt/jitter/
/// truncate) are applied by \ref StreamFaultInjector::apply regardless.
enum class BatchFault : std::uint8_t {
  None,   ///< Deliver normally.
  Poison, ///< Deliver structurally malformed (see \ref poisonBatch).
  Stall,  ///< Deliver normally, but the worker stalls on it (harness hook).
};

/// Returns a short human-readable name for \p F.
const char *toString(BatchFault F);

/// Fate of one summary message on a fleet-tree link (child -> parent),
/// decided deterministically by a \ref LinkFaultInjector. Models what a
/// real summary transport (UDP rollup, gossip hop, RPC retry queue) does
/// to in-flight rollup messages; the fleet layer must absorb every one of
/// these without the merged view going silently wrong.
enum class TransportFault : std::uint8_t {
  None,      ///< Deliver normally.
  Drop,      ///< Message lost; the parent keeps its stale entry.
  Duplicate, ///< Delivered twice; merges must be idempotent.
  Reorder,   ///< Delayed one round and delivered after its successor.
  Stale,     ///< A previously sent message is re-delivered *instead of*
             ///< the current one (retry queue replaying an old payload).
};

/// Returns a short human-readable name for \p F.
const char *toString(TransportFault F);

/// Summary-transport fault rates, all probabilities in [0, 1]. A
/// default-constructed config injects nothing.
struct TransportFaultConfig {
  double DropRate = 0;
  double DuplicateRate = 0;
  double ReorderRate = 0;
  double StaleRate = 0;
};

/// Counters of everything a link injector did.
struct LinkFaultStats {
  std::uint64_t MessagesSeen = 0;
  std::uint64_t Dropped = 0;
  std::uint64_t Duplicated = 0;
  std::uint64_t Reordered = 0;
  std::uint64_t Stale = 0;
};

/// Decides the fate of each summary message crossing one fleet-tree link.
/// Stateful in the same sense as \ref StreamFaultInjector: the K-th call
/// judges the K-th message, and every decision draw is always consumed,
/// so the identical seed yields the identical fault sequence regardless
/// of which faults actually fire (bit-identical replay).
class LinkFaultInjector {
public:
  /// Creates an injector with its own derived generator. Prefer
  /// \ref FaultPlan::forLink over calling this directly.
  LinkFaultInjector(std::uint64_t Seed, TransportFaultConfig Config);

  /// Decides the next message's fate. One decision per fault class per
  /// message, always drawn; precedence drop > duplicate > reorder >
  /// stale when several fire at once.
  TransportFault nextFault();

  /// Returns the running fault counters.
  const LinkFaultStats &stats() const { return Stats; }

  /// Returns the configuration in use.
  const TransportFaultConfig &config() const { return Config; }

private:
  TransportFaultConfig Config;
  Rng MsgRng;
  LinkFaultStats Stats;
};

/// Fault rates and shapes. All rates are probabilities in [0, 1]; a
/// default-constructed config injects nothing.
struct FaultConfig {
  /// Per-sample probability of the sample being lost (kernel buffer
  /// overrun, interrupt coalescing).
  double DropRate = 0;
  /// Per-sample probability of the sample being delivered twice (replayed
  /// DMA page, double interrupt).
  double DuplicateRate = 0;
  /// Per-sample probability of the PC being corrupted into unmapped
  /// address space (wild interrupt PC). Corrupted PCs stay
  /// instruction-aligned: they are *plausible* garbage the monitor must
  /// absorb as UCR noise, not structural damage.
  double CorruptRate = 0;
  /// Base of the unmapped address window corrupted PCs land in. Must be
  /// instruction-aligned and outside every monitored program's code.
  Addr CorruptBase = 0x6000'0000;
  /// Number of instruction slots in the corruption window.
  std::uint64_t CorruptSpan = 4096;
  /// Timestamp jitter as a fraction of the nominal inter-sample spacing
  /// (sampling-period wobble). Monotonicity of timestamps is preserved.
  double PeriodJitterFrac = 0;
  /// Per-batch probability of the interval being truncated (optimizer
  /// woken early, teardown racing the sampler).
  double TruncateRate = 0;
  /// A truncated batch keeps at least this fraction of its samples.
  double TruncateMinFrac = 0.1;
  /// Per-batch probability of the batch being structurally malformed
  /// (see \ref poisonBatch); the service must reject it.
  double PoisonRate = 0;
  /// Per-batch probability of the worker stalling on the batch.
  double StallRate = 0;
};

/// Counters of everything an injector did, for reports and invariants.
struct FaultStats {
  std::uint64_t SamplesSeen = 0;
  std::uint64_t SamplesDropped = 0;
  std::uint64_t SamplesDuplicated = 0;
  std::uint64_t SamplesCorrupted = 0;
  std::uint64_t BatchesSeen = 0;
  std::uint64_t BatchesTruncated = 0;
  std::uint64_t BatchesPoisoned = 0;
  std::uint64_t BatchesStalled = 0;
};

/// Renders \p Batch structurally malformed in a deterministic,
/// validation-detectable way: one PC loses its instruction alignment and,
/// when the batch holds two or more samples, the first two timestamps are
/// swapped out of order. The service's batch validation (see
/// service/StreamHealth.h) must reject the result.
void poisonBatch(std::vector<Sample> &Batch);

/// Applies one stream's faults. Stateful: the K-th call transforms the
/// K-th batch, so determinism requires calling \ref apply and
/// \ref nextBatchFault once each per batch, in stream order.
class StreamFaultInjector {
public:
  /// Creates an injector with its own derived generators. Prefer
  /// \ref FaultPlan::forStream over calling this directly.
  StreamFaultInjector(std::uint64_t Seed, FaultConfig Config);

  /// Returns the faulted copy of \p Clean: drops, duplicates, PC
  /// corruption, timestamp jitter and truncation applied in that order.
  /// The result preserves non-decreasing timestamps and instruction
  /// alignment -- sample-level faults are noise, not structural damage.
  std::vector<Sample> apply(std::span<const Sample> Clean);

  /// Decides the service-level fate of the next batch.
  BatchFault nextBatchFault();

  /// Returns the running fault counters.
  const FaultStats &stats() const { return Stats; }

  /// Returns the configuration in use.
  const FaultConfig &config() const { return Config; }

private:
  FaultConfig Config;
  Rng SampleRng; ///< per-sample decisions (drop/dup/corrupt/jitter)
  Rng ShapeRng;  ///< per-batch shape decisions (truncation)
  Rng BatchRng;  ///< per-batch delivery decisions (poison/stall)
  FaultStats Stats;
};

/// A seeded, fully replayable composition of faults over any number of
/// streams. The plan itself is immutable; \ref forStream derives the
/// per-stream injector deterministically from (seed, stream id).
class FaultPlan {
public:
  explicit FaultPlan(std::uint64_t PlanSeed, FaultConfig Cfg = {})
      : Seed(PlanSeed), Config(Cfg) {}

  /// Returns stream \p Id's injector. Pure in (plan seed, \p Id): the
  /// result is independent of call order and of other streams.
  StreamFaultInjector forStream(std::uint32_t Id) const;

  /// Returns link \p Id's summary-transport injector, drawing from
  /// \p Cfg. Pure in (plan seed, \p Id), and derived from a different
  /// mixing constant than \ref forStream so link K's faults are
  /// independent of stream K's.
  LinkFaultInjector forLink(std::uint32_t Id,
                            TransportFaultConfig Cfg) const;

  /// Returns the plan seed.
  std::uint64_t seed() const { return Seed; }
  /// Returns the shared fault configuration.
  const FaultConfig &config() const { return Config; }

private:
  std::uint64_t Seed;
  FaultConfig Config;
};

} // namespace regmon::faults

#endif // REGMON_FAULTS_FAULTPLAN_H
