//===- sim/ProgramCodeMap.cpp - CodeMap over a synthetic program ----------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/ProgramCodeMap.h"

using namespace regmon;
using namespace regmon::sim;

std::optional<core::CodeRegionInfo>
ProgramCodeMap::regionFor(Addr Pc) const {
  // Innermost regionable loop containing Pc. Non-regionable loops are
  // skipped: an enclosing regionable loop (if any) can still claim the PC.
  const Loop *Best = nullptr;
  for (const Loop &L : Prog.loops()) {
    if (!L.Regionable || Pc < L.Start || Pc >= L.End)
      continue;
    if (!Best || L.End - L.Start < Best->End - Best->Start)
      Best = &L;
  }
  if (!Best)
    return std::nullopt;
  return core::CodeRegionInfo{Best->Start, Best->End, Best->Name};
}
