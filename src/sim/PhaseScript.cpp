//===- sim/PhaseScript.cpp - Program behaviour timeline -------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/PhaseScript.h"

#include <algorithm>
#include <cmath>

using namespace regmon;
using namespace regmon::sim;

MixId PhaseScript::addMix(Mix M) {
  assert(!M.Components.empty() && "mix must reference at least one loop");
  assert(M.totalWeight() > 0 && "mix must have positive total weight");
  Mixes.push_back(std::move(M));
  return static_cast<MixId>(Mixes.size() - 1);
}

MixId PhaseScript::addMix(std::initializer_list<MixComponent> Components) {
  Mix M;
  M.Components.assign(Components.begin(), Components.end());
  return addMix(std::move(M));
}

void PhaseScript::steady(MixId M, Work Duration) {
  assert(M < Mixes.size() && "unknown mix");
  assert(Duration > 0 && "segment must be non-empty");
  SegmentStart.push_back(TotalWork);
  Segments.push_back(Segment{Duration, M, false, 0, 0});
  TotalWork += Duration;
}

void PhaseScript::alternating(MixId MA, MixId MB, Work HalfPeriod,
                              Work Duration) {
  assert(MA < Mixes.size() && MB < Mixes.size() && "unknown mix");
  assert(Duration > 0 && "segment must be non-empty");
  assert(HalfPeriod > 0 && "alternation half-period must be positive");
  SegmentStart.push_back(TotalWork);
  Segments.push_back(Segment{Duration, MA, true, MB, HalfPeriod});
  TotalWork += Duration;
}

PhaseScript::Location PhaseScript::locate(Work W) const {
  assert(!Segments.empty() && "empty script");
  assert(W >= 0 && W < TotalWork && "work offset out of range");

  // Find the segment containing W: the last SegmentStart <= W.
  const auto It =
      std::upper_bound(SegmentStart.begin(), SegmentStart.end(), W);
  const auto Index = static_cast<std::size_t>(
      std::distance(SegmentStart.begin(), It)) - 1;
  const Segment &Seg = Segments[Index];
  const Work Offset = W - SegmentStart[Index];
  const Work SegRemaining = Seg.Duration - Offset;

  if (!Seg.Alternates)
    return Location{Seg.A, SegRemaining};

  const double Phase = std::floor(Offset / Seg.HalfPeriod);
  const bool InB = (static_cast<std::uint64_t>(Phase) % 2) == 1;
  const Work FlipAt = (Phase + 1) * Seg.HalfPeriod;
  const Work ToFlip = FlipAt - Offset;
  return Location{InB ? Seg.B : Seg.A, std::min(ToFlip, SegRemaining)};
}

bool PhaseScript::validateAgainst(const Program &Prog) const {
  for (const Mix &M : Mixes)
    for (const MixComponent &C : M.Components) {
      if (C.Loop >= Prog.loops().size())
        return false;
      if (C.Profile >= Prog.profileCount(C.Loop))
        return false;
      if (C.Weight < 0)
        return false;
    }
  return !Segments.empty();
}
