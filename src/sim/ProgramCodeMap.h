//===- sim/ProgramCodeMap.h - CodeMap over a synthetic program -*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adapts a synthetic Program to the region-formation CodeMap interface.
/// This plays the role of the region-building machinery of [13]: a hot PC
/// resolves to the innermost *regionable* loop containing it; PCs in
/// non-regionable code (cycles spanning procedure boundaries) resolve to
/// nothing and stay unmonitored forever.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_SIM_PROGRAMCODEMAP_H
#define REGMON_SIM_PROGRAMCODEMAP_H

#include "core/CodeMap.h"
#include "sim/Program.h"

namespace regmon::sim {

/// CodeMap implementation over a synthetic program's loop table.
class ProgramCodeMap final : public core::CodeMap {
public:
  /// Creates a map over \p P, which must outlive the map.
  explicit ProgramCodeMap(const Program &P) : Prog(P) {}

  std::optional<core::CodeRegionInfo> regionFor(Addr Pc) const override;

private:
  const Program &Prog;
};

} // namespace regmon::sim

#endif // REGMON_SIM_PROGRAMCODEMAP_H
