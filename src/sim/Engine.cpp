//===- sim/Engine.cpp - Cycle-level execution engine ----------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace regmon;
using namespace regmon::sim;

Engine::Engine(const Program &P, const PhaseScript &S, std::uint64_t Seed)
    : Prog(P), Script(S), Random(Seed),
      MissRandom(Seed ^ 0x6d697373ULL), // independent "miss" stream
      Speedups(P.loops().size(), 1.0),
      MissScales(P.loops().size(), 1.0) {
  assert(Script.validateAgainst(Prog) &&
         "phase script references loops/profiles the program lacks");
}

double Engine::cyclesPerWork(const Mix &M) const {
  // A work unit is split across the mix components by weight; component
  // work executing at speedup s consumes 1/s cycles per work unit.
  double Total = 0, Weighted = 0;
  for (const MixComponent &C : M.Components) {
    Total += C.Weight;
    Weighted += C.Weight / Speedups[C.Loop];
  }
  assert(Total > 0 && "mix has no weight");
  return Weighted / Total;
}

std::optional<MixId> Engine::activeMix() const {
  if (done())
    return std::nullopt;
  return Script.locate(WorkDone).ActiveMix;
}

std::span<const MixComponent> Engine::activeMixComponents() const {
  const std::optional<MixId> M = activeMix();
  if (!M)
    return {};
  return Script.mixes()[*M].Components;
}

Sample Engine::drawSample() {
  assert(!done() && "cannot sample a finished program");
  const MixId Active = Script.locate(WorkDone).ActiveMix;
  const Mix &M = Script.mixes()[Active];

  // Pick the component. The interrupted instruction is cycle-weighted, so a
  // component's chance is its share of *cycles*, not of work: a slowed-down
  // (or sped-up) loop occupies proportionally more (or less) wall time.
  double CycleTotal = 0;
  for (const MixComponent &C : M.Components)
    CycleTotal += C.Weight / Speedups[C.Loop];
  double Point = Random.nextDouble() * CycleTotal;
  const MixComponent *Chosen = &M.Components.back();
  for (const MixComponent &C : M.Components) {
    Point -= C.Weight / Speedups[C.Loop];
    if (Point < 0) {
      Chosen = &C;
      break;
    }
  }

  // Pick the instruction within the loop from its active profile.
  const std::span<const double> Weights =
      Prog.profile(Chosen->Loop, Chosen->Profile);
  const std::size_t Slot = Random.pickWeighted(Weights);

  Sample S;
  S.Pc = Prog.loop(Chosen->Loop).Start +
         static_cast<Addr>(Slot) * InstrBytes;
  S.Time = cycles();

  // Miss tagging from an independent stream: the PC sequence is identical
  // whether or not anyone looks at miss events.
  const std::span<const double> Rates =
      Prog.missRates(Chosen->Loop, Chosen->Profile);
  if (!Rates.empty()) {
    const double P =
        std::min(1.0, Rates[Slot] * MissScales[Chosen->Loop]);
    S.DCacheMiss = MissRandom.nextDouble() < P;
  }
  return S;
}

std::optional<Sample> Engine::advanceAndSample(Cycles Delta) {
  if (done())
    return std::nullopt;

  double Remaining = static_cast<double>(Delta);
  const Work TotalWork = Script.totalWork();

  // Walk behaviour boundaries (segment ends, alternation flips), converting
  // cycles to work at the rate of the mix active in each stretch. This is
  // what makes sampling-period aliasing physical: a sample lands wherever
  // the program actually is Delta cycles later, however many behaviour
  // flips happened in between.
  while (Remaining > 0) {
    const PhaseScript::Location Loc = Script.locate(WorkDone);
    const double Cpw = cyclesPerWork(Script.mixes()[Loc.ActiveMix]);
    const double BoundaryCycles = Loc.ToBoundary * Cpw;

    if (BoundaryCycles >= Remaining) {
      WorkDone += Remaining / Cpw;
      CyclesDone += Remaining;
      Remaining = 0;
      break;
    }
    WorkDone += Loc.ToBoundary;
    CyclesDone += BoundaryCycles;
    Remaining -= BoundaryCycles;
    if (WorkDone >= TotalWork)
      break;
  }

  if (WorkDone >= TotalWork) {
    WorkDone = TotalWork;
    return std::nullopt;
  }
  return drawSample();
}

void Engine::finish() {
  const Work TotalWork = Script.totalWork();
  while (WorkDone < TotalWork) {
    const PhaseScript::Location Loc = Script.locate(WorkDone);
    const double Cpw = cyclesPerWork(Script.mixes()[Loc.ActiveMix]);
    CyclesDone += Loc.ToBoundary * Cpw;
    WorkDone += Loc.ToBoundary;
  }
  WorkDone = TotalWork;
}

void Engine::setSpeedup(LoopId L, double Factor) {
  assert(L < Speedups.size() && "unknown loop");
  assert(Factor > 0 && "speedup factor must be positive");
  Speedups[L] = Factor;
}

void Engine::clearSpeedups() {
  std::fill(Speedups.begin(), Speedups.end(), 1.0);
  std::fill(MissScales.begin(), MissScales.end(), 1.0);
}

void Engine::setMissScale(LoopId L, double Factor) {
  assert(L < MissScales.size() && "unknown loop");
  assert(Factor >= 0 && "miss scale cannot be negative");
  MissScales[L] = Factor;
}
