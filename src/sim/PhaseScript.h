//===- sim/PhaseScript.h - Program behaviour timeline -----------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A phase script describes *when the program does what*: a timeline of
/// segments, each executing a mix of loops with given weights and
/// instruction profiles. Segments may alternate between two mixes with a
/// fixed period -- the mechanism behind the paper's key observations:
///
///  * 187.facerec "periodically executes switches between 2 sets of
///    regions", which makes the centroid oscillate and GPD thrash while
///    each region's local histogram stays self-similar (Fig. 5);
///  * sampling-period aliasing (section 2.3): when the sampling interval is
///    short relative to the alternation period, consecutive sample buffers
///    see different mixes and GPD fires; when it is long, every buffer
///    averages over many alternations and GPD is quiet.
///
/// Durations are expressed in *work units* (baseline cycles) so that a
/// runtime optimizer that speeds the program up executes the same script in
/// fewer actual cycles.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_SIM_PHASESCRIPT_H
#define REGMON_SIM_PHASESCRIPT_H

#include "sim/Program.h"
#include "support/Types.h"

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace regmon::sim {

/// Identifies a mix within a PhaseScript.
using MixId = std::uint32_t;

/// One ingredient of a mix: a loop, which of its instruction profiles is
/// active, and the fraction of work it receives.
struct MixComponent {
  LoopId Loop = 0;
  ProfileId Profile = 0;
  double Weight = 0;
};

/// A stationary distribution of work across loops.
struct Mix {
  std::vector<MixComponent> Components;

  /// Returns the sum of component weights.
  double totalWeight() const {
    double W = 0;
    for (const MixComponent &C : Components)
      W += C.Weight;
    return W;
  }
};

/// One contiguous stretch of the program timeline.
struct Segment {
  /// Segment length in work units.
  Work Duration = 0;
  /// Mix active throughout (or during the "A" half-periods).
  MixId A = 0;
  /// When true the segment alternates A and B every \ref HalfPeriod work
  /// units, starting with A.
  bool Alternates = false;
  MixId B = 0;
  Work HalfPeriod = 0;
};

/// An immutable program timeline: mixes plus segments.
class PhaseScript {
public:
  /// Registers \p M and returns its MixId.
  MixId addMix(Mix M);

  /// Convenience: registers a mix from (loop, profile, weight) triples.
  MixId addMix(std::initializer_list<MixComponent> Components);

  /// Appends a steady segment running mix \p M for \p Duration work units.
  void steady(MixId M, Work Duration);

  /// Appends a segment alternating between \p MA and \p MB every
  /// \p HalfPeriod work units for \p Duration total work units.
  void alternating(MixId MA, MixId MB, Work HalfPeriod, Work Duration);

  /// Returns the total scripted work.
  Work totalWork() const { return TotalWork; }
  /// Returns the registered mixes.
  std::span<const Mix> mixes() const { return Mixes; }
  /// Returns the segments in timeline order.
  std::span<const Segment> segments() const { return Segments; }

  /// Result of \ref locate: the active mix at a work offset and how much
  /// work remains until the next behaviour boundary (segment end or
  /// alternation flip).
  struct Location {
    MixId ActiveMix = 0;
    Work ToBoundary = 0;
  };

  /// Returns the active mix at work offset \p W (0 <= W < totalWork()) and
  /// the distance to the next boundary.
  Location locate(Work W) const;

  /// Validates loop/profile references against \p Prog; for asserts/tests.
  bool validateAgainst(const Program &Prog) const;

private:
  std::vector<Mix> Mixes;
  std::vector<Segment> Segments;
  std::vector<Work> SegmentStart; // prefix sums of Duration
  Work TotalWork = 0;
};

} // namespace regmon::sim

#endif // REGMON_SIM_PHASESCRIPT_H
