//===- sim/Engine.h - Cycle-level execution engine --------------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution engine advances a synthetic program through its phase
/// script and answers the one question a sampling-based dynamic optimizer
/// ever asks of the hardware: *"where is the program counter right now?"*
///
/// Two clocks are maintained:
///
///  * **work** -- progress through the script, in baseline cycles;
///  * **cycles** -- actual elapsed machine cycles.
///
/// With no optimizations deployed the clocks advance in lock-step. When the
/// runtime optimizer deploys a trace on a loop, that loop's work executes
/// at a speedup factor > 1, so the same scripted work completes in fewer
/// actual cycles -- exactly how a deployed data-prefetch trace pays off on
/// real hardware. Comparing the final cycle counts of two optimizer
/// strategies over the identical script reproduces the paper's Fig. 17
/// methodology.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_SIM_ENGINE_H
#define REGMON_SIM_ENGINE_H

#include "sim/PhaseScript.h"
#include "sim/Program.h"
#include "support/Rng.h"
#include "support/Types.h"

#include <optional>
#include <vector>

namespace regmon::sim {

/// Drives one simulated execution of (program, script).
class Engine {
public:
  /// Creates an engine over \p Prog and \p Script. Both must outlive the
  /// engine. \p Seed fixes the PC-sampling random stream; the miss-event
  /// stream is drawn from an independent generator so that enabling or
  /// scaling the miss model never perturbs the PC sequence.
  Engine(const Program &Prog, const PhaseScript &Script,
         std::uint64_t Seed);

  /// Advances execution by exactly \p Delta actual cycles (clamped to
  /// program end) and returns the PC observed at the resulting instant --
  /// i.e. models a cycle-counter overflow interrupt \p Delta cycles after
  /// the previous one. Returns std::nullopt once the program has finished.
  std::optional<Sample> advanceAndSample(Cycles Delta);

  /// Runs the remaining script to completion without sampling (the program
  /// keeps executing after the optimizer stops looking); cycle/work clocks
  /// advance accordingly.
  void finish();

  /// Returns true once all scripted work has been executed.
  bool done() const { return WorkDone >= Script.totalWork(); }

  /// Returns elapsed actual cycles.
  Cycles cycles() const { return static_cast<Cycles>(CyclesDone); }
  /// Returns executed work (baseline cycles).
  Work work() const { return WorkDone; }

  /// Sets the execution-rate multiplier for \p L. \p Factor > 1 speeds the
  /// loop up (a beneficial optimization), < 1 slows it down (a harmful
  /// speculative optimization, e.g. prefetches that pollute the cache).
  void setSpeedup(LoopId L, double Factor);

  /// Returns the current speedup factor for \p L (1.0 when unoptimized).
  double speedup(LoopId L) const { return Speedups[L]; }

  /// Scales \p L's D-cache miss probabilities by \p Factor (clamped to
  /// [0, inf); effective probabilities clamp to 1). A deployed prefetch
  /// trace that covers the loop's delinquent loads sets this below 1 --
  /// the observable effect self-monitoring feeds on.
  void setMissScale(LoopId L, double Factor);

  /// Returns the current miss-probability scale for \p L.
  double missScale(LoopId L) const { return MissScales[L]; }

  /// Clears all deployed speedups back to 1.0.
  void clearSpeedups();

  /// Charges \p Overhead cycles of runtime-system work on the program's
  /// critical path (e.g. patching or unpatching a trace) without advancing
  /// scripted work.
  void addOverheadCycles(double Overhead) {
    assert(Overhead >= 0 && "overhead cannot be negative");
    CyclesDone += Overhead;
  }

  /// Returns the mix active at the current instant; std::nullopt at end.
  std::optional<MixId> activeMix() const;

  /// Returns the components of the mix active at the current instant (the
  /// ground-truth loop behaviours executing now); empty once done.
  std::span<const MixComponent> activeMixComponents() const;

  /// Returns the program being executed.
  const Program &program() const { return Prog; }

private:
  /// Cycles needed per work unit under mix \p M with current speedups.
  double cyclesPerWork(const Mix &M) const;

  /// Draws a sample from the current mix. Must not be called after
  /// done().
  Sample drawSample();

  const Program &Prog;
  const PhaseScript &Script;
  Rng Random;
  Rng MissRandom;
  std::vector<double> Speedups;   // per LoopId
  std::vector<double> MissScales; // per LoopId
  Work WorkDone = 0;
  double CyclesDone = 0;
};

} // namespace regmon::sim

#endif // REGMON_SIM_ENGINE_H
