//===- sim/Program.h - Synthetic program model ------------------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static shape of a simulated program: procedures laid out in a
/// SPARC-like address space, loops inside them, and per-loop instruction
/// weight profiles describing where cycles are spent when that loop runs.
///
/// The paper's substrate is a real SPEC CPU2000 binary whose hot code is
/// dominated by a handful of loops. We model exactly the features the
/// phase-detection machinery can observe through PC sampling:
///
///  * code layout (addresses matter: GPD's centroid is an address average);
///  * loop extents (regions are built around loops, paper section 3.1);
///  * regionability (some hot code spans procedure boundaries and the
///    region builder of [13] cannot form a region for it -- these samples
///    stay in the unmonitored code region forever, reproducing 254.gap and
///    186.crafty in Figs. 6/7);
///  * instruction-level cycle distributions (LPD compares per-instruction
///    histograms, so which instructions are hot -- and how that shifts --
///    is the observable behaviour).
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_SIM_PROGRAM_H
#define REGMON_SIM_PROGRAM_H

#include "support/Types.h"

#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace regmon::sim {

/// Identifies a loop within a Program.
using LoopId = std::uint32_t;
/// Identifies an instruction-weight profile of a particular loop.
using ProfileId = std::uint32_t;

/// A single natural loop (the paper's unit of region formation).
struct Loop {
  LoopId Id = 0;
  /// Display name; by convention the paper's "start-end" hex form.
  std::string Name;
  /// Half-open, instruction-aligned code extent.
  Addr Start = 0;
  Addr End = 0;
  /// Index of the containing procedure.
  std::uint32_t ProcIndex = 0;
  /// False when the region builder cannot form a region around this code
  /// (e.g. the hot cycle spans a procedure boundary). Samples from
  /// non-regionable loops remain unmonitored forever.
  bool Regionable = true;

  /// Number of instructions covered by the loop.
  std::size_t instrCount() const {
    return static_cast<std::size_t>((End - Start) / InstrBytes);
  }
};

/// A procedure: a named, contiguous slab of the address space.
struct Procedure {
  std::string Name;
  Addr Start = 0;
  Addr End = 0;
};

/// An immutable synthetic program. Build with ProgramBuilder.
class Program {
public:
  /// Returns the program's display name (e.g. "181.mcf").
  const std::string &name() const { return Name; }
  /// Returns all procedures in address order.
  std::span<const Procedure> procedures() const { return Procs; }
  /// Returns all loops, indexed by LoopId.
  std::span<const Loop> loops() const { return Loops; }
  /// Returns the loop with identifier \p Id.
  const Loop &loop(LoopId Id) const {
    assert(Id < Loops.size() && "loop id out of range");
    return Loops[Id];
  }

  /// Returns the instruction weights of profile \p P of loop \p L. The
  /// returned span has loop(L).instrCount() entries summing to a positive
  /// value; entry i is the relative chance a cycle sample inside the loop
  /// lands on instruction i.
  std::span<const double> profile(LoopId L, ProfileId P) const {
    assert(L < Profiles.size() && P < Profiles[L].size() &&
           "profile id out of range");
    return Profiles[L][P];
  }

  /// Returns the number of profiles registered for loop \p L.
  std::size_t profileCount(LoopId L) const {
    assert(L < Profiles.size() && "loop id out of range");
    return Profiles[L].size();
  }

  /// Returns the per-instruction D-cache miss probabilities of profile
  /// \p P of loop \p L: entry i is the chance a cycle sample on
  /// instruction i is flagged as a miss stall. Empty when the profile has
  /// no memory-stall model (all-hit).
  std::span<const double> missRates(LoopId L, ProfileId P) const {
    assert(L < MissRates.size() && P < MissRates[L].size() &&
           "profile id out of range");
    return MissRates[L][P];
  }

  /// Returns the innermost loop containing \p Pc, or std::nullopt.
  std::optional<LoopId> loopContaining(Addr Pc) const;

private:
  friend class ProgramBuilder;

  std::string Name;
  std::vector<Procedure> Procs;
  std::vector<Loop> Loops;
  /// Profiles[LoopId][ProfileId] -> per-instruction weights.
  std::vector<std::vector<std::vector<double>>> Profiles;
  /// MissRates[LoopId][ProfileId] -> per-instruction miss probabilities
  /// (empty vector = no misses).
  std::vector<std::vector<std::vector<double>>> MissRates;
};

/// Incrementally assembles a Program.
class ProgramBuilder {
public:
  /// Begins a program named \p Name.
  explicit ProgramBuilder(std::string Name);

  /// Adds a procedure spanning [\p Start, \p End). Returns its index.
  /// Bounds must be instruction-aligned and must not overlap previously
  /// added procedures.
  std::uint32_t addProcedure(std::string Name, Addr Start, Addr End);

  /// Adds a loop inside procedure \p ProcIndex spanning [\p Start, \p End).
  /// Returns its LoopId. The loop must lie inside the procedure.
  /// The loop's display name is derived from its bounds ("146f0-14770").
  LoopId addLoop(std::uint32_t ProcIndex, Addr Start, Addr End,
                 bool Regionable = true);

  /// Adds an instruction-weight profile for \p L with explicit \p Weights
  /// (must have loop instruction count entries). Returns its ProfileId.
  ProfileId addProfile(LoopId L, std::vector<double> Weights);

  /// Adds a profile with uniform background weight \p Background plus
  /// hotspots: (instruction index, extra weight) pairs. This models one or
  /// more bottleneck instructions (e.g. cache-missing loads) dominating the
  /// loop's cycle samples.
  ProfileId addHotSpotProfile(
      LoopId L, double Background,
      std::span<const std::pair<std::size_t, double>> HotSpots);

  /// Adds a copy of loop \p L's profile \p P with every hotspot shifted by
  /// \p Delta instruction slots (wrapping). This is the paper's Fig. 8
  /// "shift bottleneck by 1 instruction" behaviour change. The miss model
  /// (if any) is shifted along with the weights.
  ProfileId addShiftedProfile(LoopId L, ProfileId P, std::ptrdiff_t Delta);

  /// Attaches a D-cache miss model to profile \p P of loop \p L:
  /// \p Background miss probability everywhere plus (instruction index,
  /// extra probability) pairs for the delinquent loads. Probabilities are
  /// clamped to [0, 1].
  void setMissModel(
      LoopId L, ProfileId P, double Background,
      std::span<const std::pair<std::size_t, double>> Delinquent);

  /// Finalizes and returns the program. The builder must not be reused.
  Program build();

private:
  Program Prog;
  bool Built = false;
};

} // namespace regmon::sim

#endif // REGMON_SIM_PROGRAM_H
