//===- sim/Program.cpp - Synthetic program model --------------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Program.h"

#include <algorithm>
#include <cstdio>

using namespace regmon;
using namespace regmon::sim;

std::optional<LoopId> Program::loopContaining(Addr Pc) const {
  // Loops may nest; return the innermost (smallest) containing loop.
  std::optional<LoopId> Best;
  Addr BestSpan = ~Addr(0);
  for (const Loop &L : Loops) {
    if (Pc < L.Start || Pc >= L.End)
      continue;
    const Addr Span = L.End - L.Start;
    if (Span < BestSpan) {
      BestSpan = Span;
      Best = L.Id;
    }
  }
  return Best;
}

ProgramBuilder::ProgramBuilder(std::string Name) {
  Prog.Name = std::move(Name);
}

std::uint32_t ProgramBuilder::addProcedure(std::string Name, Addr Start,
                                           Addr End) {
  assert(!Built && "builder already consumed");
  assert(Start < End && "procedure must be non-empty");
  assert(Start % InstrBytes == 0 && End % InstrBytes == 0 &&
         "procedure bounds must be instruction-aligned");
#ifndef NDEBUG
  for (const Procedure &P : Prog.Procs)
    assert((End <= P.Start || Start >= P.End) &&
           "procedures must not overlap");
#endif
  Prog.Procs.push_back(Procedure{std::move(Name), Start, End});
  return static_cast<std::uint32_t>(Prog.Procs.size() - 1);
}

LoopId ProgramBuilder::addLoop(std::uint32_t ProcIndex, Addr Start, Addr End,
                               bool Regionable) {
  assert(!Built && "builder already consumed");
  assert(ProcIndex < Prog.Procs.size() && "unknown procedure");
  assert(Start < End && "loop must be non-empty");
  assert(Start % InstrBytes == 0 && End % InstrBytes == 0 &&
         "loop bounds must be instruction-aligned");
  const Procedure &P = Prog.Procs[ProcIndex];
  assert(Start >= P.Start && End <= P.End && "loop must lie in procedure");
  (void)P;

  char NameBuf[64];
  std::snprintf(NameBuf, sizeof(NameBuf), "%llx-%llx",
                static_cast<unsigned long long>(Start),
                static_cast<unsigned long long>(End));

  Loop L;
  L.Id = static_cast<LoopId>(Prog.Loops.size());
  L.Name = NameBuf;
  L.Start = Start;
  L.End = End;
  L.ProcIndex = ProcIndex;
  L.Regionable = Regionable;
  Prog.Loops.push_back(std::move(L));
  Prog.Profiles.emplace_back();
  Prog.MissRates.emplace_back();
  return Prog.Loops.back().Id;
}

ProfileId ProgramBuilder::addProfile(LoopId L, std::vector<double> Weights) {
  assert(!Built && "builder already consumed");
  assert(L < Prog.Loops.size() && "unknown loop");
  assert(Weights.size() == Prog.Loops[L].instrCount() &&
         "profile must cover every instruction of the loop");
#ifndef NDEBUG
  double Total = 0;
  for (double W : Weights) {
    assert(W >= 0 && "profile weights must be non-negative");
    Total += W;
  }
  assert(Total > 0 && "profile must have positive total weight");
#endif
  Prog.Profiles[L].push_back(std::move(Weights));
  Prog.MissRates[L].emplace_back(); // all-hit until setMissModel
  return static_cast<ProfileId>(Prog.Profiles[L].size() - 1);
}

ProfileId ProgramBuilder::addHotSpotProfile(
    LoopId L, double Background,
    std::span<const std::pair<std::size_t, double>> HotSpots) {
  assert(L < Prog.Loops.size() && "unknown loop");
  std::vector<double> Weights(Prog.Loops[L].instrCount(), Background);
  for (const auto &[Index, Extra] : HotSpots) {
    assert(Index < Weights.size() && "hotspot index out of range");
    Weights[Index] += Extra;
  }
  return addProfile(L, std::move(Weights));
}

ProfileId ProgramBuilder::addShiftedProfile(LoopId L, ProfileId P,
                                            std::ptrdiff_t Delta) {
  assert(L < Prog.Loops.size() && P < Prog.Profiles[L].size() &&
         "unknown profile");
  const auto Rotate = [Delta](const std::vector<double> &Src) {
    const auto N = static_cast<std::ptrdiff_t>(Src.size());
    std::vector<double> Dst(Src.size());
    for (std::ptrdiff_t I = 0; I != N; ++I) {
      std::ptrdiff_t J = (I + Delta) % N;
      if (J < 0)
        J += N;
      Dst[static_cast<std::size_t>(J)] = Src[static_cast<std::size_t>(I)];
    }
    return Dst;
  };
  const std::vector<double> SrcMisses = Prog.MissRates[L][P];
  const ProfileId New = addProfile(L, Rotate(Prog.Profiles[L][P]));
  if (!SrcMisses.empty())
    Prog.MissRates[L][New] = Rotate(SrcMisses);
  return New;
}

void ProgramBuilder::setMissModel(
    LoopId L, ProfileId P, double Background,
    std::span<const std::pair<std::size_t, double>> Delinquent) {
  assert(!Built && "builder already consumed");
  assert(L < Prog.Loops.size() && P < Prog.Profiles[L].size() &&
         "unknown profile");
  assert(Background >= 0 && Background <= 1 && "probability out of range");
  std::vector<double> Rates(Prog.Loops[L].instrCount(), Background);
  for (const auto &[Index, Extra] : Delinquent) {
    assert(Index < Rates.size() && "delinquent index out of range");
    Rates[Index] = std::min(1.0, Rates[Index] + Extra);
  }
  Prog.MissRates[L][P] = std::move(Rates);
}

Program ProgramBuilder::build() {
  assert(!Built && "builder already consumed");
  Built = true;
#ifndef NDEBUG
  for (const Loop &L : Prog.Loops)
    assert(!Prog.Profiles[L.Id].empty() &&
           "every loop needs at least one profile");
#endif
  return std::move(Prog);
}
