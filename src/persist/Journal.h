//===- persist/Journal.h - Write-ahead batch journal -----------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The write-ahead journal that makes state between snapshots replayable.
/// Layout (little-endian):
///
///     u32 magic 'RGWJ'   u32 version
///     repeated records: [ u64 seq | u32 payloadLen | u32 recordCrc | bytes ]
///
/// Records carry strictly increasing sequence numbers assigned by the
/// writer; payloads are opaque to this layer (the service encodes sample
/// batches into them). The record CRC covers the sequence number and
/// length as well as the payload, so a bit flip anywhere in a record --
/// including its header fields -- is detected, never replayed with a
/// silently wrong sequence. Each append is flushed before it is
/// acknowledged, so an acknowledged record survives a crash of the
/// process (the paper model here is a power cut, hence the torn-tail
/// handling below).
///
/// Replay trusts the longest valid prefix: it stops at the first record
/// whose header is truncated, whose payload is missing bytes, whose CRC
/// fails, or whose sequence number does not increase -- all reported as a
/// torn tail, never as an error that aborts recovery. \ref
/// JournalResult::ValidBytes tells the owner where the good prefix ends so
/// the file can be repaired (truncated) before new appends extend it.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_PERSIST_JOURNAL_H
#define REGMON_PERSIST_JOURNAL_H

#include "persist/Io.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

namespace regmon::persist {

/// 'RGWJ' in little-endian byte order.
inline constexpr std::uint32_t JournalMagic = 0x4A574752U;
inline constexpr std::uint32_t JournalVersion = 1;

/// The CRC stored in a journal record: seq and length chained with the
/// payload, so header corruption is as detectable as payload corruption.
/// Shared by the writer, the replayer, and journal compaction.
std::uint32_t journalRecordCrc(std::uint64_t Seq,
                               std::span<const std::uint8_t> Payload);

/// Outcome of scanning a journal file.
struct JournalResult {
  /// Records delivered to the replay callback.
  std::uint64_t RecordsReplayed = 0;
  /// Records skipped because their sequence number was at or below the
  /// caller's skip threshold (already covered by the snapshot).
  std::uint64_t RecordsSkipped = 0;
  /// Highest sequence number seen in the valid prefix.
  std::uint64_t LastSeq = 0;
  /// Byte length of the valid prefix (header included); the repair point.
  std::uint64_t ValidBytes = 0;
  /// A torn or corrupt record terminated the scan early.
  bool TornTail = false;
  /// The file header itself was damaged; nothing was replayed.
  bool HeaderCorrupt = false;
  /// No journal file existed (a fresh directory, not corruption).
  bool Missing = false;
  /// The replay callback rejected a record (malformed payload); treated
  /// like a torn tail: the scan stops there.
  bool PayloadRejected = false;
};

/// Appends records to a journal file, flushing each one.
class JournalWriter {
public:
  JournalWriter() = default;
  ~JournalWriter();

  JournalWriter(const JournalWriter &) = delete;
  JournalWriter &operator=(const JournalWriter &) = delete;

  /// Opens \p Path for appending, writing the file header first when the
  /// file is new or empty. \p Crash (nullable) gates every byte.
  bool open(const std::string &Path, CrashPoint *Crash);

  /// True while the writer can accept appends.
  bool ok() const;

  /// Appends and flushes one record. A false return means the record is
  /// not durable (it may be partially on disk -- a torn tail) and the
  /// writer is dead.
  bool append(std::uint64_t Seq, std::span<const std::uint8_t> Payload);

  /// Closes the file; the writer can be \ref open-ed again.
  void close();

private:
  std::unique_ptr<FileSink> Sink;
};

/// Scans \p Path, invoking \p Replay for every valid record with sequence
/// number greater than \p SkipThroughSeq. \p Replay returns false to
/// reject a malformed payload, which ends the scan (see JournalResult).
JournalResult replayJournal(
    const std::string &Path, std::uint64_t SkipThroughSeq,
    const std::function<bool(std::uint64_t, std::span<const std::uint8_t>)>
        &Replay);

} // namespace regmon::persist

#endif // REGMON_PERSIST_JOURNAL_H
