//===- persist/Checkpoint.cpp - Atomic snapshot commit + recovery ---------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "persist/Checkpoint.h"

#include "persist/Bytes.h"
#include "persist/Crc32.h"

#include <utility>

using namespace regmon::persist;

CheckpointManager::CheckpointManager(std::string Dir) : Root(std::move(Dir)) {
  Valid = ensureDir(Root);
}

std::string CheckpointManager::snapshotPath() const {
  return Root + "/snapshot.bin";
}
std::string CheckpointManager::prevSnapshotPath() const {
  return Root + "/snapshot.prev.bin";
}
std::string CheckpointManager::tmpSnapshotPath() const {
  return Root + "/snapshot.tmp";
}
std::string CheckpointManager::journalPath() const {
  return Root + "/journal.wal";
}

void CheckpointManager::noteCommitFailure(std::uint64_t CompactThroughSeq) {
  ++Counters.CommitFailures;
  if (Obs) {
    obs::addTo(Obs->CommitFailures);
    obs::recordEvent(Obs->Tracer, obs::EventKind::CheckpointCommitFailed,
                     Obs->Stream, 0, CompactThroughSeq);
  }
}

bool CheckpointManager::commitSnapshot(std::span<const std::uint8_t> Encoded,
                                       std::uint64_t CompactThroughSeq) {
  if (!Valid) {
    noteCommitFailure(CompactThroughSeq);
    return false;
  }
  // Compaction rewrites the journal file underneath the writer; release it
  // (appendJournal reopens on demand).
  Writer.close();

  // Step 1: the complete new snapshot lands under a scratch name. A crash
  // here leaves a torn tmp that recovery never reads.
  {
    FileSink Tmp(tmpSnapshotPath(), /*Append=*/false, Injected);
    if (!Tmp.write(Encoded) || !Tmp.close()) {
      noteCommitFailure(CompactThroughSeq);
      return false;
    }
  }
  // Step 2: demote the current snapshot to the fallback rung. A crash
  // after this leaves no snapshot.bin; recovery falls to prev + journal.
  if (fileExists(snapshotPath()) &&
      !renameFile(snapshotPath(), prevSnapshotPath(), Injected)) {
    noteCommitFailure(CompactThroughSeq);
    return false;
  }
  // Step 3: promote the tmp atomically; this is the commit point.
  if (!renameFile(tmpSnapshotPath(), snapshotPath(), Injected)) {
    noteCommitFailure(CompactThroughSeq);
    return false;
  }
  ++Counters.SnapshotsCommitted;
  if (Obs) {
    obs::addTo(Obs->SnapshotsCommitted);
    obs::recordEvent(Obs->Tracer, obs::EventKind::CheckpointCommitted,
                     Obs->Stream, 0, CompactThroughSeq,
                     static_cast<double>(Encoded.size()));
  }
  // Step 4: drop journal records already covered by the *fallback* rung.
  // Failure (or a crash) here is harmless -- extra records are skipped by
  // sequence number on replay -- so it does not fail the commit.
  compactJournal(CompactThroughSeq);
  return true;
}

bool CheckpointManager::compactJournal(std::uint64_t ThroughSeq) {
  struct Kept {
    std::uint64_t Seq;
    std::vector<std::uint8_t> Payload;
  };
  std::vector<Kept> Records;
  const JournalResult Scan = replayJournal(
      journalPath(), ThroughSeq,
      [&Records](std::uint64_t Seq, std::span<const std::uint8_t> Payload) {
        Records.push_back(
            {Seq, std::vector<std::uint8_t>(Payload.begin(), Payload.end())});
        return true;
      });
  if (Scan.Missing)
    return true;

  ByteWriter W;
  W.u32(JournalMagic);
  W.u32(JournalVersion);
  for (const Kept &Rec : Records) {
    W.u64(Rec.Seq);
    W.u32(static_cast<std::uint32_t>(Rec.Payload.size()));
    W.u32(journalRecordCrc(Rec.Seq, Rec.Payload));
    W.bytes(Rec.Payload);
  }
  const std::string Tmp = Root + "/journal.tmp";
  {
    FileSink Sink(Tmp, /*Append=*/false, Injected);
    if (!Sink.write(W.data()) || !Sink.close())
      return false;
  }
  return renameFile(Tmp, journalPath(), Injected);
}

std::optional<std::vector<SnapshotSection>>
CheckpointManager::loadRung(Rung R) {
  const std::string Path =
      R == Rung::Current ? snapshotPath() : prevSnapshotPath();
  const auto Data = readFileBytes(Path);
  if (!Data) {
    Counters.LastError = SnapshotError::FileMissing;
    return std::nullopt;
  }
  ++Counters.LoadAttempts;
  std::vector<SnapshotSection> Sections;
  const SnapshotError Err = decodeSnapshot(*Data, Sections);
  if (Err != SnapshotError::None) {
    ++Counters.CorruptSnapshots;
    if (Obs)
      obs::addTo(Obs->CorruptSnapshots);
    Counters.LastError = Err;
    return std::nullopt;
  }
  Counters.LastError = SnapshotError::None;
  return Sections;
}

void CheckpointManager::noteDecodeFailure() {
  ++Counters.CorruptSnapshots;
  if (Obs)
    obs::addTo(Obs->CorruptSnapshots);
}

void CheckpointManager::noteColdStart() {
  ++Counters.ColdStarts;
  if (Obs) {
    obs::addTo(Obs->ColdStarts);
    obs::recordEvent(Obs->Tracer, obs::EventKind::CheckpointColdStart,
                     Obs->Stream, 0, 0);
  }
}

void CheckpointManager::noteFallbackUsed() {
  ++Counters.FallbacksUsed;
  if (Obs) {
    obs::addTo(Obs->FallbacksUsed);
    obs::recordEvent(Obs->Tracer, obs::EventKind::CheckpointFallback,
                     Obs->Stream, 0, 0);
  }
}

bool CheckpointManager::appendJournal(std::uint64_t Seq,
                                      std::span<const std::uint8_t> Payload) {
  if (!Valid)
    return false;
  if (!Writer.ok() && !Writer.open(journalPath(), Injected))
    return false;
  return Writer.append(Seq, Payload);
}

JournalResult CheckpointManager::replayAndRepair(
    std::uint64_t SkipThroughSeq,
    const std::function<bool(std::uint64_t, std::span<const std::uint8_t>)>
        &Replay) {
  Writer.close();
  JournalResult Res = replayJournal(journalPath(), SkipThroughSeq, Replay);
  Counters.JournalRecordsReplayed += Res.RecordsReplayed;
  Counters.JournalRecordsSkipped += Res.RecordsSkipped;
  if (Obs) {
    obs::addTo(Obs->JournalRecordsReplayed, Res.RecordsReplayed);
    obs::addTo(Obs->JournalRecordsSkipped, Res.RecordsSkipped);
    if (!Res.Missing)
      obs::recordEvent(Obs->Tracer, obs::EventKind::JournalReplayed,
                       Obs->Stream, 0, SkipThroughSeq,
                       static_cast<double>(Res.RecordsReplayed));
  }
  if (Res.Missing)
    return Res;
  if (Res.TornTail || Res.HeaderCorrupt) {
    ++Counters.JournalTornTails;
    if (Obs)
      obs::addTo(Obs->JournalTornTails);
    // Cut the file back to its valid prefix (possibly zero bytes, in which
    // case the next append rewrites the header) so new records extend a
    // well-formed journal instead of hiding behind torn bytes.
    if (truncateFile(journalPath(), Res.ValidBytes, nullptr)) {
      ++Counters.JournalRepairs;
      if (Obs)
        obs::addTo(Obs->JournalRepairs);
    }
  }
  return Res;
}
