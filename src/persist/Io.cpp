//===- persist/Io.cpp - Crash-injectable durable file I/O -----------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "persist/Io.h"

#include <filesystem>
#include <system_error>

using namespace regmon::persist;

FileSink::FileSink(const std::string &Path, bool Append, CrashPoint *CP)
    : Crash(CP) {
  File = std::fopen(Path.c_str(), Append ? "ab" : "wb");
}

FileSink::~FileSink() {
  if (File != nullptr) {
    if (std::fclose(File) != 0)
      Failed = true;
    File = nullptr;
  }
}

bool FileSink::write(std::span<const std::uint8_t> Data) {
  if (!ok())
    return false;
  std::uint64_t Allowed = Data.size();
  if (Crash != nullptr)
    Allowed = Crash->grantBytes(Data.size());
  if (Allowed > 0 &&
      std::fwrite(Data.data(), 1, Allowed, File) != Allowed) {
    Failed = true;
    return false;
  }
  if (Allowed < Data.size()) {
    // The injected crash truncated this write: flush what survived so the
    // torn prefix is really on disk, then stay failed forever.
    if (std::fflush(File) != 0) {
      Failed = true;
      return false;
    }
    Failed = true;
    return false;
  }
  return true;
}

bool FileSink::flush() {
  if (!ok())
    return false;
  if (Crash != nullptr && !Crash->grantOp()) {
    Failed = true;
    return false;
  }
  if (std::fflush(File) != 0) {
    Failed = true;
    return false;
  }
  return true;
}

bool FileSink::close() {
  const bool WasOk = flush();
  bool CloseOk = true;
  if (File != nullptr) {
    CloseOk = std::fclose(File) == 0;
    File = nullptr;
  }
  return WasOk && CloseOk;
}

std::optional<std::vector<std::uint8_t>>
regmon::persist::readFileBytes(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (F == nullptr)
    return std::nullopt;
  std::vector<std::uint8_t> Data;
  std::uint8_t Chunk[4096];
  for (;;) {
    const auto N = std::fread(Chunk, 1, sizeof(Chunk), F);
    Data.insert(Data.end(), Chunk, Chunk + N);
    if (N < sizeof(Chunk))
      break;
  }
  const bool HadError = std::ferror(F) != 0;
  if (std::fclose(F) != 0 || HadError)
    return std::nullopt;
  return Data;
}

bool regmon::persist::fileExists(const std::string &Path) {
  std::error_code Ec;
  return std::filesystem::exists(Path, Ec) && !Ec;
}

bool regmon::persist::renameFile(const std::string &From,
                                 const std::string &To, CrashPoint *Crash) {
  if (Crash != nullptr && !Crash->grantOp())
    return false;
  std::error_code Ec;
  std::filesystem::rename(From, To, Ec);
  return !Ec;
}

bool regmon::persist::removeFile(const std::string &Path, CrashPoint *Crash) {
  if (Crash != nullptr && !Crash->grantOp())
    return false;
  std::error_code Ec;
  std::filesystem::remove(Path, Ec);
  return !Ec;
}

bool regmon::persist::truncateFile(const std::string &Path,
                                   std::uint64_t NewLength,
                                   CrashPoint *Crash) {
  if (Crash != nullptr && !Crash->grantOp())
    return false;
  std::error_code Ec;
  std::filesystem::resize_file(Path, NewLength, Ec);
  return !Ec;
}

bool regmon::persist::ensureDir(const std::string &Dir) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  std::error_code Ec2;
  return std::filesystem::is_directory(Dir, Ec2) && !Ec2;
}
