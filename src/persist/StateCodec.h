//===- persist/StateCodec.h - Monitoring-state serialization ---*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes the learned state of the monitoring stack -- region monitor
/// (regions, interval-tree membership, per-region histograms and local
/// phase machines), GPD centroid detector, and the RTO deployment ledger
/// -- to the persist byte format and back.
///
/// Contract:
///
///  * **Bit-identical**: encode(decode(encode(x))) == encode(x), and a
///    decoded object continued over the same input sequence produces the
///    same bytes as the uninterrupted original. Doubles are stored as raw
///    IEEE-754 bits for exactly this reason (re-deriving a windowed Sum
///    would replay a different accumulation order).
///  * **All-or-nothing**: decode either fully populates a freshly
///    constructed object or returns false and leaves it reset. Every
///    length, state value, and cross-field invariant (histogram totals,
///    window occupancy, region alignment) is validated; a hostile payload
///    cannot corrupt a monitor, only fail the decode.
///  * **Config-checked**: payloads embed a fingerprint of the
///    configuration fields that shape the state layout; decoding under a
///    different configuration is rejected rather than misinterpreted.
///
/// The codec is a friend of the classes it serializes: state stays
/// private, and none of those libraries link against persist.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_PERSIST_STATECODEC_H
#define REGMON_PERSIST_STATECODEC_H

#include "core/RegionMonitor.h"
#include "gpd/CentroidPhaseDetector.h"
#include "persist/Bytes.h"
#include "rto/TraceDeployments.h"
#include "sampling/AdaptiveController.h"
#include "support/Histogram.h"
#include "support/Statistics.h"

namespace regmon::persist {

/// Stateless encode/decode entry points. See the file comment for the
/// safety and identity contract shared by every pair.
class StateCodec {
public:
  /// Region monitor: the full learned state (regions, attribution
  /// membership, current + stable histograms, detectors, statistics,
  /// optional timelines). Decode requires \p M freshly constructed (or
  /// reset) with the *same configuration* the encoder ran under; on
  /// failure \p M is reset back to cold state.
  static void encode(ByteWriter &W, const core::RegionMonitor &M);
  static bool decode(ByteReader &R, core::RegionMonitor &M);

  /// Local phase detector (state machine + frozen stable set).
  static void encode(ByteWriter &W, const core::LocalPhaseDetector &D);
  static bool decode(ByteReader &R, core::LocalPhaseDetector &D);

  /// Per-instruction histogram. Decode validates the region bounds match
  /// the histogram \p H was constructed for.
  static void encode(ByteWriter &W, const InstrHistogram &H);
  static bool decode(ByteReader &R, InstrHistogram &H);

  /// Sliding-window statistics. \p MaxCap bounds the accepted capacity
  /// (windows resize dynamically under adaptive configs, so the expected
  /// capacity is a range, not a constant).
  static void encode(ByteWriter &W, const WindowedStats &S);
  static bool decode(ByteReader &R, WindowedStats &S, std::uint64_t MaxCap);

  /// Centroid global phase detector.
  static void encode(ByteWriter &W, const gpd::CentroidPhaseDetector &G);
  static bool decode(ByteReader &R, gpd::CentroidPhaseDetector &G);

  /// Adaptive sampling controller. Decode requires \p C constructed with
  /// the same (normalized) configuration the encoder ran under and
  /// rejects dynamic state violating the machine's invariants (scale
  /// above the cap, a banked streak at or past the step threshold, or
  /// nonzero state on a disabled controller) -- a desynced payload fails
  /// rather than replaying a different period schedule.
  static void encode(ByteWriter &W, const sampling::AdaptiveController &C);
  static bool decode(ByteReader &R, sampling::AdaptiveController &C);

  /// RTO deployment ledger. Decode restores the tracker's bookkeeping
  /// only; the engine's rate factors resync on the caller's next
  /// refresh() (the rto driver calls it once per interval).
  static void encode(ByteWriter &W, const rto::TraceDeployments &T);
  static bool decode(ByteReader &R, rto::TraceDeployments &T);
};

} // namespace regmon::persist

#endif // REGMON_PERSIST_STATECODEC_H
