//===- persist/Bytes.h - Bounds-checked binary encoding --------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian binary encoding primitives for snapshot and journal
/// payloads. The reader is the trust boundary of the whole durability
/// layer: every field it hands out has been bounds-checked against the
/// remaining input first, every length prefix is validated against the
/// bytes actually present before a single element is allocated, and the
/// first failed read latches a sticky failure flag that makes every later
/// read return zero. Decoding arbitrary hostile bytes is therefore memory
/// safe by construction -- corruption can only produce `ok() == false`,
/// never an out-of-bounds access or an unbounded allocation.
///
/// All integers are serialized as fixed-width little-endian values and all
/// doubles as their raw IEEE-754 bit patterns (recomputing a sum on load
/// would change last-ulp accumulation and break bit-identical recovery).
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_PERSIST_BYTES_H
#define REGMON_PERSIST_BYTES_H

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace regmon::persist {

/// Appends little-endian fields to a growable byte buffer.
class ByteWriter {
public:
  /// Pre-sizes the buffer for \p Total bytes of upcoming output. Purely
  /// an allocation hint -- hot encoders (the flight recorder's per-batch
  /// payloads) call it to avoid growth reallocations mid-record.
  void reserve(std::uint64_t Total) { Buf.reserve(Total); }

  void u8(std::uint8_t V) { Buf.push_back(V); }

  void u32(std::uint32_t V) {
    for (std::uint32_t I = 0; I < 4; ++I)
      Buf.push_back(static_cast<std::uint8_t>(V >> (8 * I)));
  }

  void u64(std::uint64_t V) {
    for (std::uint32_t I = 0; I < 8; ++I)
      Buf.push_back(static_cast<std::uint8_t>(V >> (8 * I)));
  }

  void f64(double V) { u64(std::bit_cast<std::uint64_t>(V)); }

  void boolean(bool V) { u8(V ? 1 : 0); }

  void bytes(std::span<const std::uint8_t> Data) {
    Buf.insert(Buf.end(), Data.begin(), Data.end());
  }

  /// Length-prefixed (u64) UTF-8/opaque string.
  void str(std::string_view S) {
    u64(S.size());
    for (char C : S)
      Buf.push_back(static_cast<std::uint8_t>(C));
  }

  /// Length-prefixed (u64 element count) vectors.
  void vecU8(std::span<const std::uint8_t> V) {
    u64(V.size());
    bytes(V);
  }
  void vecU32(std::span<const std::uint32_t> V) {
    u64(V.size());
    for (std::uint32_t X : V)
      u32(X);
  }
  void vecU64(std::span<const std::uint64_t> V) {
    u64(V.size());
    for (std::uint64_t X : V)
      u64(X);
  }
  void vecF64(std::span<const double> V) {
    u64(V.size());
    for (double X : V)
      f64(X);
  }

  std::span<const std::uint8_t> data() const { return Buf; }
  std::uint64_t size() const { return Buf.size(); }
  std::vector<std::uint8_t> take() { return std::move(Buf); }

private:
  std::vector<std::uint8_t> Buf;
};

/// Consumes little-endian fields from an immutable byte view. See the file
/// comment for the safety contract; callers check \ref ok once after a
/// group of reads rather than after every field.
class ByteReader {
public:
  explicit ByteReader(std::span<const std::uint8_t> Data) : Buf(Data) {}

  bool ok() const { return !Failed; }
  /// Latches the sticky failure flag (also used by callers to reject
  /// semantically invalid values mid-decode).
  void fail() { Failed = true; }
  std::uint64_t remaining() const { return Buf.size() - Pos; }
  /// True when every byte has been consumed; decode routines require this
  /// at the end so trailing garbage is rejected, not ignored.
  bool atEnd() const { return !Failed && Pos == Buf.size(); }

  std::uint8_t u8() {
    if (!take(1))
      return 0;
    return Buf[Pos - 1];
  }

  std::uint32_t u32() {
    if (!take(4))
      return 0;
    std::uint32_t V = 0;
    for (std::uint32_t I = 0; I < 4; ++I)
      V |= static_cast<std::uint32_t>(Buf[Pos - 4 + I]) << (8 * I);
    return V;
  }

  std::uint64_t u64() {
    if (!take(8))
      return 0;
    std::uint64_t V = 0;
    for (std::uint32_t I = 0; I < 8; ++I)
      V |= static_cast<std::uint64_t>(Buf[Pos - 8 + I]) << (8 * I);
    return V;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  /// A serialized bool must be exactly 0 or 1; anything else is corruption.
  bool boolean() {
    const std::uint8_t V = u8();
    if (V > 1)
      fail();
    return V == 1;
  }

  /// Length-prefixed string. The length is validated against the remaining
  /// bytes before the string is built.
  bool str(std::string &Out) {
    const std::uint64_t Len = u64();
    if (Failed || Len > remaining()) {
      fail();
      return false;
    }
    Out.assign(reinterpret_cast<const char *>(Buf.data() + Pos), Len);
    Pos += Len;
    return true;
  }

  bool vecU8(std::vector<std::uint8_t> &Out) {
    const std::uint64_t Len = u64();
    if (Failed || Len > remaining()) {
      fail();
      return false;
    }
    Out.assign(Buf.begin() + static_cast<std::int64_t>(Pos),
               Buf.begin() + static_cast<std::int64_t>(Pos + Len));
    Pos += Len;
    return true;
  }

  bool vecU32(std::vector<std::uint32_t> &Out) {
    const std::uint64_t Len = u64();
    if (Failed || Len > remaining() / 4) {
      fail();
      return false;
    }
    Out.clear();
    Out.reserve(Len);
    for (std::uint64_t I = 0; I < Len; ++I)
      Out.push_back(u32());
    return ok();
  }

  bool vecU64(std::vector<std::uint64_t> &Out) {
    const std::uint64_t Len = u64();
    if (Failed || Len > remaining() / 8) {
      fail();
      return false;
    }
    Out.clear();
    Out.reserve(Len);
    for (std::uint64_t I = 0; I < Len; ++I)
      Out.push_back(u64());
    return ok();
  }

  bool vecF64(std::vector<double> &Out) {
    const std::uint64_t Len = u64();
    if (Failed || Len > remaining() / 8) {
      fail();
      return false;
    }
    Out.clear();
    Out.reserve(Len);
    for (std::uint64_t I = 0; I < Len; ++I)
      Out.push_back(f64());
    return ok();
  }

  /// Reads exactly Out.size() raw bytes.
  bool bytes(std::span<std::uint8_t> Out) {
    if (!take(Out.size()))
      return false;
    for (std::uint64_t I = 0; I < Out.size(); ++I)
      Out[I] = Buf[Pos - Out.size() + I];
    return true;
  }

private:
  /// Advances past \p N bytes if present; latches failure otherwise.
  bool take(std::uint64_t N) {
    if (Failed || N > remaining()) {
      Failed = true;
      return false;
    }
    Pos += N;
    return true;
  }

  std::span<const std::uint8_t> Buf;
  std::uint64_t Pos = 0;
  bool Failed = false;
};

} // namespace regmon::persist

#endif // REGMON_PERSIST_BYTES_H
