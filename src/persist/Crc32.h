//===- persist/Crc32.h - CRC-32 checksums for durable state ----*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte spans.
/// Every snapshot section and journal record carries one, and the snapshot
/// file ends in a whole-file CRC, so any single bit flip or truncation is
/// detected deterministically before a byte of state is trusted.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_PERSIST_CRC32_H
#define REGMON_PERSIST_CRC32_H

#include <cstdint>
#include <span>

namespace regmon::persist {

/// Returns the CRC-32 of \p Data. Pass a previous result as \p Seed to
/// checksum a logically contiguous stream in chunks:
/// crc32(B, crc32(A)) == crc32(AB).
std::uint32_t crc32(std::span<const std::uint8_t> Data, std::uint32_t Seed = 0);

} // namespace regmon::persist

#endif // REGMON_PERSIST_CRC32_H
