//===- persist/StateCodec.cpp - Monitoring-state serialization ------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "persist/StateCodec.h"

#include "support/Types.h"

#include <memory>

using namespace regmon;
using namespace regmon::persist;

namespace {

/// Decode-side sanity bounds: a corrupt length field must buy neither a
/// huge allocation nor a long loop. Real monitors sit far below both.
constexpr std::uint64_t MaxRegionsDecoded = 1ULL << 20;
constexpr std::uint64_t MaxInstrsPerRegion = 1ULL << 24;

std::uint64_t sumOfBins(std::span<const std::uint32_t> Bins) {
  std::uint64_t Total = 0;
  for (std::uint32_t B : Bins)
    Total += B;
  return Total;
}

std::uint64_t sumOfSquaredBins(std::span<const std::uint32_t> Bins) {
  std::uint64_t Total = 0;
  for (std::uint32_t B : Bins)
    Total += static_cast<std::uint64_t>(B) * B;
  return Total;
}

} // namespace

//===----------------------------------------------------------------------===//
// InstrHistogram
//===----------------------------------------------------------------------===//

void StateCodec::encode(ByteWriter &W, const InstrHistogram &H) {
  W.u64(H.StartAddr);
  W.vecU32(H.Bins);
  W.u64(H.TotalCount);
  W.u64(H.SumSq);
}

bool StateCodec::decode(ByteReader &R, InstrHistogram &H) {
  const std::uint64_t Start = R.u64();
  std::vector<std::uint32_t> Bins;
  if (!R.vecU32(Bins))
    return false;
  const std::uint64_t Total = R.u64();
  const std::uint64_t SumSq = R.u64();
  // The running moments must agree with a from-scratch recompute over the
  // decoded bins: a hostile payload desynchronizing them would make the
  // incremental and naive engines disagree after restore.
  if (!R.ok() || Start != H.StartAddr || Bins.size() != H.Bins.size() ||
      Total != sumOfBins(Bins) || SumSq != sumOfSquaredBins(Bins)) {
    R.fail();
    return false;
  }
  H.Bins = std::move(Bins);
  H.TotalCount = Total;
  H.SumSq = SumSq;
  return true;
}

//===----------------------------------------------------------------------===//
// WindowedStats
//===----------------------------------------------------------------------===//

void StateCodec::encode(ByteWriter &W, const WindowedStats &S) {
  W.u64(S.Cap);
  W.u64(S.Head);
  W.vecF64(S.Buffer);
  // Raw bits: recomputing the sum would replay a different accumulation
  // order and break bit-identical continuation.
  W.f64(S.Sum);
}

bool StateCodec::decode(ByteReader &R, WindowedStats &S,
                        std::uint64_t MaxCap) {
  const std::uint64_t Cap = R.u64();
  const std::uint64_t Head = R.u64();
  std::vector<double> Buffer;
  if (!R.vecF64(Buffer))
    return false;
  const double Sum = R.f64();
  const bool Full = Buffer.size() == Cap;
  if (!R.ok() || Cap == 0 || Cap > MaxCap || Buffer.size() > Cap ||
      (Full ? Head >= Cap : Head != 0)) {
    R.fail();
    return false;
  }
  S.Cap = Cap;
  S.Head = Head;
  S.Buffer = std::move(Buffer);
  S.Sum = Sum;
  return true;
}

//===----------------------------------------------------------------------===//
// LocalPhaseDetector
//===----------------------------------------------------------------------===//

void StateCodec::encode(ByteWriter &W, const core::LocalPhaseDetector &D) {
  W.vecU32(D.PrevHist);
  W.u64(D.PrevSum);
  W.u64(D.PrevSumSq);
  W.boolean(D.PrevValid);
  W.u8(static_cast<std::uint8_t>(D.State));
  W.f64(D.LastR);
  W.boolean(D.LastWasChange);
  W.u64(D.PhaseChanges);
  W.u64(D.Observed);
  W.u64(D.SkippedUndersampled);
}

bool StateCodec::decode(ByteReader &R, core::LocalPhaseDetector &D) {
  std::vector<std::uint32_t> Prev;
  if (!R.vecU32(Prev))
    return false;
  const std::uint64_t PrevSum = R.u64();
  const std::uint64_t PrevSumSq = R.u64();
  const bool PrevValid = R.boolean();
  const std::uint8_t State = R.u8();
  const double LastR = R.f64();
  const bool LastWasChange = R.boolean();
  const std::uint64_t PhaseChanges = R.u64();
  const std::uint64_t Observed = R.u64();
  const std::uint64_t Skipped = R.u64();
  // Like the histogram moments: the stable set's running sums must match
  // a recompute, or the O(1) similarity path would silently diverge from
  // the oracle after a hostile restore.
  if (!R.ok() || Prev.size() != D.PrevHist.size() || State > 2 ||
      PrevSum != sumOfBins(Prev) || PrevSumSq != sumOfSquaredBins(Prev)) {
    R.fail();
    return false;
  }
  D.PrevHist = std::move(Prev);
  D.PrevSum = PrevSum;
  D.PrevSumSq = PrevSumSq;
  D.PrevValid = PrevValid;
  D.State = static_cast<core::LocalPhaseState>(State);
  D.LastR = LastR;
  D.LastWasChange = LastWasChange;
  D.PhaseChanges = PhaseChanges;
  D.Observed = Observed;
  D.SkippedUndersampled = Skipped;
  return true;
}

//===----------------------------------------------------------------------===//
// RegionMonitor
//===----------------------------------------------------------------------===//

void StateCodec::encode(ByteWriter &W, const core::RegionMonitor &M) {
  // Configuration fingerprint: the fields that shape the serialized
  // layout. A mismatch on decode means the bytes describe a different
  // monitor and must be rejected, not reinterpreted.
  W.boolean(M.Config.TrackMissPhases);
  W.boolean(M.Config.RecordTimelines);
  W.u64(M.Config.MissWindowIntervals);

  W.u64(M.Intervals);
  W.u64(M.FormationTriggers);
  W.u64(M.UndersampledIntervals);
  W.vecF64(M.UcrHistory);

  W.u32(static_cast<std::uint32_t>(M.Regions.size()));
  for (core::RegionId Id = 0; Id < M.Regions.size(); ++Id) {
    const core::Region &Reg = M.Regions[Id];
    W.str(Reg.Name);
    W.u64(Reg.Start);
    W.u64(Reg.End);
    W.u64(Reg.FormedAtInterval);
    W.boolean(M.Active[Id]);
    encode(W, M.CurrHists[Id]);
    encode(W, M.CurrMissHists[Id]);
    encode(W, *M.Detectors[Id]);
    W.boolean(M.MissDetectors[Id] != nullptr);
    if (M.MissDetectors[Id] != nullptr)
      encode(W, *M.MissDetectors[Id]);
    const core::RegionStats &RS = M.Stats[Id];
    W.u64(RS.LifetimeIntervals);
    W.u64(RS.StableIntervals);
    W.u64(RS.ActiveIntervals);
    W.u64(RS.TotalSamples);
    W.u64(RS.TotalMisses);
    W.u64(RS.PhaseChanges);
    W.u64(RS.MissPhaseChanges);
    W.u64(M.LastSampledInterval[Id]);
    W.vecU64(M.CumulativeMisses[Id]);
    encode(W, M.RecentMiss[Id]);
    if (M.Config.RecordTimelines) {
      W.vecU32(M.SampleTimelines[Id]);
      W.vecF64(M.RTimelines[Id]);
      W.u64(M.StateTimelines[Id].size());
      for (core::LocalPhaseState S : M.StateTimelines[Id])
        W.u8(static_cast<std::uint8_t>(S));
    }
  }
}

bool StateCodec::decode(ByteReader &R, core::RegionMonitor &M) {
  // All-or-nothing: any validation failure resets the monitor to cold
  // state so a half-decoded object can never leak out.
  const auto Reject = [&M, &R] {
    R.fail();
    M.reset();
    return false;
  };
  if (!M.Regions.empty())
    return Reject();

  if (R.boolean() != M.Config.TrackMissPhases ||
      R.boolean() != M.Config.RecordTimelines ||
      R.u64() != M.Config.MissWindowIntervals || !R.ok())
    return Reject();

  M.Intervals = R.u64();
  M.FormationTriggers = R.u64();
  M.UndersampledIntervals = R.u64();
  if (!R.vecF64(M.UcrHistory))
    return Reject();

  const std::uint32_t RegionCount = R.u32();
  if (!R.ok() || RegionCount > MaxRegionsDecoded)
    return Reject();

  for (std::uint32_t Id = 0; Id < RegionCount; ++Id) {
    core::Region Reg;
    Reg.Id = Id;
    if (!R.str(Reg.Name))
      return Reject();
    Reg.Start = R.u64();
    Reg.End = R.u64();
    Reg.FormedAtInterval = R.u64();
    const bool IsActive = R.boolean();
    if (!R.ok() || Reg.Start >= Reg.End || Reg.Start % InstrBytes != 0 ||
        Reg.End % InstrBytes != 0 ||
        (Reg.End - Reg.Start) / InstrBytes > MaxInstrsPerRegion)
      return Reject();
    const std::uint64_t Instrs = (Reg.End - Reg.Start) / InstrBytes;

    // Construct the region's parallel state exactly as triggerFormation
    // would, then decode into it. All parallel arrays grow together so a
    // failure at any later field still leaves reset() a consistent view.
    M.Regions.push_back(std::move(Reg));
    const core::Region &Placed = M.Regions.back();
    M.Active.push_back(IsActive);
    M.CurrHists.emplace_back(Placed.Start, Placed.End);
    M.CurrMissHists.emplace_back(Placed.Start, Placed.End);
    M.Detectors.push_back(std::make_unique<core::LocalPhaseDetector>(
        Instrs, *M.Metric, M.Config.Lpd));
    M.MissDetectors.push_back(nullptr);
    M.Stats.emplace_back();
    M.LastSampledInterval.push_back(0);
    M.CumulativeMisses.emplace_back();
    M.RecentMiss.emplace_back(M.Config.MissWindowIntervals);
    if (M.Config.RecordTimelines) {
      M.SampleTimelines.emplace_back();
      M.RTimelines.emplace_back();
      M.StateTimelines.emplace_back();
    }
    if (IsActive)
      M.Attrib->insert(Placed.Id, Placed.Start, Placed.End);

    if (!decode(R, M.CurrHists.back()) ||
        !decode(R, M.CurrMissHists.back()) ||
        !decode(R, *M.Detectors.back()))
      return Reject();
    const bool HasMissDetector = R.boolean();
    if (!R.ok() || HasMissDetector != M.Config.TrackMissPhases)
      return Reject();
    if (HasMissDetector) {
      M.MissDetectors.back() = std::make_unique<core::LocalPhaseDetector>(
          Instrs, *M.Metric, M.Config.Lpd);
      if (!decode(R, *M.MissDetectors.back()))
        return Reject();
    }
    core::RegionStats &RS = M.Stats.back();
    RS.LifetimeIntervals = R.u64();
    RS.StableIntervals = R.u64();
    RS.ActiveIntervals = R.u64();
    RS.TotalSamples = R.u64();
    RS.TotalMisses = R.u64();
    RS.PhaseChanges = R.u64();
    RS.MissPhaseChanges = R.u64();
    M.LastSampledInterval.back() = R.u64();
    if (!R.vecU64(M.CumulativeMisses.back()) ||
        M.CumulativeMisses.back().size() != Instrs)
      return Reject();
    if (!decode(R, M.RecentMiss.back(), M.Config.MissWindowIntervals) ||
        M.RecentMiss.back().Cap != M.Config.MissWindowIntervals)
      return Reject();
    if (M.Config.RecordTimelines) {
      if (!R.vecU32(M.SampleTimelines.back()) ||
          !R.vecF64(M.RTimelines.back()))
        return Reject();
      const std::uint64_t States = R.u64();
      if (!R.ok() || States > R.remaining())
        return Reject();
      auto &Timeline = M.StateTimelines.back();
      Timeline.reserve(States);
      for (std::uint64_t I = 0; I < States; ++I) {
        const std::uint8_t S = R.u8();
        if (S > 2)
          return Reject();
        Timeline.push_back(static_cast<core::LocalPhaseState>(S));
      }
      if (!R.ok())
        return Reject();
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// CentroidPhaseDetector
//===----------------------------------------------------------------------===//

void StateCodec::encode(ByteWriter &W, const gpd::CentroidPhaseDetector &G) {
  W.u64(G.Config.HistoryLength);
  W.boolean(G.Config.AdaptiveWindow);
  W.u64(G.Config.MinHistoryLength);
  W.u64(G.Config.MaxHistoryLength);
  encode(W, G.History);
  W.u8(static_cast<std::uint8_t>(G.State));
  W.u32(G.Timer);
  W.u32(G.QuietStableRun);
  W.boolean(G.LastWasChange);
  W.u64(G.PhaseChanges);
  W.u64(G.Intervals);
  W.u64(G.StableIntervals);
  W.u64(G.Timeline.size());
  for (gpd::GlobalPhaseState S : G.Timeline)
    W.u8(static_cast<std::uint8_t>(S));
}

bool StateCodec::decode(ByteReader &R, gpd::CentroidPhaseDetector &G) {
  if (R.u64() != G.Config.HistoryLength ||
      R.boolean() != G.Config.AdaptiveWindow ||
      R.u64() != G.Config.MinHistoryLength ||
      R.u64() != G.Config.MaxHistoryLength || !R.ok()) {
    R.fail();
    return false;
  }
  std::uint64_t MaxCap = G.Config.HistoryLength;
  if (G.Config.AdaptiveWindow && G.Config.MaxHistoryLength > MaxCap)
    MaxCap = G.Config.MaxHistoryLength;
  if (!decode(R, G.History, MaxCap))
    return false;
  const std::uint8_t State = R.u8();
  const std::uint32_t Timer = R.u32();
  const std::uint32_t Quiet = R.u32();
  const bool LastWasChange = R.boolean();
  const std::uint64_t PhaseChanges = R.u64();
  const std::uint64_t Intervals = R.u64();
  const std::uint64_t StableIntervals = R.u64();
  const std::uint64_t Len = R.u64();
  if (!R.ok() || State > 2 || Len > R.remaining()) {
    R.fail();
    return false;
  }
  std::vector<gpd::GlobalPhaseState> Timeline;
  Timeline.reserve(Len);
  for (std::uint64_t I = 0; I < Len; ++I) {
    const std::uint8_t S = R.u8();
    if (S > 2) {
      R.fail();
      return false;
    }
    Timeline.push_back(static_cast<gpd::GlobalPhaseState>(S));
  }
  if (!R.ok())
    return false;
  G.State = static_cast<gpd::GlobalPhaseState>(State);
  G.Timer = Timer;
  G.QuietStableRun = Quiet;
  G.LastWasChange = LastWasChange;
  G.PhaseChanges = PhaseChanges;
  G.Intervals = Intervals;
  G.StableIntervals = StableIntervals;
  G.Timeline = std::move(Timeline);
  return true;
}

//===----------------------------------------------------------------------===//
// AdaptiveController
//===----------------------------------------------------------------------===//

void StateCodec::encode(ByteWriter &W, const sampling::AdaptiveController &C) {
  // Config fingerprint first: every field that shapes decisions. The
  // delta threshold is stored as raw IEEE-754 bits and compared bitwise.
  W.boolean(C.Cfg.Enabled);
  W.u64(C.Cfg.BasePeriodCycles);
  W.u32(C.Cfg.MaxScaleLog2);
  W.u32(C.Cfg.StableIntervalsPerStep);
  W.f64(C.Cfg.UcrSpikeDelta);
  W.u32(C.Level);
  W.u32(C.StableStreak);
  W.f64(C.LastUcr);
  W.boolean(C.HaveLastUcr);
  W.u64(C.Lengthens);
  W.u64(C.Tightens);
  W.u64(C.SamplesSaved);
}

bool StateCodec::decode(ByteReader &R, sampling::AdaptiveController &C) {
  if (R.boolean() != C.Cfg.Enabled || R.u64() != C.Cfg.BasePeriodCycles ||
      R.u32() != C.Cfg.MaxScaleLog2 ||
      R.u32() != C.Cfg.StableIntervalsPerStep ||
      std::bit_cast<std::uint64_t>(R.f64()) !=
          std::bit_cast<std::uint64_t>(C.Cfg.UcrSpikeDelta) ||
      !R.ok()) {
    R.fail();
    return false;
  }
  const std::uint32_t Level = R.u32();
  const std::uint32_t StableStreak = R.u32();
  const double LastUcr = R.f64();
  const bool HaveLastUcr = R.boolean();
  const std::uint64_t Lengthens = R.u64();
  const std::uint64_t Tightens = R.u64();
  const std::uint64_t SamplesSaved = R.u64();
  if (!R.ok() || Level > C.Cfg.MaxScaleLog2 ||
      StableStreak >= C.Cfg.StableIntervalsPerStep) {
    R.fail();
    return false;
  }
  // A disabled controller never mutates state; any nonzero dynamic field
  // under Enabled == false is a desynced payload.
  if (!C.Cfg.Enabled &&
      (Level != 0 || StableStreak != 0 || HaveLastUcr ||
       std::bit_cast<std::uint64_t>(LastUcr) != 0 || Lengthens != 0 ||
       Tightens != 0 || SamplesSaved != 0)) {
    R.fail();
    return false;
  }
  C.Level = Level;
  C.StableStreak = StableStreak;
  C.LastUcr = LastUcr;
  C.HaveLastUcr = HaveLastUcr;
  C.Lengthens = Lengthens;
  C.Tightens = Tightens;
  C.SamplesSaved = SamplesSaved;
  return true;
}

//===----------------------------------------------------------------------===//
// TraceDeployments
//===----------------------------------------------------------------------===//

void StateCodec::encode(ByteWriter &W, const rto::TraceDeployments &T) {
  W.u64(T.Trained.size());
  for (const auto &Profile : T.Trained) {
    W.boolean(Profile.has_value());
    W.u32(Profile.has_value() ? *Profile : 0);
  }
  W.u64(T.HarmStreak.size());
  for (std::uint32_t Streak : T.HarmStreak)
    W.u32(Streak);
  W.u64(T.Patches);
  W.u64(T.Unpatches);
  W.u64(T.FailedPatches);
}

bool StateCodec::decode(ByteReader &R, rto::TraceDeployments &T) {
  const std::uint64_t Loops = R.u64();
  if (!R.ok() || Loops != T.Trained.size()) {
    R.fail();
    return false;
  }
  std::vector<std::optional<sim::ProfileId>> Trained;
  Trained.reserve(Loops);
  for (std::uint64_t I = 0; I < Loops; ++I) {
    const bool Has = R.boolean();
    const std::uint32_t Profile = R.u32();
    if (Has)
      Trained.emplace_back(Profile);
    else
      Trained.emplace_back(std::nullopt);
  }
  const std::uint64_t Streaks = R.u64();
  if (!R.ok() || Streaks != T.HarmStreak.size()) {
    R.fail();
    return false;
  }
  std::vector<std::uint32_t> Harm;
  Harm.reserve(Streaks);
  for (std::uint64_t I = 0; I < Streaks; ++I)
    Harm.push_back(R.u32());
  const std::uint64_t Patches = R.u64();
  const std::uint64_t Unpatches = R.u64();
  const std::uint64_t Failed = R.u64();
  if (!R.ok())
    return false;
  T.Trained = std::move(Trained);
  for (std::uint64_t I = 0; I < Streaks; ++I)
    T.HarmStreak[I] = Harm[I];
  T.Patches = Patches;
  T.Unpatches = Unpatches;
  T.FailedPatches = Failed;
  return true;
}
