//===- persist/Io.h - Crash-injectable durable file I/O --------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thin file-system seam under checkpointing, built so a crash can be
/// *simulated deterministically*: every byte written and every metadata
/// operation (rename, remove, flush) draws from a \ref CrashPoint budget,
/// and when the budget runs out the write is truncated mid-stream and all
/// later I/O fails -- exactly the torn state a power cut at that point
/// would leave on disk. CrashRecoveryTest sweeps seeded budgets through
/// snapshot commits and journal appends and asserts recovery from each
/// torn state; production callers simply pass no CrashPoint.
///
/// All I/O uses <cstdio> with every return value checked (the persist
/// lint rule enforces the checking).
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_PERSIST_IO_H
#define REGMON_PERSIST_IO_H

#include <cstdint>
#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace regmon::persist {

/// A deterministic I/O budget modelling a crash: each byte written costs
/// one unit, each metadata operation costs one unit. Once spent, the
/// process is considered dead and every subsequent operation fails.
class CrashPoint {
public:
  /// \p UnitBudget units until the simulated crash. Use \ref unlimited for
  /// a crash-free accounting run (it records units without ever dying).
  explicit CrashPoint(std::uint64_t UnitBudget)
      : Budget(UnitBudget), Limited(true) {}

  static CrashPoint unlimited() { return CrashPoint(); }

  /// True once the budget is exhausted.
  bool dead() const { return Limited && Used >= Budget; }

  /// Units consumed so far (an unlimited run reports the total cost of the
  /// operation sequence, which seeds the test sweep).
  std::uint64_t used() const { return Used; }

  /// Requests \p Want byte-units; returns how many may still be written
  /// (possibly 0). A short grant models a torn write.
  std::uint64_t grantBytes(std::uint64_t Want) {
    if (!Limited) {
      Used += Want;
      return Want;
    }
    const std::uint64_t Left = Used >= Budget ? 0 : Budget - Used;
    const std::uint64_t Grant = Want < Left ? Want : Left;
    Used += Want;
    return Grant;
  }

  /// Requests one metadata-operation unit; false means the crash landed
  /// before the operation.
  bool grantOp() {
    if (!Limited) {
      ++Used;
      return true;
    }
    const bool Ok = Used < Budget;
    ++Used;
    return Ok;
  }

private:
  CrashPoint() = default;

  std::uint64_t Budget = 0;
  std::uint64_t Used = 0;
  bool Limited = false;
};

/// A buffered file being written (truncate or append), optionally gated by
/// a CrashPoint. After any failure -- real or injected -- the sink stays
/// failed and \ref ok returns false; the bytes that made it out before the
/// failure are on disk, emulating a torn write.
class FileSink {
public:
  /// Opens \p Path for writing ("wb") or appending ("ab").
  FileSink(const std::string &Path, bool Append, CrashPoint *Crash);
  ~FileSink();

  FileSink(const FileSink &) = delete;
  FileSink &operator=(const FileSink &) = delete;

  bool ok() const { return File != nullptr && !Failed; }

  /// Writes \p Data (possibly truncated by the CrashPoint, which fails the
  /// sink). Returns \ref ok.
  bool write(std::span<const std::uint8_t> Data);

  /// Flushes buffered bytes to the OS. Costs one metadata unit.
  bool flush();

  /// Flushes and closes. Returns false if any step failed. Safe to call
  /// once; the destructor closes quietly if the caller did not.
  bool close();

private:
  std::FILE *File = nullptr;
  CrashPoint *Crash = nullptr;
  bool Failed = false;
};

/// Reads an entire file. std::nullopt when the file cannot be opened or a
/// read error occurs (a missing file is not corruption -- callers count
/// the two differently).
std::optional<std::vector<std::uint8_t>> readFileBytes(const std::string &Path);

/// True if \p Path exists (as any file type).
bool fileExists(const std::string &Path);

/// Renames \p From to \p To (atomic within a POSIX filesystem,
/// overwriting \p To). Costs one CrashPoint unit; an injected crash leaves
/// the rename undone.
bool renameFile(const std::string &From, const std::string &To,
                CrashPoint *Crash);

/// Removes \p Path if present. Missing files succeed. Costs one unit.
bool removeFile(const std::string &Path, CrashPoint *Crash);

/// Truncates \p Path to \p NewLength bytes. Costs one unit.
bool truncateFile(const std::string &Path, std::uint64_t NewLength,
                  CrashPoint *Crash);

/// Creates \p Dir (and parents) if missing; true if it exists afterwards.
bool ensureDir(const std::string &Dir);

} // namespace regmon::persist

#endif // REGMON_PERSIST_IO_H
