//===- persist/Checkpoint.h - Atomic snapshot commit + recovery -*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Orchestrates the durable files of one monitor instance inside one
/// directory:
///
///     snapshot.bin        the newest committed snapshot
///     snapshot.prev.bin   the one before it (the fallback rung)
///     snapshot.tmp        in-flight commit scratch (ignored by recovery)
///     journal.wal         write-ahead batch journal
///
/// Commit protocol (each step gated by the optional CrashPoint):
///
///     1. write + flush snapshot.tmp
///     2. rename snapshot.bin     -> snapshot.prev.bin   (atomic)
///     3. rename snapshot.tmp     -> snapshot.bin        (atomic)
///     4. compact journal.wal, dropping records already covered by the
///        *new* snapshot.prev.bin
///
/// The compaction in step 4 -- rather than truncating the journal to empty
/// -- is what makes the fallback rung genuinely usable: the journal always
/// retains every record after the previous snapshot's sequence number, so
/// `snapshot.prev.bin + journal` reconstructs the exact same state as
/// `snapshot.bin + journal`. A crash between any two steps leaves one of:
///
///     tmp torn, bin+prev+journal intact      -> recover from bin
///     bin missing, prev = last good          -> recover from prev + journal
///     bin new, journal not yet compacted     -> recover from bin (old
///                                               records skipped by seq)
///
/// Recovery ladder: snapshot.bin -> snapshot.prev.bin -> cold start; the
/// journal is replayed on whatever rung loaded (or onto the cold state).
/// Every rejection is counted with its reason in \ref RecoveryCounters --
/// corruption degrades, it never crashes.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_PERSIST_CHECKPOINT_H
#define REGMON_PERSIST_CHECKPOINT_H

#include "obs/Instruments.h"
#include "persist/Journal.h"
#include "persist/Snapshot.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace regmon::persist {

/// Counters describing every recovery decision ever taken by one manager.
/// The fuzz tests assert on these: a corrupted file must increment the
/// matching reason, never crash.
struct RecoveryCounters {
  std::uint64_t SnapshotsCommitted = 0;
  std::uint64_t CommitFailures = 0;
  /// Rungs tried (one per readable file inspected).
  std::uint64_t LoadAttempts = 0;
  /// Rungs rejected: container damage or application-level decode failure.
  std::uint64_t CorruptSnapshots = 0;
  /// Recoveries that had to use snapshot.prev.bin.
  std::uint64_t FallbacksUsed = 0;
  /// Recoveries that found no usable snapshot at all.
  std::uint64_t ColdStarts = 0;
  std::uint64_t JournalRecordsReplayed = 0;
  std::uint64_t JournalRecordsSkipped = 0;
  std::uint64_t JournalTornTails = 0;
  /// Journal files truncated back to their valid prefix.
  std::uint64_t JournalRepairs = 0;
  /// Container error of the most recently rejected snapshot rung.
  SnapshotError LastError = SnapshotError::None;
};

/// Manages the snapshot pair and journal of one directory. Not
/// thread-safe: the owner serializes access (MonitorService holds its own
/// journal lock; checkpoint/restore happen while the service is stopped).
class CheckpointManager {
public:
  /// Creates \p Dir if needed. \ref valid reports whether it is usable.
  explicit CheckpointManager(std::string Dir);

  bool valid() const { return Valid; }
  const std::string &dir() const { return Root; }
  std::string snapshotPath() const;
  std::string prevSnapshotPath() const;
  std::string tmpSnapshotPath() const;
  std::string journalPath() const;

  /// Installs the simulated-crash budget consulted by every subsequent
  /// write, rename, and truncate (nullptr disarms). Test-only seam.
  void armCrash(CrashPoint *Crash) { Injected = Crash; }

  /// Attaches observability instruments (obs layer). \p O may be null to
  /// detach; otherwise it must outlive the manager. Counters mirror
  /// \ref RecoveryCounters; events use journal sequence numbers as their
  /// logical clock.
  void attachObservability(const obs::PersistInstruments *O) { Obs = O; }

  /// Runs the commit protocol on \p Encoded (an \ref encodeSnapshot
  /// container). \p CompactThroughSeq is the journal sequence number
  /// covered by the snapshot being rotated to the fallback rung; records
  /// at or below it are dropped during compaction. False means the commit
  /// did not complete -- the directory is in one of the documented
  /// crash-window states and recovery handles it.
  bool commitSnapshot(std::span<const std::uint8_t> Encoded,
                      std::uint64_t CompactThroughSeq);

  /// The recovery rungs, in ladder order.
  enum class Rung : std::uint8_t { Current, Previous };

  /// Loads and container-validates one rung. std::nullopt (with counters
  /// updated) when the file is missing or damaged.
  std::optional<std::vector<SnapshotSection>> loadRung(Rung R);

  /// The owner's application-level decode of a loaded rung failed; counts
  /// it as a corrupt snapshot so the reason is never silent.
  void noteDecodeFailure();
  /// The ladder ran out of rungs.
  void noteColdStart();
  /// The Previous rung ended up being the one recovered from.
  void noteFallbackUsed();

  /// Appends one record to the journal, opening the writer on first use.
  /// False means the record is not durable and journaling is dead.
  bool appendJournal(std::uint64_t Seq, std::span<const std::uint8_t> Payload);

  /// Replays the journal through \p Replay, skipping records at or below
  /// \p SkipThroughSeq, then repairs any torn tail by truncating the file
  /// to its valid prefix so future appends extend a well-formed journal.
  JournalResult
  replayAndRepair(std::uint64_t SkipThroughSeq,
                  const std::function<bool(std::uint64_t,
                                           std::span<const std::uint8_t>)>
                      &Replay);

  RecoveryCounters &counters() { return Counters; }
  const RecoveryCounters &counters() const { return Counters; }

private:
  /// Rewrites the journal keeping only records with seq > \p ThroughSeq.
  bool compactJournal(std::uint64_t ThroughSeq);

  /// Counts a failed commit in counters, metric, and event stream.
  void noteCommitFailure(std::uint64_t CompactThroughSeq);

  std::string Root;
  bool Valid = false;
  CrashPoint *Injected = nullptr;
  JournalWriter Writer;
  RecoveryCounters Counters;
  const obs::PersistInstruments *Obs = nullptr;
};

} // namespace regmon::persist

#endif // REGMON_PERSIST_CHECKPOINT_H
