//===- persist/Snapshot.h - Versioned checksummed snapshots ----*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The snapshot container: a versioned sequence of opaque sections, each
/// carrying its own CRC-32, the whole file sealed by a trailing CRC-32
/// over every preceding byte. Layout (all integers little-endian):
///
///     u32 magic 'RGMN'   u32 version   u32 sectionCount
///     sectionCount x [ u32 id | u64 payloadLen | u32 payloadCrc | bytes ]
///     u32 fileCrc  (over everything before it)
///
/// The file CRC guarantees that *every* single-bit flip and *every*
/// truncation is rejected deterministically; the per-section CRCs localize
/// the damage for diagnostics and defend the (version, count, length)
/// plumbing between them. Decoding never trusts a length field without
/// first checking it against the bytes actually present, so a hostile file
/// cannot cause out-of-bounds reads or unbounded allocation -- only a
/// clean \ref SnapshotError.
///
/// Versioning: the version field names the schema of the section payloads.
/// Loading applies the \ref SnapshotMigration chain to walk old schemas
/// forward, ending with the current version's normalization hook (today an
/// identity pass -- the seam where a v1.x fixup will land).
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_PERSIST_SNAPSHOT_H
#define REGMON_PERSIST_SNAPSHOT_H

#include <cstdint>
#include <span>
#include <vector>

namespace regmon::persist {

/// 'RGMN' in little-endian byte order.
inline constexpr std::uint32_t SnapshotMagic = 0x4E4D4752U;
/// Current schema version of section payloads.
inline constexpr std::uint32_t SnapshotVersion = 1;
/// Upper bound on sections per snapshot; a corrupt count field must not
/// buy a long parse loop.
inline constexpr std::uint32_t SnapshotMaxSections = 1U << 20;

/// One opaque section: the container does not interpret payloads.
struct SnapshotSection {
  std::uint32_t Id = 0;
  std::vector<std::uint8_t> Payload;
};

/// Why a snapshot was rejected. Every value maps to "fall to the next
/// recovery rung", never to UB or a partial load.
enum class SnapshotError : std::uint8_t {
  None,
  FileMissing,        ///< No file at the path (not corruption).
  TooShort,           ///< Shorter than the fixed header + footer.
  BadMagic,           ///< First four bytes are not 'RGMN'.
  UnsupportedVersion, ///< Schema newer than this build, or no migration path.
  MigrationFailed,    ///< A migration hook rejected the sections.
  SectionLimit,       ///< Section count exceeds SnapshotMaxSections.
  SectionOverrun,     ///< A section header or payload ran past the file.
  SectionCrcMismatch, ///< A section's payload failed its CRC.
  TrailingGarbage,    ///< Bytes between the last section and the footer.
  FileCrcMismatch,    ///< The whole-file CRC failed.
};

/// Returns a short identifier for reports and counters.
const char *toString(SnapshotError E);

/// Rewrites sections in place from schema \p From to schema \p To. A
/// From == To entry is the current version's normalization hook, applied
/// once per load.
struct SnapshotMigration {
  std::uint32_t From = 0;
  std::uint32_t To = 0;
  bool (*Apply)(std::vector<SnapshotSection> &Sections) = nullptr;
};

/// The built-in migration chain (currently just the v1 -> v1 identity
/// normalization hook).
std::span<const SnapshotMigration> builtinMigrations();

/// Encodes \p Sections into the container format described above.
/// \p Version is exposed for format tests; production callers use the
/// default.
std::vector<std::uint8_t>
encodeSnapshot(std::span<const SnapshotSection> Sections,
               std::uint32_t Version = SnapshotVersion);

/// Decodes \p Data into \p Sections, walking \p Migrations as needed.
/// On failure \p Sections is cleared and the reason is returned; \ref
/// SnapshotError::None means success.
SnapshotError
decodeSnapshot(std::span<const std::uint8_t> Data,
               std::vector<SnapshotSection> &Sections,
               std::span<const SnapshotMigration> Migrations =
                   builtinMigrations());

} // namespace regmon::persist

#endif // REGMON_PERSIST_SNAPSHOT_H
