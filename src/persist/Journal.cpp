//===- persist/Journal.cpp - Write-ahead batch journal --------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "persist/Journal.h"

#include "persist/Bytes.h"
#include "persist/Crc32.h"

using namespace regmon::persist;

std::uint32_t
regmon::persist::journalRecordCrc(std::uint64_t Seq,
                                  std::span<const std::uint8_t> Payload) {
  ByteWriter Head;
  Head.u64(Seq);
  Head.u32(static_cast<std::uint32_t>(Payload.size()));
  return crc32(Payload, crc32(Head.data()));
}

JournalWriter::~JournalWriter() { close(); }

bool JournalWriter::open(const std::string &Path, CrashPoint *Crash) {
  close();
  // Decide header-needed before opening in append mode (which creates the
  // file). A zero-length file also needs a header -- it appears when a
  // crash landed before the header bytes made it out.
  bool NeedHeader = true;
  if (auto Existing = readFileBytes(Path))
    NeedHeader = Existing->empty();
  Sink = std::make_unique<FileSink>(Path, /*Append=*/true, Crash);
  if (!Sink->ok())
    return false;
  if (NeedHeader) {
    ByteWriter W;
    W.u32(JournalMagic);
    W.u32(JournalVersion);
    if (!Sink->write(W.data()) || !Sink->flush())
      return false;
  }
  return true;
}

bool JournalWriter::ok() const { return Sink != nullptr && Sink->ok(); }

bool JournalWriter::append(std::uint64_t Seq,
                           std::span<const std::uint8_t> Payload) {
  if (!ok())
    return false;
  ByteWriter W;
  W.u64(Seq);
  W.u32(static_cast<std::uint32_t>(Payload.size()));
  W.u32(journalRecordCrc(Seq, Payload));
  W.bytes(Payload);
  // One write + one flush: the record is either acknowledged durable or
  // the writer is dead with at most a torn tail on disk.
  return Sink->write(W.data()) && Sink->flush();
}

void JournalWriter::close() { Sink.reset(); }

JournalResult regmon::persist::replayJournal(
    const std::string &Path, std::uint64_t SkipThroughSeq,
    const std::function<bool(std::uint64_t, std::span<const std::uint8_t>)>
        &Replay) {
  JournalResult Res;
  const auto Data = readFileBytes(Path);
  if (!Data) {
    Res.Missing = true;
    return Res;
  }
  ByteReader R(*Data);
  if (Data->size() < 8 || R.u32() != JournalMagic ||
      R.u32() != JournalVersion) {
    Res.HeaderCorrupt = true;
    return Res;
  }
  Res.ValidBytes = 8;
  std::uint64_t PrevSeq = 0;
  while (R.remaining() > 0) {
    if (R.remaining() < 16)
      break; // torn record header
    const std::uint64_t Seq = R.u64();
    const std::uint32_t Len = R.u32();
    const std::uint32_t Crc = R.u32();
    if (Len > R.remaining())
      break; // torn payload
    std::vector<std::uint8_t> Payload(Len);
    if (!R.bytes(Payload))
      break;
    if (journalRecordCrc(Seq, Payload) != Crc)
      break; // bit corruption: nothing after this byte is trusted
    if (Seq <= PrevSeq)
      break; // sequence must strictly increase (writers start at 1)
    if (Seq > SkipThroughSeq) {
      if (!Replay(Seq, Payload)) {
        Res.PayloadRejected = true;
        Res.TornTail = true;
        return Res;
      }
      ++Res.RecordsReplayed;
    } else {
      ++Res.RecordsSkipped;
    }
    PrevSeq = Seq;
    Res.LastSeq = Seq;
    Res.ValidBytes = Data->size() - R.remaining();
  }
  // Compare against ValidBytes, not the reader position: a torn record
  // header may have been fully consumed before the scan broke.
  Res.TornTail = Data->size() > Res.ValidBytes;
  return Res;
}
