//===- persist/Snapshot.cpp - Versioned checksummed snapshots -------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "persist/Snapshot.h"

#include "persist/Bytes.h"
#include "persist/Crc32.h"

using namespace regmon::persist;

const char *regmon::persist::toString(SnapshotError E) {
  switch (E) {
  case SnapshotError::None:
    return "none";
  case SnapshotError::FileMissing:
    return "file-missing";
  case SnapshotError::TooShort:
    return "too-short";
  case SnapshotError::BadMagic:
    return "bad-magic";
  case SnapshotError::UnsupportedVersion:
    return "unsupported-version";
  case SnapshotError::MigrationFailed:
    return "migration-failed";
  case SnapshotError::SectionLimit:
    return "section-limit";
  case SnapshotError::SectionOverrun:
    return "section-overrun";
  case SnapshotError::SectionCrcMismatch:
    return "section-crc-mismatch";
  case SnapshotError::TrailingGarbage:
    return "trailing-garbage";
  case SnapshotError::FileCrcMismatch:
    return "file-crc-mismatch";
  }
  return "?";
}

namespace {

bool identityNormalize(std::vector<SnapshotSection> &) { return true; }

constexpr SnapshotMigration BuiltinMigrations[] = {
    // v1 -> v1: the current version's normalization hook. Identity today;
    // a future v1.x field fixup slots in here without touching the loader.
    {1, 1, &identityNormalize},
};

} // namespace

std::span<const SnapshotMigration> regmon::persist::builtinMigrations() {
  return BuiltinMigrations;
}

std::vector<std::uint8_t>
regmon::persist::encodeSnapshot(std::span<const SnapshotSection> Sections,
                                std::uint32_t Version) {
  ByteWriter W;
  W.u32(SnapshotMagic);
  W.u32(Version);
  W.u32(static_cast<std::uint32_t>(Sections.size()));
  for (const SnapshotSection &S : Sections) {
    W.u32(S.Id);
    W.u64(S.Payload.size());
    W.u32(crc32(S.Payload));
    W.bytes(S.Payload);
  }
  W.u32(crc32(W.data()));
  return W.take();
}

SnapshotError
regmon::persist::decodeSnapshot(std::span<const std::uint8_t> Data,
                                std::vector<SnapshotSection> &Sections,
                                std::span<const SnapshotMigration> Migrations) {
  Sections.clear();
  // Fixed header (magic + version + count) plus footer CRC.
  if (Data.size() < 16)
    return SnapshotError::TooShort;

  ByteReader R(Data);
  if (R.u32() != SnapshotMagic)
    return SnapshotError::BadMagic;
  const std::uint32_t Version = R.u32();
  const std::uint32_t Count = R.u32();
  if (Count > SnapshotMaxSections)
    return SnapshotError::SectionLimit;

  std::vector<SnapshotSection> Parsed;
  Parsed.reserve(Count);
  for (std::uint32_t I = 0; I < Count; ++I) {
    // Each section needs its 16-byte header plus the 4-byte file footer to
    // still fit.
    if (R.remaining() < 20)
      return SnapshotError::SectionOverrun;
    SnapshotSection S;
    S.Id = R.u32();
    const std::uint64_t Len = R.u64();
    const std::uint32_t Crc = R.u32();
    if (Len > R.remaining() - 4)
      return SnapshotError::SectionOverrun;
    S.Payload.resize(Len);
    if (!R.bytes(S.Payload))
      return SnapshotError::SectionOverrun;
    if (crc32(S.Payload) != Crc)
      return SnapshotError::SectionCrcMismatch;
    Parsed.push_back(std::move(S));
  }
  if (R.remaining() != 4)
    return SnapshotError::TrailingGarbage;
  const std::uint32_t FileCrc = R.u32();
  if (!R.ok() || crc32(Data.subspan(0, Data.size() - 4)) != FileCrc)
    return SnapshotError::FileCrcMismatch;

  // Only now -- with every byte vouched for -- interpret the version.
  std::uint32_t V = Version;
  std::uint64_t Steps = 0;
  while (V != SnapshotVersion) {
    const SnapshotMigration *Found = nullptr;
    for (const SnapshotMigration &M : Migrations)
      if (M.From == V && M.To != V) {
        Found = &M;
        break;
      }
    if (Found == nullptr || ++Steps > Migrations.size())
      return SnapshotError::UnsupportedVersion;
    if (!Found->Apply(Parsed))
      return SnapshotError::MigrationFailed;
    V = Found->To;
  }
  for (const SnapshotMigration &M : Migrations)
    if (M.From == V && M.To == V && !M.Apply(Parsed))
      return SnapshotError::MigrationFailed;

  Sections = std::move(Parsed);
  return SnapshotError::None;
}
