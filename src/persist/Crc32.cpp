//===- persist/Crc32.cpp - CRC-32 checksums for durable state -------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "persist/Crc32.h"

#include <array>

using namespace regmon::persist;

namespace {

/// Slicing-by-8 lookup tables for the reflected polynomial, computed
/// once. Tables[0] is the classic byte-at-a-time table; Tables[K][B] is
/// the CRC of byte B followed by K zero bytes, which lets the hot loop
/// fold 8 input bytes per iteration while producing bit-identical
/// results to the byte-at-a-time form (the flight recorder checksums
/// every recorded sample batch, so this runs per captured byte).
/// Function-local static: built deterministically from constants, no
/// run-to-run variation.
using CrcTables = std::array<std::array<std::uint32_t, 256>, 8>;

const CrcTables &crcTables() {
  static const CrcTables Tables = [] {
    CrcTables T{};
    for (std::uint32_t N = 0; N < 256; ++N) {
      std::uint32_t C = N;
      for (std::uint32_t K = 0; K < 8; ++K)
        C = (C & 1U) ? (0xEDB88320U ^ (C >> 1)) : (C >> 1);
      T[0][N] = C;
    }
    for (std::uint32_t N = 0; N < 256; ++N)
      for (std::uint32_t K = 1; K < 8; ++K)
        T[K][N] = T[0][T[K - 1][N] & 0xFFU] ^ (T[K - 1][N] >> 8);
    return T;
  }();
  return Tables;
}

} // namespace

std::uint32_t regmon::persist::crc32(std::span<const std::uint8_t> Data,
                                     std::uint32_t Seed) {
  const CrcTables &T = crcTables();
  std::uint32_t C = Seed ^ 0xFFFFFFFFU;
  const std::uint8_t *P = Data.data();
  std::uint64_t N = Data.size();
  while (N >= 8) {
    // Fold the running CRC through the first 4 bytes, slice the next 4
    // independently -- byte loads only, so endianness-neutral.
    const std::uint32_t Lo = C ^ (static_cast<std::uint32_t>(P[0]) |
                                  static_cast<std::uint32_t>(P[1]) << 8 |
                                  static_cast<std::uint32_t>(P[2]) << 16 |
                                  static_cast<std::uint32_t>(P[3]) << 24);
    C = T[7][Lo & 0xFFU] ^ T[6][(Lo >> 8) & 0xFFU] ^
        T[5][(Lo >> 16) & 0xFFU] ^ T[4][Lo >> 24] ^ T[3][P[4]] ^
        T[2][P[5]] ^ T[1][P[6]] ^ T[0][P[7]];
    P += 8;
    N -= 8;
  }
  for (; N > 0; ++P, --N)
    C = T[0][(C ^ *P) & 0xFFU] ^ (C >> 8);
  return C ^ 0xFFFFFFFFU;
}
