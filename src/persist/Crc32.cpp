//===- persist/Crc32.cpp - CRC-32 checksums for durable state -------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "persist/Crc32.h"

#include <array>

using namespace regmon::persist;

namespace {

/// The 256-entry lookup table for the reflected polynomial, computed once.
/// Function-local static: built deterministically from constants, no
/// run-to-run variation.
const std::array<std::uint32_t, 256> &crcTable() {
  static const std::array<std::uint32_t, 256> Table = [] {
    std::array<std::uint32_t, 256> T{};
    for (std::uint32_t N = 0; N < 256; ++N) {
      std::uint32_t C = N;
      for (std::uint32_t K = 0; K < 8; ++K)
        C = (C & 1U) ? (0xEDB88320U ^ (C >> 1)) : (C >> 1);
      T[N] = C;
    }
    return T;
  }();
  return Table;
}

} // namespace

std::uint32_t regmon::persist::crc32(std::span<const std::uint8_t> Data,
                                     std::uint32_t Seed) {
  const auto &Table = crcTable();
  std::uint32_t C = Seed ^ 0xFFFFFFFFU;
  for (std::uint8_t B : Data)
    C = Table[(C ^ B) & 0xFFU] ^ (C >> 8);
  return C ^ 0xFFFFFFFFU;
}
