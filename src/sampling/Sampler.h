//===- sampling/Sampler.h - HPM sampling front-end --------------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hardware-performance-monitor sampling substrate. Real prototype
/// systems (ADORE [12][13]) program a cycle counter to overflow every N
/// cycles; the interrupt handler appends the interrupted PC to a user
/// buffer, and the dynamic optimizer is woken on *buffer overflow* with one
/// interval's worth of samples. This class reproduces that interface over
/// the simulated execution engine: a fixed sampling period in
/// cycles/interrupt and a fixed buffer of 2032 samples (the size used in
/// the paper's Fig. 2).
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_SAMPLING_SAMPLER_H
#define REGMON_SAMPLING_SAMPLER_H

#include "obs/Instruments.h"
#include "sampling/AdaptiveController.h"
#include "sim/Engine.h"
#include "support/Types.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace regmon::sampling {

/// Sampling parameters. The paper sweeps PeriodCycles over
/// 45K/450K/900K (Figs. 3/4) and 100K/800K/1.5M (Fig. 17).
/// Zero values are invalid; the sampler clamps them to 1 in every build
/// (a zero period would spin advanceAndSample forever) and reports the
/// clamp through its instruments.
struct SamplingConfig {
  /// Cycles between sampling interrupts.
  Cycles PeriodCycles = 45'000;
  /// User-buffer capacity; one "interval" is one full buffer.
  std::size_t BufferSize = 2032;
};

/// Drives an engine with periodic sampling interrupts and delivers full
/// buffers to a handler.
class Sampler {
public:
  /// Called once per buffer overflow with the interval's samples, in
  /// arrival order.
  using OverflowHandler = std::function<void(std::span<const Sample>)>;

  /// Creates a sampler over \p Eng (which must outlive the sampler).
  Sampler(sim::Engine &Eng, SamplingConfig Config);

  /// Runs the program to completion, invoking \p Handler on every buffer
  /// overflow. A final partial buffer (program ended mid-interval) is
  /// discarded, as in the real system where teardown races the optimizer
  /// thread. Returns the number of complete intervals delivered.
  std::size_t run(const OverflowHandler &Handler);

  /// Collects exactly one full buffer into \p Buffer. Returns false (with
  /// \p Buffer holding any partial data) once the program ends.
  bool fillBuffer(std::vector<Sample> &Buffer);

  /// Records up to \p MaxIntervals complete intervals (all of them by
  /// default), one vector per interval, discarding a trailing partial
  /// buffer like \ref run. A pre-recorded stream can be replayed through
  /// many detector configurations -- or submitted as SampleBatches to the
  /// multi-stream monitoring service -- on identical inputs.
  std::vector<std::vector<Sample>>
  collectIntervals(std::size_t MaxIntervals = SIZE_MAX);

  /// Returns the number of complete intervals delivered so far.
  std::size_t intervals() const { return Intervals; }

  /// Returns the sampling configuration (post-clamping).
  const SamplingConfig &config() const { return Config; }

  /// True when construction had to clamp an invalid (zero) config field.
  bool configClamped() const { return ConfigClamped; }

  /// Ceiling on the dynamic period scale exponent.
  static constexpr std::uint32_t MaxPeriodScaleLog2 =
      AdaptiveController::MaxSupportedScaleLog2;

  /// Sets the dynamic period multiplier to 2^Log2 (the adaptive
  /// controller's recommendation), clamping to \ref MaxPeriodScaleLog2.
  /// Takes effect from the next sampling interrupt. Returns the applied
  /// exponent.
  std::uint32_t setPeriodScaleLog2(std::uint32_t Log2);

  /// Current dynamic period scale exponent (0 = configured base period).
  std::uint32_t periodScaleLog2() const { return ScaleLog2; }

  /// Effective period: PeriodCycles << scale, saturating.
  Cycles effectivePeriodCycles() const {
    return scaledPeriod(Config.PeriodCycles, ScaleLog2);
  }

  /// Wires metric/tracer sinks (may be null to detach). Reports any
  /// construction-time config clamp to the sinks on attach.
  void attachObservability(const obs::SamplerInstruments *O);

private:
  sim::Engine &Eng;
  SamplingConfig Config;
  const obs::SamplerInstruments *Obs = nullptr;
  std::size_t Intervals = 0;
  std::uint32_t ScaleLog2 = 0;
  bool ConfigClamped = false;
};

} // namespace regmon::sampling

#endif // REGMON_SAMPLING_SAMPLER_H
