//===- sampling/Sampler.cpp - HPM sampling front-end ----------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sampling/Sampler.h"

using namespace regmon;
using namespace regmon::sampling;

Sampler::Sampler(sim::Engine &E, SamplingConfig Cfg) : Eng(E), Config(Cfg) {
  // Enforced in every build, not just asserted: a zero period would make
  // advanceAndSample a no-op and fillBuffer an infinite loop. The clamp
  // is reported through the instruments once they are attached.
  if (Config.PeriodCycles == 0) {
    Config.PeriodCycles = 1;
    ConfigClamped = true;
  }
  if (Config.BufferSize == 0) {
    Config.BufferSize = 1;
    ConfigClamped = true;
  }
}

void Sampler::attachObservability(const obs::SamplerInstruments *O) {
  Obs = O;
  if (!Obs)
    return;
  if (ConfigClamped) {
    obs::addTo(Obs->ConfigClamps);
    obs::recordEvent(Obs->Tracer, obs::EventKind::SamplingConfigClamped,
                     Obs->Stream, 0, Intervals,
                     static_cast<double>(Config.PeriodCycles));
  }
  obs::setGauge(Obs->PeriodCurrent,
                static_cast<double>(effectivePeriodCycles()));
}

std::uint32_t Sampler::setPeriodScaleLog2(std::uint32_t Log2) {
  if (Log2 > MaxPeriodScaleLog2) {
    Log2 = MaxPeriodScaleLog2;
    if (Obs)
      obs::addTo(Obs->ScaleClamps);
  }
  if (Log2 != ScaleLog2 && Obs) {
    obs::addTo(Obs->ScaleChanges);
    obs::setGauge(Obs->PeriodCurrent,
                  static_cast<double>(scaledPeriod(Config.PeriodCycles, Log2)));
  }
  ScaleLog2 = Log2;
  return ScaleLog2;
}

bool Sampler::fillBuffer(std::vector<Sample> &Buffer) {
  Buffer.clear();
  Buffer.reserve(Config.BufferSize);
  const Cycles Period = effectivePeriodCycles();
  while (Buffer.size() < Config.BufferSize) {
    std::optional<Sample> S = Eng.advanceAndSample(Period);
    if (!S)
      return false;
    Buffer.push_back(*S);
  }
  ++Intervals;
  return true;
}

std::vector<std::vector<Sample>>
Sampler::collectIntervals(std::size_t MaxIntervals) {
  std::vector<std::vector<Sample>> Out;
  std::vector<Sample> Buffer;
  while (Out.size() < MaxIntervals && fillBuffer(Buffer))
    Out.push_back(Buffer);
  return Out;
}

std::size_t Sampler::run(const OverflowHandler &Handler) {
  std::vector<Sample> Buffer;
  while (fillBuffer(Buffer))
    Handler(Buffer);
  return Intervals;
}
