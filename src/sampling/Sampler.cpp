//===- sampling/Sampler.cpp - HPM sampling front-end ----------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sampling/Sampler.h"

#include <cassert>

using namespace regmon;
using namespace regmon::sampling;

Sampler::Sampler(sim::Engine &E, SamplingConfig Cfg) : Eng(E), Config(Cfg) {
  assert(Config.PeriodCycles > 0 && "sampling period must be positive");
  assert(Config.BufferSize > 0 && "buffer must hold at least one sample");
}

bool Sampler::fillBuffer(std::vector<Sample> &Buffer) {
  Buffer.clear();
  Buffer.reserve(Config.BufferSize);
  while (Buffer.size() < Config.BufferSize) {
    std::optional<Sample> S = Eng.advanceAndSample(Config.PeriodCycles);
    if (!S)
      return false;
    Buffer.push_back(*S);
  }
  ++Intervals;
  return true;
}

std::vector<std::vector<Sample>>
Sampler::collectIntervals(std::size_t MaxIntervals) {
  std::vector<std::vector<Sample>> Out;
  std::vector<Sample> Buffer;
  while (Out.size() < MaxIntervals && fillBuffer(Buffer))
    Out.push_back(Buffer);
  return Out;
}

std::size_t Sampler::run(const OverflowHandler &Handler) {
  std::vector<Sample> Buffer;
  while (fillBuffer(Buffer))
    Handler(Buffer);
  return Intervals;
}
