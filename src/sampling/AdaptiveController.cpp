//===- sampling/AdaptiveController.cpp - Per-stream period control --------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sampling/AdaptiveController.h"

using namespace regmon;
using namespace regmon::sampling;

AdaptiveController::AdaptiveController(AdaptiveConfig C) : Cfg(C) {
  if (Cfg.BasePeriodCycles == 0)
    Cfg.BasePeriodCycles = 1;
  if (Cfg.MaxScaleLog2 > MaxSupportedScaleLog2)
    Cfg.MaxScaleLog2 = MaxSupportedScaleLog2;
  if (Cfg.StableIntervalsPerStep == 0)
    Cfg.StableIntervalsPerStep = 1;
  // NaN fails both comparisons below, so it normalizes through the first.
  if (!(Cfg.UcrSpikeDelta >= 0.0))
    Cfg.UcrSpikeDelta = 0.0;
  else if (Cfg.UcrSpikeDelta > 1.0)
    Cfg.UcrSpikeDelta = 1.0;
}

REGMON_PURE AdaptiveDecision
AdaptiveController::observe(const StreamFeedback &F) {
  if (!Cfg.Enabled)
    return AdaptiveDecision::Hold;

  const bool UcrSpike =
      HaveLastUcr && F.UcrFraction - LastUcr >= Cfg.UcrSpikeDelta;
  LastUcr = F.UcrFraction;
  HaveLastUcr = true;

  if (!F.Healthy || F.PhaseChanged || UcrSpike) {
    StableStreak = 0;
    if (Level == 0)
      return AdaptiveDecision::Hold;
    Level = 0;
    ++Tightens;
    return AdaptiveDecision::Tighten;
  }

  if (!F.AllRegionsStable) {
    StableStreak = 0;
    return AdaptiveDecision::Hold;
  }

  if (Level >= Cfg.MaxScaleLog2)
    return AdaptiveDecision::Hold;

  if (++StableStreak < Cfg.StableIntervalsPerStep)
    return AdaptiveDecision::Hold;

  StableStreak = 0;
  ++Level;
  ++Lengthens;
  return AdaptiveDecision::Lengthen;
}

void AdaptiveController::noteSamples(std::uint64_t Count) {
  if (!Cfg.Enabled || Level == 0)
    return;
  SamplesSaved += Count * ((std::uint64_t{1} << Level) - 1);
}

void AdaptiveController::reset() {
  Level = 0;
  StableStreak = 0;
  LastUcr = 0.0;
  HaveLastUcr = false;
  Lengthens = 0;
  Tightens = 0;
  SamplesSaved = 0;
}
