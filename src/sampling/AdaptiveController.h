//===- sampling/AdaptiveController.h - Per-stream period control *- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-stream adaptive sampling controller (DESIGN.md §16). The
/// paper's §2.3 sensitivity results show LPD phase-change counts are
/// robust to the sampling period while centroid GPD's are not; that
/// asymmetry is the license to sample coarsely wherever local phases have
/// been stable for a while -- the two-phase stratified-sampling idea
/// (Ekman): a cheap coarse pass everywhere, dense sampling only in strata
/// that still matter.
///
/// The controller is a small ratchet over period *scales*: the effective
/// period is BasePeriodCycles << Level. Sustained all-regions-stable
/// intervals step Level up one notch at a time; any instability signal --
/// an LPD phase change, a UCR spike (sudden rise in unmonitored-code
/// fraction, i.e. a working-set shift the monitor has not yet covered), or
/// health-state degradation -- snaps Level back to zero so the dense base
/// rate is restored in one interval, not log2(scale) of them.
///
/// Purity contract: \ref observe is REGMON_PURE. Every decision is a
/// function of the controller's own encoded state plus the explicit
/// \ref StreamFeedback for one interval -- no clocks, no randomness, no
/// global reads -- so replaying the same admitted batch sequence replays
/// the same period schedule bit-for-bit (the lint graph pass enforces
/// this transitively).
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_SAMPLING_ADAPTIVECONTROLLER_H
#define REGMON_SAMPLING_ADAPTIVECONTROLLER_H

#include "support/Contracts.h"
#include "support/Types.h"

#include <cstdint>

namespace regmon::persist {
class StateCodec;
} // namespace regmon::persist

namespace regmon::sampling {

/// Returns \p Base scaled by 2^ScaleLog2 with saturation: a shift that
/// would overflow 64 bits pins to UINT64_MAX instead of wrapping (a
/// wrapped period of 0 would spin the sampler forever; see Sampler.cpp).
REGMON_PURE constexpr Cycles scaledPeriod(Cycles Base,
                                          std::uint32_t ScaleLog2) {
  if (Base == 0)
    Base = 1;
  if (ScaleLog2 >= 64 || Base > (UINT64_MAX >> ScaleLog2))
    return UINT64_MAX;
  return Base << ScaleLog2;
}

/// Controller parameters. Defaults are the bench_adaptive operating
/// point: up to 16x the base period, stepping up after every 2 fully
/// stable intervals.
struct AdaptiveConfig {
  /// Master switch. Disabled controllers hold Level 0 forever and mutate
  /// no state, so the adaptive-off path is bit-identical to a build that
  /// never had a controller.
  bool Enabled = false;
  /// The dense base sampling period the scale multiplies.
  Cycles BasePeriodCycles = 45'000;
  /// Maximum period scale: effective period caps at Base << MaxScaleLog2.
  std::uint32_t MaxScaleLog2 = 4;
  /// Consecutive all-regions-stable intervals required per +1 scale step.
  std::uint32_t StableIntervalsPerStep = 2;
  /// Interval-over-interval UCR rise treated as a spike (working-set
  /// shift): tighten when UcrFraction - previous >= this delta.
  double UcrSpikeDelta = 0.10;
};

/// One interval's stream-local evidence, extracted by the caller from the
/// monitor and the stream's admission-time health. Everything here is
/// logical state: no field depends on wall time.
struct StreamFeedback {
  /// Any LPD stable-boundary phase change this interval.
  bool PhaseChanged = false;
  /// The monitor tracks at least one region and every active region's
  /// detector sits in the Stable state.
  bool AllRegionsStable = false;
  /// UCR fraction of this interval's samples.
  double UcrFraction = 0.0;
  /// Stream health at batch admission was Healthy (not Degraded /
  /// Recovering; quarantined batches are never processed at all).
  bool Healthy = true;
};

/// What \ref AdaptiveController::observe decided for the next interval.
enum class AdaptiveDecision : std::uint8_t {
  Hold = 0,     ///< keep the current scale
  Lengthen = 1, ///< stepped the scale up one notch
  Tighten = 2,  ///< snapped back to the base period
};

/// Per-stream adaptive period controller. Plain value type: copyable,
/// no synchronization (confinement to one service worker is the caller's
/// job, as for RegionMonitor itself).
class AdaptiveController {
public:
  /// Builds a controller, normalizing out-of-range parameters: scale cap
  /// clamps to \ref MaxSupportedScaleLog2, a zero step requirement
  /// becomes 1, a zero base period becomes 1 cycle, and a negative/NaN
  /// spike delta becomes 0 (every rise is a spike).
  explicit AdaptiveController(AdaptiveConfig Cfg = {});

  /// Hard ceiling on MaxScaleLog2 (2^32x is already absurdly coarse; the
  /// bound keeps scaledPeriod far from saturation for realistic bases).
  static constexpr std::uint32_t MaxSupportedScaleLog2 = 32;

  /// Consumes one interval of feedback and advances the machine. Pure:
  /// the decision depends only on *this and \p F.
  REGMON_PURE AdaptiveDecision observe(const StreamFeedback &F);

  /// Credits \p Count retained samples collected at the *current* scale
  /// toward the samples-saved account: each sample kept at scale 2^L
  /// stands in for 2^L base-rate samples, saving 2^L - 1. Call before
  /// \ref observe for the interval the samples belong to.
  void noteSamples(std::uint64_t Count);

  /// Current period scale exponent (0 = base rate).
  std::uint32_t scaleLog2() const { return Level; }

  /// Current recommended period in cycles (Base << Level, saturating).
  Cycles currentPeriodCycles() const {
    return scaledPeriod(Cfg.BasePeriodCycles, Level);
  }

  /// Base-rate samples avoided so far by running above scale 0.
  std::uint64_t samplesSaved() const { return SamplesSaved; }

  /// Lengthen transitions taken so far.
  std::uint64_t lengthens() const { return Lengthens; }

  /// Tighten transitions taken so far.
  std::uint64_t tightens() const { return Tightens; }

  /// Consecutive stable intervals banked toward the next step.
  std::uint32_t stableStreak() const { return StableStreak; }

  /// The (normalized) configuration.
  const AdaptiveConfig &config() const { return Cfg; }

  /// Drops all dynamic state back to a fresh controller (scale 0, empty
  /// streak, zeroed accounts). Configuration is preserved.
  void reset();

private:
  friend class persist::StateCodec;

  AdaptiveConfig Cfg;
  std::uint32_t Level = 0;
  std::uint32_t StableStreak = 0;
  /// Previous interval's UCR fraction (valid once HaveLastUcr).
  double LastUcr = 0.0;
  bool HaveLastUcr = false;
  std::uint64_t Lengthens = 0;
  std::uint64_t Tightens = 0;
  std::uint64_t SamplesSaved = 0;
};

} // namespace regmon::sampling

#endif // REGMON_SAMPLING_ADAPTIVECONTROLLER_H
