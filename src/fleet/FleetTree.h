//===- fleet/FleetTree.h - Fault-tolerant aggregation tree -----*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hierarchical fleet rollup (DESIGN.md §14): N MonitorService leaves
/// under a tree of \ref Aggregator nodes, merging \ref FleetSummary state
/// upward once per *epoch* (one ingest round). The design goal is that
/// every degraded state is **explicit and exact**, never silently wrong:
///
///  * merges are the join-semilattice of fleet/Summary.h, so transport
///    drop/duplicate/reorder/stale faults can lose freshness but can
///    never corrupt or double-count;
///  * every \ref FleetView carries an exact coverage fraction (leaves
///    present / leaves total) and per-subtree staleness in whole epochs
///    -- integers derived from the epoch counters, not estimates;
///  * entries older than the bounded-staleness horizon drop *out of
///    coverage* at view time rather than lingering as stale truth;
///  * a parent that misses a child re-syncs with exponential backoff by
///    pulling the child's state directly (the recovery path a real
///    deployment routes over a reliable RPC rather than the lossy
///    summary feed).
///
/// Leaves run the real \ref service::MonitorService in Inline mode over
/// pre-seeded simulated workloads, so the whole fleet -- ingest, faults,
/// crashes, recovery through the persist checkpoint ladder, aggregation
/// -- is a deterministic single-threaded function of (config, fault-plan
/// seed), and FleetChaosTest can assert bit-identical replays.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_FLEET_FLEETTREE_H
#define REGMON_FLEET_FLEETTREE_H

#include "fleet/Codec.h"
#include "fleet/FleetFaultPlan.h"
#include "fleet/Summary.h"
#include "service/MonitorService.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace regmon::sampling {
class Sampler;
}
namespace regmon::sim {
class Engine;
class ProgramCodeMap;
}
namespace regmon::workloads {
struct Workload;
}
namespace regmon::persist {
class CheckpointManager;
}

namespace regmon::fleet {

/// Sentinel for "no parent" (the root).
inline constexpr std::uint32_t NoNode = 0xffff'ffff;

/// The static shape of the fleet: \ref Leaves leaf services under a tree
/// of aggregators with at most \ref Fanout children each, built bottom-up
/// level by level until a single root remains. Node and link numbering is
/// purely a function of (Leaves, Fanout), so two processes building the
/// same topology agree on every id.
class FleetTopology {
public:
  struct AggNode {
    std::uint32_t Id = 0;    ///< Aggregator index (dense, level order).
    std::uint32_t Level = 1; ///< 1 = directly above the leaves.
    std::uint32_t Parent = NoNode;
    std::vector<LeafId> ChildLeaves;       ///< Level 1 only.
    std::vector<std::uint32_t> ChildAggs;  ///< Levels >= 2.
    std::vector<LeafId> LeavesUnder;       ///< All leaves in this subtree.
  };

  /// Builds the tree over \p Leaves leaves with the given \p Fanout
  /// (clamped to >= 2). A single leaf still gets one root aggregator, so
  /// every fleet has a root to view from.
  static FleetTopology build(std::uint32_t Leaves, std::uint32_t Fanout);

  std::uint32_t leaves() const { return NumLeaves; }
  std::uint32_t fanout() const { return Fanout; }
  const std::vector<AggNode> &aggs() const { return Aggs; }
  std::uint32_t root() const { return Root; }
  std::uint32_t levels() const { return NumLevels; }

  /// The aggregator directly above \p Leaf.
  std::uint32_t parentOfLeaf(LeafId Leaf) const { return LeafParent[Leaf]; }

  /// Link ids are dense and deterministic: leaf \p Leaf's uplink is link
  /// \p Leaf; aggregator \p Agg's uplink is link leaves() + \p Agg.
  std::uint32_t leafLink(LeafId Leaf) const { return Leaf; }
  std::uint32_t aggLink(std::uint32_t Agg) const { return NumLeaves + Agg; }

private:
  std::uint32_t NumLeaves = 0;
  std::uint32_t Fanout = 2;
  std::uint32_t Root = 0;
  std::uint32_t NumLevels = 1;
  std::vector<AggNode> Aggs;
  std::vector<std::uint32_t> LeafParent;
};

/// Builds leaf \p Leaf's summary at \p Epoch from the per-stream state of
/// \p Svc, covering service streams [\p FirstStream, \p FirstStream +
/// \p NumStreams). \p FirstGlobalStream maps the range onto fleet-global
/// stream ids (top-K keys must be unique fleet-wide). \p Crashes is the
/// leaf's lifetime crash count (the service does not know it died).
///
/// Shared between the live \ref LeafAgent and the flat single-service
/// reference in FleetTest, so the differential "tree == flat" comparison
/// exercises the tree, not two summary builders. Requires a quiescent or
/// Inline service (reads monitors).
LeafSummary buildLeafSummary(const service::MonitorService &Svc, LeafId Leaf,
                             std::uint64_t Epoch,
                             service::StreamId FirstStream,
                             std::uint32_t NumStreams,
                             std::uint32_t FirstGlobalStream,
                             const std::vector<double> &HistBounds,
                             std::uint32_t TopKCap, std::uint64_t Crashes);

/// Everything a fleet run is parameterized by. The pair (config, fault
/// plan) fully determines every byte of every summary -- there is no
/// other input.
struct FleetSimConfig {
  std::uint32_t Leaves = 8;
  std::uint32_t Fanout = 4;
  std::uint32_t StreamsPerLeaf = 1;
  /// Workload every stream runs (each stream gets a private copy and a
  /// distinct engine seed, like independent cores).
  std::string Workload = "synthetic.periodic";
  /// Sampling period in cycles/interrupt.
  Cycles PeriodCycles = 45'000;
  /// Sample batches ingested per stream per epoch.
  std::uint32_t BatchesPerEpoch = 2;
  /// Canonical top-K sketch capacity, shared fleet-wide.
  std::uint32_t TopKCapacity = 16;
  /// Leaves commit a checkpoint every this many epochs (0 = never).
  /// Only meaningful with \ref PersistDir.
  std::uint64_t CheckpointEveryEpochs = 4;
  /// When non-empty, leaf K persists under "<PersistDir>/leaf<K>" and a
  /// crashed leaf recovers through the checkpoint ladder; when empty a
  /// crashed leaf restarts cold (history lost -- visible in the rollup).
  std::string PersistDir;
  /// Base seed for the per-stream engines (stream G uses Seed + G).
  std::uint64_t Seed = 1;
};

/// Per-leaf lifetime counters the sim tracks outside the service (the
/// service itself forgets it died).
struct LeafAgentStats {
  std::uint64_t Crashes = 0;
  std::uint64_t Restores = 0;
  std::uint64_t ColdRestores = 0; ///< Restores that came back cold.
  std::uint64_t EpochsDown = 0;
  std::uint64_t BatchesDiscarded = 0; ///< Sampled while down, never seen.
  std::uint64_t SummariesEmitted = 0;
};

/// One leaf: an Inline MonitorService over StreamsPerLeaf simulated
/// streams, plus the crash/restart machinery. Owns its workloads, code
/// maps, engines and samplers so batch generation survives service
/// rebuilds (the front-end outlives the monitor process it feeds).
class LeafAgent {
public:
  LeafAgent(LeafId Id, const FleetSimConfig &Config);
  ~LeafAgent();

  LeafAgent(const LeafAgent &) = delete;
  LeafAgent &operator=(const LeafAgent &) = delete;

  /// Pulls one epoch's batches from every stream and ingests them --
  /// or discards them while down (the sampler keeps sampling; a dead
  /// monitor loses data, it does not pause the program).
  void ingestEpoch();

  /// True while crashed and not yet restarted.
  bool down() const { return Down; }

  /// Kills the service at an epoch boundary. In-memory state is gone;
  /// whatever the journal/checkpoint hold survives.
  void crash();

  /// Rebuilds the service and recovers through the checkpoint ladder
  /// (cold when no persistence is configured).
  void restart();

  /// Builds this leaf's summary at \p Epoch. Requires !down().
  LeafSummary emitSummary(std::uint64_t Epoch,
                          const std::vector<double> &HistBounds,
                          std::uint32_t TopKCap);

  LeafId id() const { return Id; }
  const LeafAgentStats &stats() const { return Stats; }
  /// The live service (null while down) -- exposed for tests.
  const service::MonitorService *service() const { return Svc.get(); }

private:
  void buildService();

  struct StreamSim; // workload + map + engine + sampler

  LeafId Id;
  const FleetSimConfig &Config;
  std::vector<std::unique_ptr<StreamSim>> Sims;
  std::unique_ptr<persist::CheckpointManager> Store;
  std::unique_ptr<service::MonitorService> Svc;
  LeafAgentStats Stats;
  bool Down = false;
  std::uint64_t DownSince = 0;
};

/// Per-aggregator counters.
struct AggregatorStats {
  std::uint64_t MessagesIngested = 0;
  std::uint64_t DecodeFailures = 0;
  std::uint64_t EpochsStalled = 0;
  std::uint64_t ResyncAttempts = 0;
  std::uint64_t ResyncSuccesses = 0;
};

/// Per-link counters beyond what the injector records.
struct LinkStats {
  std::uint64_t Sent = 0;
  std::uint64_t Delivered = 0;
  faults::LinkFaultStats Faults;
};

/// One child's view from its parent: freshness bookkeeping plus the
/// exponential-backoff re-sync schedule.
struct ChildSync {
  std::uint64_t LastHeardEpoch = 0; ///< 0 = never.
  std::uint64_t ConsecutiveMisses = 0;
  std::uint64_t NextResyncEpoch = 0;
};

/// The per-subtree row of a \ref FleetView: how much of each child's
/// subtree the merged state actually covers, and how stale it runs.
struct SubtreeView {
  std::uint32_t Child = 0; ///< Leaf id or aggregator id.
  bool ChildIsLeaf = false;
  std::uint64_t LeavesExpected = 0;
  std::uint64_t LeavesPresent = 0;  ///< Within the staleness horizon.
  std::uint64_t MaxStaleness = 0;   ///< Epochs, over present entries.
};

/// A rollup with its honesty attached: exact coverage, staleness, and
/// the per-subtree breakdown. The graceful-degradation contract is that
/// consumers get (data, coverage) pairs -- a view over 13 of 16 leaves
/// says so, arithmetically.
struct FleetView {
  std::uint64_t Epoch = 0;
  std::uint64_t LeavesTotal = 0;
  /// Leaves with an entry within the staleness horizon.
  std::uint64_t LeavesPresent = 0;
  /// Leaves whose entry exists but aged past the horizon.
  std::uint64_t LeavesExpired = 0;
  /// Max staleness in epochs over the *present* entries.
  std::uint64_t MaxStaleness = 0;
  std::vector<SubtreeView> Subtrees; ///< The root's children.
  FleetRollup Rollup; ///< Over present (non-expired) entries only.

  /// Exact coverage fraction.
  double coverage() const {
    return LeavesTotal == 0 ? 0.0
                            : static_cast<double>(LeavesPresent) /
                                  static_cast<double>(LeavesTotal);
  }

  /// Renders the view as a human-readable report (regmon-cli fleet).
  std::string render() const;
};

/// The whole deterministic fleet: leaves, links, aggregators, and the
/// epoch loop that drives them under a \ref FleetFaultPlan. Single
/// threaded by design -- determinism is the point; the thing being
/// studied is the failure semantics, not the scheduler.
class FleetSim {
public:
  FleetSim(FleetSimConfig Config, FleetFaultPlan Plan);
  ~FleetSim();

  FleetSim(const FleetSim &) = delete;
  FleetSim &operator=(const FleetSim &) = delete;

  /// Advances one epoch: crash/restart decisions, ingest, summary
  /// emission through the (faulty) links, bottom-up aggregator merges,
  /// and re-sync of missing children.
  void runEpoch();

  /// Runs \p N epochs.
  void run(std::uint64_t N);

  /// Epochs completed so far.
  std::uint64_t epoch() const { return Epoch; }

  /// The root's current view under the bounded-staleness horizon.
  FleetView view() const;

  const FleetTopology &topology() const { return Topo; }
  const FleetSimConfig &config() const { return Config; }
  const FleetFaultPlan &plan() const { return Plan; }

  /// Root aggregator's merged state (for differential tests).
  const FleetSummary &rootState() const;

  const LeafAgentStats &leafStats(LeafId Leaf) const;
  const AggregatorStats &aggStats(std::uint32_t Agg) const;
  const LinkStats &linkStats(std::uint32_t Link) const;
  /// Sum of \ref LinkStats::Sent message bytes over all links -- the
  /// transport cost the bench gates on.
  std::uint64_t bytesSent() const { return BytesSent; }

private:
  struct Link;       // injector + delay queue + stale cache
  struct Aggregator; // merged state + inbox + per-child sync

  /// Runs \p Bytes from child slot \p Slot through \p L's fault
  /// injector; delivered messages land in \p To's inbox in delivery
  /// order, tagged with the sender slot.
  void transmit(Link &L, std::uint32_t Slot, std::vector<std::uint8_t> Bytes,
                Aggregator &To);

  /// Pull-path recovery of one missing child; true on success.
  bool resyncChild(Aggregator &Agg, std::uint32_t Slot);

  FleetSimConfig Config;
  FleetFaultPlan Plan;
  FleetTopology Topo;
  std::vector<std::unique_ptr<LeafAgent>> LeafAgents;
  std::vector<NodeFaultInjector> CrashInjectors; ///< One per leaf.
  /// Epoch at which a down leaf restarts (meaningful only while down).
  std::vector<std::uint64_t> DownUntil;
  std::vector<std::unique_ptr<Aggregator>> Aggs;
  std::vector<std::unique_ptr<Link>> Links;
  std::uint64_t Epoch = 0;
  std::uint64_t BytesSent = 0;
};

/// Publishes \p Sim's lifetime counters and the current root view into
/// \p I (see \ref obs::makeFleetInstruments). Counters are added once --
/// call this at the end of a run (or diff scrapes yourself); gauges and
/// the stable-fraction histogram reflect the view at call time. Every
/// published number derives from deterministic sim state, so the
/// resulting Prometheus/JSON exports are byte-stable across replays.
void publishFleetMetrics(const FleetSim &Sim, const obs::FleetInstruments &I);

} // namespace regmon::fleet

#endif // REGMON_FLEET_FLEETTREE_H
