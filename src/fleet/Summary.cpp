//===- fleet/Summary.cpp - Mergeable fleet rollup summaries ---------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fleet/Summary.h"

#include <algorithm>
#include <cassert>

using namespace regmon;
using namespace regmon::fleet;

REGMON_PURE void LeafStats::merge(const LeafStats &Other) {
  Streams += Other.Streams;
  BatchesProcessed += Other.BatchesProcessed;
  Intervals += Other.Intervals;
  PhaseChanges += Other.PhaseChanges;
  FormationTriggers += Other.FormationTriggers;
  ActiveRegions += Other.ActiveRegions;
  StableRegions += Other.StableRegions;
  TotalSamples += Other.TotalSamples;
  UcrSamples += Other.UcrSamples;
  QuarantinedStreams += Other.QuarantinedStreams;
  Crashes += Other.Crashes;
}

MergeableHistogram::MergeableHistogram(std::vector<double> UpperBounds)
    : Upper(std::move(UpperBounds)), Buckets(Upper.size() + 1, 0) {
  assert(std::is_sorted(Upper.begin(), Upper.end()) &&
         "bucket bounds must ascend");
}

void MergeableHistogram::add(double X) {
  if (Buckets.empty())
    Buckets.resize(Upper.size() + 1, 0);
  const auto It = std::lower_bound(Upper.begin(), Upper.end(), X);
  ++Buckets[static_cast<std::size_t>(It - Upper.begin())];
  ++Total;
}

REGMON_PURE void MergeableHistogram::merge(const MergeableHistogram &Other) {
  if (Other.Buckets.empty())
    return;
  if (Buckets.empty()) {
    *this = Other;
    return;
  }
  assert(Upper == Other.Upper && "one fleet, one canonical bucket shape");
  if (Upper != Other.Upper)
    return;
  for (std::size_t I = 0; I < Buckets.size(); ++I)
    Buckets[I] += Other.Buckets[I];
  Total += Other.Total;
}

std::vector<double> fleet::stableFractionBounds() {
  return {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99};
}

REGMON_PURE bool fleet::topKBefore(const TopKEntry &A, const TopKEntry &B) {
  if (A.PhaseChanges != B.PhaseChanges)
    return A.PhaseChanges > B.PhaseChanges;
  if (A.Stream != B.Stream)
    return A.Stream < B.Stream;
  return A.Region < B.Region;
}

void TopKSketch::add(const TopKEntry &E) {
  for (TopKEntry &Have : Entries) {
    if (Have.Stream == E.Stream && Have.Region == E.Region) {
      // Max, not sum: re-adding the same observation must be a no-op
      // (idempotence under transport re-delivery).
      Have.PhaseChanges = std::max(Have.PhaseChanges, E.PhaseChanges);
      std::sort(Entries.begin(), Entries.end(), topKBefore);
      return;
    }
  }
  Entries.push_back(E);
  std::sort(Entries.begin(), Entries.end(), topKBefore);
  if (Entries.size() > Cap)
    Entries.resize(Cap);
}

REGMON_PURE void TopKSketch::merge(const TopKSketch &Other) {
  if (Other.Entries.empty())
    return;
  assert(Cap == Other.Cap && "one fleet, one canonical sketch capacity");
  if (Cap != Other.Cap)
    return;
  std::vector<TopKEntry> Union;
  Union.reserve(Entries.size() + Other.Entries.size());
  Union = Entries;
  for (const TopKEntry &E : Other.Entries) {
    bool Collided = false;
    for (TopKEntry &Have : Union) {
      if (Have.Stream == E.Stream && Have.Region == E.Region) {
        Have.PhaseChanges = std::max(Have.PhaseChanges, E.PhaseChanges);
        Collided = true;
        break;
      }
    }
    if (!Collided)
      Union.push_back(E);
  }
  std::sort(Union.begin(), Union.end(), topKBefore);
  if (Union.size() > Cap)
    Union.resize(Cap);
  Entries = std::move(Union);
}

REGMON_PURE bool FleetSummary::absorb(const LeafSummary &S) {
  const auto It = std::lower_bound(
      Entries.begin(), Entries.end(), S.Leaf,
      [](const LeafSummary &E, LeafId Leaf) { return E.Leaf < Leaf; });
  if (It != Entries.end() && It->Leaf == S.Leaf) {
    // Last-writer-wins by epoch; a tie is the same emission re-delivered,
    // which the register may keep or ignore identically (same payload).
    if (S.Epoch <= It->Epoch)
      return false;
    *It = S;
    return true;
  }
  Entries.insert(It, S);
  return true;
}

REGMON_PURE void FleetSummary::merge(const FleetSummary &Other) {
  for (const LeafSummary &S : Other.Entries)
    absorb(S);
}

const LeafSummary *FleetSummary::find(LeafId Leaf) const {
  const auto It = std::lower_bound(
      Entries.begin(), Entries.end(), Leaf,
      [](const LeafSummary &E, LeafId L) { return E.Leaf < L; });
  if (It != Entries.end() && It->Leaf == Leaf)
    return &*It;
  return nullptr;
}

REGMON_PURE FleetRollup fleet::rollup(const FleetSummary &Summary,
                                      std::uint64_t MinEpoch,
                                      std::vector<double> HistBounds,
                                      std::uint32_t TopKCap) {
  FleetRollup R;
  R.StableHist = MergeableHistogram(std::move(HistBounds));
  R.TopK = TopKSketch(TopKCap);
  for (const LeafSummary &S : Summary.entries()) {
    if (S.Epoch < MinEpoch)
      continue;
    R.Totals.merge(S.Stats);
    R.StableHist.merge(S.StableHist);
    R.TopK.merge(S.TopK);
  }
  return R;
}
