//===- fleet/Codec.cpp - Wire codec for fleet summaries -------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fleet/Codec.h"

#include <algorithm>

using namespace regmon;
using namespace regmon::fleet;

void Codec::encode(persist::ByteWriter &W, const LeafStats &S) {
  W.u64(S.Streams);
  W.u64(S.BatchesProcessed);
  W.u64(S.Intervals);
  W.u64(S.PhaseChanges);
  W.u64(S.FormationTriggers);
  W.u64(S.ActiveRegions);
  W.u64(S.StableRegions);
  W.u64(S.TotalSamples);
  W.u64(S.UcrSamples);
  W.u64(S.QuarantinedStreams);
  W.u64(S.Crashes);
}

bool Codec::decode(persist::ByteReader &R, LeafStats &Out) {
  Out.Streams = R.u64();
  Out.BatchesProcessed = R.u64();
  Out.Intervals = R.u64();
  Out.PhaseChanges = R.u64();
  Out.FormationTriggers = R.u64();
  Out.ActiveRegions = R.u64();
  Out.StableRegions = R.u64();
  Out.TotalSamples = R.u64();
  Out.UcrSamples = R.u64();
  Out.QuarantinedStreams = R.u64();
  Out.Crashes = R.u64();
  return R.ok();
}

void Codec::encode(persist::ByteWriter &W, const MergeableHistogram &H) {
  W.vecF64(H.Upper);
  W.vecU64(H.Buckets);
  W.u64(H.Total);
}

bool Codec::decode(persist::ByteReader &R, MergeableHistogram &Out) {
  if (!R.vecF64(Out.Upper) || !R.vecU64(Out.Buckets))
    return false;
  Out.Total = R.u64();
  if (!R.ok())
    return false;
  // An empty histogram (never constructed with bounds) serializes as two
  // empty vectors; anything else must carry the +Inf bucket and counts
  // that sum to Total, and ascending bounds.
  if (Out.Buckets.empty()) {
    if (!Out.Upper.empty() || Out.Total != 0) {
      R.fail();
      return false;
    }
    return true;
  }
  if (Out.Buckets.size() != Out.Upper.size() + 1 ||
      !std::is_sorted(Out.Upper.begin(), Out.Upper.end())) {
    R.fail();
    return false;
  }
  std::uint64_t Sum = 0;
  for (std::uint64_t C : Out.Buckets)
    Sum += C;
  if (Sum != Out.Total) {
    R.fail();
    return false;
  }
  return true;
}

void Codec::encode(persist::ByteWriter &W, const TopKSketch &S) {
  W.u32(S.Cap);
  W.u64(S.Entries.size());
  for (const TopKEntry &E : S.Entries) {
    W.u32(E.Stream);
    W.u32(E.Region);
    W.u64(E.PhaseChanges);
  }
}

bool Codec::decode(persist::ByteReader &R, TopKSketch &Out) {
  Out.Cap = R.u32();
  const std::uint64_t N = R.u64();
  // 16 bytes per entry: reject a length prefix the buffer cannot hold
  // before allocating, and a count beyond the declared capacity outright.
  if (!R.ok() || N > Out.Cap || N > R.remaining() / 16) {
    R.fail();
    return false;
  }
  Out.Entries.clear();
  Out.Entries.reserve(N);
  for (std::uint64_t I = 0; I < N; ++I) {
    TopKEntry E;
    E.Stream = R.u32();
    E.Region = R.u32();
    E.PhaseChanges = R.u64();
    if (!R.ok())
      return false;
    // Canonical order is part of the format: out-of-order or duplicate
    // entries mean a corrupt or non-canonical encoder.
    if (I > 0 && !topKBefore(Out.Entries.back(), E)) {
      R.fail();
      return false;
    }
    Out.Entries.push_back(E);
  }
  return true;
}

void Codec::encode(persist::ByteWriter &W, const LeafSummary &S) {
  W.u32(S.Leaf);
  W.u64(S.Epoch);
  encode(W, S.Stats);
  encode(W, S.StableHist);
  encode(W, S.TopK);
}

bool Codec::decode(persist::ByteReader &R, LeafSummary &Out) {
  Out.Leaf = R.u32();
  Out.Epoch = R.u64();
  return decode(R, Out.Stats) && decode(R, Out.StableHist) &&
         decode(R, Out.TopK);
}

void Codec::encode(persist::ByteWriter &W, const FleetSummary &S) {
  W.u64(S.Entries.size());
  for (const LeafSummary &E : S.Entries)
    encode(W, E);
}

bool Codec::decode(persist::ByteReader &R, FleetSummary &Out) {
  const std::uint64_t N = R.u64();
  // Each entry is at least the fixed LeafSummary prefix (leaf + epoch +
  // stats) wide; bound the allocation by that before trusting N.
  constexpr std::uint64_t MinEntryBytes = 4 + 8 + 11 * 8;
  if (!R.ok() || N > R.remaining() / MinEntryBytes) {
    R.fail();
    return false;
  }
  Out.Entries.clear();
  Out.Entries.reserve(N);
  for (std::uint64_t I = 0; I < N; ++I) {
    LeafSummary S;
    if (!decode(R, S))
      return false;
    // Strictly ascending leaf ids: sortedness and uniqueness in one check.
    if (I > 0 && Out.Entries.back().Leaf >= S.Leaf) {
      R.fail();
      return false;
    }
    Out.Entries.push_back(std::move(S));
  }
  return true;
}

std::vector<std::uint8_t> Codec::encodeMessage(const LeafSummary &S) {
  persist::ByteWriter W;
  W.u32(Version);
  encode(W, S);
  return W.take();
}

std::optional<LeafSummary>
Codec::decodeMessage(std::span<const std::uint8_t> Bytes) {
  persist::ByteReader R(Bytes);
  if (R.u32() != Version)
    return std::nullopt;
  LeafSummary S;
  if (!decode(R, S) || !R.atEnd())
    return std::nullopt;
  return S;
}

std::vector<std::uint8_t> Codec::encodeState(const FleetSummary &S) {
  persist::ByteWriter W;
  W.u32(Version);
  encode(W, S);
  return W.take();
}

std::optional<FleetSummary>
Codec::decodeState(std::span<const std::uint8_t> Bytes) {
  persist::ByteReader R(Bytes);
  if (R.u32() != Version)
    return std::nullopt;
  FleetSummary S;
  if (!decode(R, S) || !R.atEnd())
    return std::nullopt;
  return S;
}
