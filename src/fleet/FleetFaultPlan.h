//===- fleet/FleetFaultPlan.h - Seeded fleet failure schedule --*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet layer's failure model, extending the src/faults discipline
/// from samples and batches up to whole nodes and links: every random
/// decision is drawn from a seeded generator derived per (plan seed,
/// node/link id) by seed mixing, and every decision is *always drawn*
/// whether or not it fires, so the consumed random stream -- and with it
/// every later decision -- is independent of which faults actually occur.
/// The same plan over the same workload therefore produces bit-identical
/// fault schedules, crashes included, which is what lets FleetChaosTest
/// assert that a faulted fleet run replays bit-identically.
///
/// Three fault classes:
///  * leaf crash -- the leaf process dies at an epoch boundary, loses its
///    in-flight epoch, and restarts \ref FleetFaultConfig::LeafRestartEpochs
///    epochs later through the persist checkpoint ladder (or cold, when
///    the leaf has no persistence configured);
///  * aggregator stall -- an interior node skips its merge/emit round for
///    one epoch (GC pause, CPU steal); its parent sees a missing child;
///  * summary transport faults -- per-link drop/duplicate/reorder/stale,
///    delegated to \ref faults::LinkFaultInjector.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_FLEET_FLEETFAULTPLAN_H
#define REGMON_FLEET_FLEETFAULTPLAN_H

#include "faults/FaultPlan.h"
#include "support/Contracts.h"
#include "support/Rng.h"

#include <cstdint>

namespace regmon::fleet {

/// Fleet-level fault rates and recovery shape. A default-constructed
/// config injects nothing and never expires entries.
struct FleetFaultConfig {
  /// Per-epoch probability of a live leaf crashing at the epoch boundary.
  double LeafCrashRate = 0;
  /// Epochs a crashed leaf stays down before restarting (downtime is
  /// deterministic; the *schedule* of crashes is what is random).
  std::uint64_t LeafRestartEpochs = 2;
  /// Per-epoch probability of an interior aggregator stalling (skipping
  /// its merge/emit round for that epoch).
  double AggStallRate = 0;
  /// Summary-transport fault rates applied to every tree link.
  faults::TransportFaultConfig Transport;
  /// A per-leaf entry older than this many epochs drops out of coverage
  /// at view time (bounded staleness). 0 disables expiry.
  std::uint64_t MaxStalenessEpochs = 8;
  /// Cap on the re-sync backoff exponent: a parent retries a missing
  /// child after 1, 2, 4, ... up to 2^cap epochs.
  std::uint64_t ResyncBackoffCapLog2 = 4;
};

/// Counters of everything a node injector decided.
struct NodeFaultStats {
  std::uint64_t EpochsSeen = 0;
  std::uint64_t Fired = 0;
};

/// Decides one node's per-epoch fault (crash for leaves, stall for
/// aggregators). The K-th call judges epoch K; the decision draw is
/// always consumed, so the schedule is independent of downstream effects
/// (a crashed leaf's injector keeps drawing through its downtime).
class NodeFaultInjector {
public:
  /// Prefer \ref FleetFaultPlan::forLeaf / forAggregator.
  NodeFaultInjector(std::uint64_t Seed, double Rate);

  /// Decides whether the fault fires this epoch. Always draws.
  bool nextFires();

  const NodeFaultStats &stats() const { return Stats; }

private:
  double Rate;
  Rng EpochRng;
  NodeFaultStats Stats;
};

/// A seeded, fully replayable failure schedule over a whole fleet tree.
/// Immutable; all injectors derive deterministically from (seed, id), so
/// node K's fate is independent of how many other nodes exist and of the
/// order injectors are created in.
class FleetFaultPlan {
public:
  explicit FleetFaultPlan(std::uint64_t PlanSeed, FleetFaultConfig Cfg = {})
      : Seed(PlanSeed), Config(Cfg) {}

  /// Returns leaf \p Id's crash injector.
  NodeFaultInjector forLeaf(std::uint32_t Id) const;

  /// Returns aggregator \p NodeId's stall injector, decorrelated from
  /// leaf injectors with the same numeric id.
  NodeFaultInjector forAggregator(std::uint32_t NodeId) const;

  /// Returns link \p LinkId's transport injector (child -> parent edge).
  faults::LinkFaultInjector forLink(std::uint32_t LinkId) const;

  std::uint64_t seed() const { return Seed; }
  const FleetFaultConfig &config() const { return Config; }

private:
  std::uint64_t Seed;
  FleetFaultConfig Config;
};

} // namespace regmon::fleet

#endif // REGMON_FLEET_FLEETFAULTPLAN_H
