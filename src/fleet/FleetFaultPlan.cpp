//===- fleet/FleetFaultPlan.cpp - Seeded fleet failure schedule -----------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fleet/FleetFaultPlan.h"

using namespace regmon;
using namespace regmon::fleet;

namespace {

/// splitmix64 finalizer -- the same mixing src/faults uses, so per-node
/// seeds are independent of id patterns and injector creation order.
std::uint64_t mix64(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

} // namespace

NodeFaultInjector::NodeFaultInjector(std::uint64_t Seed, double FireRate)
    : Rate(FireRate), EpochRng(mix64(Seed ^ 0x3c3c3c3c'3c3c3c3cULL)) {}

REGMON_PURE bool NodeFaultInjector::nextFires() {
  ++Stats.EpochsSeen;
  // Always drawn, even at rate 0, so enabling a fault class later never
  // shifts any other injector's sequence (they share nothing) and a
  // crashed node's downtime epochs keep the stream aligned.
  const bool Fires = EpochRng.nextDouble() < Rate;
  if (Fires)
    ++Stats.Fired;
  return Fires;
}

REGMON_PURE NodeFaultInjector FleetFaultPlan::forLeaf(std::uint32_t Id) const {
  return NodeFaultInjector(mix64(Seed ^ 0xa5a5a5a5'a5a5a5a5ULL) ^ mix64(Id),
                           Config.LeafCrashRate);
}

REGMON_PURE NodeFaultInjector
FleetFaultPlan::forAggregator(std::uint32_t NodeId) const {
  return NodeFaultInjector(mix64(Seed ^ 0x5c5c5c5c'5c5c5c5cULL) ^
                               mix64(NodeId),
                           Config.AggStallRate);
}

REGMON_PURE faults::LinkFaultInjector
FleetFaultPlan::forLink(std::uint32_t LinkId) const {
  // Delegate to the faults layer's derivation so fleet links and any
  // other links sharing the plan seed stay decorrelated the same way.
  return faults::FaultPlan(Seed).forLink(LinkId, Config.Transport);
}
