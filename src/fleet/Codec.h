//===- fleet/Codec.h - Wire codec for fleet summaries ----------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary wire format for the summary types of fleet/Summary.h, built on
/// the persist layer's bounds-checked ByteWriter/ByteReader. Encoding is
/// canonical -- entries are already sorted, so the same logical summary
/// always yields the same bytes (byte-stable transport and golden tests).
/// Decoding is all-or-nothing and validates structure, not just bounds:
/// leaf ids must ascend strictly, top-K entries must arrive in canonical
/// order within capacity, histogram bucket counts must match the bound
/// count, and every byte must be consumed. A summary that fails any check
/// decodes to nothing; the aggregator counts it and keeps its previous
/// entry -- exactly the degradation contract a lossy transport demands.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_FLEET_CODEC_H
#define REGMON_FLEET_CODEC_H

#include "fleet/Summary.h"
#include "persist/Bytes.h"

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace regmon::fleet {

/// Static encode/decode routines for every transported summary type.
/// Stateless; a class only so Summary.h can grant friendship to reach
/// private fields without exposing setters to the merge API.
class Codec {
public:
  /// Bumped whenever the wire layout changes; decoders reject other
  /// versions rather than guessing.
  static constexpr std::uint32_t Version = 1;

  static void encode(persist::ByteWriter &W, const LeafStats &S);
  static void encode(persist::ByteWriter &W, const MergeableHistogram &H);
  static void encode(persist::ByteWriter &W, const TopKSketch &S);
  static void encode(persist::ByteWriter &W, const LeafSummary &S);
  static void encode(persist::ByteWriter &W, const FleetSummary &S);

  static bool decode(persist::ByteReader &R, LeafStats &Out);
  static bool decode(persist::ByteReader &R, MergeableHistogram &Out);
  static bool decode(persist::ByteReader &R, TopKSketch &Out);
  static bool decode(persist::ByteReader &R, LeafSummary &Out);
  static bool decode(persist::ByteReader &R, FleetSummary &Out);

  /// Encodes \p S as a self-contained versioned message (the unit the
  /// tree's links carry).
  static std::vector<std::uint8_t> encodeMessage(const LeafSummary &S);

  /// Decodes a message produced by \ref encodeMessage. Returns nullopt on
  /// any structural or semantic violation, including trailing bytes.
  static std::optional<LeafSummary>
  decodeMessage(std::span<const std::uint8_t> Bytes);

  /// Encodes a whole merged summary (checkpointable aggregator state).
  static std::vector<std::uint8_t> encodeState(const FleetSummary &S);

  /// Decodes aggregator state produced by \ref encodeState.
  static std::optional<FleetSummary>
  decodeState(std::span<const std::uint8_t> Bytes);
};

} // namespace regmon::fleet

#endif // REGMON_FLEET_CODEC_H
