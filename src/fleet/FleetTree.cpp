//===- fleet/FleetTree.cpp - Fault-tolerant aggregation tree --------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fleet/FleetTree.h"

#include "persist/Checkpoint.h"
#include "sampling/Sampler.h"
#include "sim/Engine.h"
#include "sim/ProgramCodeMap.h"
#include "support/TextTable.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cassert>

using namespace regmon;
using namespace regmon::fleet;

//===----------------------------------------------------------------------===//
// FleetTopology
//===----------------------------------------------------------------------===//

FleetTopology FleetTopology::build(std::uint32_t Leaves,
                                   std::uint32_t FanoutIn) {
  FleetTopology T;
  T.NumLeaves = std::max<std::uint32_t>(Leaves, 1);
  T.Fanout = std::max<std::uint32_t>(FanoutIn, 2);
  T.LeafParent.assign(T.NumLeaves, NoNode);

  // Level 1: group leaves under aggregators.
  std::vector<std::uint32_t> Level; // agg ids of the level being built
  for (std::uint32_t First = 0; First < T.NumLeaves; First += T.Fanout) {
    AggNode N;
    N.Id = static_cast<std::uint32_t>(T.Aggs.size());
    N.Level = 1;
    const std::uint32_t Last = std::min(First + T.Fanout, T.NumLeaves);
    for (std::uint32_t L = First; L < Last; ++L) {
      N.ChildLeaves.push_back(L);
      N.LeavesUnder.push_back(L);
      T.LeafParent[L] = N.Id;
    }
    Level.push_back(N.Id);
    T.Aggs.push_back(std::move(N));
  }
  T.NumLevels = 1;

  // Upper levels: group aggregators until one root remains. Ids ascend
  // with level, so iterating aggregators in id order is bottom-up.
  while (Level.size() > 1) {
    ++T.NumLevels;
    std::vector<std::uint32_t> Next;
    for (std::size_t First = 0; First < Level.size(); First += T.Fanout) {
      AggNode N;
      N.Id = static_cast<std::uint32_t>(T.Aggs.size());
      N.Level = T.NumLevels;
      const std::size_t Last = std::min(First + T.Fanout, Level.size());
      for (std::size_t I = First; I < Last; ++I) {
        const std::uint32_t Child = Level[I];
        N.ChildAggs.push_back(Child);
        T.Aggs[Child].Parent = N.Id;
        N.LeavesUnder.insert(N.LeavesUnder.end(),
                             T.Aggs[Child].LeavesUnder.begin(),
                             T.Aggs[Child].LeavesUnder.end());
      }
      Next.push_back(N.Id);
      T.Aggs.push_back(std::move(N));
    }
    Level = std::move(Next);
  }
  T.Root = Level.front();
  return T;
}

//===----------------------------------------------------------------------===//
// Leaf summaries
//===----------------------------------------------------------------------===//

LeafSummary fleet::buildLeafSummary(const service::MonitorService &Svc,
                                    LeafId Leaf, std::uint64_t Epoch,
                                    service::StreamId FirstStream,
                                    std::uint32_t NumStreams,
                                    std::uint32_t FirstGlobalStream,
                                    const std::vector<double> &HistBounds,
                                    std::uint32_t TopKCap,
                                    std::uint64_t Crashes) {
  LeafSummary S;
  S.Leaf = Leaf;
  S.Epoch = Epoch;
  S.StableHist = MergeableHistogram(HistBounds);
  S.TopK = TopKSketch(TopKCap);
  S.Stats.Streams = NumStreams;
  S.Stats.Crashes = Crashes;

  const service::ServiceSnapshot Snap = Svc.snapshot();
  for (std::uint32_t I = 0; I < NumStreams; ++I) {
    const service::StreamId Id = FirstStream + I;
    const service::StreamSnapshot &St = Snap.Streams[Id];
    S.Stats.BatchesProcessed += St.BatchesProcessed;
    S.Stats.Intervals += St.IntervalsProcessed;
    S.Stats.PhaseChanges += St.PhaseChanges;
    S.Stats.FormationTriggers += St.FormationTriggers;
    S.Stats.TotalSamples += St.TotalSamples;
    S.Stats.UcrSamples += St.UcrSamples;
    if (St.Health != service::StreamHealth::Healthy)
      ++S.Stats.QuarantinedStreams;

    // Per-region detail straight from the monitor (quiescent or Inline
    // services only -- see the header contract).
    const core::RegionMonitor &Mon = Svc.monitor(Id);
    for (core::RegionId R : Mon.activeRegionIds()) {
      const core::RegionStats &RS = Mon.stats(R);
      ++S.Stats.ActiveRegions;
      const double Stable = RS.stableFraction();
      if (Stable >= 0.5)
        ++S.Stats.StableRegions;
      S.StableHist.add(Stable);
      S.TopK.add({FirstGlobalStream + I, R, RS.PhaseChanges});
    }
  }
  return S;
}

//===----------------------------------------------------------------------===//
// LeafAgent
//===----------------------------------------------------------------------===//

/// One stream's deterministic sample source. Owns the workload copy so
/// the engine's references stay valid across service rebuilds -- the
/// front-end outlives the monitor process it feeds.
struct LeafAgent::StreamSim {
  StreamSim(const std::string &Name, Cycles Period, std::uint64_t EngineSeed)
      : W(workloads::make(Name)), Map(W.Prog),
        Eng(W.Prog, W.Script, EngineSeed), Smp(Eng, {Period, 2032}) {}

  workloads::Workload W;
  sim::ProgramCodeMap Map;
  sim::Engine Eng;
  sampling::Sampler Smp;
  bool Ended = false;
};

LeafAgent::LeafAgent(LeafId IdIn, const FleetSimConfig &Cfg)
    : Id(IdIn), Config(Cfg) {
  Sims.reserve(Config.StreamsPerLeaf);
  for (std::uint32_t S = 0; S < Config.StreamsPerLeaf; ++S) {
    const std::uint64_t Global =
        static_cast<std::uint64_t>(Id) * Config.StreamsPerLeaf + S;
    Sims.push_back(std::make_unique<StreamSim>(
        Config.Workload, Config.PeriodCycles, Config.Seed + Global));
  }
  if (!Config.PersistDir.empty())
    Store = std::make_unique<persist::CheckpointManager>(
        Config.PersistDir + "/leaf" + std::to_string(Id));
  buildService();
}

LeafAgent::~LeafAgent() = default;

void LeafAgent::buildService() {
  service::ServiceConfig SC;
  SC.Workers = 1;
  SC.QueueCapacity = 8; // unused in Inline mode
  SC.Inline = true;
  Svc = std::make_unique<service::MonitorService>(SC);
  for (const auto &Sim : Sims)
    Svc->addStream(Sim->Map);
  if (Store) {
    Svc->attachPersistence(*Store);
    const service::RestoreOutcome O = Svc->restore();
    if (Stats.Crashes > 0) {
      ++Stats.Restores;
      if (O == service::RestoreOutcome::ColdStart)
        ++Stats.ColdRestores;
    }
  } else if (Stats.Crashes > 0) {
    // No durability configured: the restart is a restore in name only.
    ++Stats.Restores;
    ++Stats.ColdRestores;
  }
  Svc->start();
}

void LeafAgent::ingestEpoch() {
  std::vector<Sample> Buffer;
  for (std::uint32_t S = 0; S < Sims.size(); ++S) {
    StreamSim &Sim = *Sims[S];
    for (std::uint32_t B = 0; B < Config.BatchesPerEpoch; ++B) {
      if (Sim.Ended)
        break;
      if (!Sim.Smp.fillBuffer(Buffer)) {
        Sim.Ended = true;
        break;
      }
      // The sampler ran either way; a dead monitor just never sees the
      // buffer (counted, so tests can reconcile totals arithmetically).
      if (Down)
        ++Stats.BatchesDiscarded;
      else
        Svc->submit({S, Buffer});
    }
  }
  if (Down)
    ++Stats.EpochsDown;
}

void LeafAgent::crash() {
  assert(!Down && "already down");
  ++Stats.Crashes;
  Down = true;
  // The process is gone: in-memory monitors, counters, everything. The
  // journal and snapshots (if any) are on disk and survive.
  Svc.reset();
}

void LeafAgent::restart() {
  assert(Down && "not down");
  Down = false;
  buildService();
}

LeafSummary LeafAgent::emitSummary(std::uint64_t Epoch,
                                   const std::vector<double> &HistBounds,
                                   std::uint32_t TopKCap) {
  assert(!Down && "a dead leaf emits nothing");
  ++Stats.SummariesEmitted;
  if (Store && Config.CheckpointEveryEpochs > 0 &&
      Epoch % Config.CheckpointEveryEpochs == 0)
    Svc->checkpoint();
  return buildLeafSummary(
      *Svc, Id, Epoch, /*FirstStream=*/0,
      static_cast<std::uint32_t>(Sims.size()),
      static_cast<std::uint32_t>(Id * Config.StreamsPerLeaf), HistBounds,
      TopKCap, Stats.Crashes);
}

//===----------------------------------------------------------------------===//
// FleetSim internals
//===----------------------------------------------------------------------===//

/// One child -> parent edge with its fault injector and the two pieces of
/// state the fault semantics need: a delay queue (Reorder holds a message
/// one epoch and delivers it after its successor) and the last delivered
/// payload (Stale re-delivers it in place of the current message, like a
/// retry queue replaying an acknowledged send).
struct FleetSim::Link {
  explicit Link(faults::LinkFaultInjector Inj) : Injector(std::move(Inj)) {}

  faults::LinkFaultInjector Injector;
  std::vector<std::vector<std::uint8_t>> Delayed;
  std::vector<std::uint8_t> LastDelivered;
  LinkStats Stats;
};

/// One interior node: the merged semilattice state, the inbox its
/// children's links deliver into (tagged with the sender slot, as a real
/// receiver would know its sockets), and the freshness ledger driving
/// re-sync.
struct FleetSim::Aggregator {
  struct InMsg {
    std::uint32_t Slot;
    std::vector<std::uint8_t> Bytes;
  };

  std::uint32_t Id = 0;
  FleetSummary Merged;
  NodeFaultInjector Stall;
  std::vector<InMsg> Inbox;
  std::vector<ChildSync> Children; ///< Indexed like the topology node's.
  AggregatorStats Stats;
  bool StalledThisEpoch = false;

  Aggregator(std::uint32_t IdIn, NodeFaultInjector StallIn,
             std::size_t NumChildren)
      : Id(IdIn), Stall(std::move(StallIn)), Children(NumChildren) {}
};

FleetSim::FleetSim(FleetSimConfig Cfg, FleetFaultPlan PlanIn)
    : Config(std::move(Cfg)), Plan(std::move(PlanIn)),
      Topo(FleetTopology::build(Config.Leaves, Config.Fanout)) {
  LeafAgents.reserve(Topo.leaves());
  CrashInjectors.reserve(Topo.leaves());
  DownUntil.assign(Topo.leaves(), 0);
  for (std::uint32_t L = 0; L < Topo.leaves(); ++L) {
    LeafAgents.push_back(std::make_unique<LeafAgent>(L, Config));
    CrashInjectors.push_back(Plan.forLeaf(L));
  }
  Aggs.reserve(Topo.aggs().size());
  for (const FleetTopology::AggNode &N : Topo.aggs()) {
    const std::size_t Children =
        N.Level == 1 ? N.ChildLeaves.size() : N.ChildAggs.size();
    Aggs.push_back(std::make_unique<Aggregator>(N.Id, Plan.forAggregator(N.Id),
                                                Children));
  }
  // One link per non-root node's uplink: leaves first, then aggregators.
  // The root's slot exists but is never used, keeping link ids dense and
  // equal to FleetTopology's numbering.
  const std::uint32_t NumLinks =
      Topo.leaves() + static_cast<std::uint32_t>(Topo.aggs().size());
  Links.reserve(NumLinks);
  for (std::uint32_t I = 0; I < NumLinks; ++I)
    Links.push_back(std::make_unique<Link>(Plan.forLink(I)));
}

FleetSim::~FleetSim() = default;

void FleetSim::transmit(Link &L, std::uint32_t Slot,
                        std::vector<std::uint8_t> Bytes, Aggregator &To) {
  ++L.Stats.Sent;
  BytesSent += Bytes.size();
  const faults::TransportFault Fate = L.Injector.nextFault();
  // Anything the link held back last epoch goes out *after* this epoch's
  // message ("delayed one round, delivered after its successor").
  std::vector<std::vector<std::uint8_t>> Flush = std::move(L.Delayed);
  L.Delayed.clear();

  switch (Fate) {
  case faults::TransportFault::None:
    L.LastDelivered = Bytes;
    ++L.Stats.Delivered;
    To.Inbox.push_back({Slot, std::move(Bytes)});
    break;
  case faults::TransportFault::Drop:
    break;
  case faults::TransportFault::Duplicate:
    L.LastDelivered = Bytes;
    L.Stats.Delivered += 2;
    To.Inbox.push_back({Slot, Bytes});
    To.Inbox.push_back({Slot, std::move(Bytes)});
    break;
  case faults::TransportFault::Reorder:
    L.Delayed.push_back(std::move(Bytes));
    break;
  case faults::TransportFault::Stale:
    // The retry queue replays the previous payload; the fresh one is
    // lost. Nothing to replay on a virgin link.
    if (!L.LastDelivered.empty()) {
      ++L.Stats.Delivered;
      To.Inbox.push_back({Slot, L.LastDelivered});
    }
    break;
  }
  for (auto &Old : Flush) {
    L.LastDelivered = Old;
    ++L.Stats.Delivered;
    To.Inbox.push_back({Slot, std::move(Old)});
  }
  L.Stats.Faults = L.Injector.stats();
}

bool FleetSim::resyncChild(Aggregator &Agg, std::uint32_t Slot) {
  const FleetTopology::AggNode &Node = Topo.aggs()[Agg.Id];
  ++Agg.Stats.ResyncAttempts;
  if (Node.Level == 1) {
    LeafAgent &Leaf = *LeafAgents[Node.ChildLeaves[Slot]];
    if (Leaf.down())
      return false;
    // Pull path: a direct state fetch over the reliable control channel,
    // bypassing the lossy summary feed. The summary is rebuilt at the
    // current epoch, so a successful re-sync fully restores freshness.
    Agg.Merged.absorb(
        Leaf.emitSummary(Epoch, stableFractionBounds(), Config.TopKCapacity));
    return true;
  }
  const Aggregator &Child = *Aggs[Node.ChildAggs[Slot]];
  if (Child.StalledThisEpoch)
    return false; // A stalled process serves no pulls either.
  Agg.Merged.merge(Child.Merged);
  return true;
}

void FleetSim::runEpoch() {
  ++Epoch;

  // 1. Crash/restart at the epoch boundary. The crash draw is always
  //    consumed -- even for leaves already down -- so the schedule never
  //    depends on downstream effects.
  for (std::uint32_t L = 0; L < Topo.leaves(); ++L) {
    LeafAgent &Leaf = *LeafAgents[L];
    const bool Fires = CrashInjectors[L].nextFires();
    if (Leaf.down()) {
      if (Epoch >= DownUntil[L])
        Leaf.restart();
    } else if (Fires) {
      Leaf.crash();
      DownUntil[L] = Epoch + Plan.config().LeafRestartEpochs;
    }
  }

  // 2. Ingest: every leaf pulls its epoch's batches (discarded while
  //    down -- the front-end keeps sampling regardless).
  for (auto &Leaf : LeafAgents)
    Leaf->ingestEpoch();

  // 3. Live leaves emit summaries onto their uplinks.
  for (std::uint32_t L = 0; L < Topo.leaves(); ++L) {
    LeafAgent &Leaf = *LeafAgents[L];
    if (Leaf.down())
      continue;
    const FleetTopology::AggNode &Parent = Topo.aggs()[Topo.parentOfLeaf(L)];
    const auto SlotIt =
        std::find(Parent.ChildLeaves.begin(), Parent.ChildLeaves.end(), L);
    transmit(*Links[Topo.leafLink(L)],
             static_cast<std::uint32_t>(SlotIt - Parent.ChildLeaves.begin()),
             Codec::encodeMessage(Leaf.emitSummary(
                 Epoch, stableFractionBounds(), Config.TopKCapacity)),
             *Aggs[Parent.Id]);
  }

  // 4. Aggregators, bottom-up (ids ascend with level): drain the inbox,
  //    merge, re-sync missing children, forward upward.
  for (auto &AggPtr : Aggs) {
    Aggregator &Agg = *AggPtr;
    const FleetTopology::AggNode &Node = Topo.aggs()[Agg.Id];
    Agg.StalledThisEpoch = Agg.Stall.nextFires();
    if (Agg.StalledThisEpoch) {
      // A stalled node neither merges nor emits this epoch; queued
      // messages stay in the inbox for the next round.
      ++Agg.Stats.EpochsStalled;
      continue;
    }

    std::vector<bool> Heard(Agg.Children.size(), false);
    for (Aggregator::InMsg &Msg : Agg.Inbox) {
      ++Agg.Stats.MessagesIngested;
      bool Decoded = false;
      if (Node.Level == 1) {
        if (auto S = Codec::decodeMessage(Msg.Bytes)) {
          Agg.Merged.absorb(*S);
          Decoded = true;
        }
      } else {
        if (auto S = Codec::decodeState(Msg.Bytes)) {
          Agg.Merged.merge(*S);
          Decoded = true;
        }
      }
      if (Decoded)
        Heard[Msg.Slot] = true;
      else
        ++Agg.Stats.DecodeFailures;
    }
    Agg.Inbox.clear();

    // Freshness ledger + exponential-backoff re-sync. "Heard" means a
    // decodable message arrived this epoch, whatever its freshness --
    // missing children are a transport/liveness problem and get the pull
    // path; stale-but-delivered children are the semilattice's problem.
    for (std::uint32_t C = 0; C < Agg.Children.size(); ++C) {
      ChildSync &Sync = Agg.Children[C];
      if (Heard[C]) {
        Sync.LastHeardEpoch = Epoch;
        Sync.ConsecutiveMisses = 0;
        Sync.NextResyncEpoch = 0;
        continue;
      }
      ++Sync.ConsecutiveMisses;
      if (Sync.NextResyncEpoch == 0 || Epoch >= Sync.NextResyncEpoch) {
        if (resyncChild(Agg, C)) {
          ++Agg.Stats.ResyncSuccesses;
          Sync.LastHeardEpoch = Epoch;
          Sync.ConsecutiveMisses = 0;
          Sync.NextResyncEpoch = 0;
        } else {
          const std::uint64_t Shift = std::min(
              Sync.ConsecutiveMisses, Plan.config().ResyncBackoffCapLog2);
          Sync.NextResyncEpoch = Epoch + (1ULL << Shift);
        }
      }
    }

    if (Node.Parent != NoNode) {
      const FleetTopology::AggNode &Parent = Topo.aggs()[Node.Parent];
      const auto SlotIt = std::find(Parent.ChildAggs.begin(),
                                    Parent.ChildAggs.end(), Node.Id);
      transmit(*Links[Topo.aggLink(Agg.Id)],
               static_cast<std::uint32_t>(SlotIt - Parent.ChildAggs.begin()),
               Codec::encodeState(Agg.Merged), *Aggs[Node.Parent]);
    }
  }
}

void FleetSim::run(std::uint64_t N) {
  for (std::uint64_t I = 0; I < N; ++I)
    runEpoch();
}

const FleetSummary &FleetSim::rootState() const {
  return Aggs[Topo.root()]->Merged;
}

const LeafAgentStats &FleetSim::leafStats(LeafId Leaf) const {
  return LeafAgents[Leaf]->stats();
}

const AggregatorStats &FleetSim::aggStats(std::uint32_t Agg) const {
  return Aggs[Agg]->Stats;
}

const LinkStats &FleetSim::linkStats(std::uint32_t LinkId) const {
  return Links[LinkId]->Stats;
}

FleetView FleetSim::view() const {
  const FleetSummary &Root = Aggs[Topo.root()]->Merged;
  const std::uint64_t Horizon = Plan.config().MaxStalenessEpochs;
  // The bounded-staleness floor: entries below it leave coverage. The
  // expiry filter lives here, at view time -- never inside merge, which
  // must stay a pure semilattice join.
  const std::uint64_t MinEpoch =
      (Horizon == 0 || Epoch <= Horizon) ? 0 : Epoch - Horizon;

  FleetView V;
  V.Epoch = Epoch;
  V.LeavesTotal = Topo.leaves();
  for (const LeafSummary &S : Root.entries()) {
    if (MinEpoch > 0 && S.Epoch < MinEpoch) {
      ++V.LeavesExpired;
      continue;
    }
    ++V.LeavesPresent;
    V.MaxStaleness = std::max(V.MaxStaleness, Epoch - S.Epoch);
  }
  V.Rollup =
      rollup(Root, MinEpoch, stableFractionBounds(), Config.TopKCapacity);

  const FleetTopology::AggNode &RootNode = Topo.aggs()[Topo.root()];
  auto subtreeRow = [&](std::uint32_t Child, bool IsLeaf,
                        const std::vector<LeafId> &Leaves) {
    SubtreeView Row;
    Row.Child = Child;
    Row.ChildIsLeaf = IsLeaf;
    Row.LeavesExpected = Leaves.size();
    for (LeafId L : Leaves) {
      const LeafSummary *S = Root.find(L);
      if (!S || (MinEpoch > 0 && S->Epoch < MinEpoch))
        continue;
      ++Row.LeavesPresent;
      Row.MaxStaleness = std::max(Row.MaxStaleness, Epoch - S->Epoch);
    }
    V.Subtrees.push_back(Row);
  };
  if (RootNode.Level == 1) {
    for (LeafId L : RootNode.ChildLeaves)
      subtreeRow(L, /*IsLeaf=*/true, {L});
  } else {
    for (std::uint32_t A : RootNode.ChildAggs)
      subtreeRow(A, /*IsLeaf=*/false, Topo.aggs()[A].LeavesUnder);
  }
  return V;
}

void fleet::publishFleetMetrics(const FleetSim &Sim,
                                const obs::FleetInstruments &I) {
  const FleetTopology &Topo = Sim.topology();
  for (std::uint32_t L = 0; L < Topo.leaves(); ++L) {
    const LeafAgentStats &S = Sim.leafStats(L);
    obs::addTo(I.SummariesEmitted, S.SummariesEmitted);
    obs::addTo(I.LeafCrashes, S.Crashes);
    obs::addTo(I.LeafRestores, S.Restores);
    obs::addTo(I.LeafColdRestores, S.ColdRestores);
    obs::addTo(I.LeafBatchesDiscarded, S.BatchesDiscarded);
  }
  for (const FleetTopology::AggNode &N : Topo.aggs()) {
    const AggregatorStats &S = Sim.aggStats(N.Id);
    obs::addTo(I.DecodeFailures, S.DecodeFailures);
    obs::addTo(I.ResyncAttempts, S.ResyncAttempts);
    obs::addTo(I.ResyncSuccesses, S.ResyncSuccesses);
    obs::addTo(I.AggEpochsStalled, S.EpochsStalled);
  }
  const std::uint32_t NumLinks =
      Topo.leaves() + static_cast<std::uint32_t>(Topo.aggs().size());
  for (std::uint32_t LinkId = 0; LinkId < NumLinks; ++LinkId) {
    const LinkStats &S = Sim.linkStats(LinkId);
    obs::addTo(I.MessagesSent, S.Sent);
    obs::addTo(I.MessagesDelivered, S.Delivered);
    obs::addTo(I.MessagesDropped, S.Faults.Dropped);
    obs::addTo(I.MessagesDuplicated, S.Faults.Duplicated);
    obs::addTo(I.MessagesReordered, S.Faults.Reordered);
    obs::addTo(I.MessagesStale, S.Faults.Stale);
  }
  obs::addTo(I.BytesSent, Sim.bytesSent());

  const FleetView V = Sim.view();
  obs::setGauge(I.Epoch, static_cast<double>(V.Epoch));
  obs::setGauge(I.LeavesTotal, static_cast<double>(V.LeavesTotal));
  obs::setGauge(I.LeavesPresent, static_cast<double>(V.LeavesPresent));
  obs::setGauge(I.LeavesExpired, static_cast<double>(V.LeavesExpired));
  obs::setGauge(I.CoverageFraction, V.coverage());
  obs::setGauge(I.MaxStalenessEpochs, static_cast<double>(V.MaxStaleness));
  // Re-observe the merged distribution bucket by bucket: with identical
  // bounds each representative value lands back in its own bucket, so
  // the exported counts equal the rollup's exactly.
  if (I.StableFraction) {
    const MergeableHistogram &H = V.Rollup.StableHist;
    for (std::size_t B = 0; B < H.counts().size(); ++B) {
      const double Rep =
          B < H.bounds().size() ? H.bounds()[B] : H.bounds().back() + 1.0;
      for (std::uint64_t N = 0; N < H.counts()[B]; ++N)
        I.StableFraction->observe(Rep);
    }
  }
}

std::string FleetView::render() const {
  std::string Out;
  Out += "epoch " + std::to_string(Epoch) + ": " +
         std::to_string(LeavesPresent) + "/" + std::to_string(LeavesTotal) +
         " leaves in view (" + TextTable::percent(coverage()) +
         " coverage, " + std::to_string(LeavesExpired) +
         " expired), max staleness " + std::to_string(MaxStaleness) +
         " epoch(s)\n";
  Out += "  rollup: " + std::to_string(Rollup.Totals.Intervals) +
         " intervals, " + std::to_string(Rollup.Totals.PhaseChanges) +
         " phase changes, " + std::to_string(Rollup.Totals.ActiveRegions) +
         " regions (" + std::to_string(Rollup.Totals.StableRegions) +
         " stable), " + std::to_string(Rollup.Totals.Crashes) +
         " leaf crash(es)\n";

  TextTable Table;
  Table.header({"subtree", "leaves", "present", "staleness"});
  for (const SubtreeView &S : Subtrees)
    Table.row({(S.ChildIsLeaf ? "leaf " : "agg ") + std::to_string(S.Child),
               TextTable::count(S.LeavesExpected),
               TextTable::count(S.LeavesPresent),
               TextTable::count(S.MaxStaleness)});
  Out += Table.render();

  if (!Rollup.TopK.entries().empty()) {
    TextTable Top;
    Top.header({"stream", "region", "local changes"});
    std::size_t Shown = 0;
    for (const TopKEntry &E : Rollup.TopK.entries()) {
      if (++Shown > 8)
        break;
      Top.row({TextTable::count(E.Stream), TextTable::count(E.Region),
               TextTable::count(E.PhaseChanges)});
    }
    Out += "  most unstable regions:\n" + Top.render();
  }
  return Out;
}
