//===- fleet/Summary.h - Mergeable fleet rollup summaries ------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The summary algebra of the fleet aggregation tree (DESIGN.md §14).
/// Everything above a leaf operates on these types only -- never raw
/// samples -- so the rollup cost is a function of the tree, not of ingest
/// volume. Three mergeable building blocks:
///
///  * \ref LeafStats -- exact per-leaf counters, merged by addition;
///  * \ref MergeableHistogram -- fixed-bound bucket counts, merged by
///    elementwise addition;
///  * \ref TopKSketch -- a deterministic bounded sketch of the most
///    phase-unstable (stream, region) pairs, merged by key union with
///    max-on-collision and rank truncation.
///
/// The unit that actually travels up the tree is \ref FleetSummary: a map
/// from leaf id to that leaf's latest epoch-stamped \ref LeafSummary.
/// Its merge is a *join-semilattice*: per leaf, the entry with the higher
/// epoch wins (a last-writer-wins register keyed by epoch). That makes
/// merge associative, commutative, and idempotent **by construction**, so
/// the summary transport may drop, duplicate, reorder, or replay stale
/// messages and the merged state is still a pure function of the set of
/// freshest entries that got through -- the algebra, not the network,
/// carries the correctness argument. Every merge function is REGMON_PURE:
/// regmon-lint's call-graph purity rule proves the whole merge path free
/// of clocks, I/O, and global writes (replay-stability is checkable, not
/// aspirational).
///
/// The TopKSketch truncation deserves one note: rank truncation after a
/// union is associative as long as colliding keys never *increase* a
/// count (max-on-collision guarantees that). Dropping a key means C
/// entries beat it; those entries survive into every later merge and
/// still beat it there, so early truncation and late truncation agree.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_FLEET_SUMMARY_H
#define REGMON_FLEET_SUMMARY_H

#include "support/Contracts.h"

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace regmon::fleet {

/// Identifies one leaf (one MonitorService shard of the fleet).
using LeafId = std::uint32_t;

/// Exact per-leaf counters, summed at view time across the freshest
/// per-leaf entries. Merged by addition: associative and commutative;
/// duplicate suppression is the FleetSummary semilattice's job, so plain
/// sums are safe here.
struct LeafStats {
  std::uint64_t Streams = 0;
  std::uint64_t BatchesProcessed = 0;
  std::uint64_t Intervals = 0;
  std::uint64_t PhaseChanges = 0;
  std::uint64_t FormationTriggers = 0;
  std::uint64_t ActiveRegions = 0;
  std::uint64_t StableRegions = 0;
  std::uint64_t TotalSamples = 0;
  std::uint64_t UcrSamples = 0;
  std::uint64_t QuarantinedStreams = 0;
  /// Times this leaf crashed and re-entered through the persist ladder.
  std::uint64_t Crashes = 0;

  /// Adds \p Other into this. Associative and commutative.
  REGMON_PURE void merge(const LeafStats &Other);

  bool operator==(const LeafStats &) const = default;
};

/// A histogram over fixed, construction-time bucket bounds whose merge is
/// elementwise addition. The canonical fleet instance buckets per-region
/// stable-time fractions (see \ref stableFractionBounds), answering "what
/// fraction of monitored regions fleet-wide is phase-stable how often?".
class MergeableHistogram {
public:
  MergeableHistogram() = default;

  /// Creates a histogram with \p UpperBounds (ascending); an implicit
  /// +Inf bucket catches everything above the last bound.
  explicit MergeableHistogram(std::vector<double> UpperBounds);

  /// Counts \p X into its bucket.
  void add(double X);

  /// Merges \p Other's counts in. Bounds must be identical (summaries of
  /// one fleet share one canonical shape); mismatched shapes are a config
  /// error, asserted in debug and absorbed as a no-op in release.
  REGMON_PURE void merge(const MergeableHistogram &Other);

  std::span<const double> bounds() const { return Upper; }
  std::span<const std::uint64_t> counts() const { return Buckets; }
  std::uint64_t total() const { return Total; }

  bool operator==(const MergeableHistogram &) const = default;

private:
  friend class Codec;
  std::vector<double> Upper;
  std::vector<std::uint64_t> Buckets; ///< Upper.size() + 1 (+Inf bucket)
  std::uint64_t Total = 0;
};

/// The canonical bucket bounds for per-region stable-fraction summaries.
std::vector<double> stableFractionBounds();

/// One entry of the top-K-unstable sketch: a (stream, region) pair and
/// its lifetime phase-change count. Streams are globally numbered across
/// the fleet, so keys are unique to one leaf and never collide between
/// sibling summaries.
struct TopKEntry {
  std::uint32_t Stream = 0;
  std::uint32_t Region = 0;
  std::uint64_t PhaseChanges = 0;

  bool operator==(const TopKEntry &) const = default;
};

/// Canonical ordering: most phase changes first, ties broken by
/// ascending (stream, region) so equal-count entries rank identically on
/// every node and every replay.
REGMON_PURE bool topKBefore(const TopKEntry &A, const TopKEntry &B);

/// A deterministic bounded sketch of the most phase-unstable regions.
/// Holds at most \ref capacity entries in canonical order. Merge is key
/// union with max-on-collision followed by rank truncation: associative
/// (keys only ever lose rank as more entries union in), commutative (set
/// semantics), and idempotent (max, not sum, on collision).
class TopKSketch {
public:
  TopKSketch() = default;
  explicit TopKSketch(std::uint32_t Capacity) : Cap(Capacity) {}

  /// Inserts or refreshes one entry (max-on-collision), then truncates.
  void add(const TopKEntry &E);

  /// Merges \p Other in. Capacities must match (one canonical fleet
  /// shape); asserted in debug, no-op on mismatch in release.
  REGMON_PURE void merge(const TopKSketch &Other);

  /// Returns the entries in canonical order (size() <= capacity()).
  std::span<const TopKEntry> entries() const { return Entries; }
  std::uint32_t capacity() const { return Cap; }

  bool operator==(const TopKSketch &) const = default;

private:
  friend class Codec;
  std::uint32_t Cap = 32;
  std::vector<TopKEntry> Entries; ///< canonical order, truncated to Cap
};

/// One leaf's rollup at one epoch -- the payload of every message on the
/// tree. Built by the leaf from its MonitorService state; immutable once
/// emitted.
struct LeafSummary {
  LeafId Leaf = 0;
  /// The leaf's ingest epoch when the summary was built. The semilattice
  /// key: a higher epoch for the same leaf supersedes, a lower one is
  /// stale and ignored.
  std::uint64_t Epoch = 0;
  LeafStats Stats;
  /// Per-region stable-fraction distribution of this leaf's regions.
  MergeableHistogram StableHist;
  /// This leaf's most phase-unstable (stream, region) pairs.
  TopKSketch TopK;

  bool operator==(const LeafSummary &) const = default;
};

/// The mergeable state of any node above a leaf: the freshest known
/// LeafSummary per leaf, kept sorted by leaf id (deterministic iteration
/// and byte-stable encoding -- never hash order).
///
/// merge() is the tree's one aggregation operator, and it is a proper
/// join-semilattice: associative, commutative, idempotent (FleetTest
/// proves all three over random permutations and tree shapes).
class FleetSummary {
public:
  /// Inserts \p S, keeping it only if it is fresher than (or first for)
  /// its leaf. Returns true when the entry advanced.
  REGMON_PURE bool absorb(const LeafSummary &S);

  /// Semilattice join with \p Other: per leaf, the higher epoch wins.
  REGMON_PURE void merge(const FleetSummary &Other);

  /// Entries in ascending leaf-id order.
  std::span<const LeafSummary> entries() const { return Entries; }

  /// Returns the entry for \p Leaf, or nullptr.
  const LeafSummary *find(LeafId Leaf) const;

  std::size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }
  void clear() { Entries.clear(); }

  bool operator==(const FleetSummary &) const = default;

private:
  friend class Codec;
  std::vector<LeafSummary> Entries; ///< sorted by Leaf, unique
};

/// The reduction of a FleetSummary at view time: exact sums over the
/// freshest (non-expired) per-leaf entries plus the merged histogram and
/// sketch. Not itself transported -- recomputed wherever a view is taken.
struct FleetRollup {
  LeafStats Totals;
  MergeableHistogram StableHist;
  TopKSketch TopK;
};

/// Reduces the entries of \p Summary whose epoch is >= \p MinEpoch
/// (pass 0 to include everything). \p HistBounds and \p TopKCap give the
/// canonical shapes for the merged histogram and sketch.
REGMON_PURE FleetRollup rollup(const FleetSummary &Summary,
                               std::uint64_t MinEpoch,
                               std::vector<double> HistBounds,
                               std::uint32_t TopKCap);

} // namespace regmon::fleet

#endif // REGMON_FLEET_SUMMARY_H
