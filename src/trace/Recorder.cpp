//===- trace/Recorder.cpp - Crash-safe flight recorder --------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/Recorder.h"

using namespace regmon;
using namespace regmon::trace;

TraceRecorder::~TraceRecorder() { close(); }

TraceRecorder::OpenResult TraceRecorder::open(const std::string &Path,
                                              persist::CrashPoint *Crash) {
  close();
  OpenResult Out;
  NextSeq = 1;
  RecordsN = 0;
  BytesN = 0;
  FailuresN = 0;
  const ScanResult Scan = scanTraceFile(Path);
  if (!Scan.repairable() && !Scan.Missing)
    return Out; // foreign data (wrong magic/version/unknown kind)
  const bool Fresh = Scan.Missing || Scan.FileBytes == 0 || Scan.HeaderTorn;
  std::uint64_t Keep = Fresh ? 0 : Scan.ValidBytes;
  if (!Scan.Missing && Keep != Scan.FileBytes) {
    // Torn or malformed tail (or a header the recorder died inside):
    // truncate to the valid prefix so appends extend a clean file.
    if (!persist::truncateFile(Path, Keep, Crash))
      return Out;
    Out.Repaired = true;
  }
  Sink = std::make_unique<persist::FileSink>(Path, /*Append=*/Keep != 0,
                                             Crash);
  if (Keep == 0) {
    persist::ByteWriter W;
    encodeTraceHeader(W);
    if (!Sink->write(W.data()) || !Sink->flush()) {
      Sink.reset();
      return Out;
    }
    BytesN += TraceHeaderBytes;
    Keep = TraceHeaderBytes;
    Out.Created = true;
  } else if (!Sink->ok()) {
    Sink.reset();
    return Out;
  }
  NextSeq = Scan.LastSeq + 1;
  Out.Ok = true;
  Out.ValidBytes = Keep;
  Out.NextSeq = NextSeq;
  return Out;
}

bool TraceRecorder::ok() const { return Sink && Sink->ok(); }

bool TraceRecorder::close() {
  if (!Sink)
    return true;
  const bool Closed = Sink->close();
  Sink.reset();
  return Closed;
}

std::uint64_t TraceRecorder::append(RecordKind Kind,
                                    std::span<const std::uint8_t> Payload) {
  // The sequence is consumed even when the append fails: batches stamped
  // after the recorder dies must still get unique identities.
  const std::uint64_t Seq = NextSeq++;
  if (!ok()) {
    ++FailuresN;
    obs::addTo(Obs ? Obs->AppendFailures : nullptr);
    return Seq;
  }
  const std::uint8_t RawKind = static_cast<std::uint8_t>(Kind);
  persist::ByteWriter W;
  W.reserve(TraceRecordHeaderBytes + Payload.size());
  W.u64(Seq);
  W.u8(RawKind);
  W.u32(static_cast<std::uint32_t>(Payload.size()));
  W.u32(traceRecordCrc(Seq, RawKind, Payload));
  W.bytes(Payload);
  // Flush before acknowledging, the journal's durability idiom: an
  // acknowledged record survives a process death; a death mid-write
  // leaves a torn tail the next open repairs.
  if (!Sink->write(W.data()) || !Sink->flush()) {
    ++FailuresN;
    obs::addTo(Obs ? Obs->AppendFailures : nullptr);
    return Seq;
  }
  ++RecordsN;
  BytesN += W.size();
  obs::addTo(Obs ? Obs->RecordsTotal : nullptr);
  obs::addTo(Obs ? Obs->BytesTotal : nullptr, W.size());
  return Seq;
}

void TraceRecorder::recordConfig(std::span<const std::uint8_t> Fingerprint) {
  append(RecordKind::Config, Fingerprint);
}

std::uint64_t TraceRecorder::recordBatch(const service::SampleBatch &Batch,
                                         service::RecordedFate Fate) {
  persist::ByteWriter W;
  encodeBatchRecordPayload(W, Batch, Fate);
  return append(RecordKind::Batch, W.data());
}

void TraceRecorder::recordDrop(std::uint64_t EvictedSeq, std::uint64_t Shard) {
  persist::ByteWriter W;
  encodeDropPayload(W, EvictedSeq, Shard);
  const std::uint64_t Before = RecordsN;
  append(RecordKind::Drop, W.data());
  if (RecordsN != Before)
    obs::addTo(Obs ? Obs->RecordsDropped : nullptr);
}

void TraceRecorder::recordPushReject(std::uint64_t Seq) {
  persist::ByteWriter W;
  encodePushRejectPayload(W, Seq);
  append(RecordKind::PushReject, W.data());
}

void TraceRecorder::recordCheckpoint(std::uint64_t JournalSeq,
                                     bool Committed) {
  persist::ByteWriter W;
  encodeCheckpointPayload(W, JournalSeq, Committed);
  append(RecordKind::Checkpoint, W.data());
}
