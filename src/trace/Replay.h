//===- trace/Replay.h - Bit-identical incident replay ----------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replay driver: re-executes a scanned trace against a fresh
/// worker-less (Inline) \ref service::MonitorService so the replayed
/// run's monitors, counters and obs exports are byte-identical to the
/// recorded run's. The invariants this rests on:
///
///  * per-stream record order equals per-stream admission order (the
///    recorder runs under the service's serialization), so re-running
///    the health machine in file order reproduces every per-stream
///    decision -- and each re-derived decision is cross-checked against
///    the recorded fate, so a divergence is detected, never silently
///    absorbed;
///  * timing-dependent outcomes (DropOldest evictions, rejected pushes)
///    are applied from their records via a pre-pass, not re-raced;
///  * aggregate counters are order-independent sums, and event stamps
///    use per-stream logical clocks, so the single-threaded replay of a
///    multi-threaded recording exports the same bytes.
///
/// A trace with a torn tail replays its valid prefix -- that is the
/// crash-tolerance contract, not an error.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_TRACE_REPLAY_H
#define REGMON_TRACE_REPLAY_H

#include "trace/Reader.h"

#include <cstdint>
#include <string>

namespace regmon::trace {

/// Replay tuning.
struct ReplayConfig {
  /// Re-run checkpoint attempts at their recorded points (requires the
  /// replaying service to have persistence attached). Off by default:
  /// most replays only want the in-memory state back.
  bool ApplyCheckpoints = false;
  /// Byte-compare the trace's Config record against the replaying
  /// service's fingerprint before applying anything. Leave on: a replay
  /// under a different configuration diverges in ways that are much
  /// harder to diagnose downstream.
  bool RequireConfigMatch = true;
};

/// What \ref replayRecords did.
struct ReplayResult {
  /// The whole prefix applied with every cross-check passing.
  bool Ok = false;
  /// The Config record is absent or does not match the service.
  bool ConfigMismatch = false;
  /// A record contradicted the re-derived decision sequence (or carried
  /// a dangling drop/push-reject reference); replay stopped there.
  bool Diverged = false;
  /// Sequence number of the diverging record (0 when none).
  std::uint64_t DivergedSeq = 0;
  std::uint64_t BatchesApplied = 0;
  std::uint64_t DropsApplied = 0;
  std::uint64_t PushRejectsApplied = 0;
  std::uint64_t CheckpointsSeen = 0;
  std::uint64_t CheckpointsApplied = 0;
};

/// Replays \p Scan's records against \p Service, which must be
/// configured Inline with the recorded topology and not yet started (the
/// driver starts it, applies every record, then stops it, leaving the
/// monitors quiescent for inspection/export).
ReplayResult replayRecords(const ScanResult &Scan,
                           service::MonitorService &Service,
                           const ReplayConfig &Cfg = {});

/// Scan + replay of \p Path in one call.
struct FileReplay {
  ScanResult Scan;
  ReplayResult Replay;
};
FileReplay replayTraceFile(const std::string &Path,
                           service::MonitorService &Service,
                           const ReplayConfig &Cfg = {});

} // namespace regmon::trace

#endif // REGMON_TRACE_REPLAY_H
