//===- trace/Recorder.h - Crash-safe flight recorder -----------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The writing half of the flight recorder: a \ref service::BatchRecorder
/// that appends each recorded decision as one trace record, flushed
/// before the append is acknowledged. \ref open repairs a torn tail left
/// by a previous kill (truncating to the scanner's valid prefix, the
/// journal's repair idiom) and resumes the sequence after the last valid
/// record, so a recording can survive any number of mid-write deaths with
/// the surviving prefix always replayable.
///
/// The recorder is an *observer*: an append failure (real I/O error or an
/// injected \ref persist::CrashPoint exhaustion) latches it dead and
/// every later call degrades to counting the failure -- the recorded
/// service keeps running, it just stops gaining black-box coverage. This
/// is the opposite of the write-ahead journal's contract (which refuses
/// work it cannot make durable): losing trace tail is acceptable, losing
/// ingest is not.
///
/// Callers serialize all calls (MonitorService does); the class itself is
/// single-owner like everything else in the deterministic layers.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_TRACE_RECORDER_H
#define REGMON_TRACE_RECORDER_H

#include "obs/Instruments.h"
#include "persist/Io.h"
#include "trace/Reader.h"

#include <cstdint>
#include <memory>
#include <span>
#include <string>

namespace regmon::trace {

/// Appends trace records to a file, one flushed write per record.
class TraceRecorder final : public service::BatchRecorder {
public:
  /// What \ref open found and did.
  struct OpenResult {
    bool Ok = false;       ///< The recorder accepts appends.
    bool Created = false;  ///< Fresh file; the header was written.
    bool Repaired = false; ///< A torn/damaged tail was truncated away.
    /// Valid prefix length after repair (the resume point).
    std::uint64_t ValidBytes = 0;
    /// First sequence number new appends will use.
    std::uint64_t NextSeq = 0;
  };

  TraceRecorder() = default;
  ~TraceRecorder() override;

  TraceRecorder(const TraceRecorder &) = delete;
  TraceRecorder &operator=(const TraceRecorder &) = delete;

  /// Opens \p Path for recording. A missing or empty file is created
  /// with a fresh header; an intact file is extended from LastSeq + 1; a
  /// repairable file (torn tail, malformed payload, torn header) is
  /// truncated to its valid prefix first. Refuses files whose header
  /// bytes are not ours (wrong magic or version) or that contain an
  /// unknown record kind: both mean a different writer's data, which a
  /// repair would destroy. \p Crash (nullable) gates every byte and
  /// metadata operation, CrashRecoveryTest-style.
  OpenResult open(const std::string &Path, persist::CrashPoint *Crash = nullptr);

  /// True while appends can succeed.
  bool ok() const;

  /// Flushes and closes; false if any step failed. Safe when never
  /// opened. The recorder can be \ref open-ed again afterwards.
  bool close();

  /// Wires the flight-recorder counters (nullable; see obs/Instruments.h).
  void attachObservability(const obs::TraceInstruments *Instruments) {
    Obs = Instruments;
  }

  // BatchRecorder tap (called by MonitorService under its serialization).
  void recordConfig(std::span<const std::uint8_t> Fingerprint) override;
  std::uint64_t recordBatch(const service::SampleBatch &Batch,
                            service::RecordedFate Fate) override;
  void recordDrop(std::uint64_t EvictedSeq, std::uint64_t Shard) override;
  void recordPushReject(std::uint64_t Seq) override;
  void recordCheckpoint(std::uint64_t JournalSeq, bool Committed) override;

  /// Records appended successfully since \ref open.
  std::uint64_t recordsWritten() const { return RecordsN; }
  /// Bytes appended successfully since \ref open (headers included).
  std::uint64_t bytesWritten() const { return BytesN; }
  /// Appends that failed (the first one latches the recorder dead).
  std::uint64_t appendFailures() const { return FailuresN; }
  /// The sequence number the next append will consume.
  std::uint64_t nextSequence() const { return NextSeq; }

private:
  /// Appends one record, consuming (and returning) the next sequence
  /// number whether or not the write succeeds -- stamped sequences stay
  /// unique even across a dead recorder.
  std::uint64_t append(RecordKind Kind, std::span<const std::uint8_t> Payload);

  std::unique_ptr<persist::FileSink> Sink;
  const obs::TraceInstruments *Obs = nullptr;
  std::uint64_t NextSeq = 1;
  std::uint64_t RecordsN = 0;
  std::uint64_t BytesN = 0;
  std::uint64_t FailuresN = 0;
};

} // namespace regmon::trace

#endif // REGMON_TRACE_RECORDER_H
