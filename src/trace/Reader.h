//===- trace/Reader.h - Total trace scanner --------------------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trust boundary of the flight recorder: a scanner that turns an
/// arbitrary byte string into the longest valid prefix of decoded trace
/// records plus a precise diagnosis of why the scan stopped. It is total
/// -- every truncation, bit flip, version skew, hostile length and
/// unknown kind yields flags on \ref ScanResult, never undefined
/// behaviour -- and it trusts the longest valid prefix exactly like the
/// journal replayer (persist/Journal.h): \ref ScanResult::ValidBytes is
/// the repair point a recorder truncates to before appending again.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_TRACE_READER_H
#define REGMON_TRACE_READER_H

#include "trace/Format.h"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace regmon::trace {

/// One decoded record. Which fields are meaningful depends on Kind.
struct TraceRecord {
  std::uint64_t Seq = 0;
  RecordKind Kind = RecordKind::Config;
  /// Batch records: the fate and the batch (TraceSeq == Seq).
  service::RecordedFate Fate = service::RecordedFate::Admitted;
  service::SampleBatch Batch;
  /// Config records: the opaque fingerprint bytes.
  std::vector<std::uint8_t> Config;
  /// Drop: the evicted batch's seq. PushReject: the rejected batch's
  /// seq. Checkpoint: the journal seq of the attempt.
  std::uint64_t RefSeq = 0;
  /// Drop records: the shard whose queue evicted.
  std::uint64_t Shard = 0;
  /// Checkpoint records: whether the commit succeeded.
  bool Committed = false;
};

/// Outcome of scanning trace bytes: the decoded valid prefix plus why the
/// scan ended. At most one of the failure flags is set.
struct ScanResult {
  std::vector<TraceRecord> Records;
  /// Byte length of the valid prefix (file header included once it is
  /// intact); the repair point.
  std::uint64_t ValidBytes = 0;
  /// Highest sequence number in the valid prefix.
  std::uint64_t LastSeq = 0;
  /// Total input length, so callers can tell "intact" from "repairable".
  std::uint64_t FileBytes = 0;
  /// A torn or corrupt record (short header, hostile length, CRC
  /// mismatch, non-increasing seq) ended the scan. Repairable: truncate
  /// to ValidBytes.
  bool TornTail = false;
  /// A CRC-valid record carried a kind this reader does not know. The
  /// bytes are from a newer writer, not corruption: a recorder refuses
  /// to repair (truncating would destroy someone else's valid data).
  bool UnknownKind = false;
  /// A CRC-valid record's payload failed structural decode (writer bug
  /// or forged CRC). Repairable like a torn tail.
  bool MalformedPayload = false;
  /// Fewer than TraceHeaderBytes bytes: a recorder died inside the file
  /// header. Repairable to an empty file (no record was ever valid).
  bool HeaderTorn = false;
  /// The magic is wrong: not a trace file. Never repaired.
  bool HeaderCorrupt = false;
  /// The version is not ours. Never repaired.
  bool VersionSkew = false;
  /// The file does not exist (scanTraceFile only).
  bool Missing = false;

  /// True when the input is a complete well-formed trace.
  bool intact() const {
    return !TornTail && !UnknownKind && !MalformedPayload && !HeaderTorn &&
           !HeaderCorrupt && !VersionSkew && !Missing;
  }
  /// True when truncating to ValidBytes yields an intact trace (and a
  /// recorder may then append to it).
  bool repairable() const {
    return !UnknownKind && !HeaderCorrupt && !VersionSkew && !Missing;
  }
};

/// Scans \p Bytes. Total over arbitrary input.
ScanResult scanTraceBytes(std::span<const std::uint8_t> Bytes);

/// Reads and scans \p Path; Missing is set when the file cannot be read.
ScanResult scanTraceFile(const std::string &Path);

} // namespace regmon::trace

#endif // REGMON_TRACE_READER_H
