//===- trace/Replay.cpp - Bit-identical incident replay -------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/Replay.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

using namespace regmon;
using namespace regmon::trace;

namespace {

/// One drop/push-reject reference, kept for the cross-checks: every
/// reference must name an earlier *admitted* batch, and no batch can be
/// both dropped and push-rejected (or either one twice).
struct RefRec {
  std::uint64_t Ref = 0; ///< the referenced batch's trace seq
  std::uint64_t At = 0;  ///< the referencing record's trace seq
  bool IsDrop = false;
};

} // namespace

ReplayResult regmon::trace::replayRecords(const ScanResult &Scan,
                                          service::MonitorService &Service,
                                          const ReplayConfig &Cfg) {
  assert(Service.config().Inline &&
         "replay drives a worker-less (Inline) service");
  ReplayResult Out;
  if (Scan.Records.empty()) {
    Out.Ok = true; // a fresh trace replays to a fresh service
    return Out;
  }
  if (Cfg.RequireConfigMatch &&
      (Scan.Records.front().Kind != RecordKind::Config ||
       Scan.Records.front().Config != Service.configFingerprint())) {
    Out.ConfigMismatch = true;
    return Out;
  }
  // Pre-pass: resolve the timing-dependent outcomes. Applied at each
  // batch's own position (the aggregate accounting is order-independent,
  // and the eviction's only state effect is "this batch never reached a
  // worker").
  std::vector<std::uint64_t> AdmittedSeqs;
  for (const TraceRecord &R : Scan.Records)
    if (R.Kind == RecordKind::Batch &&
        R.Fate == service::RecordedFate::Admitted)
      AdmittedSeqs.push_back(R.Seq); // scan order: already ascending
  std::vector<RefRec> Refs;
  for (const TraceRecord &R : Scan.Records)
    if (R.Kind == RecordKind::Drop || R.Kind == RecordKind::PushReject)
      Refs.push_back({R.RefSeq, R.Seq, R.Kind == RecordKind::Drop});
  std::sort(Refs.begin(), Refs.end(),
            [](const RefRec &A, const RefRec &B) { return A.Ref < B.Ref; });
  for (std::uint64_t I = 0; I < Refs.size(); ++I) {
    const bool Duplicate = I > 0 && Refs[I].Ref == Refs[I - 1].Ref;
    const bool Known = std::binary_search(AdmittedSeqs.begin(),
                                          AdmittedSeqs.end(), Refs[I].Ref);
    if (Duplicate || !Known) {
      Out.Diverged = true;
      Out.DivergedSeq = Refs[I].At;
      return Out;
    }
  }
  std::vector<std::uint64_t> DroppedSeqs;
  std::vector<std::uint64_t> PushRejectSeqs;
  for (const RefRec &R : Refs)
    (R.IsDrop ? DroppedSeqs : PushRejectSeqs).push_back(R.Ref);
  // Drive. The service must not have been started by the caller; replay
  // owns the start/stop cycle so the monitors end quiescent.
  if (!Service.running())
    Service.start();
  for (const TraceRecord &R : Scan.Records) {
    switch (R.Kind) {
    case RecordKind::Config:
      if (R.Seq != Scan.Records.front().Seq) {
        // A second Config record would mean a multi-segment recording;
        // this driver replays single-segment traces only.
        Out.Diverged = true;
        Out.DivergedSeq = R.Seq;
      }
      break;
    case RecordKind::Batch: {
      const bool Dropped = std::binary_search(DroppedSeqs.begin(),
                                              DroppedSeqs.end(), R.Seq);
      const bool PushFailed = std::binary_search(
          PushRejectSeqs.begin(), PushRejectSeqs.end(), R.Seq);
      if (!Service.applyRecorded(R.Batch, R.Fate, Dropped, PushFailed)) {
        Out.Diverged = true;
        Out.DivergedSeq = R.Seq;
        break;
      }
      ++Out.BatchesApplied;
      break;
    }
    case RecordKind::Drop:
      ++Out.DropsApplied; // consumed at the referenced batch already
      break;
    case RecordKind::PushReject:
      ++Out.PushRejectsApplied;
      break;
    case RecordKind::Checkpoint:
      ++Out.CheckpointsSeen;
      if (Cfg.ApplyCheckpoints) {
        if (Service.checkpoint())
          ++Out.CheckpointsApplied;
        else if (R.Committed) {
          // The original commit succeeded; a replay environment that
          // cannot commit is not reproducing the run.
          Out.Diverged = true;
          Out.DivergedSeq = R.Seq;
        }
      }
      break;
    }
    if (Out.Diverged)
      break;
  }
  Service.stop();
  Out.Ok = !Out.Diverged && !Out.ConfigMismatch;
  return Out;
}

FileReplay regmon::trace::replayTraceFile(const std::string &Path,
                                          service::MonitorService &Service,
                                          const ReplayConfig &Cfg) {
  FileReplay Out;
  Out.Scan = scanTraceFile(Path);
  Out.Replay = replayRecords(Out.Scan, Service, Cfg);
  return Out;
}
