//===- trace/Format.h - Flight-recorder binary trace format ----*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The black-box flight recorder's on-disk format: a versioned
/// little-endian container capturing every decision a MonitorService run
/// took, so an incident replays bit-identically. Layout:
///
///     u32 magic 'RGTF'   u32 version
///     repeated records: [ u64 seq | u8 kind | u32 len | u32 crc | bytes ]
///
/// Sequence numbers are assigned consecutively from 1 across *all* record
/// kinds -- the file order is the recorded decision order. The record CRC
/// binds seq, kind and length together with the payload (the journal's
/// idiom, persist/Journal.h), so a bit flip anywhere in a record is
/// detected, never replayed with silently wrong framing. Each append is
/// flushed before it is acknowledged; a crash mid-append leaves a torn
/// tail the reader detects and the recorder repairs on reopen.
///
/// Record kinds and payloads (all little-endian, persist/Bytes.h):
///
///   Config (1)     opaque configuration fingerprint bytes
///                  (service::MonitorService::configFingerprint); replay
///                  byte-compares it against the replaying service.
///   Batch (2)      u8 fate | u32 stream | u64 count
///                  | count x (u64 pc | u64 time | u8 dcacheMiss)
///                  -- one submitted batch plus the admission decision
///                  (service::RecordedFate) taken for it.
///   Drop (3)       u64 evictedSeq | u64 shard -- a DropOldest eviction
///                  of the batch recorded at evictedSeq.
///   PushReject (4) u64 seq -- a push rejected after the door check.
///   Checkpoint (5) u64 journalSeq | u8 committed -- a checkpoint
///                  attempt at that journal sequence.
///
/// Decoding is *total*: every payload decoder bounds-checks lengths and
/// counts against the bytes present, rejects out-of-range enums and
/// non-0/1 booleans, and requires exact consumption -- hostile input can
/// only produce a clean error, never undefined behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_TRACE_FORMAT_H
#define REGMON_TRACE_FORMAT_H

#include "persist/Bytes.h"
#include "service/MonitorService.h"

#include <cstdint>
#include <span>

namespace regmon::trace {

/// 'RGTF' in little-endian byte order.
inline constexpr std::uint32_t TraceMagic = 0x46544752U;
inline constexpr std::uint32_t TraceVersion = 1;

/// Byte length of the file header (magic + version).
inline constexpr std::uint64_t TraceHeaderBytes = 8;
/// Byte length of one record header (seq + kind + len + crc).
inline constexpr std::uint64_t TraceRecordHeaderBytes = 17;
/// Wire size of one sample inside a Batch payload.
inline constexpr std::uint64_t TraceSampleWireBytes = 17;

/// What one trace record captures. Values are part of the wire format.
enum class RecordKind : std::uint8_t {
  Config = 1,     ///< Service configuration fingerprint (first record).
  Batch = 2,      ///< One submitted batch + its admission fate.
  Drop = 3,       ///< DropOldest eviction of an earlier admitted batch.
  PushReject = 4, ///< Push rejected after the door check.
  Checkpoint = 5, ///< Checkpoint attempt marker.
};

/// Returns a short identifier for reports.
const char *toString(RecordKind K);

/// The CRC stored in a trace record: seq, kind and length chained with
/// the payload, so header corruption is as detectable as payload
/// corruption. Shared by the recorder and the scanner.
std::uint32_t traceRecordCrc(std::uint64_t Seq, std::uint8_t Kind,
                             std::span<const std::uint8_t> Payload);

/// Appends the file header (magic + version) to \p W.
void encodeTraceHeader(persist::ByteWriter &W);

/// Appends a Batch payload: the fate, then the batch bytes in the
/// journal's sample encoding.
void encodeBatchRecordPayload(persist::ByteWriter &W,
                              const service::SampleBatch &Batch,
                              service::RecordedFate Fate);

/// Decodes a Batch payload. False on any structural violation (bad fate,
/// hostile count, short payload, trailing bytes); \p Batch may be
/// partially written then. TraceSeq is left for the caller to stamp.
bool decodeBatchRecordPayload(persist::ByteReader &R,
                              service::SampleBatch &Batch,
                              service::RecordedFate &Fate);

/// Appends a Drop payload.
void encodeDropPayload(persist::ByteWriter &W, std::uint64_t EvictedSeq,
                       std::uint64_t Shard);
/// Decodes a Drop payload; false on structural violation.
bool decodeDropPayload(persist::ByteReader &R, std::uint64_t &EvictedSeq,
                       std::uint64_t &Shard);

/// Appends a PushReject payload.
void encodePushRejectPayload(persist::ByteWriter &W, std::uint64_t Seq);
/// Decodes a PushReject payload; false on structural violation.
bool decodePushRejectPayload(persist::ByteReader &R, std::uint64_t &Seq);

/// Appends a Checkpoint payload.
void encodeCheckpointPayload(persist::ByteWriter &W, std::uint64_t JournalSeq,
                             bool Committed);
/// Decodes a Checkpoint payload; false on structural violation.
bool decodeCheckpointPayload(persist::ByteReader &R, std::uint64_t &JournalSeq,
                             bool &Committed);

} // namespace regmon::trace

#endif // REGMON_TRACE_FORMAT_H
