//===- trace/Reader.cpp - Total trace scanner -----------------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/Reader.h"

#include "persist/Io.h"

using namespace regmon;
using namespace regmon::trace;

namespace {

enum class BodyDecode : std::uint8_t { Ok, Unknown, Malformed };

/// Decodes one CRC-valid record body into \p Out. Total: hostile bytes
/// can only produce Unknown or Malformed.
BodyDecode decodeBody(std::uint64_t Seq, std::uint8_t RawKind,
                      std::span<const std::uint8_t> Payload,
                      TraceRecord &Out) {
  Out.Seq = Seq;
  persist::ByteReader R(Payload);
  switch (RawKind) {
  case static_cast<std::uint8_t>(RecordKind::Config):
    Out.Kind = RecordKind::Config;
    Out.Config.assign(Payload.begin(), Payload.end());
    return BodyDecode::Ok;
  case static_cast<std::uint8_t>(RecordKind::Batch):
    Out.Kind = RecordKind::Batch;
    if (!decodeBatchRecordPayload(R, Out.Batch, Out.Fate))
      return BodyDecode::Malformed;
    Out.Batch.TraceSeq = Seq;
    return BodyDecode::Ok;
  case static_cast<std::uint8_t>(RecordKind::Drop):
    Out.Kind = RecordKind::Drop;
    if (!decodeDropPayload(R, Out.RefSeq, Out.Shard) || Out.RefSeq >= Seq)
      return BodyDecode::Malformed;
    return BodyDecode::Ok;
  case static_cast<std::uint8_t>(RecordKind::PushReject):
    Out.Kind = RecordKind::PushReject;
    if (!decodePushRejectPayload(R, Out.RefSeq) || Out.RefSeq >= Seq)
      return BodyDecode::Malformed;
    return BodyDecode::Ok;
  case static_cast<std::uint8_t>(RecordKind::Checkpoint):
    Out.Kind = RecordKind::Checkpoint;
    if (!decodeCheckpointPayload(R, Out.RefSeq, Out.Committed))
      return BodyDecode::Malformed;
    return BodyDecode::Ok;
  default:
    return BodyDecode::Unknown;
  }
}

} // namespace

ScanResult regmon::trace::scanTraceBytes(
    std::span<const std::uint8_t> Bytes) {
  ScanResult Out;
  Out.FileBytes = Bytes.size();
  if (Bytes.empty())
    return Out; // a fresh (never-opened) trace: intact and empty
  if (Bytes.size() < TraceHeaderBytes) {
    Out.HeaderTorn = true;
    return Out;
  }
  {
    persist::ByteReader H(Bytes.first(TraceHeaderBytes));
    if (H.u32() != TraceMagic) {
      Out.HeaderCorrupt = true;
      return Out;
    }
    if (H.u32() != TraceVersion) {
      Out.VersionSkew = true;
      return Out;
    }
  }
  Out.ValidBytes = TraceHeaderBytes;
  std::uint64_t Pos = TraceHeaderBytes;
  while (Pos < Bytes.size()) {
    const std::uint64_t Left = Bytes.size() - Pos;
    if (Left < TraceRecordHeaderBytes) {
      Out.TornTail = true; // recorder died inside a record header
      break;
    }
    persist::ByteReader R(Bytes.subspan(Pos, TraceRecordHeaderBytes));
    const std::uint64_t Seq = R.u64();
    const std::uint8_t RawKind = R.u8();
    const std::uint32_t Len = R.u32();
    const std::uint32_t Crc = R.u32();
    // A hostile length is bounded against the bytes present before any
    // use; a length past the end is indistinguishable from a torn
    // payload and treated the same way.
    if (Len > Left - TraceRecordHeaderBytes) {
      Out.TornTail = true;
      break;
    }
    const std::span<const std::uint8_t> Payload =
        Bytes.subspan(Pos + TraceRecordHeaderBytes, Len);
    if (Crc != traceRecordCrc(Seq, RawKind, Payload)) {
      Out.TornTail = true;
      break;
    }
    if (Seq <= Out.LastSeq) {
      Out.TornTail = true; // sequence must strictly increase from 1
      break;
    }
    TraceRecord Rec;
    const BodyDecode D = decodeBody(Seq, RawKind, Payload, Rec);
    if (D == BodyDecode::Unknown) {
      Out.UnknownKind = true;
      break;
    }
    if (D == BodyDecode::Malformed) {
      Out.MalformedPayload = true;
      break;
    }
    Out.Records.push_back(std::move(Rec));
    Out.LastSeq = Seq;
    Pos += TraceRecordHeaderBytes + Len;
    Out.ValidBytes = Pos;
  }
  return Out;
}

ScanResult regmon::trace::scanTraceFile(const std::string &Path) {
  const auto Bytes = persist::readFileBytes(Path);
  if (!Bytes) {
    ScanResult Out;
    Out.Missing = true;
    return Out;
  }
  return scanTraceBytes(*Bytes);
}
