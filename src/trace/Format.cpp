//===- trace/Format.cpp - Flight-recorder binary trace format -------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/Format.h"

#include "persist/Crc32.h"

using namespace regmon;
using namespace regmon::trace;

const char *regmon::trace::toString(RecordKind K) {
  switch (K) {
  case RecordKind::Config:
    return "config";
  case RecordKind::Batch:
    return "batch";
  case RecordKind::Drop:
    return "drop";
  case RecordKind::PushReject:
    return "push-reject";
  case RecordKind::Checkpoint:
    return "checkpoint";
  }
  return "?";
}

std::uint32_t regmon::trace::traceRecordCrc(
    std::uint64_t Seq, std::uint8_t Kind,
    std::span<const std::uint8_t> Payload) {
  persist::ByteWriter Header;
  Header.u64(Seq);
  Header.u8(Kind);
  Header.u32(static_cast<std::uint32_t>(Payload.size()));
  const std::uint32_t Seed = persist::crc32(Header.data());
  return persist::crc32(Payload, Seed);
}

void regmon::trace::encodeTraceHeader(persist::ByteWriter &W) {
  W.u32(TraceMagic);
  W.u32(TraceVersion);
}

void regmon::trace::encodeBatchRecordPayload(persist::ByteWriter &W,
                                             const service::SampleBatch &Batch,
                                             service::RecordedFate Fate) {
  W.reserve(W.size() + 13 + Batch.Samples.size() * TraceSampleWireBytes);
  W.u8(static_cast<std::uint8_t>(Fate));
  W.u32(Batch.Stream);
  W.u64(Batch.Samples.size());
  for (const Sample &S : Batch.Samples) {
    W.u64(S.Pc);
    W.u64(S.Time);
    W.boolean(S.DCacheMiss);
  }
}

bool regmon::trace::decodeBatchRecordPayload(persist::ByteReader &R,
                                             service::SampleBatch &Batch,
                                             service::RecordedFate &Fate) {
  const std::uint8_t RawFate = R.u8();
  if (!R.ok() ||
      RawFate > static_cast<std::uint8_t>(service::RecordedFate::Admitted))
    return false;
  Fate = static_cast<service::RecordedFate>(RawFate);
  Batch.Stream = R.u32();
  const std::uint64_t Count = R.u64();
  // Validate the count against the bytes actually present before a
  // single element is allocated: a hostile count can only fail cleanly.
  if (!R.ok() || Count > R.remaining() / TraceSampleWireBytes)
    return false;
  Batch.Samples.clear();
  Batch.Samples.reserve(Count);
  for (std::uint64_t I = 0; I < Count; ++I) {
    Sample S;
    S.Pc = R.u64();
    S.Time = R.u64();
    S.DCacheMiss = R.boolean();
    Batch.Samples.push_back(S);
  }
  return R.atEnd();
}

void regmon::trace::encodeDropPayload(persist::ByteWriter &W,
                                      std::uint64_t EvictedSeq,
                                      std::uint64_t Shard) {
  W.u64(EvictedSeq);
  W.u64(Shard);
}

bool regmon::trace::decodeDropPayload(persist::ByteReader &R,
                                      std::uint64_t &EvictedSeq,
                                      std::uint64_t &Shard) {
  EvictedSeq = R.u64();
  Shard = R.u64();
  return R.atEnd() && EvictedSeq != 0;
}

void regmon::trace::encodePushRejectPayload(persist::ByteWriter &W,
                                            std::uint64_t Seq) {
  W.u64(Seq);
}

bool regmon::trace::decodePushRejectPayload(persist::ByteReader &R,
                                            std::uint64_t &Seq) {
  Seq = R.u64();
  return R.atEnd() && Seq != 0;
}

void regmon::trace::encodeCheckpointPayload(persist::ByteWriter &W,
                                            std::uint64_t JournalSeq,
                                            bool Committed) {
  W.u64(JournalSeq);
  W.boolean(Committed);
}

bool regmon::trace::decodeCheckpointPayload(persist::ByteReader &R,
                                            std::uint64_t &JournalSeq,
                                            bool &Committed) {
  JournalSeq = R.u64();
  Committed = R.boolean();
  return R.atEnd();
}
