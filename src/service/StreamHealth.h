//===- service/StreamHealth.h - Per-stream health tracking ------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-stream health for the MonitorService: structural batch validation
/// plus the state machine that quarantines a misbehaving stream and
/// re-admits it under exponential backoff.
///
/// The design splits "noise" from "damage". Sample-level faults -- lost,
/// duplicated or wild-PC samples, jittered periods -- produce batches that
/// are still *structurally plausible*: aligned PCs, non-decreasing
/// timestamps. Those flow through to the monitor, whose region histograms
/// absorb them as UCR noise (the paper's robustness claim). A *poisoned*
/// batch is structurally impossible -- a misaligned PC, time running
/// backwards -- and signals a broken collector rather than a noisy one.
/// Feeding it to the monitor would corrupt attribution, so the service
/// rejects it at the door and tracks the stream's health:
///
///   Healthy ──poisoned──▶ Degraded ──N consecutive──▶ Quarantined
///      ▲                     │                            │
///      │              clean streak                 backoff expires
///      │                     ▼                            ▼
///      └────────────── Recovering ◀──────valid probe──────┘
///
/// Quarantine rejects every batch for an exponentially growing backoff
/// (doubling per quarantine episode, capped), then admits one probe batch;
/// a valid probe moves the stream to Recovering, a poisoned one
/// re-quarantines it with doubled backoff. A clean streak returns the
/// stream to Healthy and resets the backoff to its base.
///
/// Health advances at *submit* time on the submitting thread. Because a
/// stream's batches must already be submitted in order (one submitter at a
/// time per stream -- the same contract ordered delivery requires),
/// admission is a pure function of that stream's submission sequence,
/// independent of worker scheduling: a replayed run takes bit-identical
/// admission decisions.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_SERVICE_STREAMHEALTH_H
#define REGMON_SERVICE_STREAMHEALTH_H

#include "support/Types.h"

#include <algorithm>
#include <cstdint>
#include <span>

namespace regmon::service {

/// Health machine states. See the file comment for the transition diagram.
enum class StreamHealth : std::uint8_t {
  Healthy,     ///< No recent structural damage; batches flow through.
  Degraded,    ///< Recent poisoned batch; valid batches still admitted.
  Quarantined, ///< Every batch rejected until the backoff expires.
  Recovering,  ///< Re-admitted on probation; a clean streak heals.
};

/// Returns a short identifier for reports.
inline const char *toString(StreamHealth H) {
  switch (H) {
  case StreamHealth::Healthy:
    return "healthy";
  case StreamHealth::Degraded:
    return "degraded";
  case StreamHealth::Quarantined:
    return "quarantined";
  case StreamHealth::Recovering:
    return "recovering";
  }
  return "?";
}

/// Tuning of the health state machine. All thresholds count batches, not
/// wall time: the machine must be deterministic under replay, and batch
/// counts are the only clock every run shares.
struct HealthConfig {
  /// Consecutive poisoned batches (the first of which degrades the
  /// stream) that quarantine it. 1 quarantines on the first offence.
  std::uint32_t PoisonQuarantineThreshold = 3;
  /// Rejected batches a first quarantine lasts before a probe is
  /// admitted. Doubles per quarantine episode.
  std::uint64_t QuarantineBaseBatches = 8;
  /// Backoff ceiling: no quarantine rejects more than this many batches
  /// before probing, however often the stream re-offends.
  std::uint64_t QuarantineMaxBatches = 1024;
  /// Consecutive valid batches (while Degraded or Recovering) that return
  /// the stream to Healthy and reset the backoff to its base.
  std::uint32_t RecoveryCleanBatches = 4;
};

/// Backoff a stream's \p Episode-th quarantine (1-based) serves before a
/// probe is admitted: the base doubled once per prior episode, saturating
/// at UINT64_MAX instead of wrapping (a wrap past zero would collapse the
/// backoff to nothing exactly when the ceiling sits near UINT64_MAX),
/// capped at the configured ceiling. The loop exits as soon as the
/// running value reaches the ceiling, so it is bounded by 64 doublings
/// regardless of how large \p Episode grows.
inline std::uint64_t quarantineBackoffBatches(const HealthConfig &H,
                                              std::uint64_t Episode) {
  std::uint64_t Backoff = H.QuarantineBaseBatches;
  for (std::uint64_t I = 1;
       I < Episode && Backoff < H.QuarantineMaxBatches; ++I)
    Backoff = Backoff > UINT64_MAX / 2 ? UINT64_MAX : Backoff * 2;
  return std::min(Backoff, H.QuarantineMaxBatches);
}

/// Structural validation of one batch: every PC instruction-aligned and
/// timestamps non-decreasing -- the invariants every real sampling
/// front-end guarantees even when it loses or corrupts samples. A batch
/// failing this is damage, not noise (see file comment).
inline bool structurallyValid(std::span<const Sample> Samples) {
  Cycles Prev = 0;
  for (const Sample &S : Samples) {
    if (S.Pc % InstrBytes != 0)
      return false;
    if (S.Time < Prev)
      return false;
    Prev = S.Time;
  }
  return true;
}

} // namespace regmon::service

#endif // REGMON_SERVICE_STREAMHEALTH_H
