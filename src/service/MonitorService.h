//===- service/MonitorService.h - Sharded multi-stream monitor -*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's region monitor serves one hardware sample stream inside one
/// optimizer. Production deployments -- hierarchical per-core monitoring,
/// fleet-wide regression hunting -- face N independent streams at once.
/// MonitorService scales the single-stream monitor out without touching
/// its algorithms:
///
///  * every registered stream owns a private RegionMonitor (streams never
///    share detector state, so per-stream results are bit-identical to a
///    sequential run over the same batches);
///  * streams are hash-routed to a fixed pool of shards, each shard being
///    one worker thread plus one bounded MPSC ring buffer (\ref
///    RingBuffer), so a stream's batches are always processed by the same
///    thread in submission order -- the monitors need no locks;
///  * ingestion applies a backpressure policy per shard: Block (lossless,
///    producers absorb overload) or DropOldest (bounded producer latency,
///    the stream goes gappy like a real HPM buffer on overflow);
///  * per-stream and aggregate statistics are published through a
///    lock-free snapshot API: workers publish into atomics, readers never
///    touch the data-path locks.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_SERVICE_MONITORSERVICE_H
#define REGMON_SERVICE_MONITORSERVICE_H

#include "core/CodeMap.h"
#include "core/RegionMonitor.h"
#include "obs/Instruments.h"
#include "sampling/AdaptiveController.h"
#include "service/RingBuffer.h"
#include "service/StreamHealth.h"
#include "support/Types.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace regmon::persist {
class CheckpointManager;
struct SnapshotSection;
} // namespace regmon::persist

namespace regmon::service {

/// Identifies one registered sample stream (e.g. one core or one
/// monitored process). Assigned densely by \ref MonitorService::addStream.
using StreamId = std::uint32_t;

/// One interval's worth of samples from one stream -- the unit of
/// ingestion. Mirrors the sampling front-end's buffer-overflow delivery.
struct SampleBatch {
  StreamId Stream = 0;
  std::vector<Sample> Samples;
  /// Flight-recorder sequence number stamped by \ref MonitorService::submit
  /// when a \ref BatchRecorder is attached (0 otherwise). Identifies this
  /// batch in later drop/push-reject records, so an overloaded run's
  /// evictions replay against the right batches.
  std::uint64_t TraceSeq = 0;
  /// Stream health as the admission decision left it, stamped by \ref
  /// MonitorService::submit on admitted batches. Not part of any wire
  /// format: journal replay and trace replay re-derive it by re-running
  /// the same admission sequence. Carrying it with the batch hands the
  /// worker-side adaptive controller a health signal that is a pure
  /// function of the stream's admitted sequence, independent of when the
  /// submit side has already raced ahead.
  StreamHealth AdmitHealth = StreamHealth::Healthy;
};

/// The decision \ref MonitorService::submit took for one batch, as
/// captured by an attached \ref BatchRecorder. Deterministic fates
/// (Refused/Admitted) are re-derived and cross-checked at replay;
/// environmental fates (DoorRejected/JournalRejected) and the separately
/// recorded drop/push-reject outcomes are applied from the record, since
/// they depend on timing the replayed process does not reproduce.
enum class RecordedFate : std::uint8_t {
  DoorRejected = 0,    ///< Closed shard queue (post-stop submission).
  JournalRejected = 1, ///< Write-ahead journal append failed (dead latch).
  Refused = 2,         ///< Health machine refused (poisoned/quarantined).
  Admitted = 3,        ///< Admitted for processing (may still drop later).
};

/// Returns a short identifier for reports.
const char *toString(RecordedFate F);

/// Recording tap for the flight recorder (implemented by
/// trace::TraceRecorder; declared here so src/service never depends on
/// src/trace). \ref MonitorService calls every method under its own
/// recorder serialization, so implementations need no internal locking;
/// the captured record order is a real submission order across streams.
/// A recorder that fails internally must keep accepting calls as no-ops:
/// recording is an observer, it never turns into backpressure.
class BatchRecorder {
public:
  virtual ~BatchRecorder() = default;
  /// Captures the service configuration fingerprint (see
  /// \ref MonitorService::configFingerprint), called once at attach.
  virtual void recordConfig(std::span<const std::uint8_t> Fingerprint) = 0;
  /// Captures one submitted batch and its fate; returns the trace
  /// sequence number assigned to the batch (stamped into
  /// \ref SampleBatch::TraceSeq by the caller).
  virtual std::uint64_t recordBatch(const SampleBatch &Batch,
                                    RecordedFate Fate) = 0;
  /// Captures a DropOldest eviction of the batch stamped \p EvictedSeq
  /// from shard \p Shard's queue.
  virtual void recordDrop(std::uint64_t EvictedSeq, std::uint64_t Shard) = 0;
  /// Captures a failed push (queue closed between door check and push)
  /// of the batch stamped \p Seq.
  virtual void recordPushReject(std::uint64_t Seq) = 0;
  /// Captures a checkpoint attempt at journal sequence \p JournalSeq.
  virtual void recordCheckpoint(std::uint64_t JournalSeq, bool Committed) = 0;
};

/// Service-wide tunables.
struct ServiceConfig {
  /// Shard count == worker thread count. Streams are hash-partitioned
  /// across shards.
  std::size_t Workers = 4;
  /// Per-shard ring-buffer capacity, in batches.
  std::size_t QueueCapacity = 64;
  /// What a full shard queue does to an incoming batch.
  OverflowPolicy Policy = OverflowPolicy::Block;
  /// Structural batch validation plus the per-stream health state machine
  /// (see service/StreamHealth.h), applied at submit time. When disabled
  /// every batch is admitted and every stream stays Healthy.
  bool ValidateBatches = true;
  /// Health state machine tuning. Ignored unless ValidateBatches.
  HealthConfig Health;
  /// Per-stream adaptive sampling controller tuning (DESIGN.md §16).
  /// Disabled by default: every stream then holds the base period and
  /// the service's behaviour -- admissions, processing, encoded state --
  /// is bit-identical to a service that never had controllers.
  sampling::AdaptiveConfig Adaptive{};
  /// Worker-less execution: \ref MonitorService::submit journals, admits
  /// and processes each batch synchronously on the calling thread --
  /// start() spawns nothing and the shard queues sit unused. Admission,
  /// health, persistence and per-stream results are identical to the
  /// threaded mode (per-stream processing is single-owner either way);
  /// what changes is that the embedding owns the schedule, which is what
  /// a deterministic simulation (the fleet tree, ISSUE 8) needs. In this
  /// mode monitors stay inspectable and state encodable between submits
  /// even while the service is "running", since the submitting thread is
  /// the only mutator.
  bool Inline = false;
};

/// Point-in-time statistics of one stream. All counters are published by
/// the stream's worker after each batch; a snapshot is internally
/// consistent per stream up to the last fully processed batch.
struct StreamSnapshot {
  StreamId Stream = 0;
  std::size_t Shard = 0;
  std::uint64_t BatchesProcessed = 0;
  /// Batches that carried samples (empty batches are counted processed
  /// but observe no interval).
  std::uint64_t IntervalsProcessed = 0;
  std::uint64_t PhaseChanges = 0;
  std::uint64_t FormationTriggers = 0;
  std::uint64_t RegionsFormed = 0;
  std::uint64_t ActiveRegions = 0;
  std::uint64_t TotalSamples = 0;
  std::uint64_t UcrSamples = 0;
  /// Health machine state, as the submit side last left it.
  StreamHealth Health = StreamHealth::Healthy;
  /// Structurally malformed batches rejected at submit.
  std::uint64_t PoisonedBatches = 0;
  /// Batches rejected while the stream sat out a quarantine backoff.
  std::uint64_t QuarantinedBatches = 0;
  /// Times the stream entered quarantine.
  std::uint64_t TimesQuarantined = 0;
  /// Probe batches admitted after a quarantine backoff expired.
  std::uint64_t Readmissions = 0;
  /// Adaptive controller outputs (zero / base values while disabled).
  std::uint32_t PeriodScaleLog2 = 0;
  std::uint64_t SamplesSaved = 0;
  std::uint64_t ControllerLengthens = 0;
  std::uint64_t ControllerTightens = 0;

  /// Lifetime fraction of the stream's samples left unattributed.
  double ucrFraction() const {
    return TotalSamples == 0 ? 0.0
                             : static_cast<double>(UcrSamples) /
                                   static_cast<double>(TotalSamples);
  }
};

/// Point-in-time statistics of one shard (queue + worker).
struct ShardSnapshot {
  std::size_t QueueDepth = 0;
  std::uint64_t BatchesProcessed = 0;
  /// Batches evicted by the DropOldest policy before processing.
  std::uint64_t BatchesDropped = 0;
};

/// Aggregate + per-stream + per-shard statistics.
struct ServiceSnapshot {
  std::uint64_t BatchesSubmitted = 0;
  std::uint64_t BatchesProcessed = 0;
  std::uint64_t BatchesDropped = 0;
  /// Batches refused at the door -- submitted after \ref
  /// MonitorService::stop (or against a closed shard queue). Rejected
  /// batches are not counted in BatchesSubmitted, so processed + dropped
  /// == submitted still holds after stop.
  std::uint64_t BatchesRejected = 0;
  /// Sum of per-stream PoisonedBatches.
  std::uint64_t BatchesPoisoned = 0;
  /// Sum of per-stream QuarantinedBatches.
  std::uint64_t BatchesQuarantined = 0;
  std::uint64_t IntervalsProcessed = 0;
  std::uint64_t PhaseChanges = 0;
  std::uint64_t TotalSamples = 0;
  std::uint64_t UcrSamples = 0;
  /// Sum of per-stream SamplesSaved (adaptive controllers).
  std::uint64_t SamplesSaved = 0;
  std::size_t QueueDepth = 0; ///< Sum over shards.
  std::vector<ShardSnapshot> Shards;
  std::vector<StreamSnapshot> Streams;

  /// Aggregate UCR fraction, sample-weighted across streams.
  double ucrFraction() const {
    return TotalSamples == 0 ? 0.0
                             : static_cast<double>(UcrSamples) /
                                   static_cast<double>(TotalSamples);
  }
};

/// How \ref MonitorService::restore rebuilt the service state.
enum class RestoreOutcome : std::uint8_t {
  ColdStart,           ///< No usable snapshot and no journal records.
  JournalOnly,         ///< No usable snapshot; the journal replayed from cold.
  SnapshotOnly,        ///< Snapshot loaded; no journal records beyond it.
  SnapshotPlusJournal, ///< Snapshot loaded, then journal records replayed.
};

/// Returns a short identifier for reports.
const char *toString(RestoreOutcome O);

/// Owns a pool of sharded RegionMonitors and the worker threads that feed
/// them. Lifecycle: register streams (\ref addStream), \ref start, submit
/// batches from any number of threads, \ref stop (drains every queued
/// batch), then inspect per-stream monitors. One start/stop cycle per
/// instance.
class MonitorService {
public:
  explicit MonitorService(ServiceConfig Config = {});
  ~MonitorService();

  MonitorService(const MonitorService &) = delete;
  MonitorService &operator=(const MonitorService &) = delete;

  /// Registers a stream resolving region candidates through \p Map (which
  /// must outlive the service) and monitoring with \p MonitorConfig.
  /// Returns the stream's id. Must not be called after \ref start.
  StreamId addStream(const core::CodeMap &Map,
                     core::RegionMonitorConfig MonitorConfig = {});

  /// Returns the shard (worker) that processes \p Stream's batches.
  std::size_t shardOf(StreamId Stream) const;

  /// Spawns the worker pool. Batches submitted before start are buffered
  /// (up to each shard's queue capacity) and processed once workers run.
  void start();

  /// Closes every shard queue, drains all queued batches, and joins the
  /// workers. Idempotent. After stop, per-stream monitors are quiescent
  /// and may be inspected through \ref monitor.
  void stop();

  /// Returns true between \ref start and \ref stop.
  bool running() const { return Running.load(std::memory_order_acquire); }

  /// Routes \p Batch to its stream's shard under the configured
  /// backpressure policy. Returns false once the service has been stopped
  /// (the batch is discarded and counted in \ref
  /// ServiceSnapshot::BatchesRejected), or when the health machine
  /// refuses the batch (structurally malformed, or the stream is
  /// quarantined). Empty batches are legal and count as processed without
  /// observing an interval.
  ///
  /// Thread-safe across streams. Batches of *one* stream must be
  /// submitted by one thread at a time -- the same external serialization
  /// in-order delivery already requires -- which makes each stream's
  /// admission decisions a deterministic function of its submission
  /// sequence.
  bool submit(SampleBatch Batch);

  /// Installs \p Hook, invoked by the owning worker with (shard index,
  /// batch) immediately after dequeuing each batch, before processing.
  /// Intended for fault-injection harnesses (e.g. stalling a worker).
  /// Hooks that block must poll \ref stopRequested and return once it is
  /// set, so \ref stop stays bounded by the polling period rather than
  /// the stall length. Must be installed before \ref start.
  void setWorkerHook(std::function<void(std::size_t, const SampleBatch &)> Hook);

  /// True once \ref stop has been entered. The flag is raised before the
  /// queues close, so a stalled worker hook observes it no later than its
  /// next poll.
  bool stopRequested() const {
    return StopRequested.load(std::memory_order_acquire);
  }

  /// Publishes current statistics. Never blocks on the data path: all
  /// fields are read from atomics (each internally consistent; the
  /// cross-field view is a point-in-time sample, e.g. BatchesSubmitted
  /// may lead BatchesProcessed + BatchesDropped + QueueDepth by in-flight
  /// batches).
  ServiceSnapshot snapshot() const;

  /// Returns \p Stream's monitor for inspection. Only safe while the
  /// service is not running (before \ref start or after \ref stop), or at
  /// any quiescent point of an Inline service (no submit in flight).
  const core::RegionMonitor &monitor(StreamId Stream) const;

  /// Returns \p Stream's adaptive controller for inspection. Same
  /// quiescence contract as \ref monitor.
  const sampling::AdaptiveController &controller(StreamId Stream) const;

  /// Returns the sampling period \p Stream's controller currently
  /// recommends, in cycles. Lock-free and safe at any time (reads the
  /// worker-published scale); the sampling front-end polls this between
  /// intervals to apply the recommendation.
  Cycles recommendedPeriodCycles(StreamId Stream) const;

  /// Returns the number of registered streams.
  std::size_t streamCount() const { return Streams.size(); }

  /// Returns the service configuration.
  const ServiceConfig &config() const { return Config; }

  //===------------------------------------------------------------------===//
  // Observability (obs layer, DESIGN.md section 11).
  //===------------------------------------------------------------------===//

  /// Registers the service metric catalogue against \p Registry, creates
  /// per-stream monitor instruments (labelled `stream="N"`), and attaches
  /// them to every registered stream's RegionMonitor. Health transitions
  /// (quarantine / recovery) are recorded against \p Tracer (may be null)
  /// using the stream's admission count as the logical clock. Must be
  /// called after every \ref addStream and before \ref start; \p Registry
  /// and \p Tracer must outlive the service.
  void attachObservability(obs::MetricsRegistry &Registry,
                           obs::EventTracer *Tracer = nullptr);

  //===------------------------------------------------------------------===//
  // Crash-safe persistence (persist/Checkpoint.h, DESIGN.md section 10).
  //===------------------------------------------------------------------===//

  /// Attaches \p Store as the durability backend: every subsequently
  /// submitted batch is journaled write-ahead (before admission, so
  /// recovery re-runs the same admission decisions over the same
  /// sequence), and \ref restore / \ref checkpoint become available.
  /// Must be called before \ref start; \p Store must outlive the service.
  void attachPersistence(persist::CheckpointManager &Store);

  /// Recovers state from the attached store: climbs the snapshot ladder
  /// (current -> previous -> cold start), then replays journal records
  /// beyond the loaded snapshot through the normal admission + processing
  /// path. Must run after every stream is registered and before \ref
  /// start. Safe on an empty or damaged directory -- corruption degrades
  /// to a colder rung with the reason counted, it never crashes.
  RestoreOutcome restore();

  /// Commits a snapshot of the full service state and compacts the
  /// journal (see the commit protocol in persist/Checkpoint.h). Requires
  /// a quiescent service (before \ref start or after \ref stop). False
  /// means the commit did not complete; the previous snapshot, fallback
  /// rung, and journal stay usable.
  bool checkpoint();

  /// Serializes the full service state (meta section + one section per
  /// stream) into a snapshot container. Requires quiescence. Exposed so
  /// tests can assert recovered state is bit-identical to a reference.
  std::vector<std::uint8_t> encodeState() const;

  /// Returns the sequence number of the last batch journaled by \ref
  /// submit or re-applied by \ref restore; 0 before either. Only stable
  /// while the service is quiescent.
  std::uint64_t persistedSequence() const { return JournalSeq; }

  //===------------------------------------------------------------------===//
  // Flight recorder (src/trace, DESIGN.md section 15).
  //===------------------------------------------------------------------===//

  /// Attaches \p Recorder as the flight-recorder tap: every subsequent
  /// submit records the batch bytes plus the fate decided for it, every
  /// DropOldest eviction and failed push records the evicted batch's
  /// trace sequence, and every \ref checkpoint records a marker -- the
  /// full decision sequence \ref applyRecorded needs to re-execute the
  /// run. Immediately records the configuration fingerprint. Must be
  /// called after every \ref addStream (and after \ref restore when
  /// persistence is attached, so the trace starts at the recovered
  /// state), before \ref start; \p Recorder must outlive the service.
  void attachRecorder(BatchRecorder &Recorder);

  /// Serializes the configuration fields replay determinism depends on
  /// (worker/shard count for routing, queue capacity, policy, health
  /// tuning, stream count). Inline is deliberately absent: a threaded
  /// recording replays on a worker-less service.
  std::vector<std::uint8_t> configFingerprint() const;

  /// Re-executes one recorded submission against this service, which
  /// must be Inline and running. Deterministic decisions re-run and are
  /// cross-checked against \p Fate; timing-dependent outcomes are
  /// applied from the record: \p Dropped skips processing and counts a
  /// queue eviction, \p PushFailed reproduces the rejected-push
  /// accounting. Returns false on divergence (the health machine chose
  /// differently than the recording, an unknown stream, or a journal
  /// append failure in the replay environment) -- the caller stops
  /// replay there.
  bool applyRecorded(SampleBatch Batch, RecordedFate Fate, bool Dropped,
                     bool PushFailed);

private:
  /// Per-stream state. Monitor and the processing counters are written
  /// only by the owning shard's worker while running; the health fields
  /// are written only at submit time (serialized per stream, see \ref
  /// submit). Everything cross-thread-readable is atomic so snapshots
  /// never tear.
  struct StreamState {
    const core::CodeMap *Map = nullptr;
    StreamId Id = 0;
    std::size_t Shard = 0;
    std::unique_ptr<core::RegionMonitor> Monitor;
    /// Per-stream monitor instruments (wired by attachObservability; all
    /// null pointers otherwise). Lives here so its address stays stable
    /// for the monitor's lifetime.
    obs::MonitorInstruments Instruments;
    /// Admission decisions taken for this stream -- the logical clock
    /// stamped on quarantine/recovery events (deterministic under the
    /// per-stream submission serialization, unlike any wall clock).
    std::atomic<std::uint64_t> AdmissionClock{0};
    std::atomic<std::uint64_t> BatchesProcessed{0};
    std::atomic<std::uint64_t> IntervalsProcessed{0};
    std::atomic<std::uint64_t> PhaseChanges{0};
    std::atomic<std::uint64_t> FormationTriggers{0};
    std::atomic<std::uint64_t> RegionsFormed{0};
    std::atomic<std::uint64_t> ActiveRegions{0};
    std::atomic<std::uint64_t> TotalSamples{0};
    std::atomic<std::uint64_t> UcrSamples{0};
    // Health machine (submit side). Plain loads/stores: per-stream
    // submissions are serialized, atomics only guard snapshot readers.
    std::atomic<StreamHealth> Health{StreamHealth::Healthy};
    std::atomic<std::uint64_t> PoisonedBatches{0};
    std::atomic<std::uint64_t> QuarantinedBatches{0};
    std::atomic<std::uint64_t> TimesQuarantined{0};
    std::atomic<std::uint64_t> Readmissions{0};
    /// Quarantine episodes since the last full recovery; drives the
    /// exponential backoff, unlike the lifetime TimesQuarantined.
    std::atomic<std::uint64_t> QuarantineEpisodes{0};
    std::atomic<std::uint32_t> ConsecutivePoisoned{0};
    std::atomic<std::uint32_t> CleanStreak{0};
    std::atomic<std::uint64_t> Backoff{0};
    std::atomic<std::uint64_t> QuarantineRejections{0};
    /// Adaptive sampling controller. Worker-side state like Monitor:
    /// advanced only by the owning shard's worker (or the submitting
    /// thread in Inline mode), one decision per processed interval.
    sampling::AdaptiveController Controller;
    // Controller outputs re-published through atomics so snapshot() and
    // recommendedPeriodCycles() never touch the worker-owned object.
    std::atomic<std::uint32_t> PeriodScaleLog2{0};
    std::atomic<std::uint64_t> SamplesSaved{0};
    std::atomic<std::uint64_t> CtlLengthens{0};
    std::atomic<std::uint64_t> CtlTightens{0};
  };

  /// One shard: a bounded queue drained by one worker thread.
  struct Shard {
    Shard(std::size_t Idx, std::size_t Capacity, OverflowPolicy Policy)
        : Index(Idx), Queue(Capacity, Policy) {}
    const std::size_t Index;
    RingBuffer<SampleBatch> Queue;
    std::atomic<std::uint64_t> BatchesProcessed{0};
    std::thread Worker;
  };

  void workerLoop(Shard &S);
  void process(const SampleBatch &Batch);
  /// Advances \p St's health machine for one batch whose structural
  /// validity is \p Valid; returns true when the batch is admitted.
  bool admit(StreamState &St, bool Valid);
  /// Puts \p St into quarantine, doubling the backoff per episode.
  void quarantine(StreamState &St);

  /// Records \p Batch with \p Fate against the attached recorder (no-op
  /// when none), stamping the assigned sequence into Batch.TraceSeq.
  void recordFate(SampleBatch &Batch, RecordedFate Fate);

  /// Re-applies one journaled batch through admission + processing.
  /// False rejects the record as malformed (ends journal replay there).
  bool replayRecord(std::span<const std::uint8_t> Payload);
  /// Decodes a loaded snapshot's sections into this service. False may
  /// leave the service partially written; the caller resets and retries
  /// the next rung.
  bool decodeState(const std::vector<persist::SnapshotSection> &Sections);
  /// Returns every monitor, counter, and sequence number to cold-start
  /// state (the stream registry and configuration are kept).
  void resetPersistedState();

  ServiceConfig Config;
  std::vector<std::unique_ptr<StreamState>> Streams;
  std::vector<std::unique_ptr<Shard>> Shards;
  std::function<void(std::size_t, const SampleBatch &)> WorkerHook;
  std::atomic<std::uint64_t> Submitted{0};
  std::atomic<std::uint64_t> Rejected{0};

  // Service-wide observability (null until attachObservability).
  obs::Counter *ObsSubmitted = nullptr;
  obs::Counter *ObsRejected = nullptr;
  obs::Counter *ObsPoisoned = nullptr;
  obs::Counter *ObsQuarantines = nullptr;
  obs::Counter *ObsRecoveries = nullptr;
  obs::Gauge *ObsQueueDepth = nullptr;
  obs::Gauge *ObsStreamsQuarantined = nullptr;
  obs::EventTracer *ObsTracer = nullptr;
  std::atomic<bool> Running{false};
  std::atomic<bool> StopRequested{false};
  bool Started = false;
  bool Stopped = false;

  // Persistence, all inert until attachPersistence(). The mutex lives
  // here rather than in persist (which is single-owner by contract): it
  // serializes sequence assignment + append across submitting threads, so
  // the journal's global record order is a real submission order.
  persist::CheckpointManager *Persist = nullptr;
  std::mutex JournalMutex;
  /// Last journal sequence assigned (submit) or re-applied (restore).
  /// Written under JournalMutex while running, plainly while quiescent.
  std::uint64_t JournalSeq = 0;
  /// Sequence covered by the on-disk snapshot.bin -- the replay skip
  /// threshold and the next checkpoint's journal-compaction bound.
  std::uint64_t SnapshotSeq = 0;
  /// Latched on append failure: a batch that cannot be made durable is
  /// refused rather than processed, so the journal never under-reports
  /// acknowledged work.
  bool JournalDead = false;

  // Flight recorder, inert until attachRecorder(). The mutex lives here
  // for the same reason JournalMutex does (src/trace joins the lint
  // Deterministic layer, which owns no concurrency primitives): it
  // serializes sequence assignment + append across submitting threads,
  // so the trace's global record order is a real submission order.
  BatchRecorder *Recorder = nullptr;
  std::mutex RecorderMutex;
};

} // namespace regmon::service

#endif // REGMON_SERVICE_MONITORSERVICE_H
