//===- service/RingBuffer.h - Bounded MPSC batch queue ----------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-capacity ring buffer connecting sample producers to a shard's
/// worker thread. Multiple producers may push concurrently; one consumer
/// drains (MPSC). The real system's analogue is the per-core HPM sample
/// buffer between the kernel's overflow interrupt handler and the dynamic
/// optimizer thread: bounded memory, and an explicit policy for what
/// happens when the optimizer falls behind the hardware.
///
/// Two backpressure policies:
///
///  * Block      -- push waits until the consumer frees a slot. Lossless;
///                  producer latency absorbs the overload. Required for
///                  deterministic replay (every batch is processed).
///  * DropOldest -- push evicts the oldest unconsumed element and never
///                  blocks. Bounded producer latency; the monitor sees a
///                  gappy stream, as real HPM buffers do on overflow.
///
/// FIFO order is preserved per producer: if one thread pushes a, then b,
/// the consumer pops a before b (unless DropOldest evicted a).
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_SERVICE_RINGBUFFER_H
#define REGMON_SERVICE_RINGBUFFER_H

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace regmon::service {

/// What a full queue does to an incoming push.
enum class OverflowPolicy : std::uint8_t {
  Block,      ///< Wait for free space (lossless).
  DropOldest, ///< Evict the oldest unconsumed element (bounded latency).
};

/// Returns a short identifier for reports ("block" / "drop-oldest").
inline const char *toString(OverflowPolicy Policy) {
  return Policy == OverflowPolicy::Block ? "block" : "drop-oldest";
}

/// Bounded multi-producer single-consumer queue with a configurable
/// overflow policy. \ref size and \ref dropped are wait-free so that a
/// monitoring thread can observe queue depth without contending with the
/// data path.
template <typename T> class RingBuffer {
public:
  explicit RingBuffer(std::size_t Capacity,
                      OverflowPolicy OnOverflow = OverflowPolicy::Block)
      : Policy(OnOverflow), Slots(Capacity) {
    assert(Capacity > 0 && "ring buffer needs at least one slot");
  }

  RingBuffer(const RingBuffer &) = delete;
  RingBuffer &operator=(const RingBuffer &) = delete;

  /// Enqueues \p Value according to the overflow policy. Returns false
  /// (and discards \p Value) once the queue has been closed; a push
  /// blocked on a full queue is woken and rejected by \ref close.
  ///
  /// When \p EvictedOut is non-null and this push evicts the oldest
  /// element (DropOldest on a full queue), the evicted element is moved
  /// into \p *EvictedOut instead of being destroyed -- the flight
  /// recorder identifies the dropped batch this way. \p *EvictedOut is
  /// left untouched when nothing is evicted, so callers detect eviction
  /// by priming it with a sentinel.
  bool push(T Value, T *EvictedOut = nullptr) {
    std::unique_lock<std::mutex> Lock(M);
    if (Policy == OverflowPolicy::Block) {
      NotFull.wait(Lock, [&] { return Count < Slots.size() || Shut; });
    } else if (Count == Slots.size() && !Shut) {
      if (EvictedOut)
        *EvictedOut = std::move(Slots[Head]);
      Head = (Head + 1) % Slots.size();
      --Count;
      // Release so an observer of the drop also observes everything the
      // submitting thread did before this push (its accounting).
      DroppedCount.fetch_add(1, std::memory_order_release);
    }
    if (Shut)
      return false;
    Slots[(Head + Count) % Slots.size()] = std::move(Value);
    ++Count;
    Depth.store(Count, std::memory_order_relaxed);
    Lock.unlock();
    NotEmpty.notify_one();
    return true;
  }

  /// Dequeues the oldest element into \p Out, waiting while the queue is
  /// open and empty. Returns false only when the queue is closed *and*
  /// drained, so a consumer loop `while (Q.pop(B))` processes every
  /// element enqueued before \ref close.
  bool pop(T &Out) {
    std::unique_lock<std::mutex> Lock(M);
    NotEmpty.wait(Lock, [&] { return Count > 0 || Shut; });
    if (Count == 0)
      return false;
    Out = std::move(Slots[Head]);
    Head = (Head + 1) % Slots.size();
    --Count;
    Depth.store(Count, std::memory_order_relaxed);
    Lock.unlock();
    NotFull.notify_one();
    return true;
  }

  /// Non-blocking \ref pop. Returns false when the queue is currently
  /// empty, whether or not it is closed.
  bool tryPop(T &Out) {
    std::unique_lock<std::mutex> Lock(M);
    if (Count == 0)
      return false;
    Out = std::move(Slots[Head]);
    Head = (Head + 1) % Slots.size();
    --Count;
    Depth.store(Count, std::memory_order_relaxed);
    Lock.unlock();
    NotFull.notify_one();
    return true;
  }

  /// Rejects all future pushes and wakes every blocked producer and
  /// consumer. Elements already enqueued remain poppable. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Shut = true;
    }
    NotEmpty.notify_all();
    NotFull.notify_all();
  }

  /// Returns true once \ref close has been called.
  bool closed() const {
    std::lock_guard<std::mutex> Lock(M);
    return Shut;
  }

  /// Current queue depth. Wait-free (reads a mirror updated under the
  /// lock), so values are a snapshot that may lag the data path by one
  /// operation.
  std::size_t size() const { return Depth.load(std::memory_order_relaxed); }

  /// Maximum number of buffered elements.
  std::size_t capacity() const { return Slots.size(); }

  /// Elements evicted by the DropOldest policy. Wait-free.
  std::uint64_t dropped() const {
    return DroppedCount.load(std::memory_order_acquire);
  }

  /// Counts one eviction without touching the slots -- trace replay's
  /// stand-in for an eviction that happened in the recorded run, so a
  /// replayed snapshot reports the same per-shard drop totals.
  void countDrop() { DroppedCount.fetch_add(1, std::memory_order_release); }

private:
  mutable std::mutex M;
  std::condition_variable NotFull;
  std::condition_variable NotEmpty;
  const OverflowPolicy Policy;
  std::vector<T> Slots;
  std::size_t Head = 0;  ///< Index of the oldest element.
  std::size_t Count = 0; ///< Number of buffered elements.
  bool Shut = false;
  std::atomic<std::size_t> Depth{0};
  std::atomic<std::uint64_t> DroppedCount{0};
};

} // namespace regmon::service

#endif // REGMON_SERVICE_RINGBUFFER_H
