//===- service/MonitorService.cpp - Sharded multi-stream monitor ----------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/MonitorService.h"

#include "persist/Bytes.h"
#include "persist/Checkpoint.h"
#include "persist/StateCodec.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

using namespace regmon;
using namespace regmon::service;

namespace {

/// splitmix64 finalizer: decorrelates dense stream ids from shard indices
/// so that id patterns (all-even cores, strided assignment) cannot pile
/// every stream onto one shard.
std::uint64_t mix64(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Snapshot section ids (persist/Snapshot.h container).
constexpr std::uint32_t MetaSectionId = 1;
constexpr std::uint32_t StreamSectionId = 2;

/// Wire size of one journaled sample: u64 pc + u64 time + u8 miss flag.
constexpr std::uint64_t SampleWireBytes = 17;

/// Journal-record payload for one batch: the full submission, so replay
/// can re-run admission + processing over the original byte stream.
void encodeBatchPayload(persist::ByteWriter &W, const SampleBatch &Batch) {
  W.u32(Batch.Stream);
  W.u64(Batch.Samples.size());
  for (const Sample &S : Batch.Samples) {
    W.u64(S.Pc);
    W.u64(S.Time);
    W.boolean(S.DCacheMiss);
  }
}

} // namespace

const char *regmon::service::toString(RecordedFate F) {
  switch (F) {
  case RecordedFate::DoorRejected:
    return "door-rejected";
  case RecordedFate::JournalRejected:
    return "journal-rejected";
  case RecordedFate::Refused:
    return "refused";
  case RecordedFate::Admitted:
    return "admitted";
  }
  return "?";
}

const char *regmon::service::toString(RestoreOutcome O) {
  switch (O) {
  case RestoreOutcome::ColdStart:
    return "cold-start";
  case RestoreOutcome::JournalOnly:
    return "journal-only";
  case RestoreOutcome::SnapshotOnly:
    return "snapshot-only";
  case RestoreOutcome::SnapshotPlusJournal:
    return "snapshot+journal";
  }
  return "?";
}

MonitorService::MonitorService(ServiceConfig Cfg) : Config(Cfg) {
  assert(Config.Workers > 0 && "service needs at least one worker");
  assert(Config.QueueCapacity > 0 && "shard queues need capacity");
  assert(Config.Health.QuarantineBaseBatches > 0 &&
         "quarantine backoff must start positive");
  assert(Config.Health.QuarantineMaxBatches >=
             Config.Health.QuarantineBaseBatches &&
         "backoff ceiling below its base");
  Shards.reserve(Config.Workers);
  for (std::size_t I = 0; I < Config.Workers; ++I)
    Shards.push_back(
        std::make_unique<Shard>(I, Config.QueueCapacity, Config.Policy));
}

MonitorService::~MonitorService() { stop(); }

StreamId MonitorService::addStream(const core::CodeMap &Map,
                                   core::RegionMonitorConfig MonitorConfig) {
  assert(!Started && "streams must be registered before start()");
  const auto Id = static_cast<StreamId>(Streams.size());
  auto State = std::make_unique<StreamState>();
  State->Map = &Map;
  State->Id = Id;
  State->Shard = static_cast<std::size_t>(mix64(Id) % Shards.size());
  State->Monitor = std::make_unique<core::RegionMonitor>(Map, MonitorConfig);
  State->Controller = sampling::AdaptiveController(Config.Adaptive);
  Streams.push_back(std::move(State));
  return Id;
}

std::size_t MonitorService::shardOf(StreamId Stream) const {
  assert(Stream < Streams.size() && "unknown stream");
  return Streams[Stream]->Shard;
}

void MonitorService::attachObservability(obs::MetricsRegistry &Registry,
                                         obs::EventTracer *Tracer) {
  assert(!Started && "observability must be attached before start()");
  ObsTracer = Tracer;
  ObsSubmitted = &Registry.counter("service_batches_submitted_total",
                                   "Batches accepted into a shard queue.");
  ObsRejected = &Registry.counter(
      "service_batches_rejected_total",
      "Batches refused at the door (closed queue, dead journal, full "
      "shard under the reject policy).");
  ObsPoisoned = &Registry.counter("service_batches_poisoned_total",
                                  "Structurally malformed batches.");
  ObsQuarantines =
      &Registry.counter("service_stream_quarantines_total",
                        "Times any stream entered quarantine.");
  ObsRecoveries =
      &Registry.counter("service_stream_recoveries_total",
                        "Times any stream recovered to healthy.");
  ObsQueueDepth = &Registry.gauge(
      "service_queue_depth",
      "Queued batches across all shards at the last snapshot.");
  ObsStreamsQuarantined = &Registry.gauge(
      "service_streams_quarantined",
      "Streams in the quarantined state at the last snapshot.");
  for (auto &StPtr : Streams) {
    StreamState &St = *StPtr;
    St.Instruments = obs::makeMonitorInstruments(Registry, Tracer, St.Id,
                                                 obs::streamLabel(St.Id));
    St.Monitor->attachObservability(&St.Instruments);
  }
}

void MonitorService::setWorkerHook(
    std::function<void(std::size_t, const SampleBatch &)> Hook) {
  assert(!Started && "worker hooks must be installed before start()");
  WorkerHook = std::move(Hook);
}

void MonitorService::start() {
  assert(!Started && "MonitorService supports one start/stop cycle");
  Started = true;
  Running.store(true, std::memory_order_release);
  if (Config.Inline)
    return; // submit() processes synchronously; no workers to spawn.
  for (auto &S : Shards)
    S->Worker = std::thread([this, Raw = S.get()] { workerLoop(*Raw); });
}

void MonitorService::stop() {
  if (Stopped) {
    // Idempotence contract: a second stop() (including the destructor
    // running after an explicit stop) must find the workers already
    // joined -- the first call never returns with threads live.
    assert(!Running.load(std::memory_order_acquire) &&
           "stop() re-entered while workers still running");
    return;
  }
  Stopped = true;
  // Raise the stop flag before closing the queues so a worker stalled in
  // a hook (which must poll stopRequested()) resumes and drains; stop()
  // is then bounded by the hook's polling period, not the stall length.
  StopRequested.store(true, std::memory_order_release);
  for (auto &S : Shards)
    S->Queue.close();
  if (Started)
    for (auto &S : Shards)
      if (S->Worker.joinable())
        S->Worker.join();
  Running.store(false, std::memory_order_release);
}

bool MonitorService::submit(SampleBatch Batch) {
  assert(Batch.Stream < Streams.size() && "unknown stream");
  StreamState &St = *Streams[Batch.Stream];
  Shard &S = *Shards[St.Shard];
  // A batch arriving after stop() is refused at the door without
  // advancing the stream's health: a closed queue says nothing about the
  // collector's behaviour.
  if (S.Queue.closed()) {
    Rejected.fetch_add(1, std::memory_order_relaxed);
    obs::addTo(ObsRejected);
    recordFate(Batch, RecordedFate::DoorRejected);
    return false;
  }
  if (Persist) {
    // Write-ahead: journal before admission, so recovery re-runs the
    // same admission logic over the same per-stream sequence and lands
    // on the same health decisions. The mutex makes the journal's
    // global record order a real submission order across streams.
    std::lock_guard<std::mutex> Lock(JournalMutex);
    bool Durable = !JournalDead;
    if (Durable) {
      persist::ByteWriter W;
      encodeBatchPayload(W, Batch);
      Durable = Persist->appendJournal(JournalSeq + 1, W.data());
    }
    if (!Durable) {
      // A batch that cannot be made durable is refused, not processed:
      // accepting it would let a crash silently lose acknowledged work.
      JournalDead = true;
      Rejected.fetch_add(1, std::memory_order_relaxed);
      obs::addTo(ObsRejected);
      recordFate(Batch, RecordedFate::JournalRejected);
      return false;
    }
    ++JournalSeq;
  }
  if (Config.ValidateBatches &&
      !admit(St, structurallyValid(Batch.Samples))) {
    recordFate(Batch, RecordedFate::Refused);
    return false;
  }
  // Stamp the post-admission health into the batch for the worker-side
  // adaptive controller. Read here -- under the per-stream submit
  // serialization -- it is a pure function of the stream's admitted
  // sequence; read on the worker it would race later submissions.
  Batch.AdmitHealth = St.Health.load(std::memory_order_relaxed);
  // Record the admission before the batch can move (push or process), so
  // the stamped sequence is available to later drop/push-reject records.
  // Per-stream record order equals per-stream admission order (the
  // external per-stream submit serialization covers both), which is the
  // order applyRecorded re-runs the health machine in.
  recordFate(Batch, RecordedFate::Admitted);
  if (Config.Inline) {
    // Worker-less mode: the submitting thread is the worker. Mirror the
    // dequeue path exactly (hook, process, shard accounting) so every
    // counter an embedding reads means the same thing in both modes.
    Submitted.fetch_add(1, std::memory_order_relaxed);
    obs::addTo(ObsSubmitted);
    if (WorkerHook)
      WorkerHook(St.Shard, Batch);
    process(Batch);
    Shards[St.Shard]->BatchesProcessed.fetch_add(1,
                                                 std::memory_order_relaxed);
    return true;
  }
  // Count before pushing: once the push lands, a worker may process the
  // batch immediately, and a snapshot must never observe more processed
  // than submitted. A rejected push is uncounted again.
  Submitted.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t TraceSeq = Batch.TraceSeq;
  SampleBatch Evicted;
  if (!S.Queue.push(std::move(Batch), Recorder ? &Evicted : nullptr)) {
    Submitted.fetch_sub(1, std::memory_order_relaxed);
    Rejected.fetch_add(1, std::memory_order_relaxed);
    obs::addTo(ObsRejected);
    if (Recorder) {
      std::lock_guard<std::mutex> Lock(RecorderMutex);
      Recorder->recordPushReject(TraceSeq);
    }
    return false;
  }
  if (Recorder && Evicted.TraceSeq != 0) {
    // The push evicted the oldest queued batch (DropOldest). Its record
    // is already in the trace (it was recorded before its own push), so
    // a drop record referencing it is all replay needs to skip its
    // processing while keeping the eviction accounting.
    std::lock_guard<std::mutex> Lock(RecorderMutex);
    Recorder->recordDrop(Evicted.TraceSeq, St.Shard);
  }
  obs::addTo(ObsSubmitted);
  return true;
}

void MonitorService::recordFate(SampleBatch &Batch, RecordedFate Fate) {
  if (!Recorder)
    return;
  std::lock_guard<std::mutex> Lock(RecorderMutex);
  Batch.TraceSeq = Recorder->recordBatch(Batch, Fate);
}

bool MonitorService::admit(StreamState &St, bool Valid) {
  // Serialized per stream (see submit()); plain relaxed loads/stores are
  // enough, atomics only keep concurrent snapshot readers tear-free.
  // The admission count is the logical clock stamped on health events:
  // replay re-runs the same decisions, so it reproduces the same stamps.
  const auto Clock =
      St.AdmissionClock.fetch_add(1, std::memory_order_relaxed) + 1;
  const auto H = St.Health.load(std::memory_order_relaxed);
  const auto CleanTo = [&](StreamHealth Next) {
    const auto Streak =
        St.CleanStreak.load(std::memory_order_relaxed) + 1;
    if (Streak >= Config.Health.RecoveryCleanBatches) {
      St.CleanStreak.store(0, std::memory_order_relaxed);
      St.ConsecutivePoisoned.store(0, std::memory_order_relaxed);
      // A full recovery also forgives the past: the next quarantine
      // starts from the base backoff again.
      St.QuarantineEpisodes.store(0, std::memory_order_relaxed);
      St.Health.store(StreamHealth::Healthy, std::memory_order_relaxed);
      obs::addTo(ObsRecoveries);
      obs::recordEvent(ObsTracer, obs::EventKind::StreamRecovered, St.Id, 0,
                       Clock, static_cast<double>(Streak));
    } else {
      St.CleanStreak.store(Streak, std::memory_order_relaxed);
      St.Health.store(Next, std::memory_order_relaxed);
    }
  };

  switch (H) {
  case StreamHealth::Healthy:
    if (Valid)
      return true;
    St.PoisonedBatches.fetch_add(1, std::memory_order_relaxed);
    obs::addTo(ObsPoisoned);
    St.ConsecutivePoisoned.store(1, std::memory_order_relaxed);
    St.CleanStreak.store(0, std::memory_order_relaxed);
    if (1 >= Config.Health.PoisonQuarantineThreshold)
      quarantine(St);
    else
      St.Health.store(StreamHealth::Degraded, std::memory_order_relaxed);
    return false;

  case StreamHealth::Degraded:
    if (Valid) {
      CleanTo(StreamHealth::Degraded);
      return true;
    }
    St.PoisonedBatches.fetch_add(1, std::memory_order_relaxed);
    obs::addTo(ObsPoisoned);
    St.CleanStreak.store(0, std::memory_order_relaxed);
    if (St.ConsecutivePoisoned.fetch_add(1, std::memory_order_relaxed) + 1 >=
        Config.Health.PoisonQuarantineThreshold)
      quarantine(St);
    return false;

  case StreamHealth::Quarantined: {
    const auto Sat = St.QuarantineRejections.load(std::memory_order_relaxed);
    if (Sat < St.Backoff.load(std::memory_order_relaxed)) {
      St.QuarantineRejections.store(Sat + 1, std::memory_order_relaxed);
      St.QuarantinedBatches.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // Backoff served: this batch is the probe.
    St.Readmissions.fetch_add(1, std::memory_order_relaxed);
    if (Valid) {
      St.ConsecutivePoisoned.store(0, std::memory_order_relaxed);
      St.CleanStreak.store(1, std::memory_order_relaxed);
      St.Health.store(StreamHealth::Recovering, std::memory_order_relaxed);
      return true;
    }
    St.PoisonedBatches.fetch_add(1, std::memory_order_relaxed);
    obs::addTo(ObsPoisoned);
    quarantine(St);
    return false;
  }

  case StreamHealth::Recovering:
    if (Valid) {
      CleanTo(StreamHealth::Recovering);
      return true;
    }
    St.PoisonedBatches.fetch_add(1, std::memory_order_relaxed);
    obs::addTo(ObsPoisoned);
    quarantine(St);
    return false;
  }
  return false;
}

void MonitorService::quarantine(StreamState &St) {
  St.TimesQuarantined.fetch_add(1, std::memory_order_relaxed);
  const auto Episode =
      St.QuarantineEpisodes.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t Served =
      quarantineBackoffBatches(Config.Health, Episode);
  St.Backoff.store(Served, std::memory_order_relaxed);
  St.QuarantineRejections.store(0, std::memory_order_relaxed);
  St.CleanStreak.store(0, std::memory_order_relaxed);
  St.ConsecutivePoisoned.store(0, std::memory_order_relaxed);
  St.Health.store(StreamHealth::Quarantined, std::memory_order_relaxed);
  obs::addTo(ObsQuarantines);
  obs::recordEvent(ObsTracer, obs::EventKind::StreamQuarantined, St.Id, 0,
                   St.AdmissionClock.load(std::memory_order_relaxed),
                   static_cast<double>(Served));
}

void MonitorService::workerLoop(Shard &S) {
  SampleBatch Batch;
  while (S.Queue.pop(Batch)) {
    if (WorkerHook)
      WorkerHook(S.Index, Batch);
    process(Batch);
    S.BatchesProcessed.fetch_add(1, std::memory_order_relaxed);
  }
}

void MonitorService::process(const SampleBatch &Batch) {
  StreamState &St = *Streams[Batch.Stream];
  assert(St.Shard == shardOf(Batch.Stream) && "batch routed to wrong shard");
  if (!Batch.Samples.empty()) {
    core::RegionMonitor &Monitor = *St.Monitor;
    const std::uint64_t PhaseChangesBefore = Monitor.totalPhaseChanges();
    Monitor.observeInterval(Batch.Samples);
    // lastUcrFraction() is k/n of this interval, so the product recovers
    // the exact unattributed-sample count.
    const auto Ucr = static_cast<std::uint64_t>(std::llround(
        Monitor.lastUcrFraction() *
        static_cast<double>(Batch.Samples.size())));
    const std::uint64_t IntervalClock =
        St.IntervalsProcessed.fetch_add(1, std::memory_order_relaxed) + 1;
    St.TotalSamples.fetch_add(Batch.Samples.size(),
                              std::memory_order_relaxed);
    St.UcrSamples.fetch_add(Ucr, std::memory_order_relaxed);
    St.PhaseChanges.store(Monitor.totalPhaseChanges(),
                          std::memory_order_relaxed);
    St.FormationTriggers.store(Monitor.formationTriggers(),
                               std::memory_order_relaxed);
    St.RegionsFormed.store(Monitor.regions().size(),
                           std::memory_order_relaxed);
    St.ActiveRegions.store(Monitor.activeRegionCount(),
                           std::memory_order_relaxed);
    // Adaptive controller: one decision per interval, fed nothing but
    // stream-local logical state -- the monitor's post-interval view plus
    // the health stamped at admission -- so a replay of the same admitted
    // sequence reproduces the same period schedule bit-for-bit.
    sampling::AdaptiveController &Ctl = St.Controller;
    const std::uint64_t SavedBefore = Ctl.samplesSaved();
    Ctl.noteSamples(Batch.Samples.size());
    sampling::StreamFeedback F;
    F.PhaseChanged = Monitor.totalPhaseChanges() != PhaseChangesBefore;
    const std::size_t Active = Monitor.activeRegionCount();
    F.AllRegionsStable = Active > 0 && Monitor.stableRegionCount() == Active;
    F.UcrFraction = Monitor.lastUcrFraction();
    F.Healthy = Batch.AdmitHealth == StreamHealth::Healthy;
    const sampling::AdaptiveDecision Decision = Ctl.observe(F);
    St.PeriodScaleLog2.store(Ctl.scaleLog2(), std::memory_order_relaxed);
    St.SamplesSaved.store(Ctl.samplesSaved(), std::memory_order_relaxed);
    St.CtlLengthens.store(Ctl.lengthens(), std::memory_order_relaxed);
    St.CtlTightens.store(Ctl.tightens(), std::memory_order_relaxed);
    obs::addTo(St.Instruments.SamplingSamplesSaved,
               Ctl.samplesSaved() - SavedBefore);
    obs::setGauge(St.Instruments.SamplingPeriodCurrent,
                  static_cast<double>(Ctl.currentPeriodCycles()));
    if (Decision == sampling::AdaptiveDecision::Lengthen) {
      obs::addTo(St.Instruments.SamplingLengthens);
      obs::recordEvent(St.Instruments.Tracer,
                       obs::EventKind::SamplingPeriodLengthened, St.Id, 0,
                       IntervalClock,
                       static_cast<double>(Ctl.currentPeriodCycles()));
    } else if (Decision == sampling::AdaptiveDecision::Tighten) {
      obs::addTo(St.Instruments.SamplingTightens);
      obs::recordEvent(St.Instruments.Tracer,
                       obs::EventKind::SamplingPeriodTightened, St.Id, 0,
                       IntervalClock,
                       static_cast<double>(Ctl.currentPeriodCycles()));
    }
  }
  // Release-publish the batch count last so a snapshot that observes it
  // also observes this batch's other counters.
  St.BatchesProcessed.fetch_add(1, std::memory_order_release);
}

ServiceSnapshot MonitorService::snapshot() const {
  ServiceSnapshot Snap;
  Snap.Shards.reserve(Shards.size());
  for (const auto &S : Shards) {
    ShardSnapshot Sh;
    Sh.QueueDepth = S->Queue.size();
    Sh.BatchesProcessed = S->BatchesProcessed.load(std::memory_order_relaxed);
    Sh.BatchesDropped = S->Queue.dropped();
    Snap.QueueDepth += Sh.QueueDepth;
    Snap.BatchesDropped += Sh.BatchesDropped;
    Snap.Shards.push_back(Sh);
  }
  Snap.Streams.reserve(Streams.size());
  for (StreamId Id = 0; Id < Streams.size(); ++Id) {
    const StreamState &St = *Streams[Id];
    StreamSnapshot Out;
    Out.Stream = Id;
    Out.Shard = St.Shard;
    Out.BatchesProcessed = St.BatchesProcessed.load(std::memory_order_acquire);
    Out.IntervalsProcessed =
        St.IntervalsProcessed.load(std::memory_order_relaxed);
    Out.PhaseChanges = St.PhaseChanges.load(std::memory_order_relaxed);
    Out.FormationTriggers =
        St.FormationTriggers.load(std::memory_order_relaxed);
    Out.RegionsFormed = St.RegionsFormed.load(std::memory_order_relaxed);
    Out.ActiveRegions = St.ActiveRegions.load(std::memory_order_relaxed);
    Out.TotalSamples = St.TotalSamples.load(std::memory_order_relaxed);
    Out.UcrSamples = St.UcrSamples.load(std::memory_order_relaxed);
    Out.Health = St.Health.load(std::memory_order_relaxed);
    Out.PoisonedBatches =
        St.PoisonedBatches.load(std::memory_order_relaxed);
    Out.QuarantinedBatches =
        St.QuarantinedBatches.load(std::memory_order_relaxed);
    Out.TimesQuarantined =
        St.TimesQuarantined.load(std::memory_order_relaxed);
    Out.Readmissions = St.Readmissions.load(std::memory_order_relaxed);
    Out.PeriodScaleLog2 = St.PeriodScaleLog2.load(std::memory_order_relaxed);
    Out.SamplesSaved = St.SamplesSaved.load(std::memory_order_relaxed);
    Out.ControllerLengthens =
        St.CtlLengthens.load(std::memory_order_relaxed);
    Out.ControllerTightens = St.CtlTightens.load(std::memory_order_relaxed);
    Snap.BatchesProcessed += Out.BatchesProcessed;
    Snap.IntervalsProcessed += Out.IntervalsProcessed;
    Snap.PhaseChanges += Out.PhaseChanges;
    Snap.TotalSamples += Out.TotalSamples;
    Snap.UcrSamples += Out.UcrSamples;
    Snap.SamplesSaved += Out.SamplesSaved;
    Snap.BatchesPoisoned += Out.PoisonedBatches;
    Snap.BatchesQuarantined += Out.QuarantinedBatches;
    Snap.Streams.push_back(Out);
  }
  // Submitted is read last: every batch counted processed or dropped
  // above was pre-counted in Submitted before its push (and the acquire
  // loads above order this load after them), so a snapshot always
  // satisfies processed + dropped <= submitted.
  Snap.BatchesSubmitted = Submitted.load(std::memory_order_relaxed);
  Snap.BatchesRejected = Rejected.load(std::memory_order_relaxed);
  // Point-in-time gauges piggyback on the snapshot walk; counters were
  // maintained at their source sites.
  obs::setGauge(ObsQueueDepth, static_cast<double>(Snap.QueueDepth));
  std::uint64_t InQuarantine = 0;
  for (const StreamSnapshot &Out : Snap.Streams)
    if (Out.Health == StreamHealth::Quarantined)
      ++InQuarantine;
  obs::setGauge(ObsStreamsQuarantined, static_cast<double>(InQuarantine));
  return Snap;
}

const core::RegionMonitor &MonitorService::monitor(StreamId Stream) const {
  assert(Stream < Streams.size() && "unknown stream");
  assert((!running() || Config.Inline) &&
         "monitors are only inspectable while stopped (or inline)");
  return *Streams[Stream]->Monitor;
}

const sampling::AdaptiveController &
MonitorService::controller(StreamId Stream) const {
  assert(Stream < Streams.size() && "unknown stream");
  assert((!running() || Config.Inline) &&
         "controllers are only inspectable while stopped (or inline)");
  return Streams[Stream]->Controller;
}

Cycles MonitorService::recommendedPeriodCycles(StreamId Stream) const {
  assert(Stream < Streams.size() && "unknown stream");
  return sampling::scaledPeriod(
      Config.Adaptive.BasePeriodCycles,
      Streams[Stream]->PeriodScaleLog2.load(std::memory_order_relaxed));
}

//===----------------------------------------------------------------------===//
// Crash-safe persistence
//===----------------------------------------------------------------------===//

void MonitorService::attachPersistence(persist::CheckpointManager &Store) {
  assert(!Started && "persistence must be attached before start()");
  Persist = &Store;
}

//===----------------------------------------------------------------------===//
// Flight recorder
//===----------------------------------------------------------------------===//

void MonitorService::attachRecorder(BatchRecorder &R) {
  assert(!Started && "recorder must be attached before start()");
  Recorder = &R;
  Recorder->recordConfig(configFingerprint());
}

std::vector<std::uint8_t> MonitorService::configFingerprint() const {
  persist::ByteWriter W;
  W.u64(Config.Workers);
  W.u64(Config.QueueCapacity);
  W.u8(static_cast<std::uint8_t>(Config.Policy));
  W.boolean(Config.ValidateBatches);
  W.u32(Config.Health.PoisonQuarantineThreshold);
  W.u64(Config.Health.QuarantineBaseBatches);
  W.u64(Config.Health.QuarantineMaxBatches);
  W.u32(Config.Health.RecoveryCleanBatches);
  W.u32(static_cast<std::uint32_t>(Streams.size()));
  // The adaptive config is deliberately absent: controller output is an
  // advisory period recommendation that never feeds back into admission,
  // routing, or processing of the recorded batches, so it cannot
  // desynchronize a replay. Controller *state* is still carried -- and
  // config-checked -- by snapshot stream sections (see encodeState).
  return W.take();
}

bool MonitorService::applyRecorded(SampleBatch Batch, RecordedFate Fate,
                                   bool Dropped, bool PushFailed) {
  assert(Config.Inline && "replay drives a worker-less service");
  assert(running() && "start() the replay service before applying records");
  if (Batch.Stream >= Streams.size())
    return false;
  StreamState &St = *Streams[Batch.Stream];
  switch (Fate) {
  case RecordedFate::DoorRejected:
  case RecordedFate::JournalRejected:
    // Environmental refusals (closed queue, dead journal): reproduce the
    // accounting without re-running the environment that caused them.
    // Neither advanced the health machine or the journal originally.
    Rejected.fetch_add(1, std::memory_order_relaxed);
    obs::addTo(ObsRejected);
    return true;
  case RecordedFate::Refused:
  case RecordedFate::Admitted:
    break;
  }
  if (Persist && !JournalDead) {
    // Mirror submit()'s write-ahead: the original journaled this batch
    // before admission, so a replay that is itself persisted lands on
    // the same journal sequence (encodeState compares bit-identical).
    persist::ByteWriter W;
    encodeBatchPayload(W, Batch);
    if (!Persist->appendJournal(JournalSeq + 1, W.data()))
      return false;
    ++JournalSeq;
  }
  const bool Admit =
      !Config.ValidateBatches || admit(St, structurallyValid(Batch.Samples));
  if (Admit != (Fate == RecordedFate::Admitted))
    return false; // divergence: the health machine decided differently
  if (!Admit)
    return true;
  // Same stamp submit() takes: replayed admission re-derives the health
  // the controller saw, keeping its period schedule bit-identical.
  Batch.AdmitHealth = St.Health.load(std::memory_order_relaxed);
  if (PushFailed) {
    // Original: push rejected after the door check (queue closed under
    // it). Submitted was pre-counted then uncounted; only the rejection
    // sticks.
    Rejected.fetch_add(1, std::memory_order_relaxed);
    obs::addTo(ObsRejected);
    return true;
  }
  Submitted.fetch_add(1, std::memory_order_relaxed);
  obs::addTo(ObsSubmitted);
  if (Dropped) {
    // Evicted by DropOldest before any worker saw it: submitted and
    // dropped, never processed.
    Shards[St.Shard]->Queue.countDrop();
    return true;
  }
  if (WorkerHook)
    WorkerHook(St.Shard, Batch);
  process(Batch);
  Shards[St.Shard]->BatchesProcessed.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::vector<std::uint8_t> MonitorService::encodeState() const {
  assert((!running() || Config.Inline) &&
         "state can only be encoded while quiescent");
  std::vector<persist::SnapshotSection> Sections;
  {
    persist::ByteWriter W;
    W.u64(JournalSeq);
    // Config fingerprint: the fields replay determinism depends on. A
    // snapshot taken under a different configuration is rejected rather
    // than misinterpreted (different admission decisions, shard routing,
    // or stream registry would desynchronize replay).
    W.u64(Config.Workers);
    W.u8(static_cast<std::uint8_t>(Config.Policy));
    W.boolean(Config.ValidateBatches);
    W.u32(Config.Health.PoisonQuarantineThreshold);
    W.u64(Config.Health.QuarantineBaseBatches);
    W.u64(Config.Health.QuarantineMaxBatches);
    W.u32(Config.Health.RecoveryCleanBatches);
    // Rejected is deliberately absent: door rejections (post-stop
    // submissions, failed appends) describe the previous process's
    // lifetime, not learned state, and are not replay-reproducible.
    W.u64(Submitted.load(std::memory_order_relaxed));
    W.u32(static_cast<std::uint32_t>(Streams.size()));
    W.u32(static_cast<std::uint32_t>(Shards.size()));
    for (const auto &S : Shards)
      W.u64(S->BatchesProcessed.load(std::memory_order_relaxed));
    Sections.push_back({MetaSectionId, W.take()});
  }
  for (StreamId Id = 0; Id < Streams.size(); ++Id) {
    const StreamState &St = *Streams[Id];
    persist::ByteWriter W;
    W.u32(Id);
    W.u64(St.Shard);
    W.u64(St.BatchesProcessed.load(std::memory_order_relaxed));
    W.u64(St.IntervalsProcessed.load(std::memory_order_relaxed));
    W.u64(St.PhaseChanges.load(std::memory_order_relaxed));
    W.u64(St.FormationTriggers.load(std::memory_order_relaxed));
    W.u64(St.RegionsFormed.load(std::memory_order_relaxed));
    W.u64(St.ActiveRegions.load(std::memory_order_relaxed));
    W.u64(St.TotalSamples.load(std::memory_order_relaxed));
    W.u64(St.UcrSamples.load(std::memory_order_relaxed));
    W.u8(static_cast<std::uint8_t>(St.Health.load(std::memory_order_relaxed)));
    W.u64(St.PoisonedBatches.load(std::memory_order_relaxed));
    W.u64(St.QuarantinedBatches.load(std::memory_order_relaxed));
    W.u64(St.TimesQuarantined.load(std::memory_order_relaxed));
    W.u64(St.Readmissions.load(std::memory_order_relaxed));
    W.u64(St.QuarantineEpisodes.load(std::memory_order_relaxed));
    W.u32(St.ConsecutivePoisoned.load(std::memory_order_relaxed));
    W.u32(St.CleanStreak.load(std::memory_order_relaxed));
    W.u64(St.Backoff.load(std::memory_order_relaxed));
    W.u64(St.QuarantineRejections.load(std::memory_order_relaxed));
    persist::StateCodec::encode(W, St.Controller);
    persist::StateCodec::encode(W, *St.Monitor);
    Sections.push_back({StreamSectionId, W.take()});
  }
  return persist::encodeSnapshot(Sections);
}

bool MonitorService::decodeState(
    const std::vector<persist::SnapshotSection> &Sections) {
  if (Sections.size() != Streams.size() + 1 ||
      Sections.front().Id != MetaSectionId)
    return false;
  {
    persist::ByteReader R(Sections.front().Payload);
    const std::uint64_t Seq = R.u64();
    const std::uint64_t Workers = R.u64();
    const std::uint8_t Policy = R.u8();
    const bool Validate = R.boolean();
    const std::uint32_t PoisonThresh = R.u32();
    const std::uint64_t BackoffBase = R.u64();
    const std::uint64_t BackoffMax = R.u64();
    const std::uint32_t CleanBatches = R.u32();
    const std::uint64_t Sub = R.u64();
    const std::uint32_t StreamCount = R.u32();
    const std::uint32_t ShardCount = R.u32();
    if (!R.ok() || Workers != Config.Workers ||
        Policy != static_cast<std::uint8_t>(Config.Policy) ||
        Validate != Config.ValidateBatches ||
        PoisonThresh != Config.Health.PoisonQuarantineThreshold ||
        BackoffBase != Config.Health.QuarantineBaseBatches ||
        BackoffMax != Config.Health.QuarantineMaxBatches ||
        CleanBatches != Config.Health.RecoveryCleanBatches ||
        StreamCount != Streams.size() || ShardCount != Shards.size())
      return false;
    for (auto &S : Shards)
      S->BatchesProcessed.store(R.u64(), std::memory_order_relaxed);
    if (!R.atEnd())
      return false;
    Submitted.store(Sub, std::memory_order_relaxed);
    JournalSeq = Seq;
    SnapshotSeq = Seq;
  }
  std::vector<bool> Seen(Streams.size(), false);
  for (std::size_t I = 1; I < Sections.size(); ++I) {
    if (Sections[I].Id != StreamSectionId)
      return false;
    persist::ByteReader R(Sections[I].Payload);
    const std::uint32_t Id = R.u32();
    if (!R.ok() || Id >= Streams.size() || Seen[Id])
      return false;
    Seen[Id] = true;
    StreamState &St = *Streams[Id];
    if (R.u64() != St.Shard)
      return false;
    const auto LoadU64 = [&R](std::atomic<std::uint64_t> &A) {
      A.store(R.u64(), std::memory_order_relaxed);
    };
    LoadU64(St.BatchesProcessed);
    LoadU64(St.IntervalsProcessed);
    LoadU64(St.PhaseChanges);
    LoadU64(St.FormationTriggers);
    LoadU64(St.RegionsFormed);
    LoadU64(St.ActiveRegions);
    LoadU64(St.TotalSamples);
    LoadU64(St.UcrSamples);
    const std::uint8_t Health = R.u8();
    if (!R.ok() ||
        Health > static_cast<std::uint8_t>(StreamHealth::Recovering))
      return false;
    St.Health.store(static_cast<StreamHealth>(Health),
                    std::memory_order_relaxed);
    LoadU64(St.PoisonedBatches);
    LoadU64(St.QuarantinedBatches);
    LoadU64(St.TimesQuarantined);
    LoadU64(St.Readmissions);
    LoadU64(St.QuarantineEpisodes);
    St.ConsecutivePoisoned.store(R.u32(), std::memory_order_relaxed);
    St.CleanStreak.store(R.u32(), std::memory_order_relaxed);
    LoadU64(St.Backoff);
    LoadU64(St.QuarantineRejections);
    // The controller payload carries its own config fingerprint; a
    // snapshot taken under different adaptive tuning (or with desynced
    // dynamic state) fails here and the rung is rejected.
    if (!persist::StateCodec::decode(R, St.Controller))
      return false;
    St.PeriodScaleLog2.store(St.Controller.scaleLog2(),
                             std::memory_order_relaxed);
    St.SamplesSaved.store(St.Controller.samplesSaved(),
                          std::memory_order_relaxed);
    St.CtlLengthens.store(St.Controller.lengthens(),
                          std::memory_order_relaxed);
    St.CtlTightens.store(St.Controller.tightens(),
                         std::memory_order_relaxed);
    if (!persist::StateCodec::decode(R, *St.Monitor) || !R.atEnd())
      return false;
  }
  return true;
}

void MonitorService::resetPersistedState() {
  for (auto &StPtr : Streams) {
    StreamState &St = *StPtr;
    St.Monitor->reset();
    St.BatchesProcessed.store(0, std::memory_order_relaxed);
    St.IntervalsProcessed.store(0, std::memory_order_relaxed);
    St.PhaseChanges.store(0, std::memory_order_relaxed);
    St.FormationTriggers.store(0, std::memory_order_relaxed);
    St.RegionsFormed.store(0, std::memory_order_relaxed);
    St.ActiveRegions.store(0, std::memory_order_relaxed);
    St.TotalSamples.store(0, std::memory_order_relaxed);
    St.UcrSamples.store(0, std::memory_order_relaxed);
    St.Health.store(StreamHealth::Healthy, std::memory_order_relaxed);
    St.PoisonedBatches.store(0, std::memory_order_relaxed);
    St.QuarantinedBatches.store(0, std::memory_order_relaxed);
    St.TimesQuarantined.store(0, std::memory_order_relaxed);
    St.Readmissions.store(0, std::memory_order_relaxed);
    St.QuarantineEpisodes.store(0, std::memory_order_relaxed);
    St.ConsecutivePoisoned.store(0, std::memory_order_relaxed);
    St.CleanStreak.store(0, std::memory_order_relaxed);
    St.Backoff.store(0, std::memory_order_relaxed);
    St.QuarantineRejections.store(0, std::memory_order_relaxed);
    St.AdmissionClock.store(0, std::memory_order_relaxed);
    St.Controller.reset();
    St.PeriodScaleLog2.store(0, std::memory_order_relaxed);
    St.SamplesSaved.store(0, std::memory_order_relaxed);
    St.CtlLengthens.store(0, std::memory_order_relaxed);
    St.CtlTightens.store(0, std::memory_order_relaxed);
  }
  for (auto &S : Shards)
    S->BatchesProcessed.store(0, std::memory_order_relaxed);
  Submitted.store(0, std::memory_order_relaxed);
  JournalSeq = 0;
  SnapshotSeq = 0;
}

bool MonitorService::replayRecord(std::span<const std::uint8_t> Payload) {
  persist::ByteReader R(Payload);
  SampleBatch Batch;
  Batch.Stream = R.u32();
  const std::uint64_t Count = R.u64();
  if (!R.ok() || Batch.Stream >= Streams.size() ||
      Count > R.remaining() / SampleWireBytes)
    return false;
  Batch.Samples.reserve(Count);
  for (std::uint64_t I = 0; I < Count; ++I) {
    Sample S;
    S.Pc = R.u64();
    S.Time = R.u64();
    S.DCacheMiss = R.boolean();
    Batch.Samples.push_back(S);
  }
  if (!R.atEnd())
    return false;
  StreamState &St = *Streams[Batch.Stream];
  // The record is well-formed; from here on mirror submit()'s accepted
  // path exactly (health machine, then inline processing standing in for
  // the shard worker). A batch the health machine refuses was refused in
  // the original run too -- the refusal *is* the replayed behaviour.
  if (Config.ValidateBatches && !admit(St, structurallyValid(Batch.Samples)))
    return true;
  Batch.AdmitHealth = St.Health.load(std::memory_order_relaxed);
  Submitted.fetch_add(1, std::memory_order_relaxed);
  process(Batch);
  Shards[St.Shard]->BatchesProcessed.fetch_add(1, std::memory_order_relaxed);
  return true;
}

RestoreOutcome MonitorService::restore() {
  assert(Persist && "attachPersistence() first");
  assert(!Started && "restore() must precede start()");
  using Rung = persist::CheckpointManager::Rung;
  bool Loaded = false;
  for (const Rung R : {Rung::Current, Rung::Previous}) {
    const auto Sections = Persist->loadRung(R);
    if (!Sections)
      continue;
    resetPersistedState();
    if (decodeState(*Sections)) {
      if (R == Rung::Previous)
        Persist->noteFallbackUsed();
      Loaded = true;
      break;
    }
    Persist->noteDecodeFailure();
  }
  if (!Loaded) {
    resetPersistedState();
    Persist->noteColdStart();
  }
  const persist::JournalResult JR = Persist->replayAndRepair(
      SnapshotSeq,
      [this](std::uint64_t Seq, std::span<const std::uint8_t> Payload) {
        if (!replayRecord(Payload))
          return false;
        JournalSeq = Seq;
        return true;
      });
  if (Loaded)
    return JR.RecordsReplayed > 0 ? RestoreOutcome::SnapshotPlusJournal
                                  : RestoreOutcome::SnapshotOnly;
  return JR.RecordsReplayed > 0 ? RestoreOutcome::JournalOnly
                                : RestoreOutcome::ColdStart;
}

bool MonitorService::checkpoint() {
  assert(Persist && "attachPersistence() first");
  assert((!running() || Config.Inline) &&
         "checkpoint() requires a quiescent service");
  const std::vector<std::uint8_t> Encoded = encodeState();
  const bool Committed = Persist->commitSnapshot(Encoded, SnapshotSeq);
  if (Committed)
    SnapshotSeq = JournalSeq;
  if (Recorder) {
    std::lock_guard<std::mutex> Lock(RecorderMutex);
    Recorder->recordCheckpoint(JournalSeq, Committed);
  }
  return Committed;
}
