//===- service/MonitorService.cpp - Sharded multi-stream monitor ----------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/MonitorService.h"

#include <cassert>
#include <cmath>

using namespace regmon;
using namespace regmon::service;

namespace {

/// splitmix64 finalizer: decorrelates dense stream ids from shard indices
/// so that id patterns (all-even cores, strided assignment) cannot pile
/// every stream onto one shard.
std::uint64_t mix64(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

} // namespace

MonitorService::MonitorService(ServiceConfig Cfg) : Config(Cfg) {
  assert(Config.Workers > 0 && "service needs at least one worker");
  assert(Config.QueueCapacity > 0 && "shard queues need capacity");
  Shards.reserve(Config.Workers);
  for (std::size_t I = 0; I < Config.Workers; ++I)
    Shards.push_back(
        std::make_unique<Shard>(Config.QueueCapacity, Config.Policy));
}

MonitorService::~MonitorService() { stop(); }

StreamId MonitorService::addStream(const core::CodeMap &Map,
                                   core::RegionMonitorConfig MonitorConfig) {
  assert(!Started && "streams must be registered before start()");
  const auto Id = static_cast<StreamId>(Streams.size());
  auto State = std::make_unique<StreamState>();
  State->Map = &Map;
  State->Shard = static_cast<std::size_t>(mix64(Id) % Shards.size());
  State->Monitor = std::make_unique<core::RegionMonitor>(Map, MonitorConfig);
  Streams.push_back(std::move(State));
  return Id;
}

std::size_t MonitorService::shardOf(StreamId Stream) const {
  assert(Stream < Streams.size() && "unknown stream");
  return Streams[Stream]->Shard;
}

void MonitorService::start() {
  assert(!Started && "MonitorService supports one start/stop cycle");
  Started = true;
  Running.store(true, std::memory_order_release);
  for (auto &S : Shards)
    S->Worker = std::thread([this, Raw = S.get()] { workerLoop(*Raw); });
}

void MonitorService::stop() {
  if (Stopped)
    return;
  Stopped = true;
  for (auto &S : Shards)
    S->Queue.close();
  if (Started)
    for (auto &S : Shards)
      if (S->Worker.joinable())
        S->Worker.join();
  Running.store(false, std::memory_order_release);
}

bool MonitorService::submit(SampleBatch Batch) {
  assert(Batch.Stream < Streams.size() && "unknown stream");
  Shard &S = *Shards[Streams[Batch.Stream]->Shard];
  // Count before pushing: once the push lands, a worker may process the
  // batch immediately, and a snapshot must never observe more processed
  // than submitted. A rejected push is uncounted again.
  Submitted.fetch_add(1, std::memory_order_relaxed);
  if (!S.Queue.push(std::move(Batch))) {
    Submitted.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void MonitorService::workerLoop(Shard &S) {
  SampleBatch Batch;
  while (S.Queue.pop(Batch)) {
    process(Batch);
    S.BatchesProcessed.fetch_add(1, std::memory_order_relaxed);
  }
}

void MonitorService::process(const SampleBatch &Batch) {
  StreamState &St = *Streams[Batch.Stream];
  assert(St.Shard == shardOf(Batch.Stream) && "batch routed to wrong shard");
  if (!Batch.Samples.empty()) {
    core::RegionMonitor &Monitor = *St.Monitor;
    Monitor.observeInterval(Batch.Samples);
    // lastUcrFraction() is k/n of this interval, so the product recovers
    // the exact unattributed-sample count.
    const auto Ucr = static_cast<std::uint64_t>(std::llround(
        Monitor.lastUcrFraction() *
        static_cast<double>(Batch.Samples.size())));
    St.IntervalsProcessed.fetch_add(1, std::memory_order_relaxed);
    St.TotalSamples.fetch_add(Batch.Samples.size(),
                              std::memory_order_relaxed);
    St.UcrSamples.fetch_add(Ucr, std::memory_order_relaxed);
    St.PhaseChanges.store(Monitor.totalPhaseChanges(),
                          std::memory_order_relaxed);
    St.FormationTriggers.store(Monitor.formationTriggers(),
                               std::memory_order_relaxed);
    St.RegionsFormed.store(Monitor.regions().size(),
                           std::memory_order_relaxed);
    St.ActiveRegions.store(Monitor.activeRegionCount(),
                           std::memory_order_relaxed);
  }
  // Release-publish the batch count last so a snapshot that observes it
  // also observes this batch's other counters.
  St.BatchesProcessed.fetch_add(1, std::memory_order_release);
}

ServiceSnapshot MonitorService::snapshot() const {
  ServiceSnapshot Snap;
  Snap.Shards.reserve(Shards.size());
  for (const auto &S : Shards) {
    ShardSnapshot Sh;
    Sh.QueueDepth = S->Queue.size();
    Sh.BatchesProcessed = S->BatchesProcessed.load(std::memory_order_relaxed);
    Sh.BatchesDropped = S->Queue.dropped();
    Snap.QueueDepth += Sh.QueueDepth;
    Snap.BatchesDropped += Sh.BatchesDropped;
    Snap.Shards.push_back(Sh);
  }
  Snap.Streams.reserve(Streams.size());
  for (StreamId Id = 0; Id < Streams.size(); ++Id) {
    const StreamState &St = *Streams[Id];
    StreamSnapshot Out;
    Out.Stream = Id;
    Out.Shard = St.Shard;
    Out.BatchesProcessed = St.BatchesProcessed.load(std::memory_order_acquire);
    Out.IntervalsProcessed =
        St.IntervalsProcessed.load(std::memory_order_relaxed);
    Out.PhaseChanges = St.PhaseChanges.load(std::memory_order_relaxed);
    Out.FormationTriggers =
        St.FormationTriggers.load(std::memory_order_relaxed);
    Out.RegionsFormed = St.RegionsFormed.load(std::memory_order_relaxed);
    Out.ActiveRegions = St.ActiveRegions.load(std::memory_order_relaxed);
    Out.TotalSamples = St.TotalSamples.load(std::memory_order_relaxed);
    Out.UcrSamples = St.UcrSamples.load(std::memory_order_relaxed);
    Snap.BatchesProcessed += Out.BatchesProcessed;
    Snap.IntervalsProcessed += Out.IntervalsProcessed;
    Snap.PhaseChanges += Out.PhaseChanges;
    Snap.TotalSamples += Out.TotalSamples;
    Snap.UcrSamples += Out.UcrSamples;
    Snap.Streams.push_back(Out);
  }
  // Submitted is read last: every batch counted processed or dropped
  // above was pre-counted in Submitted before its push (and the acquire
  // loads above order this load after them), so a snapshot always
  // satisfies processed + dropped <= submitted.
  Snap.BatchesSubmitted = Submitted.load(std::memory_order_relaxed);
  return Snap;
}

const core::RegionMonitor &MonitorService::monitor(StreamId Stream) const {
  assert(Stream < Streams.size() && "unknown stream");
  assert(!running() && "monitors are only inspectable while stopped");
  return *Streams[Stream]->Monitor;
}
