//===- service/MonitorService.cpp - Sharded multi-stream monitor ----------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/MonitorService.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace regmon;
using namespace regmon::service;

namespace {

/// splitmix64 finalizer: decorrelates dense stream ids from shard indices
/// so that id patterns (all-even cores, strided assignment) cannot pile
/// every stream onto one shard.
std::uint64_t mix64(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

} // namespace

MonitorService::MonitorService(ServiceConfig Cfg) : Config(Cfg) {
  assert(Config.Workers > 0 && "service needs at least one worker");
  assert(Config.QueueCapacity > 0 && "shard queues need capacity");
  assert(Config.Health.QuarantineBaseBatches > 0 &&
         "quarantine backoff must start positive");
  assert(Config.Health.QuarantineMaxBatches >=
             Config.Health.QuarantineBaseBatches &&
         "backoff ceiling below its base");
  Shards.reserve(Config.Workers);
  for (std::size_t I = 0; I < Config.Workers; ++I)
    Shards.push_back(
        std::make_unique<Shard>(I, Config.QueueCapacity, Config.Policy));
}

MonitorService::~MonitorService() { stop(); }

StreamId MonitorService::addStream(const core::CodeMap &Map,
                                   core::RegionMonitorConfig MonitorConfig) {
  assert(!Started && "streams must be registered before start()");
  const auto Id = static_cast<StreamId>(Streams.size());
  auto State = std::make_unique<StreamState>();
  State->Map = &Map;
  State->Shard = static_cast<std::size_t>(mix64(Id) % Shards.size());
  State->Monitor = std::make_unique<core::RegionMonitor>(Map, MonitorConfig);
  Streams.push_back(std::move(State));
  return Id;
}

std::size_t MonitorService::shardOf(StreamId Stream) const {
  assert(Stream < Streams.size() && "unknown stream");
  return Streams[Stream]->Shard;
}

void MonitorService::setWorkerHook(
    std::function<void(std::size_t, const SampleBatch &)> Hook) {
  assert(!Started && "worker hooks must be installed before start()");
  WorkerHook = std::move(Hook);
}

void MonitorService::start() {
  assert(!Started && "MonitorService supports one start/stop cycle");
  Started = true;
  Running.store(true, std::memory_order_release);
  for (auto &S : Shards)
    S->Worker = std::thread([this, Raw = S.get()] { workerLoop(*Raw); });
}

void MonitorService::stop() {
  if (Stopped)
    return;
  Stopped = true;
  // Raise the stop flag before closing the queues so a worker stalled in
  // a hook (which must poll stopRequested()) resumes and drains; stop()
  // is then bounded by the hook's polling period, not the stall length.
  StopRequested.store(true, std::memory_order_release);
  for (auto &S : Shards)
    S->Queue.close();
  if (Started)
    for (auto &S : Shards)
      if (S->Worker.joinable())
        S->Worker.join();
  Running.store(false, std::memory_order_release);
}

bool MonitorService::submit(SampleBatch Batch) {
  assert(Batch.Stream < Streams.size() && "unknown stream");
  StreamState &St = *Streams[Batch.Stream];
  Shard &S = *Shards[St.Shard];
  // A batch arriving after stop() is refused at the door without
  // advancing the stream's health: a closed queue says nothing about the
  // collector's behaviour.
  if (S.Queue.closed()) {
    Rejected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (Config.ValidateBatches &&
      !admit(St, structurallyValid(Batch.Samples)))
    return false;
  // Count before pushing: once the push lands, a worker may process the
  // batch immediately, and a snapshot must never observe more processed
  // than submitted. A rejected push is uncounted again.
  Submitted.fetch_add(1, std::memory_order_relaxed);
  if (!S.Queue.push(std::move(Batch))) {
    Submitted.fetch_sub(1, std::memory_order_relaxed);
    Rejected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool MonitorService::admit(StreamState &St, bool Valid) {
  // Serialized per stream (see submit()); plain relaxed loads/stores are
  // enough, atomics only keep concurrent snapshot readers tear-free.
  const auto H = St.Health.load(std::memory_order_relaxed);
  const auto CleanTo = [&](StreamHealth Next) {
    const auto Streak =
        St.CleanStreak.load(std::memory_order_relaxed) + 1;
    if (Streak >= Config.Health.RecoveryCleanBatches) {
      St.CleanStreak.store(0, std::memory_order_relaxed);
      St.ConsecutivePoisoned.store(0, std::memory_order_relaxed);
      // A full recovery also forgives the past: the next quarantine
      // starts from the base backoff again.
      St.QuarantineEpisodes.store(0, std::memory_order_relaxed);
      St.Health.store(StreamHealth::Healthy, std::memory_order_relaxed);
    } else {
      St.CleanStreak.store(Streak, std::memory_order_relaxed);
      St.Health.store(Next, std::memory_order_relaxed);
    }
  };

  switch (H) {
  case StreamHealth::Healthy:
    if (Valid)
      return true;
    St.PoisonedBatches.fetch_add(1, std::memory_order_relaxed);
    St.ConsecutivePoisoned.store(1, std::memory_order_relaxed);
    St.CleanStreak.store(0, std::memory_order_relaxed);
    if (1 >= Config.Health.PoisonQuarantineThreshold)
      quarantine(St);
    else
      St.Health.store(StreamHealth::Degraded, std::memory_order_relaxed);
    return false;

  case StreamHealth::Degraded:
    if (Valid) {
      CleanTo(StreamHealth::Degraded);
      return true;
    }
    St.PoisonedBatches.fetch_add(1, std::memory_order_relaxed);
    St.CleanStreak.store(0, std::memory_order_relaxed);
    if (St.ConsecutivePoisoned.fetch_add(1, std::memory_order_relaxed) + 1 >=
        Config.Health.PoisonQuarantineThreshold)
      quarantine(St);
    return false;

  case StreamHealth::Quarantined: {
    const auto Sat = St.QuarantineRejections.load(std::memory_order_relaxed);
    if (Sat < St.Backoff.load(std::memory_order_relaxed)) {
      St.QuarantineRejections.store(Sat + 1, std::memory_order_relaxed);
      St.QuarantinedBatches.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // Backoff served: this batch is the probe.
    St.Readmissions.fetch_add(1, std::memory_order_relaxed);
    if (Valid) {
      St.ConsecutivePoisoned.store(0, std::memory_order_relaxed);
      St.CleanStreak.store(1, std::memory_order_relaxed);
      St.Health.store(StreamHealth::Recovering, std::memory_order_relaxed);
      return true;
    }
    St.PoisonedBatches.fetch_add(1, std::memory_order_relaxed);
    quarantine(St);
    return false;
  }

  case StreamHealth::Recovering:
    if (Valid) {
      CleanTo(StreamHealth::Recovering);
      return true;
    }
    St.PoisonedBatches.fetch_add(1, std::memory_order_relaxed);
    quarantine(St);
    return false;
  }
  return false;
}

void MonitorService::quarantine(StreamState &St) {
  St.TimesQuarantined.fetch_add(1, std::memory_order_relaxed);
  const auto Episode =
      St.QuarantineEpisodes.fetch_add(1, std::memory_order_relaxed) + 1;
  // Saturating doubling per episode, capped at the configured ceiling.
  std::uint64_t Backoff = Config.Health.QuarantineBaseBatches;
  for (std::uint64_t I = 1;
       I < Episode && Backoff < Config.Health.QuarantineMaxBatches; ++I)
    Backoff *= 2;
  St.Backoff.store(std::min(Backoff, Config.Health.QuarantineMaxBatches),
                   std::memory_order_relaxed);
  St.QuarantineRejections.store(0, std::memory_order_relaxed);
  St.CleanStreak.store(0, std::memory_order_relaxed);
  St.ConsecutivePoisoned.store(0, std::memory_order_relaxed);
  St.Health.store(StreamHealth::Quarantined, std::memory_order_relaxed);
}

void MonitorService::workerLoop(Shard &S) {
  SampleBatch Batch;
  while (S.Queue.pop(Batch)) {
    if (WorkerHook)
      WorkerHook(S.Index, Batch);
    process(Batch);
    S.BatchesProcessed.fetch_add(1, std::memory_order_relaxed);
  }
}

void MonitorService::process(const SampleBatch &Batch) {
  StreamState &St = *Streams[Batch.Stream];
  assert(St.Shard == shardOf(Batch.Stream) && "batch routed to wrong shard");
  if (!Batch.Samples.empty()) {
    core::RegionMonitor &Monitor = *St.Monitor;
    Monitor.observeInterval(Batch.Samples);
    // lastUcrFraction() is k/n of this interval, so the product recovers
    // the exact unattributed-sample count.
    const auto Ucr = static_cast<std::uint64_t>(std::llround(
        Monitor.lastUcrFraction() *
        static_cast<double>(Batch.Samples.size())));
    St.IntervalsProcessed.fetch_add(1, std::memory_order_relaxed);
    St.TotalSamples.fetch_add(Batch.Samples.size(),
                              std::memory_order_relaxed);
    St.UcrSamples.fetch_add(Ucr, std::memory_order_relaxed);
    St.PhaseChanges.store(Monitor.totalPhaseChanges(),
                          std::memory_order_relaxed);
    St.FormationTriggers.store(Monitor.formationTriggers(),
                               std::memory_order_relaxed);
    St.RegionsFormed.store(Monitor.regions().size(),
                           std::memory_order_relaxed);
    St.ActiveRegions.store(Monitor.activeRegionCount(),
                           std::memory_order_relaxed);
  }
  // Release-publish the batch count last so a snapshot that observes it
  // also observes this batch's other counters.
  St.BatchesProcessed.fetch_add(1, std::memory_order_release);
}

ServiceSnapshot MonitorService::snapshot() const {
  ServiceSnapshot Snap;
  Snap.Shards.reserve(Shards.size());
  for (const auto &S : Shards) {
    ShardSnapshot Sh;
    Sh.QueueDepth = S->Queue.size();
    Sh.BatchesProcessed = S->BatchesProcessed.load(std::memory_order_relaxed);
    Sh.BatchesDropped = S->Queue.dropped();
    Snap.QueueDepth += Sh.QueueDepth;
    Snap.BatchesDropped += Sh.BatchesDropped;
    Snap.Shards.push_back(Sh);
  }
  Snap.Streams.reserve(Streams.size());
  for (StreamId Id = 0; Id < Streams.size(); ++Id) {
    const StreamState &St = *Streams[Id];
    StreamSnapshot Out;
    Out.Stream = Id;
    Out.Shard = St.Shard;
    Out.BatchesProcessed = St.BatchesProcessed.load(std::memory_order_acquire);
    Out.IntervalsProcessed =
        St.IntervalsProcessed.load(std::memory_order_relaxed);
    Out.PhaseChanges = St.PhaseChanges.load(std::memory_order_relaxed);
    Out.FormationTriggers =
        St.FormationTriggers.load(std::memory_order_relaxed);
    Out.RegionsFormed = St.RegionsFormed.load(std::memory_order_relaxed);
    Out.ActiveRegions = St.ActiveRegions.load(std::memory_order_relaxed);
    Out.TotalSamples = St.TotalSamples.load(std::memory_order_relaxed);
    Out.UcrSamples = St.UcrSamples.load(std::memory_order_relaxed);
    Out.Health = St.Health.load(std::memory_order_relaxed);
    Out.PoisonedBatches =
        St.PoisonedBatches.load(std::memory_order_relaxed);
    Out.QuarantinedBatches =
        St.QuarantinedBatches.load(std::memory_order_relaxed);
    Out.TimesQuarantined =
        St.TimesQuarantined.load(std::memory_order_relaxed);
    Out.Readmissions = St.Readmissions.load(std::memory_order_relaxed);
    Snap.BatchesProcessed += Out.BatchesProcessed;
    Snap.IntervalsProcessed += Out.IntervalsProcessed;
    Snap.PhaseChanges += Out.PhaseChanges;
    Snap.TotalSamples += Out.TotalSamples;
    Snap.UcrSamples += Out.UcrSamples;
    Snap.BatchesPoisoned += Out.PoisonedBatches;
    Snap.BatchesQuarantined += Out.QuarantinedBatches;
    Snap.Streams.push_back(Out);
  }
  // Submitted is read last: every batch counted processed or dropped
  // above was pre-counted in Submitted before its push (and the acquire
  // loads above order this load after them), so a snapshot always
  // satisfies processed + dropped <= submitted.
  Snap.BatchesSubmitted = Submitted.load(std::memory_order_relaxed);
  Snap.BatchesRejected = Rejected.load(std::memory_order_relaxed);
  return Snap;
}

const core::RegionMonitor &MonitorService::monitor(StreamId Stream) const {
  assert(Stream < Streams.size() && "unknown stream");
  assert(!running() && "monitors are only inspectable while stopped");
  return *Streams[Stream]->Monitor;
}
