//===- obs/Metrics.h - Deterministic lock-free metrics registry -*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability subsystem's metric primitives: monotonic counters,
/// gauges, and fixed-bound bucket histograms, all backed by atomics with
/// explicit memory orders so instrumented hot paths never take a lock.
///
/// Determinism contract (DESIGN.md §11): nothing in this layer reads a
/// wall clock -- the *interval index* of the instrumented subsystem is the
/// only notion of time -- and exported values are either exact integer
/// sums (order-independent across threads) or point-in-time gauge stores,
/// so two runs over the same seeded workload export byte-identical text.
/// Histograms deliberately track bucket counts and a total count but no
/// floating-point sum: a cross-thread FP accumulation is
/// addition-order-dependent and would break byte-stable export.
///
/// Registration (\ref MetricsRegistry) is mutex-protected and meant for
/// setup phases; instrumented code holds direct Counter/Gauge/Histogram
/// pointers (see obs/Instruments.h) and touches only the atomics.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_OBS_METRICS_H
#define REGMON_OBS_METRICS_H

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace regmon::obs {

/// A monotonically increasing event count.
class Counter {
public:
  /// Adds \p N to the counter. Wait-free; safe from any thread.
  void add(std::uint64_t N = 1) {
    V.fetch_add(N, std::memory_order_relaxed);
  }

  /// Returns the current value.
  std::uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> V{0};
};

/// A point-in-time value (last store wins). Stored as the bit pattern of a
/// double so fractional values (UCR fraction, Pearson r) fit alongside
/// plain counts.
class Gauge {
public:
  /// Publishes \p X as the gauge's current value.
  void set(double X) {
    Bits.store(std::bit_cast<std::uint64_t>(X), std::memory_order_relaxed);
  }

  /// Returns the most recently stored value.
  double value() const {
    return std::bit_cast<double>(Bits.load(std::memory_order_relaxed));
  }

private:
  std::atomic<std::uint64_t> Bits{std::bit_cast<std::uint64_t>(0.0)};
};

/// A histogram over fixed, registration-time bucket bounds. Observation is
/// a linear scan of the (few) bounds plus two relaxed increments.
class BucketHistogram {
public:
  /// Creates a histogram with \p UpperBounds (ascending); an implicit
  /// +Inf bucket catches everything above the last bound.
  explicit BucketHistogram(std::vector<double> UpperBounds)
      : Upper(std::move(UpperBounds)), Buckets(Upper.size() + 1) {
    for (std::size_t I = 1; I < Upper.size(); ++I)
      assert(Upper[I - 1] < Upper[I] && "bucket bounds must ascend");
  }

  /// Counts \p X into its bucket. Wait-free; safe from any thread.
  void observe(double X) {
    std::size_t Bin = Upper.size(); // +Inf bucket
    for (std::size_t I = 0; I < Upper.size(); ++I)
      if (X <= Upper[I]) {
        Bin = I;
        break;
      }
    Buckets[Bin].fetch_add(1, std::memory_order_relaxed);
    Total.fetch_add(1, std::memory_order_relaxed);
  }

  /// Returns the finite upper bounds (the +Inf bucket is implicit).
  std::span<const double> bounds() const { return Upper; }

  /// Returns per-bucket counts, one per bound plus the +Inf bucket.
  std::vector<std::uint64_t> bucketCounts() const {
    std::vector<std::uint64_t> Out;
    Out.reserve(Buckets.size());
    for (const std::atomic<std::uint64_t> &B : Buckets)
      Out.push_back(B.load(std::memory_order_relaxed));
    return Out;
  }

  /// Returns the total number of observations.
  std::uint64_t count() const {
    return Total.load(std::memory_order_relaxed);
  }

private:
  std::vector<double> Upper;
  std::vector<std::atomic<std::uint64_t>> Buckets;
  std::atomic<std::uint64_t> Total{0};
};

/// What kind of metric a registry entry is.
enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

/// One metric's exported state (see \ref MetricsRegistry::collect).
struct MetricValue {
  std::string Name;  ///< metric name without the exporter prefix
  std::string Label; ///< optional label pair(s), e.g. `stream="3"`
  std::string Help;
  MetricKind Kind = MetricKind::Counter;
  std::uint64_t CounterValue = 0;
  double GaugeValue = 0;
  std::vector<double> Bounds;               ///< histogram only
  std::vector<std::uint64_t> BucketCounts;  ///< histogram only, per bucket
  std::uint64_t Count = 0;                  ///< histogram only
};

/// Owns every registered metric. Registration is idempotent on
/// (name, label) and mutex-protected; the returned references stay valid
/// for the registry's lifetime, and all reads/writes through them are
/// lock-free. Enumeration order is the (name, label) map order --
/// deterministic by construction, never hash layout.
class MetricsRegistry {
public:
  /// Returns the counter registered under (\p Name, \p Label), creating
  /// it on first use.
  Counter &counter(std::string_view Name, std::string_view Help = "",
                   std::string_view Label = "");

  /// Returns the gauge registered under (\p Name, \p Label).
  Gauge &gauge(std::string_view Name, std::string_view Help = "",
               std::string_view Label = "");

  /// Returns the histogram registered under (\p Name, \p Label) with
  /// \p UpperBounds (ignored after first registration).
  BucketHistogram &histogram(std::string_view Name,
                             std::vector<double> UpperBounds,
                             std::string_view Help = "",
                             std::string_view Label = "");

  /// Snapshots every metric in deterministic (name, label) order.
  std::vector<MetricValue> collect() const;

private:
  struct Entry {
    MetricKind Kind = MetricKind::Counter;
    std::string Help;
    std::unique_ptr<Counter> C;
    std::unique_ptr<Gauge> G;
    std::unique_ptr<BucketHistogram> H;
  };

  Entry &entry(std::string_view Name, std::string_view Label,
               MetricKind Kind, std::string_view Help);

  mutable std::mutex Mu; ///< guards Entries layout only, never hot reads
  std::map<std::pair<std::string, std::string>, Entry> Entries;
};

} // namespace regmon::obs

#endif // REGMON_OBS_METRICS_H
