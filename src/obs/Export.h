//===- obs/Export.h - Byte-stable Prometheus and JSON exporters -*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exporters over \ref MetricsRegistry and \ref EventTracer. Output is
/// byte-stable for a fixed seed: metrics emit in (name, label) map order,
/// events in the deterministic sorted order, and doubles format through
/// std::to_chars shortest round-trip -- no locale, no wall clock, no
/// pointer- or hash-dependent iteration anywhere.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_OBS_EXPORT_H
#define REGMON_OBS_EXPORT_H

#include "obs/EventTracer.h"
#include "obs/Metrics.h"

#include <string>

namespace regmon::obs {

/// Formats \p V as its shortest round-trip decimal form ("0.25", "1",
/// "1e+20"). Deterministic across runs and platforms with IEEE doubles.
std::string formatDouble(double V);

/// Renders every metric in Prometheus text exposition format. Metric
/// names gain a `regmon_` prefix; histograms expand to cumulative
/// `_bucket{le=...}` series plus `_count`.
std::string exportPrometheus(const MetricsRegistry &Registry);

/// Renders metrics -- and, when \p Tracer is non-null, the sorted event
/// trace plus drop accounting -- as a single compact JSON object.
std::string exportJson(const MetricsRegistry &Registry,
                       const EventTracer *Tracer = nullptr);

/// Renders the sorted event trace as one human-readable line per event:
/// `interval=12 stream=0 region=3 kind=phase-entered-stable value=0.91`.
std::string exportTraceText(const EventTracer &Tracer);

} // namespace regmon::obs

#endif // REGMON_OBS_EXPORT_H
