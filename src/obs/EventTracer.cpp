//===- obs/EventTracer.cpp - Bounded typed phase-lifecycle event ring -----===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/EventTracer.h"

#include <algorithm>
#include <tuple>

namespace regmon::obs {

std::string_view toString(EventKind K) {
  switch (K) {
  case EventKind::RegionFormed:
    return "region-formed";
  case EventKind::RegionRetired:
    return "region-retired";
  case EventKind::PhaseEnteredUnstable:
    return "phase-entered-unstable";
  case EventKind::PhaseEnteredLessUnstable:
    return "phase-entered-less-unstable";
  case EventKind::PhaseEnteredStable:
    return "phase-entered-stable";
  case EventKind::MissPhaseChange:
    return "miss-phase-change";
  case EventKind::GlobalPhaseChange:
    return "global-phase-change";
  case EventKind::CheckpointCommitted:
    return "checkpoint-committed";
  case EventKind::CheckpointCommitFailed:
    return "checkpoint-commit-failed";
  case EventKind::CheckpointFallback:
    return "checkpoint-fallback";
  case EventKind::CheckpointColdStart:
    return "checkpoint-cold-start";
  case EventKind::JournalReplayed:
    return "journal-replayed";
  case EventKind::StreamQuarantined:
    return "stream-quarantined";
  case EventKind::StreamRecovered:
    return "stream-recovered";
  case EventKind::TraceDeployed:
    return "trace-deployed";
  case EventKind::TraceUndone:
    return "trace-undone";
  case EventKind::TraceSelfUndo:
    return "trace-self-undo";
  case EventKind::SimilarityFallback:
    return "similarity-fallback";
  case EventKind::SamplingPeriodLengthened:
    return "sampling-period-lengthened";
  case EventKind::SamplingPeriodTightened:
    return "sampling-period-tightened";
  case EventKind::SamplingConfigClamped:
    return "sampling-config-clamped";
  }
  return "unknown";
}

EventTracer::EventTracer(std::size_t Capacity)
    : Cap(Capacity == 0 ? 1 : Capacity) {
  Ring.resize(Cap);
}

void EventTracer::record(const TraceEvent &E) {
  std::lock_guard<std::mutex> Lock(Mu);
  Ring[Head] = E;
  Head = (Head + 1) % Cap;
  if (Count < Cap)
    ++Count;
  ++TotalRecorded;
}

std::uint64_t EventTracer::recorded() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return TotalRecorded;
}

std::uint64_t EventTracer::dropped() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return TotalRecorded - Count;
}

std::vector<TraceEvent> EventTracer::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<TraceEvent> Out;
  Out.reserve(Count);
  // Oldest retained event sits just past Head once the ring has wrapped.
  const std::size_t Start = (Head + Cap - Count) % Cap;
  for (std::size_t I = 0; I < Count; ++I)
    Out.push_back(Ring[(Start + I) % Cap]);
  return Out;
}

std::vector<TraceEvent> EventTracer::sortedSnapshot() const {
  std::vector<TraceEvent> Out = snapshot();
  std::stable_sort(Out.begin(), Out.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     return std::make_tuple(A.Interval, A.Stream, A.Region,
                                            static_cast<std::uint8_t>(A.Kind),
                                            A.Value) <
                            std::make_tuple(B.Interval, B.Stream, B.Region,
                                            static_cast<std::uint8_t>(B.Kind),
                                            B.Value);
                   });
  return Out;
}

void EventTracer::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Head = 0;
  Count = 0;
  TotalRecorded = 0;
}

} // namespace regmon::obs
