//===- obs/Instruments.h - Per-subsystem metric pointer bundles -*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instrument bundles: plain structs of Counter/Gauge/Histogram pointers
/// (plus an optional tracer) that instrumented subsystems hold by const
/// pointer. Every field may be null -- use the addTo/setGauge/observeIn/
/// recordEvent helpers, which are no-ops on null -- so partially wired
/// instrumentation never branches into undefined behaviour and the
/// uninstrumented configuration costs one pointer test per interval.
///
/// The make*Instruments factories register the canonical metric
/// catalogue (DESIGN.md §11) against a registry, labelling per-stream
/// series as `stream="N"`.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_OBS_INSTRUMENTS_H
#define REGMON_OBS_INSTRUMENTS_H

#include "obs/EventTracer.h"
#include "obs/Metrics.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace regmon::obs {

/// Adds \p N to \p C when wired.
inline void addTo(Counter *C, std::uint64_t N = 1) {
  if (C)
    C->add(N);
}

/// Stores \p V into \p G when wired.
inline void setGauge(Gauge *G, double V) {
  if (G)
    G->set(V);
}

/// Observes \p V in \p H when wired.
inline void observeIn(BucketHistogram *H, double V) {
  if (H)
    H->observe(V);
}

/// Records an event when \p T is wired.
inline void recordEvent(EventTracer *T, EventKind Kind, std::uint32_t Stream,
                        std::uint64_t Region, std::uint64_t Interval,
                        double Value = 0.0) {
  if (T)
    T->record(TraceEvent{Kind, Stream, Region, Interval, Value});
}

/// Instruments for one RegionMonitor (core layer). The monitor's own
/// interval index is the logical clock for every event it records.
struct MonitorInstruments {
  Counter *Intervals = nullptr;
  Counter *UndersampledIntervals = nullptr;
  Counter *SamplesTotal = nullptr;
  Counter *SamplesUcr = nullptr;
  Counter *SamplesOutOfRegion = nullptr;
  Counter *RegionsFormed = nullptr;
  Counter *RegionsRetired = nullptr;
  Counter *FormationTriggers = nullptr;
  Counter *PhaseChanges = nullptr;
  Counter *MissPhaseChanges = nullptr;
  Counter *SimilarityFallbacks = nullptr;
  /// Interval-end similarity evaluations actually computed (identical for
  /// the naive and incremental engines: both compute r for exactly the
  /// same observations).
  Counter *SimilarityCompares = nullptr;
  Gauge *ActiveRegions = nullptr;
  Gauge *LastUcrFraction = nullptr;
  /// Configure-time hot-path kernel selection: 0 = scalar, 1 = auto
  /// (support/HotpathKernels.h).
  Gauge *HotpathKernel = nullptr;
  BucketHistogram *IntervalSamples = nullptr;
  BucketHistogram *PhaseR = nullptr;
  /// Adaptive sampling controller series (DESIGN.md §16): the
  /// controller-recommended period, its cumulative savings, and its
  /// transition counts. All four stay at their zero/base values when the
  /// controller is disabled.
  Gauge *SamplingPeriodCurrent = nullptr;
  Counter *SamplingSamplesSaved = nullptr;
  Counter *SamplingLengthens = nullptr;
  Counter *SamplingTightens = nullptr;
  EventTracer *Tracer = nullptr;
  std::uint32_t Stream = 0; ///< stream label stamped on events
};

/// Instruments for the sampling front-end (src/sampling). ConfigClamps
/// counts invalid configurations (zero period / zero buffer) forced to
/// their minimum legal values -- the release-build guard against a zero
/// period spinning advanceAndSample forever.
struct SamplerInstruments {
  Counter *ConfigClamps = nullptr;
  /// Dynamic period-scale requests clamped to the sampler's ceiling.
  Counter *ScaleClamps = nullptr;
  /// Dynamic period-scale changes applied.
  Counter *ScaleChanges = nullptr;
  /// Effective sampling period in cycles.
  Gauge *PeriodCurrent = nullptr;
  EventTracer *Tracer = nullptr;
  std::uint32_t Stream = 0;
};

/// Instruments for the centroid GPD baseline.
struct GpdInstruments {
  Counter *Intervals = nullptr;
  Counter *PhaseChanges = nullptr;
  Counter *StableIntervals = nullptr;
  EventTracer *Tracer = nullptr;
  std::uint32_t Stream = 0;
};

/// Instruments for the RTO harness (trace deploy/undo lifecycle).
struct RtoInstruments {
  Counter *Patches = nullptr;
  Counter *Unpatches = nullptr;
  Counter *FailedPatches = nullptr;
  Counter *SelfUndos = nullptr;
  EventTracer *Tracer = nullptr;
  std::uint32_t Stream = 0;
};

/// Instruments for the checkpoint/restore layer. Events use journal
/// sequence numbers (or running commit counts) as their logical clock.
struct PersistInstruments {
  Counter *SnapshotsCommitted = nullptr;
  Counter *CommitFailures = nullptr;
  Counter *CorruptSnapshots = nullptr;
  Counter *FallbacksUsed = nullptr;
  Counter *ColdStarts = nullptr;
  Counter *JournalRecordsReplayed = nullptr;
  Counter *JournalRecordsSkipped = nullptr;
  Counter *JournalTornTails = nullptr;
  Counter *JournalRepairs = nullptr;
  EventTracer *Tracer = nullptr;
  std::uint32_t Stream = 0;
};

/// Instruments for the fleet aggregation tree (src/fleet, DESIGN.md §14).
/// Counters accumulate transport/recovery totals; gauges publish the
/// root view's degradation contract -- exact coverage and staleness --
/// so a scrape can alarm on "the rollup is running partial" directly.
struct FleetInstruments {
  Counter *SummariesEmitted = nullptr;
  Counter *MessagesSent = nullptr;
  Counter *MessagesDelivered = nullptr;
  Counter *MessagesDropped = nullptr;
  Counter *MessagesDuplicated = nullptr;
  Counter *MessagesReordered = nullptr;
  Counter *MessagesStale = nullptr;
  Counter *DecodeFailures = nullptr;
  Counter *BytesSent = nullptr;
  Counter *ResyncAttempts = nullptr;
  Counter *ResyncSuccesses = nullptr;
  Counter *AggEpochsStalled = nullptr;
  Counter *LeafCrashes = nullptr;
  Counter *LeafRestores = nullptr;
  Counter *LeafColdRestores = nullptr;
  Counter *LeafBatchesDiscarded = nullptr;
  Gauge *Epoch = nullptr;
  Gauge *LeavesTotal = nullptr;
  Gauge *LeavesPresent = nullptr;
  Gauge *LeavesExpired = nullptr;
  Gauge *CoverageFraction = nullptr;
  Gauge *MaxStalenessEpochs = nullptr;
  /// Rollup distribution of per-region stable-time fractions fleet-wide.
  BucketHistogram *StableFraction = nullptr;
};

/// Instruments for the flight recorder (src/trace, DESIGN.md §15).
/// Counters only: the recorder is a pure observer of the service, and
/// these series are what an operator alarms on when an incident's trace
/// turns out unusable (append failures) or lossy (recorded drops).
struct TraceInstruments {
  /// Records appended to the trace (all kinds).
  Counter *RecordsTotal = nullptr;
  /// Drop records appended -- batches the DropOldest policy evicted
  /// while recording (each one replays as a skipped batch).
  Counter *RecordsDropped = nullptr;
  /// Bytes appended (headers included).
  Counter *BytesTotal = nullptr;
  /// Appends that failed (crash/torn write); the recorder latches dead.
  Counter *AppendFailures = nullptr;
};

/// Registers the flight-recorder metric catalogue.
TraceInstruments makeTraceInstruments(MetricsRegistry &Registry,
                                      std::string_view Label);

/// Registers the monitor metric catalogue for stream \p Stream under the
/// label \p Label (pass "" for an unlabelled single-monitor setup).
MonitorInstruments makeMonitorInstruments(MetricsRegistry &Registry,
                                          EventTracer *Tracer,
                                          std::uint32_t Stream,
                                          std::string_view Label);

/// Registers the sampling front-end metric catalogue.
SamplerInstruments makeSamplerInstruments(MetricsRegistry &Registry,
                                          EventTracer *Tracer,
                                          std::uint32_t Stream,
                                          std::string_view Label);

/// Registers the GPD metric catalogue.
GpdInstruments makeGpdInstruments(MetricsRegistry &Registry,
                                  EventTracer *Tracer, std::uint32_t Stream,
                                  std::string_view Label);

/// Registers the RTO metric catalogue.
RtoInstruments makeRtoInstruments(MetricsRegistry &Registry,
                                  EventTracer *Tracer, std::uint32_t Stream,
                                  std::string_view Label);

/// Registers the checkpoint/restore metric catalogue.
PersistInstruments makePersistInstruments(MetricsRegistry &Registry,
                                          EventTracer *Tracer,
                                          std::uint32_t Stream,
                                          std::string_view Label);

/// Registers the fleet metric catalogue. \p StableBounds gives the bucket
/// bounds of the stable-fraction histogram (the fleet layer's canonical
/// bounds, passed in so obs stays independent of it).
FleetInstruments makeFleetInstruments(MetricsRegistry &Registry,
                                      const std::vector<double> &StableBounds,
                                      std::string_view Label);

/// Formats the canonical per-stream label `stream="N"`.
std::string streamLabel(std::uint32_t Stream);

} // namespace regmon::obs

#endif // REGMON_OBS_INSTRUMENTS_H
