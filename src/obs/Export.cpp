//===- obs/Export.cpp - Byte-stable Prometheus and JSON exporters ---------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Export.h"

#include <charconv>
#include <cstdint>

namespace regmon::obs {
namespace {

constexpr std::string_view Prefix = "regmon_";

void appendEscaped(std::string &Out, std::string_view S) {
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
}

void appendU64(std::string &Out, std::uint64_t V) {
  char Buf[24];
  auto Res = std::to_chars(Buf, Buf + sizeof(Buf), V);
  Out.append(Buf, Res.ptr);
}

/// Emits `name{label,extra}` with either, both, or neither label part.
void appendSeries(std::string &Out, std::string_view Name,
                  std::string_view Label, std::string_view Extra = "") {
  Out.append(Prefix);
  Out.append(Name);
  if (!Label.empty() || !Extra.empty()) {
    Out.push_back('{');
    Out.append(Label);
    if (!Label.empty() && !Extra.empty())
      Out.push_back(',');
    Out.append(Extra);
    Out.push_back('}');
  }
}

std::string_view kindName(MetricKind K) {
  switch (K) {
  case MetricKind::Counter:
    return "counter";
  case MetricKind::Gauge:
    return "gauge";
  case MetricKind::Histogram:
    return "histogram";
  }
  return "untyped";
}

} // namespace

std::string formatDouble(double V) {
  char Buf[64];
  auto Res = std::to_chars(Buf, Buf + sizeof(Buf), V);
  return std::string(Buf, Res.ptr);
}

std::string exportPrometheus(const MetricsRegistry &Registry) {
  std::string Out;
  std::string LastName;
  for (const MetricValue &M : Registry.collect()) {
    // HELP/TYPE headers once per name; labeled series of the same name
    // are adjacent because collect() orders by (name, label).
    if (M.Name != LastName) {
      LastName = M.Name;
      if (!M.Help.empty()) {
        Out.append("# HELP ");
        Out.append(Prefix);
        Out.append(M.Name);
        Out.push_back(' ');
        Out.append(M.Help);
        Out.push_back('\n');
      }
      Out.append("# TYPE ");
      Out.append(Prefix);
      Out.append(M.Name);
      Out.push_back(' ');
      Out.append(kindName(M.Kind));
      Out.push_back('\n');
    }
    switch (M.Kind) {
    case MetricKind::Counter:
      appendSeries(Out, M.Name, M.Label);
      Out.push_back(' ');
      appendU64(Out, M.CounterValue);
      Out.push_back('\n');
      break;
    case MetricKind::Gauge:
      appendSeries(Out, M.Name, M.Label);
      Out.push_back(' ');
      Out.append(formatDouble(M.GaugeValue));
      Out.push_back('\n');
      break;
    case MetricKind::Histogram: {
      std::uint64_t Cum = 0;
      for (std::size_t I = 0; I < M.BucketCounts.size(); ++I) {
        Cum += M.BucketCounts[I];
        std::string Le = "le=\"";
        Le += I < M.Bounds.size() ? formatDouble(M.Bounds[I]) : "+Inf";
        Le += '"';
        appendSeries(Out, std::string(M.Name) + "_bucket", M.Label, Le);
        Out.push_back(' ');
        appendU64(Out, Cum);
        Out.push_back('\n');
      }
      appendSeries(Out, std::string(M.Name) + "_count", M.Label);
      Out.push_back(' ');
      appendU64(Out, M.Count);
      Out.push_back('\n');
      break;
    }
    }
  }
  return Out;
}

std::string exportJson(const MetricsRegistry &Registry,
                       const EventTracer *Tracer) {
  std::string Out = "{\"metrics\":[";
  bool First = true;
  for (const MetricValue &M : Registry.collect()) {
    if (!First)
      Out.push_back(',');
    First = false;
    Out.append("{\"name\":\"");
    appendEscaped(Out, M.Name);
    Out.append("\",\"label\":\"");
    appendEscaped(Out, M.Label);
    Out.append("\",\"type\":\"");
    Out.append(kindName(M.Kind));
    Out.push_back('"');
    switch (M.Kind) {
    case MetricKind::Counter:
      Out.append(",\"value\":");
      appendU64(Out, M.CounterValue);
      break;
    case MetricKind::Gauge:
      Out.append(",\"value\":");
      Out.append(formatDouble(M.GaugeValue));
      break;
    case MetricKind::Histogram: {
      Out.append(",\"bounds\":[");
      for (std::size_t I = 0; I < M.Bounds.size(); ++I) {
        if (I)
          Out.push_back(',');
        Out.append(formatDouble(M.Bounds[I]));
      }
      Out.append("],\"buckets\":[");
      for (std::size_t I = 0; I < M.BucketCounts.size(); ++I) {
        if (I)
          Out.push_back(',');
        appendU64(Out, M.BucketCounts[I]);
      }
      Out.append("],\"count\":");
      appendU64(Out, M.Count);
      break;
    }
    }
    Out.push_back('}');
  }
  Out.append("]");
  if (Tracer) {
    Out.append(",\"events\":[");
    First = true;
    for (const TraceEvent &E : Tracer->sortedSnapshot()) {
      if (!First)
        Out.push_back(',');
      First = false;
      Out.append("{\"kind\":\"");
      Out.append(toString(E.Kind));
      Out.append("\",\"stream\":");
      appendU64(Out, E.Stream);
      Out.append(",\"region\":");
      appendU64(Out, E.Region);
      Out.append(",\"interval\":");
      appendU64(Out, E.Interval);
      Out.append(",\"value\":");
      Out.append(formatDouble(E.Value));
      Out.push_back('}');
    }
    Out.append("],\"dropped_events\":");
    appendU64(Out, Tracer->dropped());
  }
  Out.push_back('}');
  return Out;
}

std::string exportTraceText(const EventTracer &Tracer) {
  std::string Out;
  for (const TraceEvent &E : Tracer.sortedSnapshot()) {
    Out.append("interval=");
    appendU64(Out, E.Interval);
    Out.append(" stream=");
    appendU64(Out, E.Stream);
    Out.append(" region=");
    appendU64(Out, E.Region);
    Out.append(" kind=");
    Out.append(toString(E.Kind));
    Out.append(" value=");
    Out.append(formatDouble(E.Value));
    Out.push_back('\n');
  }
  const std::uint64_t Dropped = Tracer.dropped();
  if (Dropped != 0) {
    Out.append("# dropped=");
    appendU64(Out, Dropped);
    Out.push_back('\n');
  }
  return Out;
}

} // namespace regmon::obs
