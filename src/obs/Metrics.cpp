//===- obs/Metrics.cpp - Deterministic lock-free metrics registry ---------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

namespace regmon::obs {

MetricsRegistry::Entry &MetricsRegistry::entry(std::string_view Name,
                                               std::string_view Label,
                                               MetricKind Kind,
                                               std::string_view Help) {
  auto Key = std::make_pair(std::string(Name), std::string(Label));
  auto It = Entries.find(Key);
  if (It != Entries.end()) {
    assert(It->second.Kind == Kind && "metric re-registered as another kind");
    return It->second;
  }
  Entry &E = Entries[std::move(Key)];
  E.Kind = Kind;
  E.Help = std::string(Help);
  return E;
}

Counter &MetricsRegistry::counter(std::string_view Name, std::string_view Help,
                                  std::string_view Label) {
  std::lock_guard<std::mutex> Lock(Mu);
  Entry &E = entry(Name, Label, MetricKind::Counter, Help);
  if (!E.C)
    E.C = std::make_unique<Counter>();
  return *E.C;
}

Gauge &MetricsRegistry::gauge(std::string_view Name, std::string_view Help,
                              std::string_view Label) {
  std::lock_guard<std::mutex> Lock(Mu);
  Entry &E = entry(Name, Label, MetricKind::Gauge, Help);
  if (!E.G)
    E.G = std::make_unique<Gauge>();
  return *E.G;
}

BucketHistogram &MetricsRegistry::histogram(std::string_view Name,
                                            std::vector<double> UpperBounds,
                                            std::string_view Help,
                                            std::string_view Label) {
  std::lock_guard<std::mutex> Lock(Mu);
  Entry &E = entry(Name, Label, MetricKind::Histogram, Help);
  if (!E.H)
    E.H = std::make_unique<BucketHistogram>(std::move(UpperBounds));
  return *E.H;
}

std::vector<MetricValue> MetricsRegistry::collect() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<MetricValue> Out;
  Out.reserve(Entries.size());
  for (const auto &[Key, E] : Entries) {
    MetricValue V;
    V.Name = Key.first;
    V.Label = Key.second;
    V.Help = E.Help;
    V.Kind = E.Kind;
    switch (E.Kind) {
    case MetricKind::Counter:
      V.CounterValue = E.C ? E.C->value() : 0;
      break;
    case MetricKind::Gauge:
      V.GaugeValue = E.G ? E.G->value() : 0.0;
      break;
    case MetricKind::Histogram:
      if (E.H) {
        V.Bounds.assign(E.H->bounds().begin(), E.H->bounds().end());
        V.BucketCounts = E.H->bucketCounts();
        V.Count = E.H->count();
      }
      break;
    }
    Out.push_back(std::move(V));
  }
  return Out;
}

} // namespace regmon::obs
