//===- obs/Instruments.cpp - Per-subsystem metric pointer bundles ---------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Instruments.h"

namespace regmon::obs {

std::string streamLabel(std::uint32_t Stream) {
  std::string Out = "stream=\"";
  Out += std::to_string(Stream);
  Out += '"';
  return Out;
}

MonitorInstruments makeMonitorInstruments(MetricsRegistry &Registry,
                                          EventTracer *Tracer,
                                          std::uint32_t Stream,
                                          std::string_view Label) {
  MonitorInstruments I;
  I.Intervals = &Registry.counter("monitor_intervals_total",
                                  "intervals observed by the monitor", Label);
  I.UndersampledIntervals =
      &Registry.counter("monitor_undersampled_intervals_total",
                        "intervals skipped by the degraded-mode gate", Label);
  I.SamplesTotal = &Registry.counter("monitor_samples_total",
                                     "PC samples attributed", Label);
  I.SamplesUcr = &Registry.counter(
      "monitor_samples_ucr_total", "samples landing in uncovered code", Label);
  I.SamplesOutOfRegion = &Registry.counter(
      "monitor_samples_out_of_region_total",
      "samples rejected by a region histogram's bounds check", Label);
  I.RegionsFormed = &Registry.counter("monitor_regions_formed_total",
                                      "regions formed from UCR spikes", Label);
  I.RegionsRetired = &Registry.counter("monitor_regions_retired_total",
                                       "cold regions pruned", Label);
  I.FormationTriggers =
      &Registry.counter("monitor_formation_triggers_total",
                        "UCR threshold crossings that ran formation", Label);
  I.PhaseChanges =
      &Registry.counter("monitor_phase_changes_total",
                        "LPD stable-boundary phase changes", Label);
  I.MissPhaseChanges =
      &Registry.counter("monitor_miss_phase_changes_total",
                        "cache-miss phase changes on stable regions", Label);
  I.SimilarityFallbacks = &Registry.counter(
      "monitor_similarity_fallbacks_total",
      "out-of-enum similarity kinds replaced by Pearson", Label);
  I.SimilarityCompares =
      &Registry.counter("monitor_similarity_compares_total",
                        "interval-end similarity evaluations", Label);
  I.ActiveRegions = &Registry.gauge("monitor_active_regions",
                                    "regions currently tracked", Label);
  I.LastUcrFraction = &Registry.gauge(
      "monitor_last_ucr_fraction", "UCR fraction of the last interval", Label);
  I.HotpathKernel = &Registry.gauge(
      "monitor_hotpath_kernel",
      "configured hot-path kernel (0 = scalar, 1 = auto)", Label);
  I.IntervalSamples = &Registry.histogram(
      "monitor_interval_samples", {0, 64, 256, 1024, 4096, 16384},
      "samples delivered per interval", Label);
  I.PhaseR = &Registry.histogram(
      "monitor_phase_r", {-0.5, 0, 0.5, 0.8, 0.9, 0.95, 1},
      "Pearson r per region observation", Label);
  I.SamplingPeriodCurrent =
      &Registry.gauge("sampling_period_current",
                      "controller-recommended sampling period (cycles)",
                      Label);
  I.SamplingSamplesSaved = &Registry.counter(
      "sampling_samples_saved_total",
      "base-rate samples avoided by adaptive period scaling", Label);
  I.SamplingLengthens =
      &Registry.counter("sampling_lengthen_transitions_total",
                        "controller period-lengthening transitions", Label);
  I.SamplingTightens =
      &Registry.counter("sampling_tighten_transitions_total",
                        "controller tighten-to-base transitions", Label);
  I.Tracer = Tracer;
  I.Stream = Stream;
  return I;
}

SamplerInstruments makeSamplerInstruments(MetricsRegistry &Registry,
                                          EventTracer *Tracer,
                                          std::uint32_t Stream,
                                          std::string_view Label) {
  SamplerInstruments I;
  I.ConfigClamps =
      &Registry.counter("sampler_config_clamps_total",
                        "invalid sampling configuration fields clamped",
                        Label);
  I.ScaleClamps = &Registry.counter(
      "sampler_scale_clamps_total",
      "dynamic period-scale requests clamped to the ceiling", Label);
  I.ScaleChanges = &Registry.counter("sampler_scale_changes_total",
                                     "dynamic period-scale changes applied",
                                     Label);
  I.PeriodCurrent = &Registry.gauge(
      "sampler_period_cycles", "effective sampling period (cycles)", Label);
  I.Tracer = Tracer;
  I.Stream = Stream;
  return I;
}

GpdInstruments makeGpdInstruments(MetricsRegistry &Registry,
                                  EventTracer *Tracer, std::uint32_t Stream,
                                  std::string_view Label) {
  GpdInstruments I;
  I.Intervals = &Registry.counter("gpd_intervals_total",
                                  "intervals observed by the GPD", Label);
  I.PhaseChanges = &Registry.counter("gpd_phase_changes_total",
                                     "centroid phase changes", Label);
  I.StableIntervals = &Registry.counter("gpd_stable_intervals_total",
                                        "intervals classified stable", Label);
  I.Tracer = Tracer;
  I.Stream = Stream;
  return I;
}

RtoInstruments makeRtoInstruments(MetricsRegistry &Registry,
                                  EventTracer *Tracer, std::uint32_t Stream,
                                  std::string_view Label) {
  RtoInstruments I;
  I.Patches = &Registry.counter("rto_patches_total",
                                "optimized traces deployed", Label);
  I.Unpatches = &Registry.counter("rto_unpatches_total",
                                  "optimized traces undone", Label);
  I.FailedPatches = &Registry.counter("rto_failed_patches_total",
                                      "trace deployments that failed", Label);
  I.SelfUndos = &Registry.counter(
      "rto_self_undos_total", "regressions undone by self-monitoring", Label);
  I.Tracer = Tracer;
  I.Stream = Stream;
  return I;
}

PersistInstruments makePersistInstruments(MetricsRegistry &Registry,
                                          EventTracer *Tracer,
                                          std::uint32_t Stream,
                                          std::string_view Label) {
  PersistInstruments I;
  I.SnapshotsCommitted = &Registry.counter("persist_snapshots_committed_total",
                                           "checkpoint commits", Label);
  I.CommitFailures = &Registry.counter("persist_commit_failures_total",
                                       "checkpoint commits that failed", Label);
  I.CorruptSnapshots =
      &Registry.counter("persist_corrupt_snapshots_total",
                        "snapshot rungs rejected as corrupt", Label);
  I.FallbacksUsed =
      &Registry.counter("persist_fallbacks_total",
                        "restores that fell back to an older rung", Label);
  I.ColdStarts = &Registry.counter("persist_cold_starts_total",
                                   "restores with no usable state", Label);
  I.JournalRecordsReplayed = &Registry.counter(
      "persist_journal_records_replayed_total", "journal records replayed",
      Label);
  I.JournalRecordsSkipped = &Registry.counter(
      "persist_journal_records_skipped_total",
      "already-compacted journal records skipped", Label);
  I.JournalTornTails =
      &Registry.counter("persist_journal_torn_tails_total",
                        "torn journal tails detected", Label);
  I.JournalRepairs = &Registry.counter("persist_journal_repairs_total",
                                       "journal tails truncated clean", Label);
  I.Tracer = Tracer;
  I.Stream = Stream;
  return I;
}

TraceInstruments makeTraceInstruments(MetricsRegistry &Registry,
                                      std::string_view Label) {
  TraceInstruments I;
  I.RecordsTotal = &Registry.counter("trace_records_total",
                                     "flight-recorder records appended",
                                     Label);
  I.RecordsDropped =
      &Registry.counter("trace_records_dropped_total",
                        "drop records appended (batches evicted by the "
                        "DropOldest policy while recording)",
                        Label);
  I.BytesTotal = &Registry.counter("trace_bytes_total",
                                   "flight-recorder bytes appended", Label);
  I.AppendFailures =
      &Registry.counter("trace_append_failures_total",
                        "flight-recorder appends that failed", Label);
  return I;
}

FleetInstruments makeFleetInstruments(MetricsRegistry &Registry,
                                      const std::vector<double> &StableBounds,
                                      std::string_view Label) {
  FleetInstruments I;
  I.SummariesEmitted = &Registry.counter(
      "fleet_summaries_emitted_total", "leaf summaries built", Label);
  I.MessagesSent = &Registry.counter("fleet_messages_sent_total",
                                     "summary messages sent on links", Label);
  I.MessagesDelivered =
      &Registry.counter("fleet_messages_delivered_total",
                        "summary messages delivered by links", Label);
  I.MessagesDropped = &Registry.counter(
      "fleet_messages_dropped_total", "summary messages lost in transit",
      Label);
  I.MessagesDuplicated =
      &Registry.counter("fleet_messages_duplicated_total",
                        "summary messages delivered twice", Label);
  I.MessagesReordered =
      &Registry.counter("fleet_messages_reordered_total",
                        "summary messages delayed one epoch", Label);
  I.MessagesStale = &Registry.counter(
      "fleet_messages_stale_total",
      "deliveries replaced by a replayed older payload", Label);
  I.DecodeFailures =
      &Registry.counter("fleet_decode_failures_total",
                        "summary messages rejected by the codec", Label);
  I.BytesSent = &Registry.counter("fleet_bytes_sent_total",
                                  "summary bytes sent on links", Label);
  I.ResyncAttempts = &Registry.counter(
      "fleet_resync_attempts_total", "pull-path re-syncs attempted", Label);
  I.ResyncSuccesses = &Registry.counter(
      "fleet_resync_successes_total", "pull-path re-syncs succeeded", Label);
  I.AggEpochsStalled = &Registry.counter(
      "fleet_agg_epochs_stalled_total", "aggregator merge rounds skipped",
      Label);
  I.LeafCrashes = &Registry.counter("fleet_leaf_crashes_total",
                                    "leaf services crashed", Label);
  I.LeafRestores = &Registry.counter("fleet_leaf_restores_total",
                                     "leaf services restarted", Label);
  I.LeafColdRestores =
      &Registry.counter("fleet_leaf_cold_restores_total",
                        "leaf restarts that recovered no state", Label);
  I.LeafBatchesDiscarded =
      &Registry.counter("fleet_leaf_batches_discarded_total",
                        "batches sampled while the leaf was down", Label);
  I.Epoch = &Registry.gauge("fleet_epoch", "epochs completed", Label);
  I.LeavesTotal =
      &Registry.gauge("fleet_leaves_total", "leaves in the topology", Label);
  I.LeavesPresent =
      &Registry.gauge("fleet_leaves_present",
                      "leaves within the staleness horizon", Label);
  I.LeavesExpired = &Registry.gauge(
      "fleet_leaves_expired", "leaves aged past the staleness horizon",
      Label);
  I.CoverageFraction = &Registry.gauge(
      "fleet_coverage_fraction", "exact rollup coverage (present/total)",
      Label);
  I.MaxStalenessEpochs =
      &Registry.gauge("fleet_max_staleness_epochs",
                      "max staleness of in-view entries", Label);
  I.StableFraction = &Registry.histogram(
      "fleet_region_stable_fraction", StableBounds,
      "per-region stable-time fraction fleet-wide", Label);
  return I;
}

} // namespace regmon::obs
