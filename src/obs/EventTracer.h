//===- obs/EventTracer.h - Bounded typed phase-lifecycle event ring -------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded ring of typed phase-lifecycle events: region formation and
/// retirement, LPD state entries annotated with the Pearson r that caused
/// them, GPD phase changes, checkpoint commits/fallbacks, stream
/// quarantine/recovery, and RTO trace deploy/undo decisions.
///
/// Time is the instrumented subsystem's own logical clock (interval index
/// or batch sequence) -- never a wall clock. The ring drops the *oldest*
/// event on overflow and counts drops so exporters can disclose
/// truncation. Recording takes a short mutex; events are rare (per
/// transition, not per sample), so this never sits on a hot path.
///
/// Concurrent writers interleave nondeterministically in arrival order,
/// so \ref EventTracer::sortedSnapshot orders by the deterministic key
/// (Interval, Stream, Region, Kind, Value); as long as the ring did not
/// wrap, that ordering is byte-stable across same-seed runs regardless of
/// thread scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_OBS_EVENTTRACER_H
#define REGMON_OBS_EVENTTRACER_H

#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

namespace regmon::obs {

/// Every event type the tracer understands. Values are stable export
/// identifiers -- append only, never reorder.
enum class EventKind : std::uint8_t {
  RegionFormed = 0,
  RegionRetired = 1,
  PhaseEnteredUnstable = 2,
  PhaseEnteredLessUnstable = 3,
  PhaseEnteredStable = 4,
  MissPhaseChange = 5,
  GlobalPhaseChange = 6,
  CheckpointCommitted = 7,
  CheckpointCommitFailed = 8,
  CheckpointFallback = 9,
  CheckpointColdStart = 10,
  JournalReplayed = 11,
  StreamQuarantined = 12,
  StreamRecovered = 13,
  TraceDeployed = 14,
  TraceUndone = 15,
  TraceSelfUndo = 16,
  SimilarityFallback = 17,
  SamplingPeriodLengthened = 18,
  SamplingPeriodTightened = 19,
  SamplingConfigClamped = 20,
};

/// Stable lowercase-dashed name for \p K (export identifier).
std::string_view toString(EventKind K);

/// One recorded event. \c Interval is the emitting subsystem's logical
/// clock; \c Value carries the kind-specific payload (Pearson r for phase
/// entries, replayed-record count for journal replays, 0 otherwise).
struct TraceEvent {
  EventKind Kind = EventKind::RegionFormed;
  std::uint32_t Stream = 0;
  std::uint64_t Region = 0;
  std::uint64_t Interval = 0;
  double Value = 0.0;
};

/// Bounded drop-oldest event ring. Thread-safe; see file comment for the
/// determinism contract.
class EventTracer {
public:
  /// Creates a tracer holding at most \p Capacity events (min 1).
  explicit EventTracer(std::size_t Capacity = 4096);

  /// Appends \p E, overwriting the oldest event when full.
  void record(const TraceEvent &E);

  /// Returns the ring capacity.
  std::size_t capacity() const { return Cap; }

  /// Returns how many events were ever recorded.
  std::uint64_t recorded() const;

  /// Returns how many events were overwritten (recorded - retained).
  std::uint64_t dropped() const;

  /// Returns retained events oldest-first, in arrival order.
  std::vector<TraceEvent> snapshot() const;

  /// Returns retained events in deterministic
  /// (Interval, Stream, Region, Kind, Value) order.
  std::vector<TraceEvent> sortedSnapshot() const;

  /// Forgets every retained event and resets the drop accounting.
  void clear();

private:
  mutable std::mutex Mu;
  std::vector<TraceEvent> Ring;
  std::size_t Cap;
  std::size_t Head = 0;          ///< next write slot
  std::size_t Count = 0;         ///< retained events
  std::uint64_t TotalRecorded = 0;
};

} // namespace regmon::obs

#endif // REGMON_OBS_EVENTTRACER_H
