//===- gpd/CentroidPhaseDetector.cpp - Centroid-based GPD -----------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gpd/CentroidPhaseDetector.h"

#include "support/HotpathKernels.h"

#include <cassert>

using namespace regmon;
using namespace regmon::gpd;

const char *regmon::gpd::toString(GlobalPhaseState S) {
  switch (S) {
  case GlobalPhaseState::Unstable:
    return "unstable";
  case GlobalPhaseState::LessStable:
    return "less-stable";
  case GlobalPhaseState::Stable:
    return "stable";
  }
  return "?";
}

CentroidPhaseDetector::CentroidPhaseDetector(CentroidConfig Cfg)
    : Config(Cfg), History(Config.HistoryLength) {
  assert(Config.Th1 <= Config.Th2 && Config.Th2 <= Config.Th3 &&
         Config.Th3 <= Config.Th4 && "thresholds must be ordered");
  assert(Config.TimerIntervals > 0 && "timer must require >= 1 interval");
  assert((!Config.AdaptiveWindow ||
          (Config.MinHistoryLength >= 2 &&
           Config.MinHistoryLength <= Config.MaxHistoryLength)) &&
         "adaptive window bounds are inconsistent");
}

REGMON_PURE GlobalPhaseState
CentroidPhaseDetector::observeInterval(std::span<const Sample> Samples) {
  assert(!Samples.empty() && "an interval has a full buffer of samples");
  // SoA transpose: gather the PC lane out of the 24-byte Sample records
  // into a flat array, then sum it with the vectorizable integer kernel.
  // Realistic PC sums stay far below 2^53, so double(Sum) is the exact
  // value the historical sequential double accumulation produced --
  // centroids, and therefore phase timelines, are unchanged bit for bit.
  PcScratch.resize(Samples.size());
  for (std::size_t I = 0, E = Samples.size(); I != E; ++I)
    PcScratch[I] = Samples[I].Pc;
  const std::uint64_t Sum = pcSum(PcScratch.data(), PcScratch.size());
  return observeCentroid(static_cast<double>(Sum) /
                         static_cast<double>(Samples.size()));
}

REGMON_PURE GlobalPhaseState
CentroidPhaseDetector::observeCentroid(double Centroid) {
  const GlobalPhaseState Before = State;
  State = step(Centroid);
  LastWasChange = (Before == GlobalPhaseState::Stable) !=
                  (State == GlobalPhaseState::Stable);
  if (LastWasChange)
    ++PhaseChanges;
  if (Config.AdaptiveWindow)
    adaptWindow();
  noteState();
  if (Obs) {
    obs::addTo(Obs->Intervals);
    if (State == GlobalPhaseState::Stable)
      obs::addTo(Obs->StableIntervals);
    if (LastWasChange) {
      obs::addTo(Obs->PhaseChanges);
      // Intervals was just advanced by noteState(); the event belongs to
      // the interval that caused the change.
      obs::recordEvent(Obs->Tracer, obs::EventKind::GlobalPhaseChange,
                       Obs->Stream, 0, Intervals - 1, Centroid);
    }
  }
  return State;
}

void CentroidPhaseDetector::adaptWindow() {
  if (LastWasChange) {
    // Turbulence: forget stale context quickly so the band re-forms
    // around the new behaviour.
    QuietStableRun = 0;
    History.resize(Config.MinHistoryLength);
    return;
  }
  if (State != GlobalPhaseState::Stable) {
    QuietStableRun = 0;
    return;
  }
  if (++QuietStableRun >= Config.GrowAfterStableIntervals &&
      History.capacity() < Config.MaxHistoryLength) {
    History.resize(History.capacity() + 1);
    QuietStableRun = 0;
  }
}

GlobalPhaseState CentroidPhaseDetector::step(double Centroid) {
  assert(Centroid > 0 && "PC centroid of real code is positive");

  // The band of stability is computed from *prior* centroids; the new
  // centroid's drift is measured against it, then the new centroid joins
  // the history.
  const bool BandReady = History.count() >= 2;
  const double E = History.mean();
  const double Sd = History.stddev();
  History.add(Centroid);

  if (!BandReady)
    return GlobalPhaseState::Unstable;

  const double Lo = E - Sd, Hi = E + Sd;
  double Delta = 0;
  if (Centroid < Lo)
    Delta = Lo - Centroid;
  else if (Centroid > Hi)
    Delta = Centroid - Hi;
  const double Drift = Delta / E;

  // A wholesale working-set change invalidates the whole history: the next
  // phase will live at unrelated addresses.
  if (Drift > Config.Th4) {
    History.clear();
    History.add(Centroid);
    Timer = 0;
    return GlobalPhaseState::Unstable;
  }

  switch (State) {
  case GlobalPhaseState::Unstable:
    // The band must be meaningful (not too thick) before trusting low
    // drift: "a check is also made to ensure that band of stability is not
    // too thick by ensuring that SD is less than 1/6 of E".
    if (Drift <= Config.Th2 && Sd < E * Config.MaxSdFraction) {
      Timer = 0;
      return GlobalPhaseState::LessStable;
    }
    return GlobalPhaseState::Unstable;

  case GlobalPhaseState::LessStable:
    if (Drift > Config.Th3) {
      Timer = 0;
      return GlobalPhaseState::Unstable;
    }
    if (Drift <= Config.Th1) {
      if (++Timer >= Config.TimerIntervals)
        return GlobalPhaseState::Stable;
      return GlobalPhaseState::LessStable;
    }
    // Moderate drift: stay less-stable but restart the quiet-time timer.
    Timer = 0;
    return GlobalPhaseState::LessStable;

  case GlobalPhaseState::Stable:
    if (Drift > Config.Th2) {
      Timer = 0;
      return GlobalPhaseState::Unstable;
    }
    return GlobalPhaseState::Stable;
  }
  return GlobalPhaseState::Unstable;
}

void CentroidPhaseDetector::noteState() {
  ++Intervals;
  if (State == GlobalPhaseState::Stable)
    ++StableIntervals;
  Timeline.push_back(State);
}

double CentroidPhaseDetector::stableFraction() const {
  if (Intervals == 0)
    return 0;
  return static_cast<double>(StableIntervals) /
         static_cast<double>(Intervals);
}
