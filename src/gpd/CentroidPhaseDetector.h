//===- gpd/CentroidPhaseDetector.h - Centroid-based GPD ---------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline the paper improves on: centroid-based **global phase
/// detection** (paper section 2), as used by the ADORE prototypes [12][13].
///
/// Every sampling interval the mean (centroid) of the buffered PC values is
/// computed. A history of recent centroids defines the **band of
/// stability** BOS = [E - SD, E + SD] from the history's expectation E and
/// standard deviation SD. The new centroid's drift Delta is 0 inside the
/// band, otherwise its distance to the nearer bound. The normalized drift
/// delta = Delta / E steers a three-state machine (Fig. 1):
///
///     Unstable --(delta <= TH2 and SD < E/6)--> LessStable
///     LessStable --(delta <= TH1 for Timer intervals)--> Stable    [change]
///     LessStable --(delta >  TH3)--> Unstable
///     Stable --(delta > TH2)--> Unstable                            [change]
///     any    --(delta > TH4)--> Unstable, history cleared (new working set)
///
/// The paper gives the empirical thresholds TH1..TH4 = 1%, 5%, 10%, 67% and
/// the SD < E/6 "band not too thick" guard, but Fig. 1's full transition
/// diagram is not recoverable from the text; the wiring above is our
/// documented reading of the prose (see DESIGN.md section 2). The timer on
/// the less-stable state ("ensure the centroid maintains a low Delta for
/// some time before triggering a stable phase") and the thickness guard
/// ("before transitioning into less stable phase") are placed exactly where
/// the prose puts them.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_GPD_CENTROIDPHASEDETECTOR_H
#define REGMON_GPD_CENTROIDPHASEDETECTOR_H

#include "obs/Instruments.h"
#include "support/Statistics.h"
#include "support/Types.h"

#include <cstdint>
#include <span>
#include <vector>

namespace regmon::persist {
class StateCodec;
} // namespace regmon::persist

namespace regmon::gpd {

/// The detector's observable phase state.
enum class GlobalPhaseState : std::uint8_t {
  Unstable,
  LessStable,
  Stable,
};

/// Returns a short human-readable name for \p S.
const char *toString(GlobalPhaseState S);

/// Tunable parameters of the centroid detector.
struct CentroidConfig {
  /// TH1: drift (fraction of E) the centroid must stay under, for
  /// TimerIntervals intervals, to be declared stable.
  double Th1 = 0.01;
  /// TH2: drift above which a stable phase ends / under which an unstable
  /// phase may become less-stable.
  double Th2 = 0.05;
  /// TH3: drift that bounces a less-stable phase back to unstable.
  double Th3 = 0.10;
  /// TH4: drift indicating a wholesale working-set change; the centroid
  /// history is discarded.
  double Th4 = 0.67;
  /// SD must be below E * MaxSdFraction (the paper's "SD less than 1/6 of
  /// E") before the detector may leave the unstable state.
  double MaxSdFraction = 1.0 / 6.0;
  /// Number of past centroids forming the band of stability.
  std::size_t HistoryLength = 5;
  /// Consecutive low-drift intervals required in LessStable before Stable.
  unsigned TimerIntervals = 2;

  /// Adaptive profile-window resizing (the refinement Nagpurkar et al.
  /// [17] found more accurate than constant windows): shrink the centroid
  /// history to MinHistoryLength on every phase change (fast response in
  /// turbulence) and grow it by one per GrowAfterStableIntervals quiet
  /// stable intervals up to MaxHistoryLength (noise immunity in calm).
  /// Off by default (the paper's constant-window configuration).
  bool AdaptiveWindow = false;
  std::size_t MinHistoryLength = 3;
  std::size_t MaxHistoryLength = 12;
  unsigned GrowAfterStableIntervals = 4;
};

/// Centroid-based global phase detector.
class CentroidPhaseDetector {
public:
  explicit CentroidPhaseDetector(CentroidConfig Config = {});

  /// Consumes one interval's sample buffer and returns the updated state.
  GlobalPhaseState observeInterval(std::span<const Sample> Samples);

  /// Consumes a pre-computed centroid (used by tests and by callers that
  /// already aggregated the buffer).
  GlobalPhaseState observeCentroid(double Centroid);

  /// Returns the current phase state.
  GlobalPhaseState state() const { return State; }
  /// Returns true if the most recent interval toggled Stable <-> not.
  bool lastIntervalChangedPhase() const { return LastWasChange; }

  /// Returns the number of Stable <-> not-Stable transitions so far; the
  /// quantity plotted in the paper's Fig. 3.
  std::uint64_t phaseChanges() const { return PhaseChanges; }
  /// Returns the number of intervals observed.
  std::uint64_t intervals() const { return Intervals; }
  /// Returns the number of intervals spent in the Stable state.
  std::uint64_t stableIntervals() const { return StableIntervals; }
  /// Returns the fraction of intervals spent stable (Fig. 4), 0 if none.
  double stableFraction() const;

  /// Returns the per-interval state history (for the Fig. 2/5 overlays).
  std::span<const GlobalPhaseState> timeline() const { return Timeline; }

  /// Returns the detector configuration.
  const CentroidConfig &config() const { return Config; }

  /// Attaches observability instruments (obs layer). \p O may be null to
  /// detach; otherwise it must outlive the detector. Events use the
  /// detector's interval count as their logical clock.
  void attachObservability(const obs::GpdInstruments *O) { Obs = O; }

private:
  /// Checkpointing serializes the centroid history, state machine, and
  /// timeline (persist/StateCodec.h).
  friend class persist::StateCodec;

  GlobalPhaseState step(double Centroid);
  void noteState();

  void adaptWindow();

  CentroidConfig Config;
  const obs::GpdInstruments *Obs = nullptr;
  WindowedStats History;
  GlobalPhaseState State = GlobalPhaseState::Unstable;
  unsigned Timer = 0;
  unsigned QuietStableRun = 0;
  bool LastWasChange = false;
  std::uint64_t PhaseChanges = 0;
  std::uint64_t Intervals = 0;
  std::uint64_t StableIntervals = 0;
  std::vector<GlobalPhaseState> Timeline;
  /// Reused SoA scratch: the sample buffer's PC lane, transposed flat for
  /// the vectorizable centroid sum (support/HotpathKernels.h).
  std::vector<Addr> PcScratch;
};

} // namespace regmon::gpd

#endif // REGMON_GPD_CENTROIDPHASEDETECTOR_H
