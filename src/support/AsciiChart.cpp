//===- support/AsciiChart.cpp - Terminal charts for region data -----------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/AsciiChart.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace regmon;

void StackedChart::addSeries(std::string Name, std::vector<double> Values) {
  assert((AllSeries.empty() ||
          AllSeries.front().Values.size() == Values.size()) &&
         "all series must cover the same intervals");
  AllSeries.push_back({std::move(Name), std::move(Values)});
}

void StackedChart::setOverlay(std::string Name, std::vector<bool> Flags) {
  OverlayName = std::move(Name);
  Overlay = std::move(Flags);
}

std::string StackedChart::render() const {
  static const char Glyphs[] = "abcdefghijklmnopqrstuvwxyz";
  constexpr std::size_t NumGlyphs = sizeof(Glyphs) - 1;

  if (AllSeries.empty())
    return "(empty chart)\n";
  const std::size_t Width = AllSeries.front().Values.size();

  // Column totals set the vertical scale.
  double MaxTotal = 0;
  std::vector<double> Totals(Width, 0);
  for (const auto &S : AllSeries)
    for (std::size_t C = 0; C < Width; ++C)
      Totals[C] += S.Values[C];
  for (double T : Totals)
    MaxTotal = std::max(MaxTotal, T);
  if (MaxTotal <= 0)
    MaxTotal = 1;

  // Rasterize each column bottom-up: each series gets a contiguous run of
  // rows proportional to its share of the column total.
  std::vector<std::string> Grid(Height, std::string(Width, ' '));
  for (std::size_t C = 0; C < Width; ++C) {
    const double ColScale = static_cast<double>(Height) / MaxTotal;
    double Acc = 0;
    for (std::size_t SI = 0; SI < AllSeries.size(); ++SI) {
      const double V = AllSeries[SI].Values[C];
      if (V <= 0)
        continue;
      const auto RowLo = static_cast<unsigned>(std::floor(Acc * ColScale));
      Acc += V;
      auto RowHi = static_cast<unsigned>(std::ceil(Acc * ColScale));
      RowHi = std::min(RowHi, Height);
      const char G = Glyphs[SI % NumGlyphs];
      for (unsigned R = RowLo; R < std::max(RowHi, RowLo + 1) && R < Height;
           ++R)
        Grid[R][C] = G;
    }
  }

  std::string Out;
  if (!Overlay.empty()) {
    std::string Line(Width, ' ');
    for (std::size_t C = 0; C < std::min(Width, Overlay.size()); ++C)
      if (Overlay[C])
        Line[C] = '#';
    Out += Line;
    Out += "   <- ";
    Out += OverlayName;
    Out += '\n';
  }
  for (unsigned R = Height; R-- > 0;) {
    Out += Grid[R];
    Out += '\n';
  }
  Out.append(Width, '-');
  Out += '\n';
  for (std::size_t SI = 0; SI < AllSeries.size(); ++SI) {
    Out += "  ";
    Out += Glyphs[SI % NumGlyphs];
    Out += " = ";
    Out += AllSeries[SI].Name;
    Out += '\n';
  }
  return Out;
}

std::string regmon::sparkline(std::span<const double> Values, double Lo,
                              double Hi) {
  static const char Levels[] = " .:-=+*#%@";
  constexpr int NumLevels = sizeof(Levels) - 2;
  std::string Out;
  Out.reserve(Values.size());
  const double Span = Hi > Lo ? Hi - Lo : 1.0;
  for (double V : Values) {
    const double Norm = std::clamp((V - Lo) / Span, 0.0, 1.0);
    Out += Levels[static_cast<int>(std::lround(Norm * NumLevels))];
  }
  return Out;
}
