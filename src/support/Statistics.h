//===- support/Statistics.h - Streaming and batch statistics ---*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The statistical kernels both phase detectors are built from:
///
///  * RunningStats     -- Welford streaming mean/variance (GPD centroid
///                        history when unwindowed).
///  * WindowedStats    -- mean/stddev over a sliding window of the last N
///                        values (the GPD "band of stability" E and SD).
///  * pearson          -- Pearson's coefficient of correlation between two
///                        equally-sized sample vectors (the LPD similarity
///                        metric, paper section 3.2.1).
///  * median/quantile  -- batch order statistics (Fig. 6 reports the median
///                        of per-interval UCR percentages).
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_SUPPORT_STATISTICS_H
#define REGMON_SUPPORT_STATISTICS_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace regmon {

namespace persist {
class StateCodec;
} // namespace persist

/// Numerically stable streaming mean and variance (Welford's algorithm).
class RunningStats {
public:
  /// Adds one observation.
  void add(double X) {
    ++N;
    const double Delta = X - Mean;
    Mean += Delta / static_cast<double>(N);
    M2 += Delta * (X - Mean);
  }

  /// Discards all observations.
  void clear() { *this = RunningStats(); }

  /// Returns the number of observations added so far.
  std::size_t count() const { return N; }
  /// Returns the sample mean, or 0 if no observations were added.
  double mean() const { return Mean; }
  /// Returns the population variance, or 0 with fewer than two observations.
  double variance() const {
    return N < 2 ? 0.0 : M2 / static_cast<double>(N);
  }
  /// Returns the population standard deviation.
  double stddev() const;

private:
  std::size_t N = 0;
  double Mean = 0;
  double M2 = 0;
};

/// Mean and standard deviation over a sliding window of the most recent
/// \p Capacity observations. The GPD centroid history is an instance of
/// this: E and SD of the last few centroids define the band of stability.
class WindowedStats {
public:
  /// Creates a window holding at most \p Capacity observations.
  explicit WindowedStats(std::size_t Capacity);

  /// Adds one observation, evicting the oldest if the window is full.
  void add(double X);
  /// Discards all observations (a working-set reset).
  void clear();
  /// Changes the window capacity, keeping the most recent observations
  /// that still fit. Used by adaptive-window phase detection.
  void resize(std::size_t NewCapacity);

  /// Returns the number of observations currently in the window.
  std::size_t count() const { return Buffer.size(); }
  /// Returns true if the window holds its full capacity of observations.
  bool full() const { return Buffer.size() == Cap; }
  /// Returns the window capacity.
  std::size_t capacity() const { return Cap; }
  /// Returns the mean of the windowed observations (0 when empty).
  double mean() const;
  /// Returns the population standard deviation of the windowed observations.
  double stddev() const;

private:
  /// Checkpointing serializes the ring verbatim, Sum included: recomputing
  /// it would replay a different floating-point accumulation order and
  /// break bit-identical recovery (persist/StateCodec.h).
  friend class persist::StateCodec;

  std::size_t Cap;
  std::size_t Head = 0; // index of the oldest element when full
  std::vector<double> Buffer;
  double Sum = 0;
};

/// Computes Pearson's coefficient of correlation between \p X and \p Y,
/// which must be the same (nonzero) length.
///
/// This is the similarity measure of local phase detection: X is the stable
/// set of per-instruction samples for a region, Y the current set. Values
/// near +1 mean the same instructions are hot in the same proportions (no
/// phase change even if the total sample count scaled); values near 0 or
/// negative mean the bottleneck moved (a phase change).
///
/// Degenerate inputs (either vector has zero variance) have no defined
/// correlation; following the detector's intent we return 1.0 when the two
/// vectors are proportional (identical shape) and 0.0 otherwise.
double pearson(std::span<const double> X, std::span<const double> Y);

/// Integer-histogram convenience overload of \ref pearson.
double pearson(std::span<const std::uint32_t> X,
               std::span<const std::uint32_t> Y);

/// Returns the median of \p Values (by copy; does not reorder the input).
/// Returns 0 for an empty input.
double median(std::span<const double> Values);

/// Returns the \p Q quantile (0 <= Q <= 1) of \p Values using linear
/// interpolation between closest ranks. Returns 0 for an empty input.
double quantile(std::span<const double> Values, double Q);

} // namespace regmon

#endif // REGMON_SUPPORT_STATISTICS_H
