//===- support/Types.h - Fundamental scalar types ---------------*- C++ -*-===//
//
// Part of the regmon project: a reproduction of "Region Monitoring for Local
// Phase Detection in Dynamic Optimization Systems" (Das, Lu & Hsu, CGO 2006).
// Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fundamental scalar types shared by every regmon library: code addresses,
/// cycle counts, work units, and the (pc, time) pair a hardware sampler
/// delivers.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_SUPPORT_TYPES_H
#define REGMON_SUPPORT_TYPES_H

#include <cstdint>

namespace regmon {

/// A code address. The simulated ISA is SPARC-like: instructions are 4 bytes
/// wide and aligned.
using Addr = std::uint64_t;

/// A count of machine cycles (real, post-optimization execution time).
using Cycles = std::uint64_t;

/// A count of abstract work units. One work unit is one *baseline* cycle:
/// the cycle cost of executing that slice of the program with no runtime
/// optimizations deployed. Deployed optimizations make a work unit take
/// fewer than one actual cycle, so total work is invariant across optimizer
/// strategies while total cycles is the quantity a strategy improves.
using Work = double;

/// Byte width of one simulated instruction.
inline constexpr Addr InstrBytes = 4;

/// One program-counter sample as delivered by the sampling substrate.
///
/// Besides the interrupted PC, hardware performance monitors tag samples
/// with event state; the one the paper's optimizer cares about is whether
/// the interrupted instruction was stalled on a data-cache miss (the
/// paper's DPI metric and ADORE's delinquent-load selection both derive
/// from it).
struct Sample {
  /// The sampled program counter.
  Addr Pc = 0;
  /// The cycle at which the sampling interrupt fired.
  Cycles Time = 0;
  /// True when the interrupted instruction was stalled on a D-cache miss.
  bool DCacheMiss = false;
};

} // namespace regmon

#endif // REGMON_SUPPORT_TYPES_H
