//===- support/IntervalTree.cpp - Augmented AVL interval tree -------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/IntervalTree.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

using namespace regmon;

struct IntervalTree::Node {
  Entry Item;
  Addr MaxEnd; ///< Maximum End over this node's subtree.
  int Height = 1;
  std::unique_ptr<Node> Left;
  std::unique_ptr<Node> Right;

  explicit Node(Entry E) : Item(E), MaxEnd(E.End) {}
};

namespace {

using NodePtr = std::unique_ptr<IntervalTree::Node>;

int height(const NodePtr &N) { return N ? N->Height : 0; }

Addr maxEnd(const NodePtr &N) { return N ? N->MaxEnd : 0; }

void update(NodePtr &N) {
  N->Height = 1 + std::max(height(N->Left), height(N->Right));
  N->MaxEnd =
      std::max({N->Item.End, maxEnd(N->Left), maxEnd(N->Right)});
}

int balanceFactor(const NodePtr &N) {
  return height(N->Left) - height(N->Right);
}

void rotateRight(NodePtr &N) {
  NodePtr L = std::move(N->Left);
  N->Left = std::move(L->Right);
  update(N);
  L->Right = std::move(N);
  N = std::move(L);
  update(N);
}

void rotateLeft(NodePtr &N) {
  NodePtr R = std::move(N->Right);
  N->Right = std::move(R->Left);
  update(N);
  R->Left = std::move(N);
  N = std::move(R);
  update(N);
}

void rebalance(NodePtr &N) {
  update(N);
  const int Bf = balanceFactor(N);
  if (Bf > 1) {
    if (balanceFactor(N->Left) < 0)
      rotateLeft(N->Left);
    rotateRight(N);
  } else if (Bf < -1) {
    if (balanceFactor(N->Right) > 0)
      rotateRight(N->Right);
    rotateLeft(N);
  }
}

/// Total order on entries so duplicates of (Start, End) with distinct values
/// have deterministic placement.
bool entryLess(const IntervalTree::Entry &A, const IntervalTree::Entry &B) {
  if (A.Start != B.Start)
    return A.Start < B.Start;
  if (A.End != B.End)
    return A.End < B.End;
  return A.Value < B.Value;
}

void insertNode(NodePtr &N, IntervalTree::Entry E) {
  if (!N) {
    N = std::make_unique<IntervalTree::Node>(E);
    return;
  }
  if (entryLess(E, N->Item))
    insertNode(N->Left, E);
  else
    insertNode(N->Right, E);
  rebalance(N);
}

/// Detaches and returns the minimum node of the subtree rooted at N.
NodePtr detachMin(NodePtr &N) {
  if (!N->Left) {
    NodePtr Min = std::move(N);
    N = std::move(Min->Right);
    return Min;
  }
  NodePtr Min = detachMin(N->Left);
  rebalance(N);
  return Min;
}

bool eraseNode(NodePtr &N, const IntervalTree::Entry &E) {
  if (!N)
    return false;
  bool Erased;
  if (entryLess(E, N->Item)) {
    Erased = eraseNode(N->Left, E);
  } else if (entryLess(N->Item, E)) {
    Erased = eraseNode(N->Right, E);
  } else {
    // Found. Standard BST deletion with AVL rebalancing on the way up.
    if (!N->Left) {
      N = std::move(N->Right);
    } else if (!N->Right) {
      N = std::move(N->Left);
    } else {
      NodePtr Succ = detachMin(N->Right);
      Succ->Left = std::move(N->Left);
      Succ->Right = std::move(N->Right);
      N = std::move(Succ);
    }
    Erased = true;
  }
  if (N && Erased)
    rebalance(N);
  return Erased;
}

template <typename Callback>
void stabNode(const IntervalTree::Node *N, Addr Point, Callback &&Visit) {
  while (N) {
    // Prune: nothing in this subtree can contain Point if every interval
    // ends at or before it.
    if (N->MaxEnd <= Point)
      return;
    // All intervals in the left subtree start at or before N's start, so
    // the left side must always be explored (subject to the MaxEnd prune).
    stabNode(N->Left.get(), Point, Visit);
    if (N->Item.Start <= Point && Point < N->Item.End)
      Visit(N->Item.Value);
    // Intervals right of N start at N->Item.Start or later; if that is
    // already past Point none of them can contain it.
    if (Point < N->Item.Start)
      return;
    N = N->Right.get();
  }
}

void collect(const IntervalTree::Node *N,
             std::vector<IntervalTree::Entry> &Out) {
  if (!N)
    return;
  collect(N->Left.get(), Out);
  Out.push_back(N->Item);
  collect(N->Right.get(), Out);
}

bool checkNode(const IntervalTree::Node *N, Addr &MaxEndOut, int &HeightOut) {
  if (!N) {
    MaxEndOut = 0;
    HeightOut = 0;
    return true;
  }
  Addr LeftMax, RightMax;
  int LeftH, RightH;
  if (!checkNode(N->Left.get(), LeftMax, LeftH) ||
      !checkNode(N->Right.get(), RightMax, RightH))
    return false;
  if (std::abs(LeftH - RightH) > 1)
    return false;
  HeightOut = 1 + std::max(LeftH, RightH);
  if (N->Height != HeightOut)
    return false;
  MaxEndOut = std::max({N->Item.End, LeftMax, RightMax});
  if (N->MaxEnd != MaxEndOut)
    return false;
  if (N->Left && entryLess(N->Item, N->Left->Item))
    return false;
  if (N->Right && entryLess(N->Right->Item, N->Item))
    return false;
  return true;
}

} // namespace

IntervalTree::IntervalTree() = default;
IntervalTree::~IntervalTree() = default;
IntervalTree::IntervalTree(IntervalTree &&) noexcept = default;
IntervalTree &IntervalTree::operator=(IntervalTree &&) noexcept = default;

void IntervalTree::insert(Addr Start, Addr End, std::uint32_t Value) {
  assert(Start < End && "interval must be non-empty");
  insertNode(Root, Entry{Start, End, Value});
  ++Count;
}

bool IntervalTree::erase(Addr Start, Addr End, std::uint32_t Value) {
  const bool Erased = eraseNode(Root, Entry{Start, End, Value});
  if (Erased)
    --Count;
  return Erased;
}

void IntervalTree::stab(
    Addr Point, const std::function<void(std::uint32_t)> &Visit) const {
  stabNode(Root.get(), Point, Visit);
}

void IntervalTree::stab(Addr Point, std::vector<std::uint32_t> &Out) const {
  stabNode(Root.get(), Point,
           [&Out](std::uint32_t V) { Out.push_back(V); });
}

std::vector<IntervalTree::Entry> IntervalTree::entries() const {
  std::vector<Entry> Out;
  Out.reserve(Count);
  collect(Root.get(), Out);
  return Out;
}

void IntervalTree::clear() {
  // Destroy iteratively to avoid deep recursive destructor chains on
  // degenerate shapes (AVL keeps depth logarithmic, but be safe).
  std::vector<NodePtr> Stack;
  if (Root)
    Stack.push_back(std::move(Root));
  while (!Stack.empty()) {
    NodePtr N = std::move(Stack.back());
    Stack.pop_back();
    if (N->Left)
      Stack.push_back(std::move(N->Left));
    if (N->Right)
      Stack.push_back(std::move(N->Right));
  }
  Count = 0;
}

bool IntervalTree::checkInvariants() const {
  Addr MaxEndOut;
  int HeightOut;
  return checkNode(Root.get(), MaxEndOut, HeightOut);
}
