//===- support/Rng.cpp - Deterministic pseudo-random numbers --------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

using namespace regmon;

static std::uint64_t splitMix64(std::uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  std::uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

void Rng::reseed(std::uint64_t Seed) {
  // splitmix64 guarantees the xoshiro state is not all-zero for any seed.
  for (auto &Word : State)
    Word = splitMix64(Seed);
}

static inline std::uint64_t rotl(std::uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

std::uint64_t Rng::next() {
  const std::uint64_t Result = rotl(State[1] * 5, 7) * 9;
  const std::uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

std::uint64_t Rng::nextBelow(std::uint64_t Bound) {
  assert(Bound != 0 && "nextBelow requires a nonzero bound");
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t X = next();
  __uint128_t M = static_cast<__uint128_t>(X) * Bound;
  auto Lo = static_cast<std::uint64_t>(M);
  if (Lo < Bound) {
    const std::uint64_t Threshold = -Bound % Bound;
    while (Lo < Threshold) {
      X = next();
      M = static_cast<__uint128_t>(X) * Bound;
      Lo = static_cast<std::uint64_t>(M);
    }
  }
  return static_cast<std::uint64_t>(M >> 64);
}

std::size_t Rng::pickWeighted(std::span<const double> Weights) {
  assert(!Weights.empty() && "cannot pick from an empty weight list");
  double Total = 0;
  for (double W : Weights) {
    assert(W >= 0 && "weights must be non-negative");
    Total += W;
  }
  assert(Total > 0 && "weights must not all be zero");
  double Point = nextDouble() * Total;
  for (std::size_t I = 0, E = Weights.size(); I != E; ++I) {
    Point -= Weights[I];
    if (Point < 0)
      return I;
  }
  // Floating-point rounding can leave Point barely >= 0; return the last
  // index with nonzero weight.
  for (std::size_t I = Weights.size(); I-- > 0;)
    if (Weights[I] > 0)
      return I;
  return Weights.size() - 1;
}
