//===- support/Histogram.h - Per-instruction sample histograms -*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense histogram of sample counts over the instructions of one code
/// region. This is the "set of samples" the local phase detector compares:
/// prev_hist (the stable set) and curr_hist (the current interval's set) in
/// the paper's Fig. 12 are both InstrHistograms.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_SUPPORT_HISTOGRAM_H
#define REGMON_SUPPORT_HISTOGRAM_H

#include "support/HotpathKernels.h"
#include "support/Types.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace regmon {

namespace persist {
class StateCodec;
} // namespace persist

/// Sample counts per instruction slot of a fixed-size code region.
class InstrHistogram {
public:
  InstrHistogram() = default;

  /// Creates a histogram covering [\p Start, \p End), one bin per
  /// instruction (4 bytes). \p Start and \p End must be aligned and ordered.
  InstrHistogram(Addr Start, Addr End)
      : StartAddr(Start),
        Bins((End - Start) / InstrBytes, 0) {
    assert(Start < End && "region must be non-empty");
    assert(Start % InstrBytes == 0 && End % InstrBytes == 0 &&
           "region bounds must be instruction-aligned");
  }

  /// Records one sample at \p Pc if it lies inside the region; returns
  /// false -- touching nothing -- otherwise. The range check runs in every
  /// build mode: corrupted PCs (fault injection, hostile checkpoint
  /// restores) must not underflow the bin index or write out of bounds
  /// just because NDEBUG stripped an assert. Callers that can see
  /// rejections count them in the SamplesOutOfRegion metric.
  bool tryAddSample(Addr Pc) { return tryAddSampleAt(Pc) >= 0; }

  /// Like \ref tryAddSample, but returns the bin index the sample landed
  /// in, or -1 on rejection. The incremental similarity engine uses the
  /// index to accumulate the stable-set cross moment as samples land.
  REGMON_HOT std::ptrdiff_t tryAddSampleAt(Addr Pc) {
    if (Pc < StartAddr)
      return -1;
    const std::size_t Bin =
        static_cast<std::size_t>((Pc - StartAddr) / InstrBytes);
    if (Bin >= Bins.size())
      return -1;
    // (y+1)^2 = y^2 + 2y + 1: the sum of squared bins stays exact as each
    // sample lands, making interval-end variance O(1).
    const std::uint64_t Old = Bins[Bin];
    Bins[Bin] = static_cast<std::uint32_t>(Old + 1);
    SumSq += 2 * Old + 1;
    ++TotalCount;
    return static_cast<std::ptrdiff_t>(Bin);
  }

  /// Records one sample at \p Pc, which must lie inside the region.
  /// Debug builds still assert on violation; release builds ignore the
  /// sample instead of corrupting memory.
  void addSample(Addr Pc) {
    const bool Ok = tryAddSample(Pc);
    assert(Ok && "sample outside the region");
    (void)Ok;
  }

  /// Zeroes all bins (begin a new interval). An already-empty histogram
  /// returns immediately: per-interval resets of idle or miss-free
  /// regions must not pay an O(bins) clear for nothing.
  void reset() {
    if (TotalCount == 0 && SumSq == 0)
      return;
    std::fill(Bins.begin(), Bins.end(), 0u);
    TotalCount = 0;
    SumSq = 0;
  }

  /// Copies \p Other's bins into this histogram. Regions must match.
  void assignFrom(const InstrHistogram &Other) {
    assert(Other.Bins.size() == Bins.size() &&
           Other.StartAddr == StartAddr && "histogram regions differ");
    Bins = Other.Bins;
    TotalCount = Other.TotalCount;
    SumSq = Other.SumSq;
  }

  /// Returns the bin index of address \p Pc.
  std::size_t binFor(Addr Pc) const {
    assert(Pc >= StartAddr && "sample below the region");
    return static_cast<std::size_t>((Pc - StartAddr) / InstrBytes);
  }

  /// Returns the base address of the covered region.
  Addr start() const { return StartAddr; }
  /// Returns the number of instruction bins.
  std::size_t size() const { return Bins.size(); }
  /// Returns the total number of samples recorded since the last reset.
  std::uint64_t total() const { return TotalCount; }
  /// Returns the sum of squared bin counts, maintained sample by sample
  /// (the Syy moment of support/HotpathKernels.h).
  std::uint64_t sumOfSquares() const { return SumSq; }
  /// Returns true if no samples were recorded since the last reset.
  bool empty() const { return TotalCount == 0; }
  /// Returns the raw bin counts.
  std::span<const std::uint32_t> bins() const { return Bins; }

private:
  /// Checkpointing serializes the raw bins (persist/StateCodec.h).
  friend class persist::StateCodec;

  Addr StartAddr = 0;
  std::vector<std::uint32_t> Bins;
  std::uint64_t TotalCount = 0;
  /// Sum of squared bin counts, kept in lockstep with Bins (checkpoints
  /// validate it against a from-scratch recompute on decode).
  std::uint64_t SumSq = 0;
};

} // namespace regmon

#endif // REGMON_SUPPORT_HISTOGRAM_H
