//===- support/Contracts.h - Lint-checked function contracts ----*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The annotation macros regmon-lint's call-graph purity pass keys on.
/// Both expand to nothing -- they cost zero bytes and zero cycles in every
/// build -- and exist purely so the analyzer can anchor whole-program
/// obligations on specific functions instead of pattern-matching syntax.
///
/// REGMON_HOT marks per-sample / per-bin hot-path code. The `hotpath`
/// token rule bans allocation and indirect dispatch inside the tagged body
/// itself; the `purity-hot` graph rule extends the same ban to everything
/// the body transitively calls, so a helper three hops down cannot launder
/// a heap allocation past the gate.
///
/// REGMON_PURE marks a decision path whose outputs must be a pure function
/// of its explicit inputs: LPD interval-end transitions, RegionMonitor
/// interval processing, FaultPlan decision draws, Similarity combines.
/// The `purity` graph rule proves that nothing transitively reachable from
/// a tagged body reads a wall clock or libc randomness, performs I/O, or
/// writes file-scope mutable state. Allocation is permitted (interval-end
/// paths may grow scratch); concurrency confinement is enforced separately
/// by the `purity-confinement` rule (DESIGN.md §13).
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_SUPPORT_CONTRACTS_H
#define REGMON_SUPPORT_CONTRACTS_H

/// Marks a function as sampling hot-path code: no heap allocation, no
/// indirect member calls, in the body or anything it transitively calls
/// (regmon-lint rules `hotpath` and `purity-hot`).
#define REGMON_HOT

/// Marks a function as a replay-critical decision path: no wall clocks,
/// libc randomness, I/O, or global writes anywhere in its transitive call
/// graph (regmon-lint rule `purity`).
#define REGMON_PURE

#endif // REGMON_SUPPORT_CONTRACTS_H
