//===- support/IntervalTree.h - Augmented AVL interval tree ----*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dynamic interval tree: an AVL tree keyed on interval start, with each
/// node augmented by the maximum interval end in its subtree (CLRS chapter
/// 14, the structure the paper cites as [18]). Supports insertion, erasure
/// and point-stabbing queries in O(log n + k).
///
/// The paper's region monitor uses this to attribute a program-counter
/// sample to every monitored region containing it, replacing the O(n)
/// region-list walk (Fig. 16 measures the difference). Regions may nest and
/// overlap, so a stab must report *all* containing intervals.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_SUPPORT_INTERVALTREE_H
#define REGMON_SUPPORT_INTERVALTREE_H

#include "support/Types.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace regmon {

/// An interval tree mapping half-open address intervals [Start, End) to
/// 32-bit payloads (region identifiers).
class IntervalTree {
public:
  /// Opaque tree node; public only so implementation helpers can name it.
  struct Node;

  /// One stored interval.
  struct Entry {
    Addr Start = 0; ///< Inclusive lower bound.
    Addr End = 0;   ///< Exclusive upper bound.
    std::uint32_t Value = 0;
  };

  IntervalTree();
  ~IntervalTree();
  IntervalTree(IntervalTree &&) noexcept;
  IntervalTree &operator=(IntervalTree &&) noexcept;
  IntervalTree(const IntervalTree &) = delete;
  IntervalTree &operator=(const IntervalTree &) = delete;

  /// Inserts [\p Start, \p End) with payload \p Value. \p Start < \p End is
  /// required. Duplicate intervals (even with equal payloads) are stored
  /// independently.
  void insert(Addr Start, Addr End, std::uint32_t Value);

  /// Removes one interval exactly matching (\p Start, \p End, \p Value).
  /// Returns true if an entry was removed.
  bool erase(Addr Start, Addr End, std::uint32_t Value);

  /// Invokes \p Visit(value) for every stored interval containing \p Point.
  void stab(Addr Point, const std::function<void(std::uint32_t)> &Visit) const;

  /// Appends the payloads of every stored interval containing \p Point to
  /// \p Out. Allocation-free when \p Out has reserved capacity; this is the
  /// hot-path interface used during sample attribution.
  void stab(Addr Point, std::vector<std::uint32_t> &Out) const;

  /// Returns every stored entry in start order (for tests and debugging).
  std::vector<Entry> entries() const;

  /// Returns the number of stored intervals.
  std::size_t size() const { return Count; }
  /// Returns true when no intervals are stored.
  bool empty() const { return Count == 0; }
  /// Removes all intervals.
  void clear();

  /// Verifies the AVL and max-end augmentation invariants; for tests.
  /// Returns true when the structure is internally consistent.
  bool checkInvariants() const;

private:
  std::unique_ptr<Node> Root;
  std::size_t Count = 0;
};

} // namespace regmon

#endif // REGMON_SUPPORT_INTERVALTREE_H
