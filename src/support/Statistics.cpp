//===- support/Statistics.cpp - Streaming and batch statistics ------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include "support/HotpathKernels.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>

using namespace regmon;

double RunningStats::stddev() const { return std::sqrt(variance()); }

WindowedStats::WindowedStats(std::size_t Capacity) : Cap(Capacity) {
  assert(Capacity > 0 && "window capacity must be positive");
  Buffer.reserve(Capacity);
}

void WindowedStats::add(double X) {
  if (Buffer.size() < Cap) {
    Buffer.push_back(X);
    Sum += X;
    return;
  }
  Sum += X - Buffer[Head];
  Buffer[Head] = X;
  Head = (Head + 1) % Cap;
}

void WindowedStats::clear() {
  Buffer.clear();
  Head = 0;
  Sum = 0;
}

void WindowedStats::resize(std::size_t NewCapacity) {
  assert(NewCapacity > 0 && "window capacity must be positive");
  if (NewCapacity == Cap)
    return;
  // Unroll the ring into chronological order, keep the newest entries.
  std::vector<double> Ordered;
  Ordered.reserve(Buffer.size());
  if (Buffer.size() < Cap) {
    Ordered = Buffer; // not yet wrapped: already chronological
  } else {
    for (std::size_t I = 0; I < Buffer.size(); ++I)
      Ordered.push_back(Buffer[(Head + I) % Cap]);
  }
  if (Ordered.size() > NewCapacity)
    Ordered.erase(Ordered.begin(),
                  Ordered.end() - static_cast<std::ptrdiff_t>(NewCapacity));
  Cap = NewCapacity;
  Buffer = std::move(Ordered);
  Head = 0;
  Sum = 0;
  for (double V : Buffer)
    Sum += V;
}

double WindowedStats::mean() const {
  if (Buffer.empty())
    return 0;
  return Sum / static_cast<double>(Buffer.size());
}

double WindowedStats::stddev() const {
  // Two-pass over the (small) window: exact and immune to the cancellation
  // that plagues the sum-of-squares shortcut when values are large
  // addresses with small spread.
  if (Buffer.size() < 2)
    return 0;
  const double Mean = mean();
  double Acc = 0;
  for (double V : Buffer) {
    const double D = V - Mean;
    Acc += D * D;
  }
  return std::sqrt(Acc / static_cast<double>(Buffer.size()));
}

/// Shared implementation over any arithmetic element type.
///
/// Release-hardened contract (no asserts, no NaN): vectors of different
/// lengths -- including one empty against one non-empty -- cannot agree in
/// shape, so r = 0.0; two empty vectors are identically flat, so r = 1.0.
/// A NaN result would silently fail every `r >= rt` comparison and wedge
/// the LPD state machine in Unstable, so the final value is clamped to a
/// finite number.
template <typename T>
static double pearsonImpl(std::span<const T> X, std::span<const T> Y) {
  if (X.size() != Y.size())
    return 0.0;
  if (X.empty())
    return 1.0;
  const auto N = static_cast<double>(X.size());

  double SumX = 0, SumY = 0;
  for (std::size_t I = 0, E = X.size(); I != E; ++I) {
    SumX += static_cast<double>(X[I]);
    SumY += static_cast<double>(Y[I]);
  }
  const double MeanX = SumX / N, MeanY = SumY / N;

  double Sxy = 0, Sxx = 0, Syy = 0;
  for (std::size_t I = 0, E = X.size(); I != E; ++I) {
    const double Dx = static_cast<double>(X[I]) - MeanX;
    const double Dy = static_cast<double>(Y[I]) - MeanY;
    Sxy += Dx * Dy;
    Sxx += Dx * Dx;
    Syy += Dy * Dy;
  }

  if (Sxx == 0 || Syy == 0) {
    // Degenerate: at least one vector is constant, so r is undefined. Two
    // constant vectors have identical flat shape (no behaviour change);
    // one constant against one varying is a shape change.
    return (Sxx == 0 && Syy == 0) ? 1.0 : 0.0;
  }
  const double R = Sxy / (std::sqrt(Sxx) * std::sqrt(Syy));
  return std::isfinite(R) ? R : 0.0;
}

double regmon::pearson(std::span<const double> X, std::span<const double> Y) {
  return pearsonImpl(X, Y);
}

double regmon::pearson(std::span<const std::uint32_t> X,
                       std::span<const std::uint32_t> Y) {
  // Histogram bins take the exact integer-moment path: the same moments
  // the incremental similarity engine maintains, combined by the same
  // function, so a from-scratch recompute is the bit-identical oracle for
  // the O(1) interval-end path (support/HotpathKernels.h).
  if (X.size() != Y.size())
    return 0.0;
  return pearsonFromMoments(X.size(), recomputeMoments(X, Y));
}

double regmon::median(std::span<const double> Values) {
  return quantile(Values, 0.5);
}

double regmon::quantile(std::span<const double> Values, double Q) {
  assert(Q >= 0 && Q <= 1 && "quantile fraction out of range");
  if (Values.empty())
    return 0;
  std::vector<double> Sorted(Values.begin(), Values.end());
  std::sort(Sorted.begin(), Sorted.end());
  const double Rank = Q * static_cast<double>(Sorted.size() - 1);
  const auto Lo = static_cast<std::size_t>(Rank);
  const std::size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  const double Frac = Rank - static_cast<double>(Lo);
  return Sorted[Lo] + (Sorted[Hi] - Sorted[Lo]) * Frac;
}
