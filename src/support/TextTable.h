//===- support/TextTable.h - Aligned plain-text tables ---------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny column-aligned table renderer used by the benchmark harnesses to
/// print the rows of each reproduced figure. Rendering produces a string;
/// the caller decides where to write it (library code never touches
/// iostreams).
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_SUPPORT_TEXTTABLE_H
#define REGMON_SUPPORT_TEXTTABLE_H

#include <cstdint>
#include <string>
#include <vector>

namespace regmon {

/// Accumulates rows of string cells and renders them with columns padded to
/// their widest cell. The first row added with \ref header is underlined.
class TextTable {
public:
  /// Sets the header row (replaces any previous header).
  void header(std::vector<std::string> Cells);

  /// Appends one data row. Rows may have differing cell counts; shorter
  /// rows are padded with empty cells.
  void row(std::vector<std::string> Cells);

  /// Renders the table. Columns are separated by two spaces; numeric-looking
  /// cells (per \ref looksNumeric) are right-aligned, text is left-aligned.
  std::string render() const;

  /// Formats \p Value with \p Digits fractional digits.
  static std::string num(double Value, int Digits = 2);
  /// Formats \p Value as a percentage with \p Digits fractional digits.
  static std::string percent(double Value, int Digits = 1);
  /// Formats an unsigned integer count.
  static std::string count(std::uint64_t Value);

private:
  static bool looksNumeric(const std::string &Cell);

  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace regmon

#endif // REGMON_SUPPORT_TEXTTABLE_H
