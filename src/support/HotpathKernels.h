//===- support/HotpathKernels.h - Flat sampling hot-path kernels -*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sampling hot path's inner kernels, shared by the naive (oracle) and
/// incremental similarity engines so both produce *bit-identical* results.
///
/// The trick that makes bit-identity unconditional: every moment Pearson
/// and cosine need over histogram bins
///
///     SumX  = sum x_i        SumY  = sum y_i
///     Sxx   = sum x_i^2      Syy   = sum y_i^2      Sxy = sum x_i * y_i
///
/// is an *integer* and is accumulated in uint64_t. Unsigned 64-bit
/// addition is associative and commutative (mod 2^64), so a from-scratch
/// recompute (the oracle), an incrementally maintained running total, and
/// an unrolled multi-accumulator kernel all produce the same uint64_t
/// values -- regardless of summation order, unroll factor, or how the
/// compiler vectorizes the loop. The lossy step -- converting to double
/// and combining into r -- happens exactly once, in pearsonFromMoments /
/// cosineFromMoments, shared by every engine. Identical integer moments
/// through identical double arithmetic yields identical bits.
///
/// ULP envelope: the conversions double(A - B) and sqrt() round when a
/// moment difference exceeds 2^53 (DESIGN.md §12 documents the envelope);
/// the roundings are still deterministic and engine-independent, so the
/// exported bytes never depend on the engine or kernel selected.
///
/// Kernel selection is a configure-time choice (-DREGMON_HOTPATH_KERNEL=
/// auto|scalar). "auto" splits the accumulation across four independent
/// lanes -- breaking the loop-carried dependency chain so the compiler's
/// auto-vectorizer can keep the SoA bin arrays streaming -- and "scalar"
/// is the portable single-accumulator fallback. Integer associativity
/// makes the two kernels bit-identical; the selection only moves time.
///
/// REGMON_HOT (support/Contracts.h) tags a function as per-sample /
/// per-bin hot-path code. The macro expands to nothing; it exists so
/// regmon-lint's `hotpath` and `purity-hot` rules can mechanically forbid
/// heap allocation and indirect dispatch in tagged functions and
/// everything they transitively call (DESIGN.md §8, §13).
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_SUPPORT_HOTPATHKERNELS_H
#define REGMON_SUPPORT_HOTPATHKERNELS_H

#include "support/Contracts.h"
#include "support/Types.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <span>

namespace regmon {

/// The integer moments of one (stable, current) histogram pair. SumX/Sxx
/// describe the stable set, SumY/Syy the current set, Sxy their cross
/// moment. All five are exact uint64_t sums (mod 2^64).
struct HistMoments {
  std::uint64_t SumX = 0;
  std::uint64_t SumY = 0;
  std::uint64_t Sxx = 0;
  std::uint64_t Syy = 0;
  std::uint64_t Sxy = 0;
};

/// Returns the configure-time kernel selection ("auto" or "scalar").
inline const char *hotpathKernelName() {
#if defined(REGMON_HOTPATH_KERNEL_SCALAR)
  return "scalar";
#else
  return "auto";
#endif
}

/// Numeric id of the kernel selection for gauges: 0 = scalar, 1 = auto.
inline int hotpathKernelId() {
#if defined(REGMON_HOTPATH_KERNEL_SCALAR)
  return 0;
#else
  return 1;
#endif
}

/// Recomputes all five moments of (\p X, \p Y) from scratch -- the oracle
/// kernel the incremental engine is differentially tested against. Spans
/// must be equal length.
REGMON_HOT inline HistMoments
recomputeMoments(std::span<const std::uint32_t> X,
                 std::span<const std::uint32_t> Y) {
  assert(X.size() == Y.size() && "histograms must match");
  HistMoments M;
  const std::size_t E = X.size();
#if defined(REGMON_HOTPATH_KERNEL_SCALAR)
  for (std::size_t I = 0; I != E; ++I) {
    const std::uint64_t Xi = X[I], Yi = Y[I];
    M.SumX += Xi;
    M.SumY += Yi;
    M.Sxx += Xi * Xi;
    M.Syy += Yi * Yi;
    M.Sxy += Xi * Yi;
  }
#else
  // Four independent accumulator lanes: the loop-carried dependency is per
  // lane, so the vectorizer can turn this into wide integer adds over the
  // flat bin arrays. Folding lanes in fixed order keeps the result equal
  // to the scalar kernel (unsigned addition is associative).
  std::uint64_t SumX[4] = {0, 0, 0, 0}, SumY[4] = {0, 0, 0, 0};
  std::uint64_t Sxx[4] = {0, 0, 0, 0}, Syy[4] = {0, 0, 0, 0};
  std::uint64_t Sxy[4] = {0, 0, 0, 0};
  std::size_t I = 0;
  for (const std::size_t E4 = E & ~std::size_t{3}; I != E4; I += 4) {
    for (std::size_t L = 0; L != 4; ++L) {
      const std::uint64_t Xi = X[I + L], Yi = Y[I + L];
      SumX[L] += Xi;
      SumY[L] += Yi;
      Sxx[L] += Xi * Xi;
      Syy[L] += Yi * Yi;
      Sxy[L] += Xi * Yi;
    }
  }
  for (; I != E; ++I) {
    const std::uint64_t Xi = X[I], Yi = Y[I];
    SumX[0] += Xi;
    SumY[0] += Yi;
    Sxx[0] += Xi * Xi;
    Syy[0] += Yi * Yi;
    Sxy[0] += Xi * Yi;
  }
  for (std::size_t L = 0; L != 4; ++L) {
    M.SumX += SumX[L];
    M.SumY += SumY[L];
    M.Sxx += Sxx[L];
    M.Syy += Syy[L];
    M.Sxy += Sxy[L];
  }
#endif
  return M;
}

/// Combines integer moments into Pearson's r over \p N bins. The single
/// lossy (integer -> double) step of the pipeline; every engine and kernel
/// funnels through this function, which is what makes them bit-identical.
///
/// Release-hardened contract (mirrors the historical pearson() float
/// path): N == 0 compares two empty histograms, identically flat, r = 1;
/// two zero-variance vectors are identical in shape, r = 1; one
/// zero-variance vector against a varying one is a shape change, r = 0.
/// The result is clamped finite and into [-1, 1] so a degenerate value can
/// never wedge the `r >= rt` comparisons of the LPD state machine.
REGMON_PURE inline double pearsonFromMoments(std::uint64_t N,
                                             const HistMoments &M) {
  if (N == 0)
    return 1.0;
  // N*Sxx - SumX^2 = N * sum (x_i - mean)^2 >= 0 by Cauchy-Schwarz, so the
  // unsigned subtraction cannot underflow (within the documented moment
  // envelope). The numerator can be negative, so it is computed in
  // signed-magnitude form before the conversion to double.
  const std::uint64_t VarX = N * M.Sxx - M.SumX * M.SumX;
  const std::uint64_t VarY = N * M.Syy - M.SumY * M.SumY;
  if (VarX == 0 || VarY == 0)
    return (VarX == 0 && VarY == 0) ? 1.0 : 0.0;
  const std::uint64_t Cross = N * M.Sxy;
  const std::uint64_t Product = M.SumX * M.SumY;
  const double Num = Cross >= Product
                         ? static_cast<double>(Cross - Product)
                         : -static_cast<double>(Product - Cross);
  const double R = Num / (std::sqrt(static_cast<double>(VarX)) *
                          std::sqrt(static_cast<double>(VarY)));
  return std::isfinite(R) ? std::clamp(R, -1.0, 1.0) : 0.0;
}

/// Combines integer moments into the cosine of the raw count vectors.
/// Same contract as \ref pearsonFromMoments: both-zero norms (two empty
/// histograms) are identical, cos = 1; one zero norm is a shape change,
/// cos = 0; the result is clamped finite and into [-1, 1].
REGMON_PURE inline double cosineFromMoments(const HistMoments &M) {
  if (M.Sxx == 0 || M.Syy == 0)
    return (M.Sxx == 0 && M.Syy == 0) ? 1.0 : 0.0;
  const double C = static_cast<double>(M.Sxy) /
                   (std::sqrt(static_cast<double>(M.Sxx)) *
                    std::sqrt(static_cast<double>(M.Syy)));
  return std::isfinite(C) ? std::clamp(C, -1.0, 1.0) : 0.0;
}

/// Sums \p N program counters from a flat SoA lane. Feeds the centroid
/// GPD: realistic PC sums stay far below 2^53, so double(pcSum)/N equals
/// the historical sequential double accumulation bit for bit while the
/// integer loop vectorizes.
REGMON_HOT inline std::uint64_t pcSum(const Addr *Pcs, std::size_t N) {
#if defined(REGMON_HOTPATH_KERNEL_SCALAR)
  std::uint64_t Sum = 0;
  for (std::size_t I = 0; I != N; ++I)
    Sum += Pcs[I];
  return Sum;
#else
  std::uint64_t Lane[4] = {0, 0, 0, 0};
  std::size_t I = 0;
  for (const std::size_t N4 = N & ~std::size_t{3}; I != N4; I += 4) {
    Lane[0] += Pcs[I];
    Lane[1] += Pcs[I + 1];
    Lane[2] += Pcs[I + 2];
    Lane[3] += Pcs[I + 3];
  }
  for (; I != N; ++I)
    Lane[0] += Pcs[I];
  return Lane[0] + Lane[1] + Lane[2] + Lane[3];
#endif
}

} // namespace regmon

#endif // REGMON_SUPPORT_HOTPATHKERNELS_H
