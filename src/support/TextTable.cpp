//===- support/TextTable.cpp - Aligned plain-text tables ------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/TextTable.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>

using namespace regmon;

void TextTable::header(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TextTable::row(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

bool TextTable::looksNumeric(const std::string &Cell) {
  if (Cell.empty())
    return false;
  bool SawDigit = false;
  for (char C : Cell) {
    if (std::isdigit(static_cast<unsigned char>(C))) {
      SawDigit = true;
      continue;
    }
    if (C == '.' || C == '-' || C == '+' || C == '%' || C == 'x' ||
        C == 'e' || C == 'E' || C == ',')
      continue;
    return false;
  }
  return SawDigit;
}

std::string TextTable::render() const {
  std::size_t Cols = Header.size();
  for (const auto &Row : Rows)
    Cols = std::max(Cols, Row.size());

  std::vector<std::size_t> Width(Cols, 0);
  auto Measure = [&Width](const std::vector<std::string> &Row) {
    for (std::size_t I = 0; I < Row.size(); ++I)
      Width[I] = std::max(Width[I], Row[I].size());
  };
  Measure(Header);
  for (const auto &Row : Rows)
    Measure(Row);

  std::string Out;
  auto Emit = [&](const std::vector<std::string> &Row) {
    for (std::size_t I = 0; I < Cols; ++I) {
      const std::string Cell = I < Row.size() ? Row[I] : std::string();
      const std::size_t Pad = Width[I] - Cell.size();
      if (looksNumeric(Cell)) {
        Out.append(Pad, ' ');
        Out += Cell;
      } else {
        Out += Cell;
        Out.append(Pad, ' ');
      }
      if (I + 1 != Cols)
        Out += "  ";
    }
    // Trim trailing padding.
    while (!Out.empty() && Out.back() == ' ')
      Out.pop_back();
    Out += '\n';
  };

  if (!Header.empty()) {
    Emit(Header);
    std::size_t RuleLen = 0;
    for (std::size_t I = 0; I < Cols; ++I)
      RuleLen += Width[I] + (I + 1 != Cols ? 2 : 0);
    Out.append(RuleLen, '-');
    Out += '\n';
  }
  for (const auto &Row : Rows)
    Emit(Row);
  return Out;
}

std::string TextTable::num(double Value, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, Value);
  return Buf;
}

std::string TextTable::percent(double Value, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Digits, Value * 100.0);
  return Buf;
}

std::string TextTable::count(std::uint64_t Value) {
  return std::to_string(Value);
}
