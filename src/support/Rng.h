//===- support/Rng.h - Deterministic pseudo-random numbers ------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (xoshiro256**) plus the weighted-choice
/// helpers the execution simulator needs. Determinism matters: every
/// experiment in the paper reproduction must give identical sample streams
/// for identical seeds so that phase-detector comparisons are apples to
/// apples.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_SUPPORT_RNG_H
#define REGMON_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>

namespace regmon {

/// xoshiro256** 1.0 by Blackman & Vigna, seeded through splitmix64.
///
/// Not cryptographic; chosen for speed, tiny state and excellent statistical
/// quality for simulation workloads.
class Rng {
public:
  /// Seeds the full 256-bit state from \p Seed via splitmix64.
  explicit Rng(std::uint64_t Seed = 0x9e3779b97f4a7c15ULL) { reseed(Seed); }

  /// Re-seeds the generator; the subsequent stream depends only on \p Seed.
  void reseed(std::uint64_t Seed);

  /// Returns the next raw 64-bit value.
  std::uint64_t next();

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns an integer uniformly distributed in [0, Bound). \p Bound must
  /// be nonzero. Uses Lemire's multiply-shift rejection method.
  std::uint64_t nextBelow(std::uint64_t Bound);

  /// Picks an index in [0, Weights.size()) with probability proportional to
  /// Weights[i]. All weights must be >= 0 and their sum must be > 0.
  std::size_t pickWeighted(std::span<const double> Weights);

  /// Forks a statistically independent generator. Useful for giving each
  /// subsystem (engine, sampler jitter, ...) its own stream so that adding
  /// consumers does not perturb existing streams.
  Rng fork() { return Rng(next() ^ 0xa0761d6478bd642fULL); }

private:
  std::uint64_t State[4] = {};
};

} // namespace regmon

#endif // REGMON_SUPPORT_RNG_H
