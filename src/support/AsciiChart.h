//===- support/AsciiChart.h - Terminal charts for region data --*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain-text renderers for the paper's "region charts" (Figs. 2, 5, 9):
/// a stacked series chart showing how many samples each region received in
/// each interval, with an optional phase line on top, and a simple sparkline
/// for scalar series such as Pearson r over time (Figs. 10, 11).
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_SUPPORT_ASCIICHART_H
#define REGMON_SUPPORT_ASCIICHART_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace regmon {

/// Renders a stacked chart of per-series values over intervals.
class StackedChart {
public:
  /// Creates a chart \p Rows character rows tall.
  explicit StackedChart(unsigned Rows = 16) : Height(Rows) {}

  /// Adds one series named \p Name with one value per interval. All series
  /// must have the same length.
  void addSeries(std::string Name, std::vector<double> Values);

  /// Sets a boolean overlay (e.g. "phase unstable") drawn as a line of '#'
  /// above the stack; one flag per interval.
  void setOverlay(std::string Name, std::vector<bool> Flags);

  /// Renders the chart plus a legend mapping glyphs to series names.
  std::string render() const;

private:
  struct Series {
    std::string Name;
    std::vector<double> Values;
  };

  unsigned Height;
  std::vector<Series> AllSeries;
  std::string OverlayName;
  std::vector<bool> Overlay;
};

/// Renders a single scalar series as a sparkline spanning [Lo, Hi], one
/// character per point, using a vertical resolution of 8 sub-levels.
std::string sparkline(std::span<const double> Values, double Lo, double Hi);

} // namespace regmon

#endif // REGMON_SUPPORT_ASCIICHART_H
