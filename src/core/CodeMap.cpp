//===- core/CodeMap.cpp - Region-formation code oracle --------------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/CodeMap.h"

using namespace regmon::core;

// Out-of-line virtual method anchor.
CodeMap::~CodeMap() = default;
