//===- core/Region.h - Monitored code regions -------------------*- C++ -*-===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A monitored code region: the unit of optimization and of local phase
/// detection. Regions are built by the region-formation pass around hot
/// loops (paper section 3.1) and may nest or overlap.
///
//===----------------------------------------------------------------------===//

#ifndef REGMON_CORE_REGION_H
#define REGMON_CORE_REGION_H

#include "support/Types.h"

#include <cstdint>
#include <string>

namespace regmon::core {

/// Identifies a region within one RegionMonitor. Ids are dense and are
/// never reused, even after pruning.
using RegionId = std::uint32_t;

/// One monitored code region.
struct Region {
  RegionId Id = 0;
  /// Display name; by convention the paper's "start-end" hex form
  /// (e.g. "146f0-14770").
  std::string Name;
  /// Half-open, instruction-aligned code extent.
  Addr Start = 0;
  Addr End = 0;
  /// Interval index at which the region was formed.
  std::uint64_t FormedAtInterval = 0;

  /// Number of instructions covered.
  std::size_t instrCount() const {
    return static_cast<std::size_t>((End - Start) / InstrBytes);
  }
  /// Returns true if \p Pc lies inside the region.
  bool contains(Addr Pc) const { return Pc >= Start && Pc < End; }
};

} // namespace regmon::core

#endif // REGMON_CORE_REGION_H
