//===- core/Similarity.cpp - Histogram similarity metrics -----------------===//
//
// Part of the regmon project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Similarity.h"

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace regmon;
using namespace regmon::core;

SimilarityMetric::~SimilarityMetric() = default;

double SimilarityMetric::compareMoments(std::uint64_t,
                                        const HistMoments &) const {
  assert(false && "compareMoments on a metric without moment support");
  return 0.0;
}

REGMON_PURE double
PearsonSimilarity::compare(std::span<const std::uint32_t> Stable,
                           std::span<const std::uint32_t> Current) const {
  return pearson(Stable, Current);
}

REGMON_PURE double
PearsonSimilarity::compareMoments(std::uint64_t N,
                                  const HistMoments &M) const {
  return pearsonFromMoments(N, M);
}

REGMON_PURE double
CosineSimilarity::compare(std::span<const std::uint32_t> Stable,
                          std::span<const std::uint32_t> Current) const {
  assert(Stable.size() == Current.size() && "histograms must match");
  // Integer moments, like Pearson: the from-scratch recompute is then the
  // bit-identical oracle for the incremental engine's running moments.
  return cosineFromMoments(recomputeMoments(Stable, Current));
}

REGMON_PURE double
CosineSimilarity::compareMoments(std::uint64_t,
                                 const HistMoments &M) const {
  return cosineFromMoments(M);
}

REGMON_PURE double
OverlapSimilarity::compare(std::span<const std::uint32_t> Stable,
                           std::span<const std::uint32_t> Current) const {
  assert(Stable.size() == Current.size() && "histograms must match");
  std::uint64_t TotalS = 0, TotalC = 0;
  for (std::size_t I = 0, E = Stable.size(); I != E; ++I) {
    TotalS += Stable[I];
    TotalC += Current[I];
  }
  if (TotalS == 0 || TotalC == 0)
    return (TotalS == 0 && TotalC == 0) ? 1.0 : 0.0;
  double Overlap = 0;
  const double InvS = 1.0 / static_cast<double>(TotalS);
  const double InvC = 1.0 / static_cast<double>(TotalC);
  for (std::size_t I = 0, E = Stable.size(); I != E; ++I)
    Overlap += std::min(static_cast<double>(Stable[I]) * InvS,
                        static_cast<double>(Current[I]) * InvC);
  return Overlap;
}

std::unique_ptr<SimilarityMetric>
regmon::core::makeSimilarity(SimilarityKind Kind, bool *UsedFallback) {
  if (UsedFallback)
    *UsedFallback = false;
  switch (Kind) {
  case SimilarityKind::Pearson:
    return std::make_unique<PearsonSimilarity>();
  case SimilarityKind::Cosine:
    return std::make_unique<CosineSimilarity>();
  case SimilarityKind::Overlap:
    return std::make_unique<OverlapSimilarity>();
  }
  // Out-of-enum Kind: fall back to the paper's metric rather than hand
  // callers a null pointer they dereference unchecked.
  if (UsedFallback)
    *UsedFallback = true;
  return std::make_unique<PearsonSimilarity>();
}
